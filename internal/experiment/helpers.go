package experiment

import (
	"bytes"
	"math/rand"
	"strconv"

	"cdml/internal/data"
)

// newChunkRand returns a PRNG seeded deterministically per (seed, chunk).
func newChunkRand(seed int64, chunk int) *rand.Rand {
	return rand.New(rand.NewSource(seed ^ 0x9e3779b9*int64(chunk+1)))
}

// xyParser parses the synthetic "label,x0,x1" record format the extension
// streams emit.
type xyParser struct{}

// Name implements pipeline.Parser.
func (xyParser) Name() string { return "xy-parser" }

// Parse implements pipeline.Parser; malformed records are dropped.
func (xyParser) Parse(records [][]byte) (*data.Frame, error) {
	var ys, x0s, x1s []float64
	for _, rec := range records {
		parts := bytes.Split(rec, []byte(","))
		if len(parts) != 3 {
			continue
		}
		y, e1 := strconv.ParseFloat(string(parts[0]), 64)
		x0, e2 := strconv.ParseFloat(string(parts[1]), 64)
		x1, e3 := strconv.ParseFloat(string(parts[2]), 64)
		if e1 != nil || e2 != nil || e3 != nil {
			continue
		}
		ys = append(ys, y)
		x0s = append(x0s, x0)
		x1s = append(x1s, x1)
	}
	f := data.NewFrame(len(ys))
	f.SetFloat("label", ys)
	f.SetFloat("x0", x0s)
	f.SetFloat("x1", x1s)
	return f, nil
}
