package experiment

import (
	"fmt"
	"strings"
	"time"

	"cdml/internal/core"
	"cdml/internal/dataset"
	"cdml/internal/drift"
	"cdml/internal/eval"
	"cdml/internal/model"
	"cdml/internal/opt"
	"cdml/internal/pipeline"
	"cdml/internal/sample"
)

// The experiments in this file go beyond the paper's evaluation: they
// exercise the future-work extensions the paper names in §7 (native
// concept-drift detection and alleviation) and the additional SGD model
// families §2.1 cites (matrix factorization for recommenders).

// ---------------------------------------------------------------------------
// Extension 1 — drift detection and alleviation

// ExtDriftRow is one deployment variant's outcome on the flipping stream.
type ExtDriftRow struct {
	Variant     string
	FinalError  float64
	AvgError    float64
	Trainings   int
	DriftEvents int
}

// ExtDriftResult compares schedule-only continuous deployment against
// detector-augmented variants on an abruptly drifting stream.
type ExtDriftResult struct {
	Rows []ExtDriftRow
}

// flipStream reverses its decision boundary at 1/3 and 2/3 of the run.
type flipStream struct{ chunks, rows int }

func (s flipStream) Name() string   { return "flip" }
func (s flipStream) NumChunks() int { return s.chunks }

func (s flipStream) Chunk(i int) [][]byte {
	r := newChunkRand(77, i)
	sign := 1.0
	if i >= s.chunks/3 && i < 2*s.chunks/3 {
		sign = -1
	}
	recs := make([][]byte, s.rows)
	for k := range recs {
		x0, x1 := r.NormFloat64(), r.NormFloat64()
		y := "+1"
		if sign*(x0+0.5*x1) < 0 {
			y = "-1"
		}
		recs[k] = []byte(fmt.Sprintf("%s,%.4f,%.4f", y, x0, x1))
	}
	return recs
}

// ExtDrift runs the drift-alleviation comparison: no detector vs DDM vs
// Page-Hinkley, all on the same flipping stream with a sparse schedule so
// adaptation must come from the detector.
func ExtDrift() (*ExtDriftResult, error) {
	mk := func(det drift.Detector) core.Config {
		return core.Config{
			Mode: core.ModeContinuous,
			NewPipeline: func() *pipeline.Pipeline {
				return pipeline.New(xyParser{},
					pipeline.NewStandardScaler([]string{"x0", "x1"}),
					pipeline.NewAssembler([]string{"x0", "x1"}, nil, "features"),
				)
			},
			NewModel:       func() model.Model { return model.NewSVM(2, 1e-4) },
			NewOptimizer:   func() opt.Optimizer { return opt.NewAdam(0.1) },
			Store:          newStore(-1),
			Sampler:        sample.NewTime(1),
			SampleChunks:   10,
			ProactiveEvery: 25,
			DriftBoost:     8,
			InitialChunks:  10,
			Metric:         &eval.Misclassification{},
			Predict:        core.ClassifyPredictor,
			Seed:           1,
		}
	}
	variants := []struct {
		name string
		det  drift.Detector
	}{
		{"schedule-only", nil},
		{"ddm", drift.NewDDM()},
		{"page-hinkley", drift.NewPageHinkley()},
	}
	s := flipStream{chunks: 240, rows: 50}
	out := &ExtDriftResult{}
	for _, v := range variants {
		cfg := mk(v.det)
		cfg.DriftDetector = v.det
		res, err := deploy(cfg, s)
		if err != nil {
			return nil, fmt.Errorf("experiment: extdrift %s: %w", v.name, err)
		}
		out.Rows = append(out.Rows, ExtDriftRow{
			Variant:     v.name,
			FinalError:  res.FinalError,
			AvgError:    res.AvgError,
			Trainings:   res.ProactiveRuns,
			DriftEvents: res.DriftEvents,
		})
	}
	return out, nil
}

// Render prints the drift comparison.
func (r *ExtDriftResult) Render() string {
	var b strings.Builder
	b.WriteString("Extension — drift detection and alleviation (flipping stream)\n")
	fmt.Fprintf(&b, "%-16s %12s %12s %10s %8s\n", "variant", "final-error", "avg-error", "trainings", "drifts")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-16s %12.4f %12.4f %10d %8d\n",
			row.Variant, row.FinalError, row.AvgError, row.Trainings, row.DriftEvents)
	}
	return b.String()
}

// ---------------------------------------------------------------------------
// Extension — Velox-style threshold retraining baseline

// ExtVeloxRow is one strategy's outcome in the threshold comparison.
type ExtVeloxRow struct {
	Strategy   string
	FinalError float64
	Cost       time.Duration
	Retrains   int
	Proactive  int
}

// ExtVeloxResult compares threshold-triggered retraining (the Velox
// pattern of the paper's related work, §6) against continuous deployment
// on a drifting stream.
type ExtVeloxResult struct {
	Rows []ExtVeloxRow
}

// ExtVelox runs the comparison.
func ExtVelox() (*ExtVeloxResult, error) {
	s := flipStream{chunks: 240, rows: 50}
	mk := func(mode core.Mode) core.Config {
		cfg := core.Config{
			Mode: mode,
			NewPipeline: func() *pipeline.Pipeline {
				return pipeline.New(xyParser{},
					pipeline.NewStandardScaler([]string{"x0", "x1"}),
					pipeline.NewAssembler([]string{"x0", "x1"}, nil, "features"),
				)
			},
			NewModel:         func() model.Model { return model.NewSVM(2, 1e-4) },
			NewOptimizer:     func() opt.Optimizer { return opt.NewAdam(0.1) },
			Store:            newStore(-1),
			Sampler:          sample.NewTime(1),
			SampleChunks:     10,
			ProactiveEvery:   5,
			RetrainThreshold: 0.3,
			WarmStart:        true,
			InitialChunks:    10,
			Metric:           &eval.Misclassification{},
			Predict:          core.ClassifyPredictor,
			Seed:             1,
		}
		return cfg
	}
	out := &ExtVeloxResult{}
	for _, mode := range []core.Mode{core.ModeThreshold, core.ModeContinuous} {
		res, err := deploy(mk(mode), s)
		if err != nil {
			return nil, fmt.Errorf("experiment: extvelox %s: %w", mode, err)
		}
		out.Rows = append(out.Rows, ExtVeloxRow{
			Strategy:   mode.String(),
			FinalError: res.FinalError,
			Cost:       res.Cost.Total(),
			Retrains:   res.Retrains,
			Proactive:  res.ProactiveRuns,
		})
	}
	return out, nil
}

// Render prints the threshold comparison.
func (r *ExtVeloxResult) Render() string {
	var b strings.Builder
	b.WriteString("Extension — Velox-style threshold retraining vs continuous (flipping stream)\n")
	fmt.Fprintf(&b, "%-12s %12s %14s %10s %10s\n", "strategy", "final-error", "cost", "retrains", "proactive")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-12s %12.4f %14v %10d %10d\n",
			row.Strategy, row.FinalError, row.Cost.Round(time.Millisecond), row.Retrains, row.Proactive)
	}
	return b.String()
}

// ---------------------------------------------------------------------------
// Extension 2 — recommender (matrix factorization) deployment

// ExtRecsysResult compares online vs continuous deployment of the MF model
// on the drifting rating stream.
type ExtRecsysResult struct {
	OnlineRMSE     float64
	ContinuousRMSE float64
	OnlineCost     time.Duration
	ContinuousCost time.Duration
	NoiseFloor     float64
}

// ExtRecsys runs the recommender comparison.
func ExtRecsys() (*ExtRecsysResult, error) {
	cfg := dataset.DefaultRatingsConfig()
	cfg.Users, cfg.Items = 100, 200
	cfg.Chunks, cfg.RowsPerChunk = 300, 80
	cfg.Drift = 1.0
	mk := func(mode core.Mode) core.Config {
		return core.Config{
			Mode: mode,
			NewPipeline: func() *pipeline.Pipeline {
				return dataset.NewRatingsPipeline(cfg.Users, cfg.Items)
			},
			NewModel:       func() model.Model { return dataset.NewRatingsModel(cfg, 1e-3) },
			NewOptimizer:   func() opt.Optimizer { return opt.NewAdam(0.05) },
			Store:          newStore(-1),
			Sampler:        sample.NewTime(1),
			SampleChunks:   10,
			ProactiveEvery: 4,
			InitialChunks:  20,
			Metric:         &eval.RMSE{},
			Predict:        core.RegressionPredictor,
			Seed:           1,
		}
	}
	on, err := deploy(mk(core.ModeOnline), dataset.NewRatings(cfg))
	if err != nil {
		return nil, fmt.Errorf("experiment: extrecsys online: %w", err)
	}
	cont, err := deploy(mk(core.ModeContinuous), dataset.NewRatings(cfg))
	if err != nil {
		return nil, fmt.Errorf("experiment: extrecsys continuous: %w", err)
	}
	return &ExtRecsysResult{
		OnlineRMSE:     on.FinalError,
		ContinuousRMSE: cont.FinalError,
		OnlineCost:     on.Cost.Total(),
		ContinuousCost: cont.Cost.Total(),
		NoiseFloor:     cfg.Noise,
	}, nil
}

// Render prints the recommender comparison.
func (r *ExtRecsysResult) Render() string {
	var b strings.Builder
	b.WriteString("Extension — recommender deployment (matrix factorization, drifting preferences)\n")
	fmt.Fprintf(&b, "%-12s %12s %14s\n", "deployment", "final-RMSE", "cost")
	fmt.Fprintf(&b, "%-12s %12.4f %14v\n", "online", r.OnlineRMSE, r.OnlineCost.Round(time.Millisecond))
	fmt.Fprintf(&b, "%-12s %12.4f %14v\n", "continuous", r.ContinuousRMSE, r.ContinuousCost.Round(time.Millisecond))
	fmt.Fprintf(&b, "noise floor ≈ %.2f\n", r.NoiseFloor)
	return b.String()
}
