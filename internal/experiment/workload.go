// Package experiment reproduces every table and figure of the paper's
// evaluation (§5) over the synthetic URL and Taxi workloads:
//
//	Figure 4  — model quality and training cost for online / periodical /
//	            continuous deployment (Exp. 1)
//	Table 3   — hyperparameter grid during initial training (Exp. 2)
//	Figure 5  — deployed-model quality per learning-rate adaptation (Exp. 2)
//	Figure 6  — deployed-model quality per sampling strategy (Exp. 2)
//	Table 4   — empirical vs theoretical materialization utilization μ (Exp. 3)
//	Figure 7  — deployment cost vs materialization rate and sampling
//	            strategy, plus the NoOptimization baseline (Exp. 3)
//	Figure 8  — average quality vs total cost trade-off (Exp. 3 discussion)
//
// Each experiment returns a structured result with a Render method that
// prints the same rows/series the paper reports. Absolute numbers differ
// from the paper (different hardware, synthetic data, scaled-down streams);
// the relative shapes are the reproduction target — see EXPERIMENTS.md.
package experiment

import (
	"fmt"

	"cdml/internal/core"
	"cdml/internal/data"
	"cdml/internal/dataset"
	"cdml/internal/eval"
	"cdml/internal/model"
	"cdml/internal/opt"
	"cdml/internal/pipeline"
	"cdml/internal/sample"
)

// Scale selects how much of the paper's workload sizes to run.
type Scale int

// Workload scales.
const (
	// ScaleSmall is for tests and quick benchmarks (~100 chunks).
	ScaleSmall Scale = iota
	// ScaleMedium is the default experiment size (~1,200 chunks).
	ScaleMedium
	// ScaleFull approaches the paper's 12,000 chunks.
	ScaleFull
)

// String implements fmt.Stringer.
func (s Scale) String() string {
	switch s {
	case ScaleSmall:
		return "small"
	case ScaleMedium:
		return "medium"
	case ScaleFull:
		return "full"
	default:
		return fmt.Sprintf("Scale(%d)", int(s))
	}
}

// ParseScale converts "small"/"medium"/"full".
func ParseScale(s string) (Scale, error) {
	switch s {
	case "small":
		return ScaleSmall, nil
	case "medium":
		return ScaleMedium, nil
	case "full":
		return ScaleFull, nil
	default:
		return 0, fmt.Errorf("experiment: unknown scale %q", s)
	}
}

// Workload binds a stream to its pipeline, model, and deployment
// parameters — everything an experiment needs to deploy it.
type Workload struct {
	// Name is "url" or "taxi".
	Name string
	// Stream supplies the raw chunks.
	Stream core.Stream
	// NewPipeline builds a fresh deployed pipeline.
	NewPipeline func() *pipeline.Pipeline
	// NewModel builds a fresh model with the given L2 regularization.
	NewModel func(reg float64) model.Model
	// NewMetric builds the workload's error metric.
	NewMetric func() eval.Metric
	// MetricName labels the metric in rendered output.
	MetricName string
	// Predict maps model output to the metric's label space.
	Predict core.Predictor
	// InitialChunks are consumed by initial training (the paper's day 0 /
	// Jan15).
	InitialChunks int
	// ProactiveEvery is the static proactive-training period in chunks
	// (the paper trains every 5 minutes / 5 hours, i.e. every 5 chunks).
	ProactiveEvery int
	// RetrainEvery is the periodical baseline's retraining period in
	// chunks (the paper retrains every 10 days / 1 month).
	RetrainEvery int
	// SampleChunks is the proactive-training sample size in chunks.
	SampleChunks int
	// WindowChunks is the window-based sampler's window size (the paper
	// uses half the total chunks).
	WindowChunks int
	// BestOpt and BestLR and BestReg are the hyperparameters the Table 3
	// grid search selects; Figure 4/6/7 deployments use them.
	BestOpt string
	BestLR  float64
	BestReg float64
	// Drifting records whether the stream's distribution changes over
	// time (true for URL, false for Taxi) — it decides the expected
	// Figure 6 outcome.
	Drifting bool
}

// NewOptimizer builds an optimizer by adaptation-technique name with the
// workload's learning rate.
func (w *Workload) NewOptimizer(name string, lr float64) opt.Optimizer {
	o, err := opt.New(name, lr)
	if err != nil {
		panic(err)
	}
	return o
}

// NewSampler builds a sampling strategy by name with the workload's window
// size.
func (w *Workload) NewSampler(name string, seed int64) sample.Strategy {
	s, err := sample.New(name, w.WindowChunks, seed)
	if err != nil {
		panic(err)
	}
	return s
}

// urlHashDim returns the feature-hashing dimensionality per scale (the real
// dataset has ~3.2M features; we scale down).
func urlHashDim(s Scale) int {
	switch s {
	case ScaleSmall:
		return 1 << 14
	case ScaleMedium:
		return 1 << 16
	default:
		return 1 << 18
	}
}

// URLWorkload builds the URL deployment scenario at the given scale.
func URLWorkload(s Scale) *Workload {
	cfg := dataset.DefaultURLConfig()
	switch s {
	case ScaleSmall:
		cfg.Days, cfg.ChunksPerDay, cfg.RowsPerChunk, cfg.Vocab = 24, 5, 40, 3000
	case ScaleMedium:
		cfg.Days, cfg.ChunksPerDay, cfg.RowsPerChunk, cfg.Vocab = 120, 10, 100, 20000
	default:
		cfg.Days, cfg.ChunksPerDay, cfg.RowsPerChunk, cfg.Vocab = 120, 100, 200, 50000
	}
	cfg.HashDim = urlHashDim(s)
	gen := dataset.NewURL(cfg)
	n := gen.NumChunks()
	return &Workload{
		Name:   "url",
		Stream: gen,
		NewPipeline: func() *pipeline.Pipeline {
			return dataset.NewURLPipeline(cfg.HashDim)
		},
		NewModel: func(reg float64) model.Model {
			return dataset.NewURLModel(cfg.HashDim, reg)
		},
		NewMetric:      func() eval.Metric { return &eval.Misclassification{} },
		MetricName:     "misclassification",
		Predict:        core.ClassifyPredictor,
		InitialChunks:  cfg.ChunksPerDay,      // day 0
		ProactiveEvery: 5,                     // every 5 chunks ~ every 5 minutes
		RetrainEvery:   10 * cfg.ChunksPerDay, // every 10 days
		SampleChunks:   max(4, n/100),
		WindowChunks:   n / 2,
		BestOpt:        "adam",
		BestLR:         0.05,
		BestReg:        1e-3,
		Drifting:       true,
	}
}

// TaxiWorkload builds the Taxi deployment scenario at the given scale.
func TaxiWorkload(s Scale) *Workload {
	cfg := dataset.DefaultTaxiConfig()
	// Every scale spans the paper's 18 months (≈13,128 hours) so the
	// weekly and daily cycles are always covered; smaller scales use
	// coarser chunks.
	switch s {
	case ScaleSmall:
		cfg.Chunks, cfg.HoursPerChunk, cfg.RowsPerChunk = 120, 109, 50
	case ScaleMedium:
		cfg.Chunks, cfg.HoursPerChunk, cfg.RowsPerChunk = 1200, 11, 150
	default:
		cfg.Chunks, cfg.HoursPerChunk, cfg.RowsPerChunk = 12000, 1, 200
	}
	gen := dataset.NewTaxi(cfg)
	n := gen.NumChunks()
	monthChunks := max(4, n/18) // the stream spans ~18 months
	initial := monthChunks
	return &Workload{
		Name:   "taxi",
		Stream: gen,
		NewPipeline: func() *pipeline.Pipeline {
			return dataset.NewTaxiPipeline()
		},
		NewModel: func(reg float64) model.Model {
			return dataset.NewTaxiModel(reg)
		},
		// The Taxi model predicts log1p(duration); RMSE over that equals
		// RMSLE over raw durations, the Kaggle measure.
		NewMetric:      func() eval.Metric { return &eval.RMSE{} },
		MetricName:     "rmsle",
		Predict:        core.RegressionPredictor,
		InitialChunks:  initial,     // Jan15
		ProactiveEvery: 5,           // every 5 hours
		RetrainEvery:   monthChunks, // monthly
		SampleChunks:   max(4, n/17),
		WindowChunks:   n / 2,
		BestOpt:        "rmsprop",
		BestLR:         0.1,
		BestReg:        1e-4,
		Drifting:       false,
	}
}

// newStore builds a fresh in-memory chunk store with the given
// materialization capacity (negative = unlimited).
func newStore(capacity int) *data.Store {
	if capacity < 0 {
		return data.NewStore(data.NewMemoryBackend())
	}
	return data.NewStore(data.NewMemoryBackend(), data.WithCapacity(capacity))
}

// BaseConfig assembles the deployment config the experiments share;
// callers override mode-specific fields.
func (w *Workload) BaseConfig(mode core.Mode, seed int64) core.Config {
	return core.Config{
		Mode:             mode,
		NewPipeline:      w.NewPipeline,
		NewModel:         func() model.Model { return w.NewModel(w.BestReg) },
		NewOptimizer:     func() opt.Optimizer { return w.NewOptimizer(w.BestOpt, w.BestLR) },
		Store:            newStore(-1),
		Sampler:          w.NewSampler("time", seed),
		SampleChunks:     w.SampleChunks,
		ProactiveEvery:   w.ProactiveEvery,
		RetrainEvery:     w.RetrainEvery,
		RetrainEpochs:    3,
		RetrainBatchRows: 128,
		InitialEpochs:    25,
		WarmStart:        true,
		InitialChunks:    w.InitialChunks,
		Metric:           w.NewMetric(),
		Predict:          w.Predict,
		Seed:             seed,
		CheckpointEvery:  max(1, w.Stream.NumChunks()/200),
	}
}
