package experiment

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"cdml/internal/eval"
)

// renderCurve prints a downsampled series as "x:y" pairs.
func renderCurve(b *strings.Builder, s *eval.Series, points int) {
	d := s.Downsample(points)
	fmt.Fprintf(b, "  %-22s", s.Name)
	for i := 0; i < d.Len(); i++ {
		fmt.Fprintf(b, " %6.0f:%-8.4f", d.Xs[i], d.Ys[i])
	}
	b.WriteByte('\n')
}

// Render prints the Figure 4 quality and cost summaries.
func (r *Fig4Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 4 — deployment approaches (%s, metric=%s)\n", r.Workload, r.Metric)
	modes := []string{"online", "periodical", "continuous"}
	fmt.Fprintf(&b, "%-12s %12s %12s %14s %12s %10s\n",
		"approach", "final-error", "avg-error", "cost", "proactive", "retrains")
	for _, m := range modes {
		res, ok := r.Results[m]
		if !ok {
			continue
		}
		fmt.Fprintf(&b, "%-12s %12.4f %12.4f %14v %12d %10d\n",
			m, res.FinalError, res.AvgError, res.Cost.Total().Round(time.Millisecond),
			res.ProactiveRuns, res.Retrains)
	}
	if on, ok := r.Results["online"]; ok {
		if per, ok2 := r.Results["periodical"]; ok2 {
			if cont, ok3 := r.Results["continuous"]; ok3 {
				fmt.Fprintf(&b, "cost ratios: periodical/continuous=%.1fx continuous/online=%.2fx\n",
					ratio(per.Cost.Total(), cont.Cost.Total()),
					ratio(cont.Cost.Total(), on.Cost.Total()))
				// §5.5 staleness: one proactive training vs one retraining.
				fmt.Fprintf(&b, "avg training event: proactive=%v retraining=%v\n",
					cont.AvgProactive().Round(time.Microsecond),
					per.AvgRetrain().Round(time.Millisecond))
			}
		}
	}
	b.WriteString("error-over-time (chunk:error):\n")
	for _, m := range modes {
		if res, ok := r.Results[m]; ok {
			renderCurve(&b, res.ErrorCurve, 8)
		}
	}
	b.WriteString("cost-over-time (chunk:seconds):\n")
	for _, m := range modes {
		if res, ok := r.Results[m]; ok {
			renderCurve(&b, res.CostCurve, 8)
		}
	}
	return b.String()
}

func ratio(a, b time.Duration) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}

// Render prints the Table 3 grid in the paper's layout (adaptation rows ×
// regularization columns; best per row marked with *).
func (t *Table3Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 3 — hyperparameter grid, initial training (%s, metric=%s)\n", t.Workload, t.Metric)
	fmt.Fprintf(&b, "%-10s", "adaptation")
	for _, reg := range Table3Regs {
		fmt.Fprintf(&b, " %12.0e", reg)
	}
	b.WriteByte('\n')
	for _, ad := range Table3Adaptations {
		fmt.Fprintf(&b, "%-10s", ad)
		best := t.Best(ad)
		for _, reg := range Table3Regs {
			for _, c := range t.Cells {
				//lint:allow floateq: cell lookup by the exact grid constant it was built from
				if c.Adaptation == ad && c.Reg == reg {
					mark := " "
					//lint:allow floateq: marks the identical best cell, not a nearly-equal one
					if c.Reg == best.Reg && c.Error == best.Error {
						mark = "*"
					}
					fmt.Fprintf(&b, " %11.5f%s", c.Error, mark)
				}
			}
		}
		b.WriteByte('\n')
	}
	ov := t.BestOverall()
	fmt.Fprintf(&b, "best overall: %s reg=%.0e error=%.5f\n", ov.Adaptation, ov.Reg, ov.Error)
	return b.String()
}

// Render prints the Figure 5 per-adaptation deployment summary.
func (r *Fig5Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 5 — adaptation techniques after deployment (%s, metric=%s)\n", r.Workload, r.Metric)
	fmt.Fprintf(&b, "%-10s %10s %12s %12s\n", "adaptation", "reg", "avg-error", "final-error")
	for _, c := range r.Curves {
		fmt.Fprintf(&b, "%-10s %10.0e %12.4f %12.4f\n", c.Adaptation, c.Reg, c.AvgError, c.FinalError)
	}
	b.WriteString("error-over-time (chunk:error):\n")
	for _, c := range r.Curves {
		renderCurve(&b, c.Curve, 8)
	}
	return b.String()
}

// Render prints the Figure 6 per-strategy deployment summary.
func (r *Fig6Result) Render() string {
	var b strings.Builder
	kind := "stationary"
	if r.Drifting {
		kind = "drifting"
	}
	fmt.Fprintf(&b, "Figure 6 — sampling strategies (%s, %s stream, metric=%s)\n", r.Workload, kind, r.Metric)
	fmt.Fprintf(&b, "%-10s %12s %12s\n", "strategy", "avg-error", "final-error")
	for _, c := range r.Curves {
		fmt.Fprintf(&b, "%-10s %12.4f %12.4f\n", c.Strategy, c.AvgError, c.FinalError)
	}
	b.WriteString("error-over-time (chunk:error):\n")
	for _, c := range r.Curves {
		renderCurve(&b, c.Curve, 8)
	}
	return b.String()
}

// Render prints Table 4 in the paper's layout: empirical μ with the
// theoretical estimate in parentheses where a closed form exists.
func (t *Table4Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 4 — materialization utilization μ (N=%d, s=%d, w=%d)\n", t.N, t.Sample, t.Window)
	fmt.Fprintf(&b, "%-14s", "sampling")
	for _, rate := range Table4Rates {
		fmt.Fprintf(&b, " %18s", fmt.Sprintf("m/n=%.1f", rate))
	}
	b.WriteByte('\n')
	strategies := []string{"uniform", "window", "time"}
	byKey := map[string]Table4Row{}
	for _, row := range t.Rows {
		byKey[fmt.Sprintf("%s/%.1f", row.Strategy, row.Rate)] = row
	}
	for _, s := range strategies {
		fmt.Fprintf(&b, "%-14s", s)
		for _, rate := range Table4Rates {
			row, ok := byKey[fmt.Sprintf("%s/%.1f", s, rate)]
			if !ok {
				fmt.Fprintf(&b, " %18s", "-")
				continue
			}
			if row.HasTheory {
				fmt.Fprintf(&b, " %9.2f (%5.2f)", row.Empirical, row.Theory)
			} else {
				fmt.Fprintf(&b, " %9.2f        ", row.Empirical)
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Render prints the Figure 7 cost sweep.
func (r *Fig7Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 7 — optimization effects on deployment cost (%s)\n", r.Workload)
	fmt.Fprintf(&b, "%-10s", "strategy")
	for _, rate := range Fig7Rates {
		fmt.Fprintf(&b, " %14s", fmt.Sprintf("m/n=%.1f", rate))
	}
	b.WriteByte('\n')
	strategies := []string{"time", "window", "uniform"}
	for _, s := range strategies {
		fmt.Fprintf(&b, "%-10s", s)
		for _, rate := range Fig7Rates {
			if c, ok := r.CostAt(s, rate); ok {
				fmt.Fprintf(&b, " %14v", c.Round(time.Millisecond))
			} else {
				fmt.Fprintf(&b, " %14s", "-")
			}
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "%-10s %14v\n", "no-opt", r.NoOptCost.Round(time.Millisecond))
	if full, ok := r.CostAt("time", 1.0); ok && full > 0 {
		fmt.Fprintf(&b, "no-opt overhead vs fully optimized: +%.0f%%\n",
			100*(float64(r.NoOptCost)/float64(full)-1))
	}
	return b.String()
}

// Render prints the Figure 8 trade-off scatter.
func (r *Fig8Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 8 — quality vs cost trade-off (%s, metric=%s)\n", r.Workload, r.Metric)
	pts := append([]Fig8Point(nil), r.Points...)
	sort.Slice(pts, func(a, c int) bool { return pts[a].Cost < pts[c].Cost })
	fmt.Fprintf(&b, "%-12s %12s %14s\n", "approach", "avg-error", "cost")
	for _, p := range pts {
		fmt.Fprintf(&b, "%-12s %12.4f %14v\n", p.Mode, p.AvgError, p.Cost.Round(time.Millisecond))
	}
	return b.String()
}
