package experiment

import (
	"strings"
	"testing"
)

func TestExtDriftDetectorsHelp(t *testing.T) {
	if testing.Short() {
		t.Skip("deployment runs")
	}
	r, err := ExtDrift()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 3 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	var base ExtDriftRow
	for _, row := range r.Rows {
		if row.Variant == "schedule-only" {
			base = row
			if row.DriftEvents != 0 {
				t.Fatal("schedule-only variant reported drift events")
			}
		}
	}
	for _, row := range r.Rows {
		if row.Variant == "schedule-only" {
			continue
		}
		if row.DriftEvents == 0 {
			t.Errorf("%s: no drifts detected on a flipping stream", row.Variant)
		}
		if row.FinalError > base.FinalError*1.05 {
			t.Errorf("%s: alleviation made things worse (%v vs %v)", row.Variant, row.FinalError, base.FinalError)
		}
	}
	if !strings.Contains(r.Render(), "drift") {
		t.Error("render missing header")
	}
}

func TestExtRecsysContinuousWins(t *testing.T) {
	if testing.Short() {
		t.Skip("deployment runs")
	}
	r, err := ExtRecsys()
	if err != nil {
		t.Fatal(err)
	}
	// On drifting preferences, continuous deployment should beat pure
	// online learning.
	if r.ContinuousRMSE >= r.OnlineRMSE {
		t.Errorf("continuous RMSE %v not better than online %v", r.ContinuousRMSE, r.OnlineRMSE)
	}
	// Both must beat a naive constant predictor (rating std ≈ 1).
	if r.OnlineRMSE > 0.9 || r.ContinuousRMSE > 0.9 {
		t.Errorf("RMSEs implausibly high: %v / %v", r.OnlineRMSE, r.ContinuousRMSE)
	}
	if !strings.Contains(r.Render(), "recommender") {
		t.Error("render missing header")
	}
}

func TestXYParserDropsMalformed(t *testing.T) {
	f, err := xyParser{}.Parse([][]byte{
		[]byte("+1,0.5,0.5"),
		[]byte("junk"),
		[]byte("+1,x,0.5"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if f.Rows() != 1 {
		t.Fatalf("rows = %d", f.Rows())
	}
}

func TestFlipStreamFlips(t *testing.T) {
	s := flipStream{chunks: 90, rows: 10}
	if s.NumChunks() != 90 || s.Name() == "" {
		t.Fatal("stream metadata wrong")
	}
	// Chunks exist at all phases.
	for _, c := range []int{0, 45, 89} {
		if len(s.Chunk(c)) != 10 {
			t.Fatalf("chunk %d wrong size", c)
		}
	}
}

func TestExtVeloxContinuousDominates(t *testing.T) {
	if testing.Short() {
		t.Skip("deployment runs")
	}
	r, err := ExtVelox()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 2 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	var th, cont ExtVeloxRow
	for _, row := range r.Rows {
		switch row.Strategy {
		case "threshold":
			th = row
		case "continuous":
			cont = row
		}
	}
	if th.Retrains == 0 {
		t.Fatal("threshold baseline never retrained on a flipping stream")
	}
	// The paper's critique: threshold retraining reacts late and pays a
	// full-history retraining each time. Continuous must not lose on both
	// axes, and on this stream it should win quality outright.
	if cont.FinalError >= th.FinalError {
		t.Errorf("continuous error %v not below threshold's %v", cont.FinalError, th.FinalError)
	}
	if cont.Cost >= th.Cost {
		t.Errorf("continuous cost %v not below threshold's %v", cont.Cost, th.Cost)
	}
	if !strings.Contains(r.Render(), "Velox") {
		t.Error("render missing header")
	}
}
