package experiment

import (
	"math"
	"strings"
	"testing"
)

func TestParseScale(t *testing.T) {
	for _, s := range []string{"small", "medium", "full"} {
		sc, err := ParseScale(s)
		if err != nil {
			t.Fatal(err)
		}
		if sc.String() != s {
			t.Fatalf("round trip %q -> %q", s, sc.String())
		}
	}
	if _, err := ParseScale("huge"); err == nil {
		t.Fatal("expected error")
	}
	if Scale(9).String() == "" {
		t.Fatal("unknown scale should render")
	}
}

func TestWorkloadConstructors(t *testing.T) {
	for _, w := range []*Workload{URLWorkload(ScaleSmall), TaxiWorkload(ScaleSmall)} {
		if w.Stream.NumChunks() <= w.InitialChunks {
			t.Fatalf("%s: stream too short", w.Name)
		}
		if w.NewPipeline() == nil {
			t.Fatalf("%s: nil pipeline", w.Name)
		}
		m := w.NewModel(1e-3)
		if m == nil || m.Dim() <= 0 {
			t.Fatalf("%s: bad model", w.Name)
		}
		if w.NewMetric() == nil {
			t.Fatalf("%s: nil metric", w.Name)
		}
		if w.NewOptimizer("adam", 0.1) == nil || w.NewSampler("uniform", 1) == nil {
			t.Fatalf("%s: factories failed", w.Name)
		}
	}
}

func TestWorkloadBadFactoryPanics(t *testing.T) {
	w := URLWorkload(ScaleSmall)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	w.NewOptimizer("bogus", 0.1)
}

func TestFig4URLShape(t *testing.T) {
	if testing.Short() {
		t.Skip("deployment run")
	}
	w := URLWorkload(ScaleSmall)
	r, err := Fig4(w)
	if err != nil {
		t.Fatal(err)
	}
	on := r.Results["online"]
	per := r.Results["periodical"]
	cont := r.Results["continuous"]
	// Shape 1: periodical is the most expensive approach. (The paper's
	// 15× gap needs the full 12,000-chunk stream; at small scale the
	// prequential serving cost, equal across approaches, dilutes the
	// ratio, so only the ordering is asserted here. EXPERIMENTS.md records
	// the medium-scale ratios.)
	if float64(per.Cost.Total()) < 1.3*float64(cont.Cost.Total()) {
		t.Errorf("periodical cost %v not ≫ continuous %v", per.Cost.Total(), cont.Cost.Total())
	}
	// Shape 2: online is the cheapest (allow wall-clock jitter at this
	// tiny scale — the runs only take a fraction of a second).
	if float64(on.Cost.Total()) > 1.25*float64(cont.Cost.Total()) {
		t.Errorf("online cost %v should be ≤ continuous %v", on.Cost.Total(), cont.Cost.Total())
	}
	// Shape 3: continuous quality not worse than online (drifting stream).
	if cont.AvgError > on.AvgError*1.1 {
		t.Errorf("continuous avg error %v worse than online %v", cont.AvgError, on.AvgError)
	}
	// All approaches learn something.
	for mode, res := range r.Results {
		if res.FinalError >= 0.5 {
			t.Errorf("%s error %v is no better than chance", mode, res.FinalError)
		}
	}
	if !strings.Contains(r.Render(), "Figure 4") {
		t.Error("render missing header")
	}
}

func TestFig4TaxiShape(t *testing.T) {
	if testing.Short() {
		t.Skip("deployment run")
	}
	w := TaxiWorkload(ScaleSmall)
	r, err := Fig4(w)
	if err != nil {
		t.Fatal(err)
	}
	per := r.Results["periodical"]
	cont := r.Results["continuous"]
	if per.Cost.Total() <= cont.Cost.Total() {
		t.Errorf("periodical cost %v not > continuous %v", per.Cost.Total(), cont.Cost.Total())
	}
	// The regression must beat the label-std baseline (~0.8 in log space).
	if cont.FinalError > 0.65 {
		t.Errorf("continuous RMSLE %v too high", cont.FinalError)
	}
}

func TestTable3GridComplete(t *testing.T) {
	if testing.Short() {
		t.Skip("training run")
	}
	w := URLWorkload(ScaleSmall)
	r, err := Table3(w)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Cells) != len(Table3Adaptations)*len(Table3Regs) {
		t.Fatalf("grid has %d cells", len(r.Cells))
	}
	for _, c := range r.Cells {
		if c.Error < 0 || c.Error > 0.6 || math.IsNaN(c.Error) {
			t.Fatalf("cell %s/%.0e error %v out of range", c.Adaptation, c.Reg, c.Error)
		}
	}
	best := r.BestOverall()
	for _, c := range r.Cells {
		if c.Error < best.Error {
			t.Fatal("BestOverall is not minimal")
		}
	}
	for _, ad := range Table3Adaptations {
		b := r.Best(ad)
		if b.Adaptation != ad {
			t.Fatalf("Best(%s) returned %s", ad, b.Adaptation)
		}
	}
	if !strings.Contains(r.Render(), "Table 3") {
		t.Error("render missing header")
	}
}

func TestFig5RunsAllAdaptations(t *testing.T) {
	if testing.Short() {
		t.Skip("deployment run")
	}
	w := URLWorkload(ScaleSmall)
	grid, err := Table3(w)
	if err != nil {
		t.Fatal(err)
	}
	r, err := Fig5(w, grid)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Curves) != len(Table3Adaptations) {
		t.Fatalf("curves = %d", len(r.Curves))
	}
	for _, c := range r.Curves {
		if c.Curve.Len() == 0 {
			t.Fatalf("%s: empty curve", c.Adaptation)
		}
		if c.FinalError >= 0.55 {
			t.Errorf("%s: error %v no better than chance", c.Adaptation, c.FinalError)
		}
	}
	if !strings.Contains(r.Render(), "Figure 5") {
		t.Error("render missing header")
	}
}

func TestFig6SamplingShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("deployment run")
	}
	url, err := Fig6(URLWorkload(ScaleSmall))
	if err != nil {
		t.Fatal(err)
	}
	if len(url.Curves) != 3 {
		t.Fatalf("curves = %d", len(url.Curves))
	}
	var timeErr, uniformErr float64
	for _, c := range url.Curves {
		switch c.Strategy {
		case "time":
			timeErr = c.AvgError
		case "uniform":
			uniformErr = c.AvgError
		}
	}
	// Drifting stream: time-based should not lose to uniform by much (the
	// paper finds it wins outright; at small scale we allow slack).
	if timeErr > uniformErr*1.25 {
		t.Errorf("time-based %v much worse than uniform %v on drifting stream", timeErr, uniformErr)
	}
	if !strings.Contains(url.Render(), "Figure 6") {
		t.Error("render missing header")
	}
}

func TestTable4MatchesTheory(t *testing.T) {
	r := Table4(1200, 20, 600)
	if len(r.Rows) != len(SamplingStrategies)*len(Table4Rates) {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row.Empirical < 0 || row.Empirical > 1 {
			t.Fatalf("%s/%.1f: empirical μ %v out of range", row.Strategy, row.Rate, row.Empirical)
		}
		if row.HasTheory && math.Abs(row.Empirical-row.Theory) > 0.05 {
			t.Errorf("%s/%.1f: empirical %v vs theory %v", row.Strategy, row.Rate, row.Empirical, row.Theory)
		}
		// Time-based must beat uniform at the same rate (paper's finding).
		if row.Strategy == "time" {
			for _, other := range r.Rows {
				if other.Strategy == "uniform" && other.Rate == row.Rate {
					if row.Empirical < other.Empirical-0.02 {
						t.Errorf("time μ %v below uniform %v at rate %.1f", row.Empirical, other.Empirical, row.Rate)
					}
				}
			}
		}
	}
	// Window with m ≥ w gives μ = 1.
	for _, row := range r.Rows {
		if row.Strategy == "window" && row.Rate == 0.6 {
			if math.Abs(row.Empirical-1) > 1e-9 {
				t.Errorf("window μ at m≥w should be 1, got %v", row.Empirical)
			}
		}
	}
	if !strings.Contains(r.Render(), "Table 4") {
		t.Error("render missing header")
	}
}

func TestTable4PaperNumbers(t *testing.T) {
	// At the paper's own N=12000, m/n=0.2, w=6000: uniform ≈ 0.52,
	// window ≈ 0.58 (Table 4). Pure simulation, fast even at full N.
	r := Table4(12000, 50, 6000)
	for _, row := range r.Rows {
		if !row.HasTheory || row.Rate != 0.2 {
			continue
		}
		var want float64
		switch row.Strategy {
		case "uniform":
			want = 0.52
		case "window":
			want = 0.58
		}
		if math.Abs(row.Theory-want) > 0.01 {
			t.Errorf("%s theory %v, paper reports %v", row.Strategy, row.Theory, want)
		}
		if math.Abs(row.Empirical-want) > 0.03 {
			t.Errorf("%s empirical %v, paper reports %v", row.Strategy, row.Empirical, want)
		}
	}
}

func TestFig7Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("13 deployment runs")
	}
	w := URLWorkload(ScaleSmall)
	r, err := Fig7(w)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) != len(SamplingStrategies)*len(Fig7Rates) {
		t.Fatalf("points = %d", len(r.Points))
	}
	// Shape: for each strategy, cost at full materialization ≤ cost at none.
	for _, strat := range SamplingStrategies {
		c0, ok0 := r.CostAt(strat, 0.0)
		c1, ok1 := r.CostAt(strat, 1.0)
		if !ok0 || !ok1 {
			t.Fatalf("%s: missing sweep points", strat)
		}
		// Allow jitter: the small-scale runs take tens of milliseconds, so
		// only a clear inversion is a failure.
		if float64(c1) > 1.3*float64(c0) {
			t.Errorf("%s: cost at rate 1.0 (%v) exceeds rate 0.0 (%v)", strat, c1, c0)
		}
	}
	// Shape: NoOptimization is the most expensive configuration.
	if full, ok := r.CostAt("time", 1.0); ok && r.NoOptCost <= full {
		t.Errorf("no-opt cost %v should exceed fully optimized %v", r.NoOptCost, full)
	}
	// μ rises with the materialization rate for every strategy.
	for _, strat := range SamplingStrategies {
		var prev float64 = -1
		for _, rate := range Fig7Rates {
			for _, p := range r.Points {
				if p.Strategy == strat && p.Rate == rate {
					if p.Mu < prev-0.05 {
						t.Errorf("%s: μ not increasing with rate: %v after %v", strat, p.Mu, prev)
					}
					prev = p.Mu
				}
			}
		}
	}
	if !strings.Contains(r.Render(), "Figure 7") {
		t.Error("render missing header")
	}
}

func TestFig8FromFig4(t *testing.T) {
	if testing.Short() {
		t.Skip("deployment run")
	}
	w := TaxiWorkload(ScaleSmall)
	f4, err := Fig4(w)
	if err != nil {
		t.Fatal(err)
	}
	f8 := Fig8(f4)
	if len(f8.Points) != 3 {
		t.Fatalf("points = %d", len(f8.Points))
	}
	if !strings.Contains(f8.Render(), "Figure 8") {
		t.Error("render missing header")
	}
}
