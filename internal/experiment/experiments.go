package experiment

import (
	"fmt"
	"math/rand"
	"time"

	"cdml/internal/core"
	"cdml/internal/data"
	"cdml/internal/eval"
	"cdml/internal/model"
	"cdml/internal/opt"
	"cdml/internal/sample"
)

// deploy runs one deployment and returns its result.
func deploy(cfg core.Config, s core.Stream) (*core.Result, error) {
	d, err := core.NewDeployer(cfg)
	if err != nil {
		return nil, err
	}
	return d.Run(s)
}

// ---------------------------------------------------------------------------
// Experiment 1 — Figure 4: deployment approaches

// Fig4Result holds quality and cost curves for the three deployment
// approaches on one workload.
type Fig4Result struct {
	Workload string
	Metric   string
	Results  map[string]*core.Result // keyed by mode name
}

// Fig4 runs the online, periodical, and continuous deployments of one
// workload (paper §5.2, Figure 4a–d).
func Fig4(w *Workload) (*Fig4Result, error) {
	out := &Fig4Result{Workload: w.Name, Metric: w.MetricName, Results: map[string]*core.Result{}}
	for _, mode := range []core.Mode{core.ModeOnline, core.ModePeriodical, core.ModeContinuous} {
		cfg := w.BaseConfig(mode, 1)
		res, err := deploy(cfg, w.Stream)
		if err != nil {
			return nil, fmt.Errorf("experiment: fig4 %s/%s: %w", w.Name, mode, err)
		}
		out.Results[mode.String()] = res
	}
	return out, nil
}

// ---------------------------------------------------------------------------
// Experiment 2 — Table 3: hyperparameter grid during initial training

// Table3Adaptations and Table3Regs define the paper's grid.
var (
	Table3Adaptations = []string{"adam", "rmsprop", "adadelta"}
	Table3Regs        = []float64{1e-2, 1e-3, 1e-4}
)

// Table3Cell is one grid point's held-out error.
type Table3Cell struct {
	Adaptation string
	Reg        float64
	Error      float64
}

// Table3Result is the full grid for one workload.
type Table3Result struct {
	Workload string
	Metric   string
	Cells    []Table3Cell
}

// Best returns the lowest-error cell for the given adaptation technique.
func (t *Table3Result) Best(adaptation string) Table3Cell {
	var best Table3Cell
	first := true
	for _, c := range t.Cells {
		if c.Adaptation != adaptation {
			continue
		}
		if first || c.Error < best.Error {
			best = c
			first = false
		}
	}
	return best
}

// BestOverall returns the lowest-error cell of the whole grid.
func (t *Table3Result) BestOverall() Table3Cell {
	best := t.Cells[0]
	for _, c := range t.Cells[1:] {
		if c.Error < best.Error {
			best = c
		}
	}
	return best
}

// initialInstances preprocesses the workload's initial-training chunks with
// a fresh pipeline and splits them 80/20 into train and eval sets.
func initialInstances(w *Workload) (train, evalSet []data.Instance, err error) {
	p := w.NewPipeline()
	var all []data.Instance
	for i := 0; i < w.InitialChunks; i++ {
		ins, err := p.ProcessOnline(w.Stream.Chunk(i))
		if err != nil {
			return nil, nil, fmt.Errorf("experiment: initial chunk %d: %w", i, err)
		}
		all = append(all, ins...)
	}
	r := rand.New(rand.NewSource(99))
	r.Shuffle(len(all), func(a, b int) { all[a], all[b] = all[b], all[a] })
	cut := len(all) * 8 / 10
	return all[:cut], all[cut:], nil
}

// sgdTrain runs epochs of shuffled mini-batch SGD.
func sgdTrain(m model.Model, o opt.Optimizer, train []data.Instance, epochs, batchRows int, seed int64) {
	r := rand.New(rand.NewSource(seed))
	idx := make([]int, len(train))
	for i := range idx {
		idx[i] = i
	}
	batch := make([]data.Instance, 0, batchRows)
	for e := 0; e < epochs; e++ {
		r.Shuffle(len(idx), func(a, b int) { idx[a], idx[b] = idx[b], idx[a] })
		for s := 0; s < len(idx); s += batchRows {
			end := s + batchRows
			if end > len(idx) {
				end = len(idx)
			}
			batch = batch[:0]
			for _, k := range idx[s:end] {
				batch = append(batch, train[k])
			}
			m.Update(batch, o)
		}
	}
}

// evaluate scores a model on instances with the workload's metric.
func evaluate(w *Workload, m model.Model, ins []data.Instance) float64 {
	met := w.NewMetric()
	for _, in := range ins {
		met.Observe(w.Predict(m, in.X), in.Y)
	}
	return met.Value()
}

// Table3 runs the grid search over learning-rate adaptation techniques and
// regularization parameters on the initial training data (paper §5.3,
// Table 3).
func Table3(w *Workload) (*Table3Result, error) {
	train, evalSet, err := initialInstances(w)
	if err != nil {
		return nil, err
	}
	out := &Table3Result{Workload: w.Name, Metric: w.MetricName}
	for _, ad := range Table3Adaptations {
		for _, reg := range Table3Regs {
			m := w.NewModel(reg)
			o := w.NewOptimizer(ad, w.BestLR)
			sgdTrain(m, o, train, 8, 256, 5)
			out.Cells = append(out.Cells, Table3Cell{
				Adaptation: ad,
				Reg:        reg,
				Error:      evaluate(w, m, evalSet),
			})
		}
	}
	return out, nil
}

// ---------------------------------------------------------------------------
// Experiment 2 — Figure 5: adaptation techniques after deployment

// Fig5Curve is one adaptation technique's deployed quality curve.
type Fig5Curve struct {
	Adaptation string
	Reg        float64
	Curve      *eval.Series
	AvgError   float64
	FinalError float64
}

// Fig5Result holds the per-adaptation deployment curves.
type Fig5Result struct {
	Workload string
	Metric   string
	Curves   []Fig5Curve
}

// prefixStream exposes the first n chunks of a stream.
type prefixStream struct {
	core.Stream
	n int
}

func (p prefixStream) NumChunks() int { return p.n }

// Fig5 deploys the best configuration of each adaptation technique (per
// Table 3) continuously on 10% of the deployment stream (paper §5.3,
// Figure 5).
func Fig5(w *Workload, grid *Table3Result) (*Fig5Result, error) {
	n := w.InitialChunks + max(10, (w.Stream.NumChunks()-w.InitialChunks)/10)
	if n > w.Stream.NumChunks() {
		n = w.Stream.NumChunks()
	}
	out := &Fig5Result{Workload: w.Name, Metric: w.MetricName}
	for _, ad := range Table3Adaptations {
		best := grid.Best(ad)
		cfg := w.BaseConfig(core.ModeContinuous, 2)
		cfg.NewModel = func() model.Model { return w.NewModel(best.Reg) }
		adName := ad
		cfg.NewOptimizer = func() opt.Optimizer { return w.NewOptimizer(adName, w.BestLR) }
		res, err := deploy(cfg, prefixStream{w.Stream, n})
		if err != nil {
			return nil, fmt.Errorf("experiment: fig5 %s/%s: %w", w.Name, ad, err)
		}
		out.Curves = append(out.Curves, Fig5Curve{
			Adaptation: ad,
			Reg:        best.Reg,
			Curve:      res.ErrorCurve,
			AvgError:   res.AvgError,
			FinalError: res.FinalError,
		})
	}
	return out, nil
}

// ---------------------------------------------------------------------------
// Experiment 2 — Figure 6: sampling strategies

// SamplingStrategies are the three strategies the data manager offers.
var SamplingStrategies = []string{"time", "window", "uniform"}

// Fig6Curve is one sampling strategy's deployed quality curve.
type Fig6Curve struct {
	Strategy   string
	Curve      *eval.Series
	AvgError   float64
	FinalError float64
}

// Fig6Result holds the per-strategy deployment curves.
type Fig6Result struct {
	Workload string
	Metric   string
	Drifting bool
	Curves   []Fig6Curve
}

// Fig6 deploys continuously with each sampling strategy (paper §5.3,
// Figure 6). On the drifting URL stream time-based sampling should win; on
// the stationary Taxi stream the strategies should tie.
func Fig6(w *Workload) (*Fig6Result, error) {
	out := &Fig6Result{Workload: w.Name, Metric: w.MetricName, Drifting: w.Drifting}
	for _, strat := range SamplingStrategies {
		cfg := w.BaseConfig(core.ModeContinuous, 3)
		cfg.Sampler = w.NewSampler(strat, 3)
		res, err := deploy(cfg, w.Stream)
		if err != nil {
			return nil, fmt.Errorf("experiment: fig6 %s/%s: %w", w.Name, strat, err)
		}
		out.Curves = append(out.Curves, Fig6Curve{
			Strategy:   strat,
			Curve:      res.ErrorCurve,
			AvgError:   res.AvgError,
			FinalError: res.FinalError,
		})
	}
	return out, nil
}

// ---------------------------------------------------------------------------
// Experiment 3 — Table 4: materialization utilization rate μ

// Table4Row is one (strategy, materialization-rate) cell: the empirically
// measured μ and, where the paper derives one, the analytical estimate.
type Table4Row struct {
	Strategy  string
	Rate      float64 // m/n
	Empirical float64
	Theory    float64 // NaN when no closed form exists (time-based)
	HasTheory bool
}

// Table4Result holds all rows for one workload-sized simulation.
type Table4Result struct {
	N      int // total chunks
	Sample int // chunks per sampling operation
	Window int
	Rows   []Table4Row
}

// Table4Rates are the materialization rates the paper reports (0.0 and 1.0
// are omitted: μ is 0 and 1 by construction).
var Table4Rates = []float64{0.2, 0.6}

// Table4 measures the empirical average materialization utilization rate of
// each sampling strategy under a capacity-bounded store and compares it
// with Formulas (4) and (5) (paper §5.4, Table 4). The simulation performs
// one sampling operation per arriving chunk, with the materialized set kept
// at the newest m chunks by the store's oldest-first eviction.
func Table4(N, sampleChunks, window int) *Table4Result {
	out := &Table4Result{N: N, Sample: sampleChunks, Window: window}
	for _, strat := range SamplingStrategies {
		for _, rate := range Table4Rates {
			m := int(rate * float64(N))
			sampler, err := sample.New(strat, window, 17)
			if err != nil {
				panic(err)
			}
			var muSum float64
			ids := make([]data.Timestamp, 0, N)
			for n := 1; n <= N; n++ {
				ids = append(ids, data.Timestamp(n-1))
				got := sampler.Sample(ids, sampleChunks)
				hits := 0
				for _, id := range got {
					if int(id) >= n-m { // newest m are materialized
						hits++
					}
				}
				if len(got) > 0 {
					muSum += float64(hits) / float64(len(got))
				} else {
					muSum++
				}
			}
			row := Table4Row{Strategy: strat, Rate: rate, Empirical: muSum / float64(N)}
			switch strat {
			case "uniform":
				row.Theory = sample.MuUniform(N, m)
				row.HasTheory = true
			case "window":
				row.Theory = sample.MuWindow(N, m, window)
				row.HasTheory = true
			}
			out.Rows = append(out.Rows, row)
		}
	}
	return out
}

// ---------------------------------------------------------------------------
// Experiment 3 — Figure 7: optimization effects on deployment cost

// Fig7Rates are the materialization rates the paper sweeps.
var Fig7Rates = []float64{0.0, 0.2, 0.6, 1.0}

// Fig7Point is one (strategy, rate) deployment's total cost.
type Fig7Point struct {
	Strategy string
	Rate     float64
	Cost     time.Duration
	Mu       float64
}

// Fig7Result holds the cost sweep plus the NoOptimization baseline.
type Fig7Result struct {
	Workload  string
	Points    []Fig7Point
	NoOptCost time.Duration
}

// Fig7 sweeps the materialization rate for each sampling strategy and runs
// the NoOptimization baseline (online statistics computation and dynamic
// materialization disabled) with time-based sampling (paper §5.4,
// Figure 7).
func Fig7(w *Workload) (*Fig7Result, error) {
	out := &Fig7Result{Workload: w.Name}
	N := w.Stream.NumChunks()
	for _, strat := range SamplingStrategies {
		for _, rate := range Fig7Rates {
			cfg := w.BaseConfig(core.ModeContinuous, 4)
			cfg.Sampler = w.NewSampler(strat, 4)
			cfg.Store = newStore(int(rate * float64(N)))
			res, err := deploy(cfg, w.Stream)
			if err != nil {
				return nil, fmt.Errorf("experiment: fig7 %s/%s/%.1f: %w", w.Name, strat, rate, err)
			}
			out.Points = append(out.Points, Fig7Point{
				Strategy: strat,
				Rate:     rate,
				Cost:     res.Cost.Total(),
				Mu:       res.MatStats.Mu(),
			})
		}
	}
	cfg := w.BaseConfig(core.ModeContinuous, 4)
	cfg.NoOptimization = true
	cfg.Store = newStore(0)
	res, err := deploy(cfg, w.Stream)
	if err != nil {
		return nil, fmt.Errorf("experiment: fig7 %s/noopt: %w", w.Name, err)
	}
	out.NoOptCost = res.Cost.Total()
	return out, nil
}

// CostAt returns the measured cost for a strategy/rate pair, and false if
// absent.
func (f *Fig7Result) CostAt(strategy string, rate float64) (time.Duration, bool) {
	for _, p := range f.Points {
		//lint:allow floateq: materialization rates are exact grid constants (0.0, 0.25, ...)
		if p.Strategy == strategy && p.Rate == rate {
			return p.Cost, true
		}
	}
	return 0, false
}

// ---------------------------------------------------------------------------
// Experiment 3 discussion — Figure 8: quality vs cost trade-off

// Fig8Point is one deployment approach's (avg quality, total cost) position.
type Fig8Point struct {
	Mode     string
	AvgError float64
	Cost     time.Duration
}

// Fig8Result holds the trade-off scatter for one workload.
type Fig8Result struct {
	Workload string
	Metric   string
	Points   []Fig8Point
}

// Fig8 derives the quality/cost trade-off scatter from a Figure 4 run
// (paper §5.5, Figure 8).
func Fig8(f4 *Fig4Result) *Fig8Result {
	out := &Fig8Result{Workload: f4.Workload, Metric: f4.Metric}
	for _, mode := range []string{"online", "periodical", "continuous"} {
		res, ok := f4.Results[mode]
		if !ok {
			continue
		}
		out.Points = append(out.Points, Fig8Point{
			Mode:     mode,
			AvgError: res.AvgError,
			Cost:     res.Cost.Total(),
		})
	}
	return out
}
