// Package benchfmt parses `go test -bench` output and manages the repo's
// committed benchmark trajectory: one BENCH_<pr>.json baseline per PR,
// recording ns/op, B/op, and allocs/op for the hot-path benchmark suite.
// cmd/cdml-bench uses it to record new baselines and to gate CI on
// regressions against the newest committed one.
package benchfmt

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line.
type Result struct {
	// Name is the benchmark name with the -GOMAXPROCS suffix stripped
	// (BenchmarkFoo-8 → BenchmarkFoo), so baselines compare across machines
	// with different core counts.
	Name string `json:"name"`
	// N is the iteration count the timing was measured over.
	N int64 `json:"n"`
	// NsPerOp is nanoseconds per operation.
	NsPerOp float64 `json:"ns_per_op"`
	// BytesPerOp is heap bytes allocated per operation (-benchmem).
	BytesPerOp float64 `json:"bytes_per_op"`
	// AllocsPerOp is heap allocations per operation (-benchmem).
	AllocsPerOp float64 `json:"allocs_per_op"`
	// Metrics holds any additional unit→value pairs the benchmark reported
	// via b.ReportMetric.
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// benchLine matches "BenchmarkName-8   1000  1234 ns/op  56 B/op ..." —
// a name starting with Benchmark, an iteration count, then value/unit pairs.
var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+(\d+)\s+(.+)$`)

// gomaxprocsSuffix strips the trailing -N processor count from a name.
var gomaxprocsSuffix = regexp.MustCompile(`-\d+$`)

// Parse reads `go test -bench` output and returns every benchmark result in
// order of appearance. Non-benchmark lines (PASS, ok, logs) are skipped.
func Parse(r io.Reader) ([]Result, error) {
	var out []Result
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(sc.Text()))
		if m == nil {
			continue
		}
		n, err := strconv.ParseInt(m[2], 10, 64)
		if err != nil {
			continue
		}
		res := Result{Name: gomaxprocsSuffix.ReplaceAllString(m[1], ""), N: n}
		fields := strings.Fields(m[3])
		// Value/unit pairs: "1234 ns/op 56 B/op 7 allocs/op ...".
		for i := 0; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("benchfmt: %s: bad value %q", res.Name, fields[i])
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				res.NsPerOp = v
			case "B/op":
				res.BytesPerOp = v
			case "allocs/op":
				res.AllocsPerOp = v
			default:
				if res.Metrics == nil {
					res.Metrics = make(map[string]float64)
				}
				res.Metrics[unit] = v
			}
		}
		out = append(out, res)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("benchfmt: scanning: %w", err)
	}
	return out, nil
}

// Baseline is one committed benchmark snapshot (BENCH_<pr>.json).
type Baseline struct {
	// PR is the pull-request sequence number the snapshot was recorded for.
	PR int `json:"pr"`
	// RecordedAt is an RFC 3339 timestamp of the recording run.
	RecordedAt string `json:"recorded_at"`
	// GoVersion is the toolchain that produced the numbers.
	GoVersion string `json:"go_version"`
	// Benchtime is the -benchtime the suite ran with.
	Benchtime string `json:"benchtime"`
	// Benchmarks holds the results keyed by nothing — a sorted list, stable
	// for diffs.
	Benchmarks []Result `json:"benchmarks"`
}

// WriteBaseline writes b as indented JSON to path (stable key order via the
// sorted benchmark list).
func WriteBaseline(path string, b *Baseline) error {
	sort.Slice(b.Benchmarks, func(i, j int) bool { return b.Benchmarks[i].Name < b.Benchmarks[j].Name })
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return fmt.Errorf("benchfmt: encoding baseline: %w", err)
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadBaseline loads a BENCH_<pr>.json file.
func ReadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("benchfmt: reading baseline: %w", err)
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("benchfmt: %s: %w", filepath.Base(path), err)
	}
	return &b, nil
}

// baselineName matches committed baseline files.
var baselineName = regexp.MustCompile(`^BENCH_(\d+)\.json$`)

// NewestBaseline returns the committed baseline with the highest PR number
// in dir, or ("", nil) when none exists. The filename's number wins over the
// recorded PR field so a mislabeled file cannot shadow newer history.
func NewestBaseline(dir string) (string, *Baseline, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return "", nil, fmt.Errorf("benchfmt: listing %s: %w", dir, err)
	}
	best, bestPR := "", -1
	for _, e := range entries {
		m := baselineName.FindStringSubmatch(e.Name())
		if m == nil {
			continue
		}
		pr, err := strconv.Atoi(m[1])
		if err != nil || pr <= bestPR {
			continue
		}
		best, bestPR = e.Name(), pr
	}
	if best == "" {
		return "", nil, nil
	}
	b, err := ReadBaseline(filepath.Join(dir, best))
	if err != nil {
		return "", nil, err
	}
	return best, b, nil
}

// Regression is one benchmark that got worse beyond the gate's threshold.
type Regression struct {
	Name string
	// Dimension is "ns/op" or "allocs/op".
	Dimension string
	Base, Cur float64
	// Ratio is Cur/Base (+Inf-like large values are reported as Cur when
	// Base is 0).
	Ratio float64
}

func (r Regression) String() string {
	return fmt.Sprintf("%s: %s %.6g → %.6g (%.2fx)", r.Name, r.Dimension, r.Base, r.Cur, r.Ratio)
}

// Compare diffs current results against a baseline and returns the
// regressions. ns/op is gated with nsThreshold (a ratio; e.g. 1.5 fails a
// 50% slowdown) — generous thresholds absorb cross-machine noise, since
// committed baselines and CI runners differ in hardware. allocs/op is
// hardware-independent and gated with allocThreshold; a benchmark going from
// 0 allocs/op to any allocation always fails, because zero-allocation
// guarantees on the hot path are absolute, not proportional. Benchmarks
// present only on one side are ignored (new benchmarks are not regressions;
// removed ones are caught in review).
func Compare(base *Baseline, cur []Result, nsThreshold, allocThreshold float64) []Regression {
	baseBy := make(map[string]Result, len(base.Benchmarks))
	for _, b := range base.Benchmarks {
		baseBy[b.Name] = b
	}
	var regs []Regression
	for _, c := range cur {
		b, ok := baseBy[c.Name]
		if !ok {
			continue
		}
		if b.NsPerOp > 0 && c.NsPerOp/b.NsPerOp > nsThreshold {
			regs = append(regs, Regression{
				Name: c.Name, Dimension: "ns/op",
				Base: b.NsPerOp, Cur: c.NsPerOp, Ratio: c.NsPerOp / b.NsPerOp,
			})
		}
		switch {
		//lint:allow floateq: allocs/op is an integer count; 0 is exact
		case b.AllocsPerOp == 0 && c.AllocsPerOp > 0:
			regs = append(regs, Regression{
				Name: c.Name, Dimension: "allocs/op",
				Base: 0, Cur: c.AllocsPerOp, Ratio: c.AllocsPerOp,
			})
		case b.AllocsPerOp > 0 && c.AllocsPerOp/b.AllocsPerOp > allocThreshold:
			regs = append(regs, Regression{
				Name: c.Name, Dimension: "allocs/op",
				Base: b.AllocsPerOp, Cur: c.AllocsPerOp, Ratio: c.AllocsPerOp / b.AllocsPerOp,
			})
		}
	}
	sort.Slice(regs, func(i, j int) bool {
		if regs[i].Name != regs[j].Name {
			return regs[i].Name < regs[j].Name
		}
		return regs[i].Dimension < regs[j].Dimension
	})
	return regs
}
