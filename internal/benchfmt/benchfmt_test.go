package benchfmt

import (
	"path/filepath"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: cdml/internal/obs
cpu: AMD EPYC 7B13
BenchmarkObsCounterInc-8            	798504354	         1.504 ns/op	       0 B/op	       0 allocs/op
BenchmarkObsHistogramObserve-8      	166352880	         7.211 ns/op	       0 B/op	       0 allocs/op
BenchmarkSparseDot/dim=1024-8       	  123456	      9876 ns/op	     128 B/op	       2 allocs/op
BenchmarkCustomMetric-8             	    1000	   1200000 ns/op	        42.50 items/s
PASS
ok  	cdml/internal/obs	12.345s
`

func TestParse(t *testing.T) {
	results, err := Parse(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 4 {
		t.Fatalf("parsed %d results, want 4", len(results))
	}
	first := results[0]
	if first.Name != "BenchmarkObsCounterInc" {
		t.Errorf("name = %q, want GOMAXPROCS suffix stripped", first.Name)
	}
	if first.N != 798504354 {
		t.Errorf("N = %d", first.N)
	}
	if first.NsPerOp < 1.5 || first.NsPerOp > 1.51 {
		t.Errorf("NsPerOp = %v", first.NsPerOp)
	}
	sub := results[2]
	if sub.Name != "BenchmarkSparseDot/dim=1024" {
		t.Errorf("subbenchmark name = %q", sub.Name)
	}
	//lint:allow floateq: parsed integer fields are exact
	if sub.AllocsPerOp != 2 || sub.BytesPerOp != 128 {
		t.Errorf("benchmem fields = %v B/op %v allocs/op", sub.BytesPerOp, sub.AllocsPerOp)
	}
	custom := results[3]
	if got := custom.Metrics["items/s"]; got < 42.49 || got > 42.51 {
		t.Errorf("custom metric items/s = %v", got)
	}
}

func TestBaselineRoundTripAndNewest(t *testing.T) {
	dir := t.TempDir()
	for _, pr := range []int{3, 10, 7} {
		b := &Baseline{
			PR:         pr,
			RecordedAt: "2026-08-08T00:00:00Z",
			GoVersion:  "go1.24",
			Benchtime:  "100ms",
			Benchmarks: []Result{
				{Name: "BenchmarkZ", NsPerOp: 100, AllocsPerOp: 0},
				{Name: "BenchmarkA", NsPerOp: 50, AllocsPerOp: 3},
			},
		}
		path := filepath.Join(dir, "BENCH_"+map[int]string{3: "3", 10: "10", 7: "7"}[pr]+".json")
		if err := WriteBaseline(path, b); err != nil {
			t.Fatal(err)
		}
	}
	name, newest, err := NewestBaseline(dir)
	if err != nil {
		t.Fatal(err)
	}
	if name != "BENCH_10.json" || newest == nil || newest.PR != 10 {
		t.Fatalf("NewestBaseline = %q pr=%v, want BENCH_10.json pr=10", name, newest)
	}
	// WriteBaseline sorts for diff stability.
	if newest.Benchmarks[0].Name != "BenchmarkA" {
		t.Errorf("baseline not sorted: first = %q", newest.Benchmarks[0].Name)
	}
}

func TestNewestBaselineEmpty(t *testing.T) {
	name, b, err := NewestBaseline(t.TempDir())
	if err != nil || name != "" || b != nil {
		t.Fatalf("empty dir: got (%q, %v, %v), want no baseline and no error", name, b, err)
	}
}

func TestCompare(t *testing.T) {
	base := &Baseline{Benchmarks: []Result{
		{Name: "BenchmarkHot", NsPerOp: 100, AllocsPerOp: 0},
		{Name: "BenchmarkWarm", NsPerOp: 1000, AllocsPerOp: 4},
		{Name: "BenchmarkRemoved", NsPerOp: 10, AllocsPerOp: 0},
	}}
	cur := []Result{
		// 1.2x slower: under the 1.5 ns threshold, but gains an allocation
		// where the baseline had none → always a regression.
		{Name: "BenchmarkHot", NsPerOp: 120, AllocsPerOp: 1},
		// 2x slower: ns/op regression; allocs unchanged.
		{Name: "BenchmarkWarm", NsPerOp: 2000, AllocsPerOp: 4},
		// New benchmark: never a regression.
		{Name: "BenchmarkNew", NsPerOp: 5, AllocsPerOp: 9},
	}
	regs := Compare(base, cur, 1.5, 1.25)
	if len(regs) != 2 {
		t.Fatalf("got %d regressions %v, want 2", len(regs), regs)
	}
	if regs[0].Name != "BenchmarkHot" || regs[0].Dimension != "allocs/op" {
		t.Errorf("regs[0] = %v, want BenchmarkHot allocs/op", regs[0])
	}
	if regs[1].Name != "BenchmarkWarm" || regs[1].Dimension != "ns/op" {
		t.Errorf("regs[1] = %v, want BenchmarkWarm ns/op", regs[1])
	}

	if regs := Compare(base, []Result{{Name: "BenchmarkWarm", NsPerOp: 1400, AllocsPerOp: 4}}, 1.5, 1.25); len(regs) != 0 {
		t.Errorf("within-threshold run flagged: %v", regs)
	}
}
