package stats

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCountMinNeverUndercounts(t *testing.T) {
	c := NewCountMin(0.01, 0.01)
	truth := map[string]uint64{}
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 5000; i++ {
		v := fmt.Sprintf("key-%d", r.Intn(300))
		c.Observe(v)
		truth[v]++
	}
	for v, want := range truth {
		if got := c.Count(v); got < want {
			t.Fatalf("Count(%q) = %d < true %d", v, got, want)
		}
	}
	if c.Total() != 5000 {
		t.Fatalf("Total = %d", c.Total())
	}
}

func TestCountMinErrorBound(t *testing.T) {
	const eps = 0.01
	c := NewCountMin(eps, 0.001)
	r := rand.New(rand.NewSource(2))
	const n = 20000
	truth := map[string]uint64{}
	for i := 0; i < n; i++ {
		v := fmt.Sprintf("k%d", int(1000*r.ExpFloat64())) // skewed stream
		c.Observe(v)
		truth[v]++
	}
	bound := uint64(eps * n * 3) // generous: bound holds w.h.p. per query
	violations := 0
	for v, want := range truth {
		if c.Count(v)-want > bound {
			violations++
		}
	}
	if violations > len(truth)/100 {
		t.Fatalf("%d/%d estimates exceed 3εN overestimation", violations, len(truth))
	}
}

func TestCountMinUnseenKeySmall(t *testing.T) {
	c := NewCountMin(0.001, 0.001)
	for i := 0; i < 100; i++ {
		c.Observe("present")
	}
	if got := c.Count("absent"); got > 100 {
		t.Fatalf("unseen key estimate %d", got)
	}
}

func TestCountMinAdd(t *testing.T) {
	c := NewCountMin(0.01, 0.01)
	c.Add("x", 7)
	if c.Count("x") < 7 || c.Total() != 7 {
		t.Fatalf("Add wrong: count=%d total=%d", c.Count("x"), c.Total())
	}
}

func TestCountMinMerge(t *testing.T) {
	a := NewCountMin(0.01, 0.01)
	b := NewCountMin(0.01, 0.01)
	a.Add("x", 3)
	b.Add("x", 4)
	b.Add("y", 5)
	a.Merge(b)
	if a.Count("x") < 7 || a.Count("y") < 5 || a.Total() != 12 {
		t.Fatalf("merge wrong: x=%d y=%d total=%d", a.Count("x"), a.Count("y"), a.Total())
	}
}

func TestCountMinMergeShapeMismatchPanics(t *testing.T) {
	a := NewCountMin(0.01, 0.01)
	b := NewCountMin(0.1, 0.01)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	a.Merge(b)
}

func TestCountMinBadParamsPanic(t *testing.T) {
	for _, f := range []func(){
		func() { NewCountMin(0, 0.1) },
		func() { NewCountMin(0.1, 1) },
		func() { NewCountMin(1.5, 0.1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestCountMinShape(t *testing.T) {
	c := NewCountMin(0.01, 0.01)
	if c.Width() < 100 || c.Depth() < 2 {
		t.Fatalf("shape %dx%d too small for ε=δ=0.01", c.Depth(), c.Width())
	}
}

// Property: merging two sketches equals sketching the concatenated stream.
func TestQuickCountMinMergeEquivalence(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := NewCountMin(0.05, 0.05)
		b := NewCountMin(0.05, 0.05)
		all := NewCountMin(0.05, 0.05)
		keys := []string{"p", "q", "r", "s"}
		for i := 0; i < 100; i++ {
			v := keys[r.Intn(len(keys))]
			if r.Intn(2) == 0 {
				a.Observe(v)
			} else {
				b.Observe(v)
			}
			all.Observe(v)
		}
		a.Merge(b)
		for _, v := range keys {
			if a.Count(v) != all.Count(v) {
				return false
			}
		}
		return a.Total() == all.Total()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestWelfordGobRoundTrip(t *testing.T) {
	var w Welford
	for _, x := range []float64{1, 2, 3, 4} {
		w.Observe(x)
	}
	b, err := w.GobEncode()
	if err != nil {
		t.Fatal(err)
	}
	var got Welford
	if err := got.GobDecode(b); err != nil {
		t.Fatal(err)
	}
	if got.Count() != 4 || got.Mean() != w.Mean() || got.Var() != w.Var() {
		t.Fatalf("round trip lost state: %+v", got)
	}
	// Continue observing after restore.
	got.Observe(5)
	if got.Count() != 5 {
		t.Fatal("restored Welford cannot continue")
	}
	if err := got.GobDecode([]byte("junk")); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestCategoricalGobRoundTrip(t *testing.T) {
	c := NewCategorical()
	c.Observe("x")
	c.Observe("y")
	c.Observe("x")
	b, err := c.GobEncode()
	if err != nil {
		t.Fatal(err)
	}
	got := NewCategorical()
	if err := got.GobDecode(b); err != nil {
		t.Fatal(err)
	}
	if got.Total() != 3 || got.Count("x") != 2 || got.Cardinality() != 2 {
		t.Fatalf("round trip lost state")
	}
	if ord, ok := got.Ordinal("y"); !ok || ord != 1 {
		t.Fatal("ordinals lost")
	}
	// Continue observing.
	if got.Observe("z") != 2 {
		t.Fatal("restored Categorical cannot continue")
	}
	if err := got.GobDecode([]byte("junk")); err == nil {
		t.Fatal("garbage accepted")
	}
}
