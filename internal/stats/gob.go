package stats

import (
	"bytes"
	"encoding/gob"
	"fmt"
)

// Gob encoding support: the deployment checkpoint (core.Deployer.Checkpoint)
// persists pipeline-component statistics across process restarts, so the
// stateful statistics types implement gob.GobEncoder/GobDecoder over their
// unexported fields.

type welfordWire struct {
	N    int64
	Mean float64
	M2   float64
}

// GobEncode implements gob.GobEncoder.
func (w *Welford) GobEncode() ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(welfordWire{N: w.n, Mean: w.mean, M2: w.m2}); err != nil {
		return nil, fmt.Errorf("stats: encoding Welford: %w", err)
	}
	return buf.Bytes(), nil
}

// GobDecode implements gob.GobDecoder.
func (w *Welford) GobDecode(b []byte) error {
	var wire welfordWire
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&wire); err != nil {
		return fmt.Errorf("stats: decoding Welford: %w", err)
	}
	w.n, w.mean, w.m2 = wire.N, wire.Mean, wire.M2
	return nil
}

type categoricalWire struct {
	Order  []string
	Counts []int64
	Total  int64
}

// GobEncode implements gob.GobEncoder.
func (c *Categorical) GobEncode() ([]byte, error) {
	wire := categoricalWire{Order: c.order, Total: c.total, Counts: make([]int64, len(c.order))}
	for i, v := range c.order {
		wire.Counts[i] = c.counts[v]
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(wire); err != nil {
		return nil, fmt.Errorf("stats: encoding Categorical: %w", err)
	}
	return buf.Bytes(), nil
}

// GobDecode implements gob.GobDecoder.
func (c *Categorical) GobDecode(b []byte) error {
	var wire categoricalWire
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&wire); err != nil {
		return fmt.Errorf("stats: decoding Categorical: %w", err)
	}
	if len(wire.Counts) != len(wire.Order) {
		return fmt.Errorf("stats: corrupt Categorical wire: %d counts for %d values", len(wire.Counts), len(wire.Order))
	}
	c.order = wire.Order
	c.total = wire.Total
	c.ordinal = make(map[string]int, len(wire.Order))
	c.counts = make(map[string]int64, len(wire.Order))
	for i, v := range wire.Order {
		c.ordinal[v] = i
		c.counts[v] = wire.Counts[i]
	}
	return nil
}
