package stats

import "sort"

// Categorical maintains the incrementally updatable hash table behind the
// one-hot encoder: the set of distinct values seen in a categorical column,
// each mapped to a stable ordinal assigned in first-seen order, plus
// occurrence counts.
type Categorical struct {
	ordinal map[string]int
	counts  map[string]int64
	order   []string // values in first-seen order; ordinal i is order[i]
	total   int64
}

// NewCategorical returns an empty categorical statistic.
func NewCategorical() *Categorical {
	return &Categorical{
		ordinal: make(map[string]int),
		counts:  make(map[string]int64),
	}
}

// Observe folds a value into the statistic and returns its ordinal.
func (c *Categorical) Observe(v string) int {
	c.total++
	c.counts[v]++
	if ord, ok := c.ordinal[v]; ok {
		return ord
	}
	ord := len(c.order)
	c.ordinal[v] = ord
	c.order = append(c.order, v)
	return ord
}

// Ordinal returns the ordinal of v and whether v has been observed.
func (c *Categorical) Ordinal(v string) (int, bool) {
	ord, ok := c.ordinal[v]
	return ord, ok
}

// Cardinality returns the number of distinct observed values.
func (c *Categorical) Cardinality() int { return len(c.order) }

// Total returns the number of observations.
func (c *Categorical) Total() int64 { return c.total }

// Count returns how many times v was observed.
func (c *Categorical) Count(v string) int64 { return c.counts[v] }

// Values returns the distinct values in first-seen order. The slice is a
// copy.
func (c *Categorical) Values() []string {
	return append([]string(nil), c.order...)
}

// MostFrequent returns the value with the highest count (ties broken by
// first-seen order) and false if nothing was observed. It backs the
// missing-value imputer for categorical columns.
func (c *Categorical) MostFrequent() (string, bool) {
	if len(c.order) == 0 {
		return "", false
	}
	best := c.order[0]
	for _, v := range c.order[1:] {
		if c.counts[v] > c.counts[best] {
			best = v
		}
	}
	return best, true
}

// Clone returns a deep copy of the statistic. It backs the pipeline
// snapshot contract: the copy can keep serving Ordinal lookups while the
// original continues to Observe new values.
func (c *Categorical) Clone() *Categorical {
	n := &Categorical{
		ordinal: make(map[string]int, len(c.ordinal)),
		counts:  make(map[string]int64, len(c.counts)),
		order:   append([]string(nil), c.order...),
		total:   c.total,
	}
	for k, v := range c.ordinal {
		n.ordinal[k] = v
	}
	for k, v := range c.counts {
		n.counts[k] = v
	}
	return n
}

// Merge folds another categorical statistic into c. Ordinals of values new
// to c are assigned in the other statistic's first-seen order, keeping the
// merge deterministic.
func (c *Categorical) Merge(o *Categorical) {
	c.total += o.total
	for _, v := range o.order {
		c.counts[v] += o.counts[v]
		if _, ok := c.ordinal[v]; !ok {
			c.ordinal[v] = len(c.order)
			c.order = append(c.order, v)
		}
	}
}

// TopK returns up to k values sorted by descending count, ties broken
// lexicographically.
func (c *Categorical) TopK(k int) []string {
	vals := c.Values()
	sort.Slice(vals, func(a, b int) bool {
		ca, cb := c.counts[vals[a]], c.counts[vals[b]]
		if ca != cb {
			return ca > cb
		}
		return vals[a] < vals[b]
	})
	if k < len(vals) {
		vals = vals[:k]
	}
	return vals
}
