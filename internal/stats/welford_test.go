package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func twoPassMeanVar(xs []float64) (mean, variance float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	for _, x := range xs {
		variance += (x - mean) * (x - mean)
	}
	variance /= float64(len(xs))
	return mean, variance
}

func close(a, b, tol float64) bool {
	d := math.Abs(a - b)
	return d <= tol || d <= tol*math.Max(math.Abs(a), math.Abs(b))
}

func TestWelfordEmpty(t *testing.T) {
	var w Welford
	if w.Count() != 0 || w.Mean() != 0 || w.Var() != 0 || w.Std() != 0 || w.SampleVar() != 0 {
		t.Fatal("empty Welford should be all zeros")
	}
}

func TestWelfordSingle(t *testing.T) {
	var w Welford
	w.Observe(42)
	if w.Mean() != 42 || w.Var() != 0 || w.SampleVar() != 0 {
		t.Fatalf("single observation: mean=%v var=%v", w.Mean(), w.Var())
	}
}

func TestWelfordKnownValues(t *testing.T) {
	var w Welford
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		w.Observe(x)
	}
	if !close(w.Mean(), 5, 1e-12) {
		t.Fatalf("mean = %v, want 5", w.Mean())
	}
	if !close(w.Std(), 2, 1e-12) {
		t.Fatalf("std = %v, want 2", w.Std())
	}
}

func TestWelfordObserveN(t *testing.T) {
	var a, b Welford
	a.ObserveN(3, 4)
	for i := 0; i < 4; i++ {
		b.Observe(3)
	}
	if !close(a.Mean(), b.Mean(), 1e-12) || a.Count() != b.Count() {
		t.Fatalf("ObserveN mismatch: %v vs %v", a, b)
	}
	a.ObserveN(5, 0) // no-op
	if a.Count() != 4 {
		t.Fatal("ObserveN with n=0 should be a no-op")
	}
}

func TestWelfordReset(t *testing.T) {
	var w Welford
	w.Observe(1)
	w.Reset()
	if w.Count() != 0 {
		t.Fatal("Reset failed")
	}
}

// Property: Welford matches the two-pass computation.
func TestQuickWelfordMatchesTwoPass(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(200)
		xs := make([]float64, n)
		var w Welford
		for i := range xs {
			xs[i] = r.NormFloat64()*10 + 5
			w.Observe(xs[i])
		}
		mean, variance := twoPassMeanVar(xs)
		return close(w.Mean(), mean, 1e-9) && close(w.Var(), variance, 1e-8)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: merging two Welford halves equals observing the concatenation.
func TestQuickWelfordMergeEquivalence(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(100)
		split := 1 + r.Intn(n-1)
		var all, left, right Welford
		for i := 0; i < n; i++ {
			x := r.NormFloat64() * 3
			all.Observe(x)
			if i < split {
				left.Observe(x)
			} else {
				right.Observe(x)
			}
		}
		left.Merge(right)
		return left.Count() == all.Count() &&
			close(left.Mean(), all.Mean(), 1e-9) &&
			close(left.Var(), all.Var(), 1e-8)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestWelfordMergeEmptyCases(t *testing.T) {
	var a, b Welford
	b.Observe(7)
	a.Merge(b)
	if a.Mean() != 7 || a.Count() != 1 {
		t.Fatal("merge into empty failed")
	}
	var c Welford
	a.Merge(c)
	if a.Count() != 1 {
		t.Fatal("merge of empty changed state")
	}
}

func TestMomentsBasics(t *testing.T) {
	m := NewMoments(2)
	m.Observe([]float64{1, 10})
	m.Observe([]float64{3, 30})
	if m.Count() != 2 {
		t.Fatalf("Count = %d", m.Count())
	}
	if m.Mean(0) != 2 || m.Mean(1) != 20 {
		t.Fatalf("means: %v %v", m.Mean(0), m.Mean(1))
	}
	if m.Min(0) != 1 || m.Max(1) != 30 {
		t.Fatalf("min/max wrong")
	}
	if m.Dim() != 2 {
		t.Fatalf("Dim = %d", m.Dim())
	}
}

func TestMomentsDimensionPanic(t *testing.T) {
	m := NewMoments(2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m.Observe([]float64{1})
}

func TestMomentsEmptyCount(t *testing.T) {
	if NewMoments(0).Count() != 0 {
		t.Fatal("zero-dim moments should count 0")
	}
}

func TestMomentsMergeAndSnapshot(t *testing.T) {
	a := NewMoments(1)
	b := NewMoments(1)
	a.Observe([]float64{1})
	b.Observe([]float64{3})
	snap := a.Snapshot()
	a.Merge(b)
	if a.Mean(0) != 2 {
		t.Fatalf("merged mean = %v", a.Mean(0))
	}
	if snap.Mean(0) != 1 {
		t.Fatalf("snapshot mutated: %v", snap.Mean(0))
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected merge dim panic")
		}
	}()
	a.Merge(NewMoments(2))
}

func TestCategoricalOrdinalsStable(t *testing.T) {
	c := NewCategorical()
	if ord := c.Observe("b"); ord != 0 {
		t.Fatalf("first ordinal = %d", ord)
	}
	if ord := c.Observe("a"); ord != 1 {
		t.Fatalf("second ordinal = %d", ord)
	}
	if ord := c.Observe("b"); ord != 0 {
		t.Fatalf("repeat ordinal = %d", ord)
	}
	if c.Cardinality() != 2 || c.Total() != 3 || c.Count("b") != 2 {
		t.Fatalf("counts wrong: card=%d total=%d", c.Cardinality(), c.Total())
	}
	if ord, ok := c.Ordinal("a"); !ok || ord != 1 {
		t.Fatal("Ordinal lookup failed")
	}
	if _, ok := c.Ordinal("zzz"); ok {
		t.Fatal("unseen value should not have ordinal")
	}
}

func TestCategoricalMostFrequent(t *testing.T) {
	c := NewCategorical()
	if _, ok := c.MostFrequent(); ok {
		t.Fatal("empty MostFrequent should be false")
	}
	c.Observe("x")
	c.Observe("y")
	c.Observe("y")
	if v, ok := c.MostFrequent(); !ok || v != "y" {
		t.Fatalf("MostFrequent = %q", v)
	}
}

func TestCategoricalMerge(t *testing.T) {
	a, b := NewCategorical(), NewCategorical()
	a.Observe("p")
	b.Observe("q")
	b.Observe("p")
	a.Merge(b)
	if a.Total() != 3 || a.Count("p") != 2 || a.Cardinality() != 2 {
		t.Fatalf("merge wrong: total=%d", a.Total())
	}
	if ord, _ := a.Ordinal("p"); ord != 0 {
		t.Fatal("existing ordinal changed by merge")
	}
}

func TestCategoricalTopK(t *testing.T) {
	c := NewCategorical()
	for i := 0; i < 3; i++ {
		c.Observe("hi")
	}
	c.Observe("lo")
	c.Observe("mid")
	c.Observe("mid")
	top := c.TopK(2)
	if len(top) != 2 || top[0] != "hi" || top[1] != "mid" {
		t.Fatalf("TopK = %v", top)
	}
	if got := c.TopK(10); len(got) != 3 {
		t.Fatalf("TopK over-cardinality = %v", got)
	}
}

func TestCategoricalValuesIsCopy(t *testing.T) {
	c := NewCategorical()
	c.Observe("a")
	v := c.Values()
	v[0] = "mutated"
	if c.Values()[0] != "a" {
		t.Fatal("Values leaked internal slice")
	}
}

func TestEWMA(t *testing.T) {
	e := NewEWMA(0.5)
	if e.Initialized() {
		t.Fatal("fresh EWMA should be uninitialized")
	}
	e.Observe(10)
	if e.Value() != 10 {
		t.Fatalf("first value = %v", e.Value())
	}
	e.Observe(20)
	if e.Value() != 15 {
		t.Fatalf("smoothed = %v, want 15", e.Value())
	}
}

func TestEWMABadAlphaPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewEWMA(0)
}

func TestCounter(t *testing.T) {
	var c Counter
	if c.Mean() != 0 {
		t.Fatal("empty mean should be 0")
	}
	c.Observe(2)
	c.Add(3, 10)
	if c.Count() != 4 || c.Sum() != 12 || c.Mean() != 3 {
		t.Fatalf("counter wrong: n=%d sum=%v", c.Count(), c.Sum())
	}
}

func TestReservoirFillsToCapacity(t *testing.T) {
	r := NewReservoir(5, 1)
	for i := 0; i < 3; i++ {
		r.Observe(float64(i))
	}
	if len(r.Sample()) != 3 || r.Seen() != 3 {
		t.Fatal("reservoir under capacity should keep everything")
	}
	for i := 0; i < 100; i++ {
		r.Observe(float64(i))
	}
	if len(r.Sample()) != 5 {
		t.Fatalf("reservoir size = %d, want 5", len(r.Sample()))
	}
}

func TestReservoirUniformity(t *testing.T) {
	// Each of 0..99 should land in a 10-slot reservoir with p=0.1; over many
	// trials the hit rate of item 0 should be near 0.1.
	hits := 0
	const trials = 2000
	for tr := 0; tr < trials; tr++ {
		r := NewReservoir(10, int64(tr))
		for i := 0; i < 100; i++ {
			r.Observe(float64(i))
		}
		for _, v := range r.Sample() {
			if v == 0 {
				hits++
			}
		}
	}
	rate := float64(hits) / trials
	if rate < 0.07 || rate > 0.13 {
		t.Fatalf("item-0 inclusion rate = %v, want ≈0.1", rate)
	}
}

func TestReservoirQuantile(t *testing.T) {
	r := NewReservoir(1000, 7)
	for i := 1; i <= 1000; i++ {
		r.Observe(float64(i))
	}
	if q := r.Quantile(0.5); math.Abs(q-500) > 2 {
		t.Fatalf("median = %v", q)
	}
	if q := r.Quantile(0); q != 1 {
		t.Fatalf("q0 = %v", q)
	}
	if q := r.Quantile(1); q != 1000 {
		t.Fatalf("q1 = %v", q)
	}
}

func TestReservoirQuantileEmpty(t *testing.T) {
	r := NewReservoir(4, 1)
	if !math.IsNaN(r.Quantile(0.5)) {
		t.Fatal("empty quantile should be NaN")
	}
}

func TestReservoirBadCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewReservoir(0, 1)
}
