// Package stats provides the incremental ("online") statistics that power
// the platform's online statistics computation (paper §3.1). Pipeline
// components such as the standard scaler and the one-hot encoder update
// these statistics while the online learner streams over incoming data, so
// that proactive training and dynamic re-materialization never need to
// rescan historical data to recompute them.
//
// Every statistic in this package is strictly incremental: observing a value
// is O(1) (amortized) and two instances can be merged. Statistics that
// cannot be maintained incrementally (exact percentiles, PCA) are
// deliberately absent, mirroring the paper's supported-component contract.
package stats

import "math"

// Welford maintains the running mean and variance of a stream of values
// using Welford's numerically stable algorithm.
type Welford struct {
	n    int64
	mean float64
	m2   float64
}

// Observe folds a value into the statistic.
func (w *Welford) Observe(x float64) {
	w.n++
	delta := x - w.mean
	w.mean += delta / float64(w.n)
	w.m2 += delta * (x - w.mean)
}

// ObserveN folds a value observed with integer weight n ≥ 1. It is
// equivalent to calling Observe(x) n times.
func (w *Welford) ObserveN(x float64, n int64) {
	if n <= 0 {
		return
	}
	other := Welford{n: n, mean: x}
	w.Merge(other)
}

// Merge folds another Welford statistic into w (Chan et al. parallel
// variance formula).
func (w *Welford) Merge(o Welford) {
	if o.n == 0 {
		return
	}
	if w.n == 0 {
		*w = o
		return
	}
	n := w.n + o.n
	delta := o.mean - w.mean
	w.m2 += o.m2 + delta*delta*float64(w.n)*float64(o.n)/float64(n)
	w.mean += delta * float64(o.n) / float64(n)
	w.n = n
}

// Count returns the number of observed values.
func (w *Welford) Count() int64 { return w.n }

// Mean returns the running mean, or 0 before any observation.
func (w *Welford) Mean() float64 { return w.mean }

// Var returns the population variance, or 0 with fewer than one observation.
func (w *Welford) Var() float64 {
	if w.n < 1 {
		return 0
	}
	return w.m2 / float64(w.n)
}

// SampleVar returns the sample (Bessel-corrected) variance, or 0 with fewer
// than two observations.
func (w *Welford) SampleVar() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// Std returns the population standard deviation.
func (w *Welford) Std() float64 { return math.Sqrt(w.Var()) }

// Reset clears the statistic.
func (w *Welford) Reset() { *w = Welford{} }

// Moments maintains per-feature Welford statistics plus min/max over dense
// feature vectors of a fixed dimension. It is the state behind the standard
// scaler.
type Moments struct {
	cols []Welford
	min  []float64
	max  []float64
}

// NewMoments returns per-feature moments for dim features.
func NewMoments(dim int) *Moments {
	m := &Moments{
		cols: make([]Welford, dim),
		min:  make([]float64, dim),
		max:  make([]float64, dim),
	}
	for i := range m.min {
		m.min[i] = math.Inf(1)
		m.max[i] = math.Inf(-1)
	}
	return m
}

// Dim returns the number of tracked features.
func (m *Moments) Dim() int { return len(m.cols) }

// Observe folds a dense row into the per-feature statistics. It panics if
// the row dimension differs from the tracked dimension.
func (m *Moments) Observe(row []float64) {
	if len(row) != len(m.cols) {
		panic("stats: Moments.Observe dimension mismatch")
	}
	for i, v := range row {
		m.cols[i].Observe(v)
		if v < m.min[i] {
			m.min[i] = v
		}
		if v > m.max[i] {
			m.max[i] = v
		}
	}
}

// Count returns the number of observed rows.
func (m *Moments) Count() int64 {
	if len(m.cols) == 0 {
		return 0
	}
	return m.cols[0].Count()
}

// Mean returns the running mean of feature i.
func (m *Moments) Mean(i int) float64 { return m.cols[i].Mean() }

// Std returns the population standard deviation of feature i.
func (m *Moments) Std(i int) float64 { return m.cols[i].Std() }

// Min returns the minimum observed value of feature i.
func (m *Moments) Min(i int) float64 { return m.min[i] }

// Max returns the maximum observed value of feature i.
func (m *Moments) Max(i int) float64 { return m.max[i] }

// Merge folds another Moments of the same dimension into m.
func (m *Moments) Merge(o *Moments) {
	if len(o.cols) != len(m.cols) {
		panic("stats: Moments.Merge dimension mismatch")
	}
	for i := range m.cols {
		m.cols[i].Merge(o.cols[i])
		if o.min[i] < m.min[i] {
			m.min[i] = o.min[i]
		}
		if o.max[i] > m.max[i] {
			m.max[i] = o.max[i]
		}
	}
}

// Snapshot returns a deep copy, used to freeze pipeline statistics when a
// model is handed to the proactive trainer.
func (m *Moments) Snapshot() *Moments {
	c := &Moments{
		cols: append([]Welford(nil), m.cols...),
		min:  append([]float64(nil), m.min...),
		max:  append([]float64(nil), m.max...),
	}
	return c
}
