package stats

import (
	"fmt"
	"hash/fnv"
	"math"
)

// CountMin is a Count-Min sketch: a fixed-memory, strictly incremental
// frequency estimator for categorical streams. Pipeline components use it
// when a column's exact domain would outgrow memory (the exact hash table
// of the one-hot encoder is the precise variant; the sketch is the bounded
// one). Estimates never undercount: Count(v) ≥ true count, with
// overestimation bounded by εN at confidence 1−δ for a (⌈e/ε⌉ × ⌈ln 1/δ⌉)
// table.
type CountMin struct {
	width int
	depth int
	table [][]uint64
	n     uint64
}

// NewCountMin returns a sketch with the given error bound ε and failure
// probability δ (both in (0, 1)).
func NewCountMin(epsilon, delta float64) *CountMin {
	if epsilon <= 0 || epsilon >= 1 || delta <= 0 || delta >= 1 {
		panic(fmt.Sprintf("stats: CountMin parameters out of range: ε=%v δ=%v", epsilon, delta))
	}
	width := int(math.Ceil(math.E / epsilon))
	depth := int(math.Ceil(math.Log(1 / delta)))
	t := make([][]uint64, depth)
	for i := range t {
		t[i] = make([]uint64, width)
	}
	return &CountMin{width: width, depth: depth, table: t}
}

// Width and Depth expose the table shape.
func (c *CountMin) Width() int { return c.width }

// Depth returns the number of hash rows.
func (c *CountMin) Depth() int { return c.depth }

// buckets computes the per-row bucket indices of v using FNV with per-row
// salts.
func (c *CountMin) buckets(v string, out []int) {
	for row := 0; row < c.depth; row++ {
		h := fnv.New64a()
		h.Write([]byte{byte(row), byte(row >> 8)})
		h.Write([]byte(v))
		out[row] = int(h.Sum64() % uint64(c.width))
	}
}

// Observe adds one occurrence of v.
func (c *CountMin) Observe(v string) { c.Add(v, 1) }

// Add adds k occurrences of v.
func (c *CountMin) Add(v string, k uint64) {
	buckets := make([]int, c.depth)
	c.buckets(v, buckets)
	for row, b := range buckets {
		c.table[row][b] += k
	}
	c.n += k
}

// Count returns the estimated occurrence count of v (never an
// undercount).
func (c *CountMin) Count(v string) uint64 {
	buckets := make([]int, c.depth)
	c.buckets(v, buckets)
	min := uint64(math.MaxUint64)
	for row, b := range buckets {
		if c.table[row][b] < min {
			min = c.table[row][b]
		}
	}
	return min
}

// Total returns the number of observed occurrences.
func (c *CountMin) Total() uint64 { return c.n }

// Merge folds another sketch with identical shape into c.
func (c *CountMin) Merge(o *CountMin) {
	if c.width != o.width || c.depth != o.depth {
		panic(fmt.Sprintf("stats: merging CountMin of shape %dx%d into %dx%d", o.depth, o.width, c.depth, c.width))
	}
	for row := range c.table {
		for b := range c.table[row] {
			c.table[row][b] += o.table[row][b]
		}
	}
	c.n += o.n
}
