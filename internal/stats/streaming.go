package stats

import (
	"math"
	"math/rand"
)

// EWMA maintains an exponentially weighted moving average. The scheduler
// uses it to track prediction rate and latency (paper §4.1), which must
// reflect recent load rather than the whole deployment history.
type EWMA struct {
	alpha float64
	value float64
	init  bool
}

// NewEWMA returns an EWMA with smoothing factor alpha in (0, 1]. Larger
// alpha weights recent observations more heavily.
func NewEWMA(alpha float64) *EWMA {
	if alpha <= 0 || alpha > 1 {
		panic("stats: EWMA alpha must be in (0,1]")
	}
	return &EWMA{alpha: alpha}
}

// Observe folds a value into the average.
func (e *EWMA) Observe(x float64) {
	if !e.init {
		e.value = x
		e.init = true
		return
	}
	e.value = e.alpha*x + (1-e.alpha)*e.value
}

// Value returns the current average, or 0 before any observation.
func (e *EWMA) Value() float64 { return e.value }

// Initialized reports whether at least one value was observed.
func (e *EWMA) Initialized() bool { return e.init }

// Counter is a simple monotonically increasing event counter with a sum, so
// rates (sum/count) can be derived.
type Counter struct {
	n   int64
	sum float64
}

// Observe adds one event with the given magnitude.
func (c *Counter) Observe(x float64) { c.n++; c.sum += x }

// Add adds n events totalling sum.
func (c *Counter) Add(n int64, sum float64) { c.n += n; c.sum += sum }

// Count returns the number of events.
func (c *Counter) Count() int64 { return c.n }

// Sum returns the accumulated magnitude.
func (c *Counter) Sum() float64 { return c.sum }

// Mean returns sum/count, or 0 when empty.
func (c *Counter) Mean() float64 {
	if c.n == 0 {
		return 0
	}
	return c.sum / float64(c.n)
}

// Reservoir maintains a uniform random sample of fixed capacity over an
// unbounded stream (Vitter's algorithm R). The platform uses it for
// approximate distributional sanity checks on unbounded columns.
type Reservoir struct {
	cap   int
	seen  int64
	items []float64
	rng   *rand.Rand
}

// NewReservoir returns a reservoir of the given capacity seeded
// deterministically.
func NewReservoir(capacity int, seed int64) *Reservoir {
	if capacity <= 0 {
		panic("stats: reservoir capacity must be positive")
	}
	return &Reservoir{cap: capacity, rng: rand.New(rand.NewSource(seed))}
}

// Observe folds a value into the reservoir.
func (r *Reservoir) Observe(x float64) {
	r.seen++
	if len(r.items) < r.cap {
		r.items = append(r.items, x)
		return
	}
	if j := r.rng.Int63n(r.seen); j < int64(r.cap) {
		r.items[j] = x
	}
}

// Seen returns the number of observed values.
func (r *Reservoir) Seen() int64 { return r.seen }

// Sample returns a copy of the current sample.
func (r *Reservoir) Sample() []float64 { return append([]float64(nil), r.items...) }

// Quantile returns the q-quantile (q in [0,1]) estimated from the reservoir
// sample, or NaN when empty. This is an approximation: exact streaming
// percentiles are non-incremental and therefore unsupported as pipeline
// statistics (paper §3.1); the reservoir estimate exists for diagnostics
// only.
func (r *Reservoir) Quantile(q float64) float64 {
	if len(r.items) == 0 {
		return math.NaN()
	}
	s := r.Sample()
	// insertion sort is fine at reservoir sizes
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	frac := pos - float64(lo)
	if lo+1 >= len(s) {
		return s[len(s)-1]
	}
	return s[lo]*(1-frac) + s[lo+1]*frac
}
