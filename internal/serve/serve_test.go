package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"

	"cdml/internal/core"
	"cdml/internal/data"
	"cdml/internal/eval"
	"cdml/internal/model"
	"cdml/internal/opt"
	"cdml/internal/pipeline"
	"cdml/internal/sample"
)

// testParser parses "label,x0,x1".
type testParser struct{}

func (testParser) Name() string { return "serve-test-parser" }

func (testParser) Parse(records [][]byte) (*data.Frame, error) {
	var ys, x0s, x1s []float64
	for _, rec := range records {
		parts := bytes.Split(rec, []byte(","))
		if len(parts) != 3 {
			continue
		}
		y, e1 := strconv.ParseFloat(string(parts[0]), 64)
		x0, e2 := strconv.ParseFloat(string(parts[1]), 64)
		x1, e3 := strconv.ParseFloat(string(parts[2]), 64)
		if e1 != nil || e2 != nil || e3 != nil {
			continue
		}
		ys = append(ys, y)
		x0s = append(x0s, x0)
		x1s = append(x1s, x1)
	}
	f := data.NewFrame(len(ys))
	f.SetFloat("label", ys)
	f.SetFloat("x0", x0s)
	f.SetFloat("x1", x1s)
	return f, nil
}

func newTestServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	cfg := core.Config{
		Mode: core.ModeContinuous,
		NewPipeline: func() *pipeline.Pipeline {
			return pipeline.New(testParser{},
				pipeline.NewStandardScaler([]string{"x0", "x1"}),
				pipeline.NewAssembler([]string{"x0", "x1"}, nil, "features"),
			)
		},
		NewModel:       func() model.Model { return model.NewSVM(2, 1e-4) },
		NewOptimizer:   func() opt.Optimizer { return opt.NewAdam(0.05) },
		Store:          data.NewStore(data.NewMemoryBackend()),
		Sampler:        sample.NewTime(1),
		SampleChunks:   3,
		ProactiveEvery: 2,
		Metric:         &eval.Misclassification{},
		Predict:        core.ClassifyPredictor,
	}
	dep, err := core.NewDeployer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := New(dep, WithLogger(nil))
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return s, ts
}

// defaultDep resolves the deployer serving the "default" deployment, which
// the old single-deployment API exposed as a server field.
func defaultDep(t *testing.T, s *Server) *core.Deployer {
	t.Helper()
	d, ok := s.registry.Get(DefaultDeployment)
	if !ok {
		t.Fatal("no default deployment")
	}
	return d.Serving()
}

func chunkBody(r *rand.Rand, n int) string {
	var b strings.Builder
	for i := 0; i < n; i++ {
		x0, x1 := r.NormFloat64(), r.NormFloat64()
		y := "+1"
		if x0+x1 < 0 {
			y = "-1"
		}
		fmt.Fprintf(&b, "%s,%.4f,%.4f\n", y, x0, x1)
	}
	return b.String()
}

func TestTrainThenPredict(t *testing.T) {
	_, ts := newTestServer(t)
	r := rand.New(rand.NewSource(1))
	client := ts.Client()

	// Train over several chunks.
	for i := 0; i < 20; i++ {
		resp, err := client.Post(ts.URL+"/train", "text/plain", strings.NewReader(chunkBody(r, 40)))
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("/train status %d", resp.StatusCode)
		}
		var tr TrainResponse
		if err := json.NewDecoder(resp.Body).Decode(&tr); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if tr.Ingested != 40 {
			t.Fatalf("ingested %d", tr.Ingested)
		}
	}

	// Predict on fresh data.
	resp, err := client.Post(ts.URL+"/predict", "text/plain", strings.NewReader(chunkBody(r, 100)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/predict status %d", resp.StatusCode)
	}
	var pr PredictResponse
	if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
		t.Fatal(err)
	}
	if pr.Served != 100 || len(pr.Predictions) != 100 {
		t.Fatalf("served %d, preds %d", pr.Served, len(pr.Predictions))
	}
	for _, p := range pr.Predictions {
		if p != 1 && p != -1 {
			t.Fatalf("prediction %v not a class label", p)
		}
	}
}

func TestStatsEndpoint(t *testing.T) {
	_, ts := newTestServer(t)
	r := rand.New(rand.NewSource(2))
	client := ts.Client()
	for i := 0; i < 6; i++ {
		resp, err := client.Post(ts.URL+"/train", "text/plain", strings.NewReader(chunkBody(r, 20)))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	resp, err := client.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Mode != "continuous" {
		t.Fatalf("mode %q", st.Mode)
	}
	if st.Evaluated != 120 {
		t.Fatalf("evaluated %d, want 120", st.Evaluated)
	}
	if st.ProactiveRuns == 0 {
		t.Fatal("no proactive training over 6 chunks with period 2")
	}
	if st.CostSeconds <= 0 {
		t.Fatal("no cost recorded")
	}
}

func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t)
	resp, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
}

func TestMethodValidation(t *testing.T) {
	_, ts := newTestServer(t)
	client := ts.Client()
	cases := []struct {
		method, path string
	}{
		{http.MethodGet, "/predict"},
		{http.MethodGet, "/train"},
		{http.MethodPost, "/stats"},
	}
	for _, c := range cases {
		req, _ := http.NewRequest(c.method, ts.URL+c.path, nil)
		resp, err := client.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Fatalf("%s %s: status %d", c.method, c.path, resp.StatusCode)
		}
	}
}

func TestEmptyBodyRejected(t *testing.T) {
	_, ts := newTestServer(t)
	for _, path := range []string{"/predict", "/train"} {
		resp, err := ts.Client().Post(ts.URL+path, "text/plain", strings.NewReader("\n\n"))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: status %d", path, resp.StatusCode)
		}
	}
}

func TestMalformedRecordsDroppedNotFatal(t *testing.T) {
	_, ts := newTestServer(t)
	body := "+1,0.5,0.5\ngarbage-line\n-1,-0.5,-0.5\n"
	resp, err := ts.Client().Post(ts.URL+"/predict", "text/plain", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var pr PredictResponse
	if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
		t.Fatal(err)
	}
	if pr.Served != 2 || pr.Dropped != 1 {
		t.Fatalf("served %d dropped %d", pr.Served, pr.Dropped)
	}
}

func TestCRLFBodies(t *testing.T) {
	_, ts := newTestServer(t)
	body := "+1,0.5,0.5\r\n-1,-0.5,-0.5\r\n"
	resp, err := ts.Client().Post(ts.URL+"/predict", "text/plain", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var pr PredictResponse
	if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
		t.Fatal(err)
	}
	if pr.Served != 2 {
		t.Fatalf("served %d with CRLF endings", pr.Served)
	}
}

func TestConcurrentTrainAndPredict(t *testing.T) {
	_, ts := newTestServer(t)
	client := ts.Client()
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 4; g++ {
		wg.Add(2)
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			for i := 0; i < 8; i++ {
				resp, err := client.Post(ts.URL+"/train", "text/plain", strings.NewReader(chunkBody(r, 10)))
				if err != nil {
					errs <- err
					return
				}
				resp.Body.Close()
			}
		}(int64(g))
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed + 100))
			for i := 0; i < 8; i++ {
				resp, err := client.Post(ts.URL+"/predict", "text/plain", strings.NewReader(chunkBody(r, 10)))
				if err != nil {
					errs <- err
					return
				}
				resp.Body.Close()
			}
		}(int64(g))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestCheckpointRestoreOverHTTP(t *testing.T) {
	_, ts := newTestServer(t)
	client := ts.Client()
	r := rand.New(rand.NewSource(9))
	for i := 0; i < 10; i++ {
		resp, err := client.Post(ts.URL+"/train", "text/plain", strings.NewReader(chunkBody(r, 30)))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	// Pull a checkpoint from the trained server.
	resp, err := client.Get(ts.URL + "/checkpoint")
	if err != nil {
		t.Fatal(err)
	}
	snapshot, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || len(snapshot) == 0 {
		t.Fatalf("checkpoint empty: %v", err)
	}

	// Push it into a fresh server and compare predictions.
	_, ts2 := newTestServer(t)
	resp2, err := ts2.Client().Post(ts2.URL+"/restore", "application/octet-stream", bytes.NewReader(snapshot))
	if err != nil {
		t.Fatal(err)
	}
	if resp2.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp2.Body)
		t.Fatalf("/restore status %d: %s", resp2.StatusCode, body)
	}
	resp2.Body.Close()

	query := chunkBody(r, 50)
	var preds [2]PredictResponse
	for i, url := range []string{ts.URL, ts2.URL} {
		resp, err := client.Post(url+"/predict", "text/plain", strings.NewReader(query))
		if err != nil {
			t.Fatal(err)
		}
		if err := json.NewDecoder(resp.Body).Decode(&preds[i]); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	for i := range preds[0].Predictions {
		if preds[0].Predictions[i] != preds[1].Predictions[i] {
			t.Fatalf("prediction %d differs after HTTP restore", i)
		}
	}
}

func TestRestoreRejectsGarbage(t *testing.T) {
	_, ts := newTestServer(t)
	resp, err := ts.Client().Post(ts.URL+"/restore", "application/octet-stream", strings.NewReader("garbage"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d", resp.StatusCode)
	}
}

// zeros is an endless stream of zero bytes (the test bounds it with
// io.LimitReader); an io.Reader body forces chunked encoding, so the server
// cannot rely on Content-Length and must detect the overflow while reading.
type zeros struct{}

func (zeros) Read(p []byte) (int, error) {
	for i := range p {
		p[i] = 0
	}
	return len(p), nil
}

// TestRestoreOversizedBodyIs413 covers the truncation bug: a checkpoint
// larger than the body cap used to be silently cut at the cap and surfaced
// as a confusing 400 decode error. It must be a 413 with a stable code,
// whether the size is declared up front or discovered mid-stream.
func TestRestoreOversizedBodyIs413(t *testing.T) {
	_, ts := newTestServer(t)
	const tooBig = maxBody + 1

	check := func(t *testing.T, resp *http.Response) {
		t.Helper()
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusRequestEntityTooLarge {
			t.Fatalf("status %d, want 413", resp.StatusCode)
		}
		var eb ErrorBody
		if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil {
			t.Fatal(err)
		}
		if eb.Error.Code != "payload_too_large" {
			t.Fatalf("error code %q, want payload_too_large", eb.Error.Code)
		}
	}

	t.Run("content-length", func(t *testing.T) {
		// bytes.Reader bodies carry Content-Length, so the server can refuse
		// before reading the payload.
		resp, err := ts.Client().Post(ts.URL+"/v1/restore", "application/octet-stream",
			bytes.NewReader(make([]byte, tooBig)))
		if err != nil {
			t.Fatal(err)
		}
		check(t, resp)
	})

	t.Run("chunked", func(t *testing.T) {
		resp, err := ts.Client().Post(ts.URL+"/v1/restore", "application/octet-stream",
			io.LimitReader(zeros{}, tooBig))
		if err != nil {
			t.Fatal(err)
		}
		check(t, resp)
	})
}

// TestRestoreOversizedBodyNotApplied pins down the order of validation: a
// valid checkpoint followed by trailing bytes that push the body past the
// cap must be rejected with 413 *without* having been applied — the
// handler used to restore first and size-check afterwards, replacing the
// live model and then telling the client it had not.
func TestRestoreOversizedBodyNotApplied(t *testing.T) {
	// Source of a decodable checkpoint: a trained server.
	_, ts1 := newTestServer(t)
	r := rand.New(rand.NewSource(41))
	for i := 0; i < 5; i++ {
		resp, err := ts1.Client().Post(ts1.URL+"/train", "text/plain", strings.NewReader(chunkBody(r, 30)))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	resp, err := ts1.Client().Get(ts1.URL + "/checkpoint")
	if err != nil {
		t.Fatal(err)
	}
	snapshot, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || len(snapshot) == 0 {
		t.Fatalf("checkpoint empty: %v", err)
	}

	// Target: a fresh server whose live state must survive the rejection.
	s2, ts2 := newTestServer(t)
	before := defaultDep(t, s2).Current().Version()
	// io.MultiReader has no Content-Length, so the overflow is only
	// discoverable mid-stream — after the valid checkpoint prefix.
	body := io.MultiReader(bytes.NewReader(snapshot), io.LimitReader(zeros{}, maxBody+1))
	resp2, err := ts2.Client().Post(ts2.URL+"/v1/restore", "application/octet-stream", body)
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d, want 413", resp2.StatusCode)
	}
	if got := defaultDep(t, s2).Current().Version(); got != before {
		t.Fatalf("rejected restore was applied anyway: snapshot version %d, want unchanged %d", got, before)
	}
}

// TestV1EndpointsServeSameAPI exercises the canonical /v1 surface: every
// endpoint answers under its versioned path exactly like the legacy alias.
func TestV1EndpointsServeSameAPI(t *testing.T) {
	_, ts := newTestServer(t)
	r := rand.New(rand.NewSource(31))
	client := ts.Client()

	for i := 0; i < 6; i++ {
		resp, err := client.Post(ts.URL+"/v1/train", "text/plain", strings.NewReader(chunkBody(r, 20)))
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("/v1/train status %d", resp.StatusCode)
		}
		var tr TrainResponse
		if err := json.NewDecoder(resp.Body).Decode(&tr); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if tr.Ingested != 20 {
			t.Fatalf("/v1/train ingested %d", tr.Ingested)
		}
	}

	resp, err := client.Post(ts.URL+"/v1/predict", "text/plain", strings.NewReader(chunkBody(r, 30)))
	if err != nil {
		t.Fatal(err)
	}
	var pr PredictResponse
	if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if pr.Served != 30 {
		t.Fatalf("/v1/predict served %d", pr.Served)
	}

	for _, path := range []string{"/v1/stats", "/v1/metrics", "/v1/trace", "/v1/checkpoint", "/v1/healthz"} {
		resp, err := client.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s status %d", path, resp.StatusCode)
		}
	}
}

// TestErrorEnvelope checks the uniform {"error":{"code","message"}} shape
// and the machine-readable codes on both API versions.
func TestErrorEnvelope(t *testing.T) {
	_, ts := newTestServer(t)
	client := ts.Client()
	cases := []struct {
		name       string
		do         func() (*http.Response, error)
		wantStatus int
		wantCode   string
	}{
		{"empty body v1", func() (*http.Response, error) {
			return client.Post(ts.URL+"/v1/predict", "text/plain", strings.NewReader("\n"))
		}, http.StatusBadRequest, "bad_request"},
		{"empty body legacy", func() (*http.Response, error) {
			return client.Post(ts.URL+"/predict", "text/plain", strings.NewReader("\n"))
		}, http.StatusBadRequest, "bad_request"},
		{"wrong method v1", func() (*http.Response, error) {
			req, _ := http.NewRequest(http.MethodGet, ts.URL+"/v1/train", nil)
			return client.Do(req)
		}, http.StatusMethodNotAllowed, "method_not_allowed"},
		{"bad trace n", func() (*http.Response, error) {
			return client.Get(ts.URL + "/v1/trace?n=abc")
		}, http.StatusBadRequest, "bad_request"},
	}
	for _, c := range cases {
		resp, err := c.do()
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if resp.StatusCode != c.wantStatus {
			t.Fatalf("%s: status %d, want %d", c.name, resp.StatusCode, c.wantStatus)
		}
		var eb ErrorBody
		if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil {
			t.Fatalf("%s: decoding envelope: %v", c.name, err)
		}
		resp.Body.Close()
		if eb.Error.Code != c.wantCode {
			t.Fatalf("%s: code %q, want %q", c.name, eb.Error.Code, c.wantCode)
		}
		if eb.Error.Message == "" {
			t.Fatalf("%s: empty error message", c.name)
		}
	}
}

func TestCheckpointMethodValidation(t *testing.T) {
	_, ts := newTestServer(t)
	resp, err := ts.Client().Post(ts.URL+"/checkpoint", "text/plain", strings.NewReader(""))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST /checkpoint status %d", resp.StatusCode)
	}
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/restore", nil)
	resp2, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /restore status %d", resp2.StatusCode)
	}
}
