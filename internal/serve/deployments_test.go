package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"cdml/internal/core"
	"cdml/internal/data"
	"cdml/internal/eval"
	"cdml/internal/model"
	"cdml/internal/obs"
	"cdml/internal/opt"
	"cdml/internal/pipeline"
	"cdml/internal/registry"
)

// fleetConfig builds a minimal online deployment for registry-backed tests;
// newOpt picks a learning (Adam) or deliberately frozen (zero-rate SGD)
// optimizer.
func fleetConfig(newOpt func() opt.Optimizer) core.Config {
	return core.Config{
		Mode: core.ModeOnline,
		NewPipeline: func() *pipeline.Pipeline {
			return pipeline.New(testParser{},
				pipeline.NewStandardScaler([]string{"x0", "x1"}),
				pipeline.NewAssembler([]string{"x0", "x1"}, nil, "features"),
			)
		},
		NewModel:     func() model.Model { return model.NewSVM(2, 1e-4) },
		NewOptimizer: newOpt,
		Store:        data.NewStore(data.NewMemoryBackend()),
		Metric:       &eval.Misclassification{},
		Predict:      core.ClassifyPredictor,
	}
}

// testBuilder interprets {"optimizer": "adam"|"frozen"} specs.
func testBuilder(name string, spec json.RawMessage) (core.Config, error) {
	var req struct {
		Optimizer string `json:"optimizer"`
	}
	if len(spec) > 0 {
		if err := json.Unmarshal(spec, &req); err != nil {
			return core.Config{}, fmt.Errorf("bad spec: %w", err)
		}
	}
	switch req.Optimizer {
	case "", "adam":
		return fleetConfig(func() opt.Optimizer { return opt.NewAdam(0.05) }), nil
	case "frozen":
		return fleetConfig(func() opt.Optimizer { return opt.NewSGD(0) }), nil
	default:
		return core.Config{}, fmt.Errorf("unknown optimizer %q", req.Optimizer)
	}
}

// newFleetServer starts a server over an empty registry with the test
// ConfigBuilder wired in, so deployments are created over HTTP.
func newFleetServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	reg := registry.New(registry.Options{Metrics: obs.NewRegistry()})
	s := NewWithRegistry(reg, WithLogger(nil), WithConfigBuilder(testBuilder))
	ts := httptest.NewServer(s)
	t.Cleanup(func() {
		ts.Close()
		reg.Close()
	})
	return s, ts
}

// trainChunk generates n "label,x0,x1" records with y = sign(x0+x1).
func trainChunk(r *rand.Rand, n int) []byte {
	var buf bytes.Buffer
	for i := 0; i < n; i++ {
		x0, x1 := r.NormFloat64(), r.NormFloat64()
		y := "+1"
		if x0+x1 < 0 {
			y = "-1"
		}
		fmt.Fprintf(&buf, "%s,%.6f,%.6f\n", y, x0, x1)
	}
	return buf.Bytes()
}

func doJSON(t *testing.T, method, url string, body []byte) (int, []byte) {
	t.Helper()
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, out
}

func errCode(t *testing.T, body []byte) string {
	t.Helper()
	var e ErrorBody
	if err := json.Unmarshal(body, &e); err != nil {
		t.Fatalf("not an error envelope: %s", body)
	}
	return e.Error.Code
}

// TestScopedRoutesMatchLegacy verifies the legacy /v1/* surface and the
// scoped /v1/deployments/default/* surface answer from the same deployment.
func TestScopedRoutesMatchLegacy(t *testing.T) {
	_, ts := newTestServer(t)
	rnd := rand.New(rand.NewSource(7))
	for i := 0; i < 4; i++ {
		code, body := doJSON(t, http.MethodPost, ts.URL+"/v1/deployments/default/train", trainChunk(rnd, 30))
		if code != http.StatusOK {
			t.Fatalf("scoped train: %d %s", code, body)
		}
	}
	query := []byte("0,0.5,0.5\n0,-1.2,-0.3\n")
	_, legacy := doJSON(t, http.MethodPost, ts.URL+"/v1/predict", query)
	codeScoped, scoped := doJSON(t, http.MethodPost, ts.URL+"/v1/deployments/default/predict", query)
	if codeScoped != http.StatusOK {
		t.Fatalf("scoped predict: %d %s", codeScoped, scoped)
	}
	var a, b PredictResponse
	if err := json.Unmarshal(legacy, &a); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(scoped, &b); err != nil {
		t.Fatal(err)
	}
	if len(a.Predictions) != 2 || len(b.Predictions) != 2 {
		t.Fatalf("predictions: legacy %v scoped %v", a.Predictions, b.Predictions)
	}
	for i := range a.Predictions {
		if a.Predictions[i] != b.Predictions[i] {
			t.Fatalf("prediction %d differs: legacy %v scoped %v", i, a.Predictions, b.Predictions)
		}
	}

	code, body := doJSON(t, http.MethodGet, ts.URL+"/v1/deployments/default/status", nil)
	if code != http.StatusOK {
		t.Fatalf("scoped status: %d %s", code, body)
	}
	var st StatusResponse
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.Name != "default" || st.Role != "champion" || st.DeploymentVersion != 1 {
		t.Fatalf("status identity: %+v", st)
	}

	code, body = doJSON(t, http.MethodGet, ts.URL+"/v1/deployments", nil)
	if code != http.StatusOK {
		t.Fatalf("list: %d %s", code, body)
	}
	var list DeploymentList
	if err := json.Unmarshal(body, &list); err != nil {
		t.Fatal(err)
	}
	if len(list.Deployments) != 1 || list.Deployments[0].Name != "default" || !list.Deployments[0].Adopted {
		t.Fatalf("list = %s", body)
	}
}

// TestUnknownDeployment404 verifies every scoped route answers a JSON 404
// with code "unknown_deployment" for names that are not registered —
// including predict, which takes the zero-alloc fast path around the mux.
func TestUnknownDeployment404(t *testing.T) {
	_, ts := newFleetServer(t)
	cases := []struct{ method, path string }{
		{http.MethodPost, "/v1/deployments/nope/predict"},
		{http.MethodPost, "/v1/deployments/nope/train"},
		{http.MethodPost, "/v1/deployments/nope/ingest"},
		{http.MethodGet, "/v1/deployments/nope/status"},
		{http.MethodGet, "/v1/deployments/nope/stats"},
		{http.MethodGet, "/v1/deployments/nope/trace"},
		{http.MethodGet, "/v1/deployments/nope/checkpoint"},
		{http.MethodPost, "/v1/deployments/nope/challengers"},
		{http.MethodDelete, "/v1/deployments/nope/challengers"},
		{http.MethodPost, "/v1/deployments/nope/rollback"},
		{http.MethodGet, "/v1/deployments/nope"},
		{http.MethodDelete, "/v1/deployments/nope"},
	}
	for _, c := range cases {
		code, body := doJSON(t, c.method, ts.URL+c.path, []byte("x\n"))
		if code != http.StatusNotFound {
			t.Errorf("%s %s: status %d, want 404 (%s)", c.method, c.path, code, body)
			continue
		}
		if got := errCode(t, body); got != "unknown_deployment" {
			t.Errorf("%s %s: code %q, want unknown_deployment", c.method, c.path, got)
		}
	}
}

// TestScopedMethodValidation verifies wrong-method requests on scoped routes
// answer 405 with an Allow header and the JSON envelope — even for unknown
// deployment names (the method check runs before name resolution).
func TestScopedMethodValidation(t *testing.T) {
	_, ts := newFleetServer(t)
	cases := []struct{ method, path, allow string }{
		{http.MethodGet, "/v1/deployments/nope/predict", "POST"},
		{http.MethodDelete, "/v1/deployments/nope/train", "POST"},
		{http.MethodPost, "/v1/deployments/nope/status", "GET"},
		{http.MethodPatch, "/v1/deployments/nope/challengers", "DELETE, POST"},
		{http.MethodPost, "/v1/deployments", "GET"},
	}
	for _, c := range cases {
		req, err := http.NewRequest(c.method, ts.URL+c.path, nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("%s %s: status %d, want 405 (%s)", c.method, c.path, resp.StatusCode, body)
			continue
		}
		if got := resp.Header.Get("Allow"); got != c.allow {
			t.Errorf("%s %s: Allow %q, want %q", c.method, c.path, got, c.allow)
		}
		if got := errCode(t, body); got != "method_not_allowed" {
			t.Errorf("%s %s: code %q, want method_not_allowed", c.method, c.path, got)
		}
	}
}

// TestDeploymentLifecycleOverHTTP walks create → train → predict → delete →
// recreate through the management API.
func TestDeploymentLifecycleOverHTTP(t *testing.T) {
	_, ts := newFleetServer(t)
	spec := []byte(`{"spec":{"optimizer":"adam"},"quotas":{"max_ingest_queue":8}}`)

	code, body := doJSON(t, http.MethodPut, ts.URL+"/v1/deployments/exp", spec)
	if code != http.StatusCreated {
		t.Fatalf("create: %d %s", code, body)
	}
	var info DeploymentInfo
	if err := json.Unmarshal(body, &info); err != nil {
		t.Fatal(err)
	}
	if info.Name != "exp" || info.Version != 1 || info.Adopted {
		t.Fatalf("created info = %+v", info)
	}

	if code, body = doJSON(t, http.MethodPut, ts.URL+"/v1/deployments/exp", spec); code != http.StatusConflict {
		t.Fatalf("duplicate create: %d %s", code, body)
	} else if got := errCode(t, body); got != "deployment_exists" {
		t.Fatalf("duplicate create code %q", got)
	}
	if code, body = doJSON(t, http.MethodPut, ts.URL+"/v1/deployments/_bad", spec); code != http.StatusBadRequest {
		t.Fatalf("bad name: %d %s", code, body)
	}
	if code, body = doJSON(t, http.MethodPut, ts.URL+"/v1/deployments/nospec", []byte(`{"spec":{"optimizer":"warp"}}`)); code != http.StatusBadRequest {
		t.Fatalf("bad spec: %d %s", code, body)
	}

	rnd := rand.New(rand.NewSource(11))
	for i := 0; i < 5; i++ {
		if code, body = doJSON(t, http.MethodPost, ts.URL+"/v1/deployments/exp/train", trainChunk(rnd, 30)); code != http.StatusOK {
			t.Fatalf("train: %d %s", code, body)
		}
	}
	code, body = doJSON(t, http.MethodPost, ts.URL+"/v1/deployments/exp/predict", []byte("0,1.0,1.0\n"))
	if code != http.StatusOK {
		t.Fatalf("predict: %d %s", code, body)
	}
	var pr PredictResponse
	if err := json.Unmarshal(body, &pr); err != nil {
		t.Fatal(err)
	}
	if len(pr.Predictions) != 1 {
		t.Fatalf("predictions = %v", pr.Predictions)
	}

	code, body = doJSON(t, http.MethodGet, ts.URL+"/v1/deployments/exp/status", nil)
	if code != http.StatusOK {
		t.Fatalf("status: %d %s", code, body)
	}
	var st StatusResponse
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.Name != "exp" || st.WindowEvaluated == 0 || st.IngestQueueCapacity != 8 {
		t.Fatalf("status = %+v", st)
	}

	if code, body = doJSON(t, http.MethodDelete, ts.URL+"/v1/deployments/exp", nil); code != http.StatusOK {
		t.Fatalf("delete: %d %s", code, body)
	}
	if code, body = doJSON(t, http.MethodPost, ts.URL+"/v1/deployments/exp/predict", []byte("0,1,1\n")); code != http.StatusNotFound {
		t.Fatalf("predict after delete: %d %s", code, body)
	}
	if code, body = doJSON(t, http.MethodPut, ts.URL+"/v1/deployments/exp", spec); code != http.StatusCreated {
		t.Fatalf("recreate: %d %s", code, body)
	}
}

// TestManagementRequiresBuilder verifies the management surface degrades to
// 501 "unsupported" when no ConfigBuilder is wired in (the single-deployment
// compat topology).
func TestManagementRequiresBuilder(t *testing.T) {
	_, ts := newTestServer(t)
	code, body := doJSON(t, http.MethodPut, ts.URL+"/v1/deployments/exp", []byte(`{"spec":{}}`))
	if code != http.StatusNotImplemented {
		t.Fatalf("create without builder: %d %s", code, body)
	}
	if got := errCode(t, body); got != "unsupported" {
		t.Fatalf("create without builder code %q", got)
	}
	code, body = doJSON(t, http.MethodPost, ts.URL+"/v1/deployments/default/challengers", []byte(`{"spec":{}}`))
	if code != http.StatusNotImplemented {
		t.Fatalf("challenger without builder: %d %s", code, body)
	}
}

// TestChallengerOnAdoptedIsConflict verifies adopted deployments (externally
// built deployers) refuse challengers with a 409.
func TestChallengerOnAdoptedIsConflict(t *testing.T) {
	cfg := fleetConfig(func() opt.Optimizer { return opt.NewAdam(0.05) })
	dep, err := core.NewDeployer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := New(dep, WithLogger(nil), WithConfigBuilder(testBuilder))
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	t.Cleanup(dep.Shutdown)

	code, body := doJSON(t, http.MethodPost, ts.URL+"/v1/deployments/default/challengers", []byte(`{"spec":{}}`))
	if code != http.StatusConflict {
		t.Fatalf("challenger on adopted: %d %s", code, body)
	}
	if got := errCode(t, body); got != "conflict" {
		t.Fatalf("challenger on adopted code %q", got)
	}
}

// TestConcurrentCreateDeletePredict hammers the copy-on-write handle map:
// creators, deleters, and predictors race over a small set of names; every
// response must be a well-formed 2xx/4xx — never a 5xx, never a torn route.
func TestConcurrentCreateDeletePredict(t *testing.T) {
	_, ts := newFleetServer(t)
	names := []string{"a", "b", "c"}
	spec := []byte(`{"spec":{"optimizer":"adam"}}`)
	var churn, readers sync.WaitGroup
	var serverErrs atomic.Int64
	stop := make(chan struct{})

	for _, name := range names {
		churn.Add(1)
		go func(name string) {
			defer churn.Done()
			for i := 0; i < 15; i++ {
				code, _ := doJSON(t, http.MethodPut, ts.URL+"/v1/deployments/"+name, spec)
				if code >= 500 {
					serverErrs.Add(1)
				}
				code, _ = doJSON(t, http.MethodDelete, ts.URL+"/v1/deployments/"+name, nil)
				if code >= 500 {
					serverErrs.Add(1)
				}
			}
		}(name)
	}
	for w := 0; w < 3; w++ {
		readers.Add(1)
		go func(seed int64) {
			defer readers.Done()
			rnd := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				name := names[rnd.Intn(len(names))]
				code, _ := doJSON(t, http.MethodPost, ts.URL+"/v1/deployments/"+name+"/predict", []byte("0,1,1\n"))
				if code != http.StatusOK && code != http.StatusNotFound {
					serverErrs.Add(1)
				}
			}
		}(int64(w))
	}
	churn.Wait()
	close(stop)
	readers.Wait()
	if n := serverErrs.Load(); n != 0 {
		t.Fatalf("%d unexpected responses under create/delete/predict races", n)
	}
}

// TestHTTPPromotionEndToEnd is the serving-layer acceptance test: a frozen
// champion created over HTTP is shadowed by a learning challenger started
// over HTTP; live traffic flows through POST train while a goroutine
// predicts continuously. The challenger must be auto-promoted, the
// predictors must never see an error, and the deployment version must move
// 1 → 2 with the old champion retained for rollback.
func TestHTTPPromotionEndToEnd(t *testing.T) {
	_, ts := newFleetServer(t)

	code, body := doJSON(t, http.MethodPut, ts.URL+"/v1/deployments/exp", []byte(`{"spec":{"optimizer":"frozen"}}`))
	if code != http.StatusCreated {
		t.Fatalf("create: %d %s", code, body)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	var predictErrs atomic.Int64
	wg.Add(1)
	go func() {
		defer wg.Done()
		rnd := rand.New(rand.NewSource(42))
		for {
			select {
			case <-stop:
				return
			default:
			}
			code, _ := doJSON(t, http.MethodPost, ts.URL+"/v1/deployments/exp/predict", trainChunk(rnd, 4))
			if code != http.StatusOK {
				predictErrs.Add(1)
			}
		}
	}()

	code, body = doJSON(t, http.MethodPost, ts.URL+"/v1/deployments/exp/challengers",
		[]byte(`{"spec":{"optimizer":"adam"},"policy":{"min_evaluated":150,"margin":0.1,"max_shadow_ticks":-1}}`))
	if code != http.StatusAccepted {
		t.Fatalf("challenger start: %d %s", code, body)
	}

	rnd := rand.New(rand.NewSource(3))
	deadline := time.Now().Add(30 * time.Second)
	version := func() uint64 {
		code, body := doJSON(t, http.MethodGet, ts.URL+"/v1/deployments/exp/status", nil)
		if code != http.StatusOK {
			t.Fatalf("status: %d %s", code, body)
		}
		var st StatusResponse
		if err := json.Unmarshal(body, &st); err != nil {
			t.Fatal(err)
		}
		return st.DeploymentVersion
	}
	for version() == 1 {
		if time.Now().After(deadline) {
			t.Fatal("challenger was never promoted")
		}
		if code, body = doJSON(t, http.MethodPost, ts.URL+"/v1/deployments/exp/train", trainChunk(rnd, 50)); code != http.StatusOK {
			t.Fatalf("train: %d %s", code, body)
		}
	}
	close(stop)
	wg.Wait()
	if n := predictErrs.Load(); n != 0 {
		t.Fatalf("%d predictions failed across the promotion swap", n)
	}

	code, body = doJSON(t, http.MethodGet, ts.URL+"/v1/deployments/exp/status", nil)
	if code != http.StatusOK {
		t.Fatalf("status: %d %s", code, body)
	}
	var st StatusResponse
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.DeploymentVersion != 2 {
		t.Fatalf("version = %d, want 2", st.DeploymentVersion)
	}
	if !st.HasRollback {
		t.Fatal("old champion not retained for rollback")
	}
	if st.Challenger != nil {
		t.Fatal("challenger still attached after promotion")
	}

	code, body = doJSON(t, http.MethodPost, ts.URL+"/v1/deployments/exp/rollback", nil)
	if code != http.StatusOK {
		t.Fatalf("rollback: %d %s", code, body)
	}
	var rb struct {
		Status  string `json:"status"`
		Version uint64 `json:"version"`
	}
	if err := json.Unmarshal(body, &rb); err != nil {
		t.Fatal(err)
	}
	if rb.Status != "rolled_back" || rb.Version != 3 {
		t.Fatalf("rollback = %s", body)
	}
	// A second rollback has nothing to roll back to.
	if code, body = doJSON(t, http.MethodPost, ts.URL+"/v1/deployments/exp/rollback", nil); code != http.StatusConflict {
		t.Fatalf("second rollback: %d %s", code, body)
	}
}

// TestChallengerStopOverHTTP attaches a never-promoting challenger, verifies
// it shows in status, retires it, and checks the slot is free again.
func TestChallengerStopOverHTTP(t *testing.T) {
	_, ts := newFleetServer(t)
	if code, body := doJSON(t, http.MethodPut, ts.URL+"/v1/deployments/exp", []byte(`{"spec":{}}`)); code != http.StatusCreated {
		t.Fatalf("create: %d %s", code, body)
	}
	pol := []byte(`{"spec":{"optimizer":"adam"},"policy":{"min_evaluated":1000000,"max_shadow_ticks":-1}}`)
	if code, body := doJSON(t, http.MethodPost, ts.URL+"/v1/deployments/exp/challengers", pol); code != http.StatusAccepted {
		t.Fatalf("challenger start: %d %s", code, body)
	}
	if code, body := doJSON(t, http.MethodPost, ts.URL+"/v1/deployments/exp/challengers", pol); code != http.StatusConflict {
		t.Fatalf("second challenger: %d %s", code, body)
	} else if got := errCode(t, body); got != "challenger_exists" {
		t.Fatalf("second challenger code %q", got)
	}

	code, body := doJSON(t, http.MethodGet, ts.URL+"/v1/deployments/exp", nil)
	if code != http.StatusOK {
		t.Fatalf("describe: %d %s", code, body)
	}
	var info DeploymentInfo
	if err := json.Unmarshal(body, &info); err != nil {
		t.Fatal(err)
	}
	if info.Challenger == nil || info.Challenger.Policy.MinEvaluated != 1000000 {
		t.Fatalf("describe = %s", body)
	}

	if code, body := doJSON(t, http.MethodDelete, ts.URL+"/v1/deployments/exp/challengers", nil); code != http.StatusOK {
		t.Fatalf("challenger stop: %d %s", code, body)
	}
	if code, body := doJSON(t, http.MethodDelete, ts.URL+"/v1/deployments/exp/challengers", nil); code != http.StatusNotFound {
		t.Fatalf("stop without challenger: %d %s", code, body)
	}
	if code, body := doJSON(t, http.MethodPost, ts.URL+"/v1/deployments/exp/challengers", pol); code != http.StatusAccepted {
		t.Fatalf("challenger after retire: %d %s", code, body)
	}
}
