package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"cdml/internal/obs"
	"cdml/internal/registry"
)

// depHandle is the server-side serving state of one deployment: its ingest
// queue (with drainer goroutine), and one pre-created instrument set per
// deployment-scoped route. Handles are immutable after creation; the
// name→handle map is copy-on-write, so request routing is one atomic load.
type depHandle struct {
	name string
	dep  *registry.Deployment
	q    *ingestQueue
	// rep is non-nil when the server runs in replica mode (WithReplicaOf):
	// the deployment's sync poller is then its only writer, and mutating
	// routes answer 409 read_only_replica.
	rep *replicaState
	// em holds the per-deployment instruments, indexed by routeDef.idx.
	// Slots of fixed-name alias routes bound to other deployments stay nil —
	// those routes can never resolve to this handle.
	em []*endpointMetrics
}

// handleByName resolves a deployment name to its serving state (nil when
// unknown). Lock-free: one atomic pointer load.
//
//cdml:hotpath
func (s *Server) handleByName(name string) *depHandle {
	return (*s.handles.Load())[name]
}

// addHandle builds the serving state for d and publishes it. Idempotent per
// name; the copy-on-write map swap keeps concurrent request routing
// lock-free.
func (s *Server) addHandle(d *registry.Deployment) *depHandle {
	s.hmu.Lock()
	defer s.hmu.Unlock()
	cur := *s.handles.Load()
	if h, ok := cur[d.Name()]; ok {
		return h
	}
	capacity := s.queueCap
	if q := d.Quotas().MaxIngestQueue; q > 0 && q < capacity {
		capacity = q
	}
	h := &depHandle{
		name: d.Name(),
		dep:  d,
		q:    newIngestQueue(capacity),
		em:   make([]*endpointMetrics, s.nScoped),
	}
	for _, rt := range s.routes {
		if rt.idx >= 0 && (rt.fixed == "" || rt.fixed == d.Name()) {
			h.em[rt.idx] = newEndpointMetrics(s.reg, rt.template, rt.version, d.Name())
		}
	}
	if s.replicaOf != "" {
		h.rep = s.newReplicaState(d)
		s.registerReplicaMetrics(d.Name())
	}
	s.registerQueueMetrics(d.Name())
	next := make(map[string]*depHandle, len(cur)+1)
	for k, v := range cur {
		next[k] = v
	}
	next[d.Name()] = h
	s.handles.Store(&next)
	go s.drainHandle(h)
	if h.rep != nil {
		go s.pollReplica(h)
	}
	return h
}

// removeHandle unpublishes the named handle (requests start answering 404
// immediately) and closes its ingest queue; chunks already queued still
// drain. Returns nil when the name was not routed.
func (s *Server) removeHandle(name string) *depHandle {
	s.hmu.Lock()
	cur := *s.handles.Load()
	h, ok := cur[name]
	if ok {
		next := make(map[string]*depHandle, len(cur)-1)
		for k, v := range cur {
			if k != name {
				next[k] = v
			}
		}
		s.handles.Store(&next)
	}
	s.hmu.Unlock()
	if !ok {
		return nil
	}
	h.q.close()
	if h.rep != nil {
		h.rep.stopPoller()
	}
	return h
}

// registerQueueMetrics registers the named deployment's queue series. The
// closures resolve the current handle at scrape time — a handle deleted and
// recreated under the same name keeps the series live (the obs registry
// keeps the first registration per name+labels, so re-registering is a
// no-op) — and report zero while the name is unrouted.
func (s *Server) registerQueueMetrics(name string) {
	ls := []obs.Label{obs.L("deployment", name)}
	lookup := func(f func(h *depHandle) float64) func() float64 {
		return func() float64 {
			if h := s.handleByName(name); h != nil {
				return f(h)
			}
			return 0
		}
	}
	s.reg.GaugeFunc("cdml_ingest_queue_depth",
		"Chunks queued for asynchronous ingest, not yet trained on.",
		lookup(func(h *depHandle) float64 { return float64(h.q.depth.Load()) }), ls...)
	s.reg.CounterFunc("cdml_ingest_queue_accepted_total",
		"Async-ingest chunks accepted (202).",
		lookup(func(h *depHandle) float64 { return float64(h.q.accepted.Load()) }), ls...)
	s.reg.CounterFunc("cdml_ingest_queue_rejected_total",
		"Async-ingest chunks rejected with queue_full backpressure (503).",
		lookup(func(h *depHandle) float64 { return float64(h.q.rejected.Load()) }), ls...)
}

// PolicyInfo mirrors registry.Policy on the wire.
type PolicyInfo struct {
	// MinEvaluated is the observation floor both comparison windows must
	// reach before a promotion decision counts.
	MinEvaluated int64 `json:"min_evaluated"`
	// Margin is the windowed-loss improvement required to promote.
	Margin float64 `json:"margin"`
	// MaxShadowTicks retires a challenger that shadowed this many chunks
	// without promotion (negative disables auto-retirement).
	MaxShadowTicks int64 `json:"max_shadow_ticks"`
}

// ChallengerInfo describes an attached shadow challenger.
type ChallengerInfo struct {
	Role      string `json:"role"` // always "challenger"
	StartedAt string `json:"started_at"`
	// Ticks counts live chunks shadowed so far; ShadowErrors the ones whose
	// shadow tick failed (champion unaffected).
	Ticks        int64  `json:"ticks"`
	ShadowErrors int64  `json:"shadow_errors"`
	LastError    string `json:"last_error,omitempty"`
	// WindowLoss / WindowEvaluated are the challenger's faded prequential
	// loss and its observation count — the promotion comparison input.
	WindowLoss      float64    `json:"window_loss"`
	WindowEvaluated int64      `json:"window_evaluated"`
	SnapshotVersion uint64     `json:"snapshot_version"`
	Policy          PolicyInfo `json:"policy"`
}

// DeploymentInfo is one row of GET /v1/deployments (and the body of GET
// /v1/deployments/{name}).
type DeploymentInfo struct {
	Name string `json:"name"`
	Role string `json:"role"` // always "champion": the serving side of the pair
	// Version counts role changes: 1 at creation, +1 per promotion or
	// rollback.
	Version uint64 `json:"version"`
	Mode    string `json:"mode"`
	// SnapshotVersion / SnapshotAgeSeconds identify the published snapshot
	// answering predictions and its staleness.
	SnapshotVersion    uint64  `json:"snapshot_version"`
	SnapshotAgeSeconds float64 `json:"snapshot_age_seconds"`
	// WindowLoss / WindowEvaluated are the champion's promotion-window
	// state (zeros for adopted deployments, which have no window).
	WindowLoss      float64 `json:"window_loss"`
	WindowEvaluated int64   `json:"window_evaluated"`
	// HasRollback reports whether a previous champion is retained.
	HasRollback bool `json:"has_rollback"`
	// Adopted deployments wrap an externally built deployer and cannot host
	// challengers.
	Adopted    bool            `json:"adopted,omitempty"`
	Challenger *ChallengerInfo `json:"challenger,omitempty"`
}

func challengerInfo(st registry.ChallengerStatus) *ChallengerInfo {
	return &ChallengerInfo{
		Role:            "challenger",
		StartedAt:       st.StartedAt.UTC().Format(time.RFC3339Nano),
		Ticks:           st.Ticks,
		ShadowErrors:    st.ShadowErrs,
		LastError:       st.LastError,
		WindowLoss:      st.WindowLoss,
		WindowEvaluated: st.WindowCount,
		SnapshotVersion: st.SnapshotVersion,
		Policy: PolicyInfo{
			MinEvaluated:   st.Policy.MinEvaluated,
			Margin:         st.Policy.Margin,
			MaxShadowTicks: st.Policy.MaxShadowTicks,
		},
	}
}

func deploymentInfo(d *registry.Deployment) DeploymentInfo {
	dep := d.Serving()
	snap := dep.Current()
	loss, n := d.ChampionWindow()
	info := DeploymentInfo{
		Name:               d.Name(),
		Role:               "champion",
		Version:            d.Version(),
		Mode:               dep.Stats().Mode.String(),
		SnapshotVersion:    snap.Version(),
		SnapshotAgeSeconds: time.Since(snap.BuiltAt()).Seconds(),
		WindowLoss:         loss,
		WindowEvaluated:    n,
		HasRollback:        d.HasRollback(),
		Adopted:            d.Adopted(),
	}
	if st, ok := d.Challenger(); ok {
		info.Challenger = challengerInfo(st)
	}
	return info
}

// DeploymentList is the GET /v1/deployments payload.
type DeploymentList struct {
	Deployments []DeploymentInfo `json:"deployments"`
}

func handleList(s *Server, _ string, _ *depHandle, w http.ResponseWriter, r *http.Request) {
	deps := s.registry.List()
	out := DeploymentList{Deployments: make([]DeploymentInfo, 0, len(deps))}
	for _, d := range deps {
		out.Deployments = append(out.Deployments, deploymentInfo(d))
	}
	writeJSON(w, http.StatusOK, out)
}

func handleDescribe(s *Server, name string, h *depHandle, w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, deploymentInfo(h.dep))
}

// QuotasSpec is the wire form of registry.Quotas.
type QuotasSpec struct {
	MaxIngestQueue     int   `json:"max_ingest_queue"`
	MaxCheckpointBytes int64 `json:"max_checkpoint_bytes"`
	// MaxStoreChunks caps the raw chunks the deployment's store retains;
	// ingest past the cap answers 429 over_quota.
	MaxStoreChunks int `json:"max_store_chunks"`
}

// CreateDeploymentRequest is the PUT /v1/deployments/{name} body. Spec is
// opaque to the server and interpreted by the operator's ConfigBuilder.
type CreateDeploymentRequest struct {
	Spec   json.RawMessage `json:"spec"`
	Quotas *QuotasSpec     `json:"quotas,omitempty"`
}

// readJSONBody decodes a JSON request body into v (size-capped).
func readJSONBody(r *http.Request, v any) error {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxBody+1))
	if err != nil {
		return fmt.Errorf("serve: reading body: %w", err)
	}
	if len(body) > maxBody {
		return fmt.Errorf("serve: body exceeds %d bytes", maxBody)
	}
	if len(body) == 0 {
		return errEmptyRequest
	}
	if err := json.Unmarshal(body, v); err != nil {
		return fmt.Errorf("serve: decoding body: %w", err)
	}
	return nil
}

// handleCreate serves PUT /v1/deployments/{name}: builds a config from the
// request's spec via the ConfigBuilder and registers a new deployment under
// the name. Existing names answer 409 "deployment_exists" — a deployment's
// pipeline is not mutable in place; deploy a challenger instead.
func handleCreate(s *Server, name string, h *depHandle, w http.ResponseWriter, r *http.Request) {
	if s.builder == nil {
		writeError(w, http.StatusNotImplemented, codeUnsupported,
			errors.New("serve: deployment creation requires a ConfigBuilder (WithConfigBuilder)"))
		return
	}
	if h != nil {
		writeError(w, http.StatusConflict, codeDeploymentExists,
			fmt.Errorf("serve: deployment %q already exists", name))
		return
	}
	var req CreateDeploymentRequest
	if err := readJSONBody(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, codeBadRequest, err)
		return
	}
	cfg, err := s.builder(name, req.Spec)
	if err != nil {
		writeError(w, http.StatusBadRequest, codeBadRequest, err)
		return
	}
	var q registry.Quotas
	if req.Quotas != nil {
		q = registry.Quotas{
			MaxIngestQueue:     req.Quotas.MaxIngestQueue,
			MaxCheckpointBytes: req.Quotas.MaxCheckpointBytes,
			MaxStoreChunks:     req.Quotas.MaxStoreChunks,
		}
	}
	d, err := s.registry.Create(name, cfg, q)
	switch {
	case errors.Is(err, registry.ErrExists):
		writeError(w, http.StatusConflict, codeDeploymentExists, err)
		return
	case errors.Is(err, registry.ErrBadName):
		writeError(w, http.StatusBadRequest, codeBadRequest, err)
		return
	case err != nil:
		writeError(w, http.StatusBadRequest, codeBadRequest, err)
		return
	}
	s.addHandle(d)
	writeJSON(w, http.StatusCreated, deploymentInfo(d))
}

// handleDelete serves DELETE /v1/deployments/{name}: the handle is
// unpublished first (requests start answering 404), queued ingest drains
// into the still-live deployment, and only then is the deployment shut
// down — so accepted (202) chunks are never dropped by a delete.
func handleDelete(s *Server, name string, h *depHandle, w http.ResponseWriter, r *http.Request) {
	if removed := s.removeHandle(name); removed != nil {
		<-removed.q.done
	}
	if err := s.registry.Delete(name); err != nil && !errors.Is(err, registry.ErrUnknown) {
		writeError(w, http.StatusInternalServerError, codeInternal, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "deleted", "name": name})
}

// ChallengerRequest is the POST /v1/deployments/{name}/challengers body.
type ChallengerRequest struct {
	Spec   json.RawMessage `json:"spec"`
	Policy *PolicyInfo     `json:"policy,omitempty"`
}

// handleChallengerStart attaches a shadow challenger built from the
// request's spec. 202: shadow training is asynchronous — the challenger
// earns promotion (or retirement) from live traffic, not from this request.
func handleChallengerStart(s *Server, name string, h *depHandle, w http.ResponseWriter, r *http.Request) {
	if s.builder == nil {
		writeError(w, http.StatusNotImplemented, codeUnsupported,
			errors.New("serve: challenger creation requires a ConfigBuilder (WithConfigBuilder)"))
		return
	}
	var req ChallengerRequest
	if err := readJSONBody(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, codeBadRequest, err)
		return
	}
	cfg, err := s.builder(name, req.Spec)
	if err != nil {
		writeError(w, http.StatusBadRequest, codeBadRequest, err)
		return
	}
	var pol registry.Policy
	if req.Policy != nil {
		pol = registry.Policy{
			MinEvaluated:   req.Policy.MinEvaluated,
			Margin:         req.Policy.Margin,
			MaxShadowTicks: req.Policy.MaxShadowTicks,
		}
	}
	switch err := h.dep.StartChallenger(cfg, pol); {
	case errors.Is(err, registry.ErrChallengerBusy):
		writeError(w, http.StatusConflict, codeChallengerExists, err)
	case errors.Is(err, registry.ErrNotChallengeble), errors.Is(err, registry.ErrClosed):
		writeError(w, http.StatusConflict, codeConflict, err)
	case err != nil:
		writeError(w, http.StatusBadRequest, codeBadRequest, err)
	default:
		st, _ := h.dep.Challenger()
		writeJSON(w, http.StatusAccepted, map[string]any{
			"status":     "shadowing",
			"name":       name,
			"challenger": challengerInfo(st),
		})
	}
}

// handleChallengerStop retires the challenger without promotion.
func handleChallengerStop(s *Server, name string, h *depHandle, w http.ResponseWriter, r *http.Request) {
	switch err := h.dep.StopChallenger(); {
	case errors.Is(err, registry.ErrNoChallenger):
		writeError(w, http.StatusNotFound, codeNotFound, err)
	case err != nil:
		writeError(w, http.StatusInternalServerError, codeInternal, err)
	default:
		writeJSON(w, http.StatusOK, map[string]string{"status": "retired", "name": name})
	}
}

// handleRollback swaps the previous champion back in, undoing the most
// recent promotion.
func handleRollback(s *Server, name string, h *depHandle, w http.ResponseWriter, r *http.Request) {
	switch err := h.dep.Rollback(); {
	case errors.Is(err, registry.ErrNoRollback), errors.Is(err, registry.ErrClosed):
		writeError(w, http.StatusConflict, codeConflict, err)
	case err != nil:
		writeError(w, http.StatusInternalServerError, codeInternal, err)
	default:
		writeJSON(w, http.StatusOK, map[string]any{
			"status":  "rolled_back",
			"name":    name,
			"version": h.dep.Version(),
		})
	}
}
