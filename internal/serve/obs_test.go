package serve

import (
	"encoding/json"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"cdml/internal/core"
	"cdml/internal/data"
	"cdml/internal/eval"
	"cdml/internal/model"
	"cdml/internal/opt"
	"cdml/internal/pipeline"
	"cdml/internal/sample"
	"cdml/internal/sched"
)

// --- readRecords edge cases -------------------------------------------------

func readRecordsFromString(t *testing.T, body string) ([][]byte, error) {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, "/predict", strings.NewReader(body))
	return readRecords(req)
}

func TestReadRecordsLoneCRLF(t *testing.T) {
	// A body of just "\r\n" is one empty CRLF-terminated line: no records.
	recs, err := readRecordsFromString(t, "\r\n")
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Fatalf("lone CRLF produced %d records: %q", len(recs), recs)
	}
	// Mixed: CRLF noise between real records must not produce empty records.
	recs, err = readRecordsFromString(t, "a,1,2\r\n\r\nb,3,4\r\n")
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || string(recs[0]) != "a,1,2" || string(recs[1]) != "b,3,4" {
		t.Fatalf("records = %q", recs)
	}
}

func TestReadRecordsBareCRRecord(t *testing.T) {
	// A line that is only "\r" (CR with no LF until the next newline) is
	// dropped rather than surfacing as an empty record.
	recs, err := readRecordsFromString(t, "\r\nx,1,2\n\r")
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || string(recs[0]) != "x,1,2" {
		t.Fatalf("records = %q", recs)
	}
}

func TestReadRecordsAtMaxBodyBoundary(t *testing.T) {
	// Exactly maxBody bytes: accepted, one record (no trailing newline).
	body := strings.Repeat("a", maxBody)
	recs, err := readRecordsFromString(t, body)
	if err != nil {
		t.Fatalf("body of exactly maxBody rejected: %v", err)
	}
	if len(recs) != 1 || len(recs[0]) != maxBody {
		t.Fatalf("got %d records, first len %d", len(recs), len(recs[0]))
	}
}

func TestReadRecordsOneByteOverMaxBody(t *testing.T) {
	body := strings.Repeat("a", maxBody+1)
	if _, err := readRecordsFromString(t, body); err == nil {
		t.Fatal("body one byte over maxBody accepted")
	}
}

func TestReadRecordsMaxBodyWithTrailingNewline(t *testing.T) {
	// maxBody-1 payload bytes plus the newline: exactly at the cap, accepted.
	body := strings.Repeat("a", maxBody-1) + "\n"
	recs, err := readRecordsFromString(t, body)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || len(recs[0]) != maxBody-1 {
		t.Fatalf("got %d records, first len %d", len(recs), len(recs[0]))
	}
}

// --- /metrics ---------------------------------------------------------------

func TestMetricsEndpoint(t *testing.T) {
	_, ts := newTestServer(t)
	client := ts.Client()
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 6; i++ {
		resp, err := client.Post(ts.URL+"/train", "text/plain", strings.NewReader(chunkBody(r, 20)))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	resp, err := client.Post(ts.URL+"/predict", "text/plain", strings.NewReader(chunkBody(r, 10)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	mresp, err := client.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	if mresp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", mresp.StatusCode)
	}
	if ct := mresp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	raw, err := io.ReadAll(mresp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(raw)

	for _, want := range []string{
		// Per-endpoint request counters and latency histograms, labeled by
		// API version (these requests used the legacy unversioned aliases).
		`cdml_http_requests_total{path="/train",version="legacy",deployment="default",code="2xx"} 6`,
		`cdml_http_requests_total{path="/predict",version="legacy",deployment="default",code="2xx"} 1`,
		`cdml_http_request_seconds_bucket{path="/train",version="legacy",deployment="default",le="+Inf"} 6`,
		// The v1 series exist (at zero) even though no v1 traffic arrived.
		`cdml_http_requests_total{path="/v1/train",version="v1",deployment="default",code="2xx"} 0`,
		// Deployment counters and the predict-latency quantiles.
		"cdml_ticks_total 6",
		"cdml_chunks_ingested_total 6",
		"cdml_proactive_runs_total",
		"cdml_drift_fires_total 0",
		"cdml_predict_latency_seconds_p50",
		"cdml_predict_latency_seconds_p95",
		"cdml_predict_latency_seconds_p99",
		// Bridged cost clock and store accounting.
		`cdml_cost_seconds{category="preprocess"}`,
		"cdml_store_sample_hits_total",
		"cdml_store_mu",
		"cdml_engine_tasks_total",
		"cdml_prequential_error",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, text)
		}
	}

	// Well-formed exposition: every non-comment line is "series value".
	for _, line := range strings.Split(strings.TrimSpace(text), "\n") {
		if strings.HasPrefix(line, "#") || line == "" {
			continue
		}
		if len(strings.Fields(line)) != 2 {
			t.Fatalf("malformed exposition line %q", line)
		}
	}
}

// TestSchedulerGaugesExposed checks that a deployment driven by the dynamic
// (Formula 6) scheduler surfaces its observed query rate and latency on
// /metrics — the configuration cmd/cdml-serve runs with.
func TestSchedulerGaugesExposed(t *testing.T) {
	cfg := core.Config{
		Mode: core.ModeContinuous,
		NewPipeline: func() *pipeline.Pipeline {
			return pipeline.New(testParser{},
				pipeline.NewStandardScaler([]string{"x0", "x1"}),
				pipeline.NewAssembler([]string{"x0", "x1"}, nil, "features"),
			)
		},
		NewModel:     func() model.Model { return model.NewSVM(2, 1e-4) },
		NewOptimizer: func() opt.Optimizer { return opt.NewAdam(0.05) },
		Store:        data.NewStore(data.NewMemoryBackend()),
		Sampler:      sample.NewTime(1),
		SampleChunks: 3,
		Scheduler:    sched.NewDynamic(2, time.Hour),
		Metric:       &eval.Misclassification{},
		Predict:      core.ClassifyPredictor,
	}
	dep, err := core.NewDeployer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(dep, WithLogger(nil)))
	t.Cleanup(ts.Close)

	client := ts.Client()
	r := rand.New(rand.NewSource(17))
	for i := 0; i < 4; i++ {
		resp, err := client.Post(ts.URL+"/train", "text/plain", strings.NewReader(chunkBody(r, 20)))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	resp, err := client.Post(ts.URL+"/predict", "text/plain", strings.NewReader(chunkBody(r, 20)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	mresp, err := client.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	raw, err := io.ReadAll(mresp.Body)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"cdml_sched_query_rate", "cdml_sched_query_latency_seconds"} {
		if !strings.Contains(string(raw), want) {
			t.Fatalf("/metrics missing %q:\n%s", want, raw)
		}
	}
}

// --- /trace -----------------------------------------------------------------

func TestTraceEndpoint(t *testing.T) {
	_, ts := newTestServer(t)
	client := ts.Client()
	r := rand.New(rand.NewSource(11))
	const chunks = 5
	for i := 0; i < chunks; i++ {
		resp, err := client.Post(ts.URL+"/train", "text/plain", strings.NewReader(chunkBody(r, 15)))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	resp, err := client.Get(ts.URL + "/trace?n=3")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var tr TraceResponse
	if err := json.NewDecoder(resp.Body).Decode(&tr); err != nil {
		t.Fatal(err)
	}
	if tr.Total != chunks {
		t.Fatalf("total ticks %d, want %d", tr.Total, chunks)
	}
	if len(tr.Spans) != 3 {
		t.Fatalf("spans %d, want 3 (bounded by ?n)", len(tr.Spans))
	}
	root := tr.Spans[0]
	if root.Name != "tick" || root.DurationMS < 0 {
		t.Fatalf("root span %+v", root)
	}
	stages := map[string]bool{}
	for _, c := range root.Children {
		stages[c.Name] = true
	}
	for _, want := range []string{"serve", "preprocess", "materialize"} {
		if !stages[want] {
			t.Fatalf("tick span missing stage %q (has %v)", want, stages)
		}
	}
}

func TestTraceRingBounded(t *testing.T) {
	_, ts := newTestServer(t)
	client := ts.Client()
	r := rand.New(rand.NewSource(13))
	// More ticks than the default ring capacity (64).
	for i := 0; i < 70; i++ {
		resp, err := client.Post(ts.URL+"/train", "text/plain", strings.NewReader(chunkBody(r, 3)))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	resp, err := client.Get(ts.URL + "/trace?n=1000")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var tr TraceResponse
	if err := json.NewDecoder(resp.Body).Decode(&tr); err != nil {
		t.Fatal(err)
	}
	if tr.Total != 70 {
		t.Fatalf("total %d, want 70", tr.Total)
	}
	if len(tr.Spans) != 64 {
		t.Fatalf("ring retained %d spans, want 64", len(tr.Spans))
	}
}

func TestTraceRejectsBadN(t *testing.T) {
	_, ts := newTestServer(t)
	for _, q := range []string{"?n=0", "?n=-3", "?n=abc"} {
		resp, err := ts.Client().Get(ts.URL + "/trace" + q)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("/trace%s status %d, want 400", q, resp.StatusCode)
		}
	}
}

// --- middleware -------------------------------------------------------------

func TestMethodNotAllowedSetsAllowHeader(t *testing.T) {
	_, ts := newTestServer(t)
	client := ts.Client()
	cases := []struct {
		method, path, allow string
	}{
		{http.MethodGet, "/predict", "POST"},
		{http.MethodGet, "/train", "POST"},
		{http.MethodPost, "/stats", "GET"},
		{http.MethodPost, "/metrics", "GET"},
		{http.MethodPost, "/trace", "GET"},
		{http.MethodPost, "/checkpoint", "GET"},
		{http.MethodGet, "/restore", "POST"},
		{http.MethodDelete, "/healthz", "GET"},
	}
	for _, c := range cases {
		req, _ := http.NewRequest(c.method, ts.URL+c.path, nil)
		resp, err := client.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Fatalf("%s %s: status %d, want 405", c.method, c.path, resp.StatusCode)
		}
		if got := resp.Header.Get("Allow"); got != c.allow {
			t.Fatalf("%s %s: Allow %q, want %q", c.method, c.path, got, c.allow)
		}
	}
}

func TestRequestIDAssignedAndEchoed(t *testing.T) {
	_, ts := newTestServer(t)
	client := ts.Client()

	// Server assigns an id when the client sends none.
	resp, err := client.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	assigned := resp.Header.Get("X-Request-ID")
	if assigned == "" {
		t.Fatal("no X-Request-ID assigned")
	}

	// A client-supplied id is echoed back verbatim.
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/healthz", nil)
	req.Header.Set("X-Request-ID", "client-id-42")
	resp2, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if got := resp2.Header.Get("X-Request-ID"); got != "client-id-42" {
		t.Fatalf("echoed id %q, want client-id-42", got)
	}

	// Distinct requests get distinct assigned ids.
	resp3, err := client.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp3.Body.Close()
	if resp3.Header.Get("X-Request-ID") == assigned {
		t.Fatal("request ids not unique")
	}
}

func TestErrorResponsesCountedByClass(t *testing.T) {
	s, ts := newTestServer(t)
	client := ts.Client()
	// Two 400s on /predict (empty body).
	for i := 0; i < 2; i++ {
		resp, err := client.Post(ts.URL+"/predict", "text/plain", strings.NewReader("\n"))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	var sb strings.Builder
	if err := s.reg.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `cdml_http_requests_total{path="/predict",version="legacy",deployment="default",code="4xx"} 2`) {
		t.Fatalf("4xx counter missing:\n%s", sb.String())
	}
}

// TestVersionedTrafficSeparated drives the same logical endpoint through the
// /v1 path and the legacy alias and checks the request counters keep the two
// apart via the version label.
func TestVersionedTrafficSeparated(t *testing.T) {
	s, ts := newTestServer(t)
	client := ts.Client()
	r := rand.New(rand.NewSource(21))
	for i := 0; i < 3; i++ {
		resp, err := client.Post(ts.URL+"/v1/train", "text/plain", strings.NewReader(chunkBody(r, 10)))
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("/v1/train status %d", resp.StatusCode)
		}
		resp.Body.Close()
	}
	resp, err := client.Post(ts.URL+"/train", "text/plain", strings.NewReader(chunkBody(r, 10)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	var sb strings.Builder
	if err := s.reg.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`cdml_http_requests_total{path="/v1/train",version="v1",deployment="default",code="2xx"} 3`,
		`cdml_http_requests_total{path="/train",version="legacy",deployment="default",code="2xx"} 1`,
	} {
		if !strings.Contains(sb.String(), want) {
			t.Fatalf("metrics missing %q:\n%s", want, sb.String())
		}
	}
}
