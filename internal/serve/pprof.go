package serve

import (
	"net/http/pprof"
)

// routePprof registers the net/http/pprof handlers on the server's own mux
// (the package's init-time registration targets http.DefaultServeMux, which
// this server deliberately does not use). Only called when WithPprof was
// given: profiling endpoints are a debugging surface, not part of the /v1
// API, so they stay off the mux — and out of an internet-facing listener —
// by default.
func (s *Server) routePprof() {
	s.mux.HandleFunc("/debug/pprof/", pprof.Index)
	s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}
