package serve

import (
	"context"
	"fmt"
	"log/slog"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"cdml/internal/obs"
)

// ingestItem is one queued async-ingest chunk plus the identity it carries
// across the queue boundary: the originating request's trace and request
// ids (so the eventual tick joins the request's trace) and the enqueue time
// (so the wait is recorded as the tick's queue-wait span).
type ingestItem struct {
	records    [][]byte
	traceID    string
	requestID  string
	enqueuedAt time.Time
}

// DefaultIngestQueue is the bounded async-ingest queue capacity (chunks)
// per deployment when WithIngestQueue is not given.
const DefaultIngestQueue = 256

// ingestQueue is the bounded buffer behind POST .../ingest — one per
// deployment, so a backlogged pipeline never delays its neighbors.
// Handlers enqueue chunks without blocking; the deployment's single drainer
// goroutine feeds them to the champion in arrival order, so the
// deployment's serialized writer stays single-writer while HTTP clients get
// an immediate 202. When the queue is full (training cannot keep up with
// arrivals) the handler answers 503 queue_full instead of buffering
// unboundedly — explicit backpressure the client can react to.
type ingestQueue struct {
	ch   chan ingestItem
	done chan struct{} // closed when the drainer exits

	// mu guards closed against the enqueue path: enqueue holds the read
	// lock around the channel send so close's close(ch) (write lock) can
	// never race a send on a closed channel.
	mu     sync.RWMutex
	closed bool //cdml:guardedby mu

	// pmu guards pending, a FIFO mirror of the queued items' enqueue times:
	// appended on enqueue, popped after the drainer finishes an item
	// (matching the depth counter's semantics), so oldestAge reports how
	// stale the head of the queue is — including an item currently being
	// trained on, whose wait is still unserved from the client's view.
	pmu     sync.Mutex
	pending []time.Time //cdml:guardedby pmu

	depth    atomic.Int64 // chunks enqueued but not yet ingested
	errs     atomic.Int64 // failed async Ingest calls
	lastErr  atomic.Value // string: message of the most recent failure
	accepted atomic.Int64 // chunks accepted (202)
	rejected atomic.Int64 // chunks rejected with queue_full (503)
	// tickNanos is an EWMA (alpha 0.3) of recent Ingest tick durations,
	// maintained by the drainer and read by the 503 path to derive an
	// honest Retry-After: the queue frees one slot per tick, so one recent
	// tick duration is the time until an immediate retry can succeed.
	tickNanos atomic.Int64
}

// observeTick folds one tick duration into the EWMA.
func (q *ingestQueue) observeTick(d time.Duration) {
	const alpha = 0.3
	prev := q.tickNanos.Load()
	if prev == 0 {
		q.tickNanos.Store(int64(d))
		return
	}
	q.tickNanos.Store(int64(alpha*float64(d) + (1-alpha)*float64(prev)))
}

// retryAfterSeconds suggests how long a backpressured client should wait
// before retrying, clamped to [1, 60] whole seconds (HTTP Retry-After has
// one-second resolution; 1 is the floor even for sub-second ticks).
func (q *ingestQueue) retryAfterSeconds() int {
	nanos := q.tickNanos.Load()
	if nanos <= 0 {
		return 1
	}
	secs := int(time.Duration(nanos).Truncate(time.Second) / time.Second)
	if time.Duration(nanos)%time.Second != 0 {
		secs++
	}
	return min(max(secs, 1), 60)
}

func newIngestQueue(capacity int) *ingestQueue {
	return &ingestQueue{
		ch:   make(chan ingestItem, capacity),
		done: make(chan struct{}),
	}
}

// enqueue offers one chunk; reports the post-enqueue depth and whether the
// chunk was accepted (false when the queue is full or draining).
func (q *ingestQueue) enqueue(it ingestItem) (int64, bool) {
	q.mu.RLock()
	defer q.mu.RUnlock()
	if q.closed {
		return 0, false
	}
	select {
	case q.ch <- it:
		q.pmu.Lock()
		q.pending = append(q.pending, it.enqueuedAt)
		q.pmu.Unlock()
		return q.depth.Add(1), true
	default:
		return 0, false
	}
}

// itemDone pops the head of the pending-times mirror after the drainer has
// finished one item.
func (q *ingestQueue) itemDone() {
	q.pmu.Lock()
	if len(q.pending) > 0 {
		q.pending = q.pending[1:]
	}
	q.pmu.Unlock()
}

// oldestAge reports how long the oldest unfinished queued chunk has been
// waiting (0 when the queue is idle) — the staleness answer /status gives
// without anyone scraping /trace.
func (q *ingestQueue) oldestAge() time.Duration {
	q.pmu.Lock()
	defer q.pmu.Unlock()
	if len(q.pending) == 0 {
		return 0
	}
	return time.Since(q.pending[0])
}

// close stops intake; idempotent. Chunks already queued still drain.
func (q *ingestQueue) close() {
	q.mu.Lock()
	defer q.mu.Unlock()
	if !q.closed {
		q.closed = true
		close(q.ch)
	}
}

// drainHandle is one deployment's consumer goroutine: arrival-order ingest
// calls until the queue is closed and empty. A failed tick is recorded and
// surfaced on /status, not retried — the records are in the client's hands,
// and the deployment publishes no snapshot for a failed tick, so state
// stays consistent.
//
//cdml:detached ticks outlive the requests that enqueued them; trace identity re-attaches via the span carrier below
func (s *Server) drainHandle(h *depHandle) {
	q := h.q
	defer close(q.done)
	for it := range q.ch {
		start := time.Now()
		// Re-carry the originating request's identity across the queue
		// boundary: a span used purely as a trace-id carrier rides the
		// context into IngestQueued, whose tick records the queue wait and
		// joins the request's trace.
		carrier := &obs.Span{Name: "async-ingest", TraceID: it.traceID, RequestID: it.requestID}
		ctx := obs.ContextWithSpan(context.Background(), carrier)
		if err := h.dep.IngestQueued(ctx, it.records, it.enqueuedAt); err != nil {
			q.errs.Add(1)
			q.lastErr.Store(err.Error())
			if s.log != nil {
				s.log.LogAttrs(ctx, slog.LevelError, "async ingest failed",
					slog.String("deployment", h.name),
					slog.String("error", err.Error()),
					slog.String("request_id", it.requestID),
					slog.String("trace_id", it.traceID))
			}
		}
		q.observeTick(time.Since(start))
		q.itemDone()
		q.depth.Add(-1)
	}
}

// DrainIngest stops accepting new async-ingest chunks on every deployment
// (subsequent POST .../ingest answer 503) and waits until every
// already-queued chunk has been ingested — the final tick publishes each
// deployment's last snapshot, so Predict keeps answering from fully
// trained state during and after the drain. Idempotent; returns ctx.Err if
// the context expires first.
func (s *Server) DrainIngest(ctx context.Context) error {
	m := *s.handles.Load()
	for _, h := range m {
		h.q.close()
	}
	for _, h := range m {
		select {
		case <-h.q.done:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	return nil
}

// IngestResponse is the 202 payload of the async POST .../ingest endpoint.
type IngestResponse struct {
	// Queued counts the raw records accepted into the ingest queue.
	Queued int `json:"queued"`
	// QueueDepth is the number of chunks waiting (including this one).
	QueueDepth int64 `json:"queue_depth"`
}

// handleIngest is the asynchronous sibling of /train: the chunk is queued
// and ingested by the deployment's drainer goroutine, decoupling HTTP
// latency from training-tick duration. 503 queue_full signals backpressure.
func handleIngest(s *Server, name string, h *depHandle, w http.ResponseWriter, r *http.Request) {
	records, err := readRecords(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, codeBadRequest, err)
		return
	}
	if len(records) == 0 {
		writeError(w, http.StatusBadRequest, codeBadRequest, errEmptyRequest)
		return
	}
	it := ingestItem{records: records, enqueuedAt: time.Now()}
	if sp := obs.FromContext(r.Context()); sp != nil {
		it.traceID = sp.TraceID
		it.requestID = sp.RequestID
	}
	depth, ok := h.q.enqueue(it)
	if !ok {
		h.q.rejected.Add(1)
		// Retry-After tells the client when a slot is likely free: the queue
		// drains one chunk per tick, so a recent tick duration is the honest
		// wait estimate (RFC 9110 §10.2.3).
		w.Header().Set("Retry-After", strconv.Itoa(h.q.retryAfterSeconds()))
		writeError(w, http.StatusServiceUnavailable, codeQueueFull,
			fmt.Errorf("serve: ingest queue full (capacity %d); retry with backoff", cap(h.q.ch)))
		return
	}
	h.q.accepted.Add(1)
	writeJSON(w, http.StatusAccepted, IngestResponse{Queued: len(records), QueueDepth: depth})
}

// StatusResponse is the /status payload: the published snapshot's identity
// and staleness, the async-ingest queue state, and the deployment's
// champion/challenger posture.
type StatusResponse struct {
	// Name is the deployment's registered name; Role is always "champion"
	// (the serving side — the challenger, if any, appears under Challenger).
	Name string `json:"name"`
	Role string `json:"role"`
	// DeploymentVersion counts role changes: 1 at creation, +1 per
	// promotion or rollback.
	DeploymentVersion uint64 `json:"deployment_version"`
	Mode              string `json:"mode"`
	// SnapshotVersion is the publish sequence number of the snapshot
	// currently answering Predict/Stats (1 = initial, pre-ingest snapshot).
	SnapshotVersion uint64 `json:"snapshot_version"`
	// SnapshotBuiltAt is the RFC 3339 publish time of that snapshot.
	SnapshotBuiltAt string `json:"snapshot_built_at"`
	// SnapshotAgeSeconds is the staleness of the serving state: time since
	// the training writer last published.
	SnapshotAgeSeconds float64 `json:"snapshot_age_seconds"`
	// WindowLoss / WindowEvaluated are the champion's promotion comparison
	// window (zeros for adopted deployments, which have none).
	WindowLoss      float64 `json:"window_loss"`
	WindowEvaluated int64   `json:"window_evaluated"`
	// HasRollback reports whether a previous champion is retained for
	// POST .../rollback.
	HasRollback bool `json:"has_rollback"`
	// Challenger describes the attached shadow challenger, if any.
	Challenger *ChallengerInfo `json:"challenger,omitempty"`
	// Replica describes replica-mode sync state (primary URL, version lag,
	// last sync); present only on replicas, whose Role is "replica".
	Replica *ReplicaInfo `json:"replica,omitempty"`
	// IngestQueueDepth / IngestQueueCapacity describe the async queue.
	IngestQueueDepth    int64 `json:"ingest_queue_depth"`
	IngestQueueCapacity int   `json:"ingest_queue_capacity"`
	// IngestOldestAgeSeconds is how long the oldest unfinished queued chunk
	// has been waiting (0 when the queue is idle) — the ingest-side
	// staleness bound: data older than this is not yet in the model.
	IngestOldestAgeSeconds float64 `json:"ingest_oldest_age_seconds"`
	// IngestAsyncErrors counts async chunks whose Ingest tick failed;
	// IngestLastError is the most recent failure message, if any.
	IngestAsyncErrors int64   `json:"ingest_async_errors"`
	IngestLastError   string  `json:"ingest_last_error,omitempty"`
	UptimeSeconds     float64 `json:"uptime_seconds"`
	// LastTick summarizes the most recent recorded deployment tick's span
	// tree — where the last tick's time went, stage by stage — so the usual
	// "why is training slow" question is answerable from /status alone.
	// Omitted before the first tick.
	LastTick *TickSummary `json:"last_tick,omitempty"`
	// LastCheckpointVersion / LastCheckpointAgeSeconds describe the newest
	// durable checkpoint of a deployment running with an AutoCheckpoint
	// policy; both are omitted when checkpointing is off or none has been
	// written yet. Version maps to completed ticks (version-1 chunks).
	LastCheckpointVersion    uint64  `json:"last_checkpoint_version,omitempty"`
	LastCheckpointAgeSeconds float64 `json:"last_checkpoint_age_seconds,omitempty"`
}

// TickSummary is the per-stage breakdown of one recorded deployment tick.
type TickSummary struct {
	// TraceID is the tick's trace id ("" for ticks outside any trace);
	// feed it to /trace?id= for the full tree.
	TraceID string `json:"trace_id,omitempty"`
	// DurationMS is the whole tick's duration.
	DurationMS float64 `json:"duration_ms"`
	// StagesMS maps the tick's top-level stage names (serve, preprocess,
	// materialize, online-update, proactive-train, ...) to their durations.
	StagesMS map[string]float64 `json:"stages_ms"`
}

// lastTickSummary summarizes the newest recorded tick span tree, or nil
// before the first tick. Scanning a few recent spans tolerates tracers
// shared with non-tick recordings (the checkpoint writer).
func lastTickSummary(tracer *obs.Tracer) *TickSummary {
	for _, sp := range tracer.Last(16) {
		if sp.Name != "tick" {
			continue
		}
		sum := &TickSummary{
			TraceID:    sp.TraceID,
			DurationMS: sp.DurationMS,
			StagesMS:   make(map[string]float64, len(sp.Children)),
		}
		for _, c := range sp.Children {
			sum.StagesMS[c.Name] += c.DurationMS
		}
		return sum
	}
	return nil
}

func handleStatus(s *Server, name string, h *depHandle, w http.ResponseWriter, r *http.Request) {
	dep := h.dep.Serving()
	snap := dep.Current()
	loss, n := h.dep.ChampionWindow()
	resp := StatusResponse{
		Name:                   h.name,
		Role:                   "champion",
		DeploymentVersion:      h.dep.Version(),
		Mode:                   dep.Stats().Mode.String(),
		SnapshotVersion:        snap.Version(),
		SnapshotBuiltAt:        snap.BuiltAt().UTC().Format(time.RFC3339Nano),
		SnapshotAgeSeconds:     time.Since(snap.BuiltAt()).Seconds(),
		WindowLoss:             loss,
		WindowEvaluated:        n,
		HasRollback:            h.dep.HasRollback(),
		IngestQueueDepth:       h.q.depth.Load(),
		IngestQueueCapacity:    cap(h.q.ch),
		IngestOldestAgeSeconds: h.q.oldestAge().Seconds(),
		IngestAsyncErrors:      h.q.errs.Load(),
		UptimeSeconds:          float64(time.Now().UnixNano()-s.startNanos) / 1e9,
		LastTick:               lastTickSummary(dep.Tracer()),
	}
	if st, ok := h.dep.Challenger(); ok {
		resp.Challenger = challengerInfo(st)
	}
	if h.rep != nil {
		resp.Role = "replica"
		resp.Replica = replicaInfo(h)
	}
	if msg, ok := h.q.lastErr.Load().(string); ok {
		resp.IngestLastError = msg
	}
	if info, ok := dep.LastCheckpoint(); ok {
		resp.LastCheckpointVersion = info.Version
		resp.LastCheckpointAgeSeconds = time.Since(info.At).Seconds()
	}
	writeJSON(w, http.StatusOK, resp)
}
