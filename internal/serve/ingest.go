package serve

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"cdml/internal/obs"
)

// ingestItem is one queued async-ingest chunk plus the identity it carries
// across the queue boundary: the originating request's trace and request
// ids (so the eventual tick joins the request's trace) and the enqueue time
// (so the wait is recorded as the tick's queue-wait span).
type ingestItem struct {
	records    [][]byte
	traceID    string
	requestID  string
	enqueuedAt time.Time
	// walSeq is the chunk's write-ahead ingest-log sequence number, assigned
	// by the durable append that precedes the 202 ack (0 = the deployment
	// has no ingest log). The drainer commits or aborts it after the tick.
	walSeq uint64
}

// Sentinel enqueue rejections: a full queue is backpressure the client
// should retry with backoff; a closed queue is a draining server the
// client should fail over from — conflating them (the old behavior sent
// queue_full plus Retry-After during shutdown) misleads clients into
// hammering a server that will never accept.
var (
	errQueueFull   = errors.New("serve: ingest queue full")
	errQueueClosed = errors.New("serve: ingest queue closed")
)

// DefaultIngestQueue is the bounded async-ingest queue capacity (chunks)
// per deployment when WithIngestQueue is not given.
const DefaultIngestQueue = 256

// ingestQueue is the bounded buffer behind POST .../ingest — one per
// deployment, so a backlogged pipeline never delays its neighbors.
// Handlers enqueue chunks without blocking; the deployment's single drainer
// goroutine feeds them to the champion in arrival order, so the
// deployment's serialized writer stays single-writer while HTTP clients get
// an immediate 202. When the queue is full (training cannot keep up with
// arrivals) the handler answers 503 queue_full instead of buffering
// unboundedly — explicit backpressure the client can react to.
type ingestQueue struct {
	ch   chan ingestItem
	done chan struct{} // closed when the drainer exits

	// mu guards closed against the enqueue path: enqueue holds the read
	// lock around the channel send so close's close(ch) (write lock) can
	// never race a send on a closed channel.
	mu     sync.RWMutex
	closed bool //cdml:guardedby mu

	// pmu guards pending, a FIFO mirror of the queued items' enqueue times:
	// appended on enqueue, popped after the drainer finishes an item
	// (matching the depth counter's semantics), so oldestAge reports how
	// stale the head of the queue is — including an item currently being
	// trained on, whose wait is still unserved from the client's view.
	pmu     sync.Mutex
	pending []time.Time //cdml:guardedby pmu

	depth    atomic.Int64 // chunks enqueued but not yet ingested
	errs     atomic.Int64 // failed async Ingest calls
	lastErr  atomic.Value // string: message of the most recent failure
	accepted atomic.Int64 // chunks accepted (202)
	rejected atomic.Int64 // chunks rejected with queue_full (503)
	// tickNanos is an EWMA (alpha 0.3) of recent Ingest tick durations,
	// maintained by the drainer and read by the 503 path to derive an
	// honest Retry-After: the queue frees one slot per tick, so one recent
	// tick duration is the time until an immediate retry can succeed.
	tickNanos atomic.Int64
}

// observeTick folds one tick duration into the EWMA.
func (q *ingestQueue) observeTick(d time.Duration) {
	const alpha = 0.3
	prev := q.tickNanos.Load()
	if prev == 0 {
		q.tickNanos.Store(int64(d))
		return
	}
	q.tickNanos.Store(int64(alpha*float64(d) + (1-alpha)*float64(prev)))
}

// retryAfterSeconds suggests how long a backpressured client should wait
// before retrying, clamped to [1, 60] whole seconds (HTTP Retry-After has
// one-second resolution; 1 is the floor even for sub-second ticks).
func (q *ingestQueue) retryAfterSeconds() int {
	nanos := q.tickNanos.Load()
	if nanos <= 0 {
		return 1
	}
	secs := int(time.Duration(nanos).Truncate(time.Second) / time.Second)
	if time.Duration(nanos)%time.Second != 0 {
		secs++
	}
	return min(max(secs, 1), 60)
}

func newIngestQueue(capacity int) *ingestQueue {
	return &ingestQueue{
		ch:   make(chan ingestItem, capacity),
		done: make(chan struct{}),
	}
}

// enqueue offers one chunk; on success it reports the post-enqueue depth,
// otherwise the error distinguishes a full queue (errQueueFull) from a
// draining one (errQueueClosed).
//
// pmu is held across the channel send: the pending-times mirror append
// must land inside the same critical section, because the drainer's
// itemDone (which also takes pmu) can run the moment the send completes —
// appending after the send, as this path once did, let a fast drainer pop
// an empty slice first and leave an orphaned timestamp that made
// ingest_oldest_age_seconds grow forever on an idle queue.
func (q *ingestQueue) enqueue(it ingestItem) (int64, error) {
	q.mu.RLock()
	defer q.mu.RUnlock()
	if q.closed {
		return 0, errQueueClosed
	}
	q.pmu.Lock()
	select {
	case q.ch <- it:
		q.pending = append(q.pending, it.enqueuedAt)
		q.pmu.Unlock()
		return q.depth.Add(1), nil
	default:
		q.pmu.Unlock()
		return 0, errQueueFull
	}
}

// refusal reports without side effects whether enqueue would reject right
// now — the handler's fast path to avoid a durable log append for a chunk
// that is about to be 503'd anyway (under overload, wasted fsyncs are
// exactly what the disk does not need). enqueue re-checks authoritatively.
func (q *ingestQueue) refusal() error {
	q.mu.RLock()
	defer q.mu.RUnlock()
	if q.closed {
		return errQueueClosed
	}
	if len(q.ch) == cap(q.ch) {
		return errQueueFull
	}
	return nil
}

// itemDone pops the head of the pending-times mirror after the drainer has
// finished one item.
func (q *ingestQueue) itemDone() {
	q.pmu.Lock()
	if len(q.pending) > 0 {
		q.pending = q.pending[1:]
	}
	q.pmu.Unlock()
}

// oldestAge reports how long the oldest unfinished queued chunk has been
// waiting (0 when the queue is idle) — the staleness answer /status gives
// without anyone scraping /trace.
func (q *ingestQueue) oldestAge() time.Duration {
	q.pmu.Lock()
	defer q.pmu.Unlock()
	if len(q.pending) == 0 {
		return 0
	}
	return time.Since(q.pending[0])
}

// close stops intake; idempotent. Chunks already queued still drain.
func (q *ingestQueue) close() {
	q.mu.Lock()
	defer q.mu.Unlock()
	if !q.closed {
		q.closed = true
		close(q.ch)
	}
}

// drainHandle is one deployment's consumer goroutine: arrival-order ingest
// calls until the queue is closed and empty. A failed tick is recorded and
// surfaced on /status, not retried — the records are in the client's hands,
// and the deployment publishes no snapshot for a failed tick, so state
// stays consistent.
//
//cdml:detached ticks outlive the requests that enqueued them; trace identity re-attaches via the span carrier below
func (s *Server) drainHandle(h *depHandle) {
	q := h.q
	defer close(q.done)
	for it := range q.ch {
		start := time.Now()
		// Re-carry the originating request's identity across the queue
		// boundary: a span used purely as a trace-id carrier rides the
		// context into IngestQueued, whose tick records the queue wait and
		// joins the request's trace.
		carrier := &obs.Span{Name: "async-ingest", TraceID: it.traceID, RequestID: it.requestID}
		ctx := obs.ContextWithSpan(context.Background(), carrier)
		if err := h.dep.IngestLogged(ctx, it.records, it.enqueuedAt, it.walSeq); err != nil {
			q.errs.Add(1)
			q.lastErr.Store(err.Error())
			if s.log != nil {
				s.log.LogAttrs(ctx, slog.LevelError, "async ingest failed",
					slog.String("deployment", h.name),
					slog.String("error", err.Error()),
					slog.String("request_id", it.requestID),
					slog.String("trace_id", it.traceID))
			}
		}
		q.observeTick(time.Since(start))
		q.itemDone()
		q.depth.Add(-1)
	}
}

// DrainIngest stops accepting new async-ingest chunks on every deployment
// (subsequent POST .../ingest answer 503) and waits until every
// already-queued chunk has been ingested — the final tick publishes each
// deployment's last snapshot, so Predict keeps answering from fully
// trained state during and after the drain. Idempotent; returns ctx.Err if
// the context expires first.
func (s *Server) DrainIngest(ctx context.Context) error {
	m := *s.handles.Load()
	for _, h := range m {
		h.q.close()
	}
	for _, h := range m {
		select {
		case <-h.q.done:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	return nil
}

// IngestResponse is the 202 payload of the async POST .../ingest endpoint.
type IngestResponse struct {
	// Queued counts the raw records accepted into the ingest queue.
	Queued int `json:"queued"`
	// QueueDepth is the number of chunks waiting (including this one).
	QueueDepth int64 `json:"queue_depth"`
}

// handleIngest is the asynchronous sibling of /train: the chunk is queued
// and ingested by the deployment's drainer goroutine, decoupling HTTP
// latency from training-tick duration. When the deployment runs a
// write-ahead ingest log, the chunk is durably appended (fsynced) before
// the 202 — an acknowledged chunk survives a crash and is replayed on
// recovery. 503 queue_full signals backpressure; 503 shutting_down (no
// Retry-After) signals a draining server the client should fail over from.
func handleIngest(s *Server, name string, h *depHandle, w http.ResponseWriter, r *http.Request) {
	records, err := readRecords(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, codeBadRequest, err)
		return
	}
	if len(records) == 0 {
		writeError(w, http.StatusBadRequest, codeBadRequest, errEmptyRequest)
		return
	}
	it := ingestItem{records: records, enqueuedAt: time.Now()}
	if sp := obs.FromContext(r.Context()); sp != nil {
		it.traceID = sp.TraceID
		it.requestID = sp.RequestID
	}
	var depth int64
	qerr := h.q.refusal()
	if qerr == nil {
		seq, err := h.dep.AppendIngestLog(records)
		if err != nil {
			writeError(w, http.StatusInternalServerError, codeInternal,
				fmt.Errorf("serve: ingest log append: %w", err))
			return
		}
		it.walSeq = seq
		depth, qerr = h.q.enqueue(it)
		if qerr != nil {
			// The chunk is in the log but will never be drained; mark it so
			// recovery does not replay a chunk the client saw rejected.
			h.dep.AbortIngestLog(seq)
		}
	}
	switch {
	case errors.Is(qerr, errQueueClosed):
		writeError(w, http.StatusServiceUnavailable, codeShuttingDown,
			errors.New("serve: ingest is draining for shutdown; chunk not accepted"))
		return
	case qerr != nil:
		h.q.rejected.Add(1)
		// Retry-After tells the client when a slot is likely free: the queue
		// drains one chunk per tick, so a recent tick duration is the honest
		// wait estimate (RFC 9110 §10.2.3).
		w.Header().Set("Retry-After", strconv.Itoa(h.q.retryAfterSeconds()))
		writeError(w, http.StatusServiceUnavailable, codeQueueFull,
			fmt.Errorf("serve: ingest queue full (capacity %d); retry with backoff", cap(h.q.ch)))
		return
	}
	h.q.accepted.Add(1)
	writeJSON(w, http.StatusAccepted, IngestResponse{Queued: len(records), QueueDepth: depth})
}

// StatusResponse is the /status payload: the published snapshot's identity
// and staleness, the async-ingest queue state, and the deployment's
// champion/challenger posture.
type StatusResponse struct {
	// Name is the deployment's registered name; Role is always "champion"
	// (the serving side — the challenger, if any, appears under Challenger).
	Name string `json:"name"`
	Role string `json:"role"`
	// DeploymentVersion counts role changes: 1 at creation, +1 per
	// promotion or rollback.
	DeploymentVersion uint64 `json:"deployment_version"`
	Mode              string `json:"mode"`
	// SnapshotVersion is the publish sequence number of the snapshot
	// currently answering Predict/Stats (1 = initial, pre-ingest snapshot).
	SnapshotVersion uint64 `json:"snapshot_version"`
	// SnapshotBuiltAt is the RFC 3339 publish time of that snapshot.
	SnapshotBuiltAt string `json:"snapshot_built_at"`
	// SnapshotAgeSeconds is the staleness of the serving state: time since
	// the training writer last published.
	SnapshotAgeSeconds float64 `json:"snapshot_age_seconds"`
	// WindowLoss / WindowEvaluated are the champion's promotion comparison
	// window (zeros for adopted deployments, which have none).
	WindowLoss      float64 `json:"window_loss"`
	WindowEvaluated int64   `json:"window_evaluated"`
	// HasRollback reports whether a previous champion is retained for
	// POST .../rollback.
	HasRollback bool `json:"has_rollback"`
	// Challenger describes the attached shadow challenger, if any.
	Challenger *ChallengerInfo `json:"challenger,omitempty"`
	// Replica describes replica-mode sync state (primary URL, version lag,
	// last sync); present only on replicas, whose Role is "replica".
	Replica *ReplicaInfo `json:"replica,omitempty"`
	// IngestQueueDepth / IngestQueueCapacity describe the async queue.
	IngestQueueDepth    int64 `json:"ingest_queue_depth"`
	IngestQueueCapacity int   `json:"ingest_queue_capacity"`
	// IngestOldestAgeSeconds is how long the oldest unfinished queued chunk
	// has been waiting (0 when the queue is idle) — the ingest-side
	// staleness bound: data older than this is not yet in the model.
	IngestOldestAgeSeconds float64 `json:"ingest_oldest_age_seconds"`
	// IngestAsyncErrors counts async chunks whose Ingest tick failed;
	// IngestLastError is the most recent failure message, if any.
	IngestAsyncErrors int64   `json:"ingest_async_errors"`
	IngestLastError   string  `json:"ingest_last_error,omitempty"`
	UptimeSeconds     float64 `json:"uptime_seconds"`
	// LastTick summarizes the most recent recorded deployment tick's span
	// tree — where the last tick's time went, stage by stage — so the usual
	// "why is training slow" question is answerable from /status alone.
	// Omitted before the first tick.
	LastTick *TickSummary `json:"last_tick,omitempty"`
	// LastCheckpointVersion / LastCheckpointAgeSeconds describe the newest
	// durable checkpoint of a deployment running with an AutoCheckpoint
	// policy; both are omitted when checkpointing is off or none has been
	// written yet. Version maps to completed ticks (version-1 chunks).
	LastCheckpointVersion    uint64  `json:"last_checkpoint_version,omitempty"`
	LastCheckpointAgeSeconds float64 `json:"last_checkpoint_age_seconds,omitempty"`
	// WAL describes the durable write-ahead ingest log; present only when
	// the deployment runs one (Config.IngestLog / -wal-dir).
	WAL *WALInfo `json:"wal,omitempty"`
}

// WALInfo is the /status view of the write-ahead ingest log.
type WALInfo struct {
	// LastSeq is the highest log sequence number appended so far.
	LastSeq uint64 `json:"last_seq"`
	// AppendedTotal / AppliedTotal / AbortedTotal count chunks durably
	// appended (one per 202 ack), committed by a tick, and marked
	// never-replay (rejected after append, or failed tick).
	AppendedTotal uint64 `json:"appended_total"`
	AppliedTotal  uint64 `json:"applied_total"`
	AbortedTotal  uint64 `json:"aborted_total"`
	// ReplayedOnRecovery counts chunks the most recent recovery replayed.
	ReplayedOnRecovery uint64 `json:"replayed_on_recovery"`
	// PendingReplay counts acknowledged chunks not yet consumed by a tick —
	// exactly what a crash right now would replay.
	PendingReplay int `json:"pending_replay"`
	// Segments / Bytes describe the on-disk footprint.
	Segments int   `json:"segments"`
	Bytes    int64 `json:"bytes"`
}

// TickSummary is the per-stage breakdown of one recorded deployment tick.
type TickSummary struct {
	// TraceID is the tick's trace id ("" for ticks outside any trace);
	// feed it to /trace?id= for the full tree.
	TraceID string `json:"trace_id,omitempty"`
	// DurationMS is the whole tick's duration.
	DurationMS float64 `json:"duration_ms"`
	// StagesMS maps the tick's top-level stage names (serve, preprocess,
	// materialize, online-update, proactive-train, ...) to their durations.
	StagesMS map[string]float64 `json:"stages_ms"`
}

// lastTickSummary summarizes the newest recorded tick span tree, or nil
// before the first tick. Scanning a few recent spans tolerates tracers
// shared with non-tick recordings (the checkpoint writer).
func lastTickSummary(tracer *obs.Tracer) *TickSummary {
	for _, sp := range tracer.Last(16) {
		if sp.Name != "tick" {
			continue
		}
		sum := &TickSummary{
			TraceID:    sp.TraceID,
			DurationMS: sp.DurationMS,
			StagesMS:   make(map[string]float64, len(sp.Children)),
		}
		for _, c := range sp.Children {
			sum.StagesMS[c.Name] += c.DurationMS
		}
		return sum
	}
	return nil
}

func handleStatus(s *Server, name string, h *depHandle, w http.ResponseWriter, r *http.Request) {
	dep := h.dep.Serving()
	snap := dep.Current()
	loss, n := h.dep.ChampionWindow()
	resp := StatusResponse{
		Name:                   h.name,
		Role:                   "champion",
		DeploymentVersion:      h.dep.Version(),
		Mode:                   dep.Stats().Mode.String(),
		SnapshotVersion:        snap.Version(),
		SnapshotBuiltAt:        snap.BuiltAt().UTC().Format(time.RFC3339Nano),
		SnapshotAgeSeconds:     time.Since(snap.BuiltAt()).Seconds(),
		WindowLoss:             loss,
		WindowEvaluated:        n,
		HasRollback:            h.dep.HasRollback(),
		IngestQueueDepth:       h.q.depth.Load(),
		IngestQueueCapacity:    cap(h.q.ch),
		IngestOldestAgeSeconds: h.q.oldestAge().Seconds(),
		IngestAsyncErrors:      h.q.errs.Load(),
		UptimeSeconds:          float64(time.Now().UnixNano()-s.startNanos) / 1e9,
		LastTick:               lastTickSummary(dep.Tracer()),
	}
	if st, ok := h.dep.Challenger(); ok {
		resp.Challenger = challengerInfo(st)
	}
	if h.rep != nil {
		resp.Role = "replica"
		resp.Replica = replicaInfo(h)
	}
	if msg, ok := h.q.lastErr.Load().(string); ok {
		resp.IngestLastError = msg
	}
	if info, ok := dep.LastCheckpoint(); ok {
		resp.LastCheckpointVersion = info.Version
		resp.LastCheckpointAgeSeconds = time.Since(info.At).Seconds()
	}
	if st, ok := dep.WALStats(); ok {
		resp.WAL = &WALInfo{
			LastSeq:            st.LastSeq,
			AppendedTotal:      st.Appends,
			AppliedTotal:       st.Applied,
			AbortedTotal:       st.Aborted,
			ReplayedOnRecovery: st.Replayed,
			PendingReplay:      st.Unapplied,
			Segments:           st.Segments,
			Bytes:              st.Bytes,
		}
	}
	writeJSON(w, http.StatusOK, resp)
}
