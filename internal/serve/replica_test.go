package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"cdml/internal/core"
	"cdml/internal/data"
	"cdml/internal/eval"
	"cdml/internal/model"
	"cdml/internal/opt"
	"cdml/internal/pipeline"
	"cdml/internal/registry"
	"cdml/internal/sample"
	"cdml/internal/snapstream"
)

// replicaTestConfig is newTestServer's config as a function, so a primary
// and its replica can be built from identical (but independent) specs — the
// precondition the replication protocol shares with real deployments.
func replicaTestConfig() core.Config {
	return core.Config{
		Mode: core.ModeContinuous,
		NewPipeline: func() *pipeline.Pipeline {
			return pipeline.New(testParser{},
				pipeline.NewStandardScaler([]string{"x0", "x1"}),
				pipeline.NewAssembler([]string{"x0", "x1"}, nil, "features"),
			)
		},
		NewModel:       func() model.Model { return model.NewSVM(2, 1e-4) },
		NewOptimizer:   func() opt.Optimizer { return opt.NewAdam(0.05) },
		Store:          data.NewStore(data.NewMemoryBackend()),
		Sampler:        sample.NewTime(1),
		SampleChunks:   3,
		ProactiveEvery: 2,
		Metric:         &eval.Misclassification{},
		Predict:        core.ClassifyPredictor,
	}
}

// recordChunk generates n "label,x0,x1" records with y = sign(x0+x1).
func recordChunk(r *rand.Rand, n int) [][]byte {
	out := make([][]byte, n)
	for i := range out {
		x0, x1 := r.NormFloat64(), r.NormFloat64()
		y := "+1"
		if x0+x1 < 0 {
			y = "-1"
		}
		out[i] = []byte(fmt.Sprintf("%s,%.4f,%.4f", y, x0, x1))
	}
	return out
}

// newReplicaPrimary boots a trained single-deployment primary.
func newReplicaPrimary(t *testing.T, chunks int) (*Server, *httptest.Server) {
	t.Helper()
	dep, err := core.NewDeployer(replicaTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(7))
	for i := 0; i < chunks; i++ {
		if err := dep.Ingest(recordChunk(r, 40)); err != nil {
			t.Fatal(err)
		}
	}
	s := New(dep, WithLogger(nil))
	ts := httptest.NewServer(s)
	t.Cleanup(func() { ts.Close(); s.Close() })
	return s, ts
}

// newReplicaServer boots a replica of primaryURL from the same spec.
func newReplicaServer(t *testing.T, primaryURL string) (*Server, *httptest.Server) {
	t.Helper()
	dep, err := core.NewDeployer(replicaTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	s := New(dep, WithLogger(nil), WithReplicaOf(primaryURL, 10*time.Millisecond))
	ts := httptest.NewServer(s)
	t.Cleanup(func() { ts.Close(); s.Close() })
	return s, ts
}

func getStatus(t *testing.T, ts *httptest.Server) StatusResponse {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + "/v1/status")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/v1/status status %d", resp.StatusCode)
	}
	var st StatusResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// waitReplicaVersion polls the replica's /v1/status until its snapshot
// version reaches want.
func waitReplicaVersion(t *testing.T, ts *httptest.Server, want uint64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if st := getStatus(t, ts); st.SnapshotVersion >= want {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("replica never reached snapshot version %d (at %d)",
		want, getStatus(t, ts).SnapshotVersion)
}

func predictions(t *testing.T, ts *httptest.Server, body string) []float64 {
	t.Helper()
	resp, err := ts.Client().Post(ts.URL+"/v1/predict", "text/plain", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/v1/predict status %d", resp.StatusCode)
	}
	var pr PredictResponse
	if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
		t.Fatal(err)
	}
	return pr.Predictions
}

func trainChunks(t *testing.T, ts *httptest.Server, r *rand.Rand, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		resp, err := ts.Client().Post(ts.URL+"/v1/train", "text/plain", strings.NewReader(chunkBody(r, 40)))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("/v1/train status %d", resp.StatusCode)
		}
	}
}

// TestReplicaSyncBitIdentical is the e2e pair: a replica converges on the
// primary's published snapshot and answers bit-identical predictions, then
// catches further training within the poll interval, with staleness visible
// in /v1/status.
func TestReplicaSyncBitIdentical(t *testing.T) {
	_, pts := newReplicaPrimary(t, 12)
	_, rts := newReplicaServer(t, pts.URL)

	pv := getStatus(t, pts).SnapshotVersion
	waitReplicaVersion(t, rts, pv)

	body := chunkBody(rand.New(rand.NewSource(99)), 30)
	want := predictions(t, pts, body)
	got := predictions(t, rts, body)
	if len(want) != len(got) {
		t.Fatalf("prediction count: primary %d, replica %d", len(want), len(got))
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("prediction %d differs: primary %v, replica %v", i, want[i], got[i])
		}
	}

	// Train the primary further; the replica must converge again.
	trainChunks(t, pts, rand.New(rand.NewSource(8)), 5)
	pv2 := getStatus(t, pts).SnapshotVersion
	if pv2 <= pv {
		t.Fatalf("primary version did not advance: %d -> %d", pv, pv2)
	}
	waitReplicaVersion(t, rts, pv2)
	body2 := chunkBody(rand.New(rand.NewSource(100)), 30)
	want2, got2 := predictions(t, pts, body2), predictions(t, rts, body2)
	for i := range want2 {
		if want2[i] != got2[i] {
			t.Fatalf("post-catchup prediction %d differs", i)
		}
	}

	st := getStatus(t, rts)
	if st.Role != "replica" {
		t.Fatalf("replica role = %q, want replica", st.Role)
	}
	if st.Replica == nil {
		t.Fatal("replica status missing the replica section")
	}
	if st.Replica.VersionLag != 0 {
		t.Fatalf("synced replica reports version lag %d", st.Replica.VersionLag)
	}
	if st.Replica.Applies < 1 || st.Replica.Polls < st.Replica.Applies {
		t.Fatalf("implausible sync counters: polls %d, applies %d", st.Replica.Polls, st.Replica.Applies)
	}
	if st.Replica.SnapshotVersion != pv2 {
		t.Fatalf("replica applied version %d, want %d", st.Replica.SnapshotVersion, pv2)
	}
}

// TestReplicaRejectsWrites pins every state-changing endpoint to 409
// read_only_replica on a replica.
func TestReplicaRejectsWrites(t *testing.T) {
	_, pts := newReplicaPrimary(t, 4)
	_, rts := newReplicaServer(t, pts.URL)
	waitReplicaVersion(t, rts, getStatus(t, pts).SnapshotVersion)

	cases := []struct{ method, path string }{
		{http.MethodPost, "/v1/train"},
		{http.MethodPost, "/v1/ingest"},
		{http.MethodPost, "/v1/restore"},
		{http.MethodPost, "/v1/deployments/default/train"},
		{http.MethodPost, "/v1/deployments/default/checkpoint"},
		{http.MethodPost, "/v1/deployments/default/challengers"},
		{http.MethodDelete, "/v1/deployments/default/challengers"},
		{http.MethodPost, "/v1/deployments/default/rollback"},
	}
	for _, c := range cases {
		req, err := http.NewRequest(c.method, rts.URL+c.path, strings.NewReader("+1,0.1,0.2\n"))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := rts.Client().Do(req)
		if err != nil {
			t.Fatal(err)
		}
		var eb ErrorBody
		err = json.NewDecoder(resp.Body).Decode(&eb)
		resp.Body.Close()
		if resp.StatusCode != http.StatusConflict {
			t.Fatalf("%s %s status %d, want 409", c.method, c.path, resp.StatusCode)
		}
		if err != nil || eb.Error.Code != "read_only_replica" {
			t.Fatalf("%s %s error code %q, want read_only_replica", c.method, c.path, eb.Error.Code)
		}
	}

	// Reads keep answering.
	for _, path := range []string{"/v1/predict", "/v1/status", "/v1/stats"} {
		var resp *http.Response
		var err error
		if path == "/v1/predict" {
			resp, err = rts.Client().Post(rts.URL+path, "text/plain", strings.NewReader("+1,0.1,0.2\n"))
		} else {
			resp, err = rts.Client().Get(rts.URL + path)
		}
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s on replica status %d, want 200", path, resp.StatusCode)
		}
	}
}

// TestReplicaTornFrameFallsBack serves the replica a truncated frame over
// HTTP: the poll fails loudly in the sync counters while the replica keeps
// answering from its last good snapshot.
func TestReplicaTornFrameFallsBack(t *testing.T) {
	dep, err := core.NewDeployer(replicaTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 8; i++ {
		if err := dep.Ingest(recordChunk(r, 40)); err != nil {
			t.Fatal(err)
		}
	}
	f, ok, err := dep.SnapshotSource().Latest(context.Background(), 0)
	if err != nil || !ok {
		t.Fatalf("frame from trained deployer: ok=%v err=%v", ok, err)
	}
	good := snapstream.EncodeFrame(f)
	torn := snapstream.EncodeFrame(snapstream.Frame{Version: f.Version + 1, Payload: f.Payload})
	torn = torn[:len(torn)/2]

	var serveTorn atomic.Bool
	fake := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if serveTorn.Load() {
			w.Header().Set(snapstream.VersionHeader, strconv.FormatUint(f.Version+1, 10))
			_, _ = w.Write(torn)
			return
		}
		w.Header().Set(snapstream.VersionHeader, strconv.FormatUint(f.Version, 10))
		if since, _ := strconv.ParseUint(req.URL.Query().Get("since"), 10, 64); since >= f.Version {
			w.WriteHeader(http.StatusNotModified)
			return
		}
		_, _ = w.Write(good)
	}))
	t.Cleanup(fake.Close)

	_, rts := newReplicaServer(t, fake.URL)
	waitReplicaVersion(t, rts, f.Version)
	body := chunkBody(rand.New(rand.NewSource(42)), 20)
	baseline := predictions(t, rts, body)

	serveTorn.Store(true)
	deadline := time.Now().Add(5 * time.Second)
	for {
		if st := getStatus(t, rts); st.Replica != nil && st.Replica.SyncErrors >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("torn frames never surfaced as sync errors")
		}
		time.Sleep(5 * time.Millisecond)
	}

	st := getStatus(t, rts)
	if st.Replica.SnapshotVersion != f.Version {
		t.Fatalf("torn frame was applied: version %d, want %d", st.Replica.SnapshotVersion, f.Version)
	}
	if st.Replica.VersionLag < 1 {
		t.Fatalf("version lag %d, want >= 1 while the primary advertises a newer version", st.Replica.VersionLag)
	}
	if !strings.Contains(st.Replica.LastSyncError, "torn") {
		t.Fatalf("last sync error %q does not name the torn frame", st.Replica.LastSyncError)
	}
	after := predictions(t, rts, body)
	for i := range baseline {
		if baseline[i] != after[i] {
			t.Fatalf("prediction %d changed after torn sync; replica left its good snapshot", i)
		}
	}
}

// TestChaosReplicaKillResync kills a synced replica, trains the primary
// on, and verifies a fresh replica resyncs to bit-identical predictions —
// the recovery story of the replication protocol.
func TestChaosReplicaKillResync(t *testing.T) {
	_, pts := newReplicaPrimary(t, 10)
	s1, rts1 := newReplicaServer(t, pts.URL)
	pv := getStatus(t, pts).SnapshotVersion
	waitReplicaVersion(t, rts1, pv)

	// Kill the replica mid-flight.
	rts1.Close()
	s1.Close()

	// The primary keeps training while the replica is down.
	trainChunks(t, pts, rand.New(rand.NewSource(11)), 6)
	pv2 := getStatus(t, pts).SnapshotVersion
	if pv2 <= pv {
		t.Fatalf("primary version did not advance past %d", pv)
	}

	// A fresh replica resyncs from scratch and converges bit-identically.
	_, rts2 := newReplicaServer(t, pts.URL)
	waitReplicaVersion(t, rts2, pv2)
	body := chunkBody(rand.New(rand.NewSource(12)), 30)
	want, got := predictions(t, pts, body), predictions(t, rts2, body)
	if len(want) == 0 || len(want) != len(got) {
		t.Fatalf("prediction counts: primary %d, replica %d", len(want), len(got))
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("resynced prediction %d differs", i)
		}
	}
}

// TestChaosPredictDuringReplicaSwap hammers a replica's lock-free predict
// path while its poller concurrently swaps in freshly trained snapshots —
// the replica-side mirror of TestPredictDuringRetrain, run under -race by
// make chaos.
func TestChaosPredictDuringReplicaSwap(t *testing.T) {
	_, pts := newReplicaPrimary(t, 5)
	dep, err := core.NewDeployer(replicaTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	s := New(dep, WithLogger(nil), WithReplicaOf(pts.URL, time.Millisecond))
	rts := httptest.NewServer(s)
	t.Cleanup(func() { rts.Close(); s.Close() })
	waitReplicaVersion(t, rts, getStatus(t, pts).SnapshotVersion)

	done := make(chan struct{})
	var trainErr error
	go func() {
		defer close(done)
		r := rand.New(rand.NewSource(21))
		for i := 0; i < 15; i++ {
			resp, err := pts.Client().Post(pts.URL+"/v1/train", "text/plain", strings.NewReader(chunkBody(r, 40)))
			if err != nil {
				trainErr = err
				return
			}
			resp.Body.Close()
		}
	}()

	var wg sync.WaitGroup
	var bad atomic.Int64
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-done:
					return
				default:
				}
				resp, err := rts.Client().Post(rts.URL+"/v1/predict", "text/plain", strings.NewReader(chunkBody(r, 10)))
				if err != nil {
					bad.Add(1)
					return
				}
				if resp.StatusCode != http.StatusOK {
					bad.Add(1)
				}
				resp.Body.Close()
			}
		}(int64(30 + g))
	}
	wg.Wait()
	<-done
	if trainErr != nil {
		t.Fatal(trainErr)
	}
	if n := bad.Load(); n != 0 {
		t.Fatalf("%d predict requests failed during replica swaps", n)
	}

	// After training settles, the pair converges bit-identically.
	pv := getStatus(t, pts).SnapshotVersion
	waitReplicaVersion(t, rts, pv)
	body := chunkBody(rand.New(rand.NewSource(50)), 20)
	want, got := predictions(t, pts, body), predictions(t, rts, body)
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("prediction %d differs after concurrent swaps", i)
		}
	}
}

// TestTrainOverQuota pins the per-deployment store quota to the HTTP
// envelope: ingest past max_store_chunks answers 429 over_quota.
func TestTrainOverQuota(t *testing.T) {
	reg := registry.New(registry.Options{})
	cfg := replicaTestConfig()
	if _, err := reg.Create("q", cfg, registry.Quotas{MaxStoreChunks: 2}); err != nil {
		t.Fatal(err)
	}
	s := NewWithRegistry(reg, WithLogger(nil))
	ts := httptest.NewServer(s)
	t.Cleanup(func() { ts.Close(); s.Close(); reg.Close() })

	r := rand.New(rand.NewSource(5))
	for i := 0; i < 2; i++ {
		resp, err := ts.Client().Post(ts.URL+"/v1/deployments/q/train", "text/plain", strings.NewReader(chunkBody(r, 10)))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("train %d under quota: status %d", i, resp.StatusCode)
		}
	}
	resp, err := ts.Client().Post(ts.URL+"/v1/deployments/q/train", "text/plain", strings.NewReader(chunkBody(r, 10)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("train over quota: status %d, want 429", resp.StatusCode)
	}
	var eb ErrorBody
	if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil || eb.Error.Code != "over_quota" {
		t.Fatalf("over-quota error code %q, want over_quota", eb.Error.Code)
	}
}

// TestSnapshotEndpointProtocol pins the replication feed's wire contract:
// a full self-validating frame without ?since=, 304 with the current
// version header when ?since= is current, and 400 on garbage.
func TestSnapshotEndpointProtocol(t *testing.T) {
	_, pts := newReplicaPrimary(t, 6)
	v := getStatus(t, pts).SnapshotVersion

	resp, err := pts.Client().Get(pts.URL + "/v1/deployments/default/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	raw := make([]byte, 0)
	buf := make([]byte, 4096)
	for {
		n, err := resp.Body.Read(buf)
		raw = append(raw, buf[:n]...)
		if err != nil {
			break
		}
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("snapshot status %d", resp.StatusCode)
	}
	if got := resp.Header.Get(snapstream.VersionHeader); got != strconv.FormatUint(v, 10) {
		t.Fatalf("version header %q, want %d", got, v)
	}
	f, err := snapstream.DecodeFrame("feed", raw)
	if err != nil {
		t.Fatalf("feed frame does not decode: %v", err)
	}
	if f.Version != v {
		t.Fatalf("frame version %d, want %d", f.Version, v)
	}

	resp2, err := pts.Client().Get(pts.URL + "/v1/deployments/default/snapshot?since=" + strconv.FormatUint(v, 10))
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotModified {
		t.Fatalf("conditional snapshot status %d, want 304", resp2.StatusCode)
	}
	if got := resp2.Header.Get(snapstream.VersionHeader); got != strconv.FormatUint(v, 10) {
		t.Fatalf("304 version header %q, want %d", got, v)
	}

	resp3, err := pts.Client().Get(pts.URL + "/v1/deployments/default/snapshot?since=nope")
	if err != nil {
		t.Fatal(err)
	}
	resp3.Body.Close()
	if resp3.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage since: status %d, want 400", resp3.StatusCode)
	}
}
