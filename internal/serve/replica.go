package serve

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"cdml/internal/obs"
	"cdml/internal/registry"
	"cdml/internal/snapstream"
)

// DefaultReplicaPoll is the replica sync interval when WithReplicaOf is
// given a non-positive one.
const DefaultReplicaPoll = 250 * time.Millisecond

// replicaHTTPTimeout caps one snapshot fetch from the primary — generous,
// because a full frame rides the response; a hung primary surfaces as a
// sync error rather than a stuck poller.
const replicaHTTPTimeout = 30 * time.Second

// replicaState is one replica deployment's sync state: the HTTP source
// polling the primary's snapshot feed, the sink swapping fetched frames
// into the local deployer, and the staleness counters /status and the
// cdml_replica_* series report. All fields are atomics or set once before
// the poller starts; the poller goroutine is the only writer of the
// counters.
type replicaState struct {
	// primary is the deployment's snapshot feed URL on the primary.
	primary string
	src     *snapstream.HTTPSource
	sink    snapstream.Sink

	stop     chan struct{}
	stopOnce sync.Once
	done     chan struct{} // closed when the poller exits

	// lastApplied is the version of the last frame swapped in (0 before the
	// first sync) — the ?since= watermark, so steady-state polls are 304s.
	lastApplied atomic.Uint64
	// lastSyncNanos is the wall time of the last successful poll (304s
	// included: the primary answered, the replica is provably current).
	lastSyncNanos atomic.Int64
	polls         atomic.Int64
	applies       atomic.Int64
	syncErrs      atomic.Int64
	lastErr       atomic.Value // string: message of the most recent sync failure
}

// depSink applies frames to the deployment's current serving deployer,
// resolved per apply so the replica never pins a stale deployer.
type depSink struct{ d *registry.Deployment }

func (k depSink) Apply(f snapstream.Frame) error {
	return k.d.Serving().SnapshotSink().Apply(f)
}

// newReplicaState wires one deployment's sync state against the primary
// configured by WithReplicaOf.
func (s *Server) newReplicaState(d *registry.Deployment) *replicaState {
	url := s.replicaOf + "/v1/deployments/" + d.Name() + "/snapshot"
	return &replicaState{
		primary: url,
		src:     snapstream.NewHTTPSource(url, replicaHTTPTimeout),
		sink:    depSink{d: d},
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}
}

// pollOnce runs one conditional sync round: ask the primary for anything
// newer than the last applied version, swap a returned frame in, and fold
// the outcome into the staleness counters. A failed fetch or a torn frame
// changes nothing — the replica keeps answering from its last good
// snapshot, which is the whole point of the atomic swap.
func (rep *replicaState) pollOnce(ctx context.Context) {
	rep.polls.Add(1)
	f, ok, err := rep.src.Latest(ctx, rep.lastApplied.Load())
	if err != nil {
		rep.syncErrs.Add(1)
		rep.lastErr.Store(err.Error())
		return
	}
	rep.lastSyncNanos.Store(time.Now().UnixNano())
	if !ok {
		return // 304: nothing newer than lastApplied
	}
	if err := rep.sink.Apply(f); err != nil {
		rep.syncErrs.Add(1)
		rep.lastErr.Store(err.Error())
		return
	}
	rep.lastApplied.Store(f.Version)
	rep.applies.Add(1)
}

// stopPoller stops the sync goroutine and waits for it to exit; idempotent.
func (rep *replicaState) stopPoller() {
	rep.stopOnce.Do(func() { close(rep.stop) })
	<-rep.done
}

// pollReplica is a replica deployment's sync goroutine: an immediate poll
// at startup (a fresh replica converges without waiting out an interval),
// then one conditional poll per interval until stopped.
//
//cdml:detached replica sync outlives any single request; failures surface via /status and the cdml_replica_* series, never a request error
func (s *Server) pollReplica(h *depHandle) {
	rep := h.rep
	defer close(rep.done)
	ctx := context.Background()
	t := time.NewTicker(s.replicaPoll)
	defer t.Stop()
	for {
		rep.pollOnce(ctx)
		select {
		case <-rep.stop:
			return
		case <-t.C:
		}
	}
}

// versionLag is how many published snapshot versions the replica is behind
// the primary's last advertised version (0 while current, and before the
// first poll answer).
func (rep *replicaState) versionLag() uint64 {
	known, applied := rep.src.KnownVersion(), rep.lastApplied.Load()
	if known <= applied {
		return 0
	}
	return known - applied
}

// lastSyncAge is the time since the primary last answered a poll
// (0 before the first successful poll).
func (rep *replicaState) lastSyncAge() time.Duration {
	nanos := rep.lastSyncNanos.Load()
	if nanos == 0 {
		return 0
	}
	return time.Duration(time.Now().UnixNano() - nanos)
}

// registerReplicaMetrics registers the named deployment's replica staleness
// series. Same contract as registerQueueMetrics: the closures resolve the
// current handle at scrape time and report zero while the name is unrouted
// or not a replica.
func (s *Server) registerReplicaMetrics(name string) {
	ls := []obs.Label{obs.L("deployment", name)}
	lookup := func(f func(h *depHandle) float64) func() float64 {
		return func() float64 {
			if h := s.handleByName(name); h != nil && h.rep != nil {
				return f(h)
			}
			return 0
		}
	}
	s.reg.GaugeFunc("cdml_replica_version_lag",
		"Published snapshot versions this replica is behind its primary.",
		lookup(func(h *depHandle) float64 { return float64(h.rep.versionLag()) }), ls...)
	s.reg.GaugeFunc("cdml_replica_snapshot_age_seconds",
		"Age of the snapshot this replica is answering predictions from.",
		lookup(func(h *depHandle) float64 {
			return time.Since(h.dep.Serving().Current().BuiltAt()).Seconds()
		}), ls...)
	s.reg.GaugeFunc("cdml_replica_last_sync_age_seconds",
		"Time since the primary last answered a sync poll.",
		lookup(func(h *depHandle) float64 { return h.rep.lastSyncAge().Seconds() }), ls...)
	s.reg.CounterFunc("cdml_replica_polls_total",
		"Snapshot sync polls sent to the primary.",
		lookup(func(h *depHandle) float64 { return float64(h.rep.polls.Load()) }), ls...)
	s.reg.CounterFunc("cdml_replica_applies_total",
		"Snapshot frames fetched from the primary and swapped in.",
		lookup(func(h *depHandle) float64 { return float64(h.rep.applies.Load()) }), ls...)
	s.reg.CounterFunc("cdml_replica_sync_errors_total",
		"Sync polls that failed (unreachable primary, torn frame, rejected apply).",
		lookup(func(h *depHandle) float64 { return float64(h.rep.syncErrs.Load()) }), ls...)
}

// ReplicaInfo is the replica-mode section of /status: where the deployment
// syncs from and how stale it is.
type ReplicaInfo struct {
	// Primary is the snapshot feed URL this replica polls.
	Primary string `json:"primary"`
	// SnapshotVersion is the last primary version swapped in (0 before the
	// first sync); PrimaryVersion is the primary's last advertised version.
	SnapshotVersion uint64 `json:"snapshot_version"`
	PrimaryVersion  uint64 `json:"primary_version"`
	// VersionLag = PrimaryVersion − SnapshotVersion (0 while current).
	VersionLag uint64 `json:"version_lag"`
	// LastSyncAgeSeconds is the time since the primary last answered a poll
	// (0 before the first successful poll).
	LastSyncAgeSeconds float64 `json:"last_sync_age_seconds"`
	Polls              int64   `json:"polls"`
	Applies            int64   `json:"applies"`
	SyncErrors         int64   `json:"sync_errors"`
	LastSyncError      string  `json:"last_sync_error,omitempty"`
}

func replicaInfo(h *depHandle) *ReplicaInfo {
	rep := h.rep
	info := &ReplicaInfo{
		Primary:            rep.primary,
		SnapshotVersion:    rep.lastApplied.Load(),
		PrimaryVersion:     rep.src.KnownVersion(),
		VersionLag:         rep.versionLag(),
		LastSyncAgeSeconds: rep.lastSyncAge().Seconds(),
		Polls:              rep.polls.Load(),
		Applies:            rep.applies.Load(),
		SyncErrors:         rep.syncErrs.Load(),
	}
	if msg, ok := rep.lastErr.Load().(string); ok {
		info.LastSyncError = msg
	}
	return info
}
