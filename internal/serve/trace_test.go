package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"log/slog"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"cdml/internal/core"
	"cdml/internal/data"
	"cdml/internal/eval"
	"cdml/internal/model"
	"cdml/internal/obs"
	"cdml/internal/opt"
	"cdml/internal/pipeline"
	"cdml/internal/sample"
)

// newTraceTestServer is newTestServer plus knobs: an auto-checkpoint policy
// (ckptDir != "") and extra server options.
func newTraceTestServer(t *testing.T, ckptDir string, opts ...Option) (*Server, *httptest.Server) {
	t.Helper()
	cfg := core.Config{
		Mode: core.ModeContinuous,
		NewPipeline: func() *pipeline.Pipeline {
			return pipeline.New(testParser{},
				pipeline.NewStandardScaler([]string{"x0", "x1"}),
				pipeline.NewAssembler([]string{"x0", "x1"}, nil, "features"),
			)
		},
		NewModel:       func() model.Model { return model.NewSVM(2, 1e-4) },
		NewOptimizer:   func() opt.Optimizer { return opt.NewAdam(0.05) },
		Store:          data.NewStore(data.NewMemoryBackend()),
		Sampler:        sample.NewTime(1),
		SampleChunks:   3,
		ProactiveEvery: 2,
		Metric:         &eval.Misclassification{},
		Predict:        core.ClassifyPredictor,
	}
	if ckptDir != "" {
		cfg.AutoCheckpoint = &core.CheckpointPolicy{Dir: ckptDir, EveryTicks: 1, Keep: 4}
	}
	dep, err := core.NewDeployer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := New(dep, append([]Option{WithLogger(nil)}, opts...)...)
	ts := httptest.NewServer(s)
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

func getTrace(t *testing.T, ts *httptest.Server, id string) TraceResponse {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + "/v1/trace?id=" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/v1/trace?id= status %d", resp.StatusCode)
	}
	var tr TraceResponse
	if err := json.NewDecoder(resp.Body).Decode(&tr); err != nil {
		t.Fatal(err)
	}
	return tr
}

func rootNames(spans []*obs.Span) []string {
	names := make([]string, len(spans))
	for i, sp := range spans {
		names[i] = sp.Name
	}
	return names
}

func findRoot(spans []*obs.Span, name string) *obs.Span {
	for _, sp := range spans {
		if sp.Name == name {
			return sp
		}
	}
	return nil
}

func childNames(sp *obs.Span) map[string]bool {
	names := make(map[string]bool, len(sp.Children))
	for _, c := range sp.Children {
		names[c.Name] = true
	}
	return names
}

// TestTraceEndToEndAsyncIngest is the PR's acceptance criterion: one trace id
// follows an asynchronously ingested chunk from request receipt, across the
// bounded queue (the wait is its own span), through the training tick's
// stages, into the background checkpoint writer — and /v1/trace?id=
// reassembles the whole story from the three separately recorded span trees.
func TestTraceEndToEndAsyncIngest(t *testing.T) {
	_, ts := newTraceTestServer(t, t.TempDir())
	r := rand.New(rand.NewSource(7))

	resp, err := ts.Client().Post(ts.URL+"/v1/ingest", "text/plain", strings.NewReader(chunkBody(r, 30)))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("/v1/ingest status %d", resp.StatusCode)
	}
	traceID := resp.Header.Get("X-Trace-ID")
	if traceID == "" {
		t.Fatal("202 response missing X-Trace-ID")
	}

	// The tick and the checkpoint write happen after the 202: poll until the
	// request, tick, and checkpoint trees have all been recorded.
	var tr TraceResponse
	deadline := time.Now().Add(10 * time.Second)
	for {
		tr = getTrace(t, ts, traceID)
		if findRoot(tr.Spans, "POST /v1/ingest") != nil &&
			findRoot(tr.Spans, "tick") != nil &&
			findRoot(tr.Spans, "checkpoint") != nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("trace %s incomplete after 10s: roots %v", traceID, rootNames(tr.Spans))
		}
		time.Sleep(5 * time.Millisecond)
	}

	if tr.ID != traceID {
		t.Fatalf("response echoes id %q, want %q", tr.ID, traceID)
	}
	for _, sp := range tr.Spans {
		if sp.TraceID != traceID {
			t.Fatalf("root %q carries trace id %q, want %q", sp.Name, sp.TraceID, traceID)
		}
	}
	// Trees come back in start order: the HTTP request began everything.
	if tr.Spans[0].Name != "POST /v1/ingest" {
		t.Fatalf("first tree is %q, want the request root (order: %v)", tr.Spans[0].Name, rootNames(tr.Spans))
	}
	req := findRoot(tr.Spans, "POST /v1/ingest")
	if req.RequestID == "" {
		t.Fatal("request root missing request id")
	}

	tick := findRoot(tr.Spans, "tick")
	stages := childNames(tick)
	if !stages["queue-wait"] {
		t.Fatalf("tick of an async ingest has no queue-wait stage: %v", stages)
	}
	if len(tick.Children) < 2 {
		t.Fatalf("tick has only %d stages, want queue-wait plus real work: %v", len(tick.Children), stages)
	}
	// The queue wait is backdated to enqueue time: it must be the tick's
	// first stage and account for real elapsed time.
	if tick.Children[0].Name != "queue-wait" {
		t.Fatalf("queue-wait is not the first stage: %v", tick.Children[0].Name)
	}
	if tick.Children[0].DurationNS <= 0 {
		t.Fatal("queue-wait span has no duration")
	}

	ckpt := findRoot(tr.Spans, "checkpoint")
	have := childNames(ckpt)
	for _, want := range []string{"encode", "write", "fsync", "rename"} {
		if !have[want] {
			t.Fatalf("checkpoint tree missing %q stage: %v", want, have)
		}
	}
}

// TestTraceSyncTrainClientSuppliedID covers the synchronous path plus trace
// stitching: a client-supplied X-Trace-ID is echoed and tags the tick that
// ran inside the request, so the caller can join this server's spans into
// its own trace.
func TestTraceSyncTrainClientSuppliedID(t *testing.T) {
	_, ts := newTraceTestServer(t, "")
	r := rand.New(rand.NewSource(8))
	const traceID = "cdml-client-trace-0001"

	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/train", strings.NewReader(chunkBody(r, 20)))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Trace-ID", traceID)
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/v1/train status %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Trace-ID"); got != traceID {
		t.Fatalf("echoed trace id %q, want %q", got, traceID)
	}

	// The tick is recorded before the 200; the request span a moment after
	// the response flushes — poll for both.
	var tr TraceResponse
	deadline := time.Now().Add(5 * time.Second)
	for {
		tr = getTrace(t, ts, traceID)
		if findRoot(tr.Spans, "POST /v1/train") != nil && findRoot(tr.Spans, "tick") != nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("trace incomplete after 5s: roots %v", rootNames(tr.Spans))
		}
		time.Sleep(5 * time.Millisecond)
	}
	tick := findRoot(tr.Spans, "tick")
	if tick.TraceID != traceID {
		t.Fatalf("tick trace id %q, want the client-supplied %q", tick.TraceID, traceID)
	}
	// Synchronous ingest never waited in the queue.
	if childNames(tick)["queue-wait"] {
		t.Fatal("synchronous train tick must not have a queue-wait stage")
	}
}

// TestStatusLastTickBreakdown covers the /v1/status additions: the last
// tick's stage breakdown appears after training, and the oldest-queued-item
// age field is present (and zero on an idle queue).
func TestStatusLastTickBreakdown(t *testing.T) {
	_, ts := newTraceTestServer(t, "")
	r := rand.New(rand.NewSource(9))

	getStatus := func() (StatusResponse, map[string]any) {
		resp, err := ts.Client().Get(ts.URL + "/v1/status")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		raw, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		var st StatusResponse
		if err := json.Unmarshal(raw, &st); err != nil {
			t.Fatal(err)
		}
		var m map[string]any
		if err := json.Unmarshal(raw, &m); err != nil {
			t.Fatal(err)
		}
		return st, m
	}

	st, m := getStatus()
	if st.LastTick != nil {
		t.Fatal("LastTick must be omitted before the first tick")
	}
	if _, ok := m["ingest_oldest_age_seconds"]; !ok {
		t.Fatal("status JSON missing ingest_oldest_age_seconds")
	}
	if st.IngestOldestAgeSeconds > 0.001 {
		t.Fatalf("idle queue reports oldest age %v", st.IngestOldestAgeSeconds)
	}

	resp, err := ts.Client().Post(ts.URL+"/v1/train", "text/plain", strings.NewReader(chunkBody(r, 20)))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	st, _ = getStatus()
	if st.LastTick == nil {
		t.Fatal("LastTick missing after a tick")
	}
	if st.LastTick.DurationMS <= 0 {
		t.Fatalf("LastTick duration %v", st.LastTick.DurationMS)
	}
	if len(st.LastTick.StagesMS) == 0 {
		t.Fatal("LastTick has no stage breakdown")
	}
	for stage, ms := range st.LastTick.StagesMS {
		if ms < 0 {
			t.Fatalf("stage %q has negative duration %v", stage, ms)
		}
	}
	if st.LastTick.TraceID == "" {
		t.Fatal("LastTick of a traced train request must carry its trace id")
	}
}

// TestIngestQueueOldestAge pins the FIFO-mirror bookkeeping directly: the
// head item's age is reported until the drainer finishes it.
func TestIngestQueueOldestAge(t *testing.T) {
	q := newIngestQueue(4)
	if q.oldestAge() != 0 {
		t.Fatal("empty queue must report zero age")
	}
	past := time.Now().Add(-2 * time.Second)
	if _, err := q.enqueue(ingestItem{enqueuedAt: past}); err != nil {
		t.Fatal("enqueue failed")
	}
	if _, err := q.enqueue(ingestItem{enqueuedAt: time.Now()}); err != nil {
		t.Fatal("enqueue failed")
	}
	if age := q.oldestAge(); age < 2*time.Second {
		t.Fatalf("oldest age %v, want >= 2s (the head item's wait)", age)
	}
	q.itemDone()
	if age := q.oldestAge(); age >= 2*time.Second {
		t.Fatalf("after itemDone the old head still reported: %v", age)
	}
	q.itemDone()
	q.itemDone() // extra pops must be harmless
	if q.oldestAge() != 0 {
		t.Fatal("drained queue must report zero age")
	}
}

// syncWriter is a race-safe log sink: the middleware logs from the request
// goroutine while the test reads from its own.
type syncWriter struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (w *syncWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.b.Write(p)
}

func (w *syncWriter) String() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.b.String()
}

// TestRequestLogCarriesIDs covers the slog migration: every request line is
// structured and carries request_id and trace_id.
func TestRequestLogCarriesIDs(t *testing.T) {
	var buf syncWriter
	_, ts := newTraceTestServer(t, "", WithSlog(slog.New(slog.NewTextHandler(&buf, nil))))

	req, err := http.NewRequest(http.MethodGet, ts.URL+"/v1/healthz", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Trace-ID", "log-trace-42")
	req.Header.Set("X-Request-ID", "log-req-42")
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	// The log line is emitted just after the response flushes; poll briefly.
	deadline := time.Now().Add(5 * time.Second)
	for {
		out := buf.String()
		if strings.Contains(out, "msg=\"http request\"") &&
			strings.Contains(out, "path=/v1/healthz") &&
			strings.Contains(out, "request_id=log-req-42") &&
			strings.Contains(out, "trace_id=log-trace-42") {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("request log line incomplete after 5s:\n%s", out)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestPprofOptIn: the profiling surface exists only when asked for.
func TestPprofOptIn(t *testing.T) {
	_, tsOn := newTraceTestServer(t, "", WithPprof())
	resp, err := tsOn.Client().Get(tsOn.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/pprof/ with WithPprof: status %d", resp.StatusCode)
	}

	_, tsOff := newTraceTestServer(t, "")
	resp2, err := tsOff.Client().Get(tsOff.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp2.Body)
	resp2.Body.Close()
	if resp2.StatusCode == http.StatusOK {
		t.Fatal("/debug/pprof/ must not be registered by default")
	}
}

// TestRuntimeMetricsOptIn: WithRuntimeMetrics adds the cdml_runtime_* family
// to the exposition and Close stops the sampler.
func TestRuntimeMetricsOptIn(t *testing.T) {
	s, ts := newTraceTestServer(t, "", WithRuntimeMetrics(time.Second))
	resp, err := ts.Client().Get(ts.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	out := string(body)
	for _, fam := range []string{"cdml_runtime_goroutines", "cdml_runtime_heap_alloc_bytes"} {
		if !strings.Contains(out, fam) {
			t.Fatalf("exposition missing %s:\n%s", fam, out)
		}
	}
	s.Close() // Cleanup closes again; Stop must be idempotent.
}

// TestMetricsExemplarAfterRequest: request latency histograms carry the last
// slow request's trace id as an exemplar comment, linking /v1/metrics to
// /v1/trace?id=.
func TestMetricsExemplarAfterRequest(t *testing.T) {
	_, ts := newTraceTestServer(t, "")
	req, err := http.NewRequest(http.MethodGet, ts.URL+"/v1/healthz", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Trace-ID", "exemplar-trace-7")
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	deadline := time.Now().Add(5 * time.Second)
	for {
		mresp, err := ts.Client().Get(ts.URL + "/v1/metrics")
		if err != nil {
			t.Fatal(err)
		}
		body, err := io.ReadAll(mresp.Body)
		mresp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		out := string(body)
		if strings.Contains(out, "# exemplar cdml_http_request_seconds") &&
			strings.Contains(out, "trace_id=exemplar-trace-7") {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("no exemplar for the healthz request after 5s:\n%s", out)
		}
		time.Sleep(2 * time.Millisecond)
	}
}
