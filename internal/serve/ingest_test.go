package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"cdml/internal/core"
	"cdml/internal/data"
	"cdml/internal/eval"
	"cdml/internal/model"
	"cdml/internal/opt"
	"cdml/internal/pipeline"
	"cdml/internal/sample"
	"cdml/internal/wal"
)

func TestAsyncIngestAcceptsAndDrains(t *testing.T) {
	s, ts := newTestServer(t)
	client := ts.Client()
	r := rand.New(rand.NewSource(11))

	const chunks, rows = 8, 30
	for i := 0; i < chunks; i++ {
		resp, err := client.Post(ts.URL+"/v1/ingest", "text/plain", strings.NewReader(chunkBody(r, rows)))
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusAccepted {
			body, _ := io.ReadAll(resp.Body)
			t.Fatalf("/v1/ingest status %d: %s", resp.StatusCode, body)
		}
		var ir IngestResponse
		if err := json.NewDecoder(resp.Body).Decode(&ir); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if ir.Queued != rows {
			t.Fatalf("queued %d records, want %d", ir.Queued, rows)
		}
		if ir.QueueDepth < 1 {
			t.Fatalf("queue depth %d, want >= 1 (includes this chunk)", ir.QueueDepth)
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.DrainIngest(ctx); err != nil {
		t.Fatal(err)
	}
	// Every accepted chunk must have been ingested by the drainer.
	if got := defaultDep(t, s).Stats().Evaluated; got != int64(chunks*rows) {
		t.Fatalf("evaluated %d records after drain, want %d", got, chunks*rows)
	}
	// The final tick published; /v1/status reflects the drained state.
	var st StatusResponse
	resp, err := client.Get(ts.URL + "/v1/status")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.SnapshotVersion != uint64(1+chunks) {
		t.Fatalf("snapshot version %d, want %d", st.SnapshotVersion, 1+chunks)
	}
	if st.IngestQueueDepth != 0 {
		t.Fatalf("queue depth %d after drain", st.IngestQueueDepth)
	}

	// After the drain, intake is closed: further ingest answers 503.
	resp, err = client.Post(ts.URL+"/v1/ingest", "text/plain", strings.NewReader(chunkBody(r, rows)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-drain ingest status %d, want 503", resp.StatusCode)
	}
	// DrainIngest is idempotent.
	if err := s.DrainIngest(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestIngestQueuePendingMirrorNoOrphans is the -race regression test for
// the pending-times bookkeeping: enqueue once appended to the mirror only
// after the channel send, so a drainer fast enough to finish the item
// first popped an empty slice (a no-op) and the late append left an
// orphaned timestamp — ingest_oldest_age_seconds then grew forever on an
// idle queue. The mirror append now lands inside the same critical
// section as the send; with a full-speed consumer hammering itemDone, an
// idle queue must end with zero pending entries.
func TestIngestQueuePendingMirrorNoOrphans(t *testing.T) {
	q := newIngestQueue(1)
	past := time.Now().Add(-time.Hour)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for range q.ch {
			q.itemDone()
			q.depth.Add(-1)
		}
	}()
	for i := 0; i < 1000; i++ {
		for {
			if _, err := q.enqueue(ingestItem{enqueuedAt: past}); err == nil {
				break
			}
			runtime.Gosched() // full queue: let the consumer run
		}
	}
	q.close()
	<-done
	if age := q.oldestAge(); age != 0 {
		t.Fatalf("idle queue reports oldest age %v — orphaned pending timestamp", age)
	}
	if d := q.depth.Load(); d != 0 {
		t.Fatalf("idle queue depth %d, want 0", d)
	}
}

// TestIngestShuttingDownDistinctFromQueueFull pins the shutdown answer: a
// draining server refuses ingest with 503 shutting_down and no Retry-After
// — retrying a server that will never accept is pointless, and the old
// queue_full + Retry-After answer told clients to do exactly that.
func TestIngestShuttingDownDistinctFromQueueFull(t *testing.T) {
	s, ts := newTestServer(t)
	client := ts.Client()
	r := rand.New(rand.NewSource(16))

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.DrainIngest(ctx); err != nil {
		t.Fatal(err)
	}
	resp, err := client.Post(ts.URL+"/v1/ingest", "text/plain", strings.NewReader(chunkBody(r, 10)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining ingest status %d, want 503", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		t.Fatalf("draining 503 carries Retry-After %q; shutdown is not backpressure", ra)
	}
	var eb ErrorBody
	if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil {
		t.Fatal(err)
	}
	if eb.Error.Code != "shutting_down" {
		t.Fatalf("error code %q, want shutting_down", eb.Error.Code)
	}
}

// TestIngestWALSurfacesOnStatus runs the async ingest path against a
// deployment with a write-ahead ingest log: every 202'd chunk must be
// appended and, after the drain, committed — /v1/status's wal section is
// the observable contract.
func TestIngestWALSurfacesOnStatus(t *testing.T) {
	cfg := core.Config{
		Mode: core.ModeContinuous,
		NewPipeline: func() *pipeline.Pipeline {
			return pipeline.New(testParser{},
				pipeline.NewStandardScaler([]string{"x0", "x1"}),
				pipeline.NewAssembler([]string{"x0", "x1"}, nil, "features"),
			)
		},
		NewModel:       func() model.Model { return model.NewSVM(2, 1e-4) },
		NewOptimizer:   func() opt.Optimizer { return opt.NewAdam(0.05) },
		Store:          data.NewStore(data.NewMemoryBackend()),
		Sampler:        sample.NewTime(1),
		SampleChunks:   3,
		ProactiveEvery: 100,
		Metric:         &eval.Misclassification{},
		Predict:        core.ClassifyPredictor,
		IngestLog:      &wal.Options{Dir: t.TempDir()},
	}
	dep, err := core.NewDeployer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := New(dep, WithLogger(nil))
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	client := ts.Client()
	r := rand.New(rand.NewSource(17))

	const chunks = 3
	for i := 0; i < chunks; i++ {
		resp, err := client.Post(ts.URL+"/v1/ingest", "text/plain", strings.NewReader(chunkBody(r, 20)))
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusAccepted {
			body, _ := io.ReadAll(resp.Body)
			t.Fatalf("/v1/ingest status %d: %s", resp.StatusCode, body)
		}
		resp.Body.Close()
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.DrainIngest(ctx); err != nil {
		t.Fatal(err)
	}

	var st StatusResponse
	resp, err := client.Get(ts.URL + "/v1/status")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.WAL == nil {
		t.Fatal("/v1/status has no wal section for a logged deployment")
	}
	if st.WAL.AppendedTotal != chunks || st.WAL.AppliedTotal != chunks {
		t.Fatalf("wal appended/applied = %d/%d, want %d/%d",
			st.WAL.AppendedTotal, st.WAL.AppliedTotal, chunks, chunks)
	}
	if st.WAL.PendingReplay != 0 {
		t.Fatalf("wal pending_replay = %d after drain, want 0", st.WAL.PendingReplay)
	}
	if st.WAL.LastSeq != chunks {
		t.Fatalf("wal last_seq = %d, want %d", st.WAL.LastSeq, chunks)
	}
}

// gatedBackend blocks the first PutRaw calls until released, pinning the
// drainer goroutine inside Deployer.Ingest so the test can fill the queue
// deterministically.
type gatedBackend struct {
	data.Backend
	entered chan struct{}
	release chan struct{}
}

func (g *gatedBackend) PutRaw(rc data.RawChunk) error {
	g.entered <- struct{}{}
	<-g.release
	return g.Backend.PutRaw(rc)
}

func TestIngestQueueFullBackpressure(t *testing.T) {
	gate := &gatedBackend{
		Backend: data.NewMemoryBackend(),
		entered: make(chan struct{}, 16),
		release: make(chan struct{}),
	}
	cfg := core.Config{
		Mode: core.ModeContinuous,
		NewPipeline: func() *pipeline.Pipeline {
			return pipeline.New(testParser{},
				pipeline.NewStandardScaler([]string{"x0", "x1"}),
				pipeline.NewAssembler([]string{"x0", "x1"}, nil, "features"),
			)
		},
		NewModel:       func() model.Model { return model.NewSVM(2, 1e-4) },
		NewOptimizer:   func() opt.Optimizer { return opt.NewAdam(0.05) },
		Store:          data.NewStore(gate),
		Sampler:        sample.NewTime(1),
		SampleChunks:   3,
		ProactiveEvery: 100, // no proactive training: only PutRaw/PutFeatures hit the gate
		Metric:         &eval.Misclassification{},
		Predict:        core.ClassifyPredictor,
	}
	dep, err := core.NewDeployer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := New(dep, WithLogger(nil), WithIngestQueue(1))
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	client := ts.Client()
	r := rand.New(rand.NewSource(12))

	post := func() *http.Response {
		t.Helper()
		resp, err := client.Post(ts.URL+"/v1/ingest", "text/plain", strings.NewReader(chunkBody(r, 20)))
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	// Chunk A: accepted, drainer picks it up and blocks inside Ingest.
	resp := post()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("chunk A status %d", resp.StatusCode)
	}
	resp.Body.Close()
	<-gate.entered // drainer is now mid-tick; the channel buffer is empty

	// Chunk B: fills the capacity-1 buffer.
	resp = post()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("chunk B status %d", resp.StatusCode)
	}
	resp.Body.Close()

	// Chunk C: queue full — explicit 503 backpressure with a stable code
	// and a Retry-After hint the client can obey directly.
	resp = post()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("chunk C status %d, want 503", resp.StatusCode)
	}
	ra := resp.Header.Get("Retry-After")
	if ra == "" {
		t.Fatal("503 queue_full without Retry-After header")
	}
	if secs, err := strconv.Atoi(ra); err != nil || secs < 1 || secs > 60 {
		t.Fatalf("Retry-After %q, want an integer in [1, 60]", ra)
	}
	var eb ErrorBody
	if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if eb.Error.Code != "queue_full" {
		t.Fatalf("error code %q, want queue_full", eb.Error.Code)
	}

	// Queue state is visible on /v1/status while the drainer is stuck.
	var st StatusResponse
	resp, err = client.Get(ts.URL + "/v1/status")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.IngestQueueCapacity != 1 {
		t.Fatalf("capacity %d, want 1", st.IngestQueueCapacity)
	}
	if st.IngestQueueDepth != 2 {
		t.Fatalf("depth %d, want 2 (one in flight, one buffered)", st.IngestQueueDepth)
	}

	// Release the gate; both accepted chunks must finish training.
	close(gate.release)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.DrainIngest(ctx); err != nil {
		t.Fatal(err)
	}
	if got := dep.Stats().Evaluated; got != 2*20 {
		t.Fatalf("evaluated %d records, want %d", got, 2*20)
	}
}

func TestStatusEndpointFields(t *testing.T) {
	_, ts := newTestServer(t)
	client := ts.Client()
	r := rand.New(rand.NewSource(13))
	for i := 0; i < 3; i++ {
		resp, err := client.Post(ts.URL+"/v1/train", "text/plain", strings.NewReader(chunkBody(r, 25)))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}

	resp, err := client.Get(ts.URL + "/v1/status")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/v1/status status %d", resp.StatusCode)
	}
	var st StatusResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Mode != "continuous" {
		t.Fatalf("mode %q", st.Mode)
	}
	// Version 1 is the construction snapshot; each /train tick republishes.
	if st.SnapshotVersion != 4 {
		t.Fatalf("snapshot version %d, want 4", st.SnapshotVersion)
	}
	builtAt, err := time.Parse(time.RFC3339Nano, st.SnapshotBuiltAt)
	if err != nil {
		t.Fatalf("snapshot_built_at %q: %v", st.SnapshotBuiltAt, err)
	}
	if time.Since(builtAt) > time.Minute {
		t.Fatalf("snapshot_built_at %v is stale", builtAt)
	}
	if st.SnapshotAgeSeconds < 0 {
		t.Fatalf("snapshot age %v negative", st.SnapshotAgeSeconds)
	}
	if st.IngestQueueCapacity != DefaultIngestQueue {
		t.Fatalf("capacity %d, want default %d", st.IngestQueueCapacity, DefaultIngestQueue)
	}
	if st.IngestAsyncErrors != 0 || st.IngestLastError != "" {
		t.Fatalf("unexpected async errors: %d %q", st.IngestAsyncErrors, st.IngestLastError)
	}
	if st.UptimeSeconds <= 0 {
		t.Fatalf("uptime %v", st.UptimeSeconds)
	}
}

func TestAsyncIngestErrorSurfacesOnStatus(t *testing.T) {
	// A backend that fails after a few operations makes an async tick fail;
	// the failure must land on /v1/status, not vanish into the drainer.
	cfg := core.Config{
		Mode: core.ModeContinuous,
		NewPipeline: func() *pipeline.Pipeline {
			return pipeline.New(testParser{},
				pipeline.NewStandardScaler([]string{"x0", "x1"}),
				pipeline.NewAssembler([]string{"x0", "x1"}, nil, "features"),
			)
		},
		NewModel:       func() model.Model { return model.NewSVM(2, 1e-4) },
		NewOptimizer:   func() opt.Optimizer { return opt.NewAdam(0.05) },
		Store:          data.NewStore(&failAfterBackend{Backend: data.NewMemoryBackend(), budget: 4}),
		Sampler:        sample.NewTime(1),
		SampleChunks:   3,
		ProactiveEvery: 100,
		Metric:         &eval.Misclassification{},
		Predict:        core.ClassifyPredictor,
	}
	dep, err := core.NewDeployer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := New(dep, WithLogger(nil))
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	client := ts.Client()
	r := rand.New(rand.NewSource(14))

	for i := 0; i < 5; i++ {
		resp, err := client.Post(ts.URL+"/v1/ingest", "text/plain", strings.NewReader(chunkBody(r, 20)))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.DrainIngest(ctx); err != nil {
		t.Fatal(err)
	}

	var st StatusResponse
	resp, err := client.Get(ts.URL + "/v1/status")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.IngestAsyncErrors == 0 {
		t.Fatal("async tick failures not counted")
	}
	if st.IngestLastError == "" {
		t.Fatal("last async error not surfaced")
	}
}

// failAfterBackend errors every mutation once the budget is spent.
type failAfterBackend struct {
	data.Backend
	mu     sync.Mutex
	budget int
}

func (f *failAfterBackend) spend() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.budget--
	if f.budget < 0 {
		return errInjected{}
	}
	return nil
}

type errInjected struct{}

func (errInjected) Error() string { return "injected storage failure" }

func (f *failAfterBackend) PutRaw(rc data.RawChunk) error {
	if err := f.spend(); err != nil {
		return err
	}
	return f.Backend.PutRaw(rc)
}

func (f *failAfterBackend) PutFeatures(fc data.FeatureChunk) error {
	if err := f.spend(); err != nil {
		return err
	}
	return f.Backend.PutFeatures(fc)
}

// TestRestoreRacingPredictOverHTTP restores checkpoints while concurrent
// clients predict. Under -race this verifies the HTTP surface inherits the
// snapshot guarantee: /v1/restore swaps state atomically under the readers.
func TestRestoreRacingPredictOverHTTP(t *testing.T) {
	_, ts := newTestServer(t)
	client := ts.Client()
	r := rand.New(rand.NewSource(15))
	for i := 0; i < 10; i++ {
		resp, err := client.Post(ts.URL+"/v1/train", "text/plain", strings.NewReader(chunkBody(r, 30)))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	resp, err := client.Get(ts.URL + "/v1/checkpoint")
	if err != nil {
		t.Fatal(err)
	}
	ckpt, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || len(ckpt) == 0 {
		t.Fatalf("checkpoint empty: %v", err)
	}

	const readers = 4
	stop := make(chan struct{})
	errs := make(chan error, readers)
	var wg sync.WaitGroup
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rr := rand.New(rand.NewSource(int64(100 + g)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := client.Post(ts.URL+"/v1/predict", "text/plain", strings.NewReader(chunkBody(rr, 10)))
				if err != nil {
					errs <- err
					return
				}
				var pr PredictResponse
				err = json.NewDecoder(resp.Body).Decode(&pr)
				resp.Body.Close()
				if err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}

	for round := 0; round < 5; round++ {
		resp, err := client.Post(ts.URL+"/v1/restore", "application/octet-stream", bytes.NewReader(ckpt))
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("/v1/restore round %d status %d: %s", round, resp.StatusCode, body)
		}
	}
	close(stop)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
