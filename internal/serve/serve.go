// Package serve exposes a live deployment over HTTP — the platform's
// query-answering surface (the paper's deployment platform "answers
// prediction queries in real-time" while continuously training; §1, §4.3).
//
// The API is versioned under /v1 (the canonical surface); the legacy
// unversioned paths remain registered as aliases for one release and will
// be removed afterwards. Endpoints:
//
//	POST /v1/predict    body: newline-separated raw records
//	                    response: {"predictions": [...], "served": n}
//	POST /v1/train      body: newline-separated raw labeled records
//	                    response: {"ingested": n} (synchronous: the tick
//	                    has completed when the 200 arrives)
//	POST /v1/ingest     same body as /train, asynchronous: the chunk is
//	                    queued on a bounded queue and ingested in arrival
//	                    order by a background drainer; response 202
//	                    {"queued": n, "queue_depth": d}, or 503 with code
//	                    "queue_full" and a Retry-After header (seconds,
//	                    derived from recent tick latency) when training
//	                    cannot keep up
//	GET  /v1/status     response: published snapshot version/build
//	                    time/staleness plus async-ingest queue state
//	GET  /v1/stats      response: deployment statistics (error, cost, counts)
//	GET  /v1/metrics    response: Prometheus text exposition of the
//	                    deployment's counters, gauges, and latency histograms
//	GET  /v1/trace      response: the last N deployment ticks as span trees
//	                    (?n=20 bounds the count); ?id=<trace or request id>
//	                    instead returns every span tree of one trace —
//	                    request receipt, queue wait, tick stages, and the
//	                    background checkpoint write — assembled across the
//	                    async boundaries
//	GET  /v1/checkpoint response: opaque binary snapshot of the deployment
//	POST /v1/restore    body: a /checkpoint snapshot to load; bodies over
//	                    the 16 MiB cap answer 413 "payload_too_large"
//	                    rather than restoring a silently truncated snapshot
//	GET  /v1/healthz    response: 200 "ok"
//
// Every error response uses the uniform JSON envelope
//
//	{"error": {"code": "<machine-readable>", "message": "<human-readable>"}}
//
// with codes "bad_request", "method_not_allowed", "internal",
// "queue_full", and "payload_too_large".
//
// Every request passes through a middleware that assigns an X-Request-ID
// (echoing a client-supplied one) and an X-Trace-ID (echoed likewise, and
// carried through ticks and checkpoint writes triggered by the request),
// enforces the route's method (405 with an Allow header otherwise), emits a
// structured log line (log/slog) with method/path/status/duration plus
// request_id and trace_id, and feeds the per-endpoint request counters and
// latency histograms exposed at /v1/metrics — labeled by path and API
// version, so v1 and legacy traffic separate cleanly during the migration.
//
// Opt-in extras: WithPprof registers net/http/pprof under /debug/pprof/,
// and WithRuntimeMetrics adds a sampled cdml_runtime_* family (heap, GC
// pauses, goroutines, scheduler latency) to the exposition.
//
// Records use exactly the same wire format as the deployed pipeline's
// parser, so the same payload can be sent to /train (with labels) and
// /predict — train/serve consistency extends to the HTTP boundary.
package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"log/slog"
	"net/http"
	"sort"
	"strconv"
	"sync/atomic"
	"time"

	"cdml/internal/core"
	"cdml/internal/obs"
)

// maxBody bounds request bodies (16 MiB) so a misbehaving client cannot
// exhaust memory.
const maxBody = 16 << 20

// requestTraceCapacity is the ring size of the request-span tracer: large
// enough that a slow request's trace is still resolvable by id a few hundred
// requests later, small enough to bound memory.
const requestTraceCapacity = 256

// Server wraps a live Deployer with HTTP handlers.
type Server struct {
	dep    *core.Deployer
	mux    *http.ServeMux
	reg    *obs.Registry
	tracer *obs.Tracer
	// reqTracer records one span tree per HTTP request, separate from the
	// deployment's tick tracer so request volume never evicts tick history.
	// /v1/trace?id= searches both.
	reqTracer *obs.Tracer
	log       *slog.Logger

	inFlight   *obs.Gauge
	reqSeq     atomic.Uint64
	startNanos int64

	queueCap     int
	ingest       *ingestQueue
	pprof        bool
	runtimeEvery time.Duration
	sampler      *obs.RuntimeSampler
}

// Option configures a Server.
type Option func(*Server)

// WithLogger replaces the request logger with a slog text handler writing to
// l's destination; pass nil to disable request logging (tests, benchmarks).
// Kept source-compatible with the pre-slog API; new code should prefer
// WithSlog.
func WithLogger(l *log.Logger) Option {
	return func(s *Server) {
		if l == nil {
			s.log = nil
			return
		}
		s.log = slog.New(slog.NewTextHandler(l.Writer(), nil))
	}
}

// WithSlog replaces the request logger; pass nil to disable request logging.
func WithSlog(l *slog.Logger) Option {
	return func(s *Server) { s.log = l }
}

// WithPprof registers the net/http/pprof handlers under /debug/pprof/ —
// opt-in, because profiling endpoints expose internals and belong behind
// operator intent (and usually a private listener).
func WithPprof() Option {
	return func(s *Server) { s.pprof = true }
}

// WithRuntimeMetrics starts a background sampler that refreshes the
// cdml_runtime_* gauge family (heap, GC pauses, goroutines, scheduler
// latency) every period. Call Close to stop it.
func WithRuntimeMetrics(every time.Duration) Option {
	return func(s *Server) { s.runtimeEvery = every }
}

// WithIngestQueue sets the async-ingest queue capacity in chunks (default
// DefaultIngestQueue). Values < 1 are clamped to 1 — the queue is the
// backpressure boundary and must exist for /v1/ingest to be meaningful.
func WithIngestQueue(capacity int) Option {
	return func(s *Server) { s.queueCap = max(1, capacity) }
}

// New returns a server around a deployment built with core.NewDeployer.
// The deployment should be driven exclusively through this server (plus
// any initial training done before construction). The server exposes the
// deployer's metric registry and tick tracer at /metrics and /trace.
func New(dep *core.Deployer, opts ...Option) *Server {
	s := &Server{
		dep:        dep,
		mux:        http.NewServeMux(),
		reg:        dep.Metrics(),
		tracer:     dep.Tracer(),
		reqTracer:  obs.NewTracer(requestTraceCapacity),
		log:        slog.Default(),
		startNanos: time.Now().UnixNano(),
		queueCap:   DefaultIngestQueue,
	}
	for _, o := range opts {
		o(s)
	}
	if s.runtimeEvery > 0 {
		s.sampler = obs.StartRuntimeSampler(s.reg, s.runtimeEvery)
	}
	s.inFlight = s.reg.Gauge("cdml_http_in_flight", "HTTP requests currently being handled.")
	s.ingest = newIngestQueue(s.queueCap)
	s.reg.GaugeFunc("cdml_ingest_queue_depth",
		"Chunks queued for asynchronous ingest, not yet trained on.",
		func() float64 { return float64(s.ingest.depth.Load()) })
	s.reg.CounterFunc("cdml_ingest_queue_accepted_total",
		"Async-ingest chunks accepted (202).",
		func() float64 { return float64(s.ingest.accepted.Load()) })
	s.reg.CounterFunc("cdml_ingest_queue_rejected_total",
		"Async-ingest chunks rejected with queue_full backpressure (503).",
		func() float64 { return float64(s.ingest.rejected.Load()) })
	go s.drain()
	s.route("/predict", s.handlePredict, http.MethodPost)
	s.route("/train", s.handleTrain, http.MethodPost)
	s.route("/ingest", s.handleIngest, http.MethodPost)
	s.route("/status", s.handleStatus, http.MethodGet)
	s.route("/stats", s.handleStats, http.MethodGet)
	s.route("/metrics", s.handleMetrics, http.MethodGet)
	s.route("/trace", s.handleTrace, http.MethodGet)
	s.route("/checkpoint", s.handleCheckpoint, http.MethodGet)
	s.route("/restore", s.handleRestore, http.MethodPost)
	s.route("/healthz", s.handleHealth, http.MethodGet)
	if s.pprof {
		s.routePprof()
	}
	return s
}

// Close releases the server's background resources (currently the runtime
// metrics sampler). It does not drain the ingest queue — call DrainIngest
// first during a graceful shutdown.
func (s *Server) Close() {
	if s.sampler != nil {
		s.sampler.Stop()
	}
}

// route registers one logical endpoint twice: canonically under /v1 and as
// a legacy unversioned alias (kept for one release), with per-version
// metric labels so the migration is observable.
func (s *Server) route(path string, h http.HandlerFunc, allowed ...string) {
	s.handle("/v1"+path, "v1", h, allowed...)
	s.handle(path, "legacy", h, allowed...)
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// readRecords splits a request body into newline-separated records,
// dropping empty lines.
func readRecords(r *http.Request) ([][]byte, error) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxBody+1))
	if err != nil {
		return nil, fmt.Errorf("serve: reading body: %w", err)
	}
	if len(body) > maxBody {
		return nil, fmt.Errorf("serve: body exceeds %d bytes", maxBody)
	}
	var records [][]byte
	start := 0
	for i := 0; i <= len(body); i++ {
		if i == len(body) || body[i] == '\n' {
			line := body[start:i]
			if len(line) > 0 && !(len(line) == 1 && line[0] == '\r') {
				if line[len(line)-1] == '\r' {
					line = line[:len(line)-1]
				}
				records = append(records, line)
			}
			start = i + 1
		}
	}
	return records, nil
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// Machine-readable error codes of the uniform error envelope.
const (
	codeBadRequest       = "bad_request"
	codeMethodNotAllowed = "method_not_allowed"
	codeInternal         = "internal"
	codeQueueFull        = "queue_full"
	codePayloadTooLarge  = "payload_too_large"
)

// ErrorBody is the uniform JSON error envelope every non-2xx response
// carries: {"error": {"code": ..., "message": ...}}. Code is stable and
// machine-readable; Message is human-readable and may change between
// releases.
type ErrorBody struct {
	Error ErrorDetail `json:"error"`
}

// ErrorDetail is the inner object of ErrorBody.
type ErrorDetail struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

func writeError(w http.ResponseWriter, status int, code string, err error) {
	writeJSON(w, status, ErrorBody{Error: ErrorDetail{Code: code, Message: err.Error()}})
}

// PredictResponse is the /predict payload.
type PredictResponse struct {
	// Predictions holds one model output per surviving record, in input
	// order.
	Predictions []float64 `json:"predictions"`
	// Served counts the records that survived preprocessing.
	Served int `json:"served"`
	// Dropped counts records the pipeline rejected (malformed or filtered).
	Dropped int `json:"dropped"`
	// LatencyMS is the server-side handling time.
	LatencyMS float64 `json:"latency_ms"`
}

// errEmptyRequest is the static empty-batch error: a package-level value so
// the hot handlers reject garbage without allocating a fresh error each time.
var errEmptyRequest = errors.New("serve: empty request")

// handlePredict serves POST /v1/predict. It sits on the serving fast path —
// everything from here down to Snapshot scoring carries the hotpath
// contract; the one deliberate allocation is the response envelope.
//
//cdml:hotpath
func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	start := time.Now() //lint:allow hotpath: request latency is part of the response contract (LatencyMS)
	records, err := readRecords(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, codeBadRequest, err)
		return
	}
	if len(records) == 0 {
		writeError(w, http.StatusBadRequest, codeBadRequest, errEmptyRequest)
		return
	}
	preds, err := s.dep.Predict(records)
	if err != nil {
		writeError(w, http.StatusInternalServerError, codeInternal, err)
		return
	}
	writeJSON(w, http.StatusOK, PredictResponse{
		Predictions: preds,
		Served:      len(preds),
		Dropped:     len(records) - len(preds),
		LatencyMS:   float64(time.Since(start).Microseconds()) / 1000,
	})
}

// TrainResponse is the /train payload.
type TrainResponse struct {
	// Ingested counts the raw records accepted into the platform.
	Ingested int `json:"ingested"`
	// LatencyMS is the server-side handling time.
	LatencyMS float64 `json:"latency_ms"`
}

func (s *Server) handleTrain(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	records, err := readRecords(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, codeBadRequest, err)
		return
	}
	if len(records) == 0 {
		writeError(w, http.StatusBadRequest, codeBadRequest, errEmptyRequest)
		return
	}
	// IngestCtx carries the middleware's request span, so the synchronous
	// tick inherits the request's trace id and shows up in /v1/trace?id=.
	if err := s.dep.IngestCtx(r.Context(), records); err != nil {
		writeError(w, http.StatusInternalServerError, codeInternal, err)
		return
	}
	writeJSON(w, http.StatusOK, TrainResponse{
		Ingested:  len(records),
		LatencyMS: float64(time.Since(start).Microseconds()) / 1000,
	})
}

// StatsResponse is the /stats payload.
type StatsResponse struct {
	Mode            string  `json:"mode"`
	CumulativeError float64 `json:"cumulative_error"`
	Evaluated       int64   `json:"evaluated"`
	ProactiveRuns   int     `json:"proactive_runs"`
	Retrains        int     `json:"retrains"`
	DriftEvents     int     `json:"drift_events"`
	CostSeconds     float64 `json:"cost_seconds"`
	Mu              float64 `json:"materialization_utilization"`
	Chunks          int64   `json:"chunks_ingested"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	st := s.dep.Stats()
	writeJSON(w, http.StatusOK, StatsResponse{
		Mode:            st.Mode.String(),
		CumulativeError: st.FinalError,
		Evaluated:       st.Evaluated,
		ProactiveRuns:   st.ProactiveRuns,
		Retrains:        st.Retrains,
		DriftEvents:     st.DriftEvents,
		CostSeconds:     st.Cost.Total().Seconds(),
		Mu:              st.MatStats.Mu(),
		Chunks:          int64(st.ErrorCurve.Len()), // one curve point per ingested chunk
	})
}

// handleMetrics serves the deployment's metric registry in Prometheus text
// exposition format.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.reg.WriteText(w)
}

// TraceResponse is the /trace payload.
type TraceResponse struct {
	// ID echoes the ?id= filter when one was given.
	ID string `json:"id,omitempty"`
	// Total counts deployment ticks recorded since startup.
	Total uint64 `json:"total_ticks"`
	// Spans holds span trees: the most recent ticks (newest first) by
	// default, or — with ?id= — every retained tree of one trace in start
	// order (request, queue wait + tick stages, checkpoint write).
	Spans []*obs.Span `json:"spans"`
}

// handleTrace serves span trees. Without parameters it lists the last N
// deployment ticks (?n= bounds the count, default 20, capped by the
// tracer's ring size). With ?id=<trace or request id> it instead assembles
// the end-to-end trace: every retained span tree — the HTTP request root,
// the tick (including its queue-wait stage for async ingest), and the
// background checkpoint write — carrying that id, sorted by start time.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	if id := r.URL.Query().Get("id"); id != "" {
		spans := append(s.tracer.ByID(id), s.reqTracer.ByID(id)...)
		sort.Slice(spans, func(i, j int) bool { return spans[i].Start.Before(spans[j].Start) })
		writeJSON(w, http.StatusOK, TraceResponse{
			ID:    id,
			Total: s.tracer.Total(),
			Spans: spans,
		})
		return
	}
	n := 20
	if q := r.URL.Query().Get("n"); q != "" {
		v, err := strconv.Atoi(q)
		if err != nil || v < 1 {
			writeError(w, http.StatusBadRequest, codeBadRequest, fmt.Errorf("serve: invalid n %q", q))
			return
		}
		n = v
	}
	writeJSON(w, http.StatusOK, TraceResponse{
		Total: s.tracer.Total(),
		Spans: s.tracer.Last(n),
	})
}

// handleCheckpoint streams the deployment's full state (model, optimizer,
// pipeline statistics) as an opaque binary snapshot.
func (s *Server) handleCheckpoint(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/octet-stream")
	if err := s.dep.Checkpoint(w); err != nil {
		// Headers are already out; the truncated body will fail to restore,
		// which is the safe failure mode.
		return
	}
}

// handleRestore loads a snapshot produced by /checkpoint into the live
// deployment. Oversized bodies are rejected with 413 payload_too_large —
// never silently truncated into a decode error (or a valid-looking prefix).
// The body is buffered and size-checked in full before any state is
// touched, so a 413 always means the live model was left as it was: a
// valid checkpoint with trailing bytes past the cap must not be applied
// and then reported as rejected.
func (s *Server) handleRestore(w http.ResponseWriter, r *http.Request) {
	if r.ContentLength > maxBody {
		writeError(w, http.StatusRequestEntityTooLarge, codePayloadTooLarge,
			fmt.Errorf("serve: checkpoint is %d bytes, exceeding the %d-byte body cap", r.ContentLength, maxBody))
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, maxBody+1))
	if err != nil {
		writeError(w, http.StatusBadRequest, codeBadRequest, fmt.Errorf("serve: reading checkpoint body: %w", err))
		return
	}
	if len(body) > maxBody {
		writeError(w, http.StatusRequestEntityTooLarge, codePayloadTooLarge,
			fmt.Errorf("serve: checkpoint exceeds the %d-byte body cap", maxBody))
		return
	}
	if err := s.dep.RestoreCheckpoint(bytes.NewReader(body)); err != nil {
		writeError(w, http.StatusBadRequest, codeBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "restored"})
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write([]byte("ok"))
}

// ListenAndServe starts the server on addr and blocks. Binaries that need
// graceful shutdown should build their own http.Server around the Server
// (see cmd/cdml-serve).
func (s *Server) ListenAndServe(addr string) error {
	srv := &http.Server{
		Addr:         addr,
		Handler:      s,
		ReadTimeout:  30 * time.Second,
		WriteTimeout: 60 * time.Second,
	}
	return srv.ListenAndServe()
}
