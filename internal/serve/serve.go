// Package serve exposes a registry of live deployments over HTTP — the
// platform's query-answering surface (the paper's deployment platform
// "answers prediction queries in real-time" while continuously training;
// §1, §4.3), extended to host several named pipelines in one process.
//
// The canonical API is deployment-scoped. {name} is a deployment name
// (1–64 chars of [a-zA-Z0-9_-]); unknown names answer 404 with code
// "unknown_deployment".
//
//	GET    /v1/deployments                        list deployments: name, role,
//	                                              version, staleness, and the
//	                                              shadow challenger if one is
//	                                              attached
//	PUT    /v1/deployments/{name}                 create a deployment from a
//	                                              JSON spec (requires a
//	                                              ConfigBuilder; 501 otherwise)
//	GET    /v1/deployments/{name}                 describe one deployment
//	DELETE /v1/deployments/{name}                 retire a deployment: stop its
//	                                              ingest drainer, shut down its
//	                                              champion/challenger/rollback
//	                                              deployers, free the name
//	POST   /v1/deployments/{name}/predict         body: newline-separated raw
//	                                              records; response:
//	                                              {"predictions": [...], ...}
//	POST   /v1/deployments/{name}/train           synchronous ingest: the tick
//	                                              has completed when the 200
//	                                              arrives
//	POST   /v1/deployments/{name}/ingest          asynchronous ingest: appended
//	                                              to the write-ahead ingest log
//	                                              (when configured) and queued on
//	                                              the deployment's bounded queue
//	                                              (202); 503 "queue_full" with
//	                                              Retry-After when training
//	                                              cannot keep up, 503
//	                                              "shutting_down" (no
//	                                              Retry-After) while draining
//	GET    /v1/deployments/{name}/status          snapshot version/staleness,
//	                                              queue state, deployment
//	                                              version, promotion window,
//	                                              and challenger status
//	GET    /v1/deployments/{name}/stats           error/cost/counts statistics
//	GET    /v1/deployments/{name}/trace           recent tick span trees;
//	                                              ?id=<trace or request id>
//	                                              assembles one end-to-end trace
//	GET    /v1/deployments/{name}/checkpoint      opaque binary snapshot
//	POST   /v1/deployments/{name}/checkpoint      force a durable checkpoint now
//	                                              (501 without a policy)
//	GET    /v1/deployments/{name}/snapshot        the replication feed: the
//	                                              published snapshot as a
//	                                              self-validating CDMLCKP1
//	                                              frame; ?since=<version>
//	                                              answers 304 when nothing
//	                                              newer is published, and
//	                                              X-Snapshot-Version always
//	                                              carries the current version
//	POST   /v1/deployments/{name}/restore         load a /checkpoint snapshot
//	POST   /v1/deployments/{name}/challengers     attach a shadow challenger
//	                                              built from a JSON spec: live
//	                                              ingest is tee'd into it, its
//	                                              predictions scored but never
//	                                              served, and the promotion
//	                                              policy auto-promotes or
//	                                              retires it (202)
//	DELETE /v1/deployments/{name}/challengers     retire the challenger now
//	POST   /v1/deployments/{name}/rollback        swap the previous champion
//	                                              back in
//	GET    /v1/metrics                            Prometheus text exposition of
//	                                              every deployment's series
//	                                              (labeled deployment=<name>)
//	GET    /v1/healthz                            200 "ok"
//
// The single-deployment API from earlier releases is preserved as exact
// aliases bound to the deployment named "default": /v1/predict, /v1/train,
// /v1/ingest, /v1/status, /v1/stats, /v1/trace, /v1/checkpoint (GET),
// /v1/restore — and the unversioned legacy spellings (/predict, /train,
// ...) of all of the above plus /metrics and /healthz. When no "default"
// deployment exists the aliases answer 404 "unknown_deployment".
//
// Every error response uses the uniform JSON envelope
//
//	{"error": {"code": "<machine-readable>", "message": "<human-readable>"}}
//
// with codes "bad_request", "method_not_allowed", "internal", "queue_full",
// "shutting_down", "payload_too_large", "unknown_deployment",
// "deployment_exists", "challenger_exists", "conflict", "not_found",
// "unsupported", "read_only_replica", and "over_quota".
//
// A server started with WithReplicaOf runs every deployment in replica
// mode: a per-deployment poller syncs the primary's published snapshots
// through GET .../snapshot (conditional on ?since=, so steady state is a
// header exchange) and swaps them in atomically; predict/status/stats
// answer from the synced state, state-changing endpoints answer 409
// "read_only_replica", and /status reports the replica's version lag,
// snapshot age, and last sync alongside the cdml_replica_* series.
//
// Every request passes through a middleware that assigns an X-Request-ID
// (echoing a client-supplied one) and an X-Trace-ID (echoed likewise, and
// carried through ticks and checkpoint writes triggered by the request),
// enforces the route's method (405 with an Allow header otherwise), emits a
// structured log line (log/slog) with method/path/status/duration plus
// request_id and trace_id, and feeds the per-endpoint request counters and
// latency histograms exposed at /v1/metrics — labeled by path template
// (never the raw request path, so series cardinality is bounded by the
// route table), API version, and deployment name.
//
// Opt-in extras: WithPprof registers net/http/pprof under /debug/pprof/,
// WithRuntimeMetrics adds a sampled cdml_runtime_* family to the
// exposition, and WithConfigBuilder enables the spec-driven PUT/challenger
// endpoints.
//
// Records use exactly the same wire format as the deployed pipeline's
// parser, so the same payload can be sent to /train (with labels) and
// /predict — train/serve consistency extends to the HTTP boundary.
package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"log/slog"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"cdml/internal/core"
	"cdml/internal/data"
	"cdml/internal/obs"
	"cdml/internal/registry"
	"cdml/internal/snapstream"
)

// maxBody bounds request bodies (16 MiB) so a misbehaving client cannot
// exhaust memory.
const maxBody = 16 << 20

// requestTraceCapacity is the ring size of the request-span tracer: large
// enough that a slow request's trace is still resolvable by id a few hundred
// requests later, small enough to bound memory.
const requestTraceCapacity = 256

// DefaultDeployment is the deployment name the legacy single-deployment
// aliases (/v1/predict, /predict, ...) resolve to.
const DefaultDeployment = "default"

// ConfigBuilder turns a client-supplied JSON spec into a deployment config.
// The server never interprets specs itself — what a spec may express
// (workloads, optimizers, data sources) is the operator's policy, supplied
// via WithConfigBuilder. Without one, PUT /v1/deployments/{name} and the
// challenger endpoints answer 501 "unsupported".
type ConfigBuilder func(name string, spec json.RawMessage) (core.Config, error)

// Server fronts a registry of deployments with HTTP handlers.
type Server struct {
	registry *registry.Registry
	mux      *http.ServeMux
	reg      *obs.Registry
	// reqTracer records one span tree per HTTP request, separate from the
	// deployments' tick tracers so request volume never evicts tick history.
	// /v1/deployments/{name}/trace?id= searches both.
	reqTracer *obs.Tracer
	log       *slog.Logger
	builder   ConfigBuilder

	inFlight   *obs.Gauge
	reqSeq     atomic.Uint64
	startNanos int64

	// routes is the route table, fixed after construction. nScoped counts
	// the deployment-scoped routes; each depHandle carries one pre-created
	// endpointMetrics per scoped route, indexed by routeDef.idx.
	routes       []*routeDef
	nScoped      int
	predictRoute *routeDef

	// handles maps deployment name → per-deployment serving state. Reads are
	// a lock-free atomic load on every request; writes copy the map under
	// hmu (copy-on-write, like the core snapshot pointer).
	hmu     sync.Mutex
	handles atomic.Pointer[map[string]*depHandle]

	queueCap     int
	pprof        bool
	runtimeEvery time.Duration
	sampler      *obs.RuntimeSampler

	// replicaOf, when non-empty, puts every deployment on this server in
	// replica mode: a per-deployment poller syncs published snapshots from
	// the primary at replicaOf (base URL), predict/status/stats answer from
	// the synced state, and mutating endpoints answer 409 read_only_replica.
	replicaOf   string
	replicaPoll time.Duration
}

// Option configures a Server.
type Option func(*Server)

// WithLogger replaces the request logger with a slog text handler writing to
// l's destination; pass nil to disable request logging (tests, benchmarks).
// Kept source-compatible with the pre-slog API; new code should prefer
// WithSlog.
func WithLogger(l *log.Logger) Option {
	return func(s *Server) {
		if l == nil {
			s.log = nil
			return
		}
		s.log = slog.New(slog.NewTextHandler(l.Writer(), nil))
	}
}

// WithSlog replaces the request logger; pass nil to disable request logging.
func WithSlog(l *slog.Logger) Option {
	return func(s *Server) { s.log = l }
}

// WithPprof registers the net/http/pprof handlers under /debug/pprof/ —
// opt-in, because profiling endpoints expose internals and belong behind
// operator intent (and usually a private listener).
func WithPprof() Option {
	return func(s *Server) { s.pprof = true }
}

// WithRuntimeMetrics starts a background sampler that refreshes the
// cdml_runtime_* gauge family (heap, GC pauses, goroutines, scheduler
// latency) every period. Call Close to stop it.
func WithRuntimeMetrics(every time.Duration) Option {
	return func(s *Server) { s.runtimeEvery = every }
}

// WithIngestQueue sets the async-ingest queue capacity in chunks per
// deployment (default DefaultIngestQueue); a deployment's MaxIngestQueue
// quota caps it further. Values < 1 are clamped to 1 — the queue is the
// backpressure boundary and must exist for /ingest to be meaningful.
func WithIngestQueue(capacity int) Option {
	return func(s *Server) { s.queueCap = max(1, capacity) }
}

// WithConfigBuilder enables the spec-driven management endpoints (PUT
// /v1/deployments/{name} and POST .../challengers), which build deployment
// configs through b.
func WithConfigBuilder(b ConfigBuilder) Option {
	return func(s *Server) { s.builder = b }
}

// WithReplicaOf puts the server in replica mode: every deployment polls
// GET {primary}/v1/deployments/{name}/snapshot?since=<version> every poll
// interval (default DefaultReplicaPoll when poll <= 0) and atomically swaps
// newer snapshots into its local deployer. The local deployment must be
// built from the same spec as the primary's — the frame codec validates
// model and optimizer identity on apply. Mutating endpoints answer 409
// "read_only_replica"; /status reports the replica's staleness.
func WithReplicaOf(primary string, poll time.Duration) Option {
	return func(s *Server) {
		s.replicaOf = strings.TrimRight(primary, "/")
		if poll <= 0 {
			poll = DefaultReplicaPoll
		}
		s.replicaPoll = poll
	}
}

// New returns a single-deployment server: dep is adopted into a fresh
// registry as "default", so the whole legacy surface keeps working
// unchanged while the deployment-scoped API addresses it by name. Adopted
// deployments cannot host challengers (the registry did not wire their
// config); use NewWithRegistry and registry.Create for the full feature
// set.
func New(dep *core.Deployer, opts ...Option) *Server {
	r := registry.New(registry.Options{Metrics: dep.Metrics()})
	if _, err := r.Adopt(DefaultDeployment, dep, registry.Quotas{}); err != nil {
		// Unreachable: the name is valid and the registry empty.
		panic(err)
	}
	return NewWithRegistry(r, opts...)
}

// NewWithRegistry returns a server fronting r. Deployments already
// registered get their serving state (ingest queue, drainer, metrics)
// built immediately; deployments created later through the HTTP API are
// wired as they appear. The server does not own the registry: Close stops
// the server's background work but leaves the deployments running (shut
// them down via registry.Close).
func NewWithRegistry(r *registry.Registry, opts ...Option) *Server {
	s := &Server{
		registry:   r,
		mux:        http.NewServeMux(),
		reg:        r.Metrics(),
		reqTracer:  obs.NewTracer(requestTraceCapacity),
		log:        slog.Default(),
		startNanos: time.Now().UnixNano(),
		queueCap:   DefaultIngestQueue,
	}
	if s.reg == nil {
		// A registry without shared metrics still gets HTTP instrumentation —
		// into a private sink, reachable through /v1/metrics.
		s.reg = obs.NewRegistry()
	}
	for _, o := range opts {
		o(s)
	}
	if s.runtimeEvery > 0 {
		s.sampler = obs.StartRuntimeSampler(s.reg, s.runtimeEvery)
	}
	s.inFlight = s.reg.Gauge("cdml_http_in_flight", "HTTP requests currently being handled.")
	empty := make(map[string]*depHandle)
	s.handles.Store(&empty)
	s.registerRoutes()
	for _, d := range r.List() {
		s.addHandle(d)
	}
	if s.pprof {
		s.routePprof()
	}
	return s
}

// Registry returns the deployment registry the server fronts.
func (s *Server) Registry() *registry.Registry { return s.registry }

// Close releases the server's background resources: the runtime metrics
// sampler and, in replica mode, every deployment's sync poller. It neither
// drains the ingest queues — call DrainIngest first during a graceful
// shutdown — nor shuts the deployments down (the registry owner does that).
func (s *Server) Close() {
	if s.sampler != nil {
		s.sampler.Stop()
	}
	for _, h := range *s.handles.Load() {
		if h.rep != nil {
			h.rep.stopPoller()
		}
	}
}

// registerRoutes builds the route table: the deployment-scoped canonical
// surface under /v1/deployments/{name}, the global management and
// observability endpoints, and the fixed-name aliases of the legacy
// single-deployment API.
func (s *Server) registerRoutes() {
	const base = "/v1/deployments/{name}"
	post := func(fn depHandlerFunc) map[string]methodHandler {
		return map[string]methodHandler{http.MethodPost: {fn: fn}}
	}
	// mut is post for state-changing endpoints: rejected with 409
	// "read_only_replica" on replicas, whose only writer is the sync poller.
	mut := func(fn depHandlerFunc) map[string]methodHandler {
		return map[string]methodHandler{http.MethodPost: {fn: fn, mutates: true}}
	}
	get := func(fn depHandlerFunc) map[string]methodHandler {
		return map[string]methodHandler{http.MethodGet: {fn: fn}}
	}

	// Canonical deployment-scoped routes ({name} from the path).
	s.predictRoute = s.scoped(base+"/predict", "v1", "", post(handlePredict))
	s.scoped(base+"/train", "v1", "", mut(handleTrain))
	s.scoped(base+"/ingest", "v1", "", mut(handleIngest))
	s.scoped(base+"/status", "v1", "", get(handleStatus))
	s.scoped(base+"/stats", "v1", "", get(handleStats))
	s.scoped(base+"/trace", "v1", "", get(handleTrace))
	s.scoped(base+"/checkpoint", "v1", "", map[string]methodHandler{
		http.MethodGet:  {fn: handleCheckpointGet},
		http.MethodPost: {fn: handleCheckpointNow, mutates: true},
	})
	s.scoped(base+"/snapshot", "v1", "", get(handleSnapshotGet))
	s.scoped(base+"/restore", "v1", "", mut(handleRestore))
	s.scoped(base+"/challengers", "v1", "", map[string]methodHandler{
		http.MethodPost:   {fn: handleChallengerStart, mutates: true},
		http.MethodDelete: {fn: handleChallengerStop, mutates: true},
	})
	s.scoped(base+"/rollback", "v1", "", mut(handleRollback))
	s.scoped(base, "v1", "", map[string]methodHandler{
		http.MethodGet:    {fn: handleDescribe},
		http.MethodPut:    {fn: handleCreate, allowUnknown: true},
		http.MethodDelete: {fn: handleDelete},
	})

	// Global routes (not bound to a deployment).
	s.global("/v1/deployments", "v1", get(handleList))
	s.global("/v1/metrics", "v1", get(handleMetrics))
	s.global("/metrics", "legacy", get(handleMetrics))
	s.global("/v1/healthz", "v1", get(handleHealth))
	s.global("/healthz", "legacy", get(handleHealth))

	// Single-deployment aliases, fixed to "default": the canonical paths of
	// earlier releases, kept exactly — same methods, same payloads.
	alias := func(suffix string, methods map[string]methodHandler) {
		s.scoped("/v1"+suffix, "v1", DefaultDeployment, methods)
		s.scoped(suffix, "legacy", DefaultDeployment, methods)
	}
	alias("/predict", post(handlePredict))
	alias("/train", mut(handleTrain))
	alias("/ingest", mut(handleIngest))
	alias("/status", get(handleStatus))
	alias("/stats", get(handleStats))
	alias("/trace", get(handleTrace))
	alias("/checkpoint", get(handleCheckpointGet))
	alias("/restore", mut(handleRestore))

	// Everything else: a JSON 404 envelope instead of net/http's plain-text
	// default, so clients can rely on the error shape across the whole
	// surface.
	s.mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		writeError(w, http.StatusNotFound, codeNotFound,
			fmt.Errorf("serve: no route for %s %s", r.Method, r.URL.Path))
	})
}

// scoped registers one deployment-scoped route resolved from the {name}
// path wildcard.
func (s *Server) scoped(template, version string, fixed string, methods map[string]methodHandler) *routeDef {
	rt := &routeDef{
		idx:      s.nScoped,
		template: template,
		version:  version,
		fixed:    fixed,
		handlers: methods,
	}
	s.nScoped++
	// The unknown-deployment series: 404s for names that do not resolve
	// must be countable without minting a series per probed name.
	rt.em = newEndpointMetrics(s.reg, template, version, "unknown")
	s.register(rt)
	return rt
}

// global registers a route that is not bound to any deployment.
func (s *Server) global(template, version string, methods map[string]methodHandler) {
	rt := &routeDef{
		idx:      -1,
		template: template,
		version:  version,
		global:   true,
		handlers: methods,
	}
	rt.em = newEndpointMetrics(s.reg, template, version, "")
	s.register(rt)
}

// register wires rt into the mux: one method-qualified pattern per allowed
// method, plus a method-less fallback on the same pattern that answers 405
// with an Allow header and the JSON envelope (Go's mux prefers the
// method-qualified pattern when the method matches).
func (s *Server) register(rt *routeDef) {
	methods := make([]string, 0, len(rt.handlers))
	for m := range rt.handlers {
		methods = append(methods, m)
	}
	sort.Strings(methods)
	rt.allow = strings.Join(methods, ", ")
	s.routes = append(s.routes, rt)
	for _, m := range methods {
		s.mux.HandleFunc(m+" "+rt.template, func(w http.ResponseWriter, r *http.Request) {
			s.dispatch(rt, w, r, true)
		})
	}
	s.mux.HandleFunc(rt.template, func(w http.ResponseWriter, r *http.Request) {
		s.dispatch(rt, w, r, false)
	})
}

// dispatch resolves the deployment name and enters the middleware.
func (s *Server) dispatch(rt *routeDef, w http.ResponseWriter, r *http.Request, methodOK bool) {
	name := rt.fixed
	if !rt.global && name == "" {
		name = r.PathValue("name")
	}
	s.serveRoute(rt, name, w, r, methodOK)
}

// ServeHTTP implements http.Handler. POST predict requests are matched
// ahead of the mux: ServeMux's wildcard matching allocates its segment
// slice per request, and predict is the one route where that shows up in
// profiles, so the hot path string-matches the pattern itself and enters
// the exact same middleware the mux would. Routed predict therefore costs
// the same allocations as the legacy exact-match /v1/predict.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method == http.MethodPost {
		if rest, ok := strings.CutPrefix(r.URL.Path, "/v1/deployments/"); ok {
			if name, ok := strings.CutSuffix(rest, "/predict"); ok &&
				name != "" && !strings.Contains(name, "/") {
				s.serveRoute(s.predictRoute, name, w, r, true)
				return
			}
		}
	}
	s.mux.ServeHTTP(w, r)
}

// readRecords splits a request body into newline-separated records,
// dropping empty lines.
func readRecords(r *http.Request) ([][]byte, error) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxBody+1))
	if err != nil {
		return nil, fmt.Errorf("serve: reading body: %w", err)
	}
	if len(body) > maxBody {
		return nil, fmt.Errorf("serve: body exceeds %d bytes", maxBody)
	}
	var records [][]byte
	start := 0
	for i := 0; i <= len(body); i++ {
		if i == len(body) || body[i] == '\n' {
			line := body[start:i]
			if len(line) > 0 && !(len(line) == 1 && line[0] == '\r') {
				if line[len(line)-1] == '\r' {
					line = line[:len(line)-1]
				}
				records = append(records, line)
			}
			start = i + 1
		}
	}
	return records, nil
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// Machine-readable error codes of the uniform error envelope.
const (
	codeBadRequest        = "bad_request"
	codeMethodNotAllowed  = "method_not_allowed"
	codeInternal          = "internal"
	codeQueueFull         = "queue_full"
	codeShuttingDown      = "shutting_down"
	codePayloadTooLarge   = "payload_too_large"
	codeUnknownDeployment = "unknown_deployment"
	codeDeploymentExists  = "deployment_exists"
	codeChallengerExists  = "challenger_exists"
	codeConflict          = "conflict"
	codeNotFound          = "not_found"
	codeUnsupported       = "unsupported"
	codeReadOnlyReplica   = "read_only_replica"
	codeOverQuota         = "over_quota"
)

// ErrorBody is the uniform JSON error envelope every non-2xx response
// carries: {"error": {"code": ..., "message": ...}}. Code is stable and
// machine-readable; Message is human-readable and may change between
// releases.
type ErrorBody struct {
	Error ErrorDetail `json:"error"`
}

// ErrorDetail is the inner object of ErrorBody.
type ErrorDetail struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

func writeError(w http.ResponseWriter, status int, code string, err error) {
	writeJSON(w, status, ErrorBody{Error: ErrorDetail{Code: code, Message: err.Error()}})
}

// PredictResponse is the /predict payload.
type PredictResponse struct {
	// Predictions holds one model output per surviving record, in input
	// order.
	Predictions []float64 `json:"predictions"`
	// Served counts the records that survived preprocessing.
	Served int `json:"served"`
	// Dropped counts records the pipeline rejected (malformed or filtered).
	Dropped int `json:"dropped"`
	// LatencyMS is the server-side handling time.
	LatencyMS float64 `json:"latency_ms"`
}

// errEmptyRequest is the static empty-batch error: a package-level value so
// the hot handlers reject garbage without allocating a fresh error each time.
var errEmptyRequest = errors.New("serve: empty request")

// handlePredict serves predict requests. It sits on the serving fast path —
// everything from here down to Snapshot scoring carries the hotpath
// contract; the one deliberate allocation is the response envelope.
//
//cdml:hotpath
func handlePredict(s *Server, name string, h *depHandle, w http.ResponseWriter, r *http.Request) {
	start := time.Now() //lint:allow hotpath: request latency is part of the response contract (LatencyMS)
	records, err := readRecords(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, codeBadRequest, err)
		return
	}
	if len(records) == 0 {
		writeError(w, http.StatusBadRequest, codeBadRequest, errEmptyRequest)
		return
	}
	preds, err := h.dep.Predict(records)
	if err != nil {
		writeError(w, http.StatusInternalServerError, codeInternal, err)
		return
	}
	writeJSON(w, http.StatusOK, PredictResponse{
		Predictions: preds,
		Served:      len(preds),
		Dropped:     len(records) - len(preds),
		LatencyMS:   float64(time.Since(start).Microseconds()) / 1000,
	})
}

// TrainResponse is the /train payload.
type TrainResponse struct {
	// Ingested counts the raw records accepted into the platform.
	Ingested int `json:"ingested"`
	// LatencyMS is the server-side handling time.
	LatencyMS float64 `json:"latency_ms"`
}

func handleTrain(s *Server, name string, h *depHandle, w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	records, err := readRecords(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, codeBadRequest, err)
		return
	}
	if len(records) == 0 {
		writeError(w, http.StatusBadRequest, codeBadRequest, errEmptyRequest)
		return
	}
	// IngestCtx carries the middleware's request span, so the synchronous
	// tick inherits the request's trace id and shows up in /trace?id= —
	// and, through the deployment, tees the chunk into a shadow challenger
	// if one is attached.
	if err := h.dep.IngestCtx(r.Context(), records); err != nil {
		if errors.Is(err, data.ErrOverQuota) {
			// The deployment's retained-chunk quota is exhausted: a standing
			// condition, not transient backpressure, so no Retry-After.
			writeError(w, http.StatusTooManyRequests, codeOverQuota, err)
			return
		}
		writeError(w, http.StatusInternalServerError, codeInternal, err)
		return
	}
	writeJSON(w, http.StatusOK, TrainResponse{
		Ingested:  len(records),
		LatencyMS: float64(time.Since(start).Microseconds()) / 1000,
	})
}

// StatsResponse is the /stats payload.
type StatsResponse struct {
	Mode            string  `json:"mode"`
	CumulativeError float64 `json:"cumulative_error"`
	Evaluated       int64   `json:"evaluated"`
	ProactiveRuns   int     `json:"proactive_runs"`
	Retrains        int     `json:"retrains"`
	DriftEvents     int     `json:"drift_events"`
	CostSeconds     float64 `json:"cost_seconds"`
	Mu              float64 `json:"materialization_utilization"`
	Chunks          int64   `json:"chunks_ingested"`
}

func handleStats(s *Server, name string, h *depHandle, w http.ResponseWriter, r *http.Request) {
	st := h.dep.Serving().Stats()
	writeJSON(w, http.StatusOK, StatsResponse{
		Mode:            st.Mode.String(),
		CumulativeError: st.FinalError,
		Evaluated:       st.Evaluated,
		ProactiveRuns:   st.ProactiveRuns,
		Retrains:        st.Retrains,
		DriftEvents:     st.DriftEvents,
		CostSeconds:     st.Cost.Total().Seconds(),
		Mu:              st.MatStats.Mu(),
		Chunks:          int64(st.ErrorCurve.Len()), // one curve point per ingested chunk
	})
}

// handleMetrics serves the shared metric registry in Prometheus text
// exposition format: every deployment's series, separated by the
// deployment label.
func handleMetrics(s *Server, _ string, _ *depHandle, w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.reg.WriteText(w)
}

// TraceResponse is the /trace payload.
type TraceResponse struct {
	// ID echoes the ?id= filter when one was given.
	ID string `json:"id,omitempty"`
	// Total counts deployment ticks recorded since startup.
	Total uint64 `json:"total_ticks"`
	// Spans holds span trees: the most recent ticks (newest first) by
	// default, or — with ?id= — every retained tree of one trace in start
	// order (request, queue wait + tick stages, checkpoint write).
	Spans []*obs.Span `json:"spans"`
}

// handleTrace serves span trees of the deployment's champion. Without
// parameters it lists the last N deployment ticks (?n= bounds the count,
// default 20, capped by the tracer's ring size). With ?id=<trace or request
// id> it instead assembles the end-to-end trace: every retained span tree —
// the HTTP request root, the tick (including its queue-wait stage for async
// ingest), and the background checkpoint write — carrying that id, sorted
// by start time.
func handleTrace(s *Server, name string, h *depHandle, w http.ResponseWriter, r *http.Request) {
	tracer := h.dep.Serving().Tracer()
	if id := r.URL.Query().Get("id"); id != "" {
		spans := append(tracer.ByID(id), s.reqTracer.ByID(id)...)
		sort.Slice(spans, func(i, j int) bool { return spans[i].Start.Before(spans[j].Start) })
		writeJSON(w, http.StatusOK, TraceResponse{
			ID:    id,
			Total: tracer.Total(),
			Spans: spans,
		})
		return
	}
	n := 20
	if q := r.URL.Query().Get("n"); q != "" {
		v, err := strconv.Atoi(q)
		if err != nil || v < 1 {
			writeError(w, http.StatusBadRequest, codeBadRequest, fmt.Errorf("serve: invalid n %q", q))
			return
		}
		n = v
	}
	writeJSON(w, http.StatusOK, TraceResponse{
		Total: tracer.Total(),
		Spans: tracer.Last(n),
	})
}

// handleCheckpointGet serves the deployment's full state (model, optimizer,
// pipeline statistics) as an opaque binary snapshot — the raw payload of the
// published snapshot's frame, via the deployment's snapstream source, with
// the snapshot version in X-Snapshot-Version. The body is the exact byte
// sequence POST .../restore accepts.
func handleCheckpointGet(s *Server, name string, h *depHandle, w http.ResponseWriter, r *http.Request) {
	f, ok, err := h.dep.Serving().SnapshotSource().Latest(r.Context(), 0)
	if err != nil || !ok {
		if err == nil {
			err = errors.New("serve: no published snapshot")
		}
		writeError(w, http.StatusInternalServerError, codeInternal, err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set(snapstream.VersionHeader, strconv.FormatUint(f.Version, 10))
	_, _ = w.Write(f.Payload)
}

// handleSnapshotGet is the replication feed: the published snapshot as a
// self-validating CDMLCKP1 frame. ?since=<version> makes the poll
// conditional — 304 Not Modified when nothing newer than that version has
// been published, so steady-state polling costs a header exchange. The
// response always carries X-Snapshot-Version (the currently published
// version), 304s included, so a replica can track its lag even while
// up to date.
func handleSnapshotGet(s *Server, name string, h *depHandle, w http.ResponseWriter, r *http.Request) {
	var since uint64
	if q := r.URL.Query().Get("since"); q != "" {
		v, err := strconv.ParseUint(q, 10, 64)
		if err != nil {
			writeError(w, http.StatusBadRequest, codeBadRequest,
				fmt.Errorf("serve: invalid since %q", q))
			return
		}
		since = v
	}
	f, ok, err := h.dep.Serving().SnapshotSource().Latest(r.Context(), since)
	if err != nil {
		writeError(w, http.StatusInternalServerError, codeInternal, err)
		return
	}
	if !ok {
		w.Header().Set(snapstream.VersionHeader,
			strconv.FormatUint(h.dep.Serving().Current().Version(), 10))
		w.WriteHeader(http.StatusNotModified)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set(snapstream.VersionHeader, strconv.FormatUint(f.Version, 10))
	_, _ = w.Write(snapstream.EncodeFrame(f))
}

// CheckpointNowResponse is the payload of POST .../checkpoint.
type CheckpointNowResponse struct {
	// Version is the snapshot version written (v − 1 completed ticks).
	Version uint64 `json:"version"`
	// Path is the durable checkpoint file.
	Path string `json:"path"`
}

// handleCheckpointNow forces a durable checkpoint of the champion,
// regardless of the policy's tick/interval triggers. Deployments without an
// auto-checkpoint policy have no durable directory to write into and answer
// 501 "unsupported" (stream GET .../checkpoint instead).
func handleCheckpointNow(s *Server, name string, h *depHandle, w http.ResponseWriter, r *http.Request) {
	info, err := h.dep.Serving().CheckpointNow()
	if err != nil {
		if h.dep.CheckpointDir() == "" {
			writeError(w, http.StatusNotImplemented, codeUnsupported, err)
			return
		}
		writeError(w, http.StatusInternalServerError, codeInternal, err)
		return
	}
	writeJSON(w, http.StatusOK, CheckpointNowResponse{Version: info.Version, Path: info.Path})
}

// handleRestore loads a snapshot produced by /checkpoint into the live
// deployment. Oversized bodies are rejected with 413 payload_too_large —
// never silently truncated into a decode error (or a valid-looking prefix).
// The body is buffered and size-checked in full before any state is
// touched, so a 413 always means the live model was left as it was: a
// valid checkpoint with trailing bytes past the cap must not be applied
// and then reported as rejected.
func handleRestore(s *Server, name string, h *depHandle, w http.ResponseWriter, r *http.Request) {
	if r.ContentLength > maxBody {
		writeError(w, http.StatusRequestEntityTooLarge, codePayloadTooLarge,
			fmt.Errorf("serve: checkpoint is %d bytes, exceeding the %d-byte body cap", r.ContentLength, maxBody))
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, maxBody+1))
	if err != nil {
		writeError(w, http.StatusBadRequest, codeBadRequest, fmt.Errorf("serve: reading checkpoint body: %w", err))
		return
	}
	if len(body) > maxBody {
		writeError(w, http.StatusRequestEntityTooLarge, codePayloadTooLarge,
			fmt.Errorf("serve: checkpoint exceeds the %d-byte body cap", maxBody))
		return
	}
	// The body is a frame payload; an X-Snapshot-Version header (as sent by
	// GET .../checkpoint) additionally pins the restored snapshot's version.
	var version uint64
	if v := r.Header.Get(snapstream.VersionHeader); v != "" {
		n, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			writeError(w, http.StatusBadRequest, codeBadRequest,
				fmt.Errorf("serve: invalid %s %q", snapstream.VersionHeader, v))
			return
		}
		version = n
	}
	if err := h.dep.Serving().SnapshotSink().Apply(snapstream.Frame{Version: version, Payload: body}); err != nil {
		writeError(w, http.StatusBadRequest, codeBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "restored"})
}

func handleHealth(s *Server, _ string, _ *depHandle, w http.ResponseWriter, r *http.Request) {
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write([]byte("ok"))
}

// ListenAndServe starts the server on addr and blocks. Binaries that need
// graceful shutdown should build their own http.Server around the Server
// (see cmd/cdml-serve).
func (s *Server) ListenAndServe(addr string) error {
	srv := &http.Server{
		Addr:         addr,
		Handler:      s,
		ReadTimeout:  30 * time.Second,
		WriteTimeout: 60 * time.Second,
	}
	return srv.ListenAndServe()
}
