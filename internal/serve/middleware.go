package serve

import (
	"fmt"
	"log/slog"
	"net/http"
	"strings"
	"time"

	"cdml/internal/obs"
)

// endpointMetrics holds the pre-created instruments of one route. Everything
// is allocated at registration, so the per-request cost is a handful of
// atomic operations.
type endpointMetrics struct {
	latency *obs.Histogram
	// byClass counts responses by status class: index 0 → 2xx, 1 → 3xx,
	// 2 → 4xx, 3 → 5xx.
	byClass [4]*obs.Counter
}

var statusClasses = [4]string{"2xx", "3xx", "4xx", "5xx"}

func newEndpointMetrics(reg *obs.Registry, path, version string) *endpointMetrics {
	em := &endpointMetrics{
		latency: reg.Histogram("cdml_http_request_seconds",
			"HTTP request handling latency by endpoint.",
			obs.L("path", path), obs.L("version", version)),
	}
	for i, class := range statusClasses {
		em.byClass[i] = reg.Counter("cdml_http_requests_total",
			"HTTP requests served by endpoint, API version, and status class.",
			obs.L("path", path), obs.L("version", version), obs.L("code", class))
	}
	return em
}

// observe feeds one finished request into the endpoint's instruments. The
// trace id rides along as a histogram exemplar, so the /metrics top bucket
// links to the concrete slow request in /v1/trace.
func (em *endpointMetrics) observe(status int, d time.Duration, traceID string) {
	idx := status/100 - 2
	if idx < 0 || idx >= len(em.byClass) {
		idx = 2 // 1xx should not happen; count it with client errors
	}
	em.byClass[idx].Inc()
	em.latency.ObserveExemplar(d, traceID)
}

// statusRecorder captures the status code written by a handler.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

//cdml:hotpath
func (sr *statusRecorder) WriteHeader(code int) {
	sr.status = code
	sr.ResponseWriter.WriteHeader(code)
}

//cdml:hotpath
func (sr *statusRecorder) Write(b []byte) (int, error) {
	if sr.status == 0 {
		sr.status = http.StatusOK
	}
	return sr.ResponseWriter.Write(b)
}

// requestIDHeader is the request correlation header: a client-supplied value
// is echoed back, otherwise the server assigns one.
const requestIDHeader = "X-Request-ID"

// traceIDHeader carries the trace id: echoed when client-supplied (so a
// caller can stitch this server's spans into its own trace), assigned
// otherwise. The response always carries it — the handle a client needs to
// later ask /v1/trace?id= where its request's latency went.
const traceIDHeader = "X-Trace-ID"

// nextRequestID returns a process-unique request id. The prefix is the
// server's start time, so ids stay distinguishable across restarts.
func (s *Server) nextRequestID() string {
	return fmt.Sprintf("%x-%06d", s.startNanos, s.reqSeq.Add(1))
}

// handle registers path with the middleware stack wrapped around h:
// method enforcement (405 plus an Allow header listing the accepted
// methods), request-id and trace-id assignment (echoing client-supplied
// X-Request-ID / X-Trace-ID), a per-request span tree carried in the
// request context (handlers and the deployment extend it across async
// boundaries), structured request logging with both ids, and the
// per-endpoint counters and latency histogram. The metric series carry the
// path exactly as registered plus the API version ("v1" or "legacy"), so
// the same logical endpoint's versioned and alias traffic stay separable.
func (s *Server) handle(path, version string, h http.HandlerFunc, allowed ...string) {
	em := newEndpointMetrics(s.reg, path, version)
	allowHeader := strings.Join(allowed, ", ")
	s.mux.HandleFunc(path, func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		s.inFlight.Add(1)
		id := r.Header.Get(requestIDHeader)
		if id == "" {
			id = s.nextRequestID()
		}
		traceID := r.Header.Get(traceIDHeader)
		if traceID == "" {
			traceID = obs.NewTraceID()
		}
		w.Header().Set(requestIDHeader, id)
		w.Header().Set(traceIDHeader, traceID)
		sp := obs.StartSpan(r.Method + " " + path)
		sp.TraceID = traceID
		sp.RequestID = id
		r = r.WithContext(obs.ContextWithSpan(r.Context(), sp))
		rec := &statusRecorder{ResponseWriter: w}

		if !methodAllowed(r.Method, allowed) {
			w.Header().Set("Allow", allowHeader)
			writeError(rec, http.StatusMethodNotAllowed, codeMethodNotAllowed,
				fmt.Errorf("serve: method %s not allowed on %s (allow: %s)", r.Method, path, allowHeader))
		} else {
			h(rec, r)
		}

		if rec.status == 0 {
			// Handler wrote nothing; net/http will send 200 on return.
			rec.status = http.StatusOK
		}
		sp.Finish()
		s.reqTracer.Record(sp)
		elapsed := time.Since(start)
		em.observe(rec.status, elapsed, traceID)
		s.inFlight.Add(-1)
		if s.log != nil {
			s.log.LogAttrs(r.Context(), slog.LevelInfo, "http request",
				slog.String("method", r.Method),
				slog.String("path", path),
				slog.Int("status", rec.status),
				slog.Float64("duration_ms", float64(elapsed.Microseconds())/1000),
				slog.String("request_id", id),
				slog.String("trace_id", traceID))
		}
	})
}

//cdml:hotpath
func methodAllowed(method string, allowed []string) bool {
	for _, m := range allowed {
		if method == m {
			return true
		}
	}
	return false
}
