package serve

import (
	"fmt"
	"log/slog"
	"net/http"
	"time"

	"cdml/internal/obs"
)

// depHandlerFunc is a route handler: name is the resolved deployment name
// and h its serving state (nil only for global routes and allowUnknown
// methods such as PUT create).
type depHandlerFunc func(s *Server, name string, h *depHandle, w http.ResponseWriter, r *http.Request)

// methodHandler is one method's handler on a route. allowUnknown lets the
// handler run for names that do not resolve to a deployment (PUT creates
// one); every other method answers 404 "unknown_deployment" first.
// mutates marks handlers that change deployment state (train, ingest,
// restore, forced checkpoints, challenger/rollback management); on a
// replica those answer 409 "read_only_replica" before the handler runs, so
// the sync poller stays the replica's only writer.
type methodHandler struct {
	fn           depHandlerFunc
	allowUnknown bool
	mutates      bool
}

// routeDef is one row of the route table: a path template plus its
// handlers, metric identity, and — for deployment-scoped routes — the slot
// its per-deployment instruments occupy in every depHandle.
type routeDef struct {
	// idx is the route's slot in depHandle.em (-1 for global routes).
	idx int
	// template is the mux pattern and the metric path label — series carry
	// the template, never the raw request path, so cardinality is bounded
	// by the route table.
	template string
	// version labels the API generation: "v1" or "legacy".
	version string
	// fixed binds the route to one deployment name (the legacy aliases);
	// "" resolves {name} from the path.
	fixed string
	// global marks routes not bound to any deployment (metrics, healthz,
	// the deployment list).
	global   bool
	handlers map[string]methodHandler
	// allow is the precomputed Allow header (sorted methods).
	allow string
	// em is the route's instrument set for global routes, and the
	// unknown-deployment instrument set for scoped ones (resolved handles
	// carry their own per-deployment set).
	em *endpointMetrics
}

// endpointMetrics holds the pre-created instruments of one (route,
// deployment) pair. Everything is allocated at registration, so the
// per-request cost is a handful of atomic operations.
type endpointMetrics struct {
	latency *obs.Histogram
	// byClass counts responses by status class: index 0 → 2xx, 1 → 3xx,
	// 2 → 4xx, 3 → 5xx.
	byClass [4]*obs.Counter
}

var statusClasses = [4]string{"2xx", "3xx", "4xx", "5xx"}

// newEndpointMetrics creates the instruments of one route for one
// deployment ("" on global routes omits the deployment label, "unknown"
// aggregates requests whose name did not resolve).
func newEndpointMetrics(reg *obs.Registry, path, version, deployment string) *endpointMetrics {
	base := make([]obs.Label, 0, 3)
	base = append(base, obs.L("path", path), obs.L("version", version))
	if deployment != "" {
		base = append(base, obs.L("deployment", deployment))
	}
	em := &endpointMetrics{
		latency: reg.Histogram("cdml_http_request_seconds",
			"HTTP request handling latency by endpoint.", base...),
	}
	for i, class := range statusClasses {
		em.byClass[i] = reg.Counter("cdml_http_requests_total",
			"HTTP requests served by endpoint, API version, deployment, and status class.",
			append(base[:len(base):len(base)], obs.L("code", class))...)
	}
	return em
}

// observe feeds one finished request into the endpoint's instruments. The
// trace id rides along as a histogram exemplar, so the /metrics top bucket
// links to the concrete slow request in the trace endpoint.
func (em *endpointMetrics) observe(status int, d time.Duration, traceID string) {
	idx := status/100 - 2
	if idx < 0 || idx >= len(em.byClass) {
		idx = 2 // 1xx should not happen; count it with client errors
	}
	em.byClass[idx].Inc()
	em.latency.ObserveExemplar(d, traceID)
}

// statusRecorder captures the status code written by a handler.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

//cdml:hotpath
func (sr *statusRecorder) WriteHeader(code int) {
	sr.status = code
	sr.ResponseWriter.WriteHeader(code)
}

//cdml:hotpath
func (sr *statusRecorder) Write(b []byte) (int, error) {
	if sr.status == 0 {
		sr.status = http.StatusOK
	}
	return sr.ResponseWriter.Write(b)
}

// requestIDHeader is the request correlation header: a client-supplied value
// is echoed back, otherwise the server assigns one.
const requestIDHeader = "X-Request-ID"

// traceIDHeader carries the trace id: echoed when client-supplied (so a
// caller can stitch this server's spans into its own trace), assigned
// otherwise. The response always carries it — the handle a client needs to
// later ask the trace endpoint where its request's latency went.
const traceIDHeader = "X-Trace-ID"

// nextRequestID returns a process-unique request id. The prefix is the
// server's start time, so ids stay distinguishable across restarts.
func (s *Server) nextRequestID() string {
	return fmt.Sprintf("%x-%06d", s.startNanos, s.reqSeq.Add(1))
}

// serveRoute is the middleware every request passes through — both the mux
// dispatch and the predict fast path land here. It resolves the deployment
// handle, assigns/echoes X-Request-ID and X-Trace-ID, opens a per-request
// span carried in the request context (handlers and the deployment extend
// it across async boundaries), enforces the route's method set (405 plus
// an Allow header), rejects unresolved deployment names (404
// "unknown_deployment") unless the method explicitly handles them, runs the
// handler, and finishes with the per-endpoint counters/latency histogram —
// labeled by path template, API version, and deployment — and a structured
// log line.
func (s *Server) serveRoute(rt *routeDef, name string, w http.ResponseWriter, r *http.Request, methodOK bool) {
	start := time.Now()
	s.inFlight.Add(1)
	var h *depHandle
	em := rt.em
	if !rt.global {
		if h = s.handleByName(name); h != nil {
			em = h.em[rt.idx]
		}
	}
	id := r.Header.Get(requestIDHeader)
	if id == "" {
		id = s.nextRequestID()
	}
	traceID := r.Header.Get(traceIDHeader)
	if traceID == "" {
		traceID = obs.NewTraceID()
	}
	w.Header().Set(requestIDHeader, id)
	w.Header().Set(traceIDHeader, traceID)
	sp := obs.StartSpan(r.Method + " " + rt.template)
	sp.TraceID = traceID
	sp.RequestID = id
	r = r.WithContext(obs.ContextWithSpan(r.Context(), sp))
	rec := &statusRecorder{ResponseWriter: w}

	// A method-qualified mux pattern may still receive methods it did not
	// register (HEAD rides GET patterns), so the handler lookup re-checks.
	mh, knownMethod := rt.handlers[r.Method]
	switch {
	case !methodOK || !knownMethod:
		w.Header().Set("Allow", rt.allow)
		writeError(rec, http.StatusMethodNotAllowed, codeMethodNotAllowed,
			fmt.Errorf("serve: method %s not allowed on %s (allow: %s)", r.Method, rt.template, rt.allow))
	case !rt.global && h == nil && !mh.allowUnknown:
		writeError(rec, http.StatusNotFound, codeUnknownDeployment,
			fmt.Errorf("serve: unknown deployment %q", name))
	case h != nil && h.rep != nil && mh.mutates:
		writeError(rec, http.StatusConflict, codeReadOnlyReplica,
			fmt.Errorf("serve: deployment %q is a read-only replica of %s; send writes to the primary",
				name, s.replicaOf))
	default:
		mh.fn(s, name, h, rec, r)
	}

	if rec.status == 0 {
		// Handler wrote nothing; net/http will send 200 on return.
		rec.status = http.StatusOK
	}
	sp.Finish()
	s.reqTracer.Record(sp)
	elapsed := time.Since(start)
	em.observe(rec.status, elapsed, traceID)
	s.inFlight.Add(-1)
	if s.log != nil {
		attrs := [8]slog.Attr{
			slog.String("method", r.Method),
			slog.String("path", rt.template),
			slog.Int("status", rec.status),
			slog.Float64("duration_ms", float64(elapsed.Microseconds())/1000),
			slog.String("request_id", id),
			slog.String("trace_id", traceID),
		}
		n := 6
		if !rt.global {
			attrs[n] = slog.String("deployment", name)
			n++
		}
		s.log.LogAttrs(r.Context(), slog.LevelInfo, "http request", attrs[:n]...)
	}
}
