package model

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"
	"os"
)

// snapshot is the serialized form of a model. Only weights and the
// constructor parameters are persisted; optimizer state is snapshotted
// separately via opt.Optimizer.Clone when warm starting in process.
type snapshot struct {
	Kind    string
	Dim     int
	Reg     float64
	Weights []float64
	K       int // k-means only
	Users   int // MF only
	Items   int // MF only
	Factors int // MF only
}

// Save serializes a model to w with encoding/gob.
func Save(w io.Writer, m Model) error {
	s := snapshot{Dim: m.Dim(), Weights: m.Weights()}
	switch t := m.(type) {
	case *SVM:
		s.Kind, s.Reg = "svm", t.Reg()
	case *LinearRegression:
		s.Kind, s.Reg = "linreg", t.Reg()
	case *LogisticRegression:
		s.Kind, s.Reg = "logreg", t.Reg()
	case *KMeans:
		s.Kind, s.K, s.Dim = "kmeans", t.K, t.FeatureDim
	case *MF:
		s.Kind, s.Reg = "mf", t.Reg()
		s.Users, s.Items, s.Factors = t.Users, t.Items, t.Factors
	default:
		return fmt.Errorf("model: cannot save unknown model type %T", m)
	}
	if err := gob.NewEncoder(w).Encode(s); err != nil {
		return fmt.Errorf("model: encoding %s: %w", s.Kind, err)
	}
	return nil
}

// Load deserializes a model written by Save.
func Load(r io.Reader) (Model, error) {
	var s snapshot
	if err := gob.NewDecoder(r).Decode(&s); err != nil {
		return nil, fmt.Errorf("model: decoding: %w", err)
	}
	var m Model
	switch s.Kind {
	case "svm":
		m = NewSVM(s.Dim, s.Reg)
	case "linreg":
		m = NewLinearRegression(s.Dim, s.Reg)
	case "logreg":
		m = NewLogisticRegression(s.Dim, s.Reg)
	case "kmeans":
		if s.Dim <= 0 || len(s.Weights) != s.K*s.Dim+1 {
			return nil, fmt.Errorf("model: corrupt k-means snapshot (k=%d dim=%d weights=%d)", s.K, s.Dim, len(s.Weights))
		}
		m = NewKMeans(s.K, s.Dim)
	case "mf":
		if s.Users <= 0 || s.Items <= 0 || s.Factors <= 0 {
			return nil, fmt.Errorf("model: corrupt MF snapshot (%d users, %d items, %d factors)", s.Users, s.Items, s.Factors)
		}
		m = NewMF(s.Users, s.Items, s.Factors, s.Reg, 0)
	default:
		return nil, fmt.Errorf("model: unknown model kind %q", s.Kind)
	}
	if len(s.Weights) != len(m.Weights()) {
		return nil, fmt.Errorf("model: snapshot weight length %d, want %d", len(s.Weights), len(m.Weights()))
	}
	m.SetWeights(s.Weights)
	return m, nil
}

// SaveFile writes a model to path atomically.
func SaveFile(path string, m Model) error {
	var buf bytes.Buffer
	if err := Save(&buf, m); err != nil {
		return err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, buf.Bytes(), 0o644); err != nil {
		return fmt.Errorf("model: writing %s: %w", tmp, err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("model: renaming %s: %w", tmp, err)
	}
	return nil
}

// LoadFile reads a model written by SaveFile.
func LoadFile(path string) (Model, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("model: reading %s: %w", path, err)
	}
	return Load(bytes.NewReader(b))
}
