// Package model implements the SGD-trainable models the paper deploys: a
// linear SVM (hinge loss, used by the URL pipeline), linear regression
// (squared loss, used by the Taxi pipeline), and logistic regression
// (log loss, the third MLlib class the prototype wires in).
//
// Every model exposes the paper's update contract (§4.4) in two grains.
// The fused grain is Update: compute the mini-batch gradient and apply one
// optimizer step. The split grain is the data-parallel decomposition the
// proactive trainer runs on the execution engine: GradientSum produces the
// unaveraged partial gradient of a batch shard (safe to call concurrently —
// it only reads the weights), Reduce combines the per-shard partials in
// fixed shard order into the mini-batch mean gradient, and Apply takes the
// single optimizer step. Update(batch) is exactly
// Apply(Reduce([GradientSum(batch)], n)) — bit-identical, not merely
// approximately equal — so serial and sharded training agree. Iterations
// are conditionally independent given the weights and optimizer state,
// which is exactly what lets the proactive trainer run them at arbitrary
// points in time (§3.3).
//
// Weights have dimension Dim()+1: the last coordinate is the intercept,
// which is never regularized. Gradients over sparse batches stay sparse and
// L2 regularization is applied lazily to the touched coordinates only — the
// standard large-scale trick that keeps an update on a 2^18-dimensional
// model proportional to the batch's non-zeros.
package model

import (
	"fmt"

	"cdml/internal/data"
	"cdml/internal/linalg"
	"cdml/internal/opt"
)

// Model is an SGD-trainable predictor.
type Model interface {
	// Name identifies the model type ("svm", "linreg", "logreg").
	Name() string
	// Dim returns the feature dimensionality (excluding the intercept).
	Dim() int
	// Weights returns the live weight slice of length Dim()+1 (intercept
	// last). Mutating it mutates the model.
	Weights() []float64
	// SetWeights replaces the weights (length must be Dim()+1).
	SetWeights(w []float64)
	// Predict returns the raw score w·x + b.
	Predict(x linalg.Vector) float64
	// Loss returns the per-example loss at the current weights.
	Loss(x linalg.Vector, y float64) float64
	// Gradient returns the mini-batch gradient (mean loss gradient plus L2
	// on the touched coordinates) and the mean unregularized loss. The
	// batch must be non-empty.
	Gradient(batch []data.Instance) (linalg.Vector, float64)
	// GradientSum returns the partial gradient of a batch shard: the
	// per-example gradient contributions summed (not averaged) plus the
	// summed loss. It reads but never writes model state, so shards may be
	// computed concurrently. The batch must be non-empty.
	//cdml:deterministic
	GradientSum(batch []data.Instance) (linalg.Vector, float64)
	// Reduce combines per-shard partial gradients in slice order into the
	// mean mini-batch gradient (applying any batch-level regularization)
	// and mean loss; n is the total number of rows across all shards. For a
	// fixed shard partition the result is a pure function of the partials —
	// independent of how they were scheduled.
	//cdml:deterministic
	Reduce(partials []linalg.Vector, lossSums []float64, n int) (linalg.Vector, float64)
	// Apply takes one optimizer step with an already-reduced gradient.
	//cdml:deterministic
	Apply(g linalg.Vector, o opt.Optimizer)
	// Update performs one SGD iteration: Gradient followed by one optimizer
	// step. It returns the mean loss before the step.
	Update(batch []data.Instance, o opt.Optimizer) float64
	// Clone returns a deep copy (weights included).
	Clone() Model
}

// base carries the weight storage and regularization shared by the three
// linear models.
type base struct {
	w   []float64 // dim+1, intercept last
	reg float64
}

func newBase(dim int, reg float64) base {
	if dim <= 0 {
		panic(fmt.Sprintf("model: non-positive dimension %d", dim))
	}
	if reg < 0 {
		panic(fmt.Sprintf("model: negative regularization %v", reg))
	}
	return base{w: make([]float64, dim+1), reg: reg}
}

func (b *base) Dim() int           { return len(b.w) - 1 }
func (b *base) Weights() []float64 { return b.w }
func (b *base) Reg() float64       { return b.reg }

func (b *base) SetWeights(w []float64) {
	if len(w) != len(b.w) {
		panic(fmt.Sprintf("model: SetWeights length %d, want %d", len(w), len(b.w)))
	}
	copy(b.w, w)
}

//cdml:hotpath
func (b *base) score(x linalg.Vector) float64 {
	if x.Dim() != b.Dim() {
		panic(fmt.Sprintf("model: input dim %d, model dim %d", x.Dim(), b.Dim()))
	}
	return x.Dot(b.w[:b.Dim()]) + b.w[b.Dim()]
}

// addReg adds λ·w to the gradient on its touched coordinates (all
// coordinates when dense), never on the intercept, and returns the result.
//
//cdml:hotpath
func (b *base) addReg(g linalg.Vector) linalg.Vector {
	//lint:allow floateq: reg is exactly 0 when regularization is disabled (constructor sentinel)
	if b.reg == 0 {
		return g
	}
	dim := b.Dim()
	switch t := g.(type) {
	case *linalg.Sparse:
		for k, i := range t.Idx {
			if int(i) < dim {
				t.Val[k] += b.reg * b.w[i]
			}
		}
		return t
	case linalg.Dense:
		for i := 0; i < dim; i++ {
			t[i] += b.reg * b.w[i]
		}
		return t
	default:
		return g
	}
}

// gradientSum accumulates the unaveraged, unregularized gradient sum over a
// batch shard. For each example, scale(score, y) returns (multiplier of the
// example's feature vector and intercept, per-example loss). A zero
// multiplier skips the accumulation (e.g. hinge loss outside the margin).
// It only reads the weights, so shards may run concurrently.
func (b *base) gradientSum(batch []data.Instance, scale func(score, y float64) (mult, loss float64)) (linalg.Vector, float64) {
	if len(batch) == 0 {
		panic("model: empty mini-batch")
	}
	acc := linalg.NewAccumulator(len(b.w))
	var lossSum float64
	for _, ins := range batch {
		s := b.score(ins.X)
		m, l := scale(s, ins.Y)
		lossSum += l
		//lint:allow floateq: loss scale functions return the exact constant 0 to skip accumulation
		if m != 0 {
			acc.Add(ins.X, m)
			acc.AddCoord(b.Dim(), m)
		}
	}
	return acc.Result(1), lossSum
}

// gradient computes the mean regularized mini-batch gradient as the
// single-shard case of the sum/finish split.
func (b *base) gradient(batch []data.Instance, scale func(score, y float64) (mult, loss float64)) (linalg.Vector, float64) {
	sum, lossSum := b.gradientSum(batch, scale)
	return b.finishGradient(sum, lossSum, len(batch))
}

// finishGradient turns an ordered gradient sum over n rows into the mean
// regularized gradient and mean loss. The sum is consumed (scaled in
// place).
func (b *base) finishGradient(sum linalg.Vector, lossSum float64, n int) (linalg.Vector, float64) {
	inv := 1 / float64(n)
	return b.addReg(scaleVec(sum, inv)), lossSum * inv
}

// Reduce implements Model for the models whose regularization is a
// batch-level term on the touched coordinates (the linear family and
// k-means): partial sums combine in shard order, then the mean is
// regularized once. MF overrides it because its regularization is
// per-example and already inside the partials.
//cdml:deterministic
func (b *base) Reduce(partials []linalg.Vector, lossSums []float64, n int) (linalg.Vector, float64) {
	return b.finishGradient(linalg.ReduceSum(len(b.w), partials), sumOrdered(lossSums), n)
}

// Apply implements Model: one optimizer step with a reduced gradient.
//cdml:deterministic
func (b *base) Apply(g linalg.Vector, o opt.Optimizer) {
	o.Step(b.w, g)
}

// sumOrdered adds the per-shard loss sums in shard order (fixed
// associativity keeps sharded runs bit-identical).
//
//cdml:hotpath
func sumOrdered(vs []float64) float64 {
	var s float64
	for _, v := range vs {
		s += v
	}
	return s
}

// scaleVec scales a gradient vector in place and returns it.
func scaleVec(g linalg.Vector, alpha float64) linalg.Vector {
	switch t := g.(type) {
	case *linalg.Sparse:
		return t.Scale(alpha)
	case linalg.Dense:
		linalg.Scale(alpha, t)
		return t
	default:
		out := linalg.NewDense(g.Dim())
		g.AddScaledTo(out, alpha)
		return out
	}
}
