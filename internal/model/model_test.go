package model

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"cdml/internal/data"
	"cdml/internal/linalg"
	"cdml/internal/opt"
)

// separableBatch builds a linearly separable 2-class dataset with labels in
// {-1,+1} (SVM convention) separated by the line x0 + x1 = 0.
func separableBatch(r *rand.Rand, n int) []data.Instance {
	out := make([]data.Instance, n)
	for i := range out {
		x0 := r.NormFloat64()
		x1 := r.NormFloat64()
		y := 1.0
		if x0+x1 < 0 {
			y = -1
		}
		// push points away from the boundary for clean separability
		shift := 0.5 * y
		out[i] = data.Instance{X: linalg.Dense{x0 + shift, x1 + shift}, Y: y}
	}
	return out
}

func regressionBatch(r *rand.Rand, n int, noise float64) []data.Instance {
	// y = 2*x0 - 3*x1 + 1 + noise
	out := make([]data.Instance, n)
	for i := range out {
		x0, x1 := r.NormFloat64(), r.NormFloat64()
		y := 2*x0 - 3*x1 + 1 + noise*r.NormFloat64()
		out[i] = data.Instance{X: linalg.Dense{x0, x1}, Y: y}
	}
	return out
}

func TestSVMLearnsSeparableData(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	m := NewSVM(2, 1e-4)
	o := opt.NewAdam(0.05)
	for i := 0; i < 400; i++ {
		m.Update(separableBatch(r, 32), o)
	}
	test := separableBatch(r, 500)
	errs := 0
	for _, ins := range test {
		if m.Classify(ins.X) != ins.Y {
			errs++
		}
	}
	if rate := float64(errs) / float64(len(test)); rate > 0.05 {
		t.Fatalf("SVM error rate = %v, want < 0.05", rate)
	}
}

func TestLinearRegressionRecoversCoefficients(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	m := NewLinearRegression(2, 0)
	o := opt.NewAdam(0.05)
	for i := 0; i < 2000; i++ {
		m.Update(regressionBatch(r, 32, 0.01), o)
	}
	w := m.Weights()
	if math.Abs(w[0]-2) > 0.1 || math.Abs(w[1]+3) > 0.1 || math.Abs(w[2]-1) > 0.1 {
		t.Fatalf("recovered weights %v, want ≈ [2 -3 1]", w)
	}
}

func TestLogisticRegressionLearns(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	m := NewLogisticRegression(2, 1e-4)
	o := opt.NewAdam(0.05)
	mk := func(n int) []data.Instance {
		batch := separableBatch(r, n)
		for i := range batch {
			if batch[i].Y < 0 {
				batch[i].Y = 0 // logistic convention
			}
		}
		return batch
	}
	for i := 0; i < 400; i++ {
		m.Update(mk(32), o)
	}
	test := mk(500)
	errs := 0
	for _, ins := range test {
		if m.Classify(ins.X) != ins.Y {
			errs++
		}
	}
	if rate := float64(errs) / float64(len(test)); rate > 0.05 {
		t.Fatalf("logreg error rate = %v", rate)
	}
	// probabilities in [0,1]
	p := m.Predict(linalg.Dense{10, 10})
	if p < 0 || p > 1 {
		t.Fatalf("probability out of range: %v", p)
	}
}

func TestModelNamesAndDims(t *testing.T) {
	cases := []struct {
		m    Model
		name string
	}{
		{NewSVM(3, 0), "svm"},
		{NewLinearRegression(3, 0), "linreg"},
		{NewLogisticRegression(3, 0), "logreg"},
	}
	for _, c := range cases {
		if c.m.Name() != c.name {
			t.Fatalf("Name = %q, want %q", c.m.Name(), c.name)
		}
		if c.m.Dim() != 3 {
			t.Fatalf("%s Dim = %d", c.name, c.m.Dim())
		}
		if len(c.m.Weights()) != 4 {
			t.Fatalf("%s weights length %d, want 4", c.name, len(c.m.Weights()))
		}
	}
}

func TestBadConstructionPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewSVM(0, 0) },
		func() { NewSVM(2, -1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestSetWeightsAndClone(t *testing.T) {
	m := NewSVM(2, 0.1)
	m.SetWeights([]float64{1, 2, 3})
	c := m.Clone().(*SVM)
	c.Weights()[0] = 99
	if m.Weights()[0] != 1 {
		t.Fatal("Clone shares weights")
	}
	if c.Reg() != 0.1 {
		t.Fatal("Clone lost regularization")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on wrong-length SetWeights")
		}
	}()
	m.SetWeights([]float64{1})
}

func TestPredictDimMismatchPanics(t *testing.T) {
	m := NewSVM(3, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m.Predict(linalg.Dense{1, 2})
}

func TestEmptyBatchPanics(t *testing.T) {
	m := NewSVM(2, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m.Gradient(nil)
}

func TestSVMGradientZeroOutsideMargin(t *testing.T) {
	m := NewSVM(2, 0)
	m.SetWeights([]float64{10, 0, 0})
	// x = (1,0), y = +1 → margin = 10 ≥ 1 → zero gradient
	g, loss := m.Gradient([]data.Instance{{X: linalg.Dense{1, 0}, Y: 1}})
	if loss != 0 {
		t.Fatalf("loss = %v", loss)
	}
	for i := 0; i < g.Dim(); i++ {
		if g.At(i) != 0 {
			t.Fatalf("gradient not zero at %d: %v", i, g.At(i))
		}
	}
}

func TestSVMClassifySign(t *testing.T) {
	m := NewSVM(1, 0)
	m.SetWeights([]float64{1, 0})
	if m.Classify(linalg.Dense{2}) != 1 || m.Classify(linalg.Dense{-2}) != -1 {
		t.Fatal("Classify sign wrong")
	}
}

func TestLinRegGradientMatchesFiniteDifference(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	m := NewLinearRegression(3, 0.05)
	m.SetWeights([]float64{0.3, -0.2, 0.7, 0.1})
	batch := regressionBatch(r, 8, 0.1)
	batch = append(batch, data.Instance{X: linalg.Dense{1, 2, 3}, Y: 4})
	for i := range batch {
		if batch[i].X.Dim() == 2 {
			d := batch[i].X.(linalg.Dense)
			batch[i].X = linalg.Dense{d[0], d[1], 0.5}
		}
	}
	g, _ := m.Gradient(batch)
	const eps = 1e-6
	obj := func(w []float64) float64 {
		old := linalg.CopyOf(m.Weights())
		m.SetWeights(w)
		var sum float64
		for _, ins := range batch {
			sum += m.Loss(ins.X, ins.Y)
		}
		sum /= float64(len(batch))
		// L2 term (no intercept)
		for i := 0; i < m.Dim(); i++ {
			sum += 0.5 * m.Reg() * w[i] * w[i]
		}
		m.SetWeights(old)
		return sum
	}
	w0 := linalg.CopyOf(m.Weights())
	for i := range w0 {
		wp := linalg.CopyOf(w0)
		wm := linalg.CopyOf(w0)
		wp[i] += eps
		wm[i] -= eps
		fd := (obj(wp) - obj(wm)) / (2 * eps)
		if math.Abs(fd-g.At(i)) > 1e-4 {
			t.Fatalf("coord %d: finite-diff %v vs gradient %v", i, fd, g.At(i))
		}
	}
}

func TestLogRegGradientMatchesFiniteDifference(t *testing.T) {
	m := NewLogisticRegression(2, 0.01)
	m.SetWeights([]float64{0.5, -0.5, 0.2})
	batch := []data.Instance{
		{X: linalg.Dense{1, 2}, Y: 1},
		{X: linalg.Dense{-1, 0.5}, Y: 0},
		{X: linalg.Dense{0.3, -1}, Y: 1},
	}
	g, _ := m.Gradient(batch)
	const eps = 1e-6
	obj := func(w []float64) float64 {
		old := linalg.CopyOf(m.Weights())
		m.SetWeights(w)
		var sum float64
		for _, ins := range batch {
			sum += m.Loss(ins.X, ins.Y)
		}
		sum /= float64(len(batch))
		for i := 0; i < m.Dim(); i++ {
			sum += 0.5 * m.Reg() * w[i] * w[i]
		}
		m.SetWeights(old)
		return sum
	}
	w0 := linalg.CopyOf(m.Weights())
	for i := range w0 {
		wp, wm := linalg.CopyOf(w0), linalg.CopyOf(w0)
		wp[i] += eps
		wm[i] -= eps
		fd := (obj(wp) - obj(wm)) / (2 * eps)
		if math.Abs(fd-g.At(i)) > 1e-5 {
			t.Fatalf("coord %d: finite-diff %v vs gradient %v", i, fd, g.At(i))
		}
	}
}

func TestSparseGradientStaysSparse(t *testing.T) {
	dim := 1000
	m := NewSVM(dim, 0.01)
	batch := []data.Instance{
		{X: linalg.NewSparse(dim, []int32{3, 500}, []float64{1, 1}), Y: 1},
		{X: linalg.NewSparse(dim, []int32{7}, []float64{2}), Y: -1},
	}
	g, _ := m.Gradient(batch)
	s, ok := g.(*linalg.Sparse)
	if !ok {
		t.Fatalf("gradient type %T, want *Sparse", g)
	}
	if s.NNZ() > 4 { // 3 feature coords + intercept
		t.Fatalf("gradient NNZ = %d, want ≤ 4", s.NNZ())
	}
}

func TestLogisticNumericalStability(t *testing.T) {
	m := NewLogisticRegression(1, 0)
	m.SetWeights([]float64{100, 0})
	if p := m.Predict(linalg.Dense{10}); p != 1 {
		if math.Abs(p-1) > 1e-9 {
			t.Fatalf("saturated probability = %v", p)
		}
	}
	if l := m.Loss(linalg.Dense{10}, 1); math.IsNaN(l) || math.IsInf(l, 0) || l > 1e-6 {
		t.Fatalf("stable loss wrong: %v", l)
	}
	if l := m.Loss(linalg.Dense{-10}, 1); math.IsNaN(l) || math.IsInf(l, 0) {
		t.Fatalf("loss overflowed: %v", l)
	}
}

// Property: one Update step with SGD decreases loss on that batch (convex
// losses, small step).
func TestQuickUpdateDecreasesBatchLoss(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := NewLinearRegression(2, 0)
		w := []float64{r.NormFloat64(), r.NormFloat64(), r.NormFloat64()}
		m.SetWeights(w)
		batch := regressionBatch(r, 16, 0.1)
		lossBefore := 0.0
		for _, ins := range batch {
			lossBefore += m.Loss(ins.X, ins.Y)
		}
		m.Update(batch, opt.NewSGD(0.01))
		lossAfter := 0.0
		for _, ins := range batch {
			lossAfter += m.Loss(ins.X, ins.Y)
		}
		return lossAfter <= lossBefore+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: conditional independence of SGD iterations (paper §3.3) — a
// model resumed from stored weights + optimizer state produces identical
// updates to one trained without interruption.
func TestQuickProactiveResumability(t *testing.T) {
	f := func(seed int64) bool {
		r1 := rand.New(rand.NewSource(seed))
		r2 := rand.New(rand.NewSource(seed))
		a := NewSVM(2, 1e-3)
		oa := opt.NewAdam(0.05)
		for i := 0; i < 5; i++ {
			a.Update(separableBatch(r1, 8), oa)
		}
		// Interrupt: snapshot weights + optimizer, resume on a clone.
		b := a.Clone().(*SVM)
		ob := oa.Clone()
		for i := 0; i < 5; i++ {
			_ = separableBatch(r2, 8) // drain r2 to align streams
		}
		for i := 0; i < 5; i++ {
			batch := separableBatch(r1, 8)
			batchCopy := make([]data.Instance, len(batch))
			copy(batchCopy, batch)
			a.Update(batch, oa)
			b.Update(batchCopy, ob)
		}
		wa, wb := a.Weights(), b.Weights()
		for i := range wa {
			if math.Abs(wa[i]-wb[i]) > 1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestRegularizationShrinksWeights(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	batch := regressionBatch(r, 200, 0.5)
	noReg := NewLinearRegression(2, 0)
	withReg := NewLinearRegression(2, 1.0)
	oa, ob := opt.NewSGD(0.05), opt.NewSGD(0.05)
	for i := 0; i < 300; i++ {
		noReg.Update(batch, oa)
		withReg.Update(batch, ob)
	}
	n0 := linalg.Norm2(noReg.Weights()[:2])
	n1 := linalg.Norm2(withReg.Weights()[:2])
	if n1 >= n0 {
		t.Fatalf("regularization did not shrink weights: %v vs %v", n1, n0)
	}
}
