package model

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"cdml/internal/data"
	"cdml/internal/linalg"
	"cdml/internal/opt"
)

// syntheticRatings builds a rating matrix from true latent factors and
// returns a batch sampler over observed entries.
type ratingsWorld struct {
	users, items, factors int
	uf, vf                [][]float64
	mu                    float64
}

func newRatingsWorld(r *rand.Rand, users, items, factors int) *ratingsWorld {
	w := &ratingsWorld{users: users, items: items, factors: factors, mu: 3.5}
	w.uf = make([][]float64, users)
	w.vf = make([][]float64, items)
	for u := range w.uf {
		w.uf[u] = make([]float64, factors)
		for k := range w.uf[u] {
			w.uf[u][k] = r.NormFloat64() * 0.6
		}
	}
	for i := range w.vf {
		w.vf[i] = make([]float64, factors)
		for k := range w.vf[i] {
			w.vf[i][k] = r.NormFloat64() * 0.6
		}
	}
	return w
}

func (w *ratingsWorld) rating(r *rand.Rand, u, i int) float64 {
	v := w.mu
	for k := 0; k < w.factors; k++ {
		v += w.uf[u][k] * w.vf[i][k]
	}
	return v + 0.1*r.NormFloat64()
}

func (w *ratingsWorld) batch(r *rand.Rand, n int) []data.Instance {
	out := make([]data.Instance, n)
	for k := range out {
		u, i := r.Intn(w.users), r.Intn(w.items)
		out[k] = data.Instance{
			X: EncodePair(w.users, w.items, u, i),
			Y: w.rating(r, u, i),
		}
	}
	return out
}

func TestMFLearnsLatentStructure(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	world := newRatingsWorld(r, 40, 60, 3)
	m := NewMF(40, 60, 4, 1e-3, 7)
	o := opt.NewAdam(0.05)
	for it := 0; it < 3000; it++ {
		m.Update(world.batch(r, 32), o)
	}
	var sse float64
	const nTest = 500
	for k := 0; k < nTest; k++ {
		u, i := r.Intn(40), r.Intn(60)
		d := m.PredictPair(u, i) - world.rating(r, u, i)
		sse += d * d
	}
	rmse := math.Sqrt(sse / nTest)
	// Rating std from latent structure ≈ 1; a fitted model should be near
	// the noise floor.
	if rmse > 0.45 {
		t.Fatalf("MF RMSE = %v, want < 0.45", rmse)
	}
}

func TestMFBiasOnlyBaseline(t *testing.T) {
	// With zero latent signal, MF should recover the global mean.
	r := rand.New(rand.NewSource(2))
	m := NewMF(10, 10, 2, 1e-3, 3)
	o := opt.NewAdam(0.05)
	for it := 0; it < 500; it++ {
		batch := make([]data.Instance, 16)
		for k := range batch {
			batch[k] = data.Instance{
				X: EncodePair(10, 10, r.Intn(10), r.Intn(10)),
				Y: 4.2,
			}
		}
		m.Update(batch, o)
	}
	if math.Abs(m.PredictPair(3, 7)-4.2) > 0.1 {
		t.Fatalf("constant ratings not recovered: %v", m.PredictPair(3, 7))
	}
}

func TestMFPairDecoding(t *testing.T) {
	m := NewMF(5, 7, 2, 0, 1)
	x := EncodePair(5, 7, 3, 6)
	u, i, err := m.pair(x)
	if err != nil || u != 3 || i != 6 {
		t.Fatalf("pair = (%d, %d), err %v", u, i, err)
	}
}

func TestMFRejectsBadInput(t *testing.T) {
	m := NewMF(5, 7, 2, 0, 1)
	cases := []linalg.Vector{
		linalg.Dense{1, 0},
		linalg.NewSparse(12, []int32{1}, []float64{1}),             // 1-hot
		linalg.NewSparse(12, []int32{0, 1, 2}, []float64{1, 1, 1}), // 3-hot
		linalg.NewSparse(12, []int32{6, 7}, []float64{1, 1}),       // two items, no user
	}
	for k, x := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", k)
				}
			}()
			m.Predict(x)
		}()
	}
}

func TestMFGradientMatchesFiniteDifference(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	m := NewMF(4, 5, 2, 0.01, 11)
	batch := []data.Instance{
		{X: EncodePair(4, 5, 0, 2), Y: 4},
		{X: EncodePair(4, 5, 3, 0), Y: 2},
		{X: EncodePair(4, 5, 1, 4), Y: 5},
	}
	g, _ := m.Gradient(batch)
	obj := func(w []float64) float64 {
		old := linalg.CopyOf(m.Weights())
		m.SetWeights(w)
		var sum float64
		for _, ins := range batch {
			sum += m.Loss(ins.X, ins.Y)
			// L2 on the touched parameters, matching the lazy scheme.
			u, i, _ := m.pair(ins.X)
			reg := 0.5 * 0.01 * (m.w[u]*m.w[u] + m.w[m.Users+i]*m.w[m.Users+i])
			pu, qi := m.userFactors(u), m.itemFactors(i)
			for k := 0; k < m.Factors; k++ {
				reg += 0.5 * 0.01 * (pu[k]*pu[k] + qi[k]*qi[k])
			}
			sum += reg
		}
		sum /= float64(len(batch))
		m.SetWeights(old)
		return sum
	}
	const eps = 1e-6
	w0 := linalg.CopyOf(m.Weights())
	// Spot-check a handful of random coordinates plus the global bias.
	coords := []int{len(w0) - 1}
	for k := 0; k < 10; k++ {
		coords = append(coords, r.Intn(len(w0)-1))
	}
	for _, c := range coords {
		wp, wm := linalg.CopyOf(w0), linalg.CopyOf(w0)
		wp[c] += eps
		wm[c] -= eps
		fd := (obj(wp) - obj(wm)) / (2 * eps)
		if math.Abs(fd-g.At(c)) > 1e-4 {
			t.Fatalf("coord %d: finite-diff %v vs gradient %v", c, fd, g.At(c))
		}
	}
}

func TestMFCloneAndPersist(t *testing.T) {
	m := NewMF(3, 4, 2, 0.1, 5)
	c := m.Clone().(*MF)
	c.Weights()[0] = 99
	if m.Weights()[0] == 99 {
		t.Fatal("Clone shares weights")
	}
	var buf bytes.Buffer
	if err := Save(&buf, m); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	mf, ok := got.(*MF)
	if !ok {
		t.Fatalf("loaded %T", got)
	}
	if mf.Users != 3 || mf.Items != 4 || mf.Factors != 2 {
		t.Fatalf("shape lost: %+v", mf)
	}
	if mf.PredictPair(1, 2) != m.PredictPair(1, 2) {
		t.Fatal("predictions changed after round trip")
	}
}

func TestMFBadShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewMF(0, 5, 2, 0, 1)
}

func TestMFPredictPairRangePanics(t *testing.T) {
	m := NewMF(2, 2, 1, 0, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m.PredictPair(2, 0)
}

func TestMFProactiveResumability(t *testing.T) {
	// The conditional-independence property must hold for MF too: a clone
	// resumed with a cloned optimizer matches the uninterrupted run.
	r1 := rand.New(rand.NewSource(9))
	r2 := rand.New(rand.NewSource(9))
	world1 := newRatingsWorld(r1, 8, 8, 2)
	world2 := newRatingsWorld(r2, 8, 8, 2)
	a := NewMF(8, 8, 2, 1e-3, 1)
	oa := opt.NewAdam(0.05)
	for it := 0; it < 5; it++ {
		a.Update(world1.batch(r1, 8), oa)
		world2.batch(r2, 8) // keep streams aligned
	}
	b := a.Clone().(*MF)
	ob := oa.Clone()
	for it := 0; it < 5; it++ {
		batch := world1.batch(r1, 8)
		a.Update(batch, oa)
		b.Update(batch, ob)
	}
	for i := range a.Weights() {
		if math.Abs(a.Weights()[i]-b.Weights()[i]) > 1e-12 {
			t.Fatal("resumed MF diverged")
		}
	}
}
