package model

import (
	"math"

	"cdml/internal/data"
	"cdml/internal/linalg"
	"cdml/internal/opt"
)

// SVM is a linear support vector machine trained with hinge loss, the
// classifier of the paper's URL pipeline. Labels must be −1 or +1.
type SVM struct {
	base
}

// NewSVM returns an SVM over dim features with L2 regularization reg.
func NewSVM(dim int, reg float64) *SVM {
	return &SVM{base: newBase(dim, reg)}
}

// Name implements Model.
func (m *SVM) Name() string { return "svm" }

// Predict implements Model: the raw margin w·x + b.
//
//cdml:hotpath
func (m *SVM) Predict(x linalg.Vector) float64 { return m.score(x) }

// Classify returns the predicted class label in {−1, +1}.
//
//cdml:hotpath
func (m *SVM) Classify(x linalg.Vector) float64 {
	if m.score(x) >= 0 {
		return 1
	}
	return -1
}

// Loss implements Model: hinge loss max(0, 1 − y·score).
func (m *SVM) Loss(x linalg.Vector, y float64) float64 {
	return math.Max(0, 1-y*m.score(x))
}

// hingeScale is the per-example multiplier/loss of the hinge objective.
//
//cdml:hotpath
func hingeScale(score, y float64) (float64, float64) {
	margin := y * score
	if margin >= 1 {
		return 0, 0
	}
	return -y, 1 - margin
}

// Gradient implements Model.
func (m *SVM) Gradient(batch []data.Instance) (linalg.Vector, float64) {
	return m.gradient(batch, hingeScale)
}

// GradientSum implements Model.
//cdml:deterministic
func (m *SVM) GradientSum(batch []data.Instance) (linalg.Vector, float64) {
	return m.gradientSum(batch, hingeScale)
}

// Update implements Model.
func (m *SVM) Update(batch []data.Instance, o opt.Optimizer) float64 {
	g, loss := m.Gradient(batch)
	m.Apply(g, o)
	return loss
}

// Clone implements Model.
func (m *SVM) Clone() Model {
	c := &SVM{base: base{w: linalg.CopyOf(m.w), reg: m.reg}}
	return c
}

// LinearRegression is least-squares linear regression, the model of the
// paper's Taxi pipeline.
type LinearRegression struct {
	base
}

// NewLinearRegression returns a linear regression over dim features with L2
// regularization reg.
func NewLinearRegression(dim int, reg float64) *LinearRegression {
	return &LinearRegression{base: newBase(dim, reg)}
}

// Name implements Model.
func (m *LinearRegression) Name() string { return "linreg" }

// Predict implements Model.
//
//cdml:hotpath
func (m *LinearRegression) Predict(x linalg.Vector) float64 { return m.score(x) }

// Loss implements Model: squared loss ½(score − y)².
func (m *LinearRegression) Loss(x linalg.Vector, y float64) float64 {
	r := m.score(x) - y
	return 0.5 * r * r
}

// squaredScale is the per-example multiplier/loss of the squared objective.
//
//cdml:hotpath
func squaredScale(score, y float64) (float64, float64) {
	r := score - y
	return r, 0.5 * r * r
}

// Gradient implements Model.
func (m *LinearRegression) Gradient(batch []data.Instance) (linalg.Vector, float64) {
	return m.gradient(batch, squaredScale)
}

// GradientSum implements Model.
//cdml:deterministic
func (m *LinearRegression) GradientSum(batch []data.Instance) (linalg.Vector, float64) {
	return m.gradientSum(batch, squaredScale)
}

// Update implements Model.
func (m *LinearRegression) Update(batch []data.Instance, o opt.Optimizer) float64 {
	g, loss := m.Gradient(batch)
	m.Apply(g, o)
	return loss
}

// Clone implements Model.
func (m *LinearRegression) Clone() Model {
	return &LinearRegression{base: base{w: linalg.CopyOf(m.w), reg: m.reg}}
}

// LogisticRegression is binary logistic regression. Labels must be 0 or 1.
type LogisticRegression struct {
	base
}

// NewLogisticRegression returns a logistic regression over dim features
// with L2 regularization reg.
func NewLogisticRegression(dim int, reg float64) *LogisticRegression {
	return &LogisticRegression{base: newBase(dim, reg)}
}

// Name implements Model.
func (m *LogisticRegression) Name() string { return "logreg" }

// Predict implements Model: the probability P(y=1|x).
//
//cdml:hotpath
func (m *LogisticRegression) Predict(x linalg.Vector) float64 {
	return sigmoid(m.score(x))
}

// Classify returns the predicted class label in {0, 1}.
//
//cdml:hotpath
func (m *LogisticRegression) Classify(x linalg.Vector) float64 {
	if m.score(x) >= 0 {
		return 1
	}
	return 0
}

// Loss implements Model: the logistic (cross-entropy) loss, computed in a
// numerically stable form.
func (m *LogisticRegression) Loss(x linalg.Vector, y float64) float64 {
	s := m.score(x)
	// log(1+e^s) − y·s, stabilized
	return logOnePlusExp(s) - y*s
}

// logisticScale is the per-example multiplier/loss of the logistic
// objective.
//
//cdml:hotpath
func logisticScale(score, y float64) (float64, float64) {
	return sigmoid(score) - y, logOnePlusExp(score) - y*score
}

// Gradient implements Model.
func (m *LogisticRegression) Gradient(batch []data.Instance) (linalg.Vector, float64) {
	return m.gradient(batch, logisticScale)
}

// GradientSum implements Model.
//cdml:deterministic
func (m *LogisticRegression) GradientSum(batch []data.Instance) (linalg.Vector, float64) {
	return m.gradientSum(batch, logisticScale)
}

// Update implements Model.
func (m *LogisticRegression) Update(batch []data.Instance, o opt.Optimizer) float64 {
	g, loss := m.Gradient(batch)
	m.Apply(g, o)
	return loss
}

// Clone implements Model.
func (m *LogisticRegression) Clone() Model {
	return &LogisticRegression{base: base{w: linalg.CopyOf(m.w), reg: m.reg}}
}

//cdml:hotpath
func sigmoid(s float64) float64 {
	if s >= 0 {
		return 1 / (1 + math.Exp(-s))
	}
	e := math.Exp(s)
	return e / (1 + e)
}

// logOnePlusExp computes log(1 + e^s) without overflow.
//
//cdml:hotpath
func logOnePlusExp(s float64) float64 {
	if s > 35 {
		return s
	}
	if s < -35 {
		return math.Exp(s)
	}
	return math.Log1p(math.Exp(s))
}
