package model

import (
	"fmt"
	"math"

	"cdml/internal/data"
	"cdml/internal/linalg"
	"cdml/internal/opt"
)

// KMeans is mini-batch k-means expressed as an SGD model, demonstrating the
// platform's claim (paper §3.3, citing Bottou & Bengio) that proactive
// training applies to any SGD-trainable method, clustering included. The k
// centroids are flattened into the weight vector (k·dim coordinates; the
// trailing intercept slot stays zero). Each example contributes the
// gradient of ½·||x − c_nearest||² with respect to its nearest centroid,
// and labels are ignored.
type KMeans struct {
	base
	// K is the number of centroids.
	K int
	// FeatureDim is the dimensionality of one input point.
	FeatureDim int
}

// NewKMeans returns a k-means model over dim-dimensional points. Centroids
// start at zero; callers typically seed them with Init on a first batch.
func NewKMeans(k, dim int) *KMeans {
	if k <= 0 {
		panic(fmt.Sprintf("model: non-positive cluster count %d", k))
	}
	return &KMeans{base: newBase(k*dim, 0), K: k, FeatureDim: dim}
}

// Name implements Model.
func (m *KMeans) Name() string { return "kmeans" }

// Centroid returns centroid j as a mutable slice view into the weights.
func (m *KMeans) Centroid(j int) []float64 {
	if j < 0 || j >= m.K {
		panic(fmt.Sprintf("model: centroid %d out of range [0,%d)", j, m.K))
	}
	return m.w[j*m.FeatureDim : (j+1)*m.FeatureDim]
}

// Init seeds the centroids from the first k distinct-ish points of a batch.
func (m *KMeans) Init(batch []data.Instance) {
	for j := 0; j < m.K && j < len(batch); j++ {
		c := m.Centroid(j)
		x := batch[j].X
		for i := 0; i < m.FeatureDim && i < x.Dim(); i++ {
			c[i] = x.At(i)
		}
	}
}

// Assign returns the index of the nearest centroid and the squared distance
// to it.
func (m *KMeans) Assign(x linalg.Vector) (int, float64) {
	if x.Dim() != m.FeatureDim {
		panic(fmt.Sprintf("model: k-means input dim %d, want %d", x.Dim(), m.FeatureDim))
	}
	best, bestDist := 0, math.Inf(1)
	for j := 0; j < m.K; j++ {
		c := m.Centroid(j)
		var dist float64
		switch t := x.(type) {
		case linalg.Dense:
			for i, v := range t {
				d := v - c[i]
				dist += d * d
			}
		default:
			// ||x||² − 2·x·c + ||c||², with the sparse dot doing the work.
			var cNorm float64
			for _, v := range c {
				cNorm += v * v
			}
			xNorm := x.L2()
			dist = xNorm*xNorm - 2*x.Dot(c) + cNorm
		}
		if dist < bestDist {
			best, bestDist = j, dist
		}
	}
	return best, bestDist
}

// Predict implements Model: the index of the nearest centroid (as a
// float64, so the platform's Predictor plumbing applies unchanged).
func (m *KMeans) Predict(x linalg.Vector) float64 {
	j, _ := m.Assign(x)
	return float64(j)
}

// Loss implements Model: half the squared distance to the nearest centroid
// (the quantization error). The label is ignored.
func (m *KMeans) Loss(x linalg.Vector, y float64) float64 {
	_, dist := m.Assign(x)
	return 0.5 * dist
}

// Gradient implements Model: the mean gradient of the quantization error
// with respect to the flattened centroids.
func (m *KMeans) Gradient(batch []data.Instance) (linalg.Vector, float64) {
	sum, lossSum := m.GradientSum(batch)
	return m.finishGradient(sum, lossSum, len(batch))
}

// GradientSum implements Model: the unaveraged quantization-error gradient
// sum over a batch shard. Assignments read the current centroids only, so
// shards may run concurrently.
//cdml:deterministic
func (m *KMeans) GradientSum(batch []data.Instance) (linalg.Vector, float64) {
	if len(batch) == 0 {
		panic("model: empty mini-batch")
	}
	acc := linalg.NewAccumulator(len(m.w))
	var lossSum float64
	for _, ins := range batch {
		j, dist := m.Assign(ins.X)
		lossSum += 0.5 * dist
		// ∂/∂c_j ½||x − c_j||² = c_j − x
		off := j * m.FeatureDim
		c := m.Centroid(j)
		switch t := ins.X.(type) {
		case linalg.Dense:
			for i, v := range t {
				acc.AddCoord(off+i, c[i]-v)
			}
		case *linalg.Sparse:
			// Contribution from stored coordinates: c_i − x_i; from the
			// implicit zeros: c_i. Together: add c fully, subtract x where
			// stored.
			for i, v := range c {
				//lint:allow floateq: skips exactly-zero coordinates; a near-zero centroid entry must still contribute
				if v != 0 {
					acc.AddCoord(off+i, v)
				}
			}
			for k, i := range t.Idx {
				acc.AddCoord(off+int(i), -t.Val[k])
			}
		default:
			for i := 0; i < m.FeatureDim; i++ {
				acc.AddCoord(off+i, c[i]-ins.X.At(i))
			}
		}
	}
	return acc.Result(1), lossSum
}

// Update implements Model.
func (m *KMeans) Update(batch []data.Instance, o opt.Optimizer) float64 {
	g, loss := m.Gradient(batch)
	m.Apply(g, o)
	return loss
}

// Clone implements Model.
func (m *KMeans) Clone() Model {
	return &KMeans{
		base:       base{w: linalg.CopyOf(m.w), reg: m.reg},
		K:          m.K,
		FeatureDim: m.FeatureDim,
	}
}
