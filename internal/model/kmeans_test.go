package model

import (
	"bytes"
	"math"
	"math/rand"
	"path/filepath"
	"testing"

	"cdml/internal/data"
	"cdml/internal/linalg"
	"cdml/internal/opt"
)

// threeBlobs draws points from three well-separated Gaussian clusters.
func threeBlobs(r *rand.Rand, n int) []data.Instance {
	centers := [][2]float64{{0, 0}, {10, 0}, {0, 10}}
	out := make([]data.Instance, n)
	for i := range out {
		c := centers[r.Intn(3)]
		out[i] = data.Instance{
			X: linalg.Dense{c[0] + 0.5*r.NormFloat64(), c[1] + 0.5*r.NormFloat64()},
			Y: 0, // labels ignored
		}
	}
	return out
}

func TestKMeansClustersBlobs(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	m := NewKMeans(3, 2)
	init := []data.Instance{
		{X: linalg.Dense{1, 1}},
		{X: linalg.Dense{9, 1}},
		{X: linalg.Dense{1, 9}},
	}
	m.Init(init)
	o := opt.NewSGD(0.1)
	for i := 0; i < 300; i++ {
		m.Update(threeBlobs(r, 32), o)
	}
	// Each true center must have a centroid within distance 1.
	for _, c := range [][2]float64{{0, 0}, {10, 0}, {0, 10}} {
		bestDist := math.Inf(1)
		for j := 0; j < 3; j++ {
			cj := m.Centroid(j)
			d := math.Hypot(cj[0]-c[0], cj[1]-c[1])
			if d < bestDist {
				bestDist = d
			}
		}
		if bestDist > 1 {
			t.Fatalf("no centroid near (%v,%v): nearest at distance %v", c[0], c[1], bestDist)
		}
	}
	// Quantization loss must be low.
	test := threeBlobs(r, 200)
	var loss float64
	for _, in := range test {
		loss += m.Loss(in.X, 0)
	}
	if loss/200 > 1 {
		t.Fatalf("quantization loss %v too high", loss/200)
	}
}

func TestKMeansAssignAndPredict(t *testing.T) {
	m := NewKMeans(2, 2)
	copy(m.Centroid(0), []float64{0, 0})
	copy(m.Centroid(1), []float64{10, 10})
	j, dist := m.Assign(linalg.Dense{1, 1})
	if j != 0 || math.Abs(dist-2) > 1e-9 {
		t.Fatalf("Assign = %d, %v", j, dist)
	}
	if m.Predict(linalg.Dense{9, 9}) != 1 {
		t.Fatal("Predict wrong cluster")
	}
}

func TestKMeansSparseAgreement(t *testing.T) {
	m := NewKMeans(2, 4)
	copy(m.Centroid(0), []float64{1, 0, 2, 0})
	copy(m.Centroid(1), []float64{-5, -5, -5, -5})
	sx := linalg.NewSparse(4, []int32{0, 2}, []float64{1, 2})
	dx := sx.ToDense()
	js, ds := m.Assign(sx)
	jd, dd := m.Assign(dx)
	if js != jd || math.Abs(ds-dd) > 1e-9 {
		t.Fatalf("sparse/dense Assign disagree: (%d,%v) vs (%d,%v)", js, ds, jd, dd)
	}
	// Gradient agreement.
	gs, ls := m.Gradient([]data.Instance{{X: sx}})
	gd, ld := m.Gradient([]data.Instance{{X: dx}})
	if math.Abs(ls-ld) > 1e-9 {
		t.Fatalf("losses differ: %v vs %v", ls, ld)
	}
	for i := 0; i < gs.Dim(); i++ {
		if math.Abs(gs.At(i)-gd.At(i)) > 1e-9 {
			t.Fatalf("gradients differ at %d: %v vs %v", i, gs.At(i), gd.At(i))
		}
	}
}

func TestKMeansGradientPullsCentroidTowardPoint(t *testing.T) {
	m := NewKMeans(1, 2)
	copy(m.Centroid(0), []float64{5, 5})
	batch := []data.Instance{{X: linalg.Dense{0, 0}}}
	before := m.Loss(batch[0].X, 0)
	m.Update(batch, opt.NewSGD(0.1))
	after := m.Loss(batch[0].X, 0)
	if after >= before {
		t.Fatalf("update did not reduce quantization error: %v → %v", before, after)
	}
}

func TestKMeansBadConstructionPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewKMeans(0, 2)
}

func TestKMeansCentroidRangePanics(t *testing.T) {
	m := NewKMeans(2, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m.Centroid(2)
}

func TestKMeansDimMismatchPanics(t *testing.T) {
	m := NewKMeans(2, 3)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m.Assign(linalg.Dense{1, 2})
}

func TestKMeansClone(t *testing.T) {
	m := NewKMeans(2, 2)
	copy(m.Centroid(0), []float64{1, 2})
	c := m.Clone().(*KMeans)
	c.Centroid(0)[0] = 99
	if m.Centroid(0)[0] != 1 {
		t.Fatal("Clone shares centroids")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	models := []Model{
		func() Model { m := NewSVM(3, 0.1); m.SetWeights([]float64{1, 2, 3, 4}); return m }(),
		func() Model { m := NewLinearRegression(2, 0.2); m.SetWeights([]float64{5, 6, 7}); return m }(),
		func() Model { m := NewLogisticRegression(2, 0); m.SetWeights([]float64{8, 9, 10}); return m }(),
		func() Model {
			m := NewKMeans(2, 2)
			copy(m.Centroid(0), []float64{1, 2})
			copy(m.Centroid(1), []float64{3, 4})
			return m
		}(),
	}
	for _, m := range models {
		var buf bytes.Buffer
		if err := Save(&buf, m); err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
		got, err := Load(&buf)
		if err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
		if got.Name() != m.Name() || got.Dim() != m.Dim() {
			t.Fatalf("%s: round trip changed identity to %s/%d", m.Name(), got.Name(), got.Dim())
		}
		for i, w := range m.Weights() {
			if got.Weights()[i] != w {
				t.Fatalf("%s: weight %d = %v, want %v", m.Name(), i, got.Weights()[i], w)
			}
		}
	}
}

func TestSaveLoadFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "model.gob")
	m := NewSVM(2, 0.1)
	m.SetWeights([]float64{1, 2, 3})
	if err := SaveFile(path, m); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Weights()[2] != 3 {
		t.Fatal("file round trip lost weights")
	}
	if _, err := LoadFile(filepath.Join(t.TempDir(), "missing.gob")); err == nil {
		t.Fatal("expected error for missing file")
	}
}

func TestLoadGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("junk"))); err == nil {
		t.Fatal("expected decode error")
	}
}

func TestPredictionsSurviveRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	m := NewSVM(4, 1e-3)
	for i := 0; i < 50; i++ {
		batch := make([]data.Instance, 8)
		for k := range batch {
			x := linalg.Dense{r.NormFloat64(), r.NormFloat64(), r.NormFloat64(), r.NormFloat64()}
			y := 1.0
			if x[0]+x[1] < 0 {
				y = -1
			}
			batch[k] = data.Instance{X: x, Y: y}
		}
		m.Update(batch, opt.NewSGD(0.05))
	}
	var buf bytes.Buffer
	if err := Save(&buf, m); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		x := linalg.Dense{r.NormFloat64(), r.NormFloat64(), r.NormFloat64(), r.NormFloat64()}
		if m.Predict(x) != got.Predict(x) {
			t.Fatal("prediction changed after round trip")
		}
	}
}
