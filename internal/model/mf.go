package model

import (
	"fmt"
	"math/rand"

	"cdml/internal/data"
	"cdml/internal/linalg"
	"cdml/internal/opt"
)

// MF is biased matrix factorization for rating prediction, trained with
// SGD — the recommender-systems use of SGD the paper cites (Koren et al.,
// §2.1 [19]): r̂(u,i) = μ + b_u + b_i + p_u·q_i.
//
// Instances encode a (user, item) pair as a 2-hot sparse vector over
// dimension Users+Items: coordinate u set to 1 for the user and Users+i
// for the item, with the rating as the label. The flattened weight layout
// is [user biases | item biases | user factors | item factors | μ], so the
// whole model trains through the same Optimizer machinery as the linear
// models and the proactive trainer needs nothing special.
type MF struct {
	base
	// Users and Items bound the id spaces.
	Users, Items int
	// Factors is the latent dimensionality.
	Factors int
}

// NewMF returns a matrix factorization model with reg L2 regularization on
// biases and factors. Latent factors are initialized to small random
// values from seed (symmetric zero initialization would never break the
// factor symmetry).
func NewMF(users, items, factors int, reg float64, seed int64) *MF {
	if users <= 0 || items <= 0 || factors <= 0 {
		panic(fmt.Sprintf("model: invalid MF shape users=%d items=%d factors=%d", users, items, factors))
	}
	dim := users + items + users*factors + items*factors
	m := &MF{
		base:    newBase(dim, reg),
		Users:   users,
		Items:   items,
		Factors: factors,
	}
	r := rand.New(rand.NewSource(seed))
	for k := users + items; k < dim; k++ {
		m.w[k] = 0.1 * r.NormFloat64()
	}
	return m
}

// Name implements Model.
func (m *MF) Name() string { return "mf" }

// userFactors returns the latent factor slice of user u.
func (m *MF) userFactors(u int) []float64 {
	off := m.Users + m.Items + u*m.Factors
	return m.w[off : off+m.Factors]
}

// itemFactors returns the latent factor slice of item i.
func (m *MF) itemFactors(i int) []float64 {
	off := m.Users + m.Items + m.Users*m.Factors + i*m.Factors
	return m.w[off : off+m.Factors]
}

// mu returns the global bias (stored in the intercept slot).
func (m *MF) mu() float64 { return m.w[len(m.w)-1] }

// pair decodes the (user, item) encoded in a 2-hot instance vector.
func (m *MF) pair(x linalg.Vector) (int, int, error) {
	s, ok := x.(*linalg.Sparse)
	if !ok || s.NNZ() != 2 {
		return 0, 0, fmt.Errorf("model: MF input must be a 2-hot sparse vector, got %T with %d non-zeros", x, x.NNZ())
	}
	u := int(s.Idx[0])
	i := int(s.Idx[1]) - m.Users
	if u < 0 || u >= m.Users || i < 0 || i >= m.Items {
		return 0, 0, fmt.Errorf("model: MF pair (%d, %d) out of range (%d users, %d items)", u, i, m.Users, m.Items)
	}
	return u, i, nil
}

// PredictPair returns the predicted rating for an explicit (user, item)
// pair.
func (m *MF) PredictPair(u, i int) float64 {
	if u < 0 || u >= m.Users || i < 0 || i >= m.Items {
		panic(fmt.Sprintf("model: MF pair (%d, %d) out of range", u, i))
	}
	pred := m.mu() + m.w[u] + m.w[m.Users+i]
	pu, qi := m.userFactors(u), m.itemFactors(i)
	for k := 0; k < m.Factors; k++ {
		pred += pu[k] * qi[k]
	}
	return pred
}

// Predict implements Model.
func (m *MF) Predict(x linalg.Vector) float64 {
	u, i, err := m.pair(x)
	if err != nil {
		panic(err)
	}
	return m.PredictPair(u, i)
}

// Loss implements Model: squared rating error.
func (m *MF) Loss(x linalg.Vector, y float64) float64 {
	r := m.Predict(x) - y
	return 0.5 * r * r
}

// Gradient implements Model: the mean squared-error gradient over the
// batch's touched biases and factors, with L2 regularization applied to
// the touched parameters.
func (m *MF) Gradient(batch []data.Instance) (linalg.Vector, float64) {
	sum, lossSum := m.GradientSum(batch)
	inv := 1 / float64(len(batch))
	return scaleVec(sum, inv), lossSum * inv
}

// GradientSum implements Model: the unaveraged gradient sum over a batch
// shard. Unlike the linear family, MF's regularization is per-example
// (each occurrence of a user/item regularizes its own parameters), so the
// reg terms live inside the partial sums and Reduce must not add them
// again.
//cdml:deterministic
func (m *MF) GradientSum(batch []data.Instance) (linalg.Vector, float64) {
	if len(batch) == 0 {
		panic("model: empty mini-batch")
	}
	acc := linalg.NewAccumulator(len(m.w))
	var lossSum float64
	factorBase := m.Users + m.Items
	itemBase := factorBase + m.Users*m.Factors
	for _, ins := range batch {
		u, i, err := m.pair(ins.X)
		if err != nil {
			panic(err)
		}
		e := m.PredictPair(u, i) - ins.Y
		lossSum += 0.5 * e * e
		// biases
		acc.AddCoord(u, e+m.reg*m.w[u])
		acc.AddCoord(m.Users+i, e+m.reg*m.w[m.Users+i])
		acc.AddCoord(len(m.w)-1, e) // global bias, unregularized
		// factors
		pu, qi := m.userFactors(u), m.itemFactors(i)
		for k := 0; k < m.Factors; k++ {
			acc.AddCoord(factorBase+u*m.Factors+k, e*qi[k]+m.reg*pu[k])
			acc.AddCoord(itemBase+i*m.Factors+k, e*pu[k]+m.reg*qi[k])
		}
	}
	return acc.Result(1), lossSum
}

// Reduce implements Model, overriding the base: partial sums combine in
// shard order and are only averaged — regularization is already inside the
// per-example contributions of GradientSum.
//cdml:deterministic
func (m *MF) Reduce(partials []linalg.Vector, lossSums []float64, n int) (linalg.Vector, float64) {
	inv := 1 / float64(n)
	g := scaleVec(linalg.ReduceSum(len(m.w), partials), inv)
	return g, sumOrdered(lossSums) * inv
}

// Update implements Model.
func (m *MF) Update(batch []data.Instance, o opt.Optimizer) float64 {
	g, loss := m.Gradient(batch)
	m.Apply(g, o)
	return loss
}

// Clone implements Model.
func (m *MF) Clone() Model {
	return &MF{
		base:    base{w: linalg.CopyOf(m.w), reg: m.reg},
		Users:   m.Users,
		Items:   m.Items,
		Factors: m.Factors,
	}
}

// EncodePair builds the 2-hot instance vector for a (user, item) pair over
// the model's id spaces.
func EncodePair(users, items, u, i int) *linalg.Sparse {
	return linalg.NewSparse(users+items, []int32{int32(u), int32(users + i)}, []float64{1, 1})
}
