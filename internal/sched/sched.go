// Package sched implements the platform's proactive-training scheduler
// (paper §4.1). Static scheduling fires at a user-defined interval; dynamic
// scheduling derives the next execution time from the last proactive
// training's duration, the prediction-query rate, and the prediction
// latency via Formula (6): T' = S · T · pr · pl.
package sched

import (
	"fmt"
	"math"
	"sync/atomic"
	"time"

	"cdml/internal/stats"
)

// Scheduler decides when the next proactive training runs.
type Scheduler interface {
	// Name identifies the scheduling policy ("static" or "dynamic").
	Name() string
	// Due reports whether a proactive training should run at time now.
	Due(now time.Time) bool
	// TrainingDone informs the scheduler that a proactive training just
	// completed, taking d of wall-clock time.
	TrainingDone(now time.Time, d time.Duration)
	// ObservePrediction feeds one served prediction query and its latency
	// into the scheduler's load statistics.
	ObservePrediction(now time.Time, latency time.Duration)
	// ObserveQueries feeds a batch of n served queries that together took
	// total of serving time, ending at now. The platform serves whole
	// chunks, so this is the natural reporting grain.
	ObserveQueries(now time.Time, n int, total time.Duration)
}

// LoadStats is implemented by schedulers that expose their observed serving
// load — the inputs of Formula (6). Readers may call these from any
// goroutine (e.g. a metrics scrape) while the deployment loop keeps
// observing; implementations must make the reads race-free.
type LoadStats interface {
	// QueryRate returns the observed prediction-query rate pr
	// (queries/second).
	QueryRate() float64
	// QueryLatency returns the observed prediction latency pl
	// (seconds/query).
	QueryLatency() float64
}

// Static fires every Interval, the simple mechanism for "update every
// minute" use cases.
type Static struct {
	// Interval separates consecutive proactive trainings.
	Interval time.Duration

	next time.Time
}

// NewStatic returns a static scheduler. The first training is due
// immediately.
func NewStatic(interval time.Duration) *Static {
	if interval <= 0 {
		panic(fmt.Sprintf("sched: non-positive interval %v", interval))
	}
	return &Static{Interval: interval}
}

// Name implements Scheduler.
func (s *Static) Name() string { return "static" }

// Due implements Scheduler.
func (s *Static) Due(now time.Time) bool {
	return !now.Before(s.next)
}

// TrainingDone implements Scheduler.
func (s *Static) TrainingDone(now time.Time, d time.Duration) {
	s.next = now.Add(s.Interval)
}

// ObservePrediction implements Scheduler (static scheduling ignores load).
func (s *Static) ObservePrediction(now time.Time, latency time.Duration) {}

// ObserveQueries implements Scheduler (static scheduling ignores load).
func (s *Static) ObserveQueries(now time.Time, n int, total time.Duration) {}

// Dynamic schedules the next training T' = S·T·pr·pl seconds after the
// last one, where T is the last training duration, pr the average
// prediction-query rate (queries/second), pl the average prediction latency
// (seconds/query), and S the user's slack parameter. Slack ≥ 2 favors query
// answering; 1 ≤ S < 2 favors training (paper §4.1). The formula guarantees
// T' exceeds the time needed to serve the queries arriving during training
// (T·pr·pl) whenever S ≥ 1.
type Dynamic struct {
	// Slack is the user-defined surge hint S (must be ≥ 1).
	Slack float64
	// MinInterval floors the computed interval so an idle platform (no
	// queries yet) still trains at a bounded rate.
	MinInterval time.Duration

	next      time.Time
	rate      *stats.EWMA // queries per second
	latency   *stats.EWMA // seconds per query
	lastQuery time.Time

	// rateBits/latBits mirror the EWMA values as atomically readable
	// float64 bits so QueryRate/QueryLatency can be scraped from another
	// goroutine without taking the deployment lock.
	rateBits atomic.Uint64
	latBits  atomic.Uint64
}

// NewDynamic returns a dynamic scheduler with the given slack.
func NewDynamic(slack float64, minInterval time.Duration) *Dynamic {
	if slack < 1 {
		panic(fmt.Sprintf("sched: slack must be ≥ 1, got %v", slack))
	}
	if minInterval <= 0 {
		panic(fmt.Sprintf("sched: non-positive min interval %v", minInterval))
	}
	return &Dynamic{
		Slack:       slack,
		MinInterval: minInterval,
		rate:        stats.NewEWMA(0.2),
		latency:     stats.NewEWMA(0.2),
	}
}

// Name implements Scheduler.
func (d *Dynamic) Name() string { return "dynamic" }

// Due implements Scheduler.
func (d *Dynamic) Due(now time.Time) bool { return !now.Before(d.next) }

// TrainingDone implements Scheduler: applies Formula (6).
func (d *Dynamic) TrainingDone(now time.Time, dur time.Duration) {
	t := dur.Seconds()
	interval := time.Duration(d.Slack * t * d.rate.Value() * d.latency.Value() * float64(time.Second))
	if interval < d.MinInterval {
		interval = d.MinInterval
	}
	d.next = now.Add(interval)
}

// ObservePrediction implements Scheduler: updates pr and pl.
func (d *Dynamic) ObservePrediction(now time.Time, latency time.Duration) {
	d.latency.Observe(latency.Seconds())
	if !d.lastQuery.IsZero() {
		gap := now.Sub(d.lastQuery).Seconds()
		if gap > 0 {
			d.rate.Observe(1 / gap)
		}
	}
	d.lastQuery = now
	d.publishLoad()
}

// ObserveQueries implements Scheduler: updates pl with the batch's average
// per-query latency and pr with n over the time since the previous batch.
func (d *Dynamic) ObserveQueries(now time.Time, n int, total time.Duration) {
	if n <= 0 {
		return
	}
	d.latency.Observe(total.Seconds() / float64(n))
	if !d.lastQuery.IsZero() {
		gap := now.Sub(d.lastQuery).Seconds()
		if gap > 0 {
			d.rate.Observe(float64(n) / gap)
		}
	}
	d.lastQuery = now
	d.publishLoad()
}

// publishLoad snapshots the EWMA values into the atomic mirrors.
func (d *Dynamic) publishLoad() {
	d.rateBits.Store(math.Float64bits(d.rate.Value()))
	d.latBits.Store(math.Float64bits(d.latency.Value()))
}

// QueryRate implements LoadStats: the observed query rate pr
// (queries/second), readable from any goroutine.
func (d *Dynamic) QueryRate() float64 {
	return math.Float64frombits(d.rateBits.Load())
}

// QueryLatency implements LoadStats: the observed prediction latency pl
// (seconds/query), readable from any goroutine.
func (d *Dynamic) QueryLatency() float64 {
	return math.Float64frombits(d.latBits.Load())
}

// NextInterval exposes the Formula (6) computation for a hypothetical
// training duration, for tests and capacity planning.
func (d *Dynamic) NextInterval(trainingSeconds float64) time.Duration {
	iv := time.Duration(d.Slack * trainingSeconds * d.rate.Value() * d.latency.Value() * float64(time.Second))
	if iv < d.MinInterval {
		return d.MinInterval
	}
	return iv
}

// EveryN is a chunk-count trigger used by the discrete-time experiment
// harness: rather than wall-clock intervals it fires every N incoming
// chunks, which makes experiment runs deterministic and
// hardware-independent. It is the discrete analogue of Static scheduling
// (the paper's URL scenario trains every 5 minutes of a 1-minute-per-chunk
// stream, i.e. every 5 chunks).
type EveryN struct {
	// N is the trigger period in chunks.
	N int

	count int
}

// NewEveryN returns a trigger firing every n chunks.
func NewEveryN(n int) *EveryN {
	if n <= 0 {
		panic(fmt.Sprintf("sched: non-positive chunk period %d", n))
	}
	return &EveryN{N: n}
}

// Tick advances by one chunk and reports whether the trigger fires.
func (e *EveryN) Tick() bool {
	e.count++
	if e.count >= e.N {
		e.count = 0
		return true
	}
	return false
}
