package sched

import (
	"testing"
	"time"
)

var t0 = time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

func TestStaticFiresImmediatelyThenWaits(t *testing.T) {
	s := NewStatic(time.Minute)
	if !s.Due(t0) {
		t.Fatal("first training should be due immediately")
	}
	s.TrainingDone(t0, time.Second)
	if s.Due(t0.Add(30 * time.Second)) {
		t.Fatal("should not be due before interval")
	}
	if !s.Due(t0.Add(time.Minute)) {
		t.Fatal("should be due at interval")
	}
}

func TestStaticBadIntervalPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewStatic(0)
}

func TestDynamicFormula(t *testing.T) {
	d := NewDynamic(2, time.Millisecond)
	// Feed a steady load: 10 queries/second, 50ms latency each.
	now := t0
	for i := 0; i < 50; i++ {
		now = now.Add(100 * time.Millisecond)
		d.ObservePrediction(now, 50*time.Millisecond)
	}
	// T' = S*T*pr*pl = 2 * 4s * 10/s * 0.05s = 4s
	iv := d.NextInterval(4)
	if iv < 3*time.Second || iv > 5*time.Second {
		t.Fatalf("interval = %v, want ≈4s", iv)
	}
}

func TestDynamicGuaranteesQueryTime(t *testing.T) {
	// T' must exceed T*pr*pl for any slack ≥ 1 (paper's guarantee).
	d := NewDynamic(1.5, time.Millisecond)
	now := t0
	for i := 0; i < 50; i++ {
		now = now.Add(50 * time.Millisecond) // 20 qps
		d.ObservePrediction(now, 20*time.Millisecond)
	}
	T := 2.0
	backlog := T * d.rate.Value() * d.latency.Value()
	if iv := d.NextInterval(T); iv.Seconds() <= backlog {
		t.Fatalf("interval %v does not cover backlog %vs", iv, backlog)
	}
}

func TestDynamicMinIntervalFloor(t *testing.T) {
	d := NewDynamic(2, time.Second)
	// No queries observed → rate and latency are 0 → floor applies.
	if iv := d.NextInterval(10); iv != time.Second {
		t.Fatalf("interval = %v, want floor 1s", iv)
	}
}

func TestDynamicDueCycle(t *testing.T) {
	d := NewDynamic(2, 100*time.Millisecond)
	if !d.Due(t0) {
		t.Fatal("first training due immediately")
	}
	d.TrainingDone(t0, time.Second)
	if d.Due(t0.Add(50 * time.Millisecond)) {
		t.Fatal("not due before floor")
	}
	if !d.Due(t0.Add(150 * time.Millisecond)) {
		t.Fatal("due after floor")
	}
}

func TestDynamicBadParamsPanic(t *testing.T) {
	for _, f := range []func(){
		func() { NewDynamic(0.5, time.Second) },
		func() { NewDynamic(2, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestDynamicLargerSlackLargerInterval(t *testing.T) {
	mk := func(slack float64) *Dynamic {
		d := NewDynamic(slack, time.Millisecond)
		now := t0
		for i := 0; i < 20; i++ {
			now = now.Add(100 * time.Millisecond)
			d.ObservePrediction(now, 50*time.Millisecond)
		}
		return d
	}
	small := mk(1.2).NextInterval(5)
	large := mk(3).NextInterval(5)
	if large <= small {
		t.Fatalf("slack 3 interval %v should exceed slack 1.2 interval %v", large, small)
	}
}

func TestEveryN(t *testing.T) {
	e := NewEveryN(3)
	fires := 0
	for i := 0; i < 9; i++ {
		if e.Tick() {
			fires++
		}
	}
	if fires != 3 {
		t.Fatalf("fires = %d, want 3", fires)
	}
}

func TestEveryNOne(t *testing.T) {
	e := NewEveryN(1)
	for i := 0; i < 5; i++ {
		if !e.Tick() {
			t.Fatal("period 1 should fire every tick")
		}
	}
}

func TestEveryNBadPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewEveryN(0)
}

func TestSchedulerNames(t *testing.T) {
	if NewStatic(time.Second).Name() != "static" {
		t.Fatal("static name")
	}
	if NewDynamic(2, time.Second).Name() != "dynamic" {
		t.Fatal("dynamic name")
	}
}

func TestDynamicObserveQueriesBatch(t *testing.T) {
	d := NewDynamic(2, time.Millisecond)
	now := t0
	// 5 batches of 100 queries each, 1 second apart, 2ms per query.
	for i := 0; i < 5; i++ {
		now = now.Add(time.Second)
		d.ObserveQueries(now, 100, 200*time.Millisecond)
	}
	// pr ≈ 100 qps, pl ≈ 2ms → T' = 2 * T * 100 * 0.002 = 0.4*T.
	iv := d.NextInterval(10)
	if iv < 3*time.Second || iv > 5*time.Second {
		t.Fatalf("interval = %v, want ≈4s", iv)
	}
}

func TestObserveQueriesZeroBatchIgnored(t *testing.T) {
	d := NewDynamic(2, time.Second)
	d.ObserveQueries(t0, 0, time.Second)
	if iv := d.NextInterval(100); iv != time.Second {
		t.Fatalf("zero batch changed state: %v", iv)
	}
}

func TestStaticObserveQueriesNoop(t *testing.T) {
	s := NewStatic(time.Minute)
	s.ObserveQueries(t0, 10, time.Second) // must not panic or change state
	s.ObservePrediction(t0, time.Second)
	if !s.Due(t0) {
		t.Fatal("static state changed by observations")
	}
}
