package obs

import (
	crand "crypto/rand"
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Span is one timed stage of a unit of work. Spans form trees: the root
// covers the whole unit (an HTTP request, a deployment tick, a checkpoint
// write) and children cover its stages. A span tree is built by a single
// goroutine and becomes immutable once recorded, so readers never need
// synchronization on the tree itself.
//
// Work that crosses an async boundary (HTTP handler → ingest queue →
// training tick → background checkpoint writer) is stitched together by
// TraceID: each side records its own tree carrying the same trace id, and
// Tracer.ByID reassembles the end-to-end picture — the standard distributed
// -tracing shape, applied inside one process.
//
// All methods tolerate a nil receiver, so instrumentation call sites need no
// "is tracing on" branches.
type Span struct {
	// Name identifies the stage.
	Name string `json:"name"`
	// TraceID correlates span trees recorded on different sides of an async
	// boundary; empty for spans that belong to no trace (e.g. ticks driven
	// directly through the library). Set on roots only.
	TraceID string `json:"trace_id,omitempty"`
	// RequestID is the HTTP request id that started the trace, when one did.
	RequestID string `json:"request_id,omitempty"`
	// Start is the stage's start time.
	Start time.Time `json:"start"`
	// DurationNS is the stage's wall-clock duration in nanoseconds, set by
	// Finish. It is the authoritative duration; DurationMS is derived.
	DurationNS int64 `json:"duration_ns"`
	// DurationMS is the duration in milliseconds, derived from DurationNS at
	// Finish for human-oriented JSON consumers. Sub-millisecond spans keep
	// their precision in DurationNS.
	DurationMS float64 `json:"duration_ms"`
	// Children are the nested stages in start order.
	Children []*Span `json:"children,omitempty"`
}

// traceIDBase is a per-process random prefix so trace ids stay unique across
// restarts; the suffix is a process-local sequence number.
var traceIDBase = func() uint64 {
	var b [8]byte
	if _, err := crand.Read(b[:]); err != nil {
		// Entropy exhaustion is effectively impossible; fall back to the
		// clock so ids stay usable rather than panicking in a constructor.
		return uint64(time.Now().UnixNano())
	}
	return binary.BigEndian.Uint64(b[:])
}()

var traceIDSeq atomic.Uint64

// NewTraceID returns a process-unique trace id: a random per-process base
// plus a sequence number, so ids are unique across concurrent requests and
// across restarts.
func NewTraceID() string {
	return fmt.Sprintf("%016x%08x", traceIDBase, traceIDSeq.Add(1))
}

// StartSpan starts a root span.
func StartSpan(name string) *Span {
	return &Span{Name: name, Start: time.Now()}
}

// StartTrace starts a root span carrying a fresh trace id.
func StartTrace(name string) *Span {
	return &Span{Name: name, Start: time.Now(), TraceID: NewTraceID()}
}

// StartChild starts a nested stage under s. Returns nil when s is nil.
func (s *Span) StartChild(name string) *Span {
	if s == nil {
		return nil
	}
	c := &Span{Name: name, Start: time.Now()}
	s.Children = append(s.Children, c)
	return c
}

// Finish stamps the span's duration. No-op on a nil span.
func (s *Span) Finish() {
	if s == nil {
		return
	}
	s.DurationNS = time.Since(s.Start).Nanoseconds()
	s.DurationMS = float64(s.DurationNS) / 1e6
}

// Duration returns the recorded duration at full nanosecond precision.
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	return time.Duration(s.DurationNS)
}

// Tracer retains the last Capacity recorded span trees in a ring buffer, so
// /trace can show recent work without unbounded growth.
type Tracer struct {
	mu    sync.Mutex
	ring  []*Span //cdml:guardedby mu
	next  int     //cdml:guardedby mu
	total uint64  //cdml:guardedby mu
}

// DefaultTraceCapacity is the ring size used when a component creates its
// own tracer.
const DefaultTraceCapacity = 64

// NewTracer returns a tracer retaining the last capacity spans (minimum 1).
func NewTracer(capacity int) *Tracer {
	if capacity < 1 {
		capacity = 1
	}
	return &Tracer{ring: make([]*Span, 0, capacity)}
}

// Record retains a finished span tree, evicting the oldest when full.
// No-op when t or s is nil; the span must not be mutated afterwards.
func (t *Tracer) Record(s *Span) {
	if t == nil || s == nil {
		return
	}
	t.mu.Lock()
	if len(t.ring) < cap(t.ring) {
		t.ring = append(t.ring, s)
	} else {
		t.ring[t.next] = s
	}
	t.next = (t.next + 1) % cap(t.ring)
	t.total++
	t.mu.Unlock()
}

// Len returns the number of retained spans.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.ring)
}

// Total returns the number of spans ever recorded.
func (t *Tracer) Total() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// Last returns up to n retained spans, newest first. Pass n <= 0 for all.
func (t *Tracer) Last(n int) []*Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	size := len(t.ring)
	if n <= 0 || n > size {
		n = size
	}
	out := make([]*Span, 0, n)
	for i := 0; i < n; i++ {
		var idx int
		if size < cap(t.ring) {
			// Ring not yet full: entries occupy [0, size) in record order.
			idx = size - 1 - i
		} else {
			// Full ring: next points at the oldest slot, so the newest span
			// sits just before it.
			idx = (t.next - 1 - i + size) % size
		}
		out = append(out, t.ring[idx])
	}
	return out
}

// ByID returns the retained span trees whose root carries id as its trace
// or request id, oldest first — the reassembled timeline of one unit of
// work across async boundaries. Returns nil when id is empty or unknown.
func (t *Tracer) ByID(id string) []*Span {
	if t == nil || id == "" {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	size := len(t.ring)
	var out []*Span
	for i := 0; i < size; i++ {
		idx := i
		if size == cap(t.ring) {
			// Full ring: next points at the oldest slot.
			idx = (t.next + i) % size
		}
		if s := t.ring[idx]; s != nil && (s.TraceID == id || s.RequestID == id) {
			out = append(out, s)
		}
	}
	return out
}
