package obs

import (
	"sync"
	"time"
)

// Span is one timed stage of a deployment tick. Spans form trees: the root
// covers the whole tick and children cover its stages (serve, preprocess,
// online-update, proactive-train, materialize). A span tree is built by a
// single goroutine (the deployment loop holds its own lock for the whole
// tick) and becomes immutable once recorded, so readers never need
// synchronization on the tree itself.
//
// All methods tolerate a nil receiver, so instrumentation call sites need no
// "is tracing on" branches.
type Span struct {
	// Name identifies the stage.
	Name string `json:"name"`
	// Start is the stage's start time.
	Start time.Time `json:"start"`
	// DurationMS is the stage's wall-clock duration in milliseconds, set by
	// Finish.
	DurationMS float64 `json:"duration_ms"`
	// Children are the nested stages in start order.
	Children []*Span `json:"children,omitempty"`
}

// StartSpan starts a root span.
func StartSpan(name string) *Span {
	return &Span{Name: name, Start: time.Now()}
}

// StartChild starts a nested stage under s. Returns nil when s is nil.
func (s *Span) StartChild(name string) *Span {
	if s == nil {
		return nil
	}
	c := &Span{Name: name, Start: time.Now()}
	s.Children = append(s.Children, c)
	return c
}

// Finish stamps the span's duration. No-op on a nil span.
func (s *Span) Finish() {
	if s == nil {
		return
	}
	s.DurationMS = float64(time.Since(s.Start).Nanoseconds()) / 1e6
}

// Duration returns the recorded duration.
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	return time.Duration(s.DurationMS * float64(time.Millisecond))
}

// Tracer retains the last Capacity recorded span trees in a ring buffer, so
// /trace can show recent deployment ticks without unbounded growth.
type Tracer struct {
	mu    sync.Mutex
	ring  []*Span
	next  int
	total uint64
}

// DefaultTraceCapacity is the ring size used when a component creates its
// own tracer.
const DefaultTraceCapacity = 64

// NewTracer returns a tracer retaining the last capacity spans (minimum 1).
func NewTracer(capacity int) *Tracer {
	if capacity < 1 {
		capacity = 1
	}
	return &Tracer{ring: make([]*Span, 0, capacity)}
}

// Record retains a finished span tree, evicting the oldest when full.
// No-op when t or s is nil; the span must not be mutated afterwards.
func (t *Tracer) Record(s *Span) {
	if t == nil || s == nil {
		return
	}
	t.mu.Lock()
	if len(t.ring) < cap(t.ring) {
		t.ring = append(t.ring, s)
	} else {
		t.ring[t.next] = s
	}
	t.next = (t.next + 1) % cap(t.ring)
	t.total++
	t.mu.Unlock()
}

// Len returns the number of retained spans.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.ring)
}

// Total returns the number of spans ever recorded.
func (t *Tracer) Total() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// Last returns up to n retained spans, newest first. Pass n <= 0 for all.
func (t *Tracer) Last(n int) []*Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	size := len(t.ring)
	if n <= 0 || n > size {
		n = size
	}
	out := make([]*Span, 0, n)
	for i := 0; i < n; i++ {
		var idx int
		if size < cap(t.ring) {
			// Ring not yet full: entries occupy [0, size) in record order.
			idx = size - 1 - i
		} else {
			// Full ring: next points at the oldest slot, so the newest span
			// sits just before it.
			idx = (t.next - 1 - i + size) % size
		}
		out = append(out, t.ring[idx])
	}
	return out
}
