package obs

import "context"

// spanKey is the context key under which a *Span travels.
type spanKey struct{}

// ContextWithSpan returns a context carrying s, so trace identity follows a
// unit of work across API layers and async hand-offs (HTTP middleware →
// ingest queue → deployment tick). A nil span returns ctx unchanged.
func ContextWithSpan(ctx context.Context, s *Span) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, spanKey{}, s)
}

// FromContext returns the span carried by ctx, or nil when there is none
// (including a nil ctx). Callers on the far side of an async boundary use
// the returned span's TraceID/RequestID to tag their own span trees.
func FromContext(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	s, _ := ctx.Value(spanKey{}).(*Span)
	return s
}
