package obs

import (
	"math"
	"runtime/metrics"
	"time"
)

// RuntimeSampler periodically copies Go runtime metrics (heap, GC pauses,
// goroutine count, scheduler latency) into gauges on a Registry, so the
// existing /metrics exposition answers "is the process healthy" questions
// without attaching a profiler. Sampling reads the runtime/metrics package's
// pre-aggregated values — a handful of cheap reads per period, safe to run
// at a few-second cadence in production.
type RuntimeSampler struct {
	stop chan struct{}
	done chan struct{}
}

// runtimeSamples maps runtime/metrics sample names to the gauges they feed.
type runtimeGaugeSpec struct {
	sample string // runtime/metrics name
	metric string // exposition family name
	help   string
}

var runtimeGaugeSpecs = []runtimeGaugeSpec{
	{"/sched/goroutines:goroutines", "cdml_runtime_goroutines", "Live goroutines."},
	{"/memory/classes/heap/objects:bytes", "cdml_runtime_heap_alloc_bytes", "Bytes of live heap objects."},
	{"/memory/classes/total:bytes", "cdml_runtime_memory_total_bytes", "Total bytes mapped by the Go runtime."},
	{"/gc/cycles/total:gc-cycles", "cdml_runtime_gc_cycles_total", "Completed GC cycles."},
}

// runtimeHistSpecs are cumulative runtime histograms exposed as p50/p99
// gauges (the runtime keeps full distributions; two quantiles answer the
// operational question without exploding the exposition).
var runtimeHistSpecs = []runtimeGaugeSpec{
	{"/gc/pauses:seconds", "cdml_runtime_gc_pause", "Stop-the-world GC pause quantiles (seconds)."},
	{"/sched/latencies:seconds", "cdml_runtime_sched_latency", "Goroutine scheduling latency quantiles (seconds)."},
}

// StartRuntimeSampler registers the runtime metric family on reg and starts
// a goroutine that refreshes it every period (minimum 1s). Call Stop to shut
// the goroutine down. One sample is taken synchronously before returning so
// the metrics are never absent from a scrape.
func StartRuntimeSampler(reg *Registry, every time.Duration) *RuntimeSampler {
	if every < time.Second {
		every = time.Second
	}
	names := make([]metrics.Sample, 0, len(runtimeGaugeSpecs)+len(runtimeHistSpecs))
	gauges := make([]*Gauge, 0, len(runtimeGaugeSpecs))
	for _, spec := range runtimeGaugeSpecs {
		names = append(names, metrics.Sample{Name: spec.sample})
		gauges = append(gauges, reg.Gauge(spec.metric, spec.help))
	}
	type histGauges struct{ p50, p99 *Gauge }
	hists := make([]histGauges, 0, len(runtimeHistSpecs))
	for _, spec := range runtimeHistSpecs {
		names = append(names, metrics.Sample{Name: spec.sample})
		hists = append(hists, histGauges{
			p50: reg.Gauge(spec.metric+"_p50", spec.help, L("q", "0.5")),
			p99: reg.Gauge(spec.metric+"_p99", spec.help, L("q", "0.99")),
		})
	}

	sample := func() {
		metrics.Read(names)
		for i := range runtimeGaugeSpecs {
			switch s := names[i]; s.Value.Kind() {
			case metrics.KindUint64:
				gauges[i].Set(float64(s.Value.Uint64()))
			case metrics.KindFloat64:
				gauges[i].Set(s.Value.Float64())
			}
		}
		for i := range runtimeHistSpecs {
			s := names[len(runtimeGaugeSpecs)+i]
			if s.Value.Kind() != metrics.KindFloat64Histogram {
				continue
			}
			h := s.Value.Float64Histogram()
			hists[i].p50.Set(histQuantile(h, 0.50))
			hists[i].p99.Set(histQuantile(h, 0.99))
		}
	}
	sample()

	rs := &RuntimeSampler{stop: make(chan struct{}), done: make(chan struct{})}
	go func() {
		defer close(rs.done)
		t := time.NewTicker(every)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				sample()
			case <-rs.stop:
				return
			}
		}
	}()
	return rs
}

// Stop halts sampling and waits for the sampler goroutine to exit.
// Idempotent-safe only for a single caller; the server owns its sampler.
func (rs *RuntimeSampler) Stop() {
	if rs == nil {
		return
	}
	select {
	case <-rs.stop:
	default:
		close(rs.stop)
	}
	<-rs.done
}

// histQuantile estimates the q-quantile of a cumulative runtime histogram by
// locating the bucket containing the target rank and returning its midpoint
// (clamped for the open-ended first/last buckets).
func histQuantile(h *metrics.Float64Histogram, q float64) float64 {
	var total uint64
	for _, c := range h.Counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	rank := uint64(q * float64(total))
	if rank >= total {
		rank = total - 1
	}
	var cum uint64
	for i, c := range h.Counts {
		cum += c
		if c == 0 || cum <= rank {
			continue
		}
		// Bucket i spans [Buckets[i], Buckets[i+1]).
		lo, hi := h.Buckets[i], h.Buckets[i+1]
		if math.IsInf(lo, -1) || math.IsNaN(lo) || lo < 0 {
			lo = 0
		}
		if math.IsInf(hi, 1) || math.IsNaN(hi) {
			// Open-ended top bucket: the lower bound is the honest estimate.
			return lo
		}
		return (lo + hi) / 2
	}
	last := h.Buckets[len(h.Buckets)-1]
	if math.IsInf(last, 1) || math.IsNaN(last) {
		return 0
	}
	return last
}
