// Package obs is the platform's dependency-free observability substrate:
// atomic counters and gauges, log-bucketed latency histograms with quantile
// estimates, a labeled registry with Prometheus text-format exposition, and
// a span tracer that records each deployment tick as a tree of timed stages
// (see trace.go).
//
// The design splits cost between the two sides of the instrument: the write
// path (Inc, Add, Set, Observe) is a single atomic operation with zero
// allocations, safe to call from the serving hot loop; the read path
// (WriteText, Quantile) takes snapshots under the registry lock and is only
// paid when something scrapes /metrics. Metrics are created once at wiring
// time — label rendering, map lookups, and registration all happen there,
// never per event.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing count. The zero value is ready to
// use; Inc and Add are lock-free.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
//
//cdml:hotpath
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (negative deltas are ignored so the counter stays monotone).
//
//cdml:hotpath
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a float64 value that can go up and down. The zero value is ready
// to use; Set and Add are lock-free (Add uses a CAS loop).
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
//
//cdml:hotpath
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds delta to the current value.
//
//cdml:hotpath
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Label is one name="value" pair attached to a metric at creation time.
// Labels are rendered once during registration, so they cost nothing on the
// write path.
type Label struct {
	Key, Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindGaugeFunc
	kindCounterFunc
	kindHistogram
)

func (k metricKind) promType() string {
	switch k {
	case kindCounter, kindCounterFunc:
		return "counter"
	case kindHistogram:
		return "histogram"
	default:
		return "gauge"
	}
}

// sameFamily reports whether two kinds may share a metric family name
// (e.g. a Counter and a CounterFunc both expose TYPE counter).
func sameFamily(a, b metricKind) bool { return a.promType() == b.promType() }

// metric is one labeled instance within a family.
type metric struct {
	labels  string // pre-rendered `key="value",...` (no braces), "" if none
	kind    metricKind
	counter *Counter
	gauge   *Gauge
	fn      func() float64
	hist    *Histogram
}

// family groups all label variants of one metric name.
type family struct {
	name    string
	help    string
	kind    metricKind
	order   []string // label strings in registration order
	metrics map[string]*metric
}

// Registry holds metric families and renders them in Prometheus text
// exposition format. Creation methods are get-or-create: asking for an
// existing (name, labels) pair returns the existing instrument, so wiring
// code can be idempotent. Mixing kinds under one name panics — that is a
// programming error, not a runtime condition.
type Registry struct {
	mu       sync.Mutex
	order    []string           //cdml:guardedby mu
	families map[string]*family //cdml:guardedby mu
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// renderLabels renders pairs as `k1="v1",k2="v2"` with values escaped per
// the exposition format (backslash, double-quote, newline).
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(l.Value))
		b.WriteByte('"')
	}
	return b.String()
}

func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// get returns the metric for (name, labels), creating family and metric as
// needed via mk.
func (r *Registry) get(kind metricKind, name, help string, labels []Label, mk func() *metric) *metric {
	ls := renderLabels(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, kind: kind, metrics: make(map[string]*metric)}
		r.families[name] = f
		r.order = append(r.order, name)
	}
	if !sameFamily(f.kind, kind) {
		panic(fmt.Sprintf("obs: metric %q registered as %s, re-requested as %s",
			name, f.kind.promType(), kind.promType()))
	}
	m, ok := f.metrics[ls]
	if !ok {
		m = mk()
		m.labels = ls
		m.kind = kind
		f.metrics[ls] = m
		f.order = append(f.order, ls)
	}
	return m
}

// Counter returns the counter registered under (name, labels), creating it
// on first use.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	m := r.get(kindCounter, name, help, labels, func() *metric {
		return &metric{counter: &Counter{}}
	})
	if m.counter == nil {
		panic(fmt.Sprintf("obs: metric %q{%s} is not a Counter", name, renderLabels(labels)))
	}
	return m.counter
}

// Gauge returns the gauge registered under (name, labels), creating it on
// first use.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	m := r.get(kindGauge, name, help, labels, func() *metric {
		return &metric{gauge: &Gauge{}}
	})
	if m.gauge == nil {
		panic(fmt.Sprintf("obs: metric %q{%s} is not a Gauge", name, renderLabels(labels)))
	}
	return m.gauge
}

// GaugeFunc registers a gauge whose value is read by calling fn at scrape
// time — the bridge for state that already has its own synchronized
// bookkeeping (cost clocks, store statistics). fn must be safe to call from
// any goroutine. Registering the same (name, labels) twice keeps the first
// function.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	r.get(kindGaugeFunc, name, help, labels, func() *metric {
		return &metric{fn: fn}
	})
}

// CounterFunc registers a counter whose value is read by calling fn at
// scrape time; fn must be monotone and safe to call from any goroutine.
func (r *Registry) CounterFunc(name, help string, fn func() float64, labels ...Label) {
	r.get(kindCounterFunc, name, help, labels, func() *metric {
		return &metric{fn: fn}
	})
}

// Histogram returns the latency histogram registered under (name, labels),
// creating it on first use.
func (r *Registry) Histogram(name, help string, labels ...Label) *Histogram {
	m := r.get(kindHistogram, name, help, labels, func() *metric {
		return &metric{hist: NewHistogram()}
	})
	if m.hist == nil {
		panic(fmt.Sprintf("obs: metric %q{%s} is not a Histogram", name, renderLabels(labels)))
	}
	return m.hist
}

// WriteText renders every registered metric in Prometheus text exposition
// format (version 0.0.4). Histograms emit cumulative buckets, _sum and
// _count, followed by companion gauge families <name>_p50/_p95/_p99 carrying
// the quantile estimates.
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.Lock()
	// Snapshot the family structure so rendering (which calls user funcs)
	// happens outside the registry lock.
	fams := make([]*family, 0, len(r.order))
	for _, name := range r.order {
		fams = append(fams, r.families[name])
	}
	r.mu.Unlock()

	var b strings.Builder
	for _, f := range fams {
		writeFamily(&b, f)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func writeFamily(b *strings.Builder, f *family) {
	fmt.Fprintf(b, "# HELP %s %s\n", f.name, f.help)
	fmt.Fprintf(b, "# TYPE %s %s\n", f.name, f.kind.promType())
	for _, ls := range f.order {
		m := f.metrics[ls]
		switch m.kind {
		case kindCounter:
			writeSample(b, f.name, "", ls, float64(m.counter.Value()))
		case kindGauge:
			writeSample(b, f.name, "", ls, m.gauge.Value())
		case kindGaugeFunc, kindCounterFunc:
			writeSample(b, f.name, "", ls, m.fn())
		case kindHistogram:
			writeHistogram(b, f.name, ls, m.hist)
		}
	}
	if f.kind == kindHistogram {
		// Companion quantile gauges, one family per quantile.
		for _, q := range []struct {
			suffix string
			q      float64
		}{{"_p50", 0.50}, {"_p95", 0.95}, {"_p99", 0.99}} {
			fmt.Fprintf(b, "# HELP %s%s %s (quantile estimate)\n", f.name, q.suffix, f.help)
			fmt.Fprintf(b, "# TYPE %s%s gauge\n", f.name, q.suffix)
			for _, ls := range f.order {
				writeSample(b, f.name+q.suffix, "", ls, f.metrics[ls].hist.Quantile(q.q))
			}
		}
	}
}

// writeSample emits one exposition line; extra is an additional pre-rendered
// label (used for le="...") appended after the metric's own labels.
func writeSample(b *strings.Builder, name, extra, labels string, v float64) {
	b.WriteString(name)
	if labels != "" || extra != "" {
		b.WriteByte('{')
		b.WriteString(labels)
		if labels != "" && extra != "" {
			b.WriteByte(',')
		}
		b.WriteString(extra)
		b.WriteByte('}')
	}
	b.WriteByte(' ')
	b.WriteString(formatFloat(v))
	b.WriteByte('\n')
}

func writeHistogram(b *strings.Builder, name, labels string, h *Histogram) {
	counts, sum, count := h.Snapshot()
	var cum int64
	for i, c := range counts {
		cum += c
		if c == 0 {
			// Empty buckets are omitted; cum carries forward so the emitted
			// cumulative counts stay correct, and le="+Inf" is always present.
			continue
		}
		le := strconv.FormatFloat(BucketUpperBound(i), 'g', -1, 64)
		writeSample(b, name+"_bucket", `le="`+le+`"`, labels, float64(cum))
	}
	writeSample(b, name+"_bucket", `le="+Inf"`, labels, float64(count))
	writeSample(b, name+"_sum", "", labels, sum)
	writeSample(b, name+"_count", "", labels, float64(count))
	if e, ok := h.Exemplar(); ok {
		// Exposed as a comment so text-format 0.0.4 parsers (which skip
		// '#' lines) stay compatible; follow the trace via /v1/trace?id=.
		fmt.Fprintf(b, "# exemplar %s{%s} trace_id=%s duration_seconds=%s\n",
			name, labels, e.TraceID, strconv.FormatFloat(e.Duration.Seconds(), 'g', -1, 64))
	}
}

func formatFloat(v float64) string {
	//lint:allow floateq: integrality test against math.Trunc is exact by construction
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Families returns the registered family names in registration order
// (diagnostics and tests).
func (r *Registry) Families() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := append([]string(nil), r.order...)
	return out
}

// SortedFamilies returns the registered family names sorted (stable
// test-friendly view).
func (r *Registry) SortedFamilies() []string {
	out := r.Families()
	sort.Strings(out)
	return out
}
