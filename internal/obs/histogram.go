package obs

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// NumBuckets is the fixed bucket count of every Histogram. Bucket i counts
// observations whose duration in nanoseconds d satisfies
// bits.Len64(d) == i, i.e. d in [2^(i-1), 2^i) (bucket 0 holds exactly 0).
// The geometric ladder spans 1ns to ~2.5h with a worst-case relative error
// of 2x per bucket, which quantile interpolation reduces further — ample
// resolution for latencies whose interesting range covers nine orders of
// magnitude.
const NumBuckets = 44

// BucketUpperBound returns bucket i's exclusive upper bound in seconds
// (2^i nanoseconds).
func BucketUpperBound(i int) float64 {
	return float64(uint64(1)<<uint(i)) / 1e9
}

// Histogram is a log-bucketed latency histogram. Observe is a fixed number
// of atomic adds with zero allocations; Quantile and Snapshot read a
// best-effort atomic snapshot (buckets are read one by one, so a scrape
// racing an observation may be off by the in-flight event — harmless for
// monitoring). The zero value is ready to use.
type Histogram struct {
	buckets [NumBuckets]atomic.Int64
	sum     atomic.Int64 // nanoseconds
	count   atomic.Int64

	// exemplar is the most interesting recent traced observation (highest
	// bucket wins; a stale exemplar is displaced by any traced observation).
	// Written only by ObserveExemplar, read at scrape time.
	exemplar atomic.Pointer[Exemplar]
}

// Exemplar links one concrete observation to the trace that produced it, so
// a slow histogram bucket can be followed to the exact request via
// /v1/trace?id=<trace id>.
type Exemplar struct {
	// TraceID identifies the trace behind this observation.
	TraceID string
	// Bucket is the histogram bucket the observation landed in.
	Bucket int
	// Duration is the observed duration.
	Duration time.Duration
	// At is when the observation was recorded.
	At time.Time
}

// exemplarTTL bounds how long an exemplar shadows slower candidates: after a
// minute any traced observation may replace it, so the exposed exemplar
// tracks recent traffic rather than the all-time worst case.
const exemplarTTL = time.Minute

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram { return &Histogram{} }

// bucketIndex maps a nanosecond duration to its bucket.
//
//cdml:hotpath
func bucketIndex(nanos int64) int {
	if nanos <= 0 {
		return 0
	}
	idx := bits.Len64(uint64(nanos))
	if idx >= NumBuckets {
		idx = NumBuckets - 1
	}
	return idx
}

// Observe records one duration.
//
//cdml:hotpath
func (h *Histogram) Observe(d time.Duration) {
	n := d.Nanoseconds()
	if n < 0 {
		n = 0
	}
	h.buckets[bucketIndex(n)].Add(1)
	h.sum.Add(n)
	h.count.Add(1)
}

// ObserveExemplar records one duration and, when traceID is non-empty,
// offers it as the histogram's exemplar. An observation wins the slot when
// it lands in a bucket at least as high as the current exemplar's or when
// the current exemplar is older than a minute — so the exposed exemplar
// points at a recent slow request, the one worth pulling up in /v1/trace.
// Racing writers may drop an offer; exemplars are best-effort by design.
func (h *Histogram) ObserveExemplar(d time.Duration, traceID string) {
	h.Observe(d)
	if traceID == "" {
		return
	}
	n := d.Nanoseconds()
	if n < 0 {
		n = 0
	}
	idx := bucketIndex(n)
	cur := h.exemplar.Load()
	if cur != nil && idx < cur.Bucket && time.Since(cur.At) < exemplarTTL {
		return
	}
	h.exemplar.Store(&Exemplar{TraceID: traceID, Bucket: idx, Duration: d, At: time.Now()})
}

// Exemplar returns the current exemplar, if any traced observation has been
// recorded.
func (h *Histogram) Exemplar() (Exemplar, bool) {
	e := h.exemplar.Load()
	if e == nil {
		return Exemplar{}, false
	}
	return *e, true
}

// ObserveSeconds records one duration given in seconds.
func (h *Histogram) ObserveSeconds(s float64) {
	h.Observe(time.Duration(s * float64(time.Second)))
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the total observed time in seconds.
func (h *Histogram) Sum() float64 { return float64(h.sum.Load()) / 1e9 }

// Mean returns the average observation in seconds, or 0 when empty.
func (h *Histogram) Mean() float64 {
	c := h.count.Load()
	if c == 0 {
		return 0
	}
	return float64(h.sum.Load()) / 1e9 / float64(c)
}

// Snapshot returns per-bucket counts, the sum in seconds, and the count.
func (h *Histogram) Snapshot() (counts [NumBuckets]int64, sum float64, count int64) {
	for i := range h.buckets {
		counts[i] = h.buckets[i].Load()
	}
	return counts, float64(h.sum.Load()) / 1e9, h.count.Load()
}

// Quantile estimates the q-quantile (q in [0,1]) in seconds by linear
// interpolation within the target bucket. Estimates are monotone in q by
// construction. Returns 0 when the histogram is empty.
func (h *Histogram) Quantile(q float64) float64 {
	counts, _, _ := h.Snapshot()
	var total int64
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	// rank is the 1-based index of the target observation.
	rank := int64(q*float64(total) + 0.5)
	if rank < 1 {
		rank = 1
	}
	if rank > total {
		rank = total
	}
	var cum int64
	for i, c := range counts {
		if c == 0 {
			continue
		}
		if cum+c >= rank {
			lo := 0.0
			if i > 0 {
				lo = BucketUpperBound(i - 1)
			}
			hi := BucketUpperBound(i)
			frac := (float64(rank-cum) - 0.5) / float64(c)
			return lo + frac*(hi-lo)
		}
		cum += c
	}
	return BucketUpperBound(NumBuckets - 1)
}
