package obs

import (
	"math"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterAndGauge(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	c.Add(-3) // ignored: counters are monotone
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	var g Gauge
	g.Set(2.5)
	g.Add(-1)
	if got := g.Value(); got != 1.5 {
		t.Fatalf("gauge = %v, want 1.5", got)
	}
}

func TestCounterIncZeroAllocs(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("test_total", "test counter")
	allocs := testing.AllocsPerRun(1000, func() { c.Inc() })
	if allocs != 0 {
		t.Fatalf("Counter.Inc allocates %v per op, want 0", allocs)
	}
}

func TestHistogramObserveZeroAllocs(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("test_seconds", "test histogram")
	d := 123 * time.Microsecond
	allocs := testing.AllocsPerRun(1000, func() { h.Observe(d) })
	if allocs != 0 {
		t.Fatalf("Histogram.Observe allocates %v per op, want 0", allocs)
	}
}

func TestGaugeSetZeroAllocs(t *testing.T) {
	var g Gauge
	allocs := testing.AllocsPerRun(1000, func() { g.Set(3.14) })
	if allocs != 0 {
		t.Fatalf("Gauge.Set allocates %v per op, want 0", allocs)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := NewHistogram()
	// 1000 observations spread over 1µs..1ms.
	for i := 1; i <= 1000; i++ {
		h.Observe(time.Duration(i) * time.Microsecond)
	}
	p50 := h.Quantile(0.50)
	p95 := h.Quantile(0.95)
	p99 := h.Quantile(0.99)
	if !(p50 <= p95 && p95 <= p99) {
		t.Fatalf("quantiles not monotone: p50=%v p95=%v p99=%v", p50, p95, p99)
	}
	// The log buckets bound every estimate within a factor of 2 of truth.
	if p50 < 250e-6 || p50 > 1100e-6 {
		t.Fatalf("p50=%v out of plausible range for 1µs..1ms uniform", p50)
	}
	if h.Count() != 1000 {
		t.Fatalf("count = %d", h.Count())
	}
	if got, want := h.Sum(), 0.5005; math.Abs(got-want) > 1e-6 {
		t.Fatalf("sum = %v, want %v", got, want)
	}
}

func TestHistogramQuantilesMonotoneAcrossQ(t *testing.T) {
	h := NewHistogram()
	for _, d := range []time.Duration{time.Nanosecond, time.Microsecond, time.Millisecond, time.Second, 3 * time.Second} {
		for i := 0; i < 10; i++ {
			h.Observe(d)
		}
	}
	prev := -1.0
	for q := 0.0; q <= 1.0; q += 0.01 {
		v := h.Quantile(q)
		if v < prev {
			t.Fatalf("Quantile(%v)=%v < Quantile(prev)=%v", q, v, prev)
		}
		prev = v
	}
}

func TestHistogramEmptyAndExtremes(t *testing.T) {
	h := NewHistogram()
	if h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram quantile should be 0")
	}
	h.Observe(0)
	h.Observe(-time.Second)    // clamped to 0
	h.Observe(100 * time.Hour) // clamped into the last bucket
	if h.Count() != 3 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Quantile(1) <= 0 {
		t.Fatal("max quantile should land in the top bucket")
	}
}

func TestRegistryGetOrCreate(t *testing.T) {
	reg := NewRegistry()
	a := reg.Counter("x_total", "help", L("path", "/a"))
	b := reg.Counter("x_total", "help", L("path", "/a"))
	if a != b {
		t.Fatal("same (name, labels) must return the same counter")
	}
	c := reg.Counter("x_total", "help", L("path", "/b"))
	if a == c {
		t.Fatal("different labels must return different counters")
	}
}

func TestRegistryKindMismatchPanics(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("x_total", "help")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic when re-registering a counter as a histogram")
		}
	}()
	reg.Histogram("x_total", "help")
}

func TestWriteTextExposition(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("cdml_requests_total", "requests served", L("path", "/predict")).Add(7)
	reg.Gauge("cdml_error", "current error").Set(0.25)
	reg.GaugeFunc("cdml_rate", "query rate", func() float64 { return 12.5 })
	h := reg.Histogram("cdml_latency_seconds", "request latency")
	h.Observe(time.Millisecond)
	h.Observe(2 * time.Millisecond)

	var sb strings.Builder
	if err := reg.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()

	for _, want := range []string{
		"# TYPE cdml_requests_total counter",
		`cdml_requests_total{path="/predict"} 7`,
		"# TYPE cdml_error gauge",
		"cdml_error 0.25",
		"cdml_rate 12.5",
		"# TYPE cdml_latency_seconds histogram",
		`cdml_latency_seconds_bucket{le="+Inf"} 2`,
		"cdml_latency_seconds_count 2",
		"# TYPE cdml_latency_seconds_p50 gauge",
		"cdml_latency_seconds_p95",
		"cdml_latency_seconds_p99",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("exposition missing %q:\n%s", want, text)
		}
	}
	// Every non-comment line must be "name{labels} value" or "name value".
	for _, line := range strings.Split(strings.TrimSpace(text), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			t.Fatalf("malformed exposition line %q", line)
		}
	}
}

func TestWriteTextBucketCumulative(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("lat_seconds", "latency")
	for _, d := range []time.Duration{time.Microsecond, time.Millisecond, time.Millisecond, time.Second} {
		h.Observe(d)
	}
	var sb strings.Builder
	if err := reg.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	prev := -1.0
	for _, line := range strings.Split(sb.String(), "\n") {
		if !strings.HasPrefix(line, "lat_seconds_bucket") {
			continue
		}
		fields := strings.Fields(line)
		v, err := parseFloat(fields[1])
		if err != nil {
			t.Fatalf("bucket line %q: %v", line, err)
		}
		if v < prev {
			t.Fatalf("bucket counts not cumulative: %q after %v", line, prev)
		}
		prev = v
	}
	if prev != 4 {
		t.Fatalf("final cumulative bucket = %v, want 4", prev)
	}
}

func parseFloat(s string) (float64, error) {
	return strconv.ParseFloat(s, 64)
}

func TestLabelEscaping(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("esc_total", "h", L("path", "a\"b\\c\nd")).Inc()
	var sb strings.Builder
	if err := reg.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `esc_total{path="a\"b\\c\nd"} 1`) {
		t.Fatalf("label not escaped:\n%s", sb.String())
	}
}

func TestConcurrentWritesAndScrapes(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("conc_total", "h")
	h := reg.Histogram("conc_seconds", "h")
	g := reg.Gauge("conc_gauge", "h")
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(time.Microsecond)
			}
		}()
	}
	for i := 0; i < 50; i++ {
		var sb strings.Builder
		if err := reg.WriteText(&sb); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	if c.Value() != 4000 || h.Count() != 4000 || g.Value() != 4000 {
		t.Fatalf("writes lost: counter=%d hist=%d gauge=%v", c.Value(), h.Count(), g.Value())
	}
}
