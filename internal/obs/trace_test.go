package obs

import (
	"encoding/json"
	"fmt"
	"testing"
	"time"
)

func TestSpanTree(t *testing.T) {
	root := StartSpan("tick")
	c1 := root.StartChild("serve")
	time.Sleep(time.Millisecond)
	c1.Finish()
	c2 := root.StartChild("online-update")
	gc := c2.StartChild("preprocess")
	gc.Finish()
	c2.Finish()
	root.Finish()

	if len(root.Children) != 2 {
		t.Fatalf("children = %d, want 2", len(root.Children))
	}
	if root.Children[0].Name != "serve" || root.Children[1].Children[0].Name != "preprocess" {
		t.Fatal("span tree shape wrong")
	}
	if c1.DurationMS <= 0 || root.DurationMS < c1.DurationMS {
		t.Fatalf("durations inconsistent: root=%v serve=%v", root.DurationMS, c1.DurationMS)
	}
}

func TestNilSpanSafe(t *testing.T) {
	var s *Span
	c := s.StartChild("x")
	if c != nil {
		t.Fatal("child of nil span must be nil")
	}
	c.Finish() // must not panic
	s.Finish()
	if s.Duration() != 0 {
		t.Fatal("nil span duration")
	}
	var tr *Tracer
	tr.Record(StartSpan("x")) // must not panic
	if tr.Len() != 0 || tr.Last(5) != nil {
		t.Fatal("nil tracer should be empty")
	}
}

func TestTracerRingBounded(t *testing.T) {
	tr := NewTracer(8)
	for i := 0; i < 100; i++ {
		s := StartSpan(fmt.Sprintf("tick-%d", i))
		s.Finish()
		tr.Record(s)
	}
	if tr.Len() != 8 {
		t.Fatalf("ring len = %d, want 8", tr.Len())
	}
	if tr.Total() != 100 {
		t.Fatalf("total = %d, want 100", tr.Total())
	}
	last := tr.Last(3)
	if len(last) != 3 {
		t.Fatalf("Last(3) = %d spans", len(last))
	}
	// Newest first.
	for i, want := range []string{"tick-99", "tick-98", "tick-97"} {
		if last[i].Name != want {
			t.Fatalf("Last[%d] = %q, want %q", i, last[i].Name, want)
		}
	}
	all := tr.Last(0)
	if len(all) != 8 || all[7].Name != "tick-92" {
		t.Fatalf("Last(0) wrong: len=%d oldest=%q", len(all), all[len(all)-1].Name)
	}
}

func TestTracerPartialFill(t *testing.T) {
	tr := NewTracer(16)
	for i := 0; i < 5; i++ {
		s := StartSpan(fmt.Sprintf("t%d", i))
		s.Finish()
		tr.Record(s)
	}
	last := tr.Last(0)
	if len(last) != 5 || last[0].Name != "t4" || last[4].Name != "t0" {
		t.Fatalf("partial ring order wrong: %v", names(last))
	}
}

func names(spans []*Span) []string {
	out := make([]string, len(spans))
	for i, s := range spans {
		out[i] = s.Name
	}
	return out
}

func TestSpanJSON(t *testing.T) {
	root := StartSpan("tick")
	root.StartChild("serve").Finish()
	root.Finish()
	b, err := json.Marshal(root)
	if err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		Name     string `json:"name"`
		Children []struct {
			Name string `json:"name"`
		} `json:"children"`
	}
	if err := json.Unmarshal(b, &decoded); err != nil {
		t.Fatal(err)
	}
	if decoded.Name != "tick" || len(decoded.Children) != 1 || decoded.Children[0].Name != "serve" {
		t.Fatalf("JSON roundtrip wrong: %s", b)
	}
}

func TestTracerConcurrentRecord(t *testing.T) {
	tr := NewTracer(32)
	done := make(chan struct{})
	for w := 0; w < 4; w++ {
		go func() {
			for i := 0; i < 200; i++ {
				s := StartSpan("t")
				s.Finish()
				tr.Record(s)
			}
			done <- struct{}{}
		}()
	}
	for w := 0; w < 4; w++ {
		<-done
	}
	if tr.Len() != 32 || tr.Total() != 800 {
		t.Fatalf("len=%d total=%d", tr.Len(), tr.Total())
	}
}
