package obs

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestSpanNanosecondPrecision guards the satellite fix: durations must not
// round-trip through float64 milliseconds. A sub-millisecond span keeps its
// exact nanosecond duration.
func TestSpanNanosecondPrecision(t *testing.T) {
	s := StartSpan("fast")
	s.Finish()
	s.DurationNS = 1234 // simulate a 1.234µs span deterministically
	s.DurationMS = float64(s.DurationNS) / 1e6
	if got := s.Duration(); got != 1234*time.Nanosecond {
		t.Fatalf("Duration() = %v, want exactly 1.234µs", got)
	}
	// A real (non-simulated) finish must agree between the two fields.
	r := StartSpan("real")
	time.Sleep(50 * time.Microsecond)
	r.Finish()
	if r.DurationNS <= 0 {
		t.Fatal("DurationNS not set by Finish")
	}
	if got, want := r.DurationMS, float64(r.DurationNS)/1e6; got < want-1e-9 || got > want+1e-9 {
		t.Fatalf("DurationMS %v inconsistent with DurationNS %d", got, r.DurationNS)
	}
	if r.Duration() != time.Duration(r.DurationNS) {
		t.Fatalf("Duration() = %v, want %v", r.Duration(), time.Duration(r.DurationNS))
	}
}

func TestNewTraceIDUnique(t *testing.T) {
	seen := make(map[string]bool)
	for i := 0; i < 1000; i++ {
		id := NewTraceID()
		if id == "" || seen[id] {
			t.Fatalf("trace id %q empty or duplicated at i=%d", id, i)
		}
		seen[id] = true
	}
}

func TestStartTraceCarriesID(t *testing.T) {
	s := StartTrace("root")
	if s.TraceID == "" {
		t.Fatal("StartTrace must assign a trace id")
	}
}

func TestContextCarriage(t *testing.T) {
	if FromContext(context.Background()) != nil {
		t.Fatal("empty context must carry no span")
	}
	if FromContext(nil) != nil { //lint:ignore SA1012 deliberate nil-ctx robustness check
		t.Fatal("nil context must carry no span")
	}
	s := StartTrace("req")
	ctx := ContextWithSpan(context.Background(), s)
	if got := FromContext(ctx); got != s {
		t.Fatalf("FromContext = %v, want the stored span", got)
	}
	// Nil span leaves the context unchanged.
	base := context.Background()
	if ContextWithSpan(base, nil) != base {
		t.Fatal("nil span must not wrap the context")
	}
}

func TestTracerByID(t *testing.T) {
	tr := NewTracer(4)
	mk := func(name, traceID, reqID string) *Span {
		s := StartSpan(name)
		s.TraceID = traceID
		s.RequestID = reqID
		s.Finish()
		tr.Record(s)
		return s
	}
	mk("tick-a", "trace-1", "req-1")
	mk("tick-b", "trace-2", "")
	mk("checkpoint-a", "trace-1", "")

	got := tr.ByID("trace-1")
	if len(got) != 2 || got[0].Name != "tick-a" || got[1].Name != "checkpoint-a" {
		t.Fatalf("ByID(trace-1) = %v, want [tick-a checkpoint-a] oldest first", names(got))
	}
	if got := tr.ByID("req-1"); len(got) != 1 || got[0].Name != "tick-a" {
		t.Fatalf("ByID by request id = %v", names(got))
	}
	if tr.ByID("") != nil || tr.ByID("unknown") != nil {
		t.Fatal("empty/unknown id must return nil")
	}

	// Wrap the ring: trace-1 spans are evicted, newer ones found.
	mk("tick-c", "trace-3", "")
	mk("tick-d", "trace-3", "")
	mk("tick-e", "trace-3", "")
	if got := tr.ByID("trace-1"); len(got) != 1 || got[0].Name != "checkpoint-a" {
		t.Fatalf("after wrap ByID(trace-1) = %v, want only checkpoint-a retained", names(got))
	}
	if got := tr.ByID("trace-3"); len(got) != 3 || got[0].Name != "tick-c" || got[2].Name != "tick-e" {
		t.Fatalf("after wrap ByID(trace-3) = %v, want [tick-c tick-d tick-e]", names(got))
	}
	var nilTr *Tracer
	if nilTr.ByID("x") != nil {
		t.Fatal("nil tracer ByID must be nil")
	}
}

// TestTracerLastNewestFirstProperty exercises Last(n) across every
// fill/wrap state for several capacities: whatever the ring state, Last must
// return the most recent records newest-first.
func TestTracerLastNewestFirstProperty(t *testing.T) {
	for _, capacity := range []int{1, 2, 3, 8} {
		for count := 0; count <= 20; count++ {
			tr := NewTracer(capacity)
			for i := 0; i < count; i++ {
				s := StartSpan(fmt.Sprintf("s%d", i))
				s.Finish()
				tr.Record(s)
			}
			retained := min(count, capacity)
			for _, n := range []int{0, 1, retained, retained + 5} {
				got := tr.Last(n)
				wantLen := retained
				if n > 0 && n < retained {
					wantLen = n
				}
				if len(got) != wantLen {
					t.Fatalf("cap=%d count=%d Last(%d) len=%d want %d",
						capacity, count, n, len(got), wantLen)
				}
				for i, s := range got {
					if want := fmt.Sprintf("s%d", count-1-i); s.Name != want {
						t.Fatalf("cap=%d count=%d Last(%d)[%d] = %q, want %q",
							capacity, count, n, i, s.Name, want)
					}
				}
			}
		}
	}
}

// TestTracerConcurrentAccess drives Record, Last, Total, Len, and ByID from
// concurrent goroutines; run with -race this is the tracer's thread-safety
// proof.
func TestTracerConcurrentAccess(t *testing.T) {
	tr := NewTracer(16)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 300; i++ {
				s := StartSpan("t")
				s.TraceID = fmt.Sprintf("trace-%d-%d", w, i)
				s.Finish()
				tr.Record(s)
			}
		}(w)
	}
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				_ = tr.Last(8)
				_ = tr.Total()
				_ = tr.Len()
				_ = tr.ByID("trace-1-5")
			}
		}()
	}
	// Writers finish, then release the readers.
	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	for i := 0; i < 3*300; i++ {
		if tr.Total() >= 900 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	close(stop)
	<-done
	if tr.Total() != 900 || tr.Len() != 16 {
		t.Fatalf("total=%d len=%d, want 900/16", tr.Total(), tr.Len())
	}
}

func TestHistogramExemplar(t *testing.T) {
	h := NewHistogram()
	if _, ok := h.Exemplar(); ok {
		t.Fatal("fresh histogram must have no exemplar")
	}
	h.ObserveExemplar(time.Millisecond, "") // untraced: observed but no exemplar
	if h.Count() != 1 {
		t.Fatal("untraced ObserveExemplar must still observe")
	}
	if _, ok := h.Exemplar(); ok {
		t.Fatal("untraced observation must not set an exemplar")
	}
	h.ObserveExemplar(time.Millisecond, "trace-slow")
	e, ok := h.Exemplar()
	if !ok || e.TraceID != "trace-slow" || e.Duration != time.Millisecond {
		t.Fatalf("exemplar = %+v ok=%v", e, ok)
	}
	// A faster observation does not displace a recent slower exemplar...
	h.ObserveExemplar(time.Microsecond, "trace-fast")
	if e, _ := h.Exemplar(); e.TraceID != "trace-slow" {
		t.Fatalf("fast observation displaced slow exemplar: %+v", e)
	}
	// ...but a slower (same-or-higher bucket) one does.
	h.ObserveExemplar(10*time.Millisecond, "trace-slower")
	if e, _ := h.Exemplar(); e.TraceID != "trace-slower" {
		t.Fatalf("slower observation must win the slot: %+v", e)
	}
}

func TestExemplarInExposition(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("test_latency_seconds", "Test latency.")
	h.ObserveExemplar(5*time.Millisecond, "trace-xyz")
	var b strings.Builder
	if err := reg.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "# exemplar test_latency_seconds") ||
		!strings.Contains(out, "trace_id=trace-xyz") {
		t.Fatalf("exposition missing exemplar comment:\n%s", out)
	}
	// Exemplars must be comments: every non-comment line stays "name value".
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if got := len(strings.Fields(line)); got != 2 {
			t.Fatalf("non-comment exposition line has %d fields: %q", got, line)
		}
	}
}

func TestRuntimeSampler(t *testing.T) {
	reg := NewRegistry()
	rs := StartRuntimeSampler(reg, time.Second)
	defer rs.Stop()
	var b strings.Builder
	if err := reg.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, fam := range []string{
		"cdml_runtime_goroutines",
		"cdml_runtime_heap_alloc_bytes",
		"cdml_runtime_memory_total_bytes",
		"cdml_runtime_gc_cycles_total",
		"cdml_runtime_gc_pause_p50",
		"cdml_runtime_sched_latency_p99",
	} {
		if !strings.Contains(out, fam) {
			t.Errorf("exposition missing %s", fam)
		}
	}
	// The synchronous first sample means goroutines is already non-zero.
	g := reg.Gauge("cdml_runtime_goroutines", "Live goroutines.")
	if g.Value() < 1 {
		t.Fatalf("goroutines gauge = %v, want >= 1", g.Value())
	}
	rs.Stop() // second Stop must not panic or deadlock
}
