package sample

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"cdml/internal/data"
)

func seqIDs(n int) []data.Timestamp {
	ids := make([]data.Timestamp, n)
	for i := range ids {
		ids[i] = data.Timestamp(i)
	}
	return ids
}

func assertDistinct(t *testing.T, got []data.Timestamp) {
	t.Helper()
	seen := make(map[data.Timestamp]bool)
	for _, id := range got {
		if seen[id] {
			t.Fatalf("duplicate id %d in sample %v", id, got)
		}
		seen[id] = true
	}
}

func TestUniformSampleSizeAndDistinct(t *testing.T) {
	u := NewUniform(1)
	got := u.Sample(seqIDs(100), 10)
	if len(got) != 10 {
		t.Fatalf("sample size = %d", len(got))
	}
	assertDistinct(t, got)
}

func TestSampleLargerThanPopulation(t *testing.T) {
	for _, s := range []Strategy{NewUniform(1), NewWindow(5, 1), NewTime(1)} {
		got := s.Sample(seqIDs(3), 10)
		max := 3
		if s.Name() == "window" {
			max = 3 // population smaller than window
		}
		if len(got) != max {
			t.Fatalf("%s: sample size = %d, want %d", s.Name(), len(got), max)
		}
		assertDistinct(t, got)
	}
}

func TestSampleZeroAndEmpty(t *testing.T) {
	for _, s := range []Strategy{NewUniform(1), NewWindow(5, 1), NewTime(1)} {
		if got := s.Sample(seqIDs(5), 0); len(got) != 0 {
			t.Fatalf("%s: zero-size sample returned %v", s.Name(), got)
		}
		if got := s.Sample(nil, 3); len(got) != 0 {
			t.Fatalf("%s: empty population returned %v", s.Name(), got)
		}
	}
}

func TestUniformDoesNotMutateInput(t *testing.T) {
	ids := seqIDs(20)
	NewUniform(1).Sample(ids, 5)
	for i, id := range ids {
		if id != data.Timestamp(i) {
			t.Fatal("input slice mutated")
		}
	}
}

func TestWindowOnlySamplesRecent(t *testing.T) {
	w := NewWindow(10, 1)
	for trial := 0; trial < 50; trial++ {
		got := w.Sample(seqIDs(100), 5)
		for _, id := range got {
			if id < 90 {
				t.Fatalf("window sampled id %d outside last 10", id)
			}
		}
	}
}

func TestWindowBadSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewWindow(0, 1)
}

func TestTimeFavorsRecent(t *testing.T) {
	tb := NewTime(1)
	var sumRecent, total int
	const trials = 400
	for trial := 0; trial < trials; trial++ {
		got := tb.Sample(seqIDs(100), 10)
		assertDistinct(t, got)
		for _, id := range got {
			total++
			if id >= 50 {
				sumRecent++
			}
		}
	}
	frac := float64(sumRecent) / float64(total)
	// With linear weights the newer half carries 75% of the probability mass.
	if frac < 0.65 {
		t.Fatalf("time-based sampler not recency-biased: recent fraction = %v", frac)
	}
}

func TestTimeZeroBiasIsUniformish(t *testing.T) {
	tb := &Time{Bias: 0, rng: rand.New(rand.NewSource(1))}
	var recent, total int
	for trial := 0; trial < 400; trial++ {
		for _, id := range tb.Sample(seqIDs(100), 10) {
			total++
			if id >= 50 {
				recent++
			}
		}
	}
	frac := float64(recent) / float64(total)
	if frac < 0.4 || frac > 0.6 {
		t.Fatalf("bias=0 should be near-uniform, recent fraction = %v", frac)
	}
}

func TestUniformCoverage(t *testing.T) {
	// Every id should be sampled eventually.
	u := NewUniform(42)
	seen := make(map[data.Timestamp]bool)
	for trial := 0; trial < 300; trial++ {
		for _, id := range u.Sample(seqIDs(20), 5) {
			seen[id] = true
		}
	}
	if len(seen) != 20 {
		t.Fatalf("uniform never sampled some ids: saw %d of 20", len(seen))
	}
}

func TestNewByName(t *testing.T) {
	for _, name := range []string{"uniform", "window", "time"} {
		s, err := New(name, 4, 1)
		if err != nil {
			t.Fatalf("New(%q): %v", name, err)
		}
		if s.Name() != name {
			t.Fatalf("Name = %q", s.Name())
		}
	}
	if _, err := New("window", 0, 1); err == nil {
		t.Fatal("window without size should error")
	}
	if _, err := New("bogus", 0, 1); err == nil {
		t.Fatal("unknown strategy should error")
	}
}

// Property: all strategies return distinct ids drawn from the population.
func TestQuickSamplesAreSubsets(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(60)
		s := r.Intn(n + 5)
		ids := seqIDs(n)
		pop := make(map[data.Timestamp]bool, n)
		for _, id := range ids {
			pop[id] = true
		}
		for _, strat := range []Strategy{NewUniform(seed), NewWindow(1+r.Intn(n), seed), NewTime(seed)} {
			got := strat.Sample(ids, s)
			seen := make(map[data.Timestamp]bool)
			for _, id := range got {
				if !pop[id] || seen[id] {
					return false
				}
				seen[id] = true
			}
			want := s
			if strat.Name() == "window" {
				w := strat.(*Window).W
				lim := n
				if w < lim {
					lim = w
				}
				if want > lim {
					want = lim
				}
			} else if want > n {
				want = n
			}
			if len(got) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestHarmonic(t *testing.T) {
	if Harmonic(0) != 0 {
		t.Fatal("H_0 should be 0")
	}
	if Harmonic(1) != 1 {
		t.Fatal("H_1 should be 1")
	}
	if got := Harmonic(4); math.Abs(got-(1+0.5+1.0/3+0.25)) > 1e-12 {
		t.Fatalf("H_4 = %v", got)
	}
	// Asymptotic branch must agree with exact summation.
	exact := 0.0
	for i := 1; i <= 20000; i++ {
		exact += 1 / float64(i)
	}
	if got := Harmonic(20000); math.Abs(got-exact) > 1e-9 {
		t.Fatalf("asymptotic H_20000 = %v, exact %v", got, exact)
	}
}

func TestMuUniformPaperNumbers(t *testing.T) {
	// Paper §3.2.2: N=12000, m=7200 gives μ ≈ 0.91.
	if got := MuUniform(12000, 7200); math.Abs(got-0.91) > 0.01 {
		t.Fatalf("MuUniform(12000,7200) = %v, want ≈0.91", got)
	}
	// Table 4: m/n = 0.2 gives μ ≈ 0.52.
	if got := MuUniform(12000, 2400); math.Abs(got-0.52) > 0.01 {
		t.Fatalf("MuUniform(12000,2400) = %v, want ≈0.52", got)
	}
}

func TestMuWindowPaperNumbers(t *testing.T) {
	// Table 4 window-based: m/n=0.2 (m=2400, w=6000) → 0.58; m/n=0.6 → 1.0.
	if got := MuWindow(12000, 2400, 6000); math.Abs(got-0.58) > 0.01 {
		t.Fatalf("MuWindow(12000,2400,6000) = %v, want ≈0.58", got)
	}
	if got := MuWindow(12000, 7200, 6000); got != 1 {
		t.Fatalf("MuWindow with m≥w = %v, want 1", got)
	}
}

func TestMuEdgeCases(t *testing.T) {
	if MuUniform(0, 5) != 1 || MuWindow(0, 5, 2) != 1 {
		t.Fatal("N=0 should give 1")
	}
	if MuUniform(10, 0) != 0 || MuWindow(10, 0, 5) != 0 {
		t.Fatal("m=0 should give 0")
	}
	if MuUniform(10, 10) != 1 || MuWindow(10, 12, 5) != 1 {
		t.Fatal("m>=N should give 1")
	}
	if MuWindow(10, 3, 0) != 1 {
		t.Fatal("w=0 degenerate should give 1")
	}
}

func TestMuLogApproxCloseToExact(t *testing.T) {
	for _, c := range []struct{ N, m int }{{12000, 2400}, {12000, 7200}, {5000, 1000}} {
		exact := MuUniform(c.N, c.m)
		approx := MuUniformLogApprox(c.N, c.m)
		if math.Abs(exact-approx) > 0.005 {
			t.Fatalf("N=%d m=%d: exact %v vs approx %v", c.N, c.m, exact, approx)
		}
	}
	if MuUniformLogApprox(10, 0) != 0 || MuUniformLogApprox(0, 1) != 1 {
		t.Fatal("approx edge cases wrong")
	}
}

// Property: μ is monotone in m for uniform sampling.
func TestQuickMuUniformMonotone(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		N := 10 + r.Intn(5000)
		m1 := r.Intn(N)
		m2 := m1 + r.Intn(N-m1)
		return MuUniform(N, m1) <= MuUniform(N, m2)+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Simulation check: empirical μ of uniform sampling over a growing store
// matches Formula (4). This mirrors Table 4's "empirical vs theoretical"
// comparison at small scale.
func TestEmpiricalMuMatchesTheory(t *testing.T) {
	const N, m, s = 600, 120, 20 // m/n = 0.2
	u := NewUniform(7)
	var muSum float64
	for n := 1; n <= N; n++ {
		ids := seqIDs(n)
		got := u.Sample(ids, s)
		hits := 0
		for _, id := range got {
			// Materialized set = newest m chunks (oldest-first eviction).
			if int(id) >= n-m {
				hits++
			}
		}
		muSum += float64(hits) / float64(len(got))
	}
	empirical := muSum / N
	theory := MuUniform(N, m)
	if math.Abs(empirical-theory) > 0.03 {
		t.Fatalf("empirical μ = %v, theory %v", empirical, theory)
	}
}
