// Package sample implements the data manager's chunk sampling strategies
// (paper §4.2) — uniform, window-based, and time-based — together with the
// analytical estimates of the materialization utilization rate μ from
// paper §3.2.2 (Formulas 4 and 5).
//
// All strategies sample without replacement over the chunk identifiers held
// by the data manager, which arrive in increasing timestamp order.
package sample

import (
	"fmt"
	"math"
	"math/rand"

	"cdml/internal/data"
)

// Strategy draws a without-replacement sample of chunk identifiers.
type Strategy interface {
	// Name identifies the strategy ("uniform", "window", "time").
	Name() string
	// Sample draws up to s distinct ids from ids, which must be sorted in
	// increasing (oldest-first) order. Fewer than s ids are returned when
	// the eligible population is smaller than s. The result order is
	// unspecified.
	Sample(ids []data.Timestamp, s int) []data.Timestamp
}

// Uniform samples every chunk with equal probability.
type Uniform struct {
	rng *rand.Rand
}

// NewUniform returns a uniform sampler with its own deterministic PRNG.
func NewUniform(seed int64) *Uniform {
	return &Uniform{rng: rand.New(rand.NewSource(seed))}
}

// Name implements Strategy.
func (u *Uniform) Name() string { return "uniform" }

// Sample implements Strategy via a partial Fisher-Yates shuffle.
func (u *Uniform) Sample(ids []data.Timestamp, s int) []data.Timestamp {
	return partialShuffle(u.rng, ids, s)
}

// Window samples uniformly from the most recent W chunks only.
type Window struct {
	// W is the number of chunks in the active window.
	W   int
	rng *rand.Rand
}

// NewWindow returns a window-based sampler over the w most recent chunks.
func NewWindow(w int, seed int64) *Window {
	if w <= 0 {
		panic("sample: window size must be positive")
	}
	return &Window{W: w, rng: rand.New(rand.NewSource(seed))}
}

// Name implements Strategy.
func (w *Window) Name() string { return "window" }

// Sample implements Strategy.
func (w *Window) Sample(ids []data.Timestamp, s int) []data.Timestamp {
	if len(ids) > w.W {
		ids = ids[len(ids)-w.W:]
	}
	return partialShuffle(w.rng, ids, s)
}

// Time samples with probability increasing in recency: the i-th oldest of n
// chunks carries weight (i+1)^Bias, so recent chunks are favored while old
// chunks always retain non-zero probability. Bias=1 (linear decay) is the
// default.
type Time struct {
	// Bias ≥ 0 controls how sharply recent chunks are preferred; 0 degrades
	// to uniform.
	Bias float64
	rng  *rand.Rand
}

// NewTime returns a time-based sampler with linear recency weighting.
func NewTime(seed int64) *Time {
	return &Time{Bias: 1, rng: rand.New(rand.NewSource(seed))}
}

// Name implements Strategy.
func (t *Time) Name() string { return "time" }

// Sample implements Strategy using the Efraimidis-Spirakis weighted
// reservoir in its exponential form: element i draws e_i = Exp(1)/w_i and
// the s smallest draws win (equivalent to taking the s largest u^(1/w)
// keys, since −ln u ~ Exp(1), but without any math.Pow in the loop for the
// default linear bias). A size-s max-heap keeps the draw O(n log s) — the
// data manager samples on every proactive training, so this path is hot.
func (t *Time) Sample(ids []data.Timestamp, s int) []data.Timestamp {
	if s >= len(ids) {
		return append([]data.Timestamp(nil), ids...)
	}
	if s <= 0 {
		return nil
	}
	heapIDs := make([]data.Timestamp, 0, s)
	heapKeys := make([]float64, 0, s) // max-heap over e_i: root = worst kept
	siftDown := func(i int) {
		for {
			l, r := 2*i+1, 2*i+2
			max := i
			if l < len(heapKeys) && heapKeys[l] > heapKeys[max] {
				max = l
			}
			if r < len(heapKeys) && heapKeys[r] > heapKeys[max] {
				max = r
			}
			if max == i {
				return
			}
			heapKeys[i], heapKeys[max] = heapKeys[max], heapKeys[i]
			heapIDs[i], heapIDs[max] = heapIDs[max], heapIDs[i]
			i = max
		}
	}
	linear := t.Bias == 1 //lint:allow floateq: Bias defaults to the exact constant 1 (linear decay fast path)
	for i, id := range ids {
		var w float64
		if linear {
			w = float64(i + 1)
		} else {
			w = math.Pow(float64(i+1), t.Bias)
		}
		e := t.rng.ExpFloat64() / w
		if len(heapKeys) < s {
			heapKeys = append(heapKeys, e)
			heapIDs = append(heapIDs, id)
			if len(heapKeys) == s { // heapify once full
				for j := s/2 - 1; j >= 0; j-- {
					siftDown(j)
				}
			}
			continue
		}
		if e < heapKeys[0] {
			heapKeys[0] = e
			heapIDs[0] = id
			siftDown(0)
		}
	}
	return heapIDs
}

// partialShuffle draws min(s, len(ids)) distinct elements uniformly.
func partialShuffle(rng *rand.Rand, ids []data.Timestamp, s int) []data.Timestamp {
	n := len(ids)
	if s > n {
		s = n
	}
	if s <= 0 {
		return nil
	}
	pool := append([]data.Timestamp(nil), ids...)
	for i := 0; i < s; i++ {
		j := i + rng.Intn(n-i)
		pool[i], pool[j] = pool[j], pool[i]
	}
	return pool[:s]
}

// New constructs a strategy by name: "uniform", "window" (requires w > 0),
// or "time".
func New(name string, w int, seed int64) (Strategy, error) {
	switch name {
	case "uniform":
		return NewUniform(seed), nil
	case "window":
		if w <= 0 {
			return nil, fmt.Errorf("sample: window strategy requires positive window size, got %d", w)
		}
		return NewWindow(w, seed), nil
	case "time":
		return NewTime(seed), nil
	default:
		return nil, fmt.Errorf("sample: unknown strategy %q", name)
	}
}
