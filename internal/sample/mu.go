package sample

import "math"

// Harmonic returns the t-th harmonic number H_t = 1 + 1/2 + ... + 1/t,
// computed exactly for small t and by the asymptotic expansion
// ln t + γ + 1/(2t) − 1/(12t²) beyond 10,000 terms.
func Harmonic(t int) float64 {
	if t <= 0 {
		return 0
	}
	if t <= 10000 {
		var h float64
		for i := 1; i <= t; i++ {
			h += 1 / float64(i)
		}
		return h
	}
	const gamma = 0.5772156649015329 // Euler–Mascheroni constant
	ft := float64(t)
	return math.Log(ft) + gamma + 1/(2*ft) - 1/(12*ft*ft)
}

// MuUniform returns the theoretical average materialization utilization
// rate μ for uniform sampling with N total chunks and capacity for m
// materialized chunks — paper §3.2.2, Formula (4):
//
//	μ = m(1 + H_N − H_m) / N
//
// using exact harmonic numbers (the paper approximates H_t ≈ ln t).
func MuUniform(N, m int) float64 {
	if N <= 0 {
		return 1
	}
	if m >= N {
		return 1
	}
	if m <= 0 {
		return 0
	}
	return float64(m) * (1 + Harmonic(N) - Harmonic(m)) / float64(N)
}

// MuWindow returns the theoretical μ for window-based sampling with window
// size w — paper §3.2.2, Formula (5):
//
//	μ = 1                                           if m ≥ w
//	μ = m(1 + H_w − H_m + (N−w)/w) / N              otherwise
func MuWindow(N, m, w int) float64 {
	if N <= 0 {
		return 1
	}
	if m >= N {
		return 1
	}
	if m <= 0 {
		return 0
	}
	if w <= 0 {
		return 1 // degenerate window: nothing old is ever sampled
	}
	if m >= w {
		return 1
	}
	if w > N {
		w = N
	}
	return float64(m) * (1 + Harmonic(w) - Harmonic(m) + float64(N-w)/float64(w)) / float64(N)
}

// MuUniformLogApprox is Formula (4) with the paper's ln-based approximation
// of harmonic numbers, kept for fidelity checks against the paper's own
// numbers: μ ≈ m(1 + ln N − ln m)/N.
func MuUniformLogApprox(N, m int) float64 {
	if N <= 0 || m >= N {
		return 1
	}
	if m <= 0 {
		return 0
	}
	return float64(m) * (1 + math.Log(float64(N)) - math.Log(float64(m))) / float64(N)
}
