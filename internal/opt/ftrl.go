package opt

import (
	"fmt"
	"math"

	"cdml/internal/linalg"
)

// FTRL implements the FTRL-Proximal optimizer of McMahan et al.'s "Ad
// Click Prediction: a View from the Trenches" — the ads-CTR setting the
// paper's introduction motivates continuous deployment with (§1, [23]).
// Its per-coordinate adaptive rates match AdaGrad while the L1 term drives
// untouched-in-expectation weights to exactly zero, yielding sparse models
// on hashed feature spaces.
//
// Unlike the other optimizers, FTRL owns the weight representation: Step
// overwrites w with the closed-form solution of the proximal problem, so
// w must not be mutated between steps by anything else.
type FTRL struct {
	// Alpha and Beta shape the per-coordinate learning rate
	// α/(β+√Σg²).
	Alpha, Beta float64
	// L1 and L2 are the regularization strengths.
	L1, L2 float64

	z []float64 // per-coordinate FTRL state
	n []float64 // per-coordinate squared-gradient sum
	t int64
}

// NewFTRL returns FTRL-Proximal with the reference defaults α=0.1, β=1,
// and the given L1/L2 strengths.
func NewFTRL(l1, l2 float64) *FTRL {
	if l1 < 0 || l2 < 0 {
		panic(fmt.Sprintf("opt: negative FTRL regularization l1=%v l2=%v", l1, l2))
	}
	return &FTRL{Alpha: 0.1, Beta: 1, L1: l1, L2: l2}
}

// Name implements Optimizer.
func (f *FTRL) Name() string { return "ftrl" }

// Step implements Optimizer.
//cdml:deterministic
func (f *FTRL) Step(w []float64, g linalg.Vector) {
	f.ensure(len(w))
	coordUpdate(g, func(i int, gi float64) {
		sigma := (math.Sqrt(f.n[i]+gi*gi) - math.Sqrt(f.n[i])) / f.Alpha
		f.z[i] += gi - sigma*w[i]
		f.n[i] += gi * gi
		w[i] = f.solve(i)
	})
	f.t++
}

// solve returns the closed-form weight for coordinate i given the current
// state.
func (f *FTRL) solve(i int) float64 {
	z := f.z[i]
	if math.Abs(z) <= f.L1 {
		return 0
	}
	sign := 1.0
	if z < 0 {
		sign = -1
	}
	return -(z - sign*f.L1) / ((f.Beta+math.Sqrt(f.n[i]))/f.Alpha + f.L2)
}

func (f *FTRL) ensure(dim int) {
	if f.z == nil {
		f.z = make([]float64, dim)
		f.n = make([]float64, dim)
	} else if len(f.z) != dim {
		panic(fmt.Sprintf("opt: ftrl state dim %d, weights dim %d", len(f.z), dim))
	}
}

// Steps implements Optimizer.
func (f *FTRL) Steps() int64 { return f.t }

// Reset implements Optimizer.
func (f *FTRL) Reset() { f.z, f.n, f.t = nil, nil, 0 }

// Clone implements Optimizer.
func (f *FTRL) Clone() Optimizer {
	c := *f
	c.z = linalg.CopyOf(f.z)
	c.n = linalg.CopyOf(f.n)
	return &c
}

// Sparsity returns the fraction of coordinates currently held at exactly
// zero by the L1 term, and 0 before any step.
func (f *FTRL) Sparsity(w []float64) float64 {
	if len(w) == 0 {
		return 0
	}
	zero := 0
	for _, v := range w {
		//lint:allow floateq: FTRL's proximal step produces exact zeros; that is what sparsity counts
		if v == 0 {
			zero++
		}
	}
	return float64(zero) / float64(len(w))
}
