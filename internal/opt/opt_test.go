package opt

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"cdml/internal/linalg"
)

// quadGrad returns the gradient of f(w) = 0.5*||w - target||^2.
func quadGrad(w, target []float64) linalg.Dense {
	g := make(linalg.Dense, len(w))
	for i := range w {
		g[i] = w[i] - target[i]
	}
	return g
}

// runQuadratic minimizes 0.5*||w-target||^2 with the given optimizer and
// returns the final distance to the optimum.
func runQuadratic(o Optimizer, steps int) float64 {
	target := []float64{3, -2, 0.5}
	w := make([]float64, len(target))
	for i := 0; i < steps; i++ {
		o.Step(w, quadGrad(w, target))
	}
	var d float64
	for i := range w {
		d += (w[i] - target[i]) * (w[i] - target[i])
	}
	return math.Sqrt(d)
}

func TestAllOptimizersConvergeOnQuadratic(t *testing.T) {
	cases := []struct {
		opt   Optimizer
		steps int
		tol   float64
	}{
		{NewSGD(0.1), 500, 1e-6},
		{NewMomentum(0.05), 800, 1e-4},
		{NewAdam(0.2), 2000, 1e-3},
		{NewRMSProp(0.01), 3000, 0.05},
		{NewAdaDelta(), 20000, 0.2},
	}
	for _, c := range cases {
		t.Run(c.opt.Name(), func(t *testing.T) {
			if d := runQuadratic(c.opt, c.steps); d > c.tol {
				t.Fatalf("%s did not converge: dist=%v > %v", c.opt.Name(), d, c.tol)
			}
		})
	}
}

func TestSGDDecayReducesStep(t *testing.T) {
	s := &SGD{LR: 1, Decay: 1}
	w := []float64{0}
	s.Step(w, linalg.Dense{1}) // eta = 1
	first := w[0]
	w[0] = 0
	s.Step(w, linalg.Dense{1}) // eta = 1/2
	if math.Abs(w[0]) >= math.Abs(first) {
		t.Fatalf("decay did not shrink step: %v then %v", first, w[0])
	}
}

func TestSGDSparseTouchesOnlyIndices(t *testing.T) {
	s := NewSGD(0.5)
	w := []float64{1, 1, 1}
	g := linalg.NewSparse(3, []int32{1}, []float64{2})
	s.Step(w, g)
	if w[0] != 1 || w[2] != 1 {
		t.Fatalf("untouched coords changed: %v", w)
	}
	if w[1] != 0 {
		t.Fatalf("w[1] = %v, want 0", w[1])
	}
}

// Property: for every optimizer, a sparse gradient never changes untouched
// coordinates, and produces the same update on touched coordinates as the
// equivalent dense gradient applied to a fresh clone.
func TestQuickSparseDenseStepAgreement(t *testing.T) {
	makers := []func() Optimizer{
		func() Optimizer { return NewSGD(0.1) },
		func() Optimizer { return NewMomentum(0.1) },
		func() Optimizer { return NewAdam(0.1) },
		func() Optimizer { return NewRMSProp(0.1) },
		func() Optimizer { return NewAdaDelta() },
		func() Optimizer { return NewFTRL(0.01, 0.01) },
	}
	for _, mk := range makers {
		name := mk().Name()
		f := func(seed int64) bool {
			r := rand.New(rand.NewSource(seed))
			dim := 2 + r.Intn(16)
			// Build a sparse gradient touching every coordinate so the lazy
			// and dense paths are mathematically identical.
			idx := make([]int32, dim)
			val := make([]float64, dim)
			for i := 0; i < dim; i++ {
				idx[i] = int32(i)
				val[i] = r.NormFloat64()
			}
			sg := linalg.NewSparse(dim, idx, val)
			dg := sg.ToDense()

			w1 := make([]float64, dim)
			w2 := make([]float64, dim)
			for i := range w1 {
				w1[i] = r.NormFloat64()
				w2[i] = w1[i]
			}
			o1, o2 := mk(), mk()
			for step := 0; step < 3; step++ {
				o1.Step(w1, sg)
				o2.Step(w2, dg)
			}
			for i := range w1 {
				if math.Abs(w1[i]-w2[i]) > 1e-12 {
					return false
				}
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

func TestCloneIsolatesState(t *testing.T) {
	a := NewAdam(0.1)
	w := []float64{0, 0}
	a.Step(w, linalg.Dense{1, 1})
	c := a.Clone().(*Adam)
	w1 := linalg.CopyOf(w)
	w2 := linalg.CopyOf(w)
	a.Step(w1, linalg.Dense{1, 1})
	c.Step(w2, linalg.Dense{1, 1})
	// identical continuation
	if w1[0] != w2[0] {
		t.Fatalf("clone diverged immediately: %v vs %v", w1[0], w2[0])
	}
	// mutating the original must not affect the clone
	a.Step(w1, linalg.Dense{5, 5})
	w3 := linalg.CopyOf(w2)
	c.Step(w3, linalg.Dense{1, 1})
	a2 := a.Clone().(*Adam)
	_ = a2
	if c.t != 3 {
		t.Fatalf("clone step counter = %d, want 3", c.t)
	}
}

func TestResetClearsState(t *testing.T) {
	for _, o := range []Optimizer{NewSGD(0.1), NewMomentum(0.1), NewAdam(0.1), NewRMSProp(0.1), NewAdaDelta()} {
		w := []float64{1, 1}
		o.Step(w, linalg.Dense{1, 1})
		o.Reset()
		// After reset, stepping on different-dimension weights must work
		// (state re-allocates rather than panicking).
		w2 := []float64{1, 1, 1}
		o.Step(w2, linalg.Dense{1, 1, 1})
	}
}

func TestDimensionMismatchPanics(t *testing.T) {
	for _, o := range []Optimizer{NewMomentum(0.1), NewAdam(0.1), NewRMSProp(0.1), NewAdaDelta()} {
		o.Step([]float64{1, 1}, linalg.Dense{1, 1})
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic on dim change", o.Name())
				}
			}()
			o.Step([]float64{1, 1, 1}, linalg.Dense{1, 1, 1})
		}()
	}
}

func TestNewByName(t *testing.T) {
	for _, name := range []string{"sgd", "momentum", "adam", "rmsprop", "adadelta"} {
		o, err := New(name, 0.1)
		if err != nil {
			t.Fatalf("New(%q): %v", name, err)
		}
		if o.Name() != name {
			t.Fatalf("Name = %q, want %q", o.Name(), name)
		}
	}
	if _, err := New("bogus", 0.1); err == nil {
		t.Fatal("expected error for unknown optimizer")
	}
}

func TestAdamBiasCorrectionFirstStep(t *testing.T) {
	// On the first step Adam's update should be ≈ LR * sign(g).
	a := NewAdam(0.1)
	w := []float64{0}
	a.Step(w, linalg.Dense{42})
	if math.Abs(w[0]+0.1) > 1e-6 {
		t.Fatalf("first Adam step = %v, want ≈ -0.1", w[0])
	}
}

func TestRMSPropStepMagnitudeBounded(t *testing.T) {
	r := NewRMSProp(0.01)
	w := []float64{0}
	for i := 0; i < 10; i++ {
		r.Step(w, linalg.Dense{1000})
	}
	// RMSProp normalizes by gradient magnitude; after 10 steps of a huge
	// constant gradient the travel should be on the order of 10*LR/sqrt(1-rho^t).
	if math.Abs(w[0]) > 1 {
		t.Fatalf("RMSProp step not normalized: w=%v", w[0])
	}
}

func TestAdaDeltaNoLearningRate(t *testing.T) {
	a := NewAdaDelta()
	w := []float64{10}
	prev := w[0]
	for i := 0; i < 100; i++ {
		a.Step(w, linalg.Dense{w[0]})
	}
	if math.Abs(w[0]) >= math.Abs(prev) {
		t.Fatalf("AdaDelta made no progress: %v", w[0])
	}
}
