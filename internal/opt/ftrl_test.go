package opt

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"cdml/internal/linalg"
)

func TestFTRLConvergesOnQuadratic(t *testing.T) {
	f := NewFTRL(0, 0)
	f.Alpha = 0.5
	target := []float64{3, -2, 0.5}
	w := make([]float64, 3)
	for i := 0; i < 3000; i++ {
		g := make(linalg.Dense, 3)
		for k := range g {
			g[k] = w[k] - target[k]
		}
		f.Step(w, g)
	}
	for k := range w {
		if math.Abs(w[k]-target[k]) > 0.05 {
			t.Fatalf("w[%d] = %v, want %v", k, w[k], target[k])
		}
	}
}

func TestFTRLL1InducesSparsity(t *testing.T) {
	// Logistic-style gradients from a model where only 3 of 100 features
	// matter: FTRL's L1 term should hold a meaningful fraction of the
	// uninformative weights at exactly zero, which plain adaptive methods
	// never do.
	run := func(o Optimizer) []float64 {
		r := rand.New(rand.NewSource(1))
		const dim = 100
		w := make([]float64, dim)
		trueW := make([]float64, dim)
		trueW[3], trueW[47], trueW[90] = 2, -2, 1.5
		for it := 0; it < 3000; it++ {
			x := make(linalg.Dense, dim)
			for k := range x {
				if r.Float64() < 0.1 {
					x[k] = r.NormFloat64()
				}
			}
			score := 0.0
			for k := range x {
				score += trueW[k] * x[k]
			}
			y := 0.0
			if score+0.1*r.NormFloat64() > 0 {
				y = 1
			}
			pred := 1 / (1 + math.Exp(-linalg.DotDense(w, x)))
			g := make(linalg.Dense, dim)
			for k := range g {
				g[k] = (pred - y) * x[k]
			}
			o.Step(w, g)
		}
		return w
	}
	f := NewFTRL(2.0, 0.1)
	f.Alpha = 0.2
	wFTRL := run(f)
	wAdam := run(NewAdam(0.05))
	exactZeros := func(w []float64) int {
		n := 0
		for _, v := range w {
			if v == 0 {
				n++
			}
		}
		return n
	}
	if z := exactZeros(wFTRL); z < 15 {
		t.Fatalf("FTRL produced only %d exact zeros of 100", z)
	}
	if z := exactZeros(wAdam); z != 0 {
		t.Fatalf("Adam unexpectedly produced %d exact zeros", z)
	}
	// The informative coordinates must survive with the right signs.
	if wFTRL[3] <= 0 || wFTRL[47] >= 0 || wFTRL[90] <= 0 {
		t.Fatalf("informative weights wrong: %v %v %v", wFTRL[3], wFTRL[47], wFTRL[90])
	}
	if sp := f.Sparsity(wFTRL); sp <= 0 {
		t.Fatalf("Sparsity = %v", sp)
	}
}

func TestFTRLSparseGradientTouchesOnlyIndices(t *testing.T) {
	f := NewFTRL(0, 0)
	w := make([]float64, 5)
	f.Step(w, linalg.Dense{1, 1, 1, 1, 1})
	before := linalg.CopyOf(w)
	f.Step(w, linalg.NewSparse(5, []int32{2}, []float64{1}))
	for k := range w {
		if k != 2 && w[k] != before[k] {
			t.Fatalf("untouched coord %d changed", k)
		}
	}
	if w[2] == before[2] {
		t.Fatal("touched coord unchanged")
	}
}

func TestFTRLNegativeRegPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewFTRL(-1, 0)
}

func TestFTRLCloneAndReset(t *testing.T) {
	f := NewFTRL(0.01, 0.01)
	w := []float64{0, 0}
	f.Step(w, linalg.Dense{1, 1})
	c := f.Clone().(*FTRL)
	c.z[0] = 999
	if f.z[0] == 999 {
		t.Fatal("clone shares state")
	}
	f.Reset()
	w2 := []float64{0, 0, 0}
	f.Step(w2, linalg.Dense{1, 1, 1}) // re-allocates at new dim
	if f.Name() != "ftrl" {
		t.Fatal("name wrong")
	}
}

func TestNewByNameFTRL(t *testing.T) {
	o, err := New("ftrl", 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if o.Name() != "ftrl" || o.(*FTRL).Alpha != 0.3 {
		t.Fatal("ftrl construction wrong")
	}
}

func TestOptimizerSaveLoadRoundTrip(t *testing.T) {
	makers := []Optimizer{
		NewSGD(0.1), NewMomentum(0.2), NewAdam(0.3), NewRMSProp(0.4), NewAdaDelta(), NewFTRL(0.01, 0.02),
	}
	for _, o := range makers {
		// Build up state.
		w := []float64{0.5, -0.5, 1}
		for i := 0; i < 5; i++ {
			o.Step(w, linalg.Dense{1, -2, 0.5})
		}
		var buf bytes.Buffer
		if err := Save(&buf, o); err != nil {
			t.Fatalf("%s: %v", o.Name(), err)
		}
		got, err := Load(&buf)
		if err != nil {
			t.Fatalf("%s: %v", o.Name(), err)
		}
		if got.Name() != o.Name() {
			t.Fatalf("round trip changed kind: %s -> %s", o.Name(), got.Name())
		}
		// The restored optimizer must continue identically.
		w1 := linalg.CopyOf(w)
		w2 := linalg.CopyOf(w)
		for i := 0; i < 3; i++ {
			o.Step(w1, linalg.Dense{0.3, 0.3, 0.3})
			got.Step(w2, linalg.Dense{0.3, 0.3, 0.3})
		}
		for k := range w1 {
			if math.Abs(w1[k]-w2[k]) > 1e-12 {
				t.Fatalf("%s: restored optimizer diverged at %d: %v vs %v", o.Name(), k, w1[k], w2[k])
			}
		}
	}
}

func TestOptimizerLoadGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("junk"))); err == nil {
		t.Fatal("expected decode error")
	}
}
