package opt

import (
	"encoding/gob"
	"fmt"
	"io"
)

// snapshot is the serialized form of an optimizer, enabling warm restarts
// of a deployment across process boundaries (the in-process counterpart is
// Clone). All per-coordinate state vectors are persisted; the paper's warm
// starting explicitly carries "learning rate adaptation parameters (e.g.
// the average of past gradients used in Adadelta, Adam, and Rmsprop)"
// across trainings (§5.2).
type snapshot struct {
	Kind string

	LR, Decay            float64 // sgd
	Beta                 float64 // momentum
	Beta1, Beta2, Eps    float64 // adam / rmsprop (Rho stored in Beta1)
	Alpha, BetaF, L1, L2 float64 // ftrl
	T                    int64
	V1, V2               []float64 // per-coordinate state vectors
}

// Save serializes an optimizer (including per-coordinate state) to w.
func Save(w io.Writer, o Optimizer) error {
	var s snapshot
	switch t := o.(type) {
	case *SGD:
		s = snapshot{Kind: "sgd", LR: t.LR, Decay: t.Decay, T: t.t}
	case *Momentum:
		s = snapshot{Kind: "momentum", LR: t.LR, Beta: t.Beta, T: t.t, V1: t.v}
	case *Adam:
		s = snapshot{Kind: "adam", LR: t.LR, Beta1: t.Beta1, Beta2: t.Beta2, Eps: t.Eps, T: t.t, V1: t.m, V2: t.v}
	case *RMSProp:
		s = snapshot{Kind: "rmsprop", LR: t.LR, Beta1: t.Rho, Eps: t.Eps, T: t.t, V1: t.v}
	case *AdaDelta:
		s = snapshot{Kind: "adadelta", Beta1: t.Rho, Eps: t.Eps, T: t.t, V1: t.eg, V2: t.ex}
	case *FTRL:
		s = snapshot{Kind: "ftrl", Alpha: t.Alpha, BetaF: t.Beta, L1: t.L1, L2: t.L2, T: t.t, V1: t.z, V2: t.n}
	default:
		return fmt.Errorf("opt: cannot save unknown optimizer type %T", o)
	}
	if err := gob.NewEncoder(w).Encode(s); err != nil {
		return fmt.Errorf("opt: encoding %s: %w", s.Kind, err)
	}
	return nil
}

// Load deserializes an optimizer written by Save.
func Load(r io.Reader) (Optimizer, error) {
	var s snapshot
	if err := gob.NewDecoder(r).Decode(&s); err != nil {
		return nil, fmt.Errorf("opt: decoding: %w", err)
	}
	switch s.Kind {
	case "sgd":
		return &SGD{LR: s.LR, Decay: s.Decay, t: s.T}, nil
	case "momentum":
		return &Momentum{LR: s.LR, Beta: s.Beta, v: s.V1, t: s.T}, nil
	case "adam":
		return &Adam{LR: s.LR, Beta1: s.Beta1, Beta2: s.Beta2, Eps: s.Eps, m: s.V1, v: s.V2, t: s.T}, nil
	case "rmsprop":
		return &RMSProp{LR: s.LR, Rho: s.Beta1, Eps: s.Eps, v: s.V1, t: s.T}, nil
	case "adadelta":
		return &AdaDelta{Rho: s.Beta1, Eps: s.Eps, eg: s.V1, ex: s.V2, t: s.T}, nil
	case "ftrl":
		return &FTRL{Alpha: s.Alpha, Beta: s.BetaF, L1: s.L1, L2: s.L2, z: s.V1, n: s.V2, t: s.T}, nil
	default:
		return nil, fmt.Errorf("opt: unknown optimizer kind %q", s.Kind)
	}
}
