// Package opt implements the stochastic-gradient optimizers the proactive
// trainer relies on (paper §2.1, §4.4): plain SGD with inverse-time decay,
// Momentum, and the per-coordinate adaptive methods Adam, RMSProp, and
// AdaDelta.
//
// All optimizers apply updates in place to a dense weight slice. When the
// gradient is sparse, only the touched coordinates are visited ("lazy"
// adaptive updates): the first- and second-moment state of untouched
// coordinates is left undisturbed. This is the standard sparse variant used
// by large-scale systems and is essential for the URL-like workload, where
// the weight vector has hundreds of thousands of coordinates but each
// mini-batch touches only a few thousand.
//
// Optimizer state is snapshot-able (Clone) so the periodical baseline can
// implement TFX-style warm starting, which reuses the adaptive-rate moments
// across retrainings (paper §5.2).
package opt

import (
	"fmt"
	"math"

	"cdml/internal/linalg"
)

// Optimizer applies gradient steps to a dense weight vector.
type Optimizer interface {
	// Name identifies the method (e.g. "adam").
	Name() string
	// Step applies one update w ← w − step(g) in place and advances the
	// internal iteration counter. The gradient may be dense or sparse.
	//cdml:deterministic
	Step(w []float64, g linalg.Vector)
	// Steps returns the number of optimizer steps taken since creation or
	// the last Reset. Data-parallel training reduces per-shard partial
	// gradients before a single Step, so the counter — and every adaptive
	// moment — advances once per mini-batch regardless of shard count.
	Steps() int64
	// Reset clears all per-coordinate state and the iteration counter.
	Reset()
	// Clone returns a deep copy of the optimizer including its state, used
	// for warm starting and for hyperparameter sweeps that must not share
	// state.
	Clone() Optimizer
}

// coordUpdate visits every touched coordinate of g, calling f(i, gi).
func coordUpdate(g linalg.Vector, f func(i int, gi float64)) {
	switch t := g.(type) {
	case *linalg.Sparse:
		for k, i := range t.Idx {
			f(int(i), t.Val[k])
		}
	case linalg.Dense:
		for i, v := range t {
			f(i, v)
		}
	default:
		for i := 0; i < g.Dim(); i++ {
			f(i, g.At(i))
		}
	}
}

// SGD is plain stochastic gradient descent with optional inverse-time
// learning-rate decay: eta_t = LR / (1 + Decay·t).
type SGD struct {
	LR    float64
	Decay float64
	t     int64
}

// NewSGD returns an SGD optimizer with the given base learning rate and no
// decay.
func NewSGD(lr float64) *SGD { return &SGD{LR: lr} }

// Name implements Optimizer.
func (s *SGD) Name() string { return "sgd" }

// Step implements Optimizer.
//cdml:deterministic
func (s *SGD) Step(w []float64, g linalg.Vector) {
	eta := s.LR / (1 + s.Decay*float64(s.t))
	coordUpdate(g, func(i int, gi float64) {
		w[i] -= eta * gi
	})
	s.t++
}

// Steps implements Optimizer.
func (s *SGD) Steps() int64 { return s.t }

// Reset implements Optimizer.
func (s *SGD) Reset() { s.t = 0 }

// Clone implements Optimizer.
func (s *SGD) Clone() Optimizer { c := *s; return &c }

// Momentum is SGD with classical (heavy-ball) momentum.
type Momentum struct {
	LR   float64
	Beta float64
	v    []float64
	t    int64
}

// NewMomentum returns a momentum optimizer with the conventional beta=0.9.
func NewMomentum(lr float64) *Momentum { return &Momentum{LR: lr, Beta: 0.9} }

// Name implements Optimizer.
func (m *Momentum) Name() string { return "momentum" }

// Step implements Optimizer.
//cdml:deterministic
func (m *Momentum) Step(w []float64, g linalg.Vector) {
	m.ensure(len(w))
	coordUpdate(g, func(i int, gi float64) {
		m.v[i] = m.Beta*m.v[i] + gi
		w[i] -= m.LR * m.v[i]
	})
	m.t++
}

func (m *Momentum) ensure(dim int) {
	if m.v == nil {
		m.v = make([]float64, dim)
	} else if len(m.v) != dim {
		panic(fmt.Sprintf("opt: momentum state dim %d, weights dim %d", len(m.v), dim))
	}
}

// Steps implements Optimizer.
func (m *Momentum) Steps() int64 { return m.t }

// Reset implements Optimizer.
func (m *Momentum) Reset() { m.v = nil; m.t = 0 }

// Clone implements Optimizer.
func (m *Momentum) Clone() Optimizer {
	c := *m
	c.v = linalg.CopyOf(m.v)
	return &c
}

// Adam implements Kingma & Ba's Adam with lazy sparse updates: first/second
// moments decay only when a coordinate is touched, while the bias correction
// uses the global step counter.
type Adam struct {
	LR, Beta1, Beta2, Eps float64

	m, v []float64
	t    int64
}

// NewAdam returns Adam with the paper-standard defaults beta1=0.9,
// beta2=0.999, eps=1e-8.
func NewAdam(lr float64) *Adam {
	return &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8}
}

// Name implements Optimizer.
func (a *Adam) Name() string { return "adam" }

// Step implements Optimizer.
//cdml:deterministic
func (a *Adam) Step(w []float64, g linalg.Vector) {
	a.ensure(len(w))
	a.t++
	bc1 := 1 - math.Pow(a.Beta1, float64(a.t))
	bc2 := 1 - math.Pow(a.Beta2, float64(a.t))
	coordUpdate(g, func(i int, gi float64) {
		a.m[i] = a.Beta1*a.m[i] + (1-a.Beta1)*gi
		a.v[i] = a.Beta2*a.v[i] + (1-a.Beta2)*gi*gi
		mHat := a.m[i] / bc1
		vHat := a.v[i] / bc2
		w[i] -= a.LR * mHat / (math.Sqrt(vHat) + a.Eps)
	})
}

func (a *Adam) ensure(dim int) {
	if a.m == nil {
		a.m = make([]float64, dim)
		a.v = make([]float64, dim)
	} else if len(a.m) != dim {
		panic(fmt.Sprintf("opt: adam state dim %d, weights dim %d", len(a.m), dim))
	}
}

// Steps implements Optimizer.
func (a *Adam) Steps() int64 { return a.t }

// Reset implements Optimizer.
func (a *Adam) Reset() { a.m, a.v, a.t = nil, nil, 0 }

// Clone implements Optimizer.
func (a *Adam) Clone() Optimizer {
	c := *a
	c.m = linalg.CopyOf(a.m)
	c.v = linalg.CopyOf(a.v)
	return &c
}

// RMSProp implements Tieleman & Hinton's RMSProp with lazy sparse updates.
type RMSProp struct {
	LR, Rho, Eps float64

	v []float64
	t int64
}

// NewRMSProp returns RMSProp with the conventional rho=0.9, eps=1e-8.
func NewRMSProp(lr float64) *RMSProp {
	return &RMSProp{LR: lr, Rho: 0.9, Eps: 1e-8}
}

// Name implements Optimizer.
func (r *RMSProp) Name() string { return "rmsprop" }

// Step implements Optimizer.
//cdml:deterministic
func (r *RMSProp) Step(w []float64, g linalg.Vector) {
	r.ensure(len(w))
	coordUpdate(g, func(i int, gi float64) {
		r.v[i] = r.Rho*r.v[i] + (1-r.Rho)*gi*gi
		w[i] -= r.LR * gi / (math.Sqrt(r.v[i]) + r.Eps)
	})
	r.t++
}

func (r *RMSProp) ensure(dim int) {
	if r.v == nil {
		r.v = make([]float64, dim)
	} else if len(r.v) != dim {
		panic(fmt.Sprintf("opt: rmsprop state dim %d, weights dim %d", len(r.v), dim))
	}
}

// Steps implements Optimizer.
func (r *RMSProp) Steps() int64 { return r.t }

// Reset implements Optimizer.
func (r *RMSProp) Reset() { r.v = nil; r.t = 0 }

// Clone implements Optimizer.
func (r *RMSProp) Clone() Optimizer {
	c := *r
	c.v = linalg.CopyOf(r.v)
	return &c
}

// AdaDelta implements Zeiler's AdaDelta. It has no learning-rate parameter;
// the per-coordinate step is derived from the ratio of accumulated update
// and gradient magnitudes.
type AdaDelta struct {
	Rho, Eps float64

	eg, ex []float64
	t      int64
}

// NewAdaDelta returns AdaDelta with the conventional rho=0.95, eps=1e-6.
func NewAdaDelta() *AdaDelta { return &AdaDelta{Rho: 0.95, Eps: 1e-6} }

// Name implements Optimizer.
func (a *AdaDelta) Name() string { return "adadelta" }

// Step implements Optimizer.
//cdml:deterministic
func (a *AdaDelta) Step(w []float64, g linalg.Vector) {
	a.ensure(len(w))
	coordUpdate(g, func(i int, gi float64) {
		a.eg[i] = a.Rho*a.eg[i] + (1-a.Rho)*gi*gi
		dx := -math.Sqrt(a.ex[i]+a.Eps) / math.Sqrt(a.eg[i]+a.Eps) * gi
		a.ex[i] = a.Rho*a.ex[i] + (1-a.Rho)*dx*dx
		w[i] += dx
	})
	a.t++
}

func (a *AdaDelta) ensure(dim int) {
	if a.eg == nil {
		a.eg = make([]float64, dim)
		a.ex = make([]float64, dim)
	} else if len(a.eg) != dim {
		panic(fmt.Sprintf("opt: adadelta state dim %d, weights dim %d", len(a.eg), dim))
	}
}

// Steps implements Optimizer.
func (a *AdaDelta) Steps() int64 { return a.t }

// Reset implements Optimizer.
func (a *AdaDelta) Reset() { a.eg, a.ex, a.t = nil, nil, 0 }

// Clone implements Optimizer.
func (a *AdaDelta) Clone() Optimizer {
	c := *a
	c.eg = linalg.CopyOf(a.eg)
	c.ex = linalg.CopyOf(a.ex)
	return &c
}

// New constructs an optimizer by name: "sgd", "momentum", "adam", "rmsprop",
// or "adadelta". The learning rate is ignored by AdaDelta. It returns an
// error for unknown names.
func New(name string, lr float64) (Optimizer, error) {
	switch name {
	case "sgd":
		return NewSGD(lr), nil
	case "momentum":
		return NewMomentum(lr), nil
	case "adam":
		return NewAdam(lr), nil
	case "rmsprop":
		return NewRMSProp(lr), nil
	case "adadelta":
		return NewAdaDelta(), nil
	case "ftrl":
		// Conventional CTR defaults; LR maps onto α.
		f := NewFTRL(1e-3, 1e-4)
		if lr > 0 {
			f.Alpha = lr
		}
		return f, nil
	default:
		return nil, fmt.Errorf("opt: unknown optimizer %q", name)
	}
}
