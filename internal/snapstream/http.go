package snapstream

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"
)

// The HTTP transport: a replica polls its primary's snapshot endpoint
// with the version it already holds; the primary answers 304 Not Modified
// when nothing newer exists, or the full frame otherwise. Either way the
// response carries the primary's current snapshot version in a header, so
// a replica can report version lag even while it is up to date or while a
// frame transfer is failing.

// VersionHeader carries the serving snapshot version of the responding
// primary on every snapshot response, including 304s.
const VersionHeader = "X-Snapshot-Version"

// maxFrameBytes bounds one polled frame transfer (matches the serve
// layer's request body cap).
const maxFrameBytes = 16 << 20

// HTTPSource polls a primary's snapshot endpoint. Safe for use by one
// poller goroutine with concurrent KnownVersion readers.
type HTTPSource struct {
	// URL is the primary's snapshot endpoint for one deployment, e.g.
	// http://primary:8080/v1/deployments/default/snapshot.
	URL string
	// Client is the HTTP client to poll with (http.DefaultClient if nil).
	Client *http.Client

	// known is the primary's serving version from the most recent
	// successful response (200 or 304) — the replica's lag reference.
	known atomic.Uint64
}

// NewHTTPSource polls url with a client bounded by timeout (0 means no
// timeout beyond the poll context's).
func NewHTTPSource(url string, timeout time.Duration) *HTTPSource {
	return &HTTPSource{URL: url, Client: &http.Client{Timeout: timeout}}
}

// KnownVersion is the primary's serving snapshot version as of the last
// successful poll (0 before the first).
func (s *HTTPSource) KnownVersion() uint64 { return s.known.Load() }

// Latest polls the primary for a frame newer than since. A 304 response
// returns ok=false; a 200 response is decoded and CRC-validated, so a
// truncated or corrupted body surfaces as an error and never a frame.
func (s *HTTPSource) Latest(ctx context.Context, since uint64) (Frame, bool, error) {
	url := s.URL
	if since > 0 {
		url += "?since=" + strconv.FormatUint(since, 10)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return Frame{}, false, fmt.Errorf("snapstream: building poll request: %w", err)
	}
	client := s.Client
	if client == nil {
		client = http.DefaultClient
	}
	resp, err := client.Do(req)
	if err != nil {
		return Frame{}, false, fmt.Errorf("snapstream: polling %s: %w", s.URL, err)
	}
	defer func() {
		_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, maxFrameBytes))
		_ = resp.Body.Close()
	}()
	if v, err := strconv.ParseUint(resp.Header.Get(VersionHeader), 10, 64); err == nil {
		s.known.Store(v)
	}
	switch resp.StatusCode {
	case http.StatusNotModified:
		return Frame{}, false, nil
	case http.StatusOK:
	default:
		return Frame{}, false, fmt.Errorf("snapstream: polling %s: unexpected status %d", s.URL, resp.StatusCode)
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, maxFrameBytes+1))
	if err != nil {
		return Frame{}, false, fmt.Errorf("snapstream: reading frame from %s: %w", s.URL, err)
	}
	if len(body) > maxFrameBytes {
		return Frame{}, false, fmt.Errorf("snapstream: frame from %s exceeds %d bytes", s.URL, maxFrameBytes)
	}
	f, err := DecodeFrame(s.URL, body)
	if err != nil {
		return Frame{}, false, err
	}
	return f, true, nil
}
