// Package snapstream is the single codec and transport layer for moving
// versioned snapshot frames between deployments. One frame format — the
// CDMLCKP1 checkpoint frame introduced by the crash-durability layer —
// now carries every snapshot movement in the system: in-process publish
// hand-off, durable checkpoint files, HTTP checkpoint/restore, and
// primary→replica shipping. A Source yields frames (a deployment's
// published snapshot, a checkpoint directory, a remote primary polled
// over HTTP); a Sink consumes them (an atomic in-process swap, a durable
// file writer). Composing one Source with one Sink is a replication
// path; the torn-frame and CRC validation that hardened checkpoint
// recovery hardens every other transport for free.
//
// Frame layout (unchanged from the on-disk checkpoint format):
//
//	magic   [8]byte  "CDMLCKP1"
//	version uint64   big-endian snapshot version
//	length  uint64   big-endian payload byte count
//	payload []byte   Snapshot.encodeTo output (gob streams)
//	crc     uint32   big-endian IEEE CRC-32 of payload
//
// A torn transfer — crash mid-write, truncated HTTP body, bit rot —
// fails the length or CRC check and the consumer keeps its last good
// snapshot.
package snapstream

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// Magic is the 8-byte frame preamble shared with the checkpoint files.
const Magic = "CDMLCKP1"

// frameOverhead is the fixed byte cost around a payload: magic + version +
// length header plus the trailing CRC.
const frameOverhead = len(Magic) + 8 + 8 + 4

// ErrNoFrame reports that a source holds no frame at all — an empty
// checkpoint directory on a cold start, not a failure.
var ErrNoFrame = errors.New("snapstream: no frame available")

// ErrTornFrame reports a frame cut short mid-write: the buffer ends before
// the header, payload, or CRC completes. Sequential readers (the ingest
// log) treat a torn frame at the tail of the active file as the crash
// point and truncate there; a torn frame anywhere else is corruption.
var ErrTornFrame = errors.New("snapstream: torn frame")

// Frame is one versioned, encoded snapshot. The payload is the gob stream
// produced by the snapshot encoder; snapstream treats it as opaque bytes.
type Frame struct {
	// Version is the snapshot version (ticks = version-1 for a live
	// deployment). Monotonically increasing per deployment lineage.
	Version uint64
	// Payload is the encoded snapshot body.
	Payload []byte
}

// Source yields versioned snapshot frames. Latest returns the newest frame
// strictly newer than since; ok is false (with a zero Frame and nil error)
// when nothing newer exists — the polling idle case, not an error. A
// failing source returns err.
type Source interface {
	Latest(ctx context.Context, since uint64) (f Frame, ok bool, err error)
}

// Sink consumes snapshot frames. Apply either installs the frame
// atomically or rejects it leaving prior state untouched — a half-applied
// frame is never observable.
type Sink interface {
	Apply(f Frame) error
}

// EncodedLen returns the full wire length of a frame.
func EncodedLen(f Frame) int {
	return frameOverhead + len(f.Payload)
}

// AppendFrame appends the wire encoding of f to dst and returns the
// extended slice.
func AppendFrame(dst []byte, f Frame) []byte {
	return AppendFrameMagic(dst, Magic, f)
}

// AppendFrameMagic appends the wire encoding of f under a caller-chosen
// 8-byte magic. The frame layout is otherwise identical to the checkpoint
// frame; other record streams (the write-ahead ingest log) reuse the
// codec with their own preamble so files cannot masquerade across formats.
func AppendFrameMagic(dst []byte, magic string, f Frame) []byte {
	dst = append(dst, magic...)
	dst = binary.BigEndian.AppendUint64(dst, f.Version)
	dst = binary.BigEndian.AppendUint64(dst, uint64(len(f.Payload)))
	dst = append(dst, f.Payload...)
	return binary.BigEndian.AppendUint32(dst, crc32.ChecksumIEEE(f.Payload))
}

// NextFrame decodes the first frame in b under the given 8-byte magic and
// returns it together with the remaining bytes — the sequential-scan
// counterpart of DecodeFrame for files holding many concatenated frames.
// The returned payload aliases b. A buffer ending mid-frame reports
// ErrTornFrame (wrapped, with the byte position); a wrong magic or CRC
// mismatch is a plain corruption error. name labels the stream's origin
// in error messages.
func NextFrame(magic, name string, b []byte) (Frame, []byte, error) {
	const headerLen = 24 // magic + version + length
	if len(b) < headerLen {
		return Frame{}, nil, fmt.Errorf("snapstream: %s: %w (%d header bytes of %d)",
			name, ErrTornFrame, len(b), headerLen)
	}
	if string(b[:len(magic)]) != magic {
		return Frame{}, nil, fmt.Errorf("snapstream: %s: bad frame magic %q", name, b[:len(magic)])
	}
	version := binary.BigEndian.Uint64(b[8:16])
	n := binary.BigEndian.Uint64(b[16:24])
	total := uint64(headerLen) + n + 4
	if uint64(len(b)) < total {
		return Frame{}, nil, fmt.Errorf("snapstream: %s: %w (have %d payload bytes, header says %d)",
			name, ErrTornFrame, len(b)-headerLen, n)
	}
	payload := b[headerLen : headerLen+n]
	if got, want := crc32.ChecksumIEEE(payload), binary.BigEndian.Uint32(b[headerLen+n:]); got != want {
		return Frame{}, nil, fmt.Errorf("snapstream: %s: frame CRC mismatch (corrupted payload)", name)
	}
	return Frame{Version: version, Payload: payload}, b[total:], nil
}

// EncodeFrame returns the full wire encoding of f.
func EncodeFrame(f Frame) []byte {
	return AppendFrame(make([]byte, 0, EncodedLen(f)), f)
}

// DecodeFrame validates a wire-encoded frame (magic, length, CRC) and
// returns its version and payload. name labels the frame's origin (a file
// base name, a primary URL) in error messages. The returned payload
// aliases b. Torn or corrupted frames are reported as errors without any
// partial result.
func DecodeFrame(name string, b []byte) (Frame, error) {
	if len(b) < len(Magic)+20 || string(b[:len(Magic)]) != Magic {
		return Frame{}, fmt.Errorf("snapstream: %s: not a checkpoint frame", name)
	}
	version := binary.BigEndian.Uint64(b[8:16])
	n := binary.BigEndian.Uint64(b[16:24])
	if uint64(len(b)) != 24+n+4 {
		return Frame{}, fmt.Errorf("snapstream: %s: torn frame (have %d payload bytes, header says %d)",
			name, len(b)-frameOverhead, n)
	}
	payload := b[24 : 24+n]
	if got, want := crc32.ChecksumIEEE(payload), binary.BigEndian.Uint32(b[24+n:]); got != want {
		return Frame{}, fmt.Errorf("snapstream: %s: frame CRC mismatch (corrupted payload)", name)
	}
	return Frame{Version: version, Payload: payload}, nil
}
