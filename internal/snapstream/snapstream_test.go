package snapstream

import (
	"bytes"
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	f := Frame{Version: 42, Payload: []byte("hello snapshot payload")}
	wire := EncodeFrame(f)
	if len(wire) != EncodedLen(f) {
		t.Fatalf("EncodedLen = %d, wire = %d", EncodedLen(f), len(wire))
	}
	got, err := DecodeFrame("test", wire)
	if err != nil {
		t.Fatalf("DecodeFrame: %v", err)
	}
	if got.Version != f.Version || !bytes.Equal(got.Payload, f.Payload) {
		t.Fatalf("round trip mismatch: got %+v want %+v", got, f)
	}
}

func TestDecodeFrameDetectsCorruption(t *testing.T) {
	whole := EncodeFrame(Frame{Version: 7, Payload: []byte("payload bytes")})
	cases := []struct {
		name string
		data []byte
		want string
	}{
		{"torn", whole[:len(whole)/2], "torn"},
		{"bad-magic", append([]byte("NOTACKPT"), whole[8:]...), "not a checkpoint"},
		{"bit-flip", func() []byte {
			b := bytes.Clone(whole)
			b[len(Magic)+20] ^= 0x40
			return b
		}(), "CRC"},
		{"empty", nil, "not a checkpoint"},
	}
	for _, tc := range cases {
		if _, err := DecodeFrame(tc.name, tc.data); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want substring %q", tc.name, err, tc.want)
		}
	}
}

func TestFileRoundTripAndList(t *testing.T) {
	dir := t.TempDir()
	for v := uint64(1); v <= 3; v++ {
		if _, err := WriteFile(dir, Frame{Version: v, Payload: []byte{byte(v)}}, nil); err != nil {
			t.Fatalf("WriteFile v%d: %v", v, err)
		}
	}
	// A stray tmp file from a crashed write must be cleaned up by List.
	stray := filepath.Join(dir, "ckpt-0000000000000099.ckpt.tmp")
	if err := os.WriteFile(stray, []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	files, err := List(dir)
	if err != nil {
		t.Fatalf("List: %v", err)
	}
	if len(files) != 3 || files[0].Version != 3 || files[2].Version != 1 {
		t.Fatalf("List = %+v, want versions 3,2,1", files)
	}
	if _, err := os.Stat(stray); !os.IsNotExist(err) {
		t.Fatalf("stray tmp file not removed: %v", err)
	}
	f, err := ReadFile(files[0].Path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	if f.Version != 3 || !bytes.Equal(f.Payload, []byte{3}) {
		t.Fatalf("ReadFile = %+v", f)
	}
}

func TestReadFileRejectsRenamedVersion(t *testing.T) {
	dir := t.TempDir()
	if _, err := WriteFile(dir, Frame{Version: 5, Payload: []byte("x")}, nil); err != nil {
		t.Fatal(err)
	}
	renamed := FilePath(dir, 9)
	if err := os.Rename(FilePath(dir, 5), renamed); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFile(renamed); err == nil || !strings.Contains(err.Error(), "does not match filename") {
		t.Fatalf("renamed frame: err = %v, want filename mismatch", err)
	}
}

type captureSink struct{ frames []Frame }

func (s *captureSink) Apply(f Frame) error {
	s.frames = append(s.frames, f)
	return nil
}

func TestDirSourceRestoreFallsBackPastTornFiles(t *testing.T) {
	dir := t.TempDir()
	if _, err := WriteFile(dir, Frame{Version: 1, Payload: []byte("good")}, nil); err != nil {
		t.Fatal(err)
	}
	whole := EncodeFrame(Frame{Version: 2, Payload: []byte("newer")})
	if err := os.WriteFile(FilePath(dir, 2), whole[:len(whole)-6], 0o644); err != nil {
		t.Fatal(err)
	}
	var sink captureSink
	info, err := DirSource{Dir: dir}.Restore(&sink)
	if err != nil {
		t.Fatalf("Restore: %v", err)
	}
	if info.Version != 1 || len(sink.frames) != 1 || sink.frames[0].Version != 1 {
		t.Fatalf("Restore fell back wrong: info=%+v frames=%+v", info, sink.frames)
	}

	if _, err := (DirSource{Dir: t.TempDir()}).Restore(&sink); !errors.Is(err, ErrNoFrame) {
		t.Fatalf("empty dir: err = %v, want ErrNoFrame", err)
	}
	if _, err := (DirSource{Dir: filepath.Join(t.TempDir(), "missing")}).Restore(&sink); !errors.Is(err, ErrNoFrame) {
		t.Fatalf("missing dir: err = %v, want ErrNoFrame", err)
	}
}

func TestDirSourceLatestHonorsSince(t *testing.T) {
	dir := t.TempDir()
	for v := uint64(1); v <= 2; v++ {
		if _, err := WriteFile(dir, Frame{Version: v, Payload: []byte{byte(v)}}, nil); err != nil {
			t.Fatal(err)
		}
	}
	src := DirSource{Dir: dir}
	f, ok, err := src.Latest(context.Background(), 1)
	if err != nil || !ok || f.Version != 2 {
		t.Fatalf("Latest(1) = %+v %v %v, want v2", f, ok, err)
	}
	if _, ok, err := src.Latest(context.Background(), 2); err != nil || ok {
		t.Fatalf("Latest(2) = ok=%v err=%v, want idle", ok, err)
	}
}

func TestHTTPSourcePollProtocol(t *testing.T) {
	frame := Frame{Version: 6, Payload: []byte("model state")}
	wire := EncodeFrame(frame)
	var torn bool
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set(VersionHeader, strconv.FormatUint(frame.Version, 10))
		since, _ := strconv.ParseUint(r.URL.Query().Get("since"), 10, 64)
		if since >= frame.Version {
			w.WriteHeader(http.StatusNotModified)
			return
		}
		if torn {
			_, _ = w.Write(wire[:len(wire)-3])
			return
		}
		_, _ = w.Write(wire)
	}))
	defer ts.Close()

	src := NewHTTPSource(ts.URL, 0)
	f, ok, err := src.Latest(context.Background(), 0)
	if err != nil || !ok {
		t.Fatalf("Latest(0): ok=%v err=%v", ok, err)
	}
	if f.Version != 6 || !bytes.Equal(f.Payload, frame.Payload) {
		t.Fatalf("Latest(0) = %+v", f)
	}
	if src.KnownVersion() != 6 {
		t.Fatalf("KnownVersion = %d, want 6", src.KnownVersion())
	}
	if _, ok, err := src.Latest(context.Background(), 6); err != nil || ok {
		t.Fatalf("Latest(6) = ok=%v err=%v, want 304 idle", ok, err)
	}
	torn = true
	if _, _, err := src.Latest(context.Background(), 0); err == nil || !strings.Contains(err.Error(), "torn") {
		t.Fatalf("torn body: err = %v, want torn frame error", err)
	}
	if src.KnownVersion() != 6 {
		t.Fatalf("KnownVersion after torn poll = %d, want 6", src.KnownVersion())
	}
}
