package snapstream

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"cdml/internal/obs"
)

// The file layer: durable frames under the checkpoint naming scheme
// (ckpt-%016d.ckpt, zero-padded so lexical order equals version order),
// written tmp+fsync+rename so a crash at any point leaves either the old
// file set or the old set plus one complete new file — never a torn frame
// under the final name.

const (
	filePrefix = "ckpt-"
	fileSuffix = ".ckpt"
)

// FileInfo identifies one durable frame file.
type FileInfo struct {
	// Version is the snapshot version stored in the frame header (and
	// encoded in the file name).
	Version uint64
	// Path is the frame file.
	Path string
	// At is when the file was written.
	At time.Time
}

// FilePath names the frame file of a snapshot version inside dir.
func FilePath(dir string, version uint64) string {
	return filepath.Join(dir, fmt.Sprintf("%s%016d%s", filePrefix, version, fileSuffix))
}

// WriteFile durably persists one frame into dir. The write is crash-safe:
// the encoded frame goes to a *.tmp file which is fsynced, atomically
// renamed into place, and the directory entry is fsynced. Stage spans
// (write, fsync, rename) attach under parent; nil disables tracing (span
// methods are nil-safe).
func WriteFile(dir string, f Frame, parent *obs.Span) (FileInfo, error) {
	frame := EncodeFrame(f)
	path := FilePath(dir, f.Version)
	tmp := path + ".tmp"
	wr := parent.StartChild("write")
	fh, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return FileInfo{}, fmt.Errorf("snapstream: creating frame temp file: %w", err)
	}
	if _, err := fh.Write(frame); err != nil {
		_ = fh.Close()
		_ = os.Remove(tmp)
		return FileInfo{}, fmt.Errorf("snapstream: writing frame: %w", err)
	}
	wr.Finish()
	fs := parent.StartChild("fsync")
	if err := fh.Sync(); err != nil {
		_ = fh.Close()
		_ = os.Remove(tmp)
		return FileInfo{}, fmt.Errorf("snapstream: syncing frame: %w", err)
	}
	if err := fh.Close(); err != nil {
		_ = os.Remove(tmp)
		return FileInfo{}, fmt.Errorf("snapstream: closing frame: %w", err)
	}
	fs.Finish()
	rn := parent.StartChild("rename")
	if err := os.Rename(tmp, path); err != nil {
		_ = os.Remove(tmp)
		return FileInfo{}, fmt.Errorf("snapstream: publishing frame: %w", err)
	}
	if err := syncDir(dir); err != nil {
		return FileInfo{}, err
	}
	rn.Finish()
	return FileInfo{Version: f.Version, Path: path, At: time.Now()}, nil
}

// SyncDir fsyncs a directory so a just-renamed or just-created entry
// survives power loss — shared by the checkpoint writer and the ingest
// log's segment rolls.
func SyncDir(dir string) error {
	return syncDir(dir)
}

// syncDir fsyncs a directory so a just-renamed entry survives power loss.
func syncDir(dir string) error {
	df, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("snapstream: opening frame dir for sync: %w", err)
	}
	serr := df.Sync()
	cerr := df.Close()
	if serr != nil {
		return fmt.Errorf("snapstream: syncing frame dir: %w", serr)
	}
	if cerr != nil {
		return fmt.Errorf("snapstream: closing frame dir: %w", cerr)
	}
	return nil
}

// ReadFile reads and validates one frame file. The header version is
// checked against the version encoded in the file name, so a renamed or
// mislabeled file cannot masquerade as a different recovery point.
func ReadFile(path string) (Frame, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return Frame{}, fmt.Errorf("snapstream: reading frame: %w", err)
	}
	f, err := DecodeFrame(filepath.Base(path), b)
	if err != nil {
		return Frame{}, err
	}
	name := filepath.Base(path)
	if want, ok := versionFromName(name); ok && want != f.Version {
		return Frame{}, fmt.Errorf("snapstream: %s: header version %d does not match filename", name, f.Version)
	}
	return f, nil
}

// versionFromName parses the version out of a ckpt-%016d.ckpt file name.
func versionFromName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, filePrefix) || !strings.HasSuffix(name, fileSuffix) {
		return 0, false
	}
	v, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, filePrefix), fileSuffix), 10, 64)
	if err != nil {
		return 0, false
	}
	return v, true
}

// List returns dir's frame files, newest (highest version) first, and
// removes stray *.tmp files left by a crash mid-write.
func List(dir string) ([]FileInfo, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("snapstream: listing frame dir: %w", err)
	}
	var out []FileInfo
	for _, e := range entries {
		name := e.Name()
		if strings.HasSuffix(name, fileSuffix+".tmp") {
			// A crash between create and rename leaves a temp file; it is by
			// definition not a published frame, so clear it out.
			_ = os.Remove(filepath.Join(dir, name))
			continue
		}
		v, ok := versionFromName(name)
		if !ok {
			continue
		}
		info := FileInfo{Version: v, Path: filepath.Join(dir, name)}
		if fi, err := e.Info(); err == nil {
			info.At = fi.ModTime()
		}
		out = append(out, info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Version > out[j].Version })
	return out, nil
}

// DirSource yields frames from a checkpoint directory — the recovery-side
// counterpart of WriteFile.
type DirSource struct {
	// Dir is the frame directory.
	Dir string
}

// Latest returns the newest valid frame with version > since, skipping
// torn or corrupted files (recovery falls back to the next-older file).
// ok is false when no file is newer than since; ErrNoFrame when the
// directory holds no frame files at all.
func (s DirSource) Latest(_ context.Context, since uint64) (Frame, bool, error) {
	files, err := List(s.Dir)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return Frame{}, false, ErrNoFrame
		}
		return Frame{}, false, err
	}
	if len(files) == 0 {
		return Frame{}, false, ErrNoFrame
	}
	var reasons []string
	for _, fi := range files {
		if fi.Version <= since {
			break // newest-first: everything after is older still
		}
		f, err := ReadFile(fi.Path)
		if err != nil {
			reasons = append(reasons, err.Error())
			continue
		}
		return f, true, nil
	}
	if len(reasons) > 0 {
		return Frame{}, false, fmt.Errorf("snapstream: no valid frame newer than %d in %s: %s",
			since, s.Dir, strings.Join(reasons, "; "))
	}
	return Frame{}, false, nil
}

// Restore feeds the newest applicable frame into sink, falling back to
// older files when a newer one is torn, fails to decode, or is rejected by
// the sink. It returns ErrNoFrame when the directory holds no frame files
// (cold start) and an error naming every rejected file when none of the
// present frames is usable.
func (s DirSource) Restore(sink Sink) (FileInfo, error) {
	files, err := List(s.Dir)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return FileInfo{}, ErrNoFrame
		}
		return FileInfo{}, err
	}
	if len(files) == 0 {
		return FileInfo{}, ErrNoFrame
	}
	var reasons []string
	for _, fi := range files {
		f, err := ReadFile(fi.Path)
		if err == nil {
			err = sink.Apply(f)
		}
		if err != nil {
			reasons = append(reasons, err.Error())
			continue
		}
		return FileInfo{Version: f.Version, Path: fi.Path, At: fi.At}, nil
	}
	return FileInfo{}, fmt.Errorf("snapstream: no valid frame in %s: %s",
		s.Dir, strings.Join(reasons, "; "))
}
