package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return false
	}
	diff := math.Abs(a - b)
	if diff <= tol {
		return true
	}
	return diff <= tol*math.Max(math.Abs(a), math.Abs(b))
}

func TestDenseDot(t *testing.T) {
	d := Dense{1, 2, 3}
	w := []float64{4, 5, 6}
	if got := d.Dot(w); got != 32 {
		t.Fatalf("Dot = %v, want 32", got)
	}
}

func TestDenseDotDimensionPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on short weights")
		}
	}()
	Dense{1, 2, 3}.Dot([]float64{1})
}

func TestDenseAt(t *testing.T) {
	d := Dense{7, 8}
	if d.At(0) != 7 || d.At(1) != 8 {
		t.Fatalf("At mismatch: %v", d)
	}
}

func TestDenseAddScaledTo(t *testing.T) {
	d := Dense{1, 2}
	dst := []float64{10, 20}
	d.AddScaledTo(dst, 2)
	if dst[0] != 12 || dst[1] != 24 {
		t.Fatalf("AddScaledTo = %v", dst)
	}
}

func TestDenseL2(t *testing.T) {
	d := Dense{3, 4}
	if got := d.L2(); got != 5 {
		t.Fatalf("L2 = %v, want 5", got)
	}
}

func TestDenseClone(t *testing.T) {
	d := Dense{1, 2}
	c := d.Clone().(Dense)
	c[0] = 99
	if d[0] != 1 {
		t.Fatal("Clone did not deep-copy")
	}
}

func TestNewSparseSortsAndMerges(t *testing.T) {
	s := NewSparse(10, []int32{5, 1, 5}, []float64{2, 3, 4})
	if s.NNZ() != 2 {
		t.Fatalf("NNZ = %d, want 2", s.NNZ())
	}
	if s.Idx[0] != 1 || s.Idx[1] != 5 {
		t.Fatalf("indices not sorted: %v", s.Idx)
	}
	if s.At(5) != 6 {
		t.Fatalf("duplicate indices not merged: At(5)=%v", s.At(5))
	}
}

func TestNewSparseOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on out-of-range index")
		}
	}()
	NewSparse(3, []int32{3}, []float64{1})
}

func TestNewSparseLenMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on len mismatch")
		}
	}()
	NewSparse(3, []int32{1, 2}, []float64{1})
}

func TestSparseAt(t *testing.T) {
	s := NewSparse(8, []int32{2, 6}, []float64{1.5, -3})
	cases := map[int]float64{0: 0, 2: 1.5, 3: 0, 6: -3, 7: 0}
	for i, want := range cases {
		if got := s.At(i); got != want {
			t.Errorf("At(%d) = %v, want %v", i, got, want)
		}
	}
}

func TestSparseAtPanics(t *testing.T) {
	s := NewSparse(4, nil, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	s.At(4)
}

func TestSparseDotMatchesDense(t *testing.T) {
	s := NewSparse(6, []int32{0, 3, 5}, []float64{1, 2, 3})
	w := []float64{1, 1, 1, 10, 1, 100}
	want := s.ToDense().Dot(w)
	if got := s.Dot(w); got != want {
		t.Fatalf("sparse Dot = %v, dense Dot = %v", got, want)
	}
}

func TestSparseCompact(t *testing.T) {
	s := NewSparse(5, []int32{1, 2, 3}, []float64{0, 7, 0})
	s.Compact()
	if s.NNZ() != 1 || s.At(2) != 7 {
		t.Fatalf("Compact wrong: %v", s)
	}
}

func TestSparseScale(t *testing.T) {
	s := NewSparse(3, []int32{1}, []float64{4})
	s.Scale(0.5)
	if s.At(1) != 2 {
		t.Fatalf("Scale wrong: %v", s.At(1))
	}
}

func TestSparseClone(t *testing.T) {
	s := NewSparse(3, []int32{1}, []float64{4})
	c := s.Clone().(*Sparse)
	c.Val[0] = 99
	if s.Val[0] != 4 {
		t.Fatal("Clone did not deep-copy")
	}
}

// randomSparse builds a reproducible random sparse vector for property tests.
func randomSparse(r *rand.Rand, dim, nnz int) *Sparse {
	idx := make([]int32, nnz)
	val := make([]float64, nnz)
	for i := range idx {
		idx[i] = int32(r.Intn(dim))
		val[i] = r.NormFloat64()
	}
	return NewSparse(dim, idx, val)
}

// Property: sparse operations agree with their dense expansions.
func TestQuickSparseDenseAgreement(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		dim := 1 + r.Intn(64)
		s := randomSparse(r, dim, r.Intn(2*dim))
		d := s.ToDense()
		w := make([]float64, dim)
		for i := range w {
			w[i] = r.NormFloat64()
		}
		if !almostEqual(s.Dot(w), d.Dot(w), 1e-9) {
			return false
		}
		if !almostEqual(s.L2(), d.L2(), 1e-9) {
			return false
		}
		dst1 := make([]float64, dim)
		dst2 := make([]float64, dim)
		s.AddScaledTo(dst1, 2.5)
		d.AddScaledTo(dst2, 2.5)
		for i := range dst1 {
			if !almostEqual(dst1[i], dst2[i], 1e-9) {
				return false
			}
		}
		for i := 0; i < dim; i++ {
			if !almostEqual(s.At(i), d.At(i), 1e-12) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: NewSparse output always has strictly increasing indices.
func TestQuickNewSparseSorted(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		dim := 1 + r.Intn(128)
		s := randomSparse(r, dim, r.Intn(3*dim))
		for k := 1; k < len(s.Idx); k++ {
			if s.Idx[k] <= s.Idx[k-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestOpsAxpyScaleDot(t *testing.T) {
	x := []float64{1, 2}
	y := []float64{10, 20}
	Axpy(2, x, y)
	if y[0] != 12 || y[1] != 24 {
		t.Fatalf("Axpy = %v", y)
	}
	Scale(0.5, y)
	if y[0] != 6 || y[1] != 12 {
		t.Fatalf("Scale = %v", y)
	}
	if got := DotDense(x, y); got != 30 {
		t.Fatalf("DotDense = %v, want 30", got)
	}
	if got := Norm2([]float64{3, 4}); got != 5 {
		t.Fatalf("Norm2 = %v", got)
	}
}

func TestOpsAxpyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Axpy(1, []float64{1}, []float64{1, 2})
}

func TestZeroAndCopyOf(t *testing.T) {
	x := []float64{1, 2, 3}
	c := CopyOf(x)
	Zero(x)
	if x[0] != 0 || x[2] != 0 {
		t.Fatalf("Zero failed: %v", x)
	}
	if c[0] != 1 || c[2] != 3 {
		t.Fatalf("CopyOf affected by Zero: %v", c)
	}
}

func TestAccumulatorSparseOnly(t *testing.T) {
	a := NewAccumulator(6)
	a.Add(NewSparse(6, []int32{1, 4}, []float64{1, 2}), 1)
	a.Add(NewSparse(6, []int32{1, 3}, []float64{3, 4}), 2)
	res := a.Result(0.5)
	s, ok := res.(*Sparse)
	if !ok {
		t.Fatalf("expected sparse result, got %T", res)
	}
	if got := s.At(1); !almostEqual(got, 3.5, 1e-12) { // (1 + 6) * 0.5
		t.Fatalf("At(1) = %v, want 3.5", got)
	}
	if got := s.At(3); !almostEqual(got, 4, 1e-12) {
		t.Fatalf("At(3) = %v, want 4", got)
	}
	if got := s.At(4); !almostEqual(got, 1, 1e-12) {
		t.Fatalf("At(4) = %v, want 1", got)
	}
}

func TestAccumulatorDensePromotion(t *testing.T) {
	a := NewAccumulator(3)
	a.Add(NewSparse(3, []int32{0}, []float64{1}), 1)
	a.Add(Dense{0, 1, 0}, 1)
	res := a.Result(1)
	if _, ok := res.(Dense); !ok {
		t.Fatalf("expected dense result, got %T", res)
	}
	if res.At(0) != 1 || res.At(1) != 1 {
		t.Fatalf("wrong result: %v", res)
	}
}

func TestAccumulatorReuseAfterReset(t *testing.T) {
	a := NewAccumulator(4)
	a.Add(NewSparse(4, []int32{2}, []float64{5}), 1)
	_ = a.Result(1)
	a.Add(NewSparse(4, []int32{1}, []float64{7}), 1)
	res := a.Result(1)
	if res.At(2) != 0 {
		t.Fatalf("stale state after reset: At(2)=%v", res.At(2))
	}
	if res.At(1) != 7 {
		t.Fatalf("At(1)=%v, want 7", res.At(1))
	}
}

func TestAccumulatorReuseAfterDenseReset(t *testing.T) {
	a := NewAccumulator(3)
	a.Add(Dense{1, 2, 3}, 1)
	_ = a.Result(1)
	a.Add(NewSparse(3, []int32{0}, []float64{1}), 1)
	res := a.Result(1)
	if res.At(1) != 0 || res.At(2) != 0 {
		t.Fatalf("stale dense state after reset: %v", res)
	}
}

func TestAccumulatorAddCoord(t *testing.T) {
	a := NewAccumulator(3)
	a.AddCoord(2, 1.5)
	a.AddCoord(2, 0.5)
	res := a.Result(2)
	if res.At(2) != 4 {
		t.Fatalf("At(2)=%v, want 4", res.At(2))
	}
}

// Property: accumulating k sparse vectors then extracting equals the dense sum.
func TestQuickAccumulatorMatchesDenseSum(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		dim := 1 + r.Intn(32)
		k := 1 + r.Intn(8)
		a := NewAccumulator(dim)
		want := make([]float64, dim)
		for j := 0; j < k; j++ {
			s := randomSparse(r, dim, r.Intn(dim+1))
			alpha := r.NormFloat64()
			a.Add(s, alpha)
			s.AddScaledTo(want, alpha)
		}
		scale := r.NormFloat64()
		got := a.Result(scale)
		for i := 0; i < dim; i++ {
			if !almostEqual(got.At(i), want[i]*scale, 1e-9) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestStringRenderings(t *testing.T) {
	if got := (Dense{1, 2}).String(); got == "" {
		t.Fatal("empty dense string")
	}
	if got := NewSparse(4, []int32{1}, []float64{2}).String(); got == "" {
		t.Fatal("empty sparse string")
	}
}
