// Package linalg provides the dense and sparse vector primitives used by
// the pipeline components, models, and optimizers.
//
// The platform deals with two very different feature regimes: the URL-like
// workload produces extremely high-dimensional, very sparse feature vectors
// (feature hashing into 2^18 buckets), while the Taxi-like workload produces
// short dense vectors (~11 features). Vector is the common interface; Dense
// and Sparse are the two concrete representations. Model weights are always
// dense (a single weight vector is small even at high dimension), while
// per-example gradients follow the sparsity of the example.
package linalg

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Vector is a read-only view of a feature vector. Implementations must be
// safe for concurrent readers.
type Vector interface {
	// Dim returns the dimensionality of the vector.
	//cdml:deterministic
	Dim() int
	// At returns the value at index i. It panics if i is out of range.
	//cdml:deterministic
	At(i int) float64
	// Dot returns the inner product with the dense vector w. It panics if
	// len(w) < Dim().
	//cdml:deterministic
	Dot(w []float64) float64
	// AddScaledTo computes dst += alpha * v for a dense destination.
	//cdml:deterministic
	AddScaledTo(dst []float64, alpha float64)
	// NNZ returns the number of explicitly stored (potentially non-zero)
	// entries.
	//cdml:deterministic
	NNZ() int
	// L2 returns the Euclidean norm of the vector.
	//cdml:deterministic
	L2() float64
	// Clone returns a deep copy of the vector.
	Clone() Vector
}

// Dense is a dense vector backed by a []float64.
type Dense []float64

// NewDense returns a zero dense vector of dimension dim.
//cdml:deterministic
func NewDense(dim int) Dense { return make(Dense, dim) }

// Dim implements Vector.
//cdml:deterministic
func (d Dense) Dim() int { return len(d) }

// At implements Vector.
//cdml:deterministic
func (d Dense) At(i int) float64 { return d[i] }

// NNZ implements Vector. For a dense vector every entry is stored.
//cdml:deterministic
func (d Dense) NNZ() int { return len(d) }

// Dot implements Vector.
//
//cdml:hotpath
//cdml:deterministic
func (d Dense) Dot(w []float64) float64 {
	if len(w) < len(d) {
		panic(fmt.Sprintf("linalg: Dot dimension mismatch: vector %d, weights %d", len(d), len(w)))
	}
	var s float64
	for i, v := range d {
		s += v * w[i]
	}
	return s
}

// AddScaledTo implements Vector.
//
//cdml:hotpath
//cdml:deterministic
func (d Dense) AddScaledTo(dst []float64, alpha float64) {
	if len(dst) < len(d) {
		panic(fmt.Sprintf("linalg: AddScaledTo dimension mismatch: vector %d, dst %d", len(d), len(dst)))
	}
	for i, v := range d {
		dst[i] += alpha * v
	}
}

// L2 implements Vector.
//
//cdml:hotpath
//cdml:deterministic
func (d Dense) L2() float64 {
	var s float64
	for _, v := range d {
		s += v * v
	}
	return math.Sqrt(s)
}

// Clone implements Vector.
func (d Dense) Clone() Vector {
	c := make(Dense, len(d))
	copy(c, d)
	return c
}

// String renders the vector for debugging.
func (d Dense) String() string {
	parts := make([]string, len(d))
	for i, v := range d {
		parts[i] = fmt.Sprintf("%.4g", v)
	}
	return "[" + strings.Join(parts, " ") + "]"
}

// Sparse is a sparse vector in coordinate format. Indices must be strictly
// increasing; use NewSparse to construct one safely from unsorted input.
type Sparse struct {
	// N is the nominal dimensionality of the vector.
	N int
	// Idx holds the indices of the stored entries in strictly increasing
	// order.
	Idx []int32
	// Val holds the values of the stored entries, parallel to Idx.
	Val []float64
}

// NewSparse builds a sparse vector of dimension dim from parallel index and
// value slices. The input is copied, sorted by index, and duplicate indices
// are summed. Entries with value 0 are kept (callers may rely on explicit
// zeros for presence semantics); use Compact to drop them.
//cdml:deterministic
func NewSparse(dim int, idx []int32, val []float64) *Sparse {
	if len(idx) != len(val) {
		panic(fmt.Sprintf("linalg: NewSparse: len(idx)=%d != len(val)=%d", len(idx), len(val)))
	}
	type pair struct {
		i int32
		v float64
	}
	pairs := make([]pair, len(idx))
	for k := range idx {
		if idx[k] < 0 || int(idx[k]) >= dim {
			panic(fmt.Sprintf("linalg: NewSparse: index %d out of range [0,%d)", idx[k], dim))
		}
		pairs[k] = pair{idx[k], val[k]}
	}
	sort.Slice(pairs, func(a, b int) bool { return pairs[a].i < pairs[b].i })
	s := &Sparse{N: dim, Idx: make([]int32, 0, len(pairs)), Val: make([]float64, 0, len(pairs))}
	for _, p := range pairs {
		if n := len(s.Idx); n > 0 && s.Idx[n-1] == p.i {
			s.Val[n-1] += p.v
			continue
		}
		s.Idx = append(s.Idx, p.i)
		s.Val = append(s.Val, p.v)
	}
	return s
}

// Dim implements Vector.
//cdml:deterministic
func (s *Sparse) Dim() int { return s.N }

// NNZ implements Vector.
//cdml:deterministic
func (s *Sparse) NNZ() int { return len(s.Idx) }

// At implements Vector. It is O(log NNZ).
//cdml:deterministic
func (s *Sparse) At(i int) float64 {
	if i < 0 || i >= s.N {
		panic(fmt.Sprintf("linalg: Sparse.At: index %d out of range [0,%d)", i, s.N))
	}
	k := sort.Search(len(s.Idx), func(k int) bool { return s.Idx[k] >= int32(i) })
	if k < len(s.Idx) && s.Idx[k] == int32(i) {
		return s.Val[k]
	}
	return 0
}

// Dot implements Vector.
//
//cdml:hotpath
//cdml:deterministic
func (s *Sparse) Dot(w []float64) float64 {
	if len(w) < s.N {
		panic(fmt.Sprintf("linalg: Dot dimension mismatch: vector %d, weights %d", s.N, len(w)))
	}
	var sum float64
	for k, i := range s.Idx {
		sum += s.Val[k] * w[i]
	}
	return sum
}

// AddScaledTo implements Vector.
//
//cdml:hotpath
//cdml:deterministic
func (s *Sparse) AddScaledTo(dst []float64, alpha float64) {
	if len(dst) < s.N {
		panic(fmt.Sprintf("linalg: AddScaledTo dimension mismatch: vector %d, dst %d", s.N, len(dst)))
	}
	for k, i := range s.Idx {
		dst[i] += alpha * s.Val[k]
	}
}

// L2 implements Vector.
//
//cdml:hotpath
//cdml:deterministic
func (s *Sparse) L2() float64 {
	var sum float64
	for _, v := range s.Val {
		sum += v * v
	}
	return math.Sqrt(sum)
}

// Clone implements Vector.
func (s *Sparse) Clone() Vector {
	c := &Sparse{N: s.N, Idx: make([]int32, len(s.Idx)), Val: make([]float64, len(s.Val))}
	copy(c.Idx, s.Idx)
	copy(c.Val, s.Val)
	return c
}

// Compact removes explicitly stored zero entries in place and returns s.
func (s *Sparse) Compact() *Sparse {
	w := 0
	for k := range s.Idx {
		//lint:allow floateq: Compact removes exactly-zero stored entries by contract
		if s.Val[k] != 0 {
			s.Idx[w] = s.Idx[k]
			s.Val[w] = s.Val[k]
			w++
		}
	}
	s.Idx = s.Idx[:w]
	s.Val = s.Val[:w]
	return s
}

// ToDense expands the sparse vector into a freshly allocated dense vector.
func (s *Sparse) ToDense() Dense {
	d := NewDense(s.N)
	for k, i := range s.Idx {
		d[i] = s.Val[k]
	}
	return d
}

// Scale multiplies every stored value by alpha in place and returns s.
//cdml:deterministic
func (s *Sparse) Scale(alpha float64) *Sparse {
	for k := range s.Val {
		s.Val[k] *= alpha
	}
	return s
}

// String renders the vector for debugging.
func (s *Sparse) String() string {
	var b strings.Builder
	b.WriteString(fmt.Sprintf("sparse(dim=%d", s.N))
	for k, i := range s.Idx {
		fmt.Fprintf(&b, " %d:%.4g", i, s.Val[k])
	}
	b.WriteString(")")
	return b.String()
}
