package linalg

import (
	"fmt"
	"math"
)

// Axpy computes y += alpha*x for dense slices. It panics on dimension
// mismatch.
func Axpy(alpha float64, x, y []float64) {
	if len(x) != len(y) {
		panic(fmt.Sprintf("linalg: Axpy dimension mismatch: %d vs %d", len(x), len(y)))
	}
	for i, v := range x {
		y[i] += alpha * v
	}
}

// Scale multiplies x by alpha in place.
//cdml:deterministic
func Scale(alpha float64, x []float64) {
	for i := range x {
		x[i] *= alpha
	}
}

// DotDense returns the inner product of two dense slices.
func DotDense(x, y []float64) float64 {
	if len(x) != len(y) {
		panic(fmt.Sprintf("linalg: DotDense dimension mismatch: %d vs %d", len(x), len(y)))
	}
	var s float64
	for i, v := range x {
		s += v * y[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of a dense slice.
func Norm2(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += v * v
	}
	return math.Sqrt(s)
}

// Zero clears a dense slice in place.
func Zero(x []float64) {
	for i := range x {
		x[i] = 0
	}
}

// CopyOf returns a copy of x.
func CopyOf(x []float64) []float64 {
	c := make([]float64, len(x))
	copy(c, x)
	return c
}

// Accumulator accumulates a weighted sum of vectors into a dense buffer and
// tracks which coordinates were touched. It is the gradient workhorse of the
// mini-batch SGD step: for sparse inputs only the touched coordinates are
// visited when the result is extracted, which keeps a mini-batch gradient on
// a 2^18-dimensional space proportional to the batch's NNZ rather than the
// full dimension.
type Accumulator struct {
	buf     []float64
	touched []int32
	seen    []bool
	dense   bool // a dense vector was added; all coordinates are live
}

// NewAccumulator returns an accumulator of dimension dim.
//cdml:deterministic
func NewAccumulator(dim int) *Accumulator {
	return &Accumulator{buf: make([]float64, dim), seen: make([]bool, dim)}
}

// Dim returns the accumulator dimension.
func (a *Accumulator) Dim() int { return len(a.buf) }

// Add accumulates alpha*v.
//cdml:deterministic
func (a *Accumulator) Add(v Vector, alpha float64) {
	switch t := v.(type) {
	case *Sparse:
		for k, i := range t.Idx {
			if !a.seen[i] {
				a.seen[i] = true
				a.touched = append(a.touched, i)
			}
			a.buf[i] += alpha * t.Val[k]
		}
	default:
		a.dense = true
		v.AddScaledTo(a.buf, alpha)
	}
}

// AddCoord accumulates alpha at a single coordinate.
//cdml:deterministic
func (a *Accumulator) AddCoord(i int, alpha float64) {
	if !a.seen[i] {
		a.seen[i] = true
		a.touched = append(a.touched, int32(i))
	}
	a.buf[i] += alpha
}

// Result extracts the accumulated vector, scaled by alpha. If any dense
// vector was added the result is Dense; otherwise it is Sparse over the
// touched coordinates. The accumulator is reset and may be reused.
//cdml:deterministic
func (a *Accumulator) Result(alpha float64) Vector {
	if a.dense {
		out := make(Dense, len(a.buf))
		for i, v := range a.buf {
			out[i] = v * alpha
		}
		a.reset()
		return out
	}
	// touched indices are in insertion order; NewSparse sorts them
	idx := make([]int32, len(a.touched))
	val := make([]float64, len(a.touched))
	for k, i := range a.touched {
		idx[k] = i
		val[k] = a.buf[i] * alpha
	}
	out := NewSparse(len(a.buf), idx, val)
	a.reset()
	return out
}

// ReduceSum returns the ordered sum of the partial vectors: parts are
// accumulated in slice order, so for a fixed partition the result is a pure
// function of the inputs — the deterministic reduce step of the
// data-parallel gradient computation (partial gradients are produced
// concurrently, but combined in fixed shard order, so seeded runs stay
// bit-identical at any worker count). The result is Sparse when every part
// is sparse, Dense otherwise.
//cdml:deterministic
func ReduceSum(dim int, parts []Vector) Vector {
	acc := NewAccumulator(dim)
	for _, p := range parts {
		acc.Add(p, 1)
	}
	return acc.Result(1)
}

func (a *Accumulator) reset() {
	if a.dense {
		Zero(a.buf)
		a.dense = false
	} else {
		for _, i := range a.touched {
			a.buf[i] = 0
			a.seen[i] = false
		}
	}
	a.touched = a.touched[:0]
}
