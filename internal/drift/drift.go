// Package drift implements concept-drift detection over the deployed
// model's error stream. The paper lists native drift detection and
// alleviation as future work (§7): "we plan to extend our platform to
// provide native support for both concept drift and anomaly detection and
// alleviation". This package provides that extension: detectors watch the
// prequential error signal and the platform reacts to a detected drift
// with an immediate proactive training (see core.Config.DriftDetector).
//
// Two classical detectors are provided, both fully incremental (so they
// respect the platform's online-statistics contract):
//
//   - Page-Hinkley: a cumulative-deviation test on the mean of the error
//     stream, suited to gradual drift.
//   - DDM (Gama et al.'s Drift Detection Method): tracks the error rate's
//     p ± s envelope and signals warning/drift when it degrades beyond its
//     historical minimum, suited to abrupt drift.
package drift

import (
	"fmt"
	"math"
)

// State is a detector's verdict after an observation.
type State int

// Detector states.
const (
	// StateStable means no drift is suspected.
	StateStable State = iota
	// StateWarning means quality is degrading; callers may start hedging
	// (e.g. shrink the sampling window).
	StateWarning
	// StateDrift means a drift was detected; callers should adapt
	// immediately (e.g. trigger proactive training).
	StateDrift
)

// String implements fmt.Stringer.
func (s State) String() string {
	switch s {
	case StateStable:
		return "stable"
	case StateWarning:
		return "warning"
	case StateDrift:
		return "drift"
	default:
		return fmt.Sprintf("State(%d)", int(s))
	}
}

// Detector consumes a per-prediction loss signal (e.g. 0/1
// misclassification, absolute error) and reports the drift state.
type Detector interface {
	// Name identifies the detector.
	Name() string
	// Observe folds one loss observation and returns the current state.
	// After returning StateDrift the detector resets its baseline and
	// starts a fresh monitoring period.
	Observe(loss float64) State
	// State returns the verdict of the last observation.
	State() State
	// Reset restores the initial state.
	Reset()
}

// PageHinkley is the Page-Hinkley cumulative deviation test: it maintains
// m_t = Σ (x_i − x̄_i − Delta) and signals drift when m_t − min(m_t)
// exceeds Lambda.
type PageHinkley struct {
	// Delta is the magnitude tolerance: deviations below it are ignored.
	Delta float64
	// Lambda is the detection threshold; larger values mean fewer, later
	// detections.
	Lambda float64
	// MinObservations gates detection until the baseline is estimated.
	MinObservations int

	n     int
	mean  float64
	mt    float64
	mtMin float64
	state State
}

// NewPageHinkley returns a Page-Hinkley detector with the conventional
// delta=0.005, lambda=50 thresholds.
func NewPageHinkley() *PageHinkley {
	return &PageHinkley{Delta: 0.005, Lambda: 50, MinObservations: 30}
}

// Name implements Detector.
func (p *PageHinkley) Name() string { return "page-hinkley" }

// Observe implements Detector.
//
//cdml:hotpath
func (p *PageHinkley) Observe(loss float64) State {
	p.n++
	p.mean += (loss - p.mean) / float64(p.n)
	p.mt += loss - p.mean - p.Delta
	if p.mt < p.mtMin {
		p.mtMin = p.mt
	}
	p.state = StateStable
	if p.n >= p.MinObservations && p.mt-p.mtMin > p.Lambda {
		p.state = StateDrift
		p.resetBaseline()
	}
	return p.state
}

func (p *PageHinkley) resetBaseline() {
	p.n = 0
	p.mean = 0
	p.mt = 0
	p.mtMin = 0
}

// State implements Detector.
func (p *PageHinkley) State() State { return p.state }

// Reset implements Detector.
func (p *PageHinkley) Reset() {
	p.resetBaseline()
	p.state = StateStable
}

// DDM is Gama et al.'s Drift Detection Method for Bernoulli-like error
// streams: with p the running error rate and s its binomial standard
// deviation, it tracks the minimum of p+s and signals warning when
// p+s > pmin + 2·smin and drift when p+s > pmin + 3·smin.
type DDM struct {
	// WarningFactor and DriftFactor are the envelope multipliers
	// (conventionally 2 and 3).
	WarningFactor float64
	DriftFactor   float64
	// MinObservations gates detection until the rate is estimated.
	MinObservations int

	n     int
	p     float64
	pmin  float64
	smin  float64
	state State
}

// NewDDM returns a DDM detector with the conventional 2σ/3σ envelopes.
func NewDDM() *DDM {
	d := &DDM{WarningFactor: 2, DriftFactor: 3, MinObservations: 30}
	d.Reset()
	return d
}

// Name implements Detector.
func (d *DDM) Name() string { return "ddm" }

// Observe implements Detector. The loss should be in [0, 1] (e.g. 0/1
// misclassification); other losses are clamped.
//
//cdml:hotpath
func (d *DDM) Observe(loss float64) State {
	if loss < 0 {
		loss = 0
	} else if loss > 1 {
		loss = 1
	}
	d.n++
	d.p += (loss - d.p) / float64(d.n)
	s := math.Sqrt(d.p * (1 - d.p) / float64(d.n))
	d.state = StateStable
	if d.n < d.MinObservations {
		return d.state
	}
	if d.p+s < d.pmin+d.smin {
		d.pmin = d.p
		d.smin = s
	}
	switch {
	case d.p+s > d.pmin+d.DriftFactor*d.smin:
		d.state = StateDrift
		d.resetBaseline()
	case d.p+s > d.pmin+d.WarningFactor*d.smin:
		d.state = StateWarning
	}
	return d.state
}

func (d *DDM) resetBaseline() {
	d.n = 0
	d.p = 0
	d.pmin = math.Inf(1)
	d.smin = math.Inf(1)
}

// State implements Detector.
func (d *DDM) State() State { return d.state }

// Reset implements Detector.
func (d *DDM) Reset() {
	d.resetBaseline()
	d.state = StateStable
}

// New constructs a detector by name: "page-hinkley" or "ddm".
func New(name string) (Detector, error) {
	switch name {
	case "page-hinkley":
		return NewPageHinkley(), nil
	case "ddm":
		return NewDDM(), nil
	default:
		return nil, fmt.Errorf("drift: unknown detector %q", name)
	}
}
