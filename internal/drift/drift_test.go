package drift

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// bernoulliStream feeds n draws with error probability p.
func feed(d Detector, r *rand.Rand, n int, p float64) (drifts, warnings int) {
	for i := 0; i < n; i++ {
		x := 0.0
		if r.Float64() < p {
			x = 1
		}
		switch d.Observe(x) {
		case StateDrift:
			drifts++
		case StateWarning:
			warnings++
		}
	}
	return
}

func TestStateString(t *testing.T) {
	if StateStable.String() != "stable" || StateWarning.String() != "warning" || StateDrift.String() != "drift" {
		t.Fatal("state strings wrong")
	}
	if State(9).String() == "" {
		t.Fatal("unknown state should render")
	}
}

func TestNewByName(t *testing.T) {
	for _, name := range []string{"page-hinkley", "ddm"} {
		d, err := New(name)
		if err != nil {
			t.Fatal(err)
		}
		if d.Name() != name {
			t.Fatalf("Name = %q", d.Name())
		}
	}
	if _, err := New("bogus"); err == nil {
		t.Fatal("expected error")
	}
}

func TestDetectorsStableOnStationaryStream(t *testing.T) {
	for _, d := range []Detector{NewPageHinkley(), NewDDM()} {
		r := rand.New(rand.NewSource(1))
		drifts, _ := feed(d, r, 5000, 0.1)
		if drifts > 1 {
			t.Errorf("%s: %d false drifts on stationary stream", d.Name(), drifts)
		}
	}
}

func TestDetectorsCatchAbruptDrift(t *testing.T) {
	for _, d := range []Detector{NewPageHinkley(), NewDDM()} {
		r := rand.New(rand.NewSource(2))
		feed(d, r, 2000, 0.05)             // clean period
		drifts, _ := feed(d, r, 2000, 0.5) // error rate jumps 10x
		if drifts == 0 {
			t.Errorf("%s: missed an abrupt 10x error-rate jump", d.Name())
		}
	}
}

func TestPageHinkleyCatchesGradualDrift(t *testing.T) {
	d := NewPageHinkley()
	r := rand.New(rand.NewSource(3))
	feed(d, r, 2000, 0.05)
	drifts := 0
	for i := 0; i < 4000; i++ {
		p := 0.05 + 0.3*float64(i)/4000 // ramps to 0.35
		x := 0.0
		if r.Float64() < p {
			x = 1
		}
		if d.Observe(x) == StateDrift {
			drifts++
		}
	}
	if drifts == 0 {
		t.Fatal("page-hinkley missed gradual drift")
	}
}

func TestDDMWarningPrecedesDrift(t *testing.T) {
	d := NewDDM()
	r := rand.New(rand.NewSource(4))
	feed(d, r, 3000, 0.05)
	sawWarningBeforeDrift := false
	warned := false
	for i := 0; i < 3000; i++ {
		p := 0.05 + 0.4*float64(i)/3000
		x := 0.0
		if r.Float64() < p {
			x = 1
		}
		switch d.Observe(x) {
		case StateWarning:
			warned = true
		case StateDrift:
			if warned {
				sawWarningBeforeDrift = true
			}
			warned = false
		}
	}
	if !sawWarningBeforeDrift {
		t.Fatal("DDM never warned before drifting")
	}
}

func TestDetectorResetAfterDrift(t *testing.T) {
	// After a detected drift the baseline resets, so a now-stable stream at
	// the new error level must not keep firing.
	for _, d := range []Detector{NewPageHinkley(), NewDDM()} {
		r := rand.New(rand.NewSource(5))
		feed(d, r, 2000, 0.05)
		feed(d, r, 1000, 0.5) // force a drift + reset
		drifts, _ := feed(d, r, 4000, 0.5)
		if drifts > 2 {
			t.Errorf("%s: %d repeat drifts after baseline reset", d.Name(), drifts)
		}
	}
}

func TestResetRestoresInitialState(t *testing.T) {
	for _, d := range []Detector{NewPageHinkley(), NewDDM()} {
		r := rand.New(rand.NewSource(6))
		feed(d, r, 500, 0.9)
		d.Reset()
		if d.State() != StateStable {
			t.Errorf("%s: state after Reset = %v", d.Name(), d.State())
		}
	}
}

func TestDDMClampsLoss(t *testing.T) {
	d := NewDDM()
	for i := 0; i < 100; i++ {
		d.Observe(5)  // clamped to 1
		d.Observe(-3) // clamped to 0
	}
	// Just must not panic or produce NaN-driven permanent drift.
	if d.State() != StateStable && d.State() != StateWarning && d.State() != StateDrift {
		t.Fatal("invalid state")
	}
}

// Property: a detector never reports drift within the first
// MinObservations of a fresh monitoring period.
func TestQuickNoEarlyDrift(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		ph := NewPageHinkley()
		dm := NewDDM()
		for i := 0; i < 29; i++ {
			x := float64(r.Intn(2))
			if ph.Observe(x) == StateDrift || dm.Observe(x) == StateDrift {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
