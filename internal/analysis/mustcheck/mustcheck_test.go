package mustcheck_test

import (
	"testing"

	"cdml/internal/analysis/analysistest"
	"cdml/internal/analysis/mustcheck"
)

func TestMustCheck(t *testing.T) {
	analysistest.Run(t, "../testdata/src/mustcheck", mustcheck.Analyzer)
}
