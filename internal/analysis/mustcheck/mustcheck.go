// Package mustcheck flags discarded error returns on the persistence paths.
//
// A dropped Save/Load/Close/Flush/Encode/Decode error means a checkpoint,
// gob snapshot, or materialized chunk can be silently truncated or stale —
// the deployment then diverges from its own history with no trace. The check
// fires on bare call statements, `defer`, and `go` statements whose callee
// name is one of the persistence verbs and whose results include an error.
//
// Explicit discards stay available: assign to `_` when the error is
// genuinely uninteresting (e.g. closing a read-only file after a successful
// read), or annotate the line with `//lint:allow mustcheck: <why>`.
package mustcheck

import (
	"go/ast"
	"go/types"

	"cdml/internal/analysis"
)

// Analyzer implements the check.
var Analyzer = &analysis.Analyzer{
	Name: "mustcheck",
	Doc: "flags discarded error returns from Save/Load/Close/Flush/Encode/" +
		"Decode and the persistence paths; assign to _ or handle the error",
	Run: run,
}

// verbs are the method/function names whose errors must not be dropped.
var verbs = map[string]bool{
	"Save":              true,
	"Load":              true,
	"Close":             true,
	"Flush":             true,
	"Encode":            true,
	"Decode":            true,
	"Checkpoint":        true,
	"RestoreCheckpoint": true,
	"WriteText":         true,
	"Sync":              true,
	// Filesystem mutations on the durability path: a dropped Remove error
	// leaks checkpoint retention; a dropped Rename error means the "atomic
	// publish" of a crash-safe write never happened.
	"Remove": true,
	"Rename": true,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var call *ast.CallExpr
			switch stmt := n.(type) {
			case *ast.ExprStmt:
				call, _ = stmt.X.(*ast.CallExpr)
			case *ast.DeferStmt:
				call = stmt.Call
			case *ast.GoStmt:
				call = stmt.Call
			}
			if call == nil {
				return true
			}
			name := calleeName(call)
			if !verbs[name] {
				return true
			}
			if !returnsError(pass.TypesInfo.TypeOf(call)) {
				return true
			}
			pass.Reportf(call.Pos(),
				"error returned by %s is discarded; handle it, assign to _, or annotate with //lint:allow mustcheck: <why>", name)
			return true
		})
	}
	return nil
}

// calleeName extracts the bare function or method name of a call.
func calleeName(call *ast.CallExpr) string {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}

// returnsError reports whether a call's result type includes error.
func returnsError(t types.Type) bool {
	switch t := t.(type) {
	case nil:
		return false
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if isError(t.At(i).Type()) {
				return true
			}
		}
		return false
	default:
		return isError(t)
	}
}

func isError(t types.Type) bool {
	named, ok := t.(*types.Named)
	return ok && named.Obj().Pkg() == nil && named.Obj().Name() == "error"
}
