package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// allowPrefix introduces a suppression comment: `//lint:allow <name> [why]`.
// Several analyzer names may be listed, comma-separated. Everything after
// the names is free-form justification (strongly encouraged).
const allowPrefix = "lint:allow"

// allowsAnalyzer reports whether comment text (without the // or /* markers)
// suppresses the named analyzer.
func allowsAnalyzer(text, name string) bool {
	text = strings.TrimSpace(text)
	if !strings.HasPrefix(text, allowPrefix) {
		return false
	}
	rest := text[len(allowPrefix):]
	if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
		return false // e.g. "lint:allowfloateq" is not an allow comment
	}
	rest = strings.TrimSpace(rest)
	// First whitespace-delimited field is the comma-separated analyzer list;
	// the rest is justification.
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return false
	}
	for _, n := range strings.Split(fields[0], ",") {
		if n == name {
			return true
		}
	}
	return false
}

// Suppress drops diagnostics covered by a //lint:allow comment for the
// named analyzer. A comment covers its own line (trailing-comment form) and
// the line immediately after it (standalone-comment form).
func Suppress(fset *token.FileSet, files []*ast.File, name string, diags []Diagnostic) []Diagnostic {
	if len(diags) == 0 {
		return diags
	}
	// allowed maps filename -> set of suppressed lines.
	allowed := make(map[string]map[int]bool)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimPrefix(text, "/*")
				text = strings.TrimSuffix(text, "*/")
				if !allowsAnalyzer(text, name) {
					continue
				}
				pos := fset.Position(c.Pos())
				lines := allowed[pos.Filename]
				if lines == nil {
					lines = make(map[int]bool)
					allowed[pos.Filename] = lines
				}
				end := fset.Position(c.End())
				lines[pos.Line] = true
				lines[end.Line+1] = true
			}
		}
	}
	if len(allowed) == 0 {
		return diags
	}
	kept := diags[:0]
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		if allowed[pos.Filename][pos.Line] {
			continue
		}
		kept = append(kept, d)
	}
	return kept
}
