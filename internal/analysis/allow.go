package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// allowPrefix introduces a suppression comment. The canonical form is
//
//	//lint:allow <name>[,<name>...]: <why>
//
// — a comma-separated analyzer list, a colon, and a mandatory free-form
// justification. The legacy colon-less form (`//lint:allow name why`) still
// suppresses, but CheckAllows reports it so reason-less or unconverted
// suppressions fail the lint gate rather than silently hiding findings.
const allowPrefix = "lint:allow"

// parsedAllow is one decomposed //lint:allow comment.
type parsedAllow struct {
	// names is the comma-separated analyzer list (may be empty on a bare
	// `//lint:allow`).
	names []string
	// reason is the justification after the colon ("" when missing).
	reason string
	// canonical reports whether the comment used the colon form.
	canonical bool
}

// parseAllow decomposes comment text (without the // or /* markers) into its
// analyzer list and reason. ok is false when the text is not an allow
// comment at all.
func parseAllow(text string) (pa parsedAllow, ok bool) {
	text = strings.TrimSpace(text)
	if !strings.HasPrefix(text, allowPrefix) {
		return pa, false
	}
	rest := text[len(allowPrefix):]
	if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
		return pa, false // e.g. "lint:allowfloateq" is not an allow comment
	}
	rest = strings.TrimSpace(rest)
	// The analyzer list runs to the first colon or whitespace, whichever
	// comes first; a colon marks the canonical form and everything after it
	// is the reason.
	end := len(rest)
	for i, r := range rest {
		if r == ':' || r == ' ' || r == '\t' {
			end = i
			break
		}
	}
	namesField := rest[:end]
	tail := strings.TrimLeft(rest[end:], " \t")
	if strings.HasPrefix(tail, ":") {
		pa.canonical = true
		pa.reason = strings.TrimSpace(tail[1:])
	} else {
		pa.reason = strings.TrimSpace(tail)
	}
	for _, n := range strings.Split(namesField, ",") {
		if n != "" {
			pa.names = append(pa.names, n)
		}
	}
	return pa, true
}

// allowsAnalyzer reports whether comment text (without the // or /* markers)
// suppresses the named analyzer.
func allowsAnalyzer(text, name string) bool {
	pa, ok := parseAllow(text)
	if !ok {
		return false
	}
	for _, n := range pa.names {
		if n == name {
			return true
		}
	}
	return false
}

// commentText strips the comment markers off a raw comment.
func commentText(c *ast.Comment) string {
	text := strings.TrimPrefix(c.Text, "//")
	text = strings.TrimPrefix(text, "/*")
	return strings.TrimSuffix(text, "*/")
}

// Suppress drops diagnostics covered by a //lint:allow comment for the
// named analyzer. A comment covers its own line (trailing-comment form) and
// the line immediately after it (standalone-comment form).
func Suppress(fset *token.FileSet, files []*ast.File, name string, diags []Diagnostic) []Diagnostic {
	if len(diags) == 0 {
		return diags
	}
	// allowed maps filename -> set of suppressed lines.
	allowed := make(map[string]map[int]bool)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !allowsAnalyzer(commentText(c), name) {
					continue
				}
				pos := fset.Position(c.Pos())
				lines := allowed[pos.Filename]
				if lines == nil {
					lines = make(map[int]bool)
					allowed[pos.Filename] = lines
				}
				end := fset.Position(c.End())
				lines[pos.Line] = true
				lines[end.Line+1] = true
			}
		}
	}
	if len(allowed) == 0 {
		return diags
	}
	kept := diags[:0]
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		if allowed[pos.Filename][pos.Line] {
			continue
		}
		kept = append(kept, d)
	}
	return kept
}

// CheckAllows audits every //lint:allow comment of the files: a suppression
// must name at least one analyzer and carry a colon-separated justification
// (`//lint:allow <name>: <why>`). It returns one diagnostic per malformed
// comment. cdml-lint runs it over every package, so a reason-less
// suppression is itself a lint failure — an unexplained exception to an
// invariant is a bug report waiting to happen.
func CheckAllows(fset *token.FileSet, files []*ast.File) []Diagnostic {
	var diags []Diagnostic
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				pa, ok := parseAllow(commentText(c))
				if !ok {
					continue
				}
				switch {
				case len(pa.names) == 0:
					diags = append(diags, Diagnostic{Pos: c.Pos(),
						Message: "bare //lint:allow suppresses nothing; use //lint:allow <analyzer>: <why>"})
				case !pa.canonical || pa.reason == "":
					diags = append(diags, Diagnostic{Pos: c.Pos(),
						Message: "suppression without a reason; use //lint:allow " +
							strings.Join(pa.names, ",") + ": <why>"})
				}
			}
		}
	}
	return diags
}
