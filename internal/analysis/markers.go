package analysis

import (
	"go/ast"
	"strings"
)

// This file implements the `//cdml:<marker> [args...]` annotation grammar
// shared by the contract analyzers: hotpath, guardedby (//cdml:guardedby,
// //cdml:locked), snapfreeze (//cdml:frozen, //cdml:mutable), ctxflow
// (//cdml:detached), and determinism (//cdml:deterministic). A marker line
// is a single comment whose text starts with the marker word; anything
// after it is a whitespace-separated argument list followed by free-form
// prose (the first argument is what MarkerArg returns).

// MarkerArg scans a comment group for a `//cdml:<marker>` line and returns
// its first argument ("" when the marker takes none). found reports whether
// the marker line is present at all. A nil group is allowed.
func MarkerArg(cg *ast.CommentGroup, marker string) (arg string, found bool) {
	if cg == nil {
		return "", false
	}
	for _, c := range cg.List {
		text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
		if !strings.HasPrefix(text, marker) {
			continue
		}
		rest := text[len(marker):]
		if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
			continue // e.g. "cdml:frozenset" is not "cdml:frozen"
		}
		fields := strings.Fields(rest)
		if len(fields) == 0 {
			return "", true
		}
		return fields[0], true
	}
	return "", false
}

// HasMarker reports whether the comment group carries the marker line.
func HasMarker(cg *ast.CommentGroup, marker string) bool {
	_, found := MarkerArg(cg, marker)
	return found
}
