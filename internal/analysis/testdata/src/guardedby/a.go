// Fixture for the guardedby analyzer: //cdml:guardedby-annotated fields may
// only be touched by functions that acquire the named mutex — Lock for
// writes, Lock or RLock for reads. Constructors, //cdml:locked functions,
// and the *Locked naming convention are exempt.
package fixture

import "sync"

type counter struct {
	mu sync.Mutex
	// n is the running total.
	//cdml:guardedby mu
	n int
	free int // unannotated: never flagged
}

// NewCounter is a constructor: the object is unpublished, no lock needed.
func NewCounter(start int) *counter {
	c := &counter{}
	c.n = start
	return c
}

// inc acquires the guard before writing — the canonical pattern, with the
// unlock deferred: the analyzer keys on the Lock call, so defer mu.Unlock()
// is understood.
func (c *counter) inc() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++
}

// get locks around the read.
func (c *counter) get() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

// racyWrite never acquires mu.
func (c *counter) racyWrite() {
	c.n = 0 // want `write to n \(guarded by mu\) without mu\.Lock\(\)`
}

// racyRead never acquires mu.
func (c *counter) racyRead() int {
	return c.n + c.free // want `read of n \(guarded by mu\) without mu\.Lock\(\)`
}

// addLocked follows the naming convention: the caller holds mu.
func (c *counter) addLocked(delta int) {
	c.n += delta
}

// reset documents via //cdml:locked that its caller provides the critical
// section.
//
//cdml:locked mu
func (c *counter) reset() {
	c.n = 0
}

// snapshotDuringInit is single-threaded by construction; the deliberate
// exception carries a reason.
func (c *counter) snapshotDuringInit() int {
	return c.n //lint:allow guardedby: called before the counter is shared with any goroutine
}

type table struct {
	mu sync.RWMutex
	//cdml:guardedby mu
	entries map[string]int
}

// lookup takes the read lock — sufficient for a read.
func (t *table) lookup(k string) int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.entries[k]
}

// insertSharedOnly writes under the read lock — flagged: writes need the
// exclusive lock.
func (t *table) insertSharedOnly(k string, v int) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	t.entries[k] = v // want `write to entries \(guarded by mu\) without mu\.Lock\(\)`
}

// insert takes the exclusive lock.
func (t *table) insert(k string, v int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.entries[k] = v
}

// escape takes the address of a guarded field without the exclusive lock.
func (t *table) escape() *map[string]int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return &t.entries // want `write to entries \(guarded by mu\) without mu\.Lock\(\)`
}
