// Fixture for the hotpath analyzer: allocation- and syscall-bearing
// constructs are flagged only inside //cdml:hotpath-annotated functions;
// panic arguments are exempt, and //lint:allow hotpath overrides.
package fixture

import (
	"fmt"
	"time"
)

type observer struct {
	last  int64
	calls int64
}

// observe is the per-event write path.
//
//cdml:hotpath
func (o *observer) observe(nanos int64) {
	if nanos < 0 {
		panic(fmt.Sprintf("negative duration %d", nanos)) // cold branch: exempt
	}
	o.last = nanos
	o.calls++
}

//cdml:hotpath
func flagged(vs []float64) float64 {
	start := time.Now()               // want `time\.Now\(\) is a syscall`
	_ = fmt.Sprintf("n=%d", len(vs))  // want `fmt\.Sprintf allocates`
	_ = fmt.Errorf("boom")            // want `fmt\.Errorf allocates`
	m := map[string]int{"a": 1}       // want `map literal allocates`
	s := []int{1, 2, 3}               // want `slice literal allocates`
	f := func() int { return len(m) } // want `closure`
	_ = interface{}(vs)               // want `conversion to interface`
	var sum float64
	for _, v := range vs {
		sum += v
	}
	_ = start
	_ = s
	_ = f
	return sum
}

//cdml:hotpath
func clean(w []float64, idx []int32, val []float64) float64 {
	if len(idx) != len(val) {
		panic(fmt.Sprintf("len mismatch %d != %d", len(idx), len(val)))
	}
	var sum float64
	for k, i := range idx {
		sum += val[k] * w[i]
	}
	return sum
}

//cdml:hotpath
func allowed() time.Time {
	return time.Now() //lint:allow hotpath: latency measurement needs the wall clock
}

// notAnnotated is ordinary code — nothing is flagged.
func notAnnotated() (time.Time, string) {
	return time.Now(), fmt.Sprintf("%v", []int{1})
}

// arrayLiteralsAreFine: arrays are values, not heap allocations.
//
//cdml:hotpath
func arrayLiteralsAreFine() int {
	classes := [4]int{2, 3, 4, 5}
	return classes[1]
}

// shardArithmetic mirrors the data-parallel trainer's shard partition
// (core.numShards/shardBounds): pure integer arithmetic, nothing flagged.
//
//cdml:hotpath
func shardArithmetic(n, shardRows, s int) (int, int, int) {
	shards := (n + shardRows - 1) / shardRows
	if shards < 1 {
		shards = 1
	}
	return shards, s * n / shards, (s + 1) * n / shards
}

// orderedReduce mirrors the trainer's fixed-order partial-gradient reduce
// (model.sumOrdered / linalg.ReduceSum's inner loop): index-order
// accumulation into a caller-provided buffer stays annotation-clean.
//
//cdml:hotpath
func orderedReduce(dst []float64, parts [][]float64) float64 {
	var lossSum float64
	for _, p := range parts {
		for i, v := range p {
			dst[i] += v
		}
		lossSum += float64(len(p))
	}
	return lossSum
}
