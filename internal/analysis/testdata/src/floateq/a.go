// Fixture for the floateq analyzer: exact floating-point comparisons are
// flagged in non-test files; int comparisons, epsilon checks, and annotated
// sentinel checks are not.
package fixture

import "math"

const eps = 1e-9

func flagged(a, b float64, f float32, c complex128) bool {
	if a == b { // want `floating-point == comparison`
		return true
	}
	if f != 2.5 { // want `floating-point != comparison`
		return true
	}
	if c == 1+2i { // want `floating-point == comparison`
		return true
	}
	return a != 0 // want `floating-point != comparison`
}

// multi exercises the harness's multi-pattern want lines: two diagnostics
// on one source line, matched in report (left-to-right) order.
func multi(a, b, c float64) bool {
	return a == b || b != c // want `floating-point == comparison` `floating-point != comparison`
}

type meters float64

func namedFloatFlagged(m meters) bool {
	return m == 1 // want `floating-point == comparison`
}

func notFlagged(i, j int, s string, a, b float64) bool {
	if i == j || s == "x" {
		return true
	}
	if math.Abs(a-b) < eps { // the remedy the analyzer suggests
		return true
	}
	return i != 0
}

func allowedSentinel(v float64) bool {
	//lint:allow floateq: zero is exactly representable; sparsity sentinel
	if v == 0 {
		return true
	}
	return v == math.Trunc(v) //lint:allow floateq: integrality check is exact
}
