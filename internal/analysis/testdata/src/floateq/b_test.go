// Fixture: _test.go files are exempt — tests may assert exact float
// results on purpose (seeded runs are bit-reproducible).
package fixture

func exactAssertionsAreFine(got, want float64) bool {
	return got == want
}
