// Fixture for the mustcheck analyzer: discarded persistence errors are
// flagged; handled errors, explicit _ discards, error-less methods, and
// annotated lines are not.
package fixture

import "errors"

type store struct{}

func (s *store) Save() error         { return nil }
func (s *store) Load() error         { return nil }
func (s *store) Close() error        { return nil }
func (s *store) Flush() (int, error) { return 0, nil }
func (s *store) Encode(v any) error  { return nil }
func (s *store) Decode(v any) error  { return nil }
func (s *store) Checkpoint() error   { return nil }

func (s *store) Remove(name string) error     { return nil }
func (s *store) Rename(old, new string) error { return nil }

// quietCloser's Close returns nothing — never flagged.
type quietCloser struct{}

func (quietCloser) Close() {}

func flagged(s *store) {
	s.Save()           // want `error returned by Save is discarded`
	s.Load()           // want `error returned by Load is discarded`
	s.Flush()          // want `error returned by Flush is discarded`
	s.Encode(1)        // want `error returned by Encode is discarded`
	s.Decode(nil)      // want `error returned by Decode is discarded`
	s.Checkpoint()     // want `error returned by Checkpoint is discarded`
	s.Remove("a")      // want `error returned by Remove is discarded`
	s.Rename("a", "b") // want `error returned by Rename is discarded`
	defer s.Close()    // want `error returned by Close is discarded`
	go s.Save()        // want `error returned by Save is discarded`
}

func handled(s *store) error {
	if err := s.Save(); err != nil {
		return err
	}
	_ = s.Close() // explicit discard is a deliberate decision
	if _, err := s.Flush(); err != nil && !errors.Is(err, errDone) {
		return err
	}
	var q quietCloser
	q.Close() // no error to drop
	defer q.Close()
	return nil
}

var errDone = errors.New("done")

func allowed(s *store) {
	//lint:allow mustcheck: error cannot occur on an in-memory store
	s.Save()
	defer s.Close() //lint:allow mustcheck: trailing-comment form
}
