// Fixture for the ctxflow analyzer: no context re-rooting inside
// context-receiving functions (rule 1), no calls from them into wrappers
// that re-root internally (rule 2), and every other Background/TODO must
// live in a //cdml:detached-annotated function (rule 3).
package fixture

import (
	"context"
	"net/http"
)

func process(ctx context.Context, n int) {}

// reroot drops the caller's context on the floor — the canonical rule-1
// violation.
func reroot(ctx context.Context, n int) {
	process(context.Background(), n) // want `context\.Background\(\) inside context-receiving reroot`
}

// todoReroot is the TODO spelling of the same bug.
func todoReroot(ctx context.Context, n int) {
	process(context.TODO(), n) // want `context\.TODO\(\) inside context-receiving todoReroot`
}

// handler receives the request context via *http.Request.
func handler(w http.ResponseWriter, r *http.Request) {
	process(context.Background(), 1) // want `context\.Background\(\) inside context-receiving handler`
}

// ingest is the compatibility wrapper for callers that genuinely have no
// context; detaching is its documented purpose.
//
//cdml:detached compatibility entry point for context-free callers
func ingest(n int) {
	process(context.Background(), n)
}

// threaded does it right: no diagnostics.
func threaded(ctx context.Context, n int) {
	process(ctx, n)
}

// callsWrapper has a context but routes through the detaching wrapper —
// the cross-function rule-2 violation.
func callsWrapper(ctx context.Context, n int) {
	ingest(n) // want `ingest re-roots the context internally`
}

type queue struct{}

// drain runs after the producing request has completed; its work cannot be
// tied to a request lifetime.
//
//cdml:detached drain outlives the request that enqueued the work
func (q *queue) drain() {
	process(context.Background(), 0)
}

// handle must hand its own ctx onward, not hop through drain.
func (q *queue) handle(ctx context.Context) {
	q.drain() // want `drain re-roots the context internally`
}

// stray re-roots outside any annotation — the rule-3 violation.
func stray() {
	process(context.Background(), 2) // want `context\.Background\(\) outside a //cdml:detached function`
}

// bareDetached forgets the mandatory reason.
//
//cdml:detached
func bareDetached() { process(context.Background(), 3) } // want `//cdml:detached needs a reason`

// suppressed documents a deliberate exception inline.
func suppressed(ctx context.Context) {
	process(context.Background(), 4) //lint:allow ctxflow: exercising the suppression path in the fixture
}
