// Fixture for the globalrand analyzer: package-level math/rand draws are
// flagged, the seeded *rand.Rand convention and the constructors are not.
package fixture

import "math/rand"

// seeded is the convention the analyzer enforces: New/NewSource are allowed.
var seeded = rand.New(rand.NewSource(42))

func flagged() {
	_ = rand.Intn(10)      // want `package-level rand\.Intn`
	_ = rand.Float64()     // want `package-level rand\.Float64`
	rand.Shuffle(3, swap)  // want `package-level rand\.Shuffle`
	_ = rand.Perm(5)       // want `package-level rand\.Perm`
	_ = rand.NormFloat64() // want `package-level rand\.NormFloat64`
	f := rand.Int63        // want `package-level rand\.Int63`
	_ = f()
}

func swap(i, j int) {}

func seededIsFine() {
	_ = seeded.Intn(10)
	_ = seeded.Float64()
	seeded.Shuffle(3, swap)
	r := rand.New(rand.NewSource(7))
	_ = r.Perm(5)
	z := rand.NewZipf(r, 1.1, 1, 100)
	_ = z.Uint64()
}

func allowed() {
	//lint:allow globalrand: deliberate global draw to exercise the escape hatch
	_ = rand.Intn(10)
	_ = rand.Float64() //lint:allow globalrand: trailing-comment form
}
