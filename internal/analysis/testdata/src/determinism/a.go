// Fixture for the determinism analyzer: //cdml:deterministic functions and
// their transitive same-package callees must avoid map iteration, the wall
// clock, and unseeded randomness; dynamic callees must carry the
// annotation as part of the interface contract.
package fixture

import (
	"math/rand"
	"time"
)

// sum is deterministic and clean: slice iteration, seeded randomness.
//
//cdml:deterministic
func sum(xs []float64) float64 {
	var total float64
	for _, x := range xs {
		total += x
	}
	r := rand.New(rand.NewSource(42))
	return total + r.Float64()*0
}

// mapOrder iterates a map inside the deterministic contract.
//
//cdml:deterministic
func mapOrder(m map[string]float64) float64 {
	var total float64
	for _, v := range m { // want `map iteration in //cdml:deterministic mapOrder`
		total += v
	}
	return total
}

// clocked consults the wall clock.
//
//cdml:deterministic
func clocked() int64 {
	return time.Now().UnixNano() // want `time\.Now in //cdml:deterministic clocked`
}

// unseeded draws from the global source.
//
//cdml:deterministic
func unseeded() float64 {
	return rand.Float64() // want `global Float64 draw in //cdml:deterministic unseeded`
}

// helper is unannotated: the obligation flows into it transitively.
func helper(m map[string]int) int {
	n := 0
	for k := range m { // want `map iteration in helper \(reached from //cdml:deterministic viaHelper\)`
		n += len(k)
	}
	return n
}

// viaHelper itself is clean; the violation sits in its callee.
//
//cdml:deterministic
func viaHelper(m map[string]int) int {
	return helper(m)
}

// cleanHelper exercises the transitive walk without a violation.
func cleanHelper(xs []int) int {
	n := 0
	for _, x := range xs {
		n += x
	}
	return n
}

//cdml:deterministic
func viaCleanHelper(xs []int) int {
	return cleanHelper(xs)
}

// reducer shows the annotation as interface contract: reduce carries it,
// merge does not.
type reducer interface {
	//cdml:deterministic
	reduce(a, b int) int

	merge(a, b int) int
}

// apply may call reduce (the contract promises determinism) but not merge.
//
//cdml:deterministic
func apply(r reducer) int {
	x := r.reduce(1, 2)
	return r.merge(x, 3) // want `call to merge in //cdml:deterministic apply: dynamic callee is not annotated`
}

// instrumented documents timing instrumentation that feeds stats, not
// results.
//
//cdml:deterministic
func instrumented(xs []float64) float64 {
	start := time.Now() //lint:allow determinism: timing feeds shard stats, never the numeric result
	var total float64
	for _, x := range xs {
		total += x
	}
	_ = start
	return total
}
