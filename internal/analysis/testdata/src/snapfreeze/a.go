// Fixture for the snapfreeze analyzer: //cdml:frozen roots an immutability
// closure over pointer/slice/map reachability; writes into that memory are
// flagged outside constructors and Clone/Snapshot methods; //cdml:mutable
// prunes internally-synchronized types from the closure.
package fixture

// snapshot is the frozen root — published via an atomic pointer, read
// without locks, never mutated after construction.
//
//cdml:frozen
type snapshot struct {
	version int
	model   *model
	stats   result
	tags    []string
}

// model is reached through a pointer field: frozen by closure.
type model struct {
	weights []float64
	clock   *clock
}

// clock is reachable from the snapshot but internally synchronized; it is
// deliberately outside the frozen set.
//
//cdml:mutable
type clock struct {
	extra map[string]int
}

// result is a value field of snapshot: its memory belongs to the snapshot
// (writes through a frozen parent are caught at the parent crossing), but
// the closure still descends into it to freeze series.
type result struct {
	final float64
	curve *series
}

type series struct {
	xs []float64
}

// NewSnapshot is a constructor: the object is unpublished, stores are the
// point of the function.
func NewSnapshot(version int) *snapshot {
	s := &snapshot{version: version}
	s.model = &model{weights: make([]float64, 4)}
	s.stats.final = 0
	return s
}

// Clone is the copy-on-write vocabulary: it builds a fresh object.
func (s *snapshot) Clone() *snapshot {
	c := &snapshot{}
	c.version = s.version + 1
	return c
}

// mutateVersion writes a scalar field through a frozen pointer.
func mutateVersion(s *snapshot) {
	s.version = 1 // want `write to s\.version reaches //cdml:frozen memory in mutateVersion`
}

// mutateValueField writes through a value field of a frozen object: the
// owning crossing is the *snapshot pointer, not result.
func mutateValueField(s *snapshot) {
	s.stats.final = 2.0 // want `write to s\.stats\.final reaches //cdml:frozen memory in mutateValueField`
}

// mutateDeep writes slice backing reached via value field → pointer field:
// series joined the frozen set by closure.
func mutateDeep(s *snapshot) {
	s.stats.curve.xs[0] = 1 // want `write to s\.stats\.curve\.xs\[\.\.\.\] reaches //cdml:frozen memory in mutateDeep`
}

// mutateTransitive proves the closure works without mentioning the root: a
// bare *model is frozen because snapshots reach models by pointer.
func mutateTransitive(m *model) {
	m.weights[0]++ // want `write to m\.weights\[\.\.\.\] reaches //cdml:frozen memory in mutateTransitive`
}

// escape leaks a writable pointer into frozen memory.
func escape(s *snapshot) *result {
	return &s.stats // want `address of s\.stats reaches //cdml:frozen memory in escape`
}

// localValue writes fields of a local value: its memory is the stack frame,
// not a published snapshot — never flagged.
func localValue() snapshot {
	var s snapshot
	s.version = 7
	return s
}

// rebind replaces which object a local points at; the frozen object itself
// is untouched — never flagged.
func rebind(m *model) *model {
	m = &model{}
	return m
}

// mutableStats writes through the //cdml:mutable pruning point: the clock
// owns its memory and synchronizes internally.
func mutableStats(s *snapshot) {
	s.model.clock.extra["ticks"] = 1
}

// suppressed documents a deliberate pre-publication exception.
func suppressed(s *snapshot) {
	s.version = 9 //lint:allow snapfreeze: test-only helper runs before the snapshot is published
}
