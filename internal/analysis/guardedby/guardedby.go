// Package guardedby verifies lock discipline at lint time — the Abseil
// GUARDED_BY annotation, enforced over the go/types object graph.
//
// A struct field annotated
//
//	//cdml:guardedby <mu>
//
// (doc comment or trailing line comment; <mu> names a sibling sync.Mutex or
// sync.RWMutex field) may only be read or written by functions that acquire
// that mutex somewhere in their body: Lock for writes, Lock or RLock for
// reads. The check is flow-insensitive by design — it asks "does any path
// acquire the guard", which catches the dangerous class of method that
// never locks at all, while `go test -race` remains the dynamic backstop
// for path-sensitive races on exercised paths.
//
// Three access contexts are exempt:
//
//   - constructors (function names starting with New/new): the object is
//     unpublished, no other goroutine can hold a reference;
//   - functions annotated `//cdml:locked <mu>` — the documented contract
//     that the caller provides the critical section (or an equivalent
//     external serialization, e.g. a single-threaded driver);
//   - functions whose name ends in "Locked" — the repo's naming convention
//     for caller-holds-the-lock helpers.
//
// Acquisition through `defer mu.Unlock()` works naturally: the analyzer
// keys on the Lock/RLock call, not the unlock.
//
// Anything else that is deliberate gets `//lint:allow guardedby: <why>`.
package guardedby

import (
	"go/ast"
	"go/types"
	"strings"

	"cdml/internal/analysis"
)

// Marker is the field annotation: `//cdml:guardedby <mu>`.
const Marker = "cdml:guardedby"

// LockedMarker is the function annotation asserting the caller provides the
// named guard's critical section: `//cdml:locked <mu>`.
const LockedMarker = "cdml:locked"

// Analyzer implements the check.
var Analyzer = &analysis.Analyzer{
	Name: "guardedby",
	Doc: "flags reads/writes of //cdml:guardedby-annotated struct fields in " +
		"functions that never acquire the named mutex (Lock for writes, " +
		"Lock/RLock for reads)",
	Run: run,
}

// guardInfo ties one annotated field to its guard.
type guardInfo struct {
	guard     *types.Var // the sibling mutex field
	guardName string     // its declared name (for messages and //cdml:locked)
	rw        bool       // guard is a sync.RWMutex (RLock satisfies reads)
}

func run(pass *analysis.Pass) error {
	guarded := collectGuarded(pass)
	if len(guarded) == 0 {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkFunc(pass, fn, guarded)
		}
	}
	return nil
}

// markerArg returns the first whitespace-delimited argument after marker in
// the comment text, or "" when the comment does not carry the marker.
func markerArg(c *ast.Comment, marker string) (string, bool) {
	text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
	if !strings.HasPrefix(text, marker) {
		return "", false
	}
	rest := strings.TrimSpace(text[len(marker):])
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return "", true
	}
	return fields[0], true
}

// collectGuarded scans the package's struct declarations for annotated
// fields, resolving each to (field object → guard object). Malformed
// annotations (missing or non-mutex guard) are reported immediately.
func collectGuarded(pass *analysis.Pass) map[*types.Var]guardInfo {
	guarded := make(map[*types.Var]guardInfo)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok || st.Fields == nil {
				return true
			}
			for _, field := range st.Fields.List {
				guardName, ok := fieldAnnotation(field)
				if !ok {
					continue
				}
				if guardName == "" {
					pass.Reportf(field.Pos(), "//cdml:guardedby needs a guard field name")
					continue
				}
				guard, rw, ok := findGuard(pass, st, guardName)
				if !ok {
					pass.Reportf(field.Pos(),
						"//cdml:guardedby %s: no sibling sync.Mutex/sync.RWMutex field named %q", guardName, guardName)
					continue
				}
				for _, name := range field.Names {
					if obj, ok := pass.TypesInfo.Defs[name].(*types.Var); ok {
						guarded[obj] = guardInfo{guard: guard, guardName: guardName, rw: rw}
					}
				}
			}
			return true
		})
	}
	return guarded
}

// fieldAnnotation extracts the guard name from a field's doc or trailing
// comment; ok reports whether the marker is present at all.
func fieldAnnotation(field *ast.Field) (string, bool) {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			if arg, ok := markerArg(c, Marker); ok {
				return arg, true
			}
		}
	}
	return "", false
}

// findGuard resolves guardName to a mutex-typed field of the same struct.
func findGuard(pass *analysis.Pass, st *ast.StructType, guardName string) (*types.Var, bool, bool) {
	for _, field := range st.Fields.List {
		for _, name := range field.Names {
			if name.Name != guardName {
				continue
			}
			obj, ok := pass.TypesInfo.Defs[name].(*types.Var)
			if !ok {
				return nil, false, false
			}
			kind := mutexKind(obj.Type())
			if kind == notMutex {
				return nil, false, false
			}
			return obj, kind == rwMutex, true
		}
		// Embedded mutex: the implicit field name is the type name.
		if len(field.Names) == 0 {
			if id := embeddedName(field.Type); id != nil && id.Name == guardName {
				if obj, ok := pass.TypesInfo.Defs[id].(*types.Var); ok {
					if kind := mutexKind(obj.Type()); kind != notMutex {
						return obj, kind == rwMutex, true
					}
				}
			}
		}
	}
	return nil, false, false
}

// embeddedName returns the identifier naming an embedded field.
func embeddedName(expr ast.Expr) *ast.Ident {
	switch t := expr.(type) {
	case *ast.Ident:
		return t
	case *ast.StarExpr:
		return embeddedName(t.X)
	case *ast.SelectorExpr:
		return t.Sel
	}
	return nil
}

type mutexKindT int

const (
	notMutex mutexKindT = iota
	plainMutex
	rwMutex
)

// mutexKind classifies a (possibly pointer-to) sync mutex type.
func mutexKind(t types.Type) mutexKindT {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil || named.Obj().Pkg().Path() != "sync" {
		return notMutex
	}
	switch named.Obj().Name() {
	case "Mutex":
		return plainMutex
	case "RWMutex":
		return rwMutex
	}
	return notMutex
}

// lockedGuards returns the guard names a function's doc comment asserts are
// held by the caller (//cdml:locked <mu>, one per line).
func lockedGuards(fn *ast.FuncDecl) map[string]bool {
	if fn.Doc == nil {
		return nil
	}
	var held map[string]bool
	for _, c := range fn.Doc.List {
		if arg, ok := markerArg(c, LockedMarker); ok && arg != "" {
			if held == nil {
				held = make(map[string]bool)
			}
			held[arg] = true
		}
	}
	return held
}

// checkFunc flags guarded-field accesses in one function that lacks the
// required acquisition.
func checkFunc(pass *analysis.Pass, fn *ast.FuncDecl, guarded map[*types.Var]guardInfo) {
	name := fn.Name.Name
	if strings.HasPrefix(name, "New") || strings.HasPrefix(name, "new") ||
		strings.HasSuffix(name, "Locked") {
		return
	}
	held := lockedGuards(fn)

	// Pass 1: which guards does the body acquire, and how.
	exclusive := make(map[*types.Var]bool) // guard → Lock seen
	shared := make(map[*types.Var]bool)    // guard → RLock seen
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		guard := guardObj(pass, sel.X)
		if guard == nil {
			return true
		}
		switch sel.Sel.Name {
		case "Lock", "TryLock":
			exclusive[guard] = true
		case "RLock", "TryRLock":
			shared[guard] = true
		}
		return true
	})

	// Pass 2: which guarded-field selectors sit inside a write.
	writes := make(map[ast.Node]bool)
	markWrites := func(lhs ast.Expr) {
		ast.Inspect(lhs, func(n ast.Node) bool {
			if sel, ok := n.(*ast.SelectorExpr); ok {
				writes[sel] = true
			}
			return true
		})
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch stmt := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range stmt.Lhs {
				markWrites(lhs)
			}
		case *ast.IncDecStmt:
			markWrites(stmt.X)
		case *ast.UnaryExpr:
			if stmt.Op.String() == "&" {
				// Taking a guarded field's address leaks writable access.
				markWrites(stmt.X)
			}
		}
		return true
	})

	// Pass 3: flag unprotected accesses.
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		obj, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Var)
		if !ok {
			return true
		}
		gi, ok := guarded[obj]
		if !ok {
			return true
		}
		if held[gi.guardName] {
			return true
		}
		if writes[sel] {
			if !exclusive[gi.guard] {
				pass.Reportf(sel.Pos(),
					"write to %s (guarded by %s) without %s.Lock() on any path in %s",
					obj.Name(), gi.guardName, gi.guardName, name)
			}
			return true
		}
		if !exclusive[gi.guard] && !shared[gi.guard] {
			pass.Reportf(sel.Pos(),
				"read of %s (guarded by %s) without %s.Lock() on any path in %s",
				obj.Name(), gi.guardName, gi.guardName, name)
		}
		return true
	})
}

// guardObj resolves the expression x of an x.Lock() call to an annotated
// guard field object (d.mu → the mu field var), or nil.
func guardObj(pass *analysis.Pass, x ast.Expr) *types.Var {
	switch t := x.(type) {
	case *ast.SelectorExpr:
		if v, ok := pass.TypesInfo.Uses[t.Sel].(*types.Var); ok && mutexKind(v.Type()) != notMutex && v.IsField() {
			return v
		}
	case *ast.Ident:
		// Embedded mutex promoted through the receiver (rare) or a local
		// mutex — only field objects count as guards.
		if v, ok := pass.TypesInfo.Uses[t].(*types.Var); ok && mutexKind(v.Type()) != notMutex && v.IsField() {
			return v
		}
	}
	return nil
}
