package guardedby_test

import (
	"testing"

	"cdml/internal/analysis/analysistest"
	"cdml/internal/analysis/guardedby"
)

func TestGuardedBy(t *testing.T) {
	analysistest.Run(t, "../testdata/src/guardedby", guardedby.Analyzer)
}
