// Package determinism verifies replay determinism at lint time.
//
// The sharded update path promises bit-identical results regardless of
// shard count: GradientSum over any partition, Reduce in index order,
// Apply once. That promise — and with it checkpoint replay and the
// cross-replica comparability of the benchmark trajectory — breaks the
// moment anything on the path consults a source that differs between runs.
// The three offenders in Go are map iteration order (randomized per run by
// the runtime), the wall clock, and unseeded global randomness.
//
// A function annotated
//
//	//cdml:deterministic
//
// (on a FuncDecl, or on an interface method to make the annotation part of
// the interface contract) is checked along with everything it statically
// calls:
//
//   - `range` over a map type is flagged;
//   - time.Now / time.Since / time.Until are flagged;
//   - package-level math/rand and math/rand/v2 draws are flagged
//     (explicitly seeded *rand.Rand instances are fine — that is the
//     repo-wide seeded-RNG discipline the globalrand analyzer enforces);
//   - unannotated same-package callees are walked transitively, so private
//     helpers inherit the obligation without annotation noise;
//   - in-module cross-package callees and dynamic (interface) callees must
//     themselves be annotated //cdml:deterministic — their bodies are then
//     checked by their own package's pass;
//   - stdlib and other non-module callees are trusted.
//
// Function literals called through variables are not resolved (no static
// callee); keep hot deterministic logic in named functions. Deliberate
// exceptions — e.g. timing instrumentation that feeds stats but not
// results — use `//lint:allow determinism: <why>`.
package determinism

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"cdml/internal/analysis"
)

// Marker is the function/interface-method annotation: `//cdml:deterministic`.
const Marker = "cdml:deterministic"

// Analyzer implements the check.
var Analyzer = &analysis.Analyzer{
	Name: "determinism",
	Doc: "flags map iteration, wall-clock reads, and unseeded randomness in " +
		"//cdml:deterministic functions and their transitive static callees",
	Run: run,
}

// randPackages and randConstructors mirror the globalrand analyzer: only
// package-level draws are nondeterministic; constructing a seeded source is
// the sanctioned alternative.
var randPackages = map[string]bool{"math/rand": true, "math/rand/v2": true}

var randConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true, "NewPCG": true, "NewChaCha8": true,
}

func run(pass *analysis.Pass) error {
	annotated := collectAnnotated(pass.Files, pass.TypesInfo)
	if len(annotated) == 0 {
		return nil
	}
	for _, dep := range pass.Deps {
		collectInto(annotated, dep.Files, dep.TypesInfo)
	}
	bodies := localBodies(pass)

	c := &checker{
		pass:      pass,
		annotated: annotated,
		bodies:    bodies,
		walked:    make(map[*types.Func]bool),
		reported:  make(map[token.Pos]bool),
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !analysis.HasMarker(fn.Doc, Marker) {
				continue
			}
			c.check(fn, fn.Name.Name)
		}
	}
	return nil
}

// collectAnnotated gathers the //cdml:deterministic function and
// interface-method objects declared in files.
func collectAnnotated(files []*ast.File, info *types.Info) map[*types.Func]bool {
	annotated := make(map[*types.Func]bool)
	collectInto(annotated, files, info)
	return annotated
}

func collectInto(annotated map[*types.Func]bool, files []*ast.File, info *types.Info) {
	for _, f := range files {
		for _, decl := range f.Decls {
			if fn, ok := decl.(*ast.FuncDecl); ok && analysis.HasMarker(fn.Doc, Marker) {
				if obj, ok := info.Defs[fn.Name].(*types.Func); ok {
					annotated[obj] = true
				}
			}
		}
		// Interface methods: the annotation on the method field makes
		// determinism part of the interface contract.
		ast.Inspect(f, func(n ast.Node) bool {
			it, ok := n.(*ast.InterfaceType)
			if !ok || it.Methods == nil {
				return true
			}
			for _, field := range it.Methods.List {
				if !analysis.HasMarker(field.Doc, Marker) && !analysis.HasMarker(field.Comment, Marker) {
					continue
				}
				for _, name := range field.Names {
					if obj, ok := info.Defs[name].(*types.Func); ok {
						annotated[obj] = true
					}
				}
			}
			return true
		})
	}
}

// localBodies maps this package's function objects to their declarations so
// unannotated helpers can be walked transitively.
func localBodies(pass *analysis.Pass) map[*types.Func]*ast.FuncDecl {
	bodies := make(map[*types.Func]*ast.FuncDecl)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if obj, ok := pass.TypesInfo.Defs[fn.Name].(*types.Func); ok {
				bodies[obj] = fn
			}
		}
	}
	return bodies
}

type checker struct {
	pass      *analysis.Pass
	annotated map[*types.Func]bool
	bodies    map[*types.Func]*ast.FuncDecl
	walked    map[*types.Func]bool
	reported  map[token.Pos]bool
}

// reportf dedupes by position: a helper shared by several deterministic
// roots yields one diagnostic, attributed to the first root that reached it.
func (c *checker) reportf(pos token.Pos, format string, args ...any) {
	if c.reported[pos] {
		return
	}
	c.reported[pos] = true
	c.pass.Reportf(pos, format, args...)
}

// site renders the attribution suffix for diagnostics inside helpers.
func site(fnName, root string) string {
	if fnName == root {
		return "//cdml:deterministic " + fnName
	}
	return fnName + " (reached from //cdml:deterministic " + root + ")"
}

// check walks one function body, recursing into unannotated same-package
// callees.
func (c *checker) check(fn *ast.FuncDecl, root string) {
	obj, _ := c.pass.TypesInfo.Defs[fn.Name].(*types.Func)
	if obj != nil {
		if c.walked[obj] {
			return
		}
		c.walked[obj] = true
	}
	where := site(fn.Name.Name, root)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch stmt := n.(type) {
		case *ast.RangeStmt:
			if t := c.pass.TypesInfo.TypeOf(stmt.X); t != nil {
				if _, isMap := t.Underlying().(*types.Map); isMap {
					c.reportf(stmt.Pos(),
						"map iteration in %s: runtime randomizes map order per run", where)
				}
			}
		case *ast.CallExpr:
			c.checkCall(stmt, fn, where, root)
		}
		return true
	})
}

// checkCall classifies one call site inside a deterministic context.
func (c *checker) checkCall(call *ast.CallExpr, fn *ast.FuncDecl, where, root string) {
	callee := staticCallee(c.pass.TypesInfo, call)
	if callee == nil || callee.Pkg() == nil {
		return // dynamic closure call, builtin, or conversion
	}
	pkg := callee.Pkg().Path()
	name := callee.Name()
	sig, _ := callee.Type().(*types.Signature)
	pkgLevel := sig != nil && sig.Recv() == nil

	switch {
	case pkg == "time" && pkgLevel && (name == "Now" || name == "Since" || name == "Until"):
		c.reportf(call.Pos(), "time.%s in %s: wall-clock reads differ across runs and replicas", name, where)
		return
	case randPackages[pkg] && pkgLevel && !randConstructors[name]:
		c.reportf(call.Pos(), "global %s draw in %s: unseeded randomness; use a seeded *rand.Rand", name, where)
		return
	}

	if c.annotated[callee] {
		return // its own package's pass checks the body
	}
	if callee.Pkg() == c.pass.Pkg {
		if decl, ok := c.bodies[callee]; ok {
			c.check(decl, root)
			return
		}
		// Same-package object without a body: an interface method.
		c.reportf(call.Pos(),
			"call to %s in %s: dynamic callee is not annotated //cdml:deterministic (annotate the interface method)",
			name, where)
		return
	}
	if inModule(pkg) {
		c.reportf(call.Pos(),
			"call to %s.%s in %s: in-module callee is not annotated //cdml:deterministic",
			callee.Pkg().Name(), name, where)
	}
}

// inModule reports whether a package path belongs to this module.
func inModule(path string) bool {
	return path == "cdml" || strings.HasPrefix(path, "cdml/")
}

// staticCallee resolves the called function object, or nil for dynamic
// calls and conversions.
func staticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	obj, _ := info.Uses[id].(*types.Func)
	return obj
}
