package determinism_test

import (
	"testing"

	"cdml/internal/analysis/analysistest"
	"cdml/internal/analysis/determinism"
)

func TestDeterminism(t *testing.T) {
	analysistest.Run(t, "../testdata/src/determinism", determinism.Analyzer)
}
