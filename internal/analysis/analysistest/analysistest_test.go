package analysistest

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"testing"

	"cdml/internal/analysis/floateq"
)

// parseWants runs collectWants over one in-memory source file.
func parseWants(t *testing.T, src string) []expectation {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "w.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	exps, err := collectWants(fset, []*ast.File{f})
	if err != nil {
		t.Fatal(err)
	}
	return exps
}

func TestCollectWantsMultiPattern(t *testing.T) {
	const src = `package p

var a = 1 // want ` + "`first`" + `
var b = 2 // want ` + "`one` `two` `three`" + `
var c = 3 // no expectation here
`
	exps := parseWants(t, src)
	if len(exps) != 4 {
		t.Fatalf("got %d expectations, want 4: %+v", len(exps), exps)
	}
	wantPatterns := []string{"first", "one", "two", "three"}
	wantLines := []int{3, 4, 4, 4}
	for i, exp := range exps {
		if exp.pattern.String() != wantPatterns[i] {
			t.Errorf("expectation %d: pattern %q, want %q", i, exp.pattern, wantPatterns[i])
		}
		if exp.line != wantLines[i] {
			t.Errorf("expectation %d: line %d, want %d", i, exp.line, wantLines[i])
		}
	}
}

func TestCollectWantsBadPattern(t *testing.T) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "w.go", "package p\n\nvar a = 1 // want `(`\n", parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := collectWants(fset, []*ast.File{f}); err == nil {
		t.Fatal("collectWants accepted an invalid regexp pattern")
	}
}

// TestRunEndToEnd drives the harness over a generated fixture covering the
// three behaviors fixtures rely on: a single-pattern want, a line carrying
// two diagnostics with two ordered patterns, and a //lint:allow-suppressed
// line that must stay quiet.
func TestRunEndToEnd(t *testing.T) {
	const fixture = `package fixture

func f(a, b float64) bool {
	if a == b { // want ` + "`floating-point == comparison`" + `
		return true
	}
	return a != b || a == 0 // want ` + "`floating-point != comparison` `floating-point == comparison`" + `
}

func g(v float64) bool {
	return v == 0 //lint:allow floateq: zero is exactly representable; sentinel check
}
`
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "a.go"), []byte(fixture), 0o644); err != nil {
		t.Fatal(err)
	}
	Run(t, dir, floateq.Analyzer)
}
