// Package analysistest runs an analyzer over fixture packages and checks
// its diagnostics against expectations embedded in the fixtures — the
// stdlib-only counterpart of golang.org/x/tools/go/analysis/analysistest.
//
// Expectations are trailing comments of the form
//
//	expr // want `regexp`
//	expr // want `first` `second`
//
// one comment per line, one back-quoted pattern per expected diagnostic:
// the analyzer must report exactly as many diagnostics on that line as the
// comment carries patterns, and the k-th diagnostic (in report order) must
// match the k-th pattern. Lines without a want comment must produce no
// diagnostic, so fixtures can also pin down what the analyzer (or a
// //lint:allow annotation) keeps quiet.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"cdml/internal/analysis"
)

// wantRe recognizes a want comment and captures its pattern list; patRe
// then splits the list into one back-quoted pattern per expected
// diagnostic.
var (
	wantRe = regexp.MustCompile("//\\s*want\\s+(`[^`]+`(?:\\s+`[^`]+`)*)")
	patRe  = regexp.MustCompile("`([^`]+)`")
)

// expectation is one want comment.
type expectation struct {
	file    string
	line    int
	pattern *regexp.Regexp
}

// Run type-checks the fixture package rooted at dir (all .go files,
// stdlib imports only), runs the analyzer with //lint:allow suppression
// applied, and reports mismatches against the fixture's want comments.
func Run(t *testing.T, dir string, a *analysis.Analyzer) {
	t.Helper()
	pkg, err := loadFixture(dir)
	if err != nil {
		t.Fatal(err)
	}
	diags, err := pkg.Run(a)
	if err != nil {
		t.Fatal(err)
	}
	expects, err := collectWants(pkg.Fset, pkg.Files)
	if err != nil {
		t.Fatal(err)
	}

	type key struct {
		file string
		line int
	}
	unmatched := make(map[key][]analysis.Diagnostic)
	for _, d := range diags {
		pos := pkg.Fset.Position(d.Pos)
		k := key{filepath.Base(pos.Filename), pos.Line}
		unmatched[k] = append(unmatched[k], d)
	}
	for _, exp := range expects {
		k := key{exp.file, exp.line}
		ds := unmatched[k]
		if len(ds) == 0 {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", exp.file, exp.line, exp.pattern)
			continue
		}
		if !exp.pattern.MatchString(ds[0].Message) {
			t.Errorf("%s:%d: diagnostic %q does not match %q", exp.file, exp.line, ds[0].Message, exp.pattern)
		}
		unmatched[k] = ds[1:]
	}
	keys := make([]key, 0, len(unmatched))
	for k, ds := range unmatched {
		if len(ds) > 0 {
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].file != keys[j].file {
			return keys[i].file < keys[j].file
		}
		return keys[i].line < keys[j].line
	})
	for _, k := range keys {
		for _, d := range unmatched[k] {
			t.Errorf("%s:%d: unexpected diagnostic: %s", k.file, k.line, d.Message)
		}
	}
}

// loadFixture parses and type-checks every .go file under dir as one
// package.
func loadFixture(dir string) (*analysis.Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("analysistest: %v", err)
	}
	fset := token.NewFileSet()
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("analysistest: parsing %s: %v", e.Name(), err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysistest: no fixture files in %s", dir)
	}
	info := &types.Info{
		Types:     make(map[ast.Expr]types.TypeAndValue),
		Defs:      make(map[*ast.Ident]types.Object),
		Uses:      make(map[*ast.Ident]types.Object),
		Implicits: make(map[ast.Node]types.Object),
	}
	conf := types.Config{Importer: analysis.NewStdlibImporter(fset)}
	tpkg, err := conf.Check("fixture/"+filepath.Base(dir), fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysistest: type-checking %s: %v", dir, err)
	}
	return &analysis.Package{
		PkgPath:   tpkg.Path(),
		Dir:       dir,
		Fset:      fset,
		Files:     files,
		Types:     tpkg,
		TypesInfo: info,
	}, nil
}

// collectWants gathers the want comments of the fixture files; a comment
// with several back-quoted patterns yields one expectation per pattern, in
// order.
func collectWants(fset *token.FileSet, files []*ast.File) ([]expectation, error) {
	var out []expectation
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, pm := range patRe.FindAllStringSubmatch(m[1], -1) {
					re, err := regexp.Compile(pm[1])
					if err != nil {
						return nil, fmt.Errorf("analysistest: bad want pattern %q: %v", pm[1], err)
					}
					out = append(out, expectation{
						file:    filepath.Base(pos.Filename),
						line:    pos.Line,
						pattern: re,
					})
				}
			}
		}
	}
	return out, nil
}
