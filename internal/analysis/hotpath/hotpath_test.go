package hotpath_test

import (
	"testing"

	"cdml/internal/analysis/analysistest"
	"cdml/internal/analysis/hotpath"
)

func TestHotPath(t *testing.T) {
	analysistest.Run(t, "../testdata/src/hotpath", hotpath.Analyzer)
}
