// Package hotpath statically protects the 0 allocs/op contract of the
// serving benchmarks.
//
// Functions annotated with a `//cdml:hotpath` doc-comment line are the
// per-event serve/predict/online-update paths (obs counter increments,
// histogram observes, sparse dot products, model scoring, drift detector
// updates). Inside them the analyzer flags allocation- and syscall-bearing
// constructs:
//
//   - time.Now() — a syscall (or vDSO call) per event;
//   - any fmt.* call — formatting allocates via its ...interface{} varargs;
//   - map and slice composite literals — heap allocations;
//   - function literals — closures whose captures may escape;
//   - explicit conversions to an interface type — box the operand.
//
// Arguments of panic(...) are exempt: a cold must-not-happen branch pays
// nothing on the happy path, and panic messages should stay descriptive.
// Anything else that is deliberate gets `//lint:allow hotpath: <why>`.
package hotpath

import (
	"go/ast"
	"go/types"
	"strings"

	"cdml/internal/analysis"
)

// Marker is the doc-comment line that opts a function into the check.
const Marker = "cdml:hotpath"

// Analyzer implements the check.
var Analyzer = &analysis.Analyzer{
	Name: "hotpath",
	Doc: "flags allocation- and syscall-bearing constructs (time.Now, fmt.*, " +
		"map/slice literals, closures, interface conversions) inside " +
		"//cdml:hotpath-annotated functions",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !isHotPath(fn) {
				continue
			}
			checkBody(pass, fn.Body)
		}
	}
	return nil
}

// isHotPath reports whether fn's doc comment contains the marker line.
func isHotPath(fn *ast.FuncDecl) bool {
	if fn.Doc == nil {
		return false
	}
	for _, c := range fn.Doc.List {
		text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
		if strings.HasPrefix(text, Marker) {
			return true
		}
	}
	return false
}

// checkBody walks an annotated function body, skipping panic(...) argument
// subtrees (cold branches by definition).
func checkBody(pass *analysis.Pass, body ast.Node) {
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if ok && isBuiltinPanic(pass, call) {
			return false // exempt the argument subtree
		}
		check(pass, n)
		return true
	})
}

// check reports one node if it is a flagged construct.
func check(pass *analysis.Pass, n ast.Node) {
	switch n := n.(type) {
	case *ast.CallExpr:
		checkCall(pass, n)
	case *ast.CompositeLit:
		t := pass.TypesInfo.TypeOf(n)
		if t == nil {
			return
		}
		switch t.Underlying().(type) {
		case *types.Map:
			pass.Reportf(n.Pos(), "map literal allocates on a //cdml:hotpath function")
		case *types.Slice:
			pass.Reportf(n.Pos(), "slice literal allocates on a //cdml:hotpath function")
		}
	case *ast.FuncLit:
		pass.Reportf(n.Pos(), "closure on a //cdml:hotpath function; captured variables may escape to the heap")
	}
}

// checkCall flags syscall/allocation-bearing calls and explicit interface
// conversions.
func checkCall(pass *analysis.Pass, call *ast.CallExpr) {
	// Explicit conversion to an interface type boxes its operand.
	if tv, ok := pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() {
		if _, isIface := tv.Type.Underlying().(*types.Interface); isIface {
			pass.Reportf(call.Pos(), "conversion to interface type %s allocates on a //cdml:hotpath function", tv.Type)
		}
		return
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	obj, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || obj.Pkg() == nil {
		return
	}
	switch obj.Pkg().Path() {
	case "time":
		if obj.Name() == "Now" {
			pass.Reportf(call.Pos(), "time.Now() is a syscall on a //cdml:hotpath function; take the timestamp outside the hot loop")
		}
	case "fmt":
		pass.Reportf(call.Pos(), "fmt.%s allocates (varargs boxing) on a //cdml:hotpath function", obj.Name())
	}
}

// isBuiltinPanic reports whether call invokes the predeclared panic.
func isBuiltinPanic(pass *analysis.Pass, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "panic" {
		return false
	}
	_, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin)
	return isBuiltin
}
