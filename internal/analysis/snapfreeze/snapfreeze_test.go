package snapfreeze_test

import (
	"testing"

	"cdml/internal/analysis/analysistest"
	"cdml/internal/analysis/snapfreeze"
)

func TestSnapFreeze(t *testing.T) {
	analysistest.Run(t, "../testdata/src/snapfreeze", snapfreeze.Analyzer)
}
