// Package snapfreeze verifies snapshot immutability at lint time.
//
// The serving path of this repo relies on the Velox pattern: a fully built,
// immutable Snapshot is published through an atomic pointer, and readers
// use it without locks. That only works if nothing ever mutates a snapshot
// after publication — an invariant the type system cannot express. This
// analyzer enforces it structurally:
//
//	//cdml:frozen
//
// on a type declaration marks the type as immutable-after-construction.
// The frozen set is then closed over the go/types object graph: every
// named struct type reachable from a frozen type through shared memory —
// pointer, slice, or map fields, at any depth, across packages — is frozen
// too, because mutating it mutates state a published snapshot can see.
// Value-typed struct fields are part of the parent's memory, so writing
// them through a frozen parent is already caught via the parent; the
// closure still descends into them to find deeper pointer fields.
//
//	//cdml:mutable
//
// on a type declaration prunes it (and everything below it) from the
// closure — the escape hatch for types that are reachable from a snapshot
// but internally synchronized (e.g. a stats clock shared with the writer).
//
// A diagnostic fires on any assignment, ++/--, or &-escape whose target is
// reached through frozen memory: walking the access chain from the store
// toward the root, the first pointer/slice/map crossing whose element type
// is frozen owns the written memory. Construction sites are exempt:
// functions named New*/new*, and methods named Clone or Snapshot (the
// repo's copy-on-write vocabulary). Anything else that is deliberate gets
// `//lint:allow snapfreeze: <why>`.
package snapfreeze

import (
	"go/ast"
	"go/types"
	"strings"

	"cdml/internal/analysis"
)

// FrozenMarker roots the immutability closure: `//cdml:frozen`.
const FrozenMarker = "cdml:frozen"

// MutableMarker prunes a type from the closure: `//cdml:mutable`.
const MutableMarker = "cdml:mutable"

// Analyzer implements the check.
var Analyzer = &analysis.Analyzer{
	Name: "snapfreeze",
	Doc: "flags writes to memory reachable from a //cdml:frozen type " +
		"(immutable-after-construction, e.g. published snapshots) outside " +
		"constructors and Clone/Snapshot methods",
	Run: run,
}

func run(pass *analysis.Pass) error {
	frozen, mutable := collectMarked(pass)
	if len(frozen) == 0 {
		return nil
	}
	expand(frozen, mutable)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || exemptFunc(fn) {
				continue
			}
			checkFunc(pass, fn, frozen, mutable)
		}
	}
	return nil
}

// exemptFunc reports whether fn is a construction context: the object under
// construction is not yet published, so field stores are the point.
func exemptFunc(fn *ast.FuncDecl) bool {
	name := fn.Name.Name
	return strings.HasPrefix(name, "New") || strings.HasPrefix(name, "new") ||
		(fn.Recv != nil && (name == "Clone" || name == "Snapshot"))
}

// collectMarked gathers the annotated type roots from this package and its
// whole in-module dependency closure — a snapshot type annotated in core
// must freeze the pipeline and model types it references even when those
// live in other packages.
func collectMarked(pass *analysis.Pass) (frozen, mutable map[*types.TypeName]bool) {
	frozen = make(map[*types.TypeName]bool)
	mutable = make(map[*types.TypeName]bool)
	scan := func(files []*ast.File, info *types.Info) {
		for _, f := range files {
			for _, decl := range f.Decls {
				gd, ok := decl.(*ast.GenDecl)
				if !ok {
					continue
				}
				for _, spec := range gd.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					doc := ts.Doc
					if doc == nil && len(gd.Specs) == 1 {
						doc = gd.Doc
					}
					isFrozen := analysis.HasMarker(doc, FrozenMarker) ||
						analysis.HasMarker(ts.Comment, FrozenMarker)
					isMutable := analysis.HasMarker(doc, MutableMarker) ||
						analysis.HasMarker(ts.Comment, MutableMarker)
					if !isFrozen && !isMutable {
						continue
					}
					tn, ok := info.Defs[ts.Name].(*types.TypeName)
					if !ok {
						continue
					}
					if isMutable {
						mutable[tn] = true
					} else {
						frozen[tn] = true
					}
				}
			}
		}
	}
	scan(pass.Files, pass.TypesInfo)
	for _, dep := range pass.Deps {
		scan(dep.Files, dep.TypesInfo)
	}
	return frozen, mutable
}

// expand closes the frozen set over shared-memory reachability. The
// traversal descends through value-struct fields (their memory belongs to
// the parent, so they never join the set themselves) and adds every named
// struct type first reached through a pointer, slice, or map layer.
func expand(frozen, mutable map[*types.TypeName]bool) {
	type visit struct {
		tn     *types.TypeName
		shared bool
	}
	seen := make(map[visit]bool)
	var walkType func(t types.Type, shared bool)
	var walkNamed func(tn *types.TypeName, shared bool)

	walkType = func(t types.Type, shared bool) {
		switch u := t.(type) {
		case *types.Named:
			walkNamed(u.Obj(), shared)
			return
		case *types.Alias:
			walkType(types.Unalias(u), shared)
			return
		}
		switch u := t.Underlying().(type) {
		case *types.Pointer:
			walkType(u.Elem(), true)
		case *types.Slice:
			walkType(u.Elem(), true)
		case *types.Map:
			walkType(u.Elem(), true)
		case *types.Array:
			walkType(u.Elem(), shared)
		case *types.Struct:
			for i := 0; i < u.NumFields(); i++ {
				walkType(u.Field(i).Type(), shared)
			}
		}
	}
	walkNamed = func(tn *types.TypeName, shared bool) {
		if mutable[tn] || seen[visit{tn, shared}] {
			return
		}
		seen[visit{tn, shared}] = true
		st, ok := tn.Type().Underlying().(*types.Struct)
		if !ok {
			// Named non-structs (slices, maps, basics) contribute through
			// their underlying shape but are not tracked individually.
			walkType(tn.Type().Underlying(), shared)
			return
		}
		if shared {
			frozen[tn] = true
		}
		for i := 0; i < st.NumFields(); i++ {
			// Fields start as value memory of this struct; pointer/slice/map
			// layers inside walkType flip them to shared.
			walkType(st.Field(i).Type(), false)
		}
	}

	for tn := range frozen {
		walkNamed(tn, true)
	}
}

// verdict classifies one pointer/slice/map crossing on the access chain.
type verdict int

const (
	keepWalking verdict = iota // not a decisive owner, continue toward root
	frozenOwner                // written memory belongs to a frozen object
	mutableOwner               // written memory belongs to a //cdml:mutable object
)

// ownerVerdict inspects the type of a chain-prefix expression. Pointer,
// slice, and map types are ownership boundaries: the written memory belongs
// to their element object, so a frozen (or mutable) element type decides.
func ownerVerdict(t types.Type, frozen, mutable map[*types.TypeName]bool) verdict {
	if t == nil {
		return keepWalking
	}
	var elem types.Type
	switch u := t.Underlying().(type) {
	case *types.Pointer:
		elem = u.Elem()
	case *types.Slice:
		elem = u.Elem()
	case *types.Map:
		elem = u.Elem()
	default:
		return keepWalking
	}
	return namedVerdict(elem, frozen, mutable)
}

// namedVerdict strips pointer layers and classifies the named type.
func namedVerdict(t types.Type, frozen, mutable map[*types.TypeName]bool) verdict {
	for {
		if p, ok := t.Underlying().(*types.Pointer); ok {
			t = p.Elem()
			continue
		}
		break
	}
	t = types.Unalias(t)
	named, ok := t.(*types.Named)
	if !ok {
		return keepWalking
	}
	switch {
	case mutable[named.Obj()]:
		return mutableOwner
	case frozen[named.Obj()]:
		return frozenOwner
	}
	return keepWalking
}

// checkFunc flags frozen-memory stores in one function body.
func checkFunc(pass *analysis.Pass, fn *ast.FuncDecl, frozen, mutable map[*types.TypeName]bool) {
	report := func(target ast.Expr, what string) {
		pass.Reportf(target.Pos(), "%s %s reaches //cdml:frozen memory in %s; "+
			"frozen types are immutable after construction — copy-on-write via Clone/Snapshot instead",
			what, exprString(target), fn.Name.Name)
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch stmt := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range stmt.Lhs {
				if frozenStore(pass, lhs, frozen, mutable) {
					report(lhs, "write to")
				}
			}
		case *ast.IncDecStmt:
			if frozenStore(pass, stmt.X, frozen, mutable) {
				report(stmt.X, "write to")
			}
		case *ast.UnaryExpr:
			if stmt.Op.String() == "&" && frozenStore(pass, stmt.X, frozen, mutable) {
				report(stmt.X, "address of")
			}
		}
		return true
	})
}

// frozenStore walks the access chain of a store target from the store
// toward the root. The first pointer/slice/map crossing with a decisive
// element type wins: frozen flags, mutable clears. Value-struct selectors
// and array indexing stay within the same object's memory and keep walking.
func frozenStore(pass *analysis.Pass, target ast.Expr, frozen, mutable map[*types.TypeName]bool) bool {
	expr := target
	for {
		var base ast.Expr
		switch e := expr.(type) {
		case *ast.ParenExpr:
			expr = e.X
			continue
		case *ast.SelectorExpr:
			base = e.X
		case *ast.IndexExpr:
			base = e.X
		case *ast.StarExpr:
			base = e.X
		default:
			// Root reached: a bare identifier (rebinding a variable, never a
			// frozen-memory store), a call result, or anything else opaque.
			return false
		}
		switch ownerVerdict(pass.TypesInfo.TypeOf(base), frozen, mutable) {
		case frozenOwner:
			return true
		case mutableOwner:
			return false
		}
		expr = base
	}
}

// exprString renders a short chain like d.snap.stats for diagnostics.
func exprString(e ast.Expr) string {
	switch t := e.(type) {
	case *ast.Ident:
		return t.Name
	case *ast.SelectorExpr:
		return exprString(t.X) + "." + t.Sel.Name
	case *ast.IndexExpr:
		return exprString(t.X) + "[...]"
	case *ast.StarExpr:
		return "*" + exprString(t.X)
	case *ast.ParenExpr:
		return exprString(t.X)
	}
	return "expression"
}
