// Package floateq flags == and != comparisons between floating-point
// operands outside _test.go files.
//
// Prequential-error math (§5.1) accumulates rounding error; exact float
// comparison silently turns "equal up to noise" into "never equal" and
// diverges deployments that should agree. Use an epsilon comparison, or —
// for deliberate sentinel checks against an exactly-representable value
// (0, a stored previous value, math.Trunc output) — annotate the line with
// `//lint:allow floateq: <why>`.
package floateq

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"cdml/internal/analysis"
)

// Analyzer implements the check.
var Analyzer = &analysis.Analyzer{
	Name: "floateq",
	Doc: "flags ==/!= between floating-point operands outside _test.go " +
		"files; annotate deliberate sentinel checks with //lint:allow floateq: <why>",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		filename := pass.Fset.Position(f.Pos()).Filename
		if strings.HasSuffix(filename, "_test.go") {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			bin, ok := n.(*ast.BinaryExpr)
			if !ok || (bin.Op != token.EQL && bin.Op != token.NEQ) {
				return true
			}
			if isFloat(pass.TypesInfo.TypeOf(bin.X)) || isFloat(pass.TypesInfo.TypeOf(bin.Y)) {
				pass.Reportf(bin.OpPos,
					"floating-point %s comparison; use an epsilon or annotate a deliberate sentinel check with //lint:allow floateq: <why>",
					bin.Op)
			}
			return true
		})
	}
	return nil
}

// isFloat reports whether t's underlying type is a floating-point kind
// (complex kinds compare exactly per component and are included).
func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	basic, ok := t.Underlying().(*types.Basic)
	if !ok {
		return false
	}
	return basic.Info()&(types.IsFloat|types.IsComplex) != 0
}
