package floateq_test

import (
	"testing"

	"cdml/internal/analysis/analysistest"
	"cdml/internal/analysis/floateq"
)

func TestFloatEq(t *testing.T) {
	analysistest.Run(t, "../testdata/src/floateq", floateq.Analyzer)
}
