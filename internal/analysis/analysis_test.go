package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"reflect"
	"testing"
)

func TestAllowsAnalyzer(t *testing.T) {
	cases := []struct {
		text string
		name string
		want bool
	}{
		// Canonical colon form.
		{"lint:allow floateq: zero sentinel", "floateq", true},
		{"lint:allow floateq,hotpath: shared line", "hotpath", true},
		{"lint:allow floateq,hotpath: shared line", "floateq", true},
		{"  lint:allow floateq:  ", "floateq", true},
		{"lint:allow floateq : space before the colon still parses", "floateq", true},
		// Legacy colon-less form still suppresses (CheckAllows flags it, so
		// the gate forces conversion without ever un-suppressing findings
		// mid-migration).
		{"lint:allow floateq", "floateq", true},
		{"lint:allow floateq old free-form reason", "floateq", true},
		{"lint:allow floateq,hotpath shared line", "hotpath", true},
		// Non-matches.
		{"lint:allow floateq: zero sentinel", "hotpath", false},
		{"lint:allow", "floateq", false},
		{"lint:allowfloateq", "floateq", false},
		{"just a comment", "floateq", false},
	}
	for _, c := range cases {
		if got := allowsAnalyzer(c.text, c.name); got != c.want {
			t.Errorf("allowsAnalyzer(%q, %q) = %v, want %v", c.text, c.name, got, c.want)
		}
	}
}

func TestParseAllow(t *testing.T) {
	cases := []struct {
		text      string
		names     []string
		reason    string
		canonical bool
	}{
		{"lint:allow floateq: zero sentinel", []string{"floateq"}, "zero sentinel", true},
		{"lint:allow floateq,hotpath: shared", []string{"floateq", "hotpath"}, "shared", true},
		{"lint:allow floateq legacy reason", []string{"floateq"}, "legacy reason", false},
		{"lint:allow floateq", []string{"floateq"}, "", false},
		{"lint:allow", nil, "", false},
		{"lint:allow floateq:", []string{"floateq"}, "", true},
	}
	for _, c := range cases {
		pa, ok := parseAllow(c.text)
		if !ok {
			t.Errorf("parseAllow(%q) not recognized", c.text)
			continue
		}
		if !reflect.DeepEqual(pa.names, c.names) || pa.reason != c.reason || pa.canonical != c.canonical {
			t.Errorf("parseAllow(%q) = {names:%v reason:%q canonical:%v}, want {%v %q %v}",
				c.text, pa.names, pa.reason, pa.canonical, c.names, c.reason, c.canonical)
		}
	}
}

func TestSuppress(t *testing.T) {
	src := `package p

func f() {
	one()
	//lint:allow demo: standalone form covers the next line
	two()
	three() //lint:allow demo: trailing form covers its own and the next line
	four()
	five()
	six() //lint:allow other: different analyzer does not suppress demo
}
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "demo.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	tf := fset.File(f.Pos())
	var diags []Diagnostic
	for line := 4; line <= 10; line++ {
		diags = append(diags, Diagnostic{Pos: tf.LineStart(line), Message: "x"})
	}
	kept := Suppress(fset, []*ast.File{f}, "demo", diags)
	var keptLines []int
	for _, d := range kept {
		keptLines = append(keptLines, fset.Position(d.Pos).Line)
	}
	// 5 and 6 go (standalone comment), 7 and 8 go (trailing comment);
	// 4, 9, and 10 survive (10's allow names a different analyzer).
	if want := []int{4, 9, 10}; !reflect.DeepEqual(keptLines, want) {
		t.Errorf("kept lines %v, want %v", keptLines, want)
	}
}

func TestCheckAllows(t *testing.T) {
	src := `package p

func f() {
	one()   //lint:allow demo: documented reason
	two()   //lint:allow demo
	three() //lint:allow demo legacy free-form reason
	four()  //lint:allow
	five()  //lint:allow demo:
	six()   // an ordinary comment
}
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "demo.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	diags := CheckAllows(fset, []*ast.File{f})
	var lines []int
	for _, d := range diags {
		lines = append(lines, fset.Position(d.Pos).Line)
	}
	// 4 is canonical; 5 (no reason), 6 (legacy form), 7 (bare), and 8
	// (colon but empty reason) are all malformed.
	if want := []int{5, 6, 7, 8}; !reflect.DeepEqual(lines, want) {
		t.Errorf("flagged lines %v, want %v", lines, want)
	}
	for _, d := range diags {
		if fset.Position(d.Pos).Line == 7 && d.Message != "bare //lint:allow suppresses nothing; use //lint:allow <analyzer>: <why>" {
			t.Errorf("bare allow message = %q", d.Message)
		}
	}
}
