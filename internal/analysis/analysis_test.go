package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"reflect"
	"testing"
)

func TestAllowsAnalyzer(t *testing.T) {
	cases := []struct {
		text string
		name string
		want bool
	}{
		{"lint:allow floateq", "floateq", true},
		{"lint:allow floateq zero sentinel", "floateq", true},
		{"lint:allow floateq,hotpath shared line", "hotpath", true},
		{"lint:allow floateq", "hotpath", false},
		{"lint:allow", "floateq", false},
		{"lint:allowfloateq", "floateq", false},
		{"just a comment", "floateq", false},
		{"  lint:allow floateq  ", "floateq", true},
	}
	for _, c := range cases {
		if got := allowsAnalyzer(c.text, c.name); got != c.want {
			t.Errorf("allowsAnalyzer(%q, %q) = %v, want %v", c.text, c.name, got, c.want)
		}
	}
}

func TestSuppress(t *testing.T) {
	src := `package p

func f() {
	one()
	//lint:allow demo standalone form covers the next line
	two()
	three() //lint:allow demo trailing form covers its own and the next line
	four()
	five()
	six() //lint:allow other different analyzer does not suppress demo
}
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "demo.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	tf := fset.File(f.Pos())
	var diags []Diagnostic
	for line := 4; line <= 10; line++ {
		diags = append(diags, Diagnostic{Pos: tf.LineStart(line), Message: "x"})
	}
	kept := Suppress(fset, []*ast.File{f}, "demo", diags)
	var keptLines []int
	for _, d := range kept {
		keptLines = append(keptLines, fset.Position(d.Pos).Line)
	}
	// 5 and 6 go (standalone comment), 7 and 8 go (trailing comment);
	// 4, 9, and 10 survive (10's allow names a different analyzer).
	if want := []int{4, 9, 10}; !reflect.DeepEqual(keptLines, want) {
		t.Errorf("kept lines %v, want %v", keptLines, want)
	}
}
