// Package analysis is the repo's static-analysis layer: a self-contained
// reimplementation of the slice of golang.org/x/tools/go/analysis that the
// cdml analyzers need (the module deliberately has no external dependencies,
// so vendoring x/tools is not an option). It mirrors the upstream API shape —
// Analyzer, Pass, Diagnostic — so the analyzers under internal/analysis/...
// can be ported to the real framework verbatim if the dependency policy ever
// changes.
//
// The analyzers enforce the invariants the paper's evaluation rests on:
//
//   - globalrand: every random draw goes through an explicitly seeded
//     *rand.Rand, keeping deployment runs bit-reproducible (§5).
//   - floateq: prequential-error math never compares floats with == / !=
//     outside tests.
//   - mustcheck: persistence-path errors (Save/Load/Close/Flush/Encode/
//     Decode/...) are never silently discarded.
//   - hotpath: functions annotated //cdml:hotpath stay free of allocation-
//     and syscall-bearing constructs, protecting the 0 allocs/op contract of
//     the serving benchmarks statically.
//
// And the contract analyzers, which verify at lint time the concurrency and
// determinism invariants the compiler cannot see:
//
//   - guardedby: fields annotated //cdml:guardedby <mu> are only touched by
//     functions that acquire the named mutex (Abseil GUARDED_BY style).
//   - snapfreeze: nothing reachable from a //cdml:frozen type (the published
//     core.Snapshot graph) is written outside constructors/Clone/Snapshot.
//   - ctxflow: request/tick paths never detach from their context via
//     context.Background()/TODO() or context-detaching wrappers.
//   - determinism: //cdml:deterministic functions (the sharded
//     GradientSum/Reduce/Apply training chain) avoid map iteration, wall
//     clocks, and global rand — transitively, across packages.
//
// Suppression: a `//lint:allow <name>: <why>` comment on the offending line
// (or on the line directly above it) silences one analyzer for that line.
// The reason after the colon is mandatory — CheckAllows, run by cdml-lint
// over every package, reports bare or reason-less suppressions as findings
// of their own.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer describes one static check. Run inspects a fully type-checked
// package through the Pass and reports findings via Pass.Report/Reportf.
type Analyzer struct {
	// Name identifies the analyzer; it is the key accepted by //lint:allow.
	Name string
	// Doc is a one-paragraph description of what the analyzer enforces.
	Doc string
	// Run executes the check over one package.
	Run func(*Pass) error
}

// Pass carries one type-checked package through an analyzer run.
type Pass struct {
	// Analyzer is the check being run.
	Analyzer *Analyzer
	// Fset maps token positions of Files.
	Fset *token.FileSet
	// Files are the parsed (with comments) source files of the package,
	// excluding _test.go files.
	Files []*ast.File
	// Pkg is the type-checked package.
	Pkg *types.Package
	// TypesInfo holds expression types and identifier resolutions.
	TypesInfo *types.Info
	// Deps exposes the in-module dependency closure (syntax + types, same
	// FileSet) so analyzers can propagate annotation facts across package
	// boundaries — e.g. "is this imported function //cdml:deterministic",
	// "does this imported wrapper detach its context". Nil entries never
	// occur; the map may be empty (fixture packages, leaf packages).
	Deps map[string]*Package

	report func(Diagnostic)
}

// Diagnostic is one finding.
type Diagnostic struct {
	// Pos locates the offending syntax.
	Pos token.Pos
	// Message states the violation and the remedy.
	Message string
}

// Report records one diagnostic.
func (p *Pass) Report(d Diagnostic) { p.report(d) }

// Reportf records one diagnostic at pos with a formatted message.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Run executes analyzer a over the package, applies //lint:allow
// suppression, and returns the surviving diagnostics in position order.
func (pkg *Package) Run(a *Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	pass := &Pass{
		Analyzer:  a,
		Fset:      pkg.Fset,
		Files:     pkg.Files,
		Pkg:       pkg.Types,
		TypesInfo: pkg.TypesInfo,
		Deps:      pkg.Deps,
		report:    func(d Diagnostic) { diags = append(diags, d) },
	}
	if err := a.Run(pass); err != nil {
		return nil, fmt.Errorf("analysis: %s on %s: %w", a.Name, pkg.PkgPath, err)
	}
	diags = Suppress(pkg.Fset, pkg.Files, a.Name, diags)
	sort.Slice(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })
	return diags, nil
}
