package globalrand_test

import (
	"testing"

	"cdml/internal/analysis/analysistest"
	"cdml/internal/analysis/globalrand"
)

func TestGlobalRand(t *testing.T) {
	analysistest.Run(t, "../testdata/src/globalrand", globalrand.Analyzer)
}
