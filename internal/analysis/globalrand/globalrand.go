// Package globalrand flags uses of package-level math/rand functions.
//
// The paper's experiments (§5) are only reproducible when every random draw
// — samplers, optimizer initialization, synthetic data generators — comes
// from an explicitly seeded *rand.Rand threaded through the component.
// Package-level rand.Intn/Float64/Shuffle/... pull from the shared global
// source, whose state depends on whatever else ran in the process, and
// silently break run-to-run determinism. Constructors (rand.New,
// rand.NewSource, rand.NewZipf, ...) are allowed: they are exactly how the
// seeded convention is implemented.
package globalrand

import (
	"go/ast"
	"go/types"

	"cdml/internal/analysis"
)

// Analyzer implements the check.
var Analyzer = &analysis.Analyzer{
	Name: "globalrand",
	Doc: "flags package-level math/rand functions that bypass the repo's " +
		"seeded *rand.Rand convention and break experiment reproducibility",
	Run: run,
}

// randPackages are the package paths whose top-level functions draw from a
// process-global source.
var randPackages = map[string]bool{
	"math/rand":    true,
	"math/rand/v2": true,
}

// constructors are the package-level functions that build seeded sources
// rather than drawing from the global one.
var constructors = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true,
	"NewChaCha8": true,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
			if !ok || obj.Pkg() == nil || !randPackages[obj.Pkg().Path()] {
				return true
			}
			sig, ok := obj.Type().(*types.Signature)
			if !ok || sig.Recv() != nil {
				// Methods on *rand.Rand are the seeded convention itself.
				return true
			}
			if constructors[obj.Name()] {
				return true
			}
			pass.Reportf(sel.Pos(),
				"package-level %s.%s draws from the process-global source; use an explicitly seeded *rand.Rand instead",
				obj.Pkg().Name(), obj.Name())
			return true
		})
	}
	return nil
}
