package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os/exec"
	"path/filepath"
)

// Package is one loaded, parsed, and type-checked package.
type Package struct {
	// PkgPath is the import path ("cdml/internal/core").
	PkgPath string
	// Dir is the package's source directory.
	Dir string
	// Fset maps token positions of Files.
	Fset *token.FileSet
	// Files are the parsed non-test source files.
	Files []*ast.File
	// Types is the type-checked package.
	Types *types.Package
	// TypesInfo holds expression types and identifier resolutions.
	TypesInfo *types.Info
	// Deps holds the package's in-module dependency closure, keyed by import
	// path, with full syntax and type information. It is the fact channel of
	// the contract analyzers: a pass over this package can read annotations
	// (//cdml:deterministic, //cdml:frozen, ...) off the declarations of the
	// packages it imports — the stdlib-only analogue of the upstream
	// framework's ImportPackageFact. Dependency packages share this package's
	// FileSet, so their token positions render through the same Fset.
	Deps map[string]*Package
}

// listedPackage is the slice of `go list -json` output the loader consumes.
type listedPackage struct {
	ImportPath string
	Dir        string
	Standard   bool
	GoFiles    []string
	Imports    []string
}

// goList runs `go list -json` with args and decodes the JSON stream.
func goList(dir string, args ...string) ([]*listedPackage, error) {
	cmd := exec.Command("go", append([]string{"list", "-json"}, args...)...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("analysis: go list %v: %v\n%s", args, err, stderr.String())
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	var pkgs []*listedPackage
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("analysis: decoding go list output: %v", err)
		}
		pkgs = append(pkgs, &p)
	}
	return pkgs, nil
}

// stdImporter resolves non-local (standard library) imports, preferring the
// fast compiled-export-data importer and falling back to type-checking from
// source. Results are cached.
type stdImporter struct {
	fset   *token.FileSet
	gc     types.Importer
	source types.Importer
	cache  map[string]*types.Package
}

func newStdImporter(fset *token.FileSet) *stdImporter {
	return &stdImporter{
		fset:   fset,
		gc:     importer.Default(),
		source: importer.ForCompiler(fset, "source", nil),
		cache:  make(map[string]*types.Package),
	}
}

func (si *stdImporter) Import(path string) (*types.Package, error) {
	if pkg, ok := si.cache[path]; ok {
		return pkg, nil
	}
	pkg, err := si.gc.Import(path)
	if err != nil {
		pkg, err = si.source.Import(path)
	}
	if err != nil {
		return nil, err
	}
	si.cache[path] = pkg
	return pkg, nil
}

// NewStdlibImporter returns an importer that resolves standard-library
// packages only — what analysistest fixtures (which may import nothing
// else) type-check against.
func NewStdlibImporter(fset *token.FileSet) types.Importer {
	return newStdImporter(fset)
}

// moduleImporter resolves imports during the topological type-check: local
// packages come from the already-checked set, everything else from the
// standard-library importer.
type moduleImporter struct {
	local map[string]*types.Package
	std   *stdImporter
}

func (mi *moduleImporter) Import(path string) (*types.Package, error) {
	if pkg, ok := mi.local[path]; ok {
		return pkg, nil
	}
	return mi.std.Import(path)
}

// Load lists, parses, and type-checks the packages matched by patterns
// (plus their in-module dependencies, which are checked but not returned).
// dir is the working directory for `go list`; "" means the current one.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	// -deps pulls in the in-module dependency closure so packages matched by
	// a narrow pattern still type-check; standard-library entries are
	// resolved through export data instead.
	listed, err := goList(dir, append([]string{"-deps"}, patterns...)...)
	if err != nil {
		return nil, err
	}
	requested, err := goList(dir, patterns...)
	if err != nil {
		return nil, err
	}
	wanted := make(map[string]bool, len(requested))
	for _, p := range requested {
		wanted[p.ImportPath] = true
	}

	local := make(map[string]*listedPackage)
	for _, p := range listed {
		if !p.Standard {
			local[p.ImportPath] = p
		}
	}

	fset := token.NewFileSet()
	std := newStdImporter(fset)
	checked := make(map[string]*types.Package, len(local))
	built := make(map[string]*Package, len(local))
	imp := &moduleImporter{local: checked, std: std}
	result := make([]*Package, 0, len(wanted))

	// Topological order over the in-module import graph.
	var (
		visit func(path string) error
		state = make(map[string]int) // 0 unvisited, 1 visiting, 2 done
	)
	visit = func(path string) error {
		switch state[path] {
		case 1:
			return fmt.Errorf("analysis: import cycle through %s", path)
		case 2:
			return nil
		}
		state[path] = 1
		lp := local[path]
		for _, dep := range lp.Imports {
			if _, ok := local[dep]; ok {
				if err := visit(dep); err != nil {
					return err
				}
			}
		}
		pkg, err := checkPackage(fset, lp, imp)
		if err != nil {
			return err
		}
		checked[path] = pkg.Types
		built[path] = pkg
		// The dependency closure: every direct in-module import plus, by
		// induction over the topological order, everything it depends on.
		pkg.Deps = make(map[string]*Package)
		for _, dep := range lp.Imports {
			dp, ok := built[dep]
			if !ok {
				continue
			}
			pkg.Deps[dep] = dp
			for p, d := range dp.Deps {
				pkg.Deps[p] = d
			}
		}
		if wanted[path] {
			result = append(result, pkg)
		}
		state[path] = 2
		return nil
	}
	// Iterate in listed order (go list output is deterministic) so results
	// and error reporting are stable.
	for _, p := range listed {
		if _, ok := local[p.ImportPath]; ok {
			if err := visit(p.ImportPath); err != nil {
				return nil, err
			}
		}
	}
	return result, nil
}

// checkPackage parses and type-checks one listed package.
func checkPackage(fset *token.FileSet, lp *listedPackage, imp types.Importer) (*Package, error) {
	files := make([]*ast.File, 0, len(lp.GoFiles))
	for _, name := range lp.GoFiles {
		f, err := parser.ParseFile(fset, filepath.Join(lp.Dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("analysis: parsing %s: %v", name, err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:     make(map[ast.Expr]types.TypeAndValue),
		Defs:      make(map[*ast.Ident]types.Object),
		Uses:      make(map[*ast.Ident]types.Object),
		Implicits: make(map[ast.Node]types.Object),
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(lp.ImportPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %v", lp.ImportPath, err)
	}
	return &Package{
		PkgPath:   lp.ImportPath,
		Dir:       lp.Dir,
		Fset:      fset,
		Files:     files,
		Types:     tpkg,
		TypesInfo: info,
	}, nil
}
