package ctxflow_test

import (
	"testing"

	"cdml/internal/analysis/analysistest"
	"cdml/internal/analysis/ctxflow"
)

func TestCtxFlow(t *testing.T) {
	analysistest.Run(t, "../testdata/src/ctxflow", ctxflow.Analyzer)
}
