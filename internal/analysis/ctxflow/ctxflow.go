// Package ctxflow verifies context discipline at lint time.
//
// Deadlines, cancellation, and trace propagation all ride on the
// context.Context that enters with a request or a deployment tick. A single
// context.Background() in the middle of that path silently severs all
// three — the classic failure being a handler that calls a convenience
// wrapper which re-roots the context, so server shutdown no longer cancels
// in-flight work and trace spans lose their parent.
//
// Three rules, all over the go/types call graph:
//
//  1. Inside a context-receiving function (a parameter of type
//     context.Context or *http.Request), calling context.Background() or
//     context.TODO() is flagged: the caller's context must be threaded.
//
//  2. Inside a context-receiving function, calling an in-module detaching
//     wrapper — a function with no context parameter whose body re-roots
//     via Background/TODO, discovered across the dependency closure — is
//     flagged too: call the Ctx-taking variant instead. This is the
//     cross-function rule that catches e.g. a handler calling Ingest
//     instead of IngestCtx.
//
//  3. Everywhere else (outside package main, which owns the process root
//     context), context.Background()/TODO() must sit inside a function
//     annotated
//
//     //cdml:detached <why>
//
//     — the documented inventory of places where detaching is the point:
//     queue-drain boundaries, background lifecycles, compatibility
//     wrappers. A reason is mandatory; a bare marker is itself flagged.
//
// Residual deliberate exceptions use `//lint:allow ctxflow: <why>`.
package ctxflow

import (
	"go/ast"
	"go/types"

	"cdml/internal/analysis"
)

// DetachedMarker documents a legitimate context detachment point:
// `//cdml:detached <why>`.
const DetachedMarker = "cdml:detached"

// Analyzer implements the check.
var Analyzer = &analysis.Analyzer{
	Name: "ctxflow",
	Doc: "flags context.Background()/TODO() on request/tick paths and calls " +
		"from context-receiving functions into wrappers that re-root the " +
		"context; detachment points must carry //cdml:detached <why>",
	Run: run,
}

func run(pass *analysis.Pass) error {
	wrappers := collectWrappers(pass)
	isMain := pass.Pkg.Name() == "main"
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			reason, detached := analysis.MarkerArg(fn.Doc, DetachedMarker)
			if detached && reason == "" {
				pass.Reportf(fn.Pos(), "//cdml:detached needs a reason: //cdml:detached <why>")
			}
			if detached {
				// The documented detachment point: re-rooting inside is the
				// function's purpose.
				continue
			}
			hasCtx := receivesCtx(pass.TypesInfo, fn)
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if callee := rootCall(pass.TypesInfo, call); callee != "" {
					switch {
					case hasCtx:
						pass.Reportf(call.Pos(),
							"context.%s() inside context-receiving %s severs cancellation and tracing; thread the caller's ctx",
							callee, fn.Name.Name)
					case !isMain:
						pass.Reportf(call.Pos(),
							"context.%s() outside a //cdml:detached function; annotate the detachment point with a reason or thread a ctx",
							callee)
					}
					return true
				}
				if !hasCtx {
					return true
				}
				if w := calleeFunc(pass.TypesInfo, call); w != nil && wrappers[w] {
					pass.Reportf(call.Pos(),
						"%s re-roots the context internally (it wraps context.Background); call its ctx-threading variant from %s",
						w.Name(), fn.Name.Name)
				}
				return true
			})
		}
	}
	return nil
}

// collectWrappers finds every in-module function — this package plus the
// whole dependency closure — that takes no context yet re-roots one in its
// body. Calls to these from context-receiving code silently detach.
func collectWrappers(pass *analysis.Pass) map[*types.Func]bool {
	wrappers := make(map[*types.Func]bool)
	scan := func(files []*ast.File, info *types.Info) {
		for _, f := range files {
			for _, decl := range f.Decls {
				fn, ok := decl.(*ast.FuncDecl)
				if !ok || fn.Body == nil || receivesCtx(info, fn) {
					continue
				}
				reroots := false
				ast.Inspect(fn.Body, func(n ast.Node) bool {
					if call, ok := n.(*ast.CallExpr); ok && rootCall(info, call) != "" {
						reroots = true
						return false
					}
					return !reroots
				})
				if !reroots {
					continue
				}
				if obj, ok := info.Defs[fn.Name].(*types.Func); ok {
					wrappers[obj] = true
				}
			}
		}
	}
	scan(pass.Files, pass.TypesInfo)
	for _, dep := range pass.Deps {
		scan(dep.Files, dep.TypesInfo)
	}
	return wrappers
}

// rootCall reports whether call is context.Background() or context.TODO(),
// returning the function name ("" otherwise).
func rootCall(info *types.Info, call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	obj, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || obj.Pkg() == nil || obj.Pkg().Path() != "context" {
		return ""
	}
	if name := obj.Name(); name == "Background" || name == "TODO" {
		return name
	}
	return ""
}

// calleeFunc resolves a call's static callee, or nil for dynamic calls.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	obj, _ := info.Uses[id].(*types.Func)
	return obj
}

// receivesCtx reports whether fn declares a parameter that carries a
// request-scoped context: context.Context itself or *http.Request (whose
// Context() is the handler-path source of truth).
func receivesCtx(info *types.Info, fn *ast.FuncDecl) bool {
	if fn.Type.Params == nil {
		return false
	}
	for _, field := range fn.Type.Params.List {
		t := info.TypeOf(field.Type)
		if t == nil {
			continue
		}
		if isNamed(t, "context", "Context") {
			return true
		}
		if p, ok := t.Underlying().(*types.Pointer); ok && isNamed(p.Elem(), "net/http", "Request") {
			return true
		}
	}
	return false
}

// isNamed reports whether t is the named type pkgPath.name.
func isNamed(t types.Type, pkgPath, name string) bool {
	named, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == pkgPath && obj.Name() == name
}
