// Package engine is the execution-engine substrate (paper §4.5). The
// paper's prototype delegates batch work (proactive training over sampled
// chunks) and stream work (online learning, prediction answering) to Apache
// Spark; here a worker pool over chunk partitions plays that role. The
// engine is deliberately generic: it executes closures over index ranges
// and knows nothing about pipelines or models.
package engine

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"cdml/internal/obs"
)

// Engine executes tasks over partitions with bounded parallelism.
type Engine struct {
	workers int
	tasks   atomic.Int64
	// forEachLatency, when set via Instrument, records the wall-clock
	// duration of every ForEach call. Held as an atomic pointer so an
	// uninstrumented engine pays one nil-check per ForEach (not per task).
	forEachLatency atomic.Pointer[obs.Histogram]
}

// New returns an engine with the given parallelism; workers ≤ 0 selects
// runtime.NumCPU().
func New(workers int) *Engine {
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	return &Engine{workers: workers}
}

// Workers returns the engine parallelism.
func (e *Engine) Workers() int { return e.workers }

// TasksExecuted returns the number of tasks run so far (diagnostics).
func (e *Engine) TasksExecuted() int64 { return e.tasks.Load() }

// Instrument registers the engine's task counter, worker gauge, and
// per-ForEach latency histogram with reg. Safe to call more than once with
// the same registry (get-or-create semantics) and concurrently with running
// work.
func (e *Engine) Instrument(reg *obs.Registry) {
	reg.CounterFunc("cdml_engine_tasks_total",
		"Partition tasks executed by the execution engine.",
		func() float64 { return float64(e.tasks.Load()) })
	reg.GaugeFunc("cdml_engine_workers",
		"Execution engine parallelism.",
		func() float64 { return float64(e.workers) })
	e.forEachLatency.Store(reg.Histogram("cdml_engine_foreach_seconds",
		"Wall-clock duration of engine ForEach calls."))
}

// ForEach runs fn(i) for every i in [0, n) across the worker pool and
// returns the combined errors. All tasks run even if some fail. It is a
// thin wrapper over ForEachCtx with a background context.
//
//cdml:detached convenience wrapper for context-free callers (tests, offline harness); request paths use ForEachCtx
func (e *Engine) ForEach(n int, fn func(i int) error) error {
	return e.ForEachCtx(context.Background(), n, fn)
}

// ForEachCtx runs fn(i) for every i in [0, n) across the worker pool.
// Cancelling ctx stops the dispatch of new tasks; tasks already running
// finish normally, and the context's error is joined into the result.
//
// Task errors are collected per index and joined in index order, so the
// combined error is a deterministic function of the task outcomes —
// independent of goroutine completion order across runs.
//
//cdml:deterministic
func (e *Engine) ForEachCtx(ctx context.Context, n int, fn func(i int) error) error {
	if n <= 0 {
		return ctx.Err()
	}
	if h := e.forEachLatency.Load(); h != nil {
		start := time.Now() //lint:allow determinism: latency instrumentation feeds the histogram, never task results
		defer func() { h.Observe(time.Since(start)) }()
	}
	workers := e.workers
	if workers > n {
		workers = n
	}
	var (
		next atomic.Int64
		wg   sync.WaitGroup
	)
	errs := make([]error, n)
	done := ctx.Done()
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				e.tasks.Add(1)
				if err := fn(i); err != nil {
					errs[i] = fmt.Errorf("engine: task %d: %w", i, err)
				}
			}
		}()
	}
	wg.Wait()
	// errors.Join drops nil entries, so passing the full slice preserves
	// index order without an explicit filter pass.
	if err := ctx.Err(); err != nil {
		return errors.Join(errors.Join(errs...), err)
	}
	return errors.Join(errs...)
}

// Map runs fn over [0, n) in parallel, collecting results in order.
//
//cdml:detached convenience wrapper for context-free callers (tests, offline harness); request paths use MapCtx
func Map[T any](e *Engine, n int, fn func(i int) (T, error)) ([]T, error) {
	return MapCtx(context.Background(), e, n, fn)
}

// MapCtx is Map with cancellation: no new tasks are dispatched once ctx is
// cancelled, and a nil slice plus the context error are returned. Results
// land at their task index, so the output order is deterministic whatever
// the goroutine schedule.
//
//cdml:deterministic
func MapCtx[T any](ctx context.Context, e *Engine, n int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := e.ForEachCtx(ctx, n, func(i int) error {
		v, err := fn(i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Union concatenates the per-partition slices produced by fn — the
// analogue of the prototype's context.union over sampled chunk RDDs
// (paper §5.4). Partitions are produced in parallel; the result preserves
// partition order.
//
//cdml:detached convenience wrapper for context-free callers (tests, offline harness); request paths use UnionCtx
func Union[T any](e *Engine, n int, fn func(i int) ([]T, error)) ([]T, error) {
	return UnionCtx(context.Background(), e, n, fn)
}

// UnionCtx is Union with cancellation, mirroring MapCtx.
//
//cdml:deterministic
func UnionCtx[T any](ctx context.Context, e *Engine, n int, fn func(i int) ([]T, error)) ([]T, error) {
	parts, err := MapCtx(ctx, e, n, fn)
	if err != nil {
		return nil, err
	}
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	out := make([]T, 0, total)
	for _, p := range parts {
		out = append(out, p...)
	}
	return out, nil
}
