package engine

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestNewDefaults(t *testing.T) {
	e := New(0)
	if e.Workers() != runtime.NumCPU() {
		t.Fatalf("workers = %d", e.Workers())
	}
	if New(3).Workers() != 3 {
		t.Fatal("explicit workers ignored")
	}
}

func TestForEachRunsAllTasks(t *testing.T) {
	e := New(4)
	var hits [100]atomic.Int32
	if err := e.ForEach(100, func(i int) error {
		hits[i].Add(1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i := range hits {
		if hits[i].Load() != 1 {
			t.Fatalf("task %d ran %d times", i, hits[i].Load())
		}
	}
	if e.TasksExecuted() != 100 {
		t.Fatalf("tasks executed = %d", e.TasksExecuted())
	}
}

func TestForEachEmptyAndSingle(t *testing.T) {
	e := New(4)
	if err := e.ForEach(0, func(int) error { return nil }); err != nil {
		t.Fatal(err)
	}
	ran := false
	if err := e.ForEach(1, func(int) error { ran = true; return nil }); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Fatal("single task did not run")
	}
}

func TestForEachCollectsAllErrors(t *testing.T) {
	e := New(2)
	var completed atomic.Int32
	err := e.ForEach(10, func(i int) error {
		completed.Add(1)
		if i%2 == 0 {
			return fmt.Errorf("fail-%d", i)
		}
		return nil
	})
	if err == nil {
		t.Fatal("expected error")
	}
	if completed.Load() != 10 {
		t.Fatalf("failed tasks aborted the batch: %d completed", completed.Load())
	}
}

func TestMapPreservesOrder(t *testing.T) {
	e := New(8)
	out, err := Map(e, 50, func(i int) (int, error) { return i * i, nil })
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
}

func TestMapError(t *testing.T) {
	e := New(2)
	_, err := Map(e, 5, func(i int) (int, error) {
		if i == 3 {
			return 0, fmt.Errorf("boom")
		}
		return i, nil
	})
	if err == nil {
		t.Fatal("expected error")
	}
}

func TestUnionConcatenatesInOrder(t *testing.T) {
	e := New(4)
	out, err := Union(e, 3, func(i int) ([]int, error) {
		part := make([]int, i+1)
		for j := range part {
			part[j] = i*10 + j
		}
		return part, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 10, 11, 20, 21, 22}
	if len(out) != len(want) {
		t.Fatalf("union = %v", out)
	}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("union = %v, want %v", out, want)
		}
	}
}

func TestUnionError(t *testing.T) {
	e := New(2)
	if _, err := Union(e, 2, func(i int) ([]int, error) { return nil, fmt.Errorf("x") }); err == nil {
		t.Fatal("expected error")
	}
}

func TestForEachErrorOrderDeterministic(t *testing.T) {
	// Errors must join in task-index order regardless of which goroutine
	// finishes first, so seeded runs produce byte-identical error text at
	// any worker count.
	want := "engine: task 1: fail-1\nengine: task 4: fail-4\nengine: task 7: fail-7"
	for _, workers := range []int{1, 3, 8} {
		e := New(workers)
		for trial := 0; trial < 20; trial++ {
			err := e.ForEach(9, func(i int) error {
				if i%3 == 1 {
					return fmt.Errorf("fail-%d", i)
				}
				return nil
			})
			if err == nil {
				t.Fatal("expected error")
			}
			if err.Error() != want {
				t.Fatalf("workers=%d trial %d: error order %q, want %q", workers, trial, err.Error(), want)
			}
		}
	}
}

func TestForEachCtxCancellationStopsDispatch(t *testing.T) {
	e := New(2)
	ctx, cancel := context.WithCancel(context.Background())
	var started atomic.Int32
	release := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		done <- e.ForEachCtx(ctx, 1000, func(i int) error {
			started.Add(1)
			<-release
			return nil
		})
	}()
	// Wait for the workers to occupy their first tasks, then cancel: no
	// further tasks may be claimed once the running ones unblock.
	for started.Load() < 2 {
		runtime.Gosched()
	}
	cancel()
	close(release)
	err := <-done
	if err == nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n := started.Load(); n >= 1000 {
		t.Fatalf("cancellation did not stop dispatch: %d tasks started", n)
	}
}

func TestForEachCtxCompletesWithoutCancellation(t *testing.T) {
	e := New(4)
	var n atomic.Int32
	if err := e.ForEachCtx(context.Background(), 50, func(int) error { n.Add(1); return nil }); err != nil {
		t.Fatal(err)
	}
	if n.Load() != 50 {
		t.Fatalf("ran %d tasks", n.Load())
	}
}

func TestMapCtxCancelled(t *testing.T) {
	e := New(2)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := MapCtx(ctx, e, 10, func(i int) (int, error) { return i, nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestForEachMoreWorkersThanTasks(t *testing.T) {
	e := New(64)
	var n atomic.Int32
	if err := e.ForEach(3, func(int) error { n.Add(1); return nil }); err != nil {
		t.Fatal(err)
	}
	if n.Load() != 3 {
		t.Fatalf("ran %d tasks", n.Load())
	}
}
