package pipeline

import (
	"bytes"
	"fmt"
	"strconv"
	"testing"

	"cdml/internal/data"
)

// csvParser is a tiny test parser: "label,x" per line.
type csvParser struct{}

func (csvParser) Name() string { return "csv-test" }

func (csvParser) Parse(records [][]byte) (*data.Frame, error) {
	var labels, xs []float64
	for _, rec := range records {
		parts := bytes.Split(rec, []byte(","))
		if len(parts) != 2 {
			continue // drop malformed
		}
		y, err1 := strconv.ParseFloat(string(parts[0]), 64)
		x, err2 := strconv.ParseFloat(string(parts[1]), 64)
		if err1 != nil || err2 != nil {
			continue
		}
		labels = append(labels, y)
		xs = append(xs, x)
	}
	f := data.NewFrame(len(labels))
	f.SetFloat("label", labels)
	f.SetFloat("x", xs)
	return f, nil
}

func testPipeline() *Pipeline {
	return New(csvParser{},
		NewStandardScaler([]string{"x"}),
		NewAssembler([]string{"x"}, nil, "features"),
	)
}

func recs(lines ...string) [][]byte {
	out := make([][]byte, len(lines))
	for i, l := range lines {
		out[i] = []byte(l)
	}
	return out
}

func TestProcessOnlineProducesInstances(t *testing.T) {
	p := testPipeline()
	ins, err := p.ProcessOnline(recs("1,2", "0,4"))
	if err != nil {
		t.Fatal(err)
	}
	if len(ins) != 2 {
		t.Fatalf("instances = %d", len(ins))
	}
	if ins[0].Y != 1 || ins[1].Y != 0 {
		t.Fatal("labels wrong")
	}
	// mean 3, std 1 → scaled to ∓1
	if ins[0].X.At(0) != -1 || ins[1].X.At(0) != 1 {
		t.Fatalf("features wrong: %v %v", ins[0].X, ins[1].X)
	}
}

func TestProcessServeDoesNotUpdateStats(t *testing.T) {
	p := testPipeline()
	if _, err := p.ProcessOnline(recs("1,0", "1,10")); err != nil { // mean 5
		t.Fatal(err)
	}
	scaler := p.Components[0].(*StandardScaler)
	before := scaler.Mean("x")
	if _, err := p.ProcessServe(recs("1,100", "1,100")); err != nil {
		t.Fatal(err)
	}
	if scaler.Mean("x") != before {
		t.Fatal("serve path updated statistics")
	}
}

func TestTrainServeConsistency(t *testing.T) {
	// The same record must transform identically on both paths once stats
	// are frozen (paper §4.3's inconsistency guarantee).
	p := testPipeline()
	if _, err := p.ProcessOnline(recs("1,0", "1,10")); err != nil {
		t.Fatal(err)
	}
	a, err := p.ProcessServe(recs("1,7"))
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.ProcessServe(recs("1,7"))
	if err != nil {
		t.Fatal(err)
	}
	if a[0].X.At(0) != b[0].X.At(0) {
		t.Fatal("serve path not deterministic")
	}
}

func TestMalformedRecordsDropped(t *testing.T) {
	p := testPipeline()
	ins, err := p.ProcessOnline(recs("1,2", "garbage", "0,3,extra", "0,4"))
	if err != nil {
		t.Fatal(err)
	}
	if len(ins) != 2 {
		t.Fatalf("instances = %d, want 2", len(ins))
	}
}

func TestInstancesMissingColumnsError(t *testing.T) {
	p := New(csvParser{}) // no assembler → no features col
	if _, err := p.ProcessOnline(recs("1,2")); err == nil {
		t.Fatal("expected error without feature column")
	}
	p2 := New(csvParser{}, NewAssembler([]string{"x"}, nil, "features"))
	p2.LabelCol = "nonexistent"
	if _, err := p2.ProcessOnline(recs("1,2")); err == nil {
		t.Fatal("expected error without label column")
	}
}

type failingComponent struct{ onUpdate bool }

func (f failingComponent) Name() string        { return "failing" }
func (f failingComponent) Stateless() bool     { return false }
func (f failingComponent) Snapshot() Component { return f }
func (f failingComponent) Update(*data.Frame) error {
	if f.onUpdate {
		return fmt.Errorf("boom")
	}
	return nil
}
func (f failingComponent) Transform(fr *data.Frame) (*data.Frame, error) {
	if !f.onUpdate {
		return nil, fmt.Errorf("boom")
	}
	return fr, nil
}

func TestComponentErrorsPropagate(t *testing.T) {
	p := New(csvParser{}, failingComponent{onUpdate: true})
	if _, err := p.ProcessOnline(recs("1,2")); err == nil {
		t.Fatal("update error swallowed")
	}
	p2 := New(csvParser{}, failingComponent{onUpdate: false})
	if _, err := p2.ProcessServe(recs("1,2")); err == nil {
		t.Fatal("transform error swallowed")
	}
}

func TestStatefulCount(t *testing.T) {
	p := testPipeline() // scaler (stateful) + assembler (stateless)
	if got := p.StatefulCount(); got != 1 {
		t.Fatalf("StatefulCount = %d, want 1", got)
	}
}

func TestFullPipelineWithImputerAndOneHot(t *testing.T) {
	// A realistic mixed pipeline: impute, scale, one-hot, assemble.
	parser := mixedParser{}
	p := New(parser,
		NewImputer([]string{"x"}, []string{"color"}),
		NewStandardScaler([]string{"x"}),
		NewOneHotEncoder("color", "colorVec", 4),
		NewAssembler([]string{"x"}, []string{"colorVec"}, "features"),
	)
	ins, err := p.ProcessOnline(recs("1|2|red", "0|4|blue", "1|?|"))
	if err != nil {
		t.Fatal(err)
	}
	if len(ins) != 3 {
		t.Fatalf("instances = %d", len(ins))
	}
	if ins[0].X.Dim() != 5 {
		t.Fatalf("feature dim = %d, want 5", ins[0].X.Dim())
	}
	// Third row: x imputed with mean(2,4)=3 then scaled; color imputed with
	// the mode (red or blue, both count 1, first-seen red wins).
	if ins[2].X.At(1) != 1 { // red is ordinal 0 → index 1 after the float
		t.Fatalf("imputed one-hot wrong: %v", ins[2].X)
	}
}

// mixedParser parses "label|x|color" with "?" meaning missing x.
type mixedParser struct{}

func (mixedParser) Name() string { return "mixed-test" }

func (mixedParser) Parse(records [][]byte) (*data.Frame, error) {
	var labels, xs []float64
	var colors []string
	for _, rec := range records {
		parts := bytes.Split(rec, []byte("|"))
		if len(parts) != 3 {
			continue
		}
		y, err := strconv.ParseFloat(string(parts[0]), 64)
		if err != nil {
			continue
		}
		x := data.Missing
		if string(parts[1]) != "?" {
			if v, err := strconv.ParseFloat(string(parts[1]), 64); err == nil {
				x = v
			}
		}
		labels = append(labels, y)
		xs = append(xs, x)
		colors = append(colors, string(parts[2]))
	}
	f := data.NewFrame(len(labels))
	f.SetFloat("label", labels)
	f.SetFloat("x", xs)
	f.SetString("color", colors)
	return f, nil
}
