package pipeline

import (
	"strings"

	"cdml/internal/data"
)

// Tokenizer normalizes a raw text column into a whitespace-separated token
// column the feature hasher can consume: lower-casing, splitting on
// non-alphanumeric runs, and optionally appending character n-grams (a
// standard trick for URL-like strings, where substrings such as ".ru" or
// "login" carry signal). It is stateless.
type Tokenizer struct {
	// Col is the raw text column; Out receives the token string.
	Col, Out string
	// NGram, when ≥ 2, additionally emits character n-grams of that size
	// per token.
	NGram int
	// MinTokenLen drops tokens shorter than this (default 1 keeps all).
	MinTokenLen int
}

// NewTokenizer returns a tokenizer without n-grams.
func NewTokenizer(col, out string) *Tokenizer {
	return &Tokenizer{Col: col, Out: out, MinTokenLen: 1}
}

// Name implements Component.
func (t *Tokenizer) Name() string { return "tokenizer" }

// Stateless implements Component.
func (t *Tokenizer) Stateless() bool { return true }

// Update implements Component (no statistics).
func (t *Tokenizer) Update(f *data.Frame) error { return nil }

// Snapshot implements Component: stateless, shares itself.
func (t *Tokenizer) Snapshot() Component { return t }

func isAlnum(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= '0' && c <= '9'
}

// Tokenize converts one raw string into the token list.
func (t *Tokenizer) Tokenize(s string) []string {
	s = strings.ToLower(s)
	minLen := t.MinTokenLen
	if minLen < 1 {
		minLen = 1
	}
	var toks []string
	start := -1
	emit := func(end int) {
		if start < 0 {
			return
		}
		tok := s[start:end]
		start = -1
		if len(tok) < minLen {
			return
		}
		toks = append(toks, tok)
		if t.NGram >= 2 && len(tok) > t.NGram {
			for i := 0; i+t.NGram <= len(tok); i++ {
				toks = append(toks, tok[i:i+t.NGram])
			}
		}
	}
	for i := 0; i < len(s); i++ {
		if isAlnum(s[i]) {
			if start < 0 {
				start = i
			}
		} else {
			emit(i)
		}
	}
	emit(len(s))
	return toks
}

// Transform implements Component.
func (t *Tokenizer) Transform(f *data.Frame) (*data.Frame, error) {
	src := f.String(t.Col)
	out := make([]string, len(src))
	for i, s := range src {
		out[i] = strings.Join(t.Tokenize(s), " ")
	}
	return f.ShallowCopy().SetString(t.Out, out), nil
}
