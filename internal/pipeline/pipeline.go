// Package pipeline implements the machine learning pipeline framework the
// platform deploys alongside models (paper §4.3).
//
// Every component implements the paper's two-method contract: Update folds
// a batch into the component's incremental statistics (the online statistics
// computation of §3.1) and Transform applies the component using the current
// statistics. The pipeline manager invokes Update+Transform on the online
// training path and Transform alone on the prediction and
// re-materialization paths, which guarantees train/serve consistency — the
// same transformations are applied to training data and prediction queries.
//
// Components whose statistics cannot be maintained incrementally (exact
// percentiles, PCA) are unsupported by design, mirroring the paper's
// supported-component contract.
package pipeline

import (
	"fmt"

	"cdml/internal/data"
)

// Component is one stage of a deployed pipeline.
type Component interface {
	// Name identifies the component for diagnostics.
	Name() string
	// Update folds the batch into the component's incremental statistics.
	// Stateless components return nil without inspecting the frame.
	Update(f *data.Frame) error
	// Transform applies the component, returning a new frame. The input
	// frame is never mutated.
	Transform(f *data.Frame) (*data.Frame, error)
	// Stateless reports whether the component carries no statistics.
	Stateless() bool
	// Snapshot returns a component whose Transform is safe to run
	// concurrently with further Update calls on the receiver: stateless
	// components return themselves (their Transform reads only
	// construction-time configuration), while stateful components return a
	// deep copy of their incremental statistics. The returned component is
	// immutable by contract — the serving path never calls Update on it —
	// which is what lets a published deployment snapshot answer prediction
	// queries without any lock.
	Snapshot() Component
}

// Parser converts raw records into the initial frame of a pipeline.
type Parser interface {
	// Name identifies the parser.
	Name() string
	// Parse converts raw records into a frame. Unparseable records are
	// dropped (a production stream always contains a few), so the output
	// may have fewer rows than len(records).
	Parse(records [][]byte) (*data.Frame, error)
}

// Pipeline is a parser followed by an ordered list of components. After the
// last component the frame must contain FeatureCol (a vector column) and
// LabelCol (a float column); Instances extracts them.
type Pipeline struct {
	// Parser converts raw records to the initial frame.
	Parser Parser
	// Components run in order after parsing.
	Components []Component
	// FeatureCol names the final feature-vector column (default "features").
	FeatureCol string
	// LabelCol names the label column (default "label").
	LabelCol string
}

// New returns a pipeline with default column names.
func New(p Parser, comps ...Component) *Pipeline {
	return &Pipeline{Parser: p, Components: comps, FeatureCol: "features", LabelCol: "label"}
}

// Snapshot returns a transform-only copy of the pipeline whose ProcessServe
// and Transform paths are safe to run concurrently with further
// UpdateTransform calls on the receiver. Stateless components are shared;
// stateful components contribute a deep copy of their statistics (see
// Component.Snapshot). The Parser is shared: parsers are stateless by
// convention (Parse builds a fresh frame per call), which keeps Snapshot
// cheap enough to run at every deployment tick.
func (p *Pipeline) Snapshot() *Pipeline {
	comps := make([]Component, len(p.Components))
	for i, c := range p.Components {
		comps[i] = c.Snapshot()
	}
	return &Pipeline{Parser: p.Parser, Components: comps, FeatureCol: p.FeatureCol, LabelCol: p.LabelCol}
}

// Transform runs the transform-only path over a parsed frame (prediction
// queries and dynamic re-materialization).
func (p *Pipeline) Transform(f *data.Frame) (*data.Frame, error) {
	var err error
	for _, c := range p.Components {
		if f, err = c.Transform(f); err != nil {
			return nil, fmt.Errorf("pipeline: component %s: %w", c.Name(), err)
		}
	}
	return f, nil
}

// UpdateTransform runs the online path over a parsed frame: every component
// first updates its statistics from its input, then transforms it for the
// next component.
func (p *Pipeline) UpdateTransform(f *data.Frame) (*data.Frame, error) {
	var err error
	for _, c := range p.Components {
		if err = c.Update(f); err != nil {
			return nil, fmt.Errorf("pipeline: updating component %s: %w", c.Name(), err)
		}
		if f, err = c.Transform(f); err != nil {
			return nil, fmt.Errorf("pipeline: component %s: %w", c.Name(), err)
		}
	}
	return f, nil
}

// ProcessOnline parses raw records and runs the online Update+Transform
// path, returning preprocessed instances.
func (p *Pipeline) ProcessOnline(records [][]byte) ([]data.Instance, error) {
	f, err := p.Parser.Parse(records)
	if err != nil {
		return nil, fmt.Errorf("pipeline: parser %s: %w", p.Parser.Name(), err)
	}
	f, err = p.UpdateTransform(f)
	if err != nil {
		return nil, err
	}
	return p.Instances(f)
}

// ProcessServe parses raw records and runs the transform-only path. It is
// used for prediction queries and for re-materializing evicted feature
// chunks.
func (p *Pipeline) ProcessServe(records [][]byte) ([]data.Instance, error) {
	f, err := p.Parser.Parse(records)
	if err != nil {
		return nil, fmt.Errorf("pipeline: parser %s: %w", p.Parser.Name(), err)
	}
	f, err = p.Transform(f)
	if err != nil {
		return nil, err
	}
	return p.Instances(f)
}

// Instances extracts (feature, label) pairs from a fully transformed frame.
func (p *Pipeline) Instances(f *data.Frame) ([]data.Instance, error) {
	if !f.Has(p.FeatureCol) {
		return nil, fmt.Errorf("pipeline: transformed frame lacks feature column %q (have %v)", p.FeatureCol, f.Columns())
	}
	if !f.Has(p.LabelCol) {
		return nil, fmt.Errorf("pipeline: transformed frame lacks label column %q (have %v)", p.LabelCol, f.Columns())
	}
	xs := f.Vec(p.FeatureCol)
	ys := f.Float(p.LabelCol)
	out := make([]data.Instance, f.Rows())
	for i := range out {
		out[i] = data.Instance{X: xs[i], Y: ys[i]}
	}
	return out, nil
}

// StatefulCount returns how many components carry statistics; the
// NoOptimization baseline recomputes these on every sample.
func (p *Pipeline) StatefulCount() int {
	n := 0
	for _, c := range p.Components {
		if !c.Stateless() {
			n++
		}
	}
	return n
}
