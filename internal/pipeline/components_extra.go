package pipeline

import (
	"fmt"
	"math"

	"cdml/internal/data"
	"cdml/internal/linalg"
	"cdml/internal/stats"
)

// Normalizer rescales each row of a vector column to unit L2 norm. It is
// stateless (each row normalizes independently), making it one of the
// "trivially supported" components of paper §3.1.
type Normalizer struct {
	// Col is the vector column to normalize; the result replaces it.
	Col string
}

// NewNormalizer returns a unit-norm row normalizer.
func NewNormalizer(col string) *Normalizer { return &Normalizer{Col: col} }

// Name implements Component.
func (n *Normalizer) Name() string { return "normalizer" }

// Stateless implements Component.
func (n *Normalizer) Stateless() bool { return true }

// Update implements Component (no statistics).
func (n *Normalizer) Update(f *data.Frame) error { return nil }

// Snapshot implements Component: stateless, shares itself.
func (n *Normalizer) Snapshot() Component { return n }

// Transform implements Component. Zero rows stay zero.
func (n *Normalizer) Transform(f *data.Frame) (*data.Frame, error) {
	src := f.Vec(n.Col)
	out := make([]linalg.Vector, len(src))
	for i, v := range src {
		norm := v.L2()
		//lint:allow floateq: exact-zero norm guard: only the all-zeros vector cannot be normalized
		if norm == 0 {
			out[i] = v
			continue
		}
		switch t := v.(type) {
		case *linalg.Sparse:
			c := t.Clone().(*linalg.Sparse)
			c.Scale(1 / norm)
			out[i] = c
		default:
			c := make(linalg.Dense, v.Dim())
			for j := 0; j < v.Dim(); j++ {
				c[j] = v.At(j) / norm
			}
			out[i] = c
		}
	}
	return f.ShallowCopy().SetVec(n.Col, out), nil
}

// Binarizer thresholds float columns to {0, 1}: values strictly above the
// threshold map to 1. Stateless.
type Binarizer struct {
	// Cols are the numeric columns to binarize in place.
	Cols []string
	// Threshold is the cut point.
	Threshold float64
}

// NewBinarizer returns a binarizer with the given threshold.
func NewBinarizer(cols []string, threshold float64) *Binarizer {
	return &Binarizer{Cols: cols, Threshold: threshold}
}

// Name implements Component.
func (b *Binarizer) Name() string { return "binarizer" }

// Stateless implements Component.
func (b *Binarizer) Stateless() bool { return true }

// Update implements Component (no statistics).
func (b *Binarizer) Update(f *data.Frame) error { return nil }

// Snapshot implements Component: stateless, shares itself.
func (b *Binarizer) Snapshot() Component { return b }

// Transform implements Component. Missing values binarize to 0.
func (b *Binarizer) Transform(f *data.Frame) (*data.Frame, error) {
	g := f.ShallowCopy()
	for _, col := range b.Cols {
		src := f.Float(col)
		out := make([]float64, len(src))
		for i, v := range src {
			if !data.IsMissingFloat(v) && v > b.Threshold {
				out[i] = 1
			}
		}
		g.SetFloat(col, out)
	}
	return g, nil
}

// Interaction appends products of column pairs — a simple stateless
// feature-extraction component of the "combining existing features" kind
// the paper's size analysis covers (§3.2.1: output linear in input size).
type Interaction struct {
	// Pairs lists the column pairs to multiply.
	Pairs [][2]string
}

// NewInteraction returns an interaction generator. Each pair (a, b)
// produces the column "a*b".
func NewInteraction(pairs [][2]string) *Interaction {
	return &Interaction{Pairs: pairs}
}

// Name implements Component.
func (x *Interaction) Name() string { return "interaction" }

// Stateless implements Component.
func (x *Interaction) Stateless() bool { return true }

// Update implements Component (no statistics).
func (x *Interaction) Update(f *data.Frame) error { return nil }

// Snapshot implements Component: stateless, shares itself.
func (x *Interaction) Snapshot() Component { return x }

// Transform implements Component. A product with a missing factor is
// missing.
func (x *Interaction) Transform(f *data.Frame) (*data.Frame, error) {
	g := f.ShallowCopy()
	for _, p := range x.Pairs {
		a, b := f.Float(p[0]), f.Float(p[1])
		out := make([]float64, len(a))
		for i := range out {
			if data.IsMissingFloat(a[i]) || data.IsMissingFloat(b[i]) {
				out[i] = data.Missing
			} else {
				out[i] = a[i] * b[i]
			}
		}
		g.SetFloat(fmt.Sprintf("%s*%s", p[0], p[1]), out)
	}
	return g, nil
}

// StdClipper winsorizes float columns to mean ± K standard deviations,
// using incrementally maintained moments. It is the platform-compatible
// replacement for percentile-based clipping, whose exact statistics are
// non-incremental and therefore unsupported (paper §3.1).
type StdClipper struct {
	// Cols are the numeric columns to clip in place.
	Cols []string
	// K is the clip width in standard deviations.
	K float64

	moments map[string]*stats.Welford
}

// NewStdClipper returns a clipper at mean ± k·std.
func NewStdClipper(cols []string, k float64) *StdClipper {
	if k <= 0 {
		panic(fmt.Sprintf("pipeline: clip width must be positive, got %v", k))
	}
	c := &StdClipper{Cols: cols, K: k, moments: make(map[string]*stats.Welford)}
	for _, col := range cols {
		c.moments[col] = &stats.Welford{}
	}
	return c
}

// Name implements Component.
func (c *StdClipper) Name() string { return "std-clipper" }

// Stateless implements Component.
func (c *StdClipper) Stateless() bool { return false }

// Update implements Component.
func (c *StdClipper) Update(f *data.Frame) error {
	for _, col := range c.Cols {
		w := c.moments[col]
		for _, v := range f.Float(col) {
			if !data.IsMissingFloat(v) {
				w.Observe(v)
			}
		}
	}
	return nil
}

// Snapshot implements Component: deep-copies the running moments.
func (c *StdClipper) Snapshot() Component {
	n := &StdClipper{Cols: c.Cols, K: c.K, moments: make(map[string]*stats.Welford, len(c.moments))}
	for k, w := range c.moments {
		cw := *w
		n.moments[k] = &cw
	}
	return n
}

// Transform implements Component. With no observations yet, values pass
// through unchanged.
func (c *StdClipper) Transform(f *data.Frame) (*data.Frame, error) {
	g := f.ShallowCopy()
	for _, col := range c.Cols {
		w := c.moments[col]
		src := f.Float(col)
		out := make([]float64, len(src))
		if w.Count() == 0 {
			copy(out, src)
			g.SetFloat(col, out)
			continue
		}
		lo := w.Mean() - c.K*w.Std()
		hi := w.Mean() + c.K*w.Std()
		for i, v := range src {
			out[i] = math.Min(hi, math.Max(lo, v))
			if data.IsMissingFloat(v) {
				out[i] = data.Missing
			}
		}
		g.SetFloat(col, out)
	}
	return g, nil
}
