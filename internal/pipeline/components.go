package pipeline

import (
	"fmt"
	"hash/fnv"
	"math"

	"cdml/internal/data"
	"cdml/internal/linalg"
	"cdml/internal/stats"
)

// Imputer replaces missing values using incrementally maintained statistics:
// the running mean for float columns and the most frequent value for string
// columns (paper §3.1 lists imputation among the incrementally supported
// components).
type Imputer struct {
	// FloatCols are the numeric columns to impute with the running mean.
	FloatCols []string
	// StringCols are the categorical columns to impute with the mode.
	StringCols []string

	means map[string]*stats.Welford
	modes map[string]*stats.Categorical
}

// NewImputer returns an imputer over the given columns.
func NewImputer(floatCols, stringCols []string) *Imputer {
	im := &Imputer{
		FloatCols:  floatCols,
		StringCols: stringCols,
		means:      make(map[string]*stats.Welford),
		modes:      make(map[string]*stats.Categorical),
	}
	for _, c := range floatCols {
		im.means[c] = &stats.Welford{}
	}
	for _, c := range stringCols {
		im.modes[c] = stats.NewCategorical()
	}
	return im
}

// Name implements Component.
func (im *Imputer) Name() string { return "imputer" }

// Stateless implements Component.
func (im *Imputer) Stateless() bool { return false }

// Update implements Component: non-missing cells feed the statistics.
func (im *Imputer) Update(f *data.Frame) error {
	for _, c := range im.FloatCols {
		w := im.means[c]
		for _, v := range f.Float(c) {
			if !data.IsMissingFloat(v) {
				w.Observe(v)
			}
		}
	}
	for _, c := range im.StringCols {
		m := im.modes[c]
		for _, v := range f.String(c) {
			if v != "" {
				m.Observe(v)
			}
		}
	}
	return nil
}

// Snapshot implements Component: deep-copies the running means and modes.
func (im *Imputer) Snapshot() Component {
	c := &Imputer{
		FloatCols:  im.FloatCols,
		StringCols: im.StringCols,
		means:      make(map[string]*stats.Welford, len(im.means)),
		modes:      make(map[string]*stats.Categorical, len(im.modes)),
	}
	for k, w := range im.means {
		cw := *w
		c.means[k] = &cw
	}
	for k, m := range im.modes {
		c.modes[k] = m.Clone()
	}
	return c
}

// Transform implements Component.
func (im *Imputer) Transform(f *data.Frame) (*data.Frame, error) {
	g := f.ShallowCopy()
	for _, c := range im.FloatCols {
		src := f.Float(c)
		fill := im.means[c].Mean()
		out := make([]float64, len(src))
		for i, v := range src {
			if data.IsMissingFloat(v) {
				out[i] = fill
			} else {
				out[i] = v
			}
		}
		g.SetFloat(c, out)
	}
	for _, c := range im.StringCols {
		src := f.String(c)
		fill, _ := im.modes[c].MostFrequent()
		out := make([]string, len(src))
		for i, v := range src {
			if v == "" {
				out[i] = fill
			} else {
				out[i] = v
			}
		}
		g.SetString(c, out)
	}
	return g, nil
}

// StandardScaler standardizes float columns to zero mean and unit variance
// using incrementally maintained moments. Columns with zero variance map to
// zero.
type StandardScaler struct {
	// Cols are the numeric columns to scale.
	Cols []string

	moments map[string]*stats.Welford
}

// NewStandardScaler returns a scaler over the given columns.
func NewStandardScaler(cols []string) *StandardScaler {
	s := &StandardScaler{Cols: cols, moments: make(map[string]*stats.Welford)}
	for _, c := range cols {
		s.moments[c] = &stats.Welford{}
	}
	return s
}

// Name implements Component.
func (s *StandardScaler) Name() string { return "standard-scaler" }

// Stateless implements Component.
func (s *StandardScaler) Stateless() bool { return false }

// Update implements Component.
func (s *StandardScaler) Update(f *data.Frame) error {
	for _, c := range s.Cols {
		w := s.moments[c]
		for _, v := range f.Float(c) {
			if !data.IsMissingFloat(v) {
				w.Observe(v)
			}
		}
	}
	return nil
}

// Snapshot implements Component: deep-copies the running moments.
func (s *StandardScaler) Snapshot() Component {
	c := &StandardScaler{Cols: s.Cols, moments: make(map[string]*stats.Welford, len(s.moments))}
	for k, w := range s.moments {
		cw := *w
		c.moments[k] = &cw
	}
	return c
}

// Transform implements Component.
func (s *StandardScaler) Transform(f *data.Frame) (*data.Frame, error) {
	g := f.ShallowCopy()
	for _, c := range s.Cols {
		w := s.moments[c]
		mean, std := w.Mean(), w.Std()
		src := f.Float(c)
		out := make([]float64, len(src))
		for i, v := range src {
			if std > 0 {
				out[i] = (v - mean) / std
			}
		}
		g.SetFloat(c, out)
	}
	return g, nil
}

// Mean exposes the running mean of a scaled column (for tests and
// diagnostics).
func (s *StandardScaler) Mean(col string) float64 { return s.moments[col].Mean() }

// Std exposes the running standard deviation of a scaled column.
func (s *StandardScaler) Std(col string) float64 { return s.moments[col].Std() }

// MinMaxScaler rescales float columns to [0, 1] using incrementally
// maintained minima and maxima.
type MinMaxScaler struct {
	// Cols are the numeric columns to scale.
	Cols []string

	min map[string]float64
	max map[string]float64
}

// NewMinMaxScaler returns a min-max scaler over the given columns.
func NewMinMaxScaler(cols []string) *MinMaxScaler {
	s := &MinMaxScaler{Cols: cols, min: make(map[string]float64), max: make(map[string]float64)}
	for _, c := range cols {
		s.min[c] = math.Inf(1)
		s.max[c] = math.Inf(-1)
	}
	return s
}

// Name implements Component.
func (s *MinMaxScaler) Name() string { return "minmax-scaler" }

// Stateless implements Component.
func (s *MinMaxScaler) Stateless() bool { return false }

// Update implements Component.
func (s *MinMaxScaler) Update(f *data.Frame) error {
	for _, c := range s.Cols {
		for _, v := range f.Float(c) {
			if data.IsMissingFloat(v) {
				continue
			}
			if v < s.min[c] {
				s.min[c] = v
			}
			if v > s.max[c] {
				s.max[c] = v
			}
		}
	}
	return nil
}

// Snapshot implements Component: deep-copies the running minima and maxima.
func (s *MinMaxScaler) Snapshot() Component {
	c := &MinMaxScaler{Cols: s.Cols, min: make(map[string]float64, len(s.min)), max: make(map[string]float64, len(s.max))}
	for k, v := range s.min {
		c.min[k] = v
	}
	for k, v := range s.max {
		c.max[k] = v
	}
	return c
}

// Transform implements Component. Values outside the observed range clamp to
// [0, 1]; a constant column maps to 0.
func (s *MinMaxScaler) Transform(f *data.Frame) (*data.Frame, error) {
	g := f.ShallowCopy()
	for _, c := range s.Cols {
		lo, hi := s.min[c], s.max[c]
		src := f.Float(c)
		out := make([]float64, len(src))
		for i, v := range src {
			if hi > lo {
				x := (v - lo) / (hi - lo)
				out[i] = math.Min(1, math.Max(0, x))
			}
		}
		g.SetFloat(c, out)
	}
	return g, nil
}

// OneHotEncoder expands a categorical string column into a sparse indicator
// vector. Its statistic is the incrementally updatable value→ordinal hash
// table of paper §3.1. The output dimension is fixed at construction so the
// downstream model dimension never changes mid-deployment; categories beyond
// Size wrap around via modulo (in practice Size is chosen above the expected
// cardinality).
type OneHotEncoder struct {
	// Col is the categorical column to encode.
	Col string
	// Out is the name of the produced vector column.
	Out string
	// Size is the fixed output dimensionality.
	Size int

	domain *stats.Categorical
}

// NewOneHotEncoder returns a one-hot encoder producing a size-dimensional
// indicator column named out.
func NewOneHotEncoder(col, out string, size int) *OneHotEncoder {
	if size <= 0 {
		panic(fmt.Sprintf("pipeline: one-hot size must be positive, got %d", size))
	}
	return &OneHotEncoder{Col: col, Out: out, Size: size, domain: stats.NewCategorical()}
}

// Name implements Component.
func (o *OneHotEncoder) Name() string { return "one-hot" }

// Stateless implements Component.
func (o *OneHotEncoder) Stateless() bool { return false }

// Update implements Component.
func (o *OneHotEncoder) Update(f *data.Frame) error {
	for _, v := range f.String(o.Col) {
		if v != "" {
			o.domain.Observe(v)
		}
	}
	return nil
}

// Snapshot implements Component: deep-copies the value→ordinal table.
func (o *OneHotEncoder) Snapshot() Component {
	return &OneHotEncoder{Col: o.Col, Out: o.Out, Size: o.Size, domain: o.domain.Clone()}
}

// Transform implements Component. Unseen or missing values encode as the
// all-zero vector.
func (o *OneHotEncoder) Transform(f *data.Frame) (*data.Frame, error) {
	src := f.String(o.Col)
	out := make([]linalg.Vector, len(src))
	for i, v := range src {
		if ord, ok := o.domain.Ordinal(v); ok {
			out[i] = linalg.NewSparse(o.Size, []int32{int32(ord % o.Size)}, []float64{1})
		} else {
			out[i] = linalg.NewSparse(o.Size, nil, nil)
		}
	}
	return f.ShallowCopy().SetVec(o.Out, out), nil
}

// Cardinality exposes the number of distinct categories observed.
func (o *OneHotEncoder) Cardinality() int { return o.domain.Cardinality() }

// FeatureHasher hashes string tokens and numeric columns into a fixed-size
// sparse feature vector (the hashing trick). It is stateless: the hash
// function needs no statistics, which is why the paper's URL pipeline can
// apply it to an unbounded, growing token vocabulary. Token occurrences
// accumulate counts; numeric columns contribute their value at the hash of
// the column name.
type FeatureHasher struct {
	// TokenCols are string columns of whitespace-separated tokens.
	TokenCols []string
	// NumCols are numeric columns folded in by column-name hash.
	NumCols []string
	// Out is the produced vector column.
	Out string
	// Size is the number of hash buckets (the feature dimensionality).
	Size int
}

// NewFeatureHasher returns a hasher into size buckets.
func NewFeatureHasher(tokenCols, numCols []string, out string, size int) *FeatureHasher {
	if size <= 0 {
		panic(fmt.Sprintf("pipeline: hasher size must be positive, got %d", size))
	}
	return &FeatureHasher{TokenCols: tokenCols, NumCols: numCols, Out: out, Size: size}
}

// Name implements Component.
func (h *FeatureHasher) Name() string { return "feature-hasher" }

// Stateless implements Component.
func (h *FeatureHasher) Stateless() bool { return true }

// Update implements Component (no statistics).
func (h *FeatureHasher) Update(f *data.Frame) error { return nil }

// Snapshot implements Component: stateless, shares itself.
func (h *FeatureHasher) Snapshot() Component { return h }

func (h *FeatureHasher) bucket(s string) int32 {
	hh := fnv.New32a()
	hh.Write([]byte(s))
	return int32(hh.Sum32() % uint32(h.Size))
}

// Transform implements Component.
func (h *FeatureHasher) Transform(f *data.Frame) (*data.Frame, error) {
	n := f.Rows()
	out := make([]linalg.Vector, n)
	numSrcs := make([][]float64, len(h.NumCols))
	numBuckets := make([]int32, len(h.NumCols))
	for k, c := range h.NumCols {
		numSrcs[k] = f.Float(c)
		numBuckets[k] = h.bucket("num:" + c)
	}
	tokSrcs := make([][]string, len(h.TokenCols))
	for k, c := range h.TokenCols {
		tokSrcs[k] = f.String(c)
	}
	for i := 0; i < n; i++ {
		var idx []int32
		var val []float64
		for k := range h.NumCols {
			v := numSrcs[k][i]
			//lint:allow floateq: sparse encoding stores only exactly-non-zero entries
			if !data.IsMissingFloat(v) && v != 0 {
				idx = append(idx, numBuckets[k])
				val = append(val, v)
			}
		}
		for k := range h.TokenCols {
			for _, tok := range fields(tokSrcs[k][i]) {
				idx = append(idx, h.bucket(tok))
				val = append(val, 1)
			}
		}
		out[i] = linalg.NewSparse(h.Size, idx, val)
	}
	return f.ShallowCopy().SetVec(h.Out, out), nil
}

// fields splits on single spaces without allocating a strings.Fields pass
// for the common empty case.
func fields(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	start := -1
	for i := 0; i < len(s); i++ {
		if s[i] == ' ' {
			if start >= 0 {
				out = append(out, s[start:i])
				start = -1
			}
		} else if start < 0 {
			start = i
		}
	}
	if start >= 0 {
		out = append(out, s[start:])
	}
	return out
}

// Filter drops rows failing a predicate. It is the anomaly-detector shape of
// the paper's Taxi pipeline (trips longer than 22 hours, shorter than 10
// seconds, or with zero distance are removed). Filters are stateless.
type Filter struct {
	// What names the filter for diagnostics (e.g. "anomaly-detector").
	What string
	// Keep returns true for rows that survive. It receives the frame and
	// the row index.
	Keep func(f *data.Frame, i int) bool
}

// NewFilter returns a row filter.
func NewFilter(what string, keep func(f *data.Frame, i int) bool) *Filter {
	return &Filter{What: what, Keep: keep}
}

// Name implements Component.
func (fl *Filter) Name() string { return fl.What }

// Stateless implements Component.
func (fl *Filter) Stateless() bool { return true }

// Update implements Component (no statistics).
func (fl *Filter) Update(f *data.Frame) error { return nil }

// Snapshot implements Component: stateless, shares itself.
func (fl *Filter) Snapshot() Component { return fl }

// Transform implements Component.
func (fl *Filter) Transform(f *data.Frame) (*data.Frame, error) {
	keep := make([]bool, f.Rows())
	for i := range keep {
		keep[i] = fl.Keep(f, i)
	}
	return f.Select(keep), nil
}

// Mapper applies a user-defined stateless row transformation that appends
// or replaces float columns. It is the extension point for custom feature
// extraction (paper §3.1 notes user-defined components may also plug into
// the online statistics machinery; stateful custom components implement
// Component directly).
type Mapper struct {
	// What names the mapper.
	What string
	// Outs are the float columns the mapper produces.
	Outs []string
	// Fn computes the output values for row i.
	Fn func(f *data.Frame, i int, out []float64)
}

// NewMapper returns a stateless row mapper producing the given columns.
func NewMapper(what string, outs []string, fn func(f *data.Frame, i int, out []float64)) *Mapper {
	return &Mapper{What: what, Outs: outs, Fn: fn}
}

// Name implements Component.
func (m *Mapper) Name() string { return m.What }

// Stateless implements Component.
func (m *Mapper) Stateless() bool { return true }

// Update implements Component (no statistics).
func (m *Mapper) Update(f *data.Frame) error { return nil }

// Snapshot implements Component: stateless, shares itself.
func (m *Mapper) Snapshot() Component { return m }

// Transform implements Component.
func (m *Mapper) Transform(f *data.Frame) (*data.Frame, error) {
	n := f.Rows()
	cols := make([][]float64, len(m.Outs))
	for k := range cols {
		cols[k] = make([]float64, n)
	}
	row := make([]float64, len(m.Outs))
	for i := 0; i < n; i++ {
		m.Fn(f, i, row)
		for k := range cols {
			cols[k][i] = row[k]
		}
	}
	g := f.ShallowCopy()
	for k, name := range m.Outs {
		g.SetFloat(name, cols[k])
	}
	return g, nil
}

// Assembler concatenates float columns and vector columns into a single
// feature vector column. The output is sparse if any input vector column is
// sparse, else dense.
type Assembler struct {
	// FloatCols contribute one coordinate each, in order.
	FloatCols []string
	// VecCols contribute their full dimensionality each, in order.
	VecCols []string
	// Out is the produced feature column (typically "features").
	Out string
}

// NewAssembler returns an assembler producing the out column.
func NewAssembler(floatCols, vecCols []string, out string) *Assembler {
	return &Assembler{FloatCols: floatCols, VecCols: vecCols, Out: out}
}

// Name implements Component.
func (a *Assembler) Name() string { return "assembler" }

// Stateless implements Component.
func (a *Assembler) Stateless() bool { return true }

// Update implements Component (no statistics).
func (a *Assembler) Update(f *data.Frame) error { return nil }

// Snapshot implements Component: stateless, shares itself.
func (a *Assembler) Snapshot() Component { return a }

// Transform implements Component.
func (a *Assembler) Transform(f *data.Frame) (*data.Frame, error) {
	n := f.Rows()
	floats := make([][]float64, len(a.FloatCols))
	for k, c := range a.FloatCols {
		floats[k] = f.Float(c)
	}
	vecs := make([][]linalg.Vector, len(a.VecCols))
	vecDims := make([]int, len(a.VecCols))
	for k, c := range a.VecCols {
		vecs[k] = f.Vec(c)
		if n > 0 {
			vecDims[k] = vecs[k][0].Dim()
		}
	}
	totalDim := len(a.FloatCols)
	sparse := false
	for k := range vecDims {
		totalDim += vecDims[k]
		if n > 0 {
			if _, ok := vecs[k][0].(*linalg.Sparse); ok {
				sparse = true
			}
		}
	}
	out := make([]linalg.Vector, n)
	for i := 0; i < n; i++ {
		if sparse {
			var idx []int32
			var val []float64
			for k := range floats {
				//lint:allow floateq: sparse encoding stores only exactly-non-zero entries
				if v := floats[k][i]; v != 0 && !data.IsMissingFloat(v) {
					idx = append(idx, int32(k))
					val = append(val, v)
				}
			}
			off := len(a.FloatCols)
			for k := range vecs {
				v := vecs[k][i]
				if v.Dim() != vecDims[k] {
					return nil, fmt.Errorf("pipeline: assembler: vector column %q dim %d varies from %d", a.VecCols[k], v.Dim(), vecDims[k])
				}
				switch t := v.(type) {
				case *linalg.Sparse:
					for j, ix := range t.Idx {
						idx = append(idx, int32(off)+ix)
						val = append(val, t.Val[j])
					}
				default:
					for j := 0; j < v.Dim(); j++ {
						//lint:allow floateq: sparse encoding stores only exactly-non-zero entries
						if x := v.At(j); x != 0 {
							idx = append(idx, int32(off+j))
							val = append(val, x)
						}
					}
				}
				off += vecDims[k]
			}
			out[i] = linalg.NewSparse(totalDim, idx, val)
		} else {
			d := make(linalg.Dense, 0, totalDim)
			for k := range floats {
				v := floats[k][i]
				if data.IsMissingFloat(v) {
					v = 0
				}
				d = append(d, v)
			}
			for k := range vecs {
				v := vecs[k][i]
				if v.Dim() != vecDims[k] {
					return nil, fmt.Errorf("pipeline: assembler: vector column %q dim %d varies from %d", a.VecCols[k], v.Dim(), vecDims[k])
				}
				for j := 0; j < v.Dim(); j++ {
					d = append(d, v.At(j))
				}
			}
			out[i] = d
		}
	}
	return f.ShallowCopy().SetVec(a.Out, out), nil
}

// OutputDim returns the assembled dimensionality given the per-column vector
// dimensions; callers size their models with it.
func (a *Assembler) OutputDim(vecDims map[string]int) int {
	d := len(a.FloatCols)
	for _, c := range a.VecCols {
		d += vecDims[c]
	}
	return d
}
