package pipeline

import (
	"testing"

	"cdml/internal/data"
)

func xFrame(xs ...float64) *data.Frame {
	f := data.NewFrame(len(xs))
	f.SetFloat("x", xs)
	return f
}

func colorFrame(vals ...string) *data.Frame {
	f := data.NewFrame(len(vals))
	f.SetString("color", vals)
	return f
}

// TestSnapshotStatelessSharesInstance: stateless components have no
// statistics to copy, so Snapshot must return the receiver itself.
func TestSnapshotStatelessSharesInstance(t *testing.T) {
	comps := []Component{
		NewAssembler([]string{"x"}, nil, "features"),
		NewFeatureHasher([]string{"x"}, nil, "features", 16),
	}
	for _, c := range comps {
		if !c.Stateless() {
			t.Fatalf("%s: expected stateless", c.Name())
		}
		if c.Snapshot() != c {
			t.Errorf("%s: stateless Snapshot did not return the receiver", c.Name())
		}
	}
}

// TestSnapshotImmutableUnderUpdate: a stateful component's snapshot must
// keep transforming with the statistics frozen at snapshot time, no matter
// how the receiver's statistics evolve afterwards.
func TestSnapshotImmutableUnderUpdate(t *testing.T) {
	s := NewStandardScaler([]string{"x"})
	if err := s.Update(xFrame(2, 4)); err != nil { // mean 3, std 1
		t.Fatal(err)
	}
	snap := s.Snapshot().(*StandardScaler)
	if snap == s {
		t.Fatal("stateful Snapshot returned the receiver")
	}

	// Shift the receiver's statistics dramatically.
	if err := s.Update(xFrame(100, 200, 300)); err != nil {
		t.Fatal(err)
	}

	out, err := snap.Transform(xFrame(3))
	if err != nil {
		t.Fatal(err)
	}
	if got := out.Float("x")[0]; got != 0 {
		t.Fatalf("snapshot transform of the old mean = %v, want 0 (frozen stats)", got)
	}
	out2, err := s.Transform(xFrame(3))
	if err != nil {
		t.Fatal(err)
	}
	if out2.Float("x")[0] == 0 {
		t.Fatal("receiver stats did not move; test exercises nothing")
	}
}

// TestPipelineSnapshotServesFrozenState: Pipeline.Snapshot must transform
// records exactly as the source pipeline did at snapshot time, and stay
// bit-identical while the source keeps learning.
func TestPipelineSnapshotServesFrozenState(t *testing.T) {
	p := testPipeline()
	if _, err := p.ProcessOnline(recs("1,2", "0,4", "1,6")); err != nil {
		t.Fatal(err)
	}

	snap := p.Snapshot()
	query := recs("1,3", "0,5")
	want, err := p.ProcessServe(query)
	if err != nil {
		t.Fatal(err)
	}

	// Keep training the source; the snapshot must not notice.
	if _, err := p.ProcessOnline(recs("1,1000", "0,2000")); err != nil {
		t.Fatal(err)
	}

	got, err := snap.ProcessServe(query)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("instances = %d, want %d", len(got), len(want))
	}
	for i := range got {
		for j := 0; j < got[i].X.Dim(); j++ {
			if got[i].X.At(j) != want[i].X.At(j) {
				t.Fatalf("instance %d feature %d = %v, want %v (snapshot drifted)",
					i, j, got[i].X.At(j), want[i].X.At(j))
			}
		}
	}
	// The drifted source now transforms differently from the snapshot.
	moved, err := p.ProcessServe(query)
	if err != nil {
		t.Fatal(err)
	}
	if moved[0].X.At(0) == got[0].X.At(0) {
		t.Fatal("source stats did not move; test exercises nothing")
	}
}

// TestSnapshotDeepCopiesCategoricalState: OneHotEncoder's snapshot must
// own its value→ordinal table — categories learned by the receiver after
// the snapshot must not leak into the frozen encoding.
func TestSnapshotDeepCopiesCategoricalState(t *testing.T) {
	enc := NewOneHotEncoder("color", "color_oh", 8)
	if err := enc.Update(colorFrame("red", "blue")); err != nil {
		t.Fatal(err)
	}
	snap := enc.Snapshot().(*OneHotEncoder)

	if err := enc.Update(colorFrame("green", "purple", "yellow")); err != nil {
		t.Fatal(err)
	}

	if got := snap.Cardinality(); got != 2 {
		t.Fatalf("snapshot cardinality = %d, want 2 (receiver's later categories leaked in)", got)
	}
	if got := enc.Cardinality(); got != 5 {
		t.Fatalf("receiver cardinality = %d, want 5", got)
	}
	// The snapshot encodes known values and zero-encodes unseen ones.
	out, err := snap.Transform(colorFrame("red", "green"))
	if err != nil {
		t.Fatal(err)
	}
	vecs := out.Vec("color_oh")
	if vecs[0].NNZ() != 1 {
		t.Fatal("known category not encoded")
	}
	if vecs[1].NNZ() != 0 {
		t.Fatal("category unseen at snapshot time must zero-encode")
	}
}
