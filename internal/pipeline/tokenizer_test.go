package pipeline

import (
	"strings"
	"testing"

	"cdml/internal/data"
)

func TestTokenizerBasics(t *testing.T) {
	tok := NewTokenizer("raw", "tokens")
	got := tok.Tokenize("HTTP://Login.Example.com/path?id=42")
	want := []string{"http", "login", "example", "com", "path", "id", "42"}
	if len(got) != len(want) {
		t.Fatalf("tokens = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("tokens = %v, want %v", got, want)
		}
	}
}

func TestTokenizerMinLen(t *testing.T) {
	tok := NewTokenizer("raw", "tokens")
	tok.MinTokenLen = 3
	got := tok.Tokenize("a bb ccc dddd")
	if len(got) != 2 || got[0] != "ccc" || got[1] != "dddd" {
		t.Fatalf("tokens = %v", got)
	}
}

func TestTokenizerNGrams(t *testing.T) {
	tok := NewTokenizer("raw", "tokens")
	tok.NGram = 3
	got := tok.Tokenize("evil")
	// "evil" + its 3-grams "evi", "vil".
	want := []string{"evil", "evi", "vil"}
	if strings.Join(got, " ") != strings.Join(want, " ") {
		t.Fatalf("tokens = %v, want %v", got, want)
	}
	// Tokens not longer than the n-gram size emit no grams.
	if got := tok.Tokenize("abc"); len(got) != 1 {
		t.Fatalf("short token grams: %v", got)
	}
}

func TestTokenizerEmptyAndPunctuation(t *testing.T) {
	tok := NewTokenizer("raw", "tokens")
	if got := tok.Tokenize(""); len(got) != 0 {
		t.Fatalf("empty input tokens: %v", got)
	}
	if got := tok.Tokenize("...!!!"); len(got) != 0 {
		t.Fatalf("punctuation-only tokens: %v", got)
	}
}

func TestTokenizerTransform(t *testing.T) {
	f := data.NewFrame(2)
	f.SetString("raw", []string{"Hello, World", ""})
	tok := NewTokenizer("raw", "tokens")
	if !tok.Stateless() {
		t.Fatal("tokenizer must be stateless")
	}
	g, err := tok.Transform(f)
	if err != nil {
		t.Fatal(err)
	}
	if g.String("tokens")[0] != "hello world" {
		t.Fatalf("joined tokens = %q", g.String("tokens")[0])
	}
	if g.String("tokens")[1] != "" {
		t.Fatal("empty row should stay empty")
	}
	if f.String("raw")[0] != "Hello, World" {
		t.Fatal("input mutated")
	}
}

func TestTokenizerFeedsHasher(t *testing.T) {
	// Tokenizer → hasher end to end over a raw text column.
	f := data.NewFrame(1)
	f.SetString("url", []string{"http://evil-login.example.ru/steal"})
	f.SetFloat("label", []float64{1})
	p := &Pipeline{
		Components: []Component{
			NewTokenizer("url", "tokens"),
			NewFeatureHasher([]string{"tokens"}, nil, "features", 1<<10),
		},
		FeatureCol: "features",
		LabelCol:   "label",
	}
	out, err := p.UpdateTransform(f)
	if err != nil {
		t.Fatal(err)
	}
	ins, err := p.Instances(out)
	if err != nil {
		t.Fatal(err)
	}
	if ins[0].X.NNZ() == 0 {
		t.Fatal("hashed URL has no features")
	}
}
