package pipeline

import (
	"math"
	"testing"

	"cdml/internal/data"
	"cdml/internal/linalg"
)

func floatFrame(vals ...float64) *data.Frame {
	f := data.NewFrame(len(vals))
	f.SetFloat("x", vals)
	return f
}

func TestImputerFloatMean(t *testing.T) {
	im := NewImputer([]string{"x"}, nil)
	f := floatFrame(1, 3, data.Missing)
	if err := im.Update(f); err != nil {
		t.Fatal(err)
	}
	g, err := im.Transform(f)
	if err != nil {
		t.Fatal(err)
	}
	got := g.Float("x")
	if got[2] != 2 { // mean of 1,3
		t.Fatalf("imputed = %v, want 2", got[2])
	}
	if got[0] != 1 || got[1] != 3 {
		t.Fatal("non-missing values changed")
	}
	// input frame untouched
	if !data.IsMissingFloat(f.Float("x")[2]) {
		t.Fatal("Transform mutated input")
	}
}

func TestImputerStringMode(t *testing.T) {
	im := NewImputer(nil, []string{"s"})
	f := data.NewFrame(4)
	f.SetString("s", []string{"a", "b", "b", ""})
	_ = im.Update(f)
	g, _ := im.Transform(f)
	if g.String("s")[3] != "b" {
		t.Fatalf("imputed = %q, want b", g.String("s")[3])
	}
}

func TestImputerStatefulFlag(t *testing.T) {
	if NewImputer(nil, nil).Stateless() {
		t.Fatal("imputer should be stateful")
	}
}

func TestImputerAccumulatesAcrossBatches(t *testing.T) {
	im := NewImputer([]string{"x"}, nil)
	_ = im.Update(floatFrame(0, 0))
	_ = im.Update(floatFrame(6))
	g, _ := im.Transform(floatFrame(data.Missing))
	if got := g.Float("x")[0]; got != 2 {
		t.Fatalf("running mean = %v, want 2", got)
	}
}

func TestStandardScaler(t *testing.T) {
	s := NewStandardScaler([]string{"x"})
	f := floatFrame(2, 4, 4, 4, 5, 5, 7, 9) // mean 5, std 2
	_ = s.Update(f)
	g, _ := s.Transform(f)
	got := g.Float("x")
	if math.Abs(got[0]+1.5) > 1e-9 { // (2-5)/2
		t.Fatalf("scaled[0] = %v, want -1.5", got[0])
	}
	if s.Mean("x") != 5 || math.Abs(s.Std("x")-2) > 1e-12 {
		t.Fatalf("stats: mean=%v std=%v", s.Mean("x"), s.Std("x"))
	}
}

func TestStandardScalerZeroVariance(t *testing.T) {
	s := NewStandardScaler([]string{"x"})
	f := floatFrame(3, 3, 3)
	_ = s.Update(f)
	g, _ := s.Transform(f)
	for _, v := range g.Float("x") {
		if v != 0 {
			t.Fatalf("constant column should scale to 0, got %v", v)
		}
	}
}

func TestStandardScalerSkipsMissing(t *testing.T) {
	s := NewStandardScaler([]string{"x"})
	_ = s.Update(floatFrame(1, 3, data.Missing))
	if s.Mean("x") != 2 {
		t.Fatalf("missing values contaminated mean: %v", s.Mean("x"))
	}
}

func TestMinMaxScaler(t *testing.T) {
	s := NewMinMaxScaler([]string{"x"})
	_ = s.Update(floatFrame(0, 10))
	g, _ := s.Transform(floatFrame(5, -5, 20))
	got := g.Float("x")
	if got[0] != 0.5 {
		t.Fatalf("scaled = %v, want 0.5", got[0])
	}
	if got[1] != 0 || got[2] != 1 {
		t.Fatalf("clamping wrong: %v", got)
	}
}

func TestMinMaxScalerConstantColumn(t *testing.T) {
	s := NewMinMaxScaler([]string{"x"})
	_ = s.Update(floatFrame(7, 7))
	g, _ := s.Transform(floatFrame(7))
	if g.Float("x")[0] != 0 {
		t.Fatal("constant column should scale to 0")
	}
}

func TestOneHotEncoder(t *testing.T) {
	o := NewOneHotEncoder("s", "v", 8)
	f := data.NewFrame(3)
	f.SetString("s", []string{"red", "green", "red"})
	_ = o.Update(f)
	g, _ := o.Transform(f)
	vs := g.Vec("v")
	if vs[0].Dim() != 8 {
		t.Fatalf("dim = %d", vs[0].Dim())
	}
	if vs[0].At(0) != 1 || vs[1].At(1) != 1 || vs[2].At(0) != 1 {
		t.Fatalf("one-hot positions wrong: %v %v %v", vs[0], vs[1], vs[2])
	}
	if o.Cardinality() != 2 {
		t.Fatalf("cardinality = %d", o.Cardinality())
	}
}

func TestOneHotUnseenIsZero(t *testing.T) {
	o := NewOneHotEncoder("s", "v", 4)
	train := data.NewFrame(1)
	train.SetString("s", []string{"a"})
	_ = o.Update(train)
	test := data.NewFrame(2)
	test.SetString("s", []string{"zzz", ""})
	g, _ := o.Transform(test)
	for _, v := range g.Vec("v") {
		if v.NNZ() != 0 {
			t.Fatalf("unseen value should encode to zero vector: %v", v)
		}
	}
}

func TestOneHotWrapsBeyondSize(t *testing.T) {
	o := NewOneHotEncoder("s", "v", 2)
	f := data.NewFrame(3)
	f.SetString("s", []string{"a", "b", "c"})
	_ = o.Update(f)
	g, _ := o.Transform(f)
	if g.Vec("v")[2].At(0) != 1 { // ordinal 2 % size 2 = 0
		t.Fatal("modulo wrap wrong")
	}
}

func TestOneHotBadSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewOneHotEncoder("s", "v", 0)
}

func TestFeatureHasherTokens(t *testing.T) {
	h := NewFeatureHasher([]string{"toks"}, nil, "v", 64)
	f := data.NewFrame(2)
	f.SetString("toks", []string{"foo bar foo", ""})
	g, err := h.Transform(f)
	if err != nil {
		t.Fatal(err)
	}
	vs := g.Vec("v")
	// "foo" appears twice → its bucket holds 2.
	var found bool
	s := vs[0].(*linalg.Sparse)
	for _, v := range s.Val {
		if v == 2 {
			found = true
		}
	}
	if !found {
		t.Fatalf("token counts not accumulated: %v", s)
	}
	if vs[1].NNZ() != 0 {
		t.Fatal("empty token row should be zero vector")
	}
}

func TestFeatureHasherNumeric(t *testing.T) {
	h := NewFeatureHasher(nil, []string{"a", "b"}, "v", 64)
	f := data.NewFrame(1)
	f.SetFloat("a", []float64{2.5})
	f.SetFloat("b", []float64{0}) // zero is dropped
	g, _ := h.Transform(f)
	v := g.Vec("v")[0]
	if v.NNZ() != 1 {
		t.Fatalf("NNZ = %d, want 1", v.NNZ())
	}
	sum := 0.0
	s := v.(*linalg.Sparse)
	for _, x := range s.Val {
		sum += x
	}
	if sum != 2.5 {
		t.Fatalf("hashed value = %v", sum)
	}
}

func TestFeatureHasherDeterministic(t *testing.T) {
	h := NewFeatureHasher([]string{"toks"}, nil, "v", 32)
	f := data.NewFrame(1)
	f.SetString("toks", []string{"alpha beta"})
	g1, _ := h.Transform(f)
	g2, _ := h.Transform(f)
	a := g1.Vec("v")[0].(*linalg.Sparse)
	b := g2.Vec("v")[0].(*linalg.Sparse)
	if len(a.Idx) != len(b.Idx) {
		t.Fatal("nondeterministic hashing")
	}
	for i := range a.Idx {
		if a.Idx[i] != b.Idx[i] || a.Val[i] != b.Val[i] {
			t.Fatal("nondeterministic hashing")
		}
	}
}

func TestFeatureHasherStatelessUpdateNoop(t *testing.T) {
	h := NewFeatureHasher(nil, nil, "v", 8)
	if !h.Stateless() {
		t.Fatal("hasher must be stateless")
	}
	if err := h.Update(nil); err != nil {
		t.Fatal(err)
	}
}

func TestFieldsHelper(t *testing.T) {
	cases := map[string][]string{
		"":            nil,
		"a":           {"a"},
		"a b":         {"a", "b"},
		"  a   b  ":   {"a", "b"},
		"one two one": {"one", "two", "one"},
	}
	for in, want := range cases {
		got := fields(in)
		if len(got) != len(want) {
			t.Fatalf("fields(%q) = %v, want %v", in, got, want)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("fields(%q) = %v, want %v", in, got, want)
			}
		}
	}
}

func TestFilterDropsRows(t *testing.T) {
	fl := NewFilter("anomaly", func(f *data.Frame, i int) bool {
		return f.Float("x")[i] >= 0
	})
	f := floatFrame(1, -2, 3)
	g, _ := fl.Transform(f)
	if g.Rows() != 2 {
		t.Fatalf("rows = %d", g.Rows())
	}
	if g.Float("x")[1] != 3 {
		t.Fatal("wrong rows kept")
	}
	if fl.Name() != "anomaly" || !fl.Stateless() {
		t.Fatal("metadata wrong")
	}
}

func TestMapperAddsColumns(t *testing.T) {
	m := NewMapper("doubler", []string{"x2", "x3"}, func(f *data.Frame, i int, out []float64) {
		v := f.Float("x")[i]
		out[0] = 2 * v
		out[1] = 3 * v
	})
	g, _ := m.Transform(floatFrame(1, 2))
	if g.Float("x2")[1] != 4 || g.Float("x3")[0] != 3 {
		t.Fatal("mapper output wrong")
	}
}

func TestAssemblerDense(t *testing.T) {
	a := NewAssembler([]string{"f1", "f2"}, nil, "features")
	f := data.NewFrame(2)
	f.SetFloat("f1", []float64{1, 2})
	f.SetFloat("f2", []float64{3, data.Missing})
	g, err := a.Transform(f)
	if err != nil {
		t.Fatal(err)
	}
	vs := g.Vec("features")
	if vs[0].Dim() != 2 || vs[0].At(0) != 1 || vs[0].At(1) != 3 {
		t.Fatalf("assembled = %v", vs[0])
	}
	if vs[1].At(1) != 0 {
		t.Fatal("missing should assemble as 0")
	}
}

func TestAssemblerSparseWithVecCols(t *testing.T) {
	a := NewAssembler([]string{"f"}, []string{"v"}, "features")
	f := data.NewFrame(1)
	f.SetFloat("f", []float64{2})
	f.SetVec("v", []linalg.Vector{linalg.NewSparse(4, []int32{1}, []float64{5})})
	g, err := a.Transform(f)
	if err != nil {
		t.Fatal(err)
	}
	v := g.Vec("features")[0]
	if v.Dim() != 5 {
		t.Fatalf("dim = %d, want 5", v.Dim())
	}
	if v.At(0) != 2 || v.At(2) != 5 {
		t.Fatalf("assembled sparse wrong: %v", v)
	}
	if _, ok := v.(*linalg.Sparse); !ok {
		t.Fatalf("expected sparse output, got %T", v)
	}
}

func TestAssemblerDenseVecCols(t *testing.T) {
	a := NewAssembler(nil, []string{"v"}, "features")
	f := data.NewFrame(1)
	f.SetVec("v", []linalg.Vector{linalg.Dense{7, 8}})
	g, _ := a.Transform(f)
	v := g.Vec("features")[0]
	if _, ok := v.(linalg.Dense); !ok {
		t.Fatalf("expected dense output, got %T", v)
	}
	if v.At(1) != 8 {
		t.Fatal("values wrong")
	}
}

func TestAssemblerVaryingDimErrors(t *testing.T) {
	a := NewAssembler(nil, []string{"v"}, "features")
	f := data.NewFrame(2)
	f.SetVec("v", []linalg.Vector{linalg.Dense{1}, linalg.Dense{1, 2}})
	if _, err := a.Transform(f); err == nil {
		t.Fatal("expected error on varying vector dims")
	}
}

func TestAssemblerOutputDim(t *testing.T) {
	a := NewAssembler([]string{"a", "b"}, []string{"v"}, "features")
	if got := a.OutputDim(map[string]int{"v": 10}); got != 12 {
		t.Fatalf("OutputDim = %d", got)
	}
}
