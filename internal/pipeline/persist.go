package pipeline

import (
	"bufio"
	"encoding/gob"
	"fmt"
	"io"
)

// Persistent is the optional interface stateful components implement to
// support deployment checkpoints: SaveState writes the component's
// incremental statistics and LoadState restores them. Stateless components
// need not implement it.
type Persistent interface {
	// SaveState serializes the component's statistics.
	SaveState(w io.Writer) error
	// LoadState restores statistics written by SaveState on a component
	// constructed with the same configuration.
	LoadState(r io.Reader) error
}

// SaveState implements Persistent for the imputer.
func (im *Imputer) SaveState(w io.Writer) error {
	enc := gob.NewEncoder(w)
	if err := enc.Encode(im.means); err != nil {
		return fmt.Errorf("pipeline: saving imputer means: %w", err)
	}
	if err := enc.Encode(im.modes); err != nil {
		return fmt.Errorf("pipeline: saving imputer modes: %w", err)
	}
	return nil
}

// LoadState implements Persistent for the imputer.
func (im *Imputer) LoadState(r io.Reader) error {
	dec := gob.NewDecoder(r)
	if err := dec.Decode(&im.means); err != nil {
		return fmt.Errorf("pipeline: loading imputer means: %w", err)
	}
	if err := dec.Decode(&im.modes); err != nil {
		return fmt.Errorf("pipeline: loading imputer modes: %w", err)
	}
	return nil
}

// SaveState implements Persistent for the standard scaler.
func (s *StandardScaler) SaveState(w io.Writer) error {
	if err := gob.NewEncoder(w).Encode(s.moments); err != nil {
		return fmt.Errorf("pipeline: saving scaler moments: %w", err)
	}
	return nil
}

// LoadState implements Persistent for the standard scaler.
func (s *StandardScaler) LoadState(r io.Reader) error {
	if err := gob.NewDecoder(r).Decode(&s.moments); err != nil {
		return fmt.Errorf("pipeline: loading scaler moments: %w", err)
	}
	return nil
}

// SaveState implements Persistent for the min-max scaler.
func (s *MinMaxScaler) SaveState(w io.Writer) error {
	enc := gob.NewEncoder(w)
	if err := enc.Encode(s.min); err != nil {
		return fmt.Errorf("pipeline: saving minmax minima: %w", err)
	}
	if err := enc.Encode(s.max); err != nil {
		return fmt.Errorf("pipeline: saving minmax maxima: %w", err)
	}
	return nil
}

// LoadState implements Persistent for the min-max scaler.
func (s *MinMaxScaler) LoadState(r io.Reader) error {
	dec := gob.NewDecoder(r)
	if err := dec.Decode(&s.min); err != nil {
		return fmt.Errorf("pipeline: loading minmax minima: %w", err)
	}
	if err := dec.Decode(&s.max); err != nil {
		return fmt.Errorf("pipeline: loading minmax maxima: %w", err)
	}
	return nil
}

// SaveState implements Persistent for the one-hot encoder.
func (o *OneHotEncoder) SaveState(w io.Writer) error {
	if err := gob.NewEncoder(w).Encode(o.domain); err != nil {
		return fmt.Errorf("pipeline: saving one-hot domain: %w", err)
	}
	return nil
}

// LoadState implements Persistent for the one-hot encoder.
func (o *OneHotEncoder) LoadState(r io.Reader) error {
	if err := gob.NewDecoder(r).Decode(&o.domain); err != nil {
		return fmt.Errorf("pipeline: loading one-hot domain: %w", err)
	}
	return nil
}

// SaveState implements Persistent for the std-clipper.
func (c *StdClipper) SaveState(w io.Writer) error {
	if err := gob.NewEncoder(w).Encode(c.moments); err != nil {
		return fmt.Errorf("pipeline: saving clipper moments: %w", err)
	}
	return nil
}

// LoadState implements Persistent for the std-clipper.
func (c *StdClipper) LoadState(r io.Reader) error {
	if err := gob.NewDecoder(r).Decode(&c.moments); err != nil {
		return fmt.Errorf("pipeline: loading clipper moments: %w", err)
	}
	return nil
}

// SaveState serializes the statistics of every stateful component of the
// pipeline, in order. Components that carry statistics but do not
// implement Persistent cause an error, so a checkpoint is never silently
// partial.
func (p *Pipeline) SaveState(w io.Writer) error {
	for _, c := range p.Components {
		if c.Stateless() {
			continue
		}
		pc, ok := c.(Persistent)
		if !ok {
			return fmt.Errorf("pipeline: stateful component %s does not support checkpointing", c.Name())
		}
		if err := pc.SaveState(w); err != nil {
			return err
		}
	}
	return nil
}

// LoadState restores statistics written by SaveState into an identically
// configured pipeline.
func (p *Pipeline) LoadState(r io.Reader) error {
	// Each component section is its own gob stream; a gob.Decoder over a
	// non-ByteReader source would buffer past its section and starve the
	// next one, so ensure byte-at-a-time reads.
	if _, ok := r.(io.ByteReader); !ok {
		r = bufio.NewReader(r)
	}
	for _, c := range p.Components {
		if c.Stateless() {
			continue
		}
		pc, ok := c.(Persistent)
		if !ok {
			return fmt.Errorf("pipeline: stateful component %s does not support checkpointing", c.Name())
		}
		if err := pc.LoadState(r); err != nil {
			return err
		}
	}
	return nil
}
