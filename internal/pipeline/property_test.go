package pipeline

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"cdml/internal/data"
)

// randomFrame builds a frame with a float column "x", a categorical column
// "c", and a label, with occasional missing values.
func randomFrame(r *rand.Rand, rows int) *data.Frame {
	xs := make([]float64, rows)
	cs := make([]string, rows)
	ys := make([]float64, rows)
	for i := 0; i < rows; i++ {
		if r.Float64() < 0.1 {
			xs[i] = data.Missing
		} else {
			xs[i] = r.NormFloat64() * 10
		}
		if r.Float64() < 0.1 {
			cs[i] = ""
		} else {
			cs[i] = fmt.Sprintf("cat%d", r.Intn(5))
		}
		ys[i] = float64(r.Intn(2))
	}
	f := data.NewFrame(rows)
	f.SetFloat("x", xs)
	f.SetString("c", cs)
	f.SetFloat("label", ys)
	return f
}

// snapshotFrame captures the observable contents of a frame.
func snapshotFrame(f *data.Frame) string {
	out := ""
	for _, col := range f.Columns() {
		switch f.KindOf(col) {
		case data.KindFloat:
			out += fmt.Sprintf("%s:%v;", col, f.Float(col))
		case data.KindString:
			out += fmt.Sprintf("%s:%v;", col, f.String(col))
		case data.KindVec:
			for _, v := range f.Vec(col) {
				out += v.(fmt.Stringer).String()
			}
		}
	}
	return out
}

// randomComponents builds a random stack of stateful and stateless
// components over the random frame's schema.
func randomComponents(r *rand.Rand) []Component {
	var comps []Component
	if r.Intn(2) == 0 {
		comps = append(comps, NewImputer([]string{"x"}, []string{"c"}))
	}
	switch r.Intn(3) {
	case 0:
		comps = append(comps, NewStandardScaler([]string{"x"}))
	case 1:
		comps = append(comps, NewMinMaxScaler([]string{"x"}))
	default:
		comps = append(comps, NewStdClipper([]string{"x"}, 2))
	}
	if r.Intn(2) == 0 {
		comps = append(comps, NewBinarizer([]string{"x"}, 0))
	}
	comps = append(comps, NewOneHotEncoder("c", "cv", 8))
	comps = append(comps, NewAssembler([]string{"x"}, []string{"cv"}, "features"))
	return comps
}

// Property: for any random pipeline and data, (1) Transform never mutates
// its input, (2) the serve path is deterministic, and (3) Update+Transform
// leaves the pipeline in a state where serve output matches the last
// transform of the same data (train/serve consistency with frozen stats).
func TestQuickPipelinePurity(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p := &Pipeline{Components: randomComponents(r), FeatureCol: "features", LabelCol: "label"}

		// Train statistics on some batches.
		for b := 0; b < 3; b++ {
			train := randomFrame(r, 1+r.Intn(20))
			if _, err := p.UpdateTransform(train); err != nil {
				return false
			}
		}
		query := randomFrame(r, 1+r.Intn(10))
		before := snapshotFrame(query)

		out1, err := p.Transform(query)
		if err != nil {
			return false
		}
		if snapshotFrame(query) != before {
			return false // input mutated
		}
		out2, err := p.Transform(query)
		if err != nil {
			return false
		}
		if snapshotFrame(out1) != snapshotFrame(out2) {
			return false // nondeterministic serve path
		}
		ins1, err := p.Instances(out1)
		if err != nil {
			return false
		}
		ins2, err := p.Instances(out2)
		if err != nil {
			return false
		}
		for i := range ins1 {
			if ins1[i].Y != ins2[i].Y {
				return false
			}
			for k := 0; k < ins1[i].X.Dim(); k++ {
				if ins1[i].X.At(k) != ins2[i].X.At(k) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// Property: checkpoint round-trips preserve every stateful component's
// transform behaviour.
func TestQuickPipelineCheckpointRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		comps := randomComponents(r)
		p := &Pipeline{Components: comps, FeatureCol: "features", LabelCol: "label"}
		for b := 0; b < 3; b++ {
			if _, err := p.UpdateTransform(randomFrame(r, 10)); err != nil {
				return false
			}
		}
		// Rebuild an identically configured pipeline and restore state.
		r2 := rand.New(rand.NewSource(seed))
		comps2 := randomComponents(r2)
		p2 := &Pipeline{Components: comps2, FeatureCol: "features", LabelCol: "label"}

		var buf bytes.Buffer
		if err := p.SaveState(&buf); err != nil {
			return false
		}
		if err := p2.LoadState(&buf); err != nil {
			return false
		}
		query := randomFrame(r, 8)
		a, err := p.Transform(query)
		if err != nil {
			return false
		}
		b, err := p2.Transform(query)
		if err != nil {
			return false
		}
		return snapshotFrame(a) == snapshotFrame(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
