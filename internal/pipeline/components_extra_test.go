package pipeline

import (
	"math"
	"testing"

	"cdml/internal/data"
	"cdml/internal/linalg"
)

func TestNormalizerDense(t *testing.T) {
	f := data.NewFrame(2)
	f.SetVec("v", []linalg.Vector{linalg.Dense{3, 4}, linalg.Dense{0, 0}})
	n := NewNormalizer("v")
	if !n.Stateless() {
		t.Fatal("normalizer should be stateless")
	}
	g, err := n.Transform(f)
	if err != nil {
		t.Fatal(err)
	}
	v := g.Vec("v")[0]
	if math.Abs(v.L2()-1) > 1e-12 {
		t.Fatalf("norm = %v", v.L2())
	}
	if math.Abs(v.At(0)-0.6) > 1e-12 {
		t.Fatalf("value = %v", v.At(0))
	}
	// Zero vector untouched; input frame untouched.
	if g.Vec("v")[1].L2() != 0 {
		t.Fatal("zero row changed")
	}
	if f.Vec("v")[0].At(0) != 3 {
		t.Fatal("input mutated")
	}
}

func TestNormalizerSparse(t *testing.T) {
	f := data.NewFrame(1)
	f.SetVec("v", []linalg.Vector{linalg.NewSparse(10, []int32{2, 7}, []float64{3, 4})})
	g, err := NewNormalizer("v").Transform(f)
	if err != nil {
		t.Fatal(err)
	}
	v := g.Vec("v")[0]
	if math.Abs(v.L2()-1) > 1e-12 {
		t.Fatalf("sparse norm = %v", v.L2())
	}
	if _, ok := v.(*linalg.Sparse); !ok {
		t.Fatalf("sparsity lost: %T", v)
	}
	if f.Vec("v")[0].At(2) != 3 {
		t.Fatal("input sparse vector mutated")
	}
}

func TestBinarizer(t *testing.T) {
	f := data.NewFrame(4)
	f.SetFloat("x", []float64{-1, 0.5, 2, data.Missing})
	g, err := NewBinarizer([]string{"x"}, 0.5).Transform(f)
	if err != nil {
		t.Fatal(err)
	}
	got := g.Float("x")
	if got[0] != 0 || got[1] != 0 || got[2] != 1 || got[3] != 0 {
		t.Fatalf("binarized = %v", got)
	}
}

func TestInteraction(t *testing.T) {
	f := data.NewFrame(2)
	f.SetFloat("a", []float64{2, data.Missing})
	f.SetFloat("b", []float64{3, 5})
	g, err := NewInteraction([][2]string{{"a", "b"}}).Transform(f)
	if err != nil {
		t.Fatal(err)
	}
	got := g.Float("a*b")
	if got[0] != 6 {
		t.Fatalf("product = %v", got[0])
	}
	if !data.IsMissingFloat(got[1]) {
		t.Fatal("missing factor should yield missing product")
	}
}

func TestStdClipper(t *testing.T) {
	c := NewStdClipper([]string{"x"}, 2)
	train := data.NewFrame(8)
	train.SetFloat("x", []float64{2, 4, 4, 4, 5, 5, 7, 9}) // mean 5, std 2
	if err := c.Update(train); err != nil {
		t.Fatal(err)
	}
	f := data.NewFrame(3)
	f.SetFloat("x", []float64{100, -100, 5})
	g, err := c.Transform(f)
	if err != nil {
		t.Fatal(err)
	}
	got := g.Float("x")
	if got[0] != 9 || got[1] != 1 { // mean ± 2·std = [1, 9]
		t.Fatalf("clipped = %v", got)
	}
	if got[2] != 5 {
		t.Fatal("in-range value changed")
	}
}

func TestStdClipperNoStatsPassThrough(t *testing.T) {
	c := NewStdClipper([]string{"x"}, 2)
	f := data.NewFrame(1)
	f.SetFloat("x", []float64{42})
	g, _ := c.Transform(f)
	if g.Float("x")[0] != 42 {
		t.Fatal("pass-through before stats failed")
	}
}

func TestStdClipperPreservesMissing(t *testing.T) {
	c := NewStdClipper([]string{"x"}, 2)
	_ = c.Update(floatFrame(1, 2, 3))
	g, _ := c.Transform(floatFrame(data.Missing))
	if !data.IsMissingFloat(g.Float("x")[0]) {
		t.Fatal("missing value destroyed by clipper")
	}
}

func TestStdClipperBadWidthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewStdClipper(nil, 0)
}

func TestExtraComponentsInPipeline(t *testing.T) {
	// All four extras composed into one pipeline behind the test parser.
	p := New(csvParser{},
		NewStdClipper([]string{"x"}, 3),
		NewInteraction([][2]string{{"x", "x"}}),
		NewBinarizer([]string{"x*x"}, 1),
		NewAssembler([]string{"x", "x*x"}, nil, "features"),
		NewNormalizer("features"),
	)
	ins, err := p.ProcessOnline(recs("1,2", "0,-3", "1,0.5"))
	if err != nil {
		t.Fatal(err)
	}
	if len(ins) != 3 {
		t.Fatalf("instances = %d", len(ins))
	}
	for _, in := range ins {
		if n := in.X.L2(); n != 0 && math.Abs(n-1) > 1e-9 {
			t.Fatalf("row not normalized: %v", n)
		}
	}
}
