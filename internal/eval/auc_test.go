package eval

import (
	"math"
	"math/rand"
	"testing"
)

func TestAUCPerfectSeparation(t *testing.T) {
	a := NewAUC(100, 1)
	for i := 0; i < 50; i++ {
		a.Observe(float64(1+i), 1)  // positives score high
		a.Observe(float64(-1-i), 0) // negatives score low
	}
	if got := a.Value(); got != 1 {
		t.Fatalf("AUC = %v, want 1", got)
	}
}

func TestAUCRandomScoresHalf(t *testing.T) {
	a := NewAUC(500, 2)
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 5000; i++ {
		a.Observe(r.NormFloat64(), float64(i%2))
	}
	if got := a.Value(); math.Abs(got-0.5) > 0.05 {
		t.Fatalf("AUC on random scores = %v, want ≈0.5", got)
	}
}

func TestAUCInverted(t *testing.T) {
	a := NewAUC(100, 1)
	for i := 0; i < 20; i++ {
		a.Observe(-1, 1)
		a.Observe(1, 0)
	}
	if got := a.Value(); got != 0 {
		t.Fatalf("inverted AUC = %v, want 0", got)
	}
}

func TestAUCTiesCountHalf(t *testing.T) {
	a := NewAUC(10, 1)
	a.Observe(0.5, 1)
	a.Observe(0.5, 0)
	if got := a.Value(); got != 0.5 {
		t.Fatalf("tied AUC = %v, want 0.5", got)
	}
}

func TestAUCDegenerate(t *testing.T) {
	a := NewAUC(10, 1)
	if a.Value() != 0.5 {
		t.Fatal("empty AUC should be 0.5")
	}
	a.Observe(1, 1)
	if a.Value() != 0.5 {
		t.Fatal("single-class AUC should be 0.5")
	}
	if a.Count() != 1 {
		t.Fatal("count wrong")
	}
	a.Reset()
	if a.Count() != 0 || a.Value() != 0.5 {
		t.Fatal("reset failed")
	}
}

func TestAUCKnownValue(t *testing.T) {
	// pos scores {3, 1}, neg scores {2, 0}:
	// pairs: (3,2)=1 (3,0)=1 (1,2)=0 (1,0)=1 → 3/4.
	a := NewAUC(10, 1)
	a.Observe(3, 1)
	a.Observe(1, 1)
	a.Observe(2, 0)
	a.Observe(0, 0)
	if got := a.Value(); got != 0.75 {
		t.Fatalf("AUC = %v, want 0.75", got)
	}
}

func TestAUCApproximatesExactUnderSampling(t *testing.T) {
	// With a small reservoir over a large separable-ish stream, the
	// estimate should track the population AUC closely.
	r := rand.New(rand.NewSource(5))
	est := NewAUC(200, 6)
	exact := NewAUC(1_000_000, 7) // effectively unsampled
	for i := 0; i < 20000; i++ {
		y := float64(i % 2)
		score := r.NormFloat64() + 1.2*y
		est.Observe(score, y)
		exact.Observe(score, y)
	}
	if math.Abs(est.Value()-exact.Value()) > 0.03 {
		t.Fatalf("sampled AUC %v vs exact %v", est.Value(), exact.Value())
	}
}

func TestAUCBadCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewAUC(0, 1)
}

func TestAUCNegativeLabelConvention(t *testing.T) {
	// ±1 labels: -1 is negative.
	a := NewAUC(10, 1)
	a.Observe(2, 1)
	a.Observe(-2, -1)
	if a.Value() != 1 {
		t.Fatalf("AUC with ±1 labels = %v", a.Value())
	}
}
