package eval

import (
	"math/rand"
	"sort"
)

// AUC estimates the area under the ROC curve over a stream of (score,
// label) pairs using two fixed-size reservoirs (one per class). Exact
// streaming AUC is non-incremental — like exact percentiles it would need
// the full score history — so the platform offers this bounded-memory
// estimate for monitoring dashboards. Labels: actual > 0 is positive (both
// the 0/1 and ±1 conventions work).
type AUC struct {
	pos, neg []float64
	capEach  int
	nPos     int64
	nNeg     int64
	rng      *rand.Rand
}

// NewAUC returns an estimator keeping up to capEach scores per class.
func NewAUC(capEach int, seed int64) *AUC {
	if capEach <= 0 {
		panic("eval: AUC reservoir capacity must be positive")
	}
	return &AUC{capEach: capEach, rng: rand.New(rand.NewSource(seed))}
}

// Name implements Metric.
func (a *AUC) Name() string { return "auc" }

// Observe implements Metric: pred is the model's raw score, actual the
// label.
func (a *AUC) Observe(pred, actual float64) {
	if actual > 0 {
		a.nPos++
		a.pos = observeReservoir(a.rng, a.pos, a.capEach, a.nPos, pred)
	} else {
		a.nNeg++
		a.neg = observeReservoir(a.rng, a.neg, a.capEach, a.nNeg, pred)
	}
}

func observeReservoir(rng *rand.Rand, res []float64, capEach int, seen int64, v float64) []float64 {
	if len(res) < capEach {
		return append(res, v)
	}
	if j := rng.Int63n(seen); j < int64(capEach) {
		res[j] = v
	}
	return res
}

// Value implements Metric: the Mann-Whitney estimate of P(score⁺ >
// score⁻), with ties counted half. Returns 0.5 until both classes have
// been observed.
func (a *AUC) Value() float64 {
	if len(a.pos) == 0 || len(a.neg) == 0 {
		return 0.5
	}
	// Sort the negatives once, then binary-search each positive: counts of
	// neg < p and neg ≤ p give wins and ties.
	neg := append([]float64(nil), a.neg...)
	sort.Float64s(neg)
	var wins float64
	for _, p := range a.pos {
		lo := sort.SearchFloat64s(neg, p) // first index with neg ≥ p
		hi := lo
		//lint:allow floateq: tie counting requires exact score equality
		for hi < len(neg) && neg[hi] == p {
			hi++
		}
		wins += float64(lo) + 0.5*float64(hi-lo)
	}
	return wins / (float64(len(a.pos)) * float64(len(a.neg)))
}

// Count implements Metric.
func (a *AUC) Count() int64 { return a.nPos + a.nNeg }

// Reset implements Metric.
func (a *AUC) Reset() {
	a.pos, a.neg = nil, nil
	a.nPos, a.nNeg = 0, 0
}
