package eval

import "math"

// Fading is a prequential error estimator with exponential forgetting
// (Gama et al.'s fading-factor variant of the prequential approach the
// paper evaluates with [11]). Unlike the cumulative metrics, it tracks the
// *recent* error level, which is what an operator watches on a dashboard
// and what threshold-based retraining policies (Velox-style) key on.
type Fading struct {
	// Alpha is the forgetting factor in (0, 1); values near 1 forget
	// slowly. 0.999 ≈ an effective window of ~1000 observations.
	Alpha float64

	num, den float64
	n        int64
}

// NewFading returns a fading estimator of the per-observation loss passed
// to Observe.
func NewFading(alpha float64) *Fading {
	if alpha <= 0 || alpha >= 1 {
		panic("eval: fading factor must be in (0,1)")
	}
	return &Fading{Alpha: alpha}
}

// Name implements Metric.
func (f *Fading) Name() string { return "fading" }

// Observe implements Metric: the per-pair loss is the squared error, so
// Value is a faded RMSE. For classification feed (pred, actual) labels and
// Value approximates a faded misclassification rate via the 0/1 distance.
func (f *Fading) Observe(pred, actual float64) {
	loss := 0.0
	//lint:allow floateq: classification labels compare exactly; regression pairs fall through to squared error
	if pred != actual {
		d := pred - actual
		loss = d * d
		if loss > 1 {
			loss = 1 // saturate so classification labels behave as 0/1
		}
	}
	f.ObserveLoss(loss)
}

// ObserveLoss folds an explicit per-observation loss.
func (f *Fading) ObserveLoss(loss float64) {
	f.n++
	f.num = loss + f.Alpha*f.num
	f.den = 1 + f.Alpha*f.den
}

// Value implements Metric: the faded mean loss.
func (f *Fading) Value() float64 {
	//lint:allow floateq: den is exactly 0 only before the first observation
	if f.den == 0 {
		return 0
	}
	return f.num / f.den
}

// Count implements Metric.
func (f *Fading) Count() int64 { return f.n }

// Reset implements Metric.
func (f *Fading) Reset() { f.num, f.den, f.n = 0, 0, 0 }

// EffectiveWindow returns the approximate number of observations the
// estimator remembers, 1/(1−Alpha).
func (f *Fading) EffectiveWindow() float64 { return 1 / (1 - f.Alpha) }

// FadedRMSE wraps Fading to report the square root of the faded squared
// error — a drop-in recent-window counterpart of RMSE.
type FadedRMSE struct {
	inner Fading
}

// NewFadedRMSE returns a faded RMSE with the given forgetting factor.
func NewFadedRMSE(alpha float64) *FadedRMSE {
	if alpha <= 0 || alpha >= 1 {
		panic("eval: fading factor must be in (0,1)")
	}
	return &FadedRMSE{inner: Fading{Alpha: alpha}}
}

// Name implements Metric.
func (f *FadedRMSE) Name() string { return "faded-rmse" }

// Observe implements Metric.
func (f *FadedRMSE) Observe(pred, actual float64) {
	d := pred - actual
	f.inner.ObserveLoss(d * d)
}

// Value implements Metric.
func (f *FadedRMSE) Value() float64 { return math.Sqrt(f.inner.Value()) }

// Count implements Metric.
func (f *FadedRMSE) Count() int64 { return f.inner.Count() }

// Reset implements Metric.
func (f *FadedRMSE) Reset() { f.inner.Reset() }
