package eval

import (
	"math"
	"math/rand"
	"testing"
)

func TestFadingTracksRecentLevel(t *testing.T) {
	f := NewFading(0.99)
	// A long clean period followed by a short bad one: the faded value
	// must reflect the bad recent level, while a cumulative metric would
	// still be dominated by the clean history.
	var cum Misclassification
	for i := 0; i < 5000; i++ {
		f.Observe(1, 1)
		cum.Observe(1, 1)
	}
	for i := 0; i < 300; i++ {
		f.Observe(1, -1)
		cum.Observe(1, -1)
	}
	if f.Value() < 0.7 {
		t.Fatalf("faded value %v does not reflect recent errors", f.Value())
	}
	if cum.Value() > 0.1 {
		t.Fatalf("cumulative baseline unexpectedly high: %v", cum.Value())
	}
}

func TestFadingStationaryMatchesRate(t *testing.T) {
	f := NewFading(0.995)
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 20000; i++ {
		if r.Float64() < 0.2 {
			f.Observe(1, -1)
		} else {
			f.Observe(1, 1)
		}
	}
	if math.Abs(f.Value()-0.2) > 0.05 {
		t.Fatalf("faded rate %v, want ≈0.2", f.Value())
	}
}

func TestFadingInterface(t *testing.T) {
	f := NewFading(0.9)
	if f.Name() != "fading" || f.Value() != 0 {
		t.Fatal("fresh fading wrong")
	}
	f.Observe(1, 0)
	if f.Count() != 1 {
		t.Fatal("count wrong")
	}
	f.Reset()
	if f.Count() != 0 || f.Value() != 0 {
		t.Fatal("reset failed")
	}
	if w := f.EffectiveWindow(); math.Abs(w-10) > 1e-9 {
		t.Fatalf("effective window %v, want 10", w)
	}
}

func TestFadingSaturatesLargeErrors(t *testing.T) {
	f := NewFading(0.9)
	f.Observe(100, -100) // classification-style saturation at 1
	if f.Value() > 1 {
		t.Fatalf("faded 0/1 loss above 1: %v", f.Value())
	}
}

func TestFadingBadAlphaPanics(t *testing.T) {
	for _, a := range []float64{0, 1, -0.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			NewFading(a)
		}()
	}
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewFadedRMSE(1)
}

func TestFadedRMSE(t *testing.T) {
	f := NewFadedRMSE(0.99)
	for i := 0; i < 5000; i++ {
		f.Observe(3, 0) // constant error 3
	}
	if math.Abs(f.Value()-3) > 0.01 {
		t.Fatalf("faded RMSE %v, want 3", f.Value())
	}
	if f.Name() != "faded-rmse" || f.Count() != 5000 {
		t.Fatal("metadata wrong")
	}
	f.Reset()
	if f.Value() != 0 {
		t.Fatal("reset failed")
	}
	// Recency: after a regime change the estimate moves to the new level.
	for i := 0; i < 2000; i++ {
		f.Observe(1, 0)
	}
	for i := 0; i < 2000; i++ {
		f.Observe(5, 0)
	}
	if math.Abs(f.Value()-5) > 0.2 {
		t.Fatalf("faded RMSE after shift %v, want ≈5", f.Value())
	}
}
