package eval

import "fmt"

// Confusion accumulates the binary confusion matrix over a stream of
// (predicted label, actual label) pairs. Any positive value is the
// positive class, so both the 0/1 and ±1 conventions work. It backs the
// per-class quality views (precision, recall, F1) an operator watches next
// to the scalar error rate.
type Confusion struct {
	tp, fp, tn, fn int64
}

// Name implements Metric.
func (c *Confusion) Name() string { return "confusion" }

// Observe implements Metric.
func (c *Confusion) Observe(pred, actual float64) {
	switch {
	case pred > 0 && actual > 0:
		c.tp++
	case pred > 0 && actual <= 0:
		c.fp++
	case pred <= 0 && actual <= 0:
		c.tn++
	default:
		c.fn++
	}
}

// Value implements Metric: the misclassification rate (so Confusion can
// drive the platform's prequential evaluation directly).
func (c *Confusion) Value() float64 {
	n := c.Count()
	if n == 0 {
		return 0
	}
	return float64(c.fp+c.fn) / float64(n)
}

// Count implements Metric.
func (c *Confusion) Count() int64 { return c.tp + c.fp + c.tn + c.fn }

// Reset implements Metric.
func (c *Confusion) Reset() { *c = Confusion{} }

// Accuracy returns (TP+TN)/N, or 0 when empty.
func (c *Confusion) Accuracy() float64 {
	n := c.Count()
	if n == 0 {
		return 0
	}
	return float64(c.tp+c.tn) / float64(n)
}

// Precision returns TP/(TP+FP), or 0 when no positive was predicted.
func (c *Confusion) Precision() float64 {
	if c.tp+c.fp == 0 {
		return 0
	}
	return float64(c.tp) / float64(c.tp+c.fp)
}

// Recall returns TP/(TP+FN), or 0 when no positive was observed.
func (c *Confusion) Recall() float64 {
	if c.tp+c.fn == 0 {
		return 0
	}
	return float64(c.tp) / float64(c.tp+c.fn)
}

// F1 returns the harmonic mean of precision and recall, or 0 when either
// is 0.
func (c *Confusion) F1() float64 {
	p, r := c.Precision(), c.Recall()
	//lint:allow floateq: both ratios are nonnegative; the sum is exactly 0 only when both are
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// Matrix returns the four counts (tp, fp, tn, fn).
func (c *Confusion) Matrix() (tp, fp, tn, fn int64) { return c.tp, c.fp, c.tn, c.fn }

// String renders the matrix and derived rates.
func (c *Confusion) String() string {
	return fmt.Sprintf("tp=%d fp=%d tn=%d fn=%d acc=%.4f p=%.4f r=%.4f f1=%.4f",
		c.tp, c.fp, c.tn, c.fn, c.Accuracy(), c.Precision(), c.Recall(), c.F1())
}
