package eval

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Category classifies where deployment time is spent.
type Category string

// The cost categories of the paper's deployment-cost definition (§5.2):
// "the total time spent in data preprocessing, model training, and
// performing prediction", plus storage IO which we break out separately
// because dynamic materialization trades compute against it.
const (
	CatPreprocess Category = "preprocess"
	CatTrain      Category = "train"
	CatPredict    Category = "predict"
	CatIO         Category = "io"
)

// CostClock accumulates wall-clock time by category. It is safe for
// concurrent use, and the four standard categories are lock-free: the
// serving path charges CatPredict on every query while training charges
// CatTrain, so sharing a mutex here would reintroduce exactly the
// reader/writer coupling the snapshot architecture removes. Unknown
// (caller-defined) categories fall back to a mutex-protected map.
//
// The clock is //cdml:mutable — the one deliberately live object reachable
// from a published core.Snapshot (Result.Cost): it keeps accumulating after
// publish, and its internal synchronization (atomics plus mu) is what makes
// that safe. The marker prunes it from snapfreeze's immutability closure.
//
//cdml:mutable
type CostClock struct {
	// known holds nanoseconds for the standard categories, indexed by
	// catIndex.
	known [numKnownCats]atomic.Int64

	mu sync.Mutex
	//cdml:guardedby mu
	extra map[Category]time.Duration // lazily allocated; non-standard categories only
}

const numKnownCats = 4

// catIndex maps the standard categories to their fixed atomic slot, or -1
// for caller-defined categories.
//
//cdml:hotpath
func catIndex(c Category) int {
	switch c {
	case CatPreprocess:
		return 0
	case CatTrain:
		return 1
	case CatPredict:
		return 2
	case CatIO:
		return 3
	}
	return -1
}

// NewCostClock returns an empty clock.
func NewCostClock() *CostClock {
	return &CostClock{}
}

// Add charges d to category c.
//
//cdml:hotpath
func (cc *CostClock) Add(c Category, d time.Duration) {
	if i := catIndex(c); i >= 0 {
		cc.known[i].Add(int64(d))
		return
	}
	cc.mu.Lock()
	if cc.extra == nil {
		cc.extra = make(map[Category]time.Duration)
	}
	cc.extra[c] += d
	cc.mu.Unlock()
}

// Time runs f and charges its duration to category c.
func (cc *CostClock) Time(c Category, f func()) {
	start := time.Now()
	f()
	cc.Add(c, time.Since(start))
}

// TimeErr runs f and charges its duration to category c, passing through
// f's error.
func (cc *CostClock) TimeErr(c Category, f func() error) error {
	start := time.Now()
	err := f()
	cc.Add(c, time.Since(start))
	return err
}

// Get returns the time charged to category c.
//
//cdml:hotpath
func (cc *CostClock) Get(c Category) time.Duration {
	if i := catIndex(c); i >= 0 {
		return time.Duration(cc.known[i].Load())
	}
	cc.mu.Lock()
	defer cc.mu.Unlock()
	return cc.extra[c]
}

// Total returns the time charged across all categories — the paper's
// deployment cost.
func (cc *CostClock) Total() time.Duration {
	var t time.Duration
	for i := range cc.known {
		t += time.Duration(cc.known[i].Load())
	}
	cc.mu.Lock()
	defer cc.mu.Unlock()
	for _, d := range cc.extra {
		t += d
	}
	return t
}

// snapshot returns every non-zero category, for Breakdown.
func (cc *CostClock) snapshot() map[Category]time.Duration {
	out := make(map[Category]time.Duration)
	for _, c := range [numKnownCats]Category{CatPreprocess, CatTrain, CatPredict, CatIO} {
		if d := cc.Get(c); d != 0 {
			out[c] = d
		}
	}
	cc.mu.Lock()
	defer cc.mu.Unlock()
	for c, d := range cc.extra {
		if d != 0 {
			out[c] = d
		}
	}
	return out
}

// Breakdown returns a stable, human-readable per-category summary.
func (cc *CostClock) Breakdown() string {
	spent := cc.snapshot()
	cats := make([]string, 0, len(spent))
	for c := range spent {
		cats = append(cats, string(c))
	}
	sort.Strings(cats)
	parts := make([]string, 0, len(cats))
	for _, c := range cats {
		parts = append(parts, fmt.Sprintf("%s=%v", c, spent[Category(c)].Round(time.Microsecond)))
	}
	return strings.Join(parts, " ")
}

// Reset clears the clock.
func (cc *CostClock) Reset() {
	for i := range cc.known {
		cc.known[i].Store(0)
	}
	cc.mu.Lock()
	cc.extra = nil
	cc.mu.Unlock()
}

// Series is an (x, y) curve recorded during a deployment run — the raw
// material of the paper's over-time figures (cumulative error and
// cumulative cost).
type Series struct {
	// Name labels the curve (e.g. "continuous").
	Name string
	// Xs is the x axis (chunk index / deployment time).
	Xs []float64
	// Ys is the y axis (error or cost at that x).
	Ys []float64
}

// Append adds one point.
func (s *Series) Append(x, y float64) {
	s.Xs = append(s.Xs, x)
	s.Ys = append(s.Ys, y)
}

// Len returns the number of points.
func (s *Series) Len() int { return len(s.Xs) }

// Last returns the final y value, or 0 when empty.
func (s *Series) Last() float64 {
	if len(s.Ys) == 0 {
		return 0
	}
	return s.Ys[len(s.Ys)-1]
}

// Mean returns the average y value, or 0 when empty — the paper's "average
// error rate over the deployment".
func (s *Series) Mean() float64 {
	if len(s.Ys) == 0 {
		return 0
	}
	var sum float64
	for _, y := range s.Ys {
		sum += y
	}
	return sum / float64(len(s.Ys))
}

// Downsample returns a copy with at most n points, evenly spaced, always
// keeping the last point. It renders long deployments compactly.
func (s *Series) Downsample(n int) *Series {
	if n <= 0 || s.Len() <= n {
		c := &Series{Name: s.Name, Xs: append([]float64(nil), s.Xs...), Ys: append([]float64(nil), s.Ys...)}
		return c
	}
	out := &Series{Name: s.Name}
	step := float64(s.Len()-1) / float64(n-1)
	for i := 0; i < n; i++ {
		k := int(float64(i) * step)
		if i == n-1 {
			k = s.Len() - 1
		}
		out.Append(s.Xs[k], s.Ys[k])
	}
	return out
}

// Prequential implements prequential ("test-then-train") evaluation: each
// incoming chunk is first used to evaluate the deployed model, then to
// train it. It wraps a cumulative Metric and records the over-time error
// curve.
type Prequential struct {
	metric Metric
	curve  Series
}

// NewPrequential returns a prequential evaluator over the given metric.
func NewPrequential(name string, m Metric) *Prequential {
	return &Prequential{metric: m, curve: Series{Name: name}}
}

// Observe folds one prediction/actual pair into the underlying metric.
func (p *Prequential) Observe(pred, actual float64) { p.metric.Observe(pred, actual) }

// Checkpoint records the current cumulative error at time x.
func (p *Prequential) Checkpoint(x float64) { p.curve.Append(x, p.metric.Value()) }

// Curve returns the recorded error-over-time series.
func (p *Prequential) Curve() *Series { return &p.curve }

// Value returns the current cumulative error.
func (p *Prequential) Value() float64 { return p.metric.Value() }

// Count returns the number of evaluated pairs.
func (p *Prequential) Count() int64 { return p.metric.Count() }
