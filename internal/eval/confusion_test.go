package eval

import (
	"math"
	"testing"
)

func fill(c *Confusion, tp, fp, tn, fn int) {
	for i := 0; i < tp; i++ {
		c.Observe(1, 1)
	}
	for i := 0; i < fp; i++ {
		c.Observe(1, -1)
	}
	for i := 0; i < tn; i++ {
		c.Observe(-1, -1)
	}
	for i := 0; i < fn; i++ {
		c.Observe(-1, 1)
	}
}

func TestConfusionCounts(t *testing.T) {
	var c Confusion
	fill(&c, 3, 1, 4, 2)
	tp, fp, tn, fn := c.Matrix()
	if tp != 3 || fp != 1 || tn != 4 || fn != 2 {
		t.Fatalf("matrix = %d %d %d %d", tp, fp, tn, fn)
	}
	if c.Count() != 10 {
		t.Fatalf("count = %d", c.Count())
	}
}

func TestConfusionRates(t *testing.T) {
	var c Confusion
	fill(&c, 3, 1, 4, 2)
	if got := c.Accuracy(); got != 0.7 {
		t.Fatalf("accuracy = %v", got)
	}
	if got := c.Precision(); got != 0.75 {
		t.Fatalf("precision = %v", got)
	}
	if got := c.Recall(); got != 0.6 {
		t.Fatalf("recall = %v", got)
	}
	wantF1 := 2 * 0.75 * 0.6 / (0.75 + 0.6)
	if got := c.F1(); math.Abs(got-wantF1) > 1e-12 {
		t.Fatalf("f1 = %v, want %v", got, wantF1)
	}
	if got := c.Value(); math.Abs(got-0.3) > 1e-12 {
		t.Fatalf("misclassification = %v", got)
	}
}

func TestConfusionZeroOneConvention(t *testing.T) {
	var c Confusion
	c.Observe(1, 1)
	c.Observe(0, 0)
	c.Observe(1, 0)
	c.Observe(0, 1)
	tp, fp, tn, fn := c.Matrix()
	if tp != 1 || fp != 1 || tn != 1 || fn != 1 {
		t.Fatalf("0/1 convention wrong: %d %d %d %d", tp, fp, tn, fn)
	}
}

func TestConfusionEmptyAndDegenerate(t *testing.T) {
	var c Confusion
	if c.Value() != 0 || c.Accuracy() != 0 || c.Precision() != 0 || c.Recall() != 0 || c.F1() != 0 {
		t.Fatal("empty confusion should be all zeros")
	}
	// Only negatives: precision/recall undefined → 0, no NaN.
	c.Observe(-1, -1)
	if math.IsNaN(c.Precision()) || math.IsNaN(c.Recall()) || math.IsNaN(c.F1()) {
		t.Fatal("NaN in degenerate rates")
	}
	if c.Accuracy() != 1 {
		t.Fatalf("accuracy = %v", c.Accuracy())
	}
}

func TestConfusionResetAndString(t *testing.T) {
	var c Confusion
	fill(&c, 1, 1, 1, 1)
	if c.String() == "" {
		t.Fatal("empty string rendering")
	}
	c.Reset()
	if c.Count() != 0 {
		t.Fatal("reset failed")
	}
	if c.Name() != "confusion" {
		t.Fatal("name wrong")
	}
}
