package eval

import (
	"math"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestMisclassification(t *testing.T) {
	var m Misclassification
	if m.Value() != 0 {
		t.Fatal("empty should be 0")
	}
	m.Observe(1, 1)
	m.Observe(-1, 1)
	m.Observe(1, -1)
	m.Observe(-1, -1)
	if m.Value() != 0.5 || m.Count() != 4 {
		t.Fatalf("value = %v, count = %d", m.Value(), m.Count())
	}
	m.Reset()
	if m.Count() != 0 {
		t.Fatal("reset failed")
	}
}

func TestRMSE(t *testing.T) {
	var m RMSE
	m.Observe(3, 0)
	m.Observe(0, 4)
	want := math.Sqrt((9.0 + 16.0) / 2)
	if math.Abs(m.Value()-want) > 1e-12 {
		t.Fatalf("RMSE = %v, want %v", m.Value(), want)
	}
}

func TestRMSLE(t *testing.T) {
	var m RMSLE
	m.Observe(math.E-1, 0) // log1p = 1 vs 0
	if math.Abs(m.Value()-1) > 1e-12 {
		t.Fatalf("RMSLE = %v, want 1", m.Value())
	}
	// Negative predictions clamp instead of producing NaN.
	var m2 RMSLE
	m2.Observe(-5, 10)
	if math.IsNaN(m2.Value()) {
		t.Fatal("RMSLE produced NaN on negative input")
	}
}

func TestMAE(t *testing.T) {
	var m MAE
	m.Observe(1, 4)
	m.Observe(2, 0)
	if m.Value() != 2.5 {
		t.Fatalf("MAE = %v", m.Value())
	}
}

func TestLogLoss(t *testing.T) {
	var m LogLoss
	m.Observe(0.9, 1)
	want := -math.Log(0.9)
	if math.Abs(m.Value()-want) > 1e-12 {
		t.Fatalf("LogLoss = %v, want %v", m.Value(), want)
	}
	// Extreme probabilities are clipped.
	var m2 LogLoss
	m2.Observe(0, 1)
	if math.IsInf(m2.Value(), 0) || math.IsNaN(m2.Value()) {
		t.Fatal("LogLoss not clipped")
	}
}

func TestNewMetric(t *testing.T) {
	for _, name := range []string{"misclassification", "rmse", "rmsle", "mae", "logloss"} {
		m, err := NewMetric(name)
		if err != nil {
			t.Fatalf("NewMetric(%q): %v", name, err)
		}
		if m.Name() != name {
			t.Fatalf("Name = %q", m.Name())
		}
	}
	if _, err := NewMetric("bogus"); err == nil {
		t.Fatal("expected error")
	}
}

// Property: RMSE is symmetric and zero iff all pairs are equal.
func TestQuickRMSEProperties(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(50)
		var a, b RMSE
		allEqual := true
		for i := 0; i < n; i++ {
			p, y := r.NormFloat64(), r.NormFloat64()
			if r.Intn(3) == 0 {
				y = p
			} else {
				allEqual = false
			}
			a.Observe(p, y)
			b.Observe(y, p)
		}
		if math.Abs(a.Value()-b.Value()) > 1e-12 {
			return false
		}
		if allEqual && a.Value() != 0 {
			return false
		}
		if !allEqual && a.Value() == 0 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCostClock(t *testing.T) {
	cc := NewCostClock()
	cc.Add(CatTrain, 100*time.Millisecond)
	cc.Add(CatTrain, 50*time.Millisecond)
	cc.Add(CatPredict, 25*time.Millisecond)
	if cc.Get(CatTrain) != 150*time.Millisecond {
		t.Fatalf("train = %v", cc.Get(CatTrain))
	}
	if cc.Total() != 175*time.Millisecond {
		t.Fatalf("total = %v", cc.Total())
	}
	if cc.Breakdown() == "" {
		t.Fatal("empty breakdown")
	}
	cc.Reset()
	if cc.Total() != 0 {
		t.Fatal("reset failed")
	}
}

func TestCostClockTime(t *testing.T) {
	cc := NewCostClock()
	cc.Time(CatPreprocess, func() { time.Sleep(time.Millisecond) })
	if cc.Get(CatPreprocess) < time.Millisecond {
		t.Fatalf("Time did not charge: %v", cc.Get(CatPreprocess))
	}
	err := cc.TimeErr(CatIO, func() error { return nil })
	if err != nil {
		t.Fatal(err)
	}
}

func TestCostClockConcurrent(t *testing.T) {
	cc := NewCostClock()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				cc.Add(CatTrain, time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if cc.Get(CatTrain) != 800*time.Microsecond {
		t.Fatalf("concurrent adds lost: %v", cc.Get(CatTrain))
	}
}

func TestSeries(t *testing.T) {
	var s Series
	if s.Last() != 0 || s.Mean() != 0 {
		t.Fatal("empty series should be 0")
	}
	s.Append(0, 1)
	s.Append(1, 3)
	if s.Len() != 2 || s.Last() != 3 || s.Mean() != 2 {
		t.Fatalf("series stats wrong: %+v", s)
	}
}

func TestSeriesDownsample(t *testing.T) {
	s := &Series{Name: "x"}
	for i := 0; i < 100; i++ {
		s.Append(float64(i), float64(i))
	}
	d := s.Downsample(10)
	if d.Len() != 10 {
		t.Fatalf("downsampled len = %d", d.Len())
	}
	if d.Xs[0] != 0 || d.Xs[9] != 99 {
		t.Fatalf("endpoints wrong: %v", d.Xs)
	}
	// No-op cases copy.
	d2 := s.Downsample(0)
	if d2.Len() != 100 {
		t.Fatal("n<=0 should copy")
	}
	d2.Ys[0] = 999
	if s.Ys[0] == 999 {
		t.Fatal("Downsample returned shared storage")
	}
	short := &Series{}
	short.Append(1, 1)
	if short.Downsample(10).Len() != 1 {
		t.Fatal("short series should be unchanged")
	}
}

func TestPrequential(t *testing.T) {
	p := NewPrequential("test", &Misclassification{})
	p.Observe(1, 1)
	p.Checkpoint(0)
	p.Observe(1, -1)
	p.Checkpoint(1)
	c := p.Curve()
	if c.Len() != 2 {
		t.Fatalf("curve len = %d", c.Len())
	}
	if c.Ys[0] != 0 || c.Ys[1] != 0.5 {
		t.Fatalf("curve values = %v", c.Ys)
	}
	if p.Value() != 0.5 || p.Count() != 2 {
		t.Fatalf("value = %v count = %d", p.Value(), p.Count())
	}
	if c.Name != "test" {
		t.Fatal("name lost")
	}
}
