// Package eval provides the evaluation substrate of the experiments
// (paper §5.1): cumulative prequential error [Dawid 1984], the error
// measures used by the two pipelines (misclassification rate for the URL
// SVM, RMSLE for the Taxi regression), and the cost clock that attributes
// deployment time to data preprocessing, model training, and prediction.
package eval

import (
	"fmt"
	"math"
)

// Metric is a cumulative error measure over a stream of (prediction,
// actual) pairs.
type Metric interface {
	// Name identifies the metric.
	Name() string
	// Observe folds one prediction/actual pair into the metric.
	Observe(pred, actual float64)
	// Value returns the current cumulative value of the metric.
	Value() float64
	// Count returns the number of observed pairs.
	Count() int64
	// Reset clears the metric.
	Reset()
}

// Misclassification is the fraction of label predictions that differ from
// the actual label.
type Misclassification struct {
	n, wrong int64
}

// Name implements Metric.
func (m *Misclassification) Name() string { return "misclassification" }

// Observe implements Metric; pred and actual are compared exactly.
func (m *Misclassification) Observe(pred, actual float64) {
	m.n++
	//lint:allow floateq: class labels compare exactly (documented contract)
	if pred != actual {
		m.wrong++
	}
}

// Value implements Metric.
func (m *Misclassification) Value() float64 {
	if m.n == 0 {
		return 0
	}
	return float64(m.wrong) / float64(m.n)
}

// Count implements Metric.
func (m *Misclassification) Count() int64 { return m.n }

// Reset implements Metric.
func (m *Misclassification) Reset() { *m = Misclassification{} }

// RMSE is the root of the mean squared error.
type RMSE struct {
	n   int64
	sse float64
}

// Name implements Metric.
func (m *RMSE) Name() string { return "rmse" }

// Observe implements Metric.
func (m *RMSE) Observe(pred, actual float64) {
	m.n++
	d := pred - actual
	m.sse += d * d
}

// Value implements Metric.
func (m *RMSE) Value() float64 {
	if m.n == 0 {
		return 0
	}
	return math.Sqrt(m.sse / float64(m.n))
}

// Count implements Metric.
func (m *RMSE) Count() int64 { return m.n }

// Reset implements Metric.
func (m *RMSE) Reset() { *m = RMSE{} }

// RMSLE is the root mean squared logarithmic error, the NYC-taxi Kaggle
// measure: RMSE over log1p of predictions and actuals. Negative inputs
// clamp at −1+ε rather than producing NaN.
type RMSLE struct {
	n   int64
	sse float64
}

// Name implements Metric.
func (m *RMSLE) Name() string { return "rmsle" }

// Observe implements Metric.
func (m *RMSLE) Observe(pred, actual float64) {
	m.n++
	d := log1pSafe(pred) - log1pSafe(actual)
	m.sse += d * d
}

func log1pSafe(v float64) float64 {
	if v < -1+1e-12 {
		v = -1 + 1e-12
	}
	return math.Log1p(v)
}

// Value implements Metric.
func (m *RMSLE) Value() float64 {
	if m.n == 0 {
		return 0
	}
	return math.Sqrt(m.sse / float64(m.n))
}

// Count implements Metric.
func (m *RMSLE) Count() int64 { return m.n }

// Reset implements Metric.
func (m *RMSLE) Reset() { *m = RMSLE{} }

// MAE is the mean absolute error.
type MAE struct {
	n   int64
	sae float64
}

// Name implements Metric.
func (m *MAE) Name() string { return "mae" }

// Observe implements Metric.
func (m *MAE) Observe(pred, actual float64) {
	m.n++
	m.sae += math.Abs(pred - actual)
}

// Value implements Metric.
func (m *MAE) Value() float64 {
	if m.n == 0 {
		return 0
	}
	return m.sae / float64(m.n)
}

// Count implements Metric.
func (m *MAE) Count() int64 { return m.n }

// Reset implements Metric.
func (m *MAE) Reset() { *m = MAE{} }

// LogLoss is the mean binary cross-entropy; predictions are probabilities
// in [0,1] and actuals are labels in {0,1}. Probabilities are clipped away
// from 0 and 1.
type LogLoss struct {
	n   int64
	sum float64
}

// Name implements Metric.
func (m *LogLoss) Name() string { return "logloss" }

// Observe implements Metric.
func (m *LogLoss) Observe(pred, actual float64) {
	const eps = 1e-15
	p := math.Min(1-eps, math.Max(eps, pred))
	m.n++
	m.sum += -(actual*math.Log(p) + (1-actual)*math.Log(1-p))
}

// Value implements Metric.
func (m *LogLoss) Value() float64 {
	if m.n == 0 {
		return 0
	}
	return m.sum / float64(m.n)
}

// Count implements Metric.
func (m *LogLoss) Count() int64 { return m.n }

// Reset implements Metric.
func (m *LogLoss) Reset() { *m = LogLoss{} }

// NewMetric constructs a metric by name: "misclassification", "rmse",
// "rmsle", "mae", or "logloss".
func NewMetric(name string) (Metric, error) {
	switch name {
	case "misclassification":
		return &Misclassification{}, nil
	case "rmse":
		return &RMSE{}, nil
	case "rmsle":
		return &RMSLE{}, nil
	case "mae":
		return &MAE{}, nil
	case "logloss":
		return &LogLoss{}, nil
	default:
		return nil, fmt.Errorf("eval: unknown metric %q", name)
	}
}
