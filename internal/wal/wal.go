// Package wal is the durable write-ahead ingest log: a segmented,
// CRC-framed, append-only record of every chunk the async ingest path has
// 202-acknowledged. Checkpoints make recovery possible; the log makes it
// exact. A chunk is appended (and fsynced) before the ack, the training
// drainer marks consumption with a buffered commit record carrying the
// publish version the tick produced, and recovery replays every logged
// chunk whose committed version is newer than the recovered checkpoint —
// so a restart converges to bit-identical state with an uninterrupted run.
//
// On-disk layout, mirroring the checkpoint directory next door:
//
//	wal-%016d.seg       sealed segment (first data seq in the name)
//	wal-%016d.seg.open  the one active segment, appended in place
//
// Each segment is a concatenation of snapstream frames under the
// "CDMLWAL1" magic (same header/CRC discipline as the CDMLCKP1 checkpoint
// frames). The frame version field carries the record sequence number:
//
//	data record    payload = kind(1) | watermark u64 | n u32 | (len u32 | bytes)*
//	commit record  payload = kind(2) | applied u64          (frame version = target data seq)
//
// A data record's watermark is the deployment's published snapshot version
// at append time — lineage metadata, not the replay filter. The replay
// filter is the commit record: a tick that consumed data seq S and
// published version P appends commit(S, P) *before* the publish, and the
// checkpoint writer fsyncs the log before making any checkpoint durable.
// Hence a checkpoint at version V durable on disk implies every commit
// with applied ≤ V is durable too, and replay after recovering V is
// exactly the records with no commit, a commit > V, or — never — a torn
// tail the ack did not cover. An abort record is a commit whose applied
// field is the reserved mark ^uint64(0): the record was rejected after
// append (queue full/closed) or its tick failed, and must not replay.
//
// Segment rolls follow the checkpoint file discipline: the active file is
// fsynced, closed, renamed to its sealed name, and the directory entry
// fsynced, so a crash leaves either the old file set or the old set plus
// one complete sealed segment. Torn frames are only possible at the tail
// of the active segment (every acknowledged append was fsynced first);
// Open truncates the tail to the last complete frame and continues.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"cdml/internal/snapstream"
)

// Magic is the 8-byte preamble of every ingest-log frame.
const Magic = "CDMLWAL1"

const (
	kindData   = 1
	kindCommit = 2

	segPrefix  = "wal-"
	segSuffix  = ".seg"
	openSuffix = ".seg.open"

	// abortedMark in a commit record's applied field means "never replay".
	abortedMark = ^uint64(0)
)

// DefaultSegmentBytes is the roll threshold when Options.SegmentBytes is
// zero: small enough that retention reclaims space promptly, large enough
// that steady ingest does not churn directory entries.
const DefaultSegmentBytes = 4 << 20

// Options configures an ingest log.
type Options struct {
	// Dir is the log directory, created if absent. One deployment lineage
	// per directory; two live Logs on one directory corrupt it.
	Dir string
	// SegmentBytes rolls the active segment once it reaches this size
	// (the record that crosses the line stays in the old segment).
	// 0 means DefaultSegmentBytes.
	SegmentBytes int64
	// NoSync skips the per-append fsync. Test and benchmark use only: it
	// voids the durable-ack guarantee the log exists to provide.
	NoSync bool
}

// Stats is a point-in-time snapshot of log counters, served on /v1/status
// and exported as cdml_wal_* metrics.
type Stats struct {
	// LastSeq is the highest data record sequence number ever appended.
	LastSeq uint64
	// Appends counts data records appended by this process.
	Appends uint64
	// Applied counts commit records written by this process.
	Applied uint64
	// Aborted counts abort records written by this process.
	Aborted uint64
	// Replayed counts records delivered by the most recent Replay.
	Replayed uint64
	// Truncations counts torn tails cut off the active segment at Open.
	Truncations uint64
	// PrunedSegments counts segments removed by retention.
	PrunedSegments uint64
	// Segments is the current segment file count (including the active one).
	Segments int
	// Bytes is the current on-disk size across all segments.
	Bytes int64
	// Unapplied is the number of data records with no commit or abort —
	// the records a crash right now would replay.
	Unapplied int
}

// segment is the in-memory index of one segment file. The data-record
// fields (first/last/unapplied/maxApplied) describe records *homed* in
// this segment; a commit record physically living in a later segment
// still updates the meta of the segment holding its target data record.
type segment struct {
	path       string
	sealed     bool
	bytes      int64
	firstSeq   uint64 // 0 = no data records yet
	lastSeq    uint64
	unapplied  int    // data records with no commit/abort
	maxApplied uint64 // highest committed publish version of records homed here
}

// Log is a durable write-ahead ingest log. All methods are safe for
// concurrent use; appends serialize on an internal mutex (one fsync per
// acknowledged chunk).
type Log struct {
	dir      string
	segBytes int64
	noSync   bool

	mu      sync.Mutex
	active  *os.File   //cdml:guardedby mu
	segs    []*segment //cdml:guardedby mu — oldest first, last is the active segment
	lastSeq uint64     //cdml:guardedby mu
	// applied maps data seq → latest committed publish version
	// (abortedMark = aborted); absence means unconsumed.
	applied map[uint64]uint64 //cdml:guardedby mu
	dirty   bool              //cdml:guardedby mu — buffered commit records not yet fsynced

	appends     uint64 //cdml:guardedby mu
	committed   uint64 //cdml:guardedby mu
	aborted     uint64 //cdml:guardedby mu
	replayed    uint64 //cdml:guardedby mu
	truncations uint64 //cdml:guardedby mu
	prunedSegs  uint64 //cdml:guardedby mu
}

// Open opens (creating if necessary) the ingest log in opts.Dir, indexes
// every segment, truncates a torn tail off the active segment, and
// positions it for appending.
func Open(opts Options) (*Log, error) {
	if opts.Dir == "" {
		return nil, errors.New("wal: Options.Dir is required")
	}
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = DefaultSegmentBytes
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: creating log dir: %w", err)
	}
	l := &Log{
		dir:      opts.Dir,
		segBytes: opts.SegmentBytes,
		noSync:   opts.NoSync,
		applied:  make(map[uint64]uint64),
	}
	if err := l.scan(); err != nil {
		return nil, err
	}
	return l, nil
}

// scan indexes the existing segment files and opens (or creates) the
// active segment.
//
//cdml:locked mu — Open-time only, before the Log is shared
func (l *Log) scan() error {
	entries, err := os.ReadDir(l.dir)
	if err != nil {
		return fmt.Errorf("wal: listing log dir: %w", err)
	}
	type named struct {
		seq  uint64
		name string
		open bool
	}
	var files []named
	for _, e := range entries {
		name := e.Name()
		seq, open, ok := parseSegName(name)
		if !ok {
			continue
		}
		files = append(files, named{seq: seq, name: name, open: open})
	}
	sort.Slice(files, func(i, j int) bool { return files[i].seq < files[j].seq })
	openCount := 0
	for i, f := range files {
		if f.open {
			openCount++
			if openCount > 1 || i != len(files)-1 {
				return fmt.Errorf("wal: %s: active segment is not the newest file (corrupt directory?)", f.name)
			}
		}
		if err := l.indexSegment(filepath.Join(l.dir, f.name), f.open); err != nil {
			return err
		}
	}
	if openCount == 0 {
		// Fresh directory, or a crash landed exactly between sealing the old
		// active segment and creating the next one — either way, start a new
		// active segment after the highest known sequence.
		if err := l.newActive(l.lastSeq + 1); err != nil {
			return err
		}
	}
	return nil
}

// indexSegment reads one segment file into the in-memory index. For the
// active (open) segment a torn tail is truncated to the last complete
// frame; for a sealed segment any framing error is corruption.
//
//cdml:locked mu — Open-time only, before the Log is shared
func (l *Log) indexSegment(path string, open bool) error {
	b, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("wal: reading segment: %w", err)
	}
	name := filepath.Base(path)
	seg := &segment{path: path, sealed: !open}
	l.segs = append(l.segs, seg)
	valid := int64(0)
	rest := b
	for len(rest) > 0 {
		f, next, err := snapstream.NextFrame(Magic, name, rest)
		if err != nil {
			if !open {
				return fmt.Errorf("wal: sealed segment corrupt: %w", err)
			}
			// Torn tail of the active segment: the crash point. Everything
			// past the last complete frame was never acknowledged (appends
			// fsync before returning), so cutting it loses nothing accepted.
			l.truncations++
			break
		}
		valid += int64(len(rest) - len(next))
		l.index(seg, f)
		rest = next
	}
	seg.bytes = valid
	if open {
		if valid != int64(len(b)) {
			if err := os.Truncate(path, valid); err != nil {
				return fmt.Errorf("wal: truncating torn tail: %w", err)
			}
		}
		fh, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return fmt.Errorf("wal: opening active segment: %w", err)
		}
		if valid != int64(len(b)) && !l.noSync {
			if err := fh.Sync(); err != nil {
				_ = fh.Close()
				return fmt.Errorf("wal: syncing truncated segment: %w", err)
			}
		}
		l.active = fh
	}
	return nil
}

// index applies one frame to the in-memory index.
//
//cdml:locked mu — Open-time only, before the Log is shared
func (l *Log) index(home *segment, f snapstream.Frame) {
	if len(f.Payload) == 0 {
		return
	}
	switch f.Payload[0] {
	case kindData:
		if f.Version > l.lastSeq {
			l.lastSeq = f.Version
		}
		if home.firstSeq == 0 {
			home.firstSeq = f.Version
		}
		home.lastSeq = f.Version
		home.unapplied++
	case kindCommit:
		if len(f.Payload) < 9 {
			return
		}
		applied := binary.BigEndian.Uint64(f.Payload[1:9])
		l.noteCommit(f.Version, applied)
	}
}

// noteCommit records that data seq has been committed at the given publish
// version (or aborted), updating the target record's home segment.
//
//cdml:locked mu
func (l *Log) noteCommit(seq, applied uint64) {
	_, seen := l.applied[seq]
	l.applied[seq] = applied
	home := l.segmentOf(seq)
	if home == nil {
		return // target already pruned, or a foreign seq — nothing to track
	}
	if !seen {
		home.unapplied--
	}
	if applied != abortedMark && applied > home.maxApplied {
		home.maxApplied = applied
	}
}

// segmentOf returns the segment homing data seq, nil if pruned/unknown.
//
//cdml:locked mu
func (l *Log) segmentOf(seq uint64) *segment {
	for _, s := range l.segs {
		if s.firstSeq != 0 && seq >= s.firstSeq && seq <= s.lastSeq {
			return s
		}
	}
	return nil
}

// Append durably appends one chunk of encoded records stamped with the
// deployment's current publish-version watermark and returns its sequence
// number. The record is fsynced before Append returns — this is the
// durability behind the 202 ack.
func (l *Log) Append(records [][]byte, watermark uint64) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.active == nil {
		return 0, errors.New("wal: log is closed")
	}
	seq := l.lastSeq + 1
	if l.activeSegment().bytes >= l.segBytes {
		if err := l.roll(seq); err != nil {
			return 0, err
		}
	}
	if err := l.writeFrame(snapstream.Frame{Version: seq, Payload: encodeDataPayload(records, watermark)}); err != nil {
		return 0, err
	}
	if err := l.sync(); err != nil {
		return 0, err
	}
	l.lastSeq = seq
	seg := l.activeSegment()
	if seg.firstSeq == 0 {
		seg.firstSeq = seq
	}
	seg.lastSeq = seq
	seg.unapplied++
	l.appends++
	return seq, nil
}

// MarkApplied records that the tick consuming data seq published the given
// version. The commit record is buffered, not fsynced: it is made durable
// by the next append's fsync or by the checkpoint writer's Sync call
// before any checkpoint that could cover it becomes durable — losing a
// buffered commit in a crash merely replays a record whose effect was
// never checkpointed. Unknown sequence numbers (already pruned, or a
// chunk logged by a since-replaced champion) are ignored.
func (l *Log) MarkApplied(seq, version uint64) error {
	return l.commit(seq, version)
}

// MarkAborted records that data seq must never replay: its enqueue was
// rejected after the append, or its tick failed (failed async ticks are
// surfaced, not retried — replaying one on recovery would diverge from
// the uninterrupted run).
func (l *Log) MarkAborted(seq uint64) error {
	return l.commit(seq, abortedMark)
}

func (l *Log) commit(seq, applied uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.active == nil {
		return errors.New("wal: log is closed")
	}
	if l.segmentOf(seq) == nil {
		return nil
	}
	payload := make([]byte, 0, 9)
	payload = append(payload, kindCommit)
	payload = binary.BigEndian.AppendUint64(payload, applied)
	if err := l.writeFrame(snapstream.Frame{Version: seq, Payload: payload}); err != nil {
		return err
	}
	l.dirty = true
	l.noteCommit(seq, applied)
	if applied == abortedMark {
		l.aborted++
	} else {
		l.committed++
	}
	return nil
}

// Sync fsyncs buffered commit records. The checkpoint writer calls this
// before writing a checkpoint file, establishing the invariant replay
// correctness rests on: checkpoint at V durable ⇒ all commits ≤ V durable.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.active == nil || !l.dirty {
		return nil
	}
	return l.sync()
}

// Replay streams every data record that must be re-applied on top of a
// checkpoint at ckptVersion, in append order: records with no commit, or
// a commit newer than ckptVersion; aborted records are skipped. fn
// receives the record's sequence number and decoded chunk and may call
// MarkApplied as it consumes. Returns the number of records delivered.
func (l *Log) Replay(ckptVersion uint64, fn func(seq uint64, records [][]byte) error) (int, error) {
	l.mu.Lock()
	paths := make([]string, 0, len(l.segs))
	for _, s := range l.segs {
		paths = append(paths, s.path)
	}
	applied := make(map[uint64]uint64, len(l.applied))
	for k, v := range l.applied {
		applied[k] = v
	}
	l.replayed = 0
	l.mu.Unlock()

	n := 0
	for _, path := range paths {
		b, err := os.ReadFile(path)
		if err != nil {
			return n, fmt.Errorf("wal: replay read: %w", err)
		}
		name := filepath.Base(path)
		rest := b
		for len(rest) > 0 {
			f, next, err := snapstream.NextFrame(Magic, name, rest)
			if err != nil {
				// Open already truncated torn tails; hitting one here means
				// the file changed or rotted underneath us.
				return n, fmt.Errorf("wal: replay: %w", err)
			}
			rest = next
			if len(f.Payload) == 0 || f.Payload[0] != kindData {
				continue
			}
			if v, ok := applied[f.Version]; ok && (v == abortedMark || v <= ckptVersion) {
				continue
			}
			_, records, err := decodeChunk(f.Payload)
			if err != nil {
				return n, fmt.Errorf("wal: %s: seq %d: %w", name, f.Version, err)
			}
			if err := fn(f.Version, records); err != nil {
				return n, fmt.Errorf("wal: replaying seq %d: %w", f.Version, err)
			}
			n++
			l.mu.Lock()
			l.replayed++
			l.mu.Unlock()
		}
	}
	return n, nil
}

// Prune removes sealed segments whose every data record is committed at or
// below keepVersion (or aborted) — called with the oldest publish version
// the checkpoint retention still holds, so the log never outlives the
// checkpoint that subsumes it but always covers the gap past the oldest
// retained checkpoint. Only a prefix is ever removed: commits are
// appended at-or-after their data record, so dropping a prefix cannot
// orphan a commit the kept suffix needs. The active segment is never
// touched.
func (l *Log) Prune(keepVersion uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	removed := false
	for len(l.segs) > 1 && l.segs[0].sealed {
		s := l.segs[0]
		if s.unapplied > 0 || s.maxApplied > keepVersion {
			break
		}
		if err := os.Remove(s.path); err != nil {
			return fmt.Errorf("wal: pruning segment: %w", err)
		}
		for seq := s.firstSeq; s.firstSeq != 0 && seq <= s.lastSeq; seq++ {
			delete(l.applied, seq)
		}
		l.segs = l.segs[1:]
		l.prunedSegs++
		removed = true
	}
	if removed {
		if err := snapstream.SyncDir(l.dir); err != nil {
			return err
		}
	}
	return nil
}

// Close fsyncs buffered commits and closes the active segment. The log is
// unusable afterwards.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.active == nil {
		return nil
	}
	var err error
	if l.dirty {
		err = l.sync()
	}
	if cerr := l.active.Close(); err == nil && cerr != nil {
		err = fmt.Errorf("wal: closing active segment: %w", cerr)
	}
	l.active = nil
	return err
}

// Stats returns a point-in-time counter snapshot.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	st := Stats{
		LastSeq:        l.lastSeq,
		Appends:        l.appends,
		Applied:        l.committed,
		Aborted:        l.aborted,
		Replayed:       l.replayed,
		Truncations:    l.truncations,
		PrunedSegments: l.prunedSegs,
		Segments:       len(l.segs),
	}
	for _, s := range l.segs {
		st.Bytes += s.bytes
		st.Unapplied += s.unapplied
	}
	return st
}

// activeSegment returns the in-memory meta of the open segment.
//
//cdml:locked mu
func (l *Log) activeSegment() *segment {
	return l.segs[len(l.segs)-1]
}

// writeFrame appends one frame to the active segment file.
//
//cdml:locked mu
func (l *Log) writeFrame(f snapstream.Frame) error {
	b := snapstream.AppendFrameMagic(make([]byte, 0, snapstream.EncodedLen(f)), Magic, f)
	if _, err := l.active.Write(b); err != nil {
		return fmt.Errorf("wal: appending record: %w", err)
	}
	l.activeSegment().bytes += int64(len(b))
	return nil
}

// sync fsyncs the active segment and clears the dirty flag.
//
//cdml:locked mu
func (l *Log) sync() error {
	if !l.noSync {
		if err := l.active.Sync(); err != nil {
			return fmt.Errorf("wal: syncing segment: %w", err)
		}
	}
	l.dirty = false
	return nil
}

// roll seals the active segment (fsync, close, rename to the sealed name,
// dir fsync — the checkpoint writer's tmp+fsync+rename discipline, with
// the open segment playing the temp file) and starts a new one named by
// the first sequence number it will hold.
//
//cdml:locked mu
func (l *Log) roll(nextSeq uint64) error {
	if err := l.sync(); err != nil {
		return err
	}
	if err := l.active.Close(); err != nil {
		return fmt.Errorf("wal: closing segment for seal: %w", err)
	}
	l.active = nil
	seg := l.activeSegment()
	sealed := strings.TrimSuffix(seg.path, ".open")
	if err := os.Rename(seg.path, sealed); err != nil {
		return fmt.Errorf("wal: sealing segment: %w", err)
	}
	if err := snapstream.SyncDir(l.dir); err != nil {
		return err
	}
	seg.path = sealed
	seg.sealed = true
	return l.newActive(nextSeq)
}

// newActive creates the next active segment file.
//
//cdml:locked mu
func (l *Log) newActive(firstSeq uint64) error {
	path := filepath.Join(l.dir, fmt.Sprintf("%s%016d%s", segPrefix, firstSeq, openSuffix))
	fh, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("wal: creating active segment: %w", err)
	}
	if err := snapstream.SyncDir(l.dir); err != nil {
		_ = fh.Close()
		return err
	}
	l.active = fh
	l.segs = append(l.segs, &segment{path: path})
	return nil
}

// parseSegName extracts the first-sequence number from a segment file
// name and reports whether it is the active (open) segment.
func parseSegName(name string) (seq uint64, open, ok bool) {
	var core string
	switch {
	case strings.HasSuffix(name, openSuffix):
		core = strings.TrimSuffix(name, openSuffix)
		open = true
	case strings.HasSuffix(name, segSuffix):
		core = strings.TrimSuffix(name, segSuffix)
	default:
		return 0, false, false
	}
	if !strings.HasPrefix(core, segPrefix) {
		return 0, false, false
	}
	v, err := strconv.ParseUint(strings.TrimPrefix(core, segPrefix), 10, 64)
	if err != nil {
		return 0, false, false
	}
	return v, open, true
}

// encodeDataPayload builds a data record payload.
func encodeDataPayload(records [][]byte, watermark uint64) []byte {
	payload := make([]byte, 0, 13+chunkLen(records))
	payload = append(payload, kindData)
	payload = binary.BigEndian.AppendUint64(payload, watermark)
	payload = binary.BigEndian.AppendUint32(payload, uint32(len(records)))
	for _, r := range records {
		payload = binary.BigEndian.AppendUint32(payload, uint32(len(r)))
		payload = append(payload, r...)
	}
	return payload
}

// encodeDataFrame produces the full wire bytes of one data record.
func encodeDataFrame(seq uint64, records [][]byte, watermark uint64) []byte {
	f := snapstream.Frame{Version: seq, Payload: encodeDataPayload(records, watermark)}
	return snapstream.AppendFrameMagic(make([]byte, 0, snapstream.EncodedLen(f)), Magic, f)
}

// chunkLen sums the encoded size of a chunk's records.
func chunkLen(records [][]byte) int {
	n := 0
	for _, r := range records {
		n += 4 + len(r)
	}
	return n
}

// decodeChunk decodes a data record payload into its watermark and
// records.
func decodeChunk(payload []byte) (watermark uint64, records [][]byte, err error) {
	if len(payload) < 13 || payload[0] != kindData {
		return 0, nil, errors.New("wal: malformed data record")
	}
	watermark = binary.BigEndian.Uint64(payload[1:9])
	n := binary.BigEndian.Uint32(payload[9:13])
	rest := payload[13:]
	records = make([][]byte, 0, n)
	for i := uint32(0); i < n; i++ {
		if len(rest) < 4 {
			return 0, nil, errors.New("wal: truncated record length")
		}
		rl := binary.BigEndian.Uint32(rest[:4])
		rest = rest[4:]
		if uint64(len(rest)) < uint64(rl) {
			return 0, nil, errors.New("wal: truncated record body")
		}
		records = append(records, rest[:rl])
		rest = rest[rl:]
	}
	if len(rest) != 0 {
		return 0, nil, errors.New("wal: trailing bytes in data record")
	}
	return watermark, records, nil
}
