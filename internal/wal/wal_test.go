package wal

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// chunk fabricates a deterministic multi-record chunk.
func chunk(tag string, n int) [][]byte {
	out := make([][]byte, n)
	for i := range out {
		out[i] = []byte(fmt.Sprintf("%s-record-%03d", tag, i))
	}
	return out
}

// replayAll collects every record Replay delivers.
func replayAll(t *testing.T, l *Log, ckptVersion uint64) map[uint64][][]byte {
	t.Helper()
	got := map[uint64][][]byte{}
	if _, err := l.Replay(ckptVersion, func(seq uint64, records [][]byte) error {
		cp := make([][]byte, len(records))
		for i, r := range records {
			cp[i] = append([]byte(nil), r...)
		}
		got[seq] = cp
		return nil
	}); err != nil {
		t.Fatalf("Replay: %v", err)
	}
	return got
}

func TestAppendReopenReplay(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 5; i++ {
		seq, err := l.Append(chunk(fmt.Sprintf("c%d", i), 3), uint64(10+i))
		if err != nil {
			t.Fatal(err)
		}
		if seq != uint64(i) {
			t.Fatalf("seq = %d, want %d", seq, i)
		}
	}
	// Ticks consumed seqs 1-3, publishing versions 12-14.
	for i := 1; i <= 3; i++ {
		if err := l.MarkApplied(uint64(i), uint64(11+i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = l2.Close() }()
	if st := l2.Stats(); st.LastSeq != 5 || st.Unapplied != 2 {
		t.Fatalf("after reopen: LastSeq=%d Unapplied=%d, want 5 and 2", st.LastSeq, st.Unapplied)
	}

	// A checkpoint at version 13 covers seqs 1-2; seq 3 (applied at 14) and
	// the never-applied 4-5 must replay.
	got := replayAll(t, l2, 13)
	wantSeqs := []uint64{3, 4, 5}
	if len(got) != len(wantSeqs) {
		t.Fatalf("replayed %d records, want %d (%v)", len(got), len(wantSeqs), got)
	}
	for _, s := range wantSeqs {
		recs, ok := got[s]
		if !ok {
			t.Fatalf("seq %d missing from replay", s)
		}
		want := chunk(fmt.Sprintf("c%d", s), 3)
		for i := range want {
			if !bytes.Equal(recs[i], want[i]) {
				t.Fatalf("seq %d record %d = %q, want %q", s, i, recs[i], want[i])
			}
		}
	}
	// New appends continue the sequence after reopen.
	seq, err := l2.Append(chunk("c6", 1), 16)
	if err != nil {
		t.Fatal(err)
	}
	if seq != 6 {
		t.Fatalf("post-reopen seq = %d, want 6", seq)
	}
}

func TestAbortedRecordsNeverReplay(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(chunk("keep", 2), 1); err != nil {
		t.Fatal(err)
	}
	seq, err := l.Append(chunk("rejected", 2), 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.MarkAborted(seq); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = l2.Close() }()
	got := replayAll(t, l2, 0)
	if len(got) != 1 {
		t.Fatalf("replayed %d records, want 1: %v", len(got), got)
	}
	if _, ok := got[1]; !ok {
		t.Fatalf("seq 1 should replay, got %v", got)
	}
}

func TestSegmentRollAndSeal(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments force a roll every couple of appends.
	l, err := Open(Options{Dir: dir, SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	const total = 20
	for i := 1; i <= total; i++ {
		if _, err := l.Append(chunk(fmt.Sprintf("c%02d", i), 2), uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	st := l.Stats()
	if st.Segments < 3 {
		t.Fatalf("Segments = %d, want several after 20 appends at 256-byte rolls", st.Segments)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	opens := 0
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), openSuffix) {
			opens++
		}
	}
	if opens != 1 {
		t.Fatalf("open segments on disk = %d, want exactly 1", opens)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, err := Open(Options{Dir: dir, SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = l2.Close() }()
	if got := replayAll(t, l2, 0); len(got) != total {
		t.Fatalf("replayed %d records across segments, want %d", len(got), total)
	}
}

func TestTornTailTruncatedOnOpen(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 3; i++ {
		if _, err := l.Append(chunk(fmt.Sprintf("c%d", i), 2), uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Tear the last record: cut 7 bytes off the active segment, simulating
	// a crash mid-append before the fsync completed.
	open := activeSegPath(t, dir)
	fi, err := os.Stat(open)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(open, fi.Size()-7); err != nil {
		t.Fatal(err)
	}

	l2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatalf("Open after torn tail: %v", err)
	}
	defer func() { _ = l2.Close() }()
	if st := l2.Stats(); st.Truncations != 1 {
		t.Fatalf("Truncations = %d, want 1", st.Truncations)
	}
	got := replayAll(t, l2, 0)
	if len(got) != 2 {
		t.Fatalf("replayed %d records, want the 2 before the torn tail: %v", len(got), got)
	}
	if _, ok := got[3]; ok {
		t.Fatal("torn seq 3 must not replay")
	}
	// The log keeps appending after truncation; the torn sequence number is
	// reused because its predecessor never became durable.
	seq, err := l2.Append(chunk("c3b", 2), 3)
	if err != nil {
		t.Fatal(err)
	}
	if seq != 3 {
		t.Fatalf("seq after truncation = %d, want 3", seq)
	}
}

func TestTornSealedSegmentIsCorruption(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(Options{Dir: dir, SegmentBytes: 128})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 6; i++ {
		if _, err := l.Append(chunk(fmt.Sprintf("c%d", i), 2), uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	var sealed string
	entries, _ := os.ReadDir(dir)
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), segSuffix) && !strings.HasSuffix(e.Name(), openSuffix) {
			sealed = filepath.Join(dir, e.Name())
			break
		}
	}
	if sealed == "" {
		t.Fatal("no sealed segment produced")
	}
	fi, err := os.Stat(sealed)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(sealed, fi.Size()-3); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(Options{Dir: dir, SegmentBytes: 128}); err == nil {
		t.Fatal("Open must fail on a torn sealed segment")
	}
}

func TestPruneDropsFullyCoveredPrefix(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(Options{Dir: dir, SegmentBytes: 128})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = l.Close() }()
	const total = 12
	for i := 1; i <= total; i++ {
		seq, err := l.Append(chunk(fmt.Sprintf("c%02d", i), 2), uint64(i))
		if err != nil {
			t.Fatal(err)
		}
		if err := l.MarkApplied(seq, uint64(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	before := l.Stats()
	if before.Segments < 3 {
		t.Fatalf("want several segments, got %d", before.Segments)
	}
	// A checkpoint retention floor mid-way: segments whose records all
	// committed at or below it are reclaimed; later ones survive.
	if err := l.Prune(uint64(total/2 + 1)); err != nil {
		t.Fatal(err)
	}
	after := l.Stats()
	if after.PrunedSegments == 0 || after.Segments >= before.Segments {
		t.Fatalf("prune removed nothing: before=%d after=%d", before.Segments, after.Segments)
	}
	// Everything past the floor still replays.
	got := replayAll(t, l, uint64(total/2+1))
	for i := total/2 + 1; i <= total; i++ {
		if _, ok := got[uint64(i)]; !ok {
			t.Fatalf("seq %d lost by prune (got %v)", i, got)
		}
	}
	// The active segment survives any floor.
	if err := l.Prune(^uint64(0) - 1); err != nil {
		t.Fatal(err)
	}
	if st := l.Stats(); st.Segments < 1 {
		t.Fatal("prune removed the active segment")
	}
}

func TestConcurrentAppendAndCommit(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(Options{Dir: dir, SegmentBytes: 512, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	const (
		writers = 4
		each    = 25
	)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				seq, err := l.Append(chunk(fmt.Sprintf("w%d-%d", w, i), 1), 0)
				if err != nil {
					t.Errorf("Append: %v", err)
					return
				}
				if i%2 == 0 {
					if err := l.MarkApplied(seq, seq+1); err != nil {
						t.Errorf("MarkApplied: %v", err)
						return
					}
				}
				_ = l.Stats()
			}
		}(w)
	}
	wg.Wait()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, err := Open(Options{Dir: dir, SegmentBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = l2.Close() }()
	st := l2.Stats()
	if st.LastSeq != writers*each {
		t.Fatalf("LastSeq = %d, want %d", st.LastSeq, writers*each)
	}
	committed := writers * (each/2 + each%2) // i%2==0 marks 13 of 25
	if st.Unapplied != writers*each-committed {
		t.Fatalf("Unapplied = %d, want %d", st.Unapplied, writers*each-committed)
	}
}

func TestCommitForUnknownSeqIsIgnored(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = l.Close() }()
	if err := l.MarkApplied(99, 5); err != nil {
		t.Fatalf("MarkApplied(unknown): %v", err)
	}
	if err := l.MarkAborted(42); err != nil {
		t.Fatalf("MarkAborted(unknown): %v", err)
	}
	if st := l.Stats(); st.Applied != 0 || st.Aborted != 0 || st.Bytes != 0 {
		t.Fatalf("unknown-seq commits must be no-ops, got %+v", st)
	}
}

// TestChaosWALTornTailAfterKill simulates the full crash shape under the
// chaos banner: a writer killed mid-append leaves a torn tail; reopening
// truncates exactly that record and replays every earlier one.
func TestChaosWALTornTailAfterKill(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos test: skipped in -short")
	}
	dir := t.TempDir()
	l, err := Open(Options{Dir: dir, SegmentBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	const accepted = 9
	for i := 1; i <= accepted; i++ {
		if _, err := l.Append(chunk(fmt.Sprintf("c%d", i), 3), uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Simulate the kill: no Close, and the in-flight record (never
	// acknowledged) persists only partially.
	open := activeSegPath(t, dir)
	partial := appendPartialRecord(t, open)

	l2, err := Open(Options{Dir: dir, SegmentBytes: 512})
	if err != nil {
		t.Fatalf("recovery Open: %v", err)
	}
	defer func() { _ = l2.Close() }()
	st := l2.Stats()
	if st.Truncations != 1 {
		t.Fatalf("Truncations = %d, want 1 (partial %d bytes)", st.Truncations, partial)
	}
	got := replayAll(t, l2, 0)
	if len(got) != accepted {
		t.Fatalf("replayed %d records, want all %d accepted before the kill", len(got), accepted)
	}
}

// activeSegPath finds the one .seg.open file in dir.
func activeSegPath(t *testing.T, dir string) string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), openSuffix) {
			return filepath.Join(dir, e.Name())
		}
	}
	t.Fatal("no active segment found")
	return ""
}

// appendPartialRecord writes the first half of a valid frame to the end of
// path, returning how many bytes landed.
func appendPartialRecord(t *testing.T, path string) int {
	t.Helper()
	full := encodeDataFrame(999, chunk("torn", 3), 7)
	half := full[:len(full)/2]
	fh, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fh.Write(half); err != nil {
		t.Fatal(err)
	}
	if err := fh.Close(); err != nil {
		t.Fatal(err)
	}
	return len(half)
}
