package data

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"cdml/internal/obs"
)

var errFlaky = errors.New("transient backend failure")

// recordingSleep captures the backoff schedule without wall-clock waits.
type recordingSleep struct {
	mu     sync.Mutex
	delays []time.Duration
}

func (rs *recordingSleep) sleep(ctx context.Context, d time.Duration) error {
	rs.mu.Lock()
	rs.delays = append(rs.delays, d)
	rs.mu.Unlock()
	return ctx.Err()
}

func newTestRetry(base Backend, attempts int) (*RetryBackend, *recordingSleep) {
	rs := &recordingSleep{}
	r := NewRetryBackend(base, RetryPolicy{
		MaxAttempts: attempts,
		BaseDelay:   10 * time.Millisecond,
		MaxDelay:    80 * time.Millisecond,
		Sleep:       rs.sleep,
	})
	return r, rs
}

func TestRetryHealsTransientErrors(t *testing.T) {
	fb := NewFaultBackend(NewMemoryBackend())
	r, rs := newTestRetry(fb, 4)
	fb.FailN(OpPutRaw, 2, errFlaky)

	if err := r.PutRaw(RawChunk{ID: 1, Records: [][]byte{[]byte("a")}}); err != nil {
		t.Fatalf("transient errors not healed: %v", err)
	}
	if got := r.Retries(OpPutRaw); got != 2 {
		t.Fatalf("retries = %d, want 2", got)
	}
	if got := r.Giveups(OpPutRaw); got != 0 {
		t.Fatalf("giveups = %d, want 0", got)
	}
	if len(rs.delays) != 2 {
		t.Fatalf("sleeps = %d, want 2", len(rs.delays))
	}
	// The chunk really landed on the base backend.
	if _, err := r.GetRaw(1); err != nil {
		t.Fatalf("chunk lost after retried put: %v", err)
	}
}

func TestRetryExhaustsBudgetAndGivesUp(t *testing.T) {
	fb := NewFaultBackend(NewMemoryBackend())
	r, rs := newTestRetry(fb, 3)
	fb.FailN(OpGetFeatures, 100, errFlaky)
	if err := r.PutFeatures(FeatureChunk{ID: 7}); err != nil {
		t.Fatal(err)
	}

	_, err := r.GetFeatures(7)
	if err == nil {
		t.Fatal("exhausted retries reported success")
	}
	if !errors.Is(err, errFlaky) {
		t.Fatalf("cause lost: %v", err)
	}
	if !strings.Contains(err.Error(), "after 3 attempts") {
		t.Fatalf("attempt count missing from error: %v", err)
	}
	if got := r.Giveups(OpGetFeatures); got != 1 {
		t.Fatalf("giveups = %d, want 1", got)
	}
	if got := r.Retries(OpGetFeatures); got != 2 {
		t.Fatalf("retries = %d, want 2 (attempts-1)", got)
	}
	if len(rs.delays) != 2 {
		t.Fatalf("sleeps = %d, want 2", len(rs.delays))
	}
}

func TestRetryBackoffDoublesAndCaps(t *testing.T) {
	fb := NewFaultBackend(NewMemoryBackend())
	rs := &recordingSleep{}
	r := NewRetryBackend(fb, RetryPolicy{
		MaxAttempts: 6,
		BaseDelay:   10 * time.Millisecond,
		MaxDelay:    40 * time.Millisecond,
		JitterFrac:  -1, // negative disables jitter: exact schedule asserted
		Sleep:       rs.sleep,
	})
	fb.FailN(OpPutRaw, 100, errFlaky)

	if err := r.PutRaw(RawChunk{ID: 1}); err == nil {
		t.Fatal("want failure")
	}
	want := []time.Duration{10, 20, 40, 40, 40}
	for i := range want {
		want[i] *= time.Millisecond
	}
	if len(rs.delays) != len(want) {
		t.Fatalf("delays %v, want %v", rs.delays, want)
	}
	for i := range want {
		if rs.delays[i] != want[i] {
			t.Fatalf("delay[%d] = %v, want %v (schedule %v)", i, rs.delays[i], want[i], rs.delays)
		}
	}
}

func TestRetryJitterIsDeterministicUnderSeededSource(t *testing.T) {
	schedule := func() []time.Duration {
		fb := NewFaultBackend(NewMemoryBackend())
		rs := &recordingSleep{}
		r := NewRetryBackend(fb, RetryPolicy{
			MaxAttempts: 5,
			BaseDelay:   10 * time.Millisecond,
			MaxDelay:    time.Second,
			JitterFrac:  0.5,
			Sleep:       rs.sleep,
		})
		fb.FailN(OpPutRaw, 100, errFlaky)
		if err := r.PutRaw(RawChunk{ID: 1}); err == nil {
			t.Fatal("want failure")
		}
		return rs.delays
	}
	a, b := schedule(), schedule()
	if len(a) != len(b) || len(a) == 0 {
		t.Fatalf("schedules %v vs %v", a, b)
	}
	jittered := false
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("seeded jitter not deterministic: %v vs %v", a, b)
		}
		base := 10 * time.Millisecond << i
		if a[i] != base {
			jittered = true
		}
	}
	if !jittered {
		t.Fatalf("jitter never moved a delay off the base schedule: %v", a)
	}
}

func TestRetryDoesNotRetryNotFound(t *testing.T) {
	r, rs := newTestRetry(NewMemoryBackend(), 4)
	if _, err := r.GetRaw(42); !errors.Is(err, ErrNotFound) {
		t.Fatalf("want ErrNotFound, got %v", err)
	}
	if len(rs.delays) != 0 {
		t.Fatalf("ErrNotFound was retried %d times", len(rs.delays))
	}
	if r.TotalRetries() != 0 {
		t.Fatalf("retries = %d, want 0", r.TotalRetries())
	}
}

func TestRetryCanceledContextAbortsBackoff(t *testing.T) {
	fb := NewFaultBackend(NewMemoryBackend())
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	r := NewRetryBackend(fb, RetryPolicy{MaxAttempts: 4, BaseDelay: time.Millisecond},
		WithRetryContext(ctx))
	fb.FailN(OpPutRaw, 100, errFlaky)

	start := time.Now()
	err := r.PutRaw(RawChunk{ID: 1})
	if err == nil {
		t.Fatal("want failure")
	}
	if !errors.Is(err, errFlaky) {
		t.Fatalf("original cause lost: %v", err)
	}
	if el := time.Since(start); el > time.Second {
		t.Fatalf("canceled context still slept %v", el)
	}
	if got := r.Giveups(OpPutRaw); got != 1 {
		t.Fatalf("giveups = %d, want 1", got)
	}
}

func TestRetryMetricsExposition(t *testing.T) {
	fb := NewFaultBackend(NewMemoryBackend())
	r, _ := newTestRetry(fb, 2)
	fb.FailN(OpPutRaw, 100, errFlaky)
	if err := r.PutRaw(RawChunk{ID: 1}); err == nil {
		t.Fatal("want failure")
	}

	reg := obs.NewRegistry()
	r.Instrument(reg)
	var sb strings.Builder
	if err := reg.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`cdml_store_retries_total{op="put_raw"} 1`,
		`cdml_store_giveups_total{op="put_raw"} 1`,
		`cdml_store_retries_total{op="get_raw"} 0`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestChaosRetryUnderConcurrentFaultRate(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos suite runs via make chaos")
	}
	fb := NewFaultBackend(NewMemoryBackend())
	// 20% failure rate against a 12-attempt budget: (0.2)^12 ≈ 4e-9 residual
	// failure probability per op, ~3e-6 across the whole run's 640 ops — the
	// suite asserts full healing, so the budget must make residual failure
	// negligible (a 6-attempt budget at 30% would flake almost every other
	// run: 0.3^6 × 640 ≈ 0.47 expected failures).
	fb.FailRate(OpAll, 0.2, errFlaky, 99)
	r := NewRetryBackend(fb, RetryPolicy{
		MaxAttempts: 12,
		BaseDelay:   time.Microsecond,
		MaxDelay:    10 * time.Microsecond,
	})

	var wg sync.WaitGroup
	errCh := make(chan error, 64)
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				id := Timestamp(g*1000 + i)
				if err := r.PutRaw(RawChunk{ID: id, Records: [][]byte{[]byte("x")}}); err != nil {
					errCh <- fmt.Errorf("put %d: %w", id, err)
					return
				}
				if _, err := r.GetRaw(id); err != nil {
					errCh <- fmt.Errorf("get %d: %w", id, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
	if r.TotalRetries() == 0 {
		t.Fatal("fault rate injected nothing; chaos test is vacuous")
	}
}
