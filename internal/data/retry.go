package data

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"cdml/internal/obs"
)

// Op identifies one Backend operation for fault injection and retry
// accounting. The string values double as the metric label.
type Op string

// Backend operations.
const (
	OpPutRaw         Op = "put_raw"
	OpGetRaw         Op = "get_raw"
	OpPutFeatures    Op = "put_features"
	OpGetFeatures    Op = "get_features"
	OpDeleteFeatures Op = "delete_features"
	OpDeleteRaw      Op = "delete_raw"
)

// numOps sizes the per-operation counter arrays.
const numOps = 6

// ops lists every retried operation in metric-label order.
var ops = [numOps]Op{OpPutRaw, OpGetRaw, OpPutFeatures, OpGetFeatures, OpDeleteFeatures, OpDeleteRaw}

// opIndex maps an Op to its counter slot.
func opIndex(op Op) int {
	for i, o := range ops {
		if o == op {
			return i
		}
	}
	return 0
}

// RetryPolicy bounds the retry loop of a RetryBackend. The zero value is
// usable: DefaultRetryPolicy() fills every unset field.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries per operation, including the
	// first (default 4; 1 disables retrying).
	MaxAttempts int
	// BaseDelay is the backoff before the first retry (default 10ms); it
	// doubles after every failed attempt up to MaxDelay (default 1s).
	BaseDelay time.Duration
	MaxDelay  time.Duration
	// JitterFrac spreads each delay uniformly over ±JitterFrac·delay
	// (default 0.2) so synchronized retries do not stampede a recovering
	// backend. Jitter draws from Rand, making backoff sequences
	// deterministic under a seeded source.
	JitterFrac float64
	// Rand supplies jitter randomness in [0,1). nil defaults to a private
	// seeded source (deterministic per backend, safe for concurrent use).
	Rand func() float64
	// Sleep waits between attempts; nil defaults to a context-aware timer
	// sleep. Tests inject a recording fake to assert the backoff schedule
	// without wall-clock waits.
	Sleep func(ctx context.Context, d time.Duration) error
}

// DefaultRetryPolicy returns the policy used when fields are unset.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{
		MaxAttempts: 4,
		BaseDelay:   10 * time.Millisecond,
		MaxDelay:    time.Second,
		JitterFrac:  0.2,
	}
}

// withDefaults fills unset fields from DefaultRetryPolicy.
func (p RetryPolicy) withDefaults() RetryPolicy {
	def := DefaultRetryPolicy()
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = def.MaxAttempts
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = def.BaseDelay
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = def.MaxDelay
	}
	if p.JitterFrac < 0 {
		p.JitterFrac = 0
		//lint:allow floateq: the exact zero value is the "use default" sentinel; negatives disable jitter above
	} else if p.JitterFrac == 0 {
		p.JitterFrac = def.JitterFrac
	}
	return p
}

// RetryBackend decorates any Backend with bounded exponential-backoff
// retries, healing transient storage errors (a flaky disk, a briefly
// unreachable store) before they fail a whole training tick. Permanent
// conditions pass through untouched: ErrNotFound is the protocol for "chunk
// absent" and is never retried, and a canceled context aborts the backoff
// sleep immediately.
//
// The decorator sits under TieredBackend in the default stack — cache hits
// never pay a retry check; only real base-backend IO does.
type RetryBackend struct {
	base Backend
	pol  RetryPolicy
	ctx  context.Context

	retries [numOps]atomic.Int64
	giveups [numOps]atomic.Int64
}

// RetryOption configures a RetryBackend.
type RetryOption func(*RetryBackend)

// WithRetryContext cancels in-flight backoff sleeps when ctx is done —
// typically the deployment's lifecycle context, so a draining server never
// sits out a multi-second backoff.
func WithRetryContext(ctx context.Context) RetryOption {
	return func(r *RetryBackend) { r.ctx = ctx }
}

// NewRetryBackend wraps base with the given retry policy (zero-value fields
// take defaults; see RetryPolicy).
//
//cdml:detached default backoff lifetime when no WithRetryContext is supplied; the deployment passes its lifecycle ctx
func NewRetryBackend(base Backend, pol RetryPolicy, opts ...RetryOption) *RetryBackend {
	r := &RetryBackend{base: base, pol: pol.withDefaults(), ctx: context.Background()}
	for _, o := range opts {
		o(r)
	}
	if r.pol.Rand == nil {
		src := rand.New(rand.NewSource(1))
		var mu sync.Mutex
		r.pol.Rand = func() float64 {
			mu.Lock()
			defer mu.Unlock()
			return src.Float64()
		}
	}
	if r.pol.Sleep == nil {
		r.pol.Sleep = sleepCtx
	}
	return r
}

// sleepCtx waits d or until ctx is done, whichever comes first.
func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// retryable reports whether an error is worth another attempt. ErrNotFound
// is the backend protocol for an absent chunk — retrying cannot make it
// appear — and context errors mean the caller is gone.
func retryable(err error) bool {
	return err != nil &&
		!errors.Is(err, ErrNotFound) &&
		!errors.Is(err, context.Canceled) &&
		!errors.Is(err, context.DeadlineExceeded)
}

// do runs f under the retry policy, counting retries and give-ups per op.
func (r *RetryBackend) do(op Op, f func() error) error {
	k := opIndex(op)
	delay := r.pol.BaseDelay
	var err error
	for attempt := 1; ; attempt++ {
		err = f()
		if !retryable(err) {
			return err // success, not-found, or cancellation: pass through
		}
		if attempt >= r.pol.MaxAttempts {
			r.giveups[k].Add(1)
			return fmt.Errorf("data: %s failed after %d attempts: %w", op, attempt, err)
		}
		r.retries[k].Add(1)
		if serr := r.pol.Sleep(r.ctx, r.jitter(delay)); serr != nil {
			r.giveups[k].Add(1)
			return fmt.Errorf("data: %s retry canceled after %d attempts: %w", op, attempt, err)
		}
		delay = min(delay*2, r.pol.MaxDelay)
	}
}

// jitter spreads d uniformly over ±JitterFrac·d.
func (r *RetryBackend) jitter(d time.Duration) time.Duration {
	if r.pol.JitterFrac <= 0 {
		return d
	}
	spread := (2*r.pol.Rand() - 1) * r.pol.JitterFrac // in [-JitterFrac, +JitterFrac)
	return time.Duration(float64(d) * (1 + spread))
}

// Retries returns the cumulative retry count of one operation.
func (r *RetryBackend) Retries(op Op) int64 { return r.retries[opIndex(op)].Load() }

// Giveups returns the cumulative give-up count (retry budget exhausted or
// backoff canceled) of one operation.
func (r *RetryBackend) Giveups(op Op) int64 { return r.giveups[opIndex(op)].Load() }

// TotalRetries sums retries across all operations.
func (r *RetryBackend) TotalRetries() int64 {
	var n int64
	for i := range r.retries {
		n += r.retries[i].Load()
	}
	return n
}

// Instrument registers per-operation retry/give-up counters with reg, read
// at scrape time from the backend's atomics.
func (r *RetryBackend) Instrument(reg *obs.Registry) {
	for i, op := range ops {
		i := i
		reg.CounterFunc("cdml_store_retries_total",
			"Storage operations retried after a transient backend error.",
			func() float64 { return float64(r.retries[i].Load()) },
			obs.L("op", string(op)))
		reg.CounterFunc("cdml_store_giveups_total",
			"Storage operations that exhausted their retry budget.",
			func() float64 { return float64(r.giveups[i].Load()) },
			obs.L("op", string(op)))
	}
}

// PutRaw implements Backend with retries.
func (r *RetryBackend) PutRaw(rc RawChunk) error {
	return r.do(OpPutRaw, func() error { return r.base.PutRaw(rc) })
}

// GetRaw implements Backend with retries.
func (r *RetryBackend) GetRaw(id Timestamp) (RawChunk, error) {
	var rc RawChunk
	err := r.do(OpGetRaw, func() error {
		var e error
		rc, e = r.base.GetRaw(id)
		return e
	})
	return rc, err
}

// PutFeatures implements Backend with retries.
func (r *RetryBackend) PutFeatures(fc FeatureChunk) error {
	return r.do(OpPutFeatures, func() error { return r.base.PutFeatures(fc) })
}

// GetFeatures implements Backend with retries.
func (r *RetryBackend) GetFeatures(id Timestamp) (FeatureChunk, error) {
	var fc FeatureChunk
	err := r.do(OpGetFeatures, func() error {
		var e error
		fc, e = r.base.GetFeatures(id)
		return e
	})
	return fc, err
}

// DeleteFeatures implements Backend with retries.
func (r *RetryBackend) DeleteFeatures(id Timestamp) error {
	return r.do(OpDeleteFeatures, func() error { return r.base.DeleteFeatures(id) })
}

// DeleteRaw retries raw-chunk deletion when the base backend supports it.
func (r *RetryBackend) DeleteRaw(id Timestamp) error {
	dr, ok := r.base.(rawDeleter)
	if !ok {
		return nil
	}
	return r.do(OpDeleteRaw, func() error { return dr.DeleteRaw(id) })
}

// Close implements Backend (no retry: closing is best-effort teardown).
func (r *RetryBackend) Close() error { return r.base.Close() }
