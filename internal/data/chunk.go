package data

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"cdml/internal/linalg"
)

// Timestamp identifies a chunk. It is assigned monotonically at chunk
// creation, so it is simultaneously the chunk's unique identifier and its
// recency indicator (paper §3, stage 1).
type Timestamp int64

// Instance is one preprocessed training example: a feature vector and its
// label.
type Instance struct {
	X linalg.Vector
	Y float64
}

// RawChunk is a discretized slice of the incoming raw training stream. Raw
// chunks are always retained; feature chunks can be re-materialized from
// them.
type RawChunk struct {
	ID      Timestamp
	Records [][]byte
}

// FeatureChunk holds the preprocessed features of one raw chunk together
// with a reference to the originating raw chunk.
type FeatureChunk struct {
	ID        Timestamp
	RawID     Timestamp
	Instances []Instance
}

func init() {
	gob.Register(linalg.Dense{})
	gob.Register(&linalg.Sparse{})
}

// EncodeFeatureChunk serializes a feature chunk with encoding/gob; the disk
// backend uses it so evicted/rematerialized chunks pay a realistic
// serialization + IO cost.
func EncodeFeatureChunk(fc FeatureChunk) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(fc); err != nil {
		return nil, fmt.Errorf("data: encoding feature chunk %d: %w", fc.ID, err)
	}
	return buf.Bytes(), nil
}

// DecodeFeatureChunk deserializes a feature chunk produced by
// EncodeFeatureChunk.
func DecodeFeatureChunk(b []byte) (FeatureChunk, error) {
	var fc FeatureChunk
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&fc); err != nil {
		return FeatureChunk{}, fmt.Errorf("data: decoding feature chunk: %w", err)
	}
	return fc, nil
}

// EncodeRawChunk serializes a raw chunk.
func EncodeRawChunk(rc RawChunk) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(rc); err != nil {
		return nil, fmt.Errorf("data: encoding raw chunk %d: %w", rc.ID, err)
	}
	return buf.Bytes(), nil
}

// DecodeRawChunk deserializes a raw chunk produced by EncodeRawChunk.
func DecodeRawChunk(b []byte) (RawChunk, error) {
	var rc RawChunk
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&rc); err != nil {
		return RawChunk{}, fmt.Errorf("data: decoding raw chunk: %w", err)
	}
	return rc, nil
}

// FeatureBytes estimates the in-memory footprint of a feature chunk in
// bytes, counting 8 bytes per stored value plus 4 per sparse index. This is
// the quantity the storage-requirement analysis of paper §3.2.1 bounds: with
// sparse encodings every supported component keeps the footprint linear in
// the input size.
func FeatureBytes(instances []Instance) int64 {
	var total int64
	for _, ins := range instances {
		switch x := ins.X.(type) {
		case *linalg.Sparse:
			total += int64(len(x.Val))*8 + int64(len(x.Idx))*4
		default:
			total += int64(x.Dim()) * 8
		}
		total += 8 // label
	}
	return total
}
