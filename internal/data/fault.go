// Fault injection for storage chaos tests. FaultBackend wraps any Backend
// with programmable failpoints — fail the next N calls, fail a seeded
// fraction of calls, or delay calls — so tests can prove that transient
// errors heal through RetryBackend, that exhausted retries surface as one
// clean failed tick, and that recovery machinery tolerates a misbehaving
// store. It lives in the main build (not a _test file) so chaos suites in
// other packages and future load-testing binaries can reuse it; production
// stacks simply never construct one.

package data

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// OpAll targets every backend operation when installing a fault rule.
const OpAll Op = "*"

// faultRule is one armed failpoint.
type faultRule struct {
	op        Op    // operation it applies to (OpAll matches everything)
	remaining int64 // >0: fail this many more matching calls; -1: unlimited
	rate      float64
	rnd       func() float64
	err       error
	delay     time.Duration
}

// FaultBackend injects failures and latency into a wrapped Backend.
// All methods are safe for concurrent use; rule installation may race with
// in-flight operations (that is the point of a chaos test).
type FaultBackend struct {
	base Backend

	mu    sync.Mutex
	rules []*faultRule //cdml:guardedby mu

	injected atomic.Int64 // errors injected
	delayed  atomic.Int64 // delays injected
}

// NewFaultBackend wraps base with no failpoints armed: until a Fail* or
// Delay rule is installed it is a transparent pass-through.
func NewFaultBackend(base Backend) *FaultBackend {
	return &FaultBackend{base: base}
}

// FailN arms a failpoint: the next n matching calls return err instead of
// reaching the base backend. Use OpAll to match every operation.
func (f *FaultBackend) FailN(op Op, n int, err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.rules = append(f.rules, &faultRule{op: op, remaining: int64(n), err: err})
}

// FailRate arms a probabilistic failpoint: each matching call fails with
// probability p, drawn from the seeded source so chaos runs replay
// identically. The rule stays armed until Reset.
func (f *FaultBackend) FailRate(op Op, p float64, err error, seed int64) {
	src := rand.New(rand.NewSource(seed))
	var mu sync.Mutex
	rnd := func() float64 {
		mu.Lock()
		defer mu.Unlock()
		return src.Float64()
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	f.rules = append(f.rules, &faultRule{op: op, remaining: -1, rate: p, rnd: rnd, err: err})
}

// Delay arms a latency failpoint: every matching call sleeps d before
// reaching the base backend (models a slow disk or overloaded store).
func (f *FaultBackend) Delay(op Op, d time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.rules = append(f.rules, &faultRule{op: op, remaining: -1, delay: d})
}

// Reset disarms every failpoint.
func (f *FaultBackend) Reset() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.rules = nil
}

// Injected returns the number of errors injected so far.
func (f *FaultBackend) Injected() int64 { return f.injected.Load() }

// check consults the armed rules for op: it applies at most one delay and
// returns the first matching injected error.
func (f *FaultBackend) check(op Op) error {
	var (
		delay time.Duration
		err   error
	)
	f.mu.Lock()
	for _, r := range f.rules {
		if r.op != OpAll && r.op != op {
			continue
		}
		if r.delay > 0 && delay == 0 {
			delay = r.delay
		}
		if err != nil || r.err == nil {
			continue
		}
		switch {
		case r.remaining > 0:
			r.remaining--
			err = r.err
		case r.remaining < 0 && r.rnd != nil && r.rnd() < r.rate:
			err = r.err
		}
	}
	f.mu.Unlock()
	if delay > 0 {
		f.delayed.Add(1)
		time.Sleep(delay)
	}
	if err != nil {
		f.injected.Add(1)
	}
	return err
}

// PutRaw implements Backend.
func (f *FaultBackend) PutRaw(rc RawChunk) error {
	if err := f.check(OpPutRaw); err != nil {
		return err
	}
	return f.base.PutRaw(rc)
}

// GetRaw implements Backend.
func (f *FaultBackend) GetRaw(id Timestamp) (RawChunk, error) {
	if err := f.check(OpGetRaw); err != nil {
		return RawChunk{}, err
	}
	return f.base.GetRaw(id)
}

// PutFeatures implements Backend.
func (f *FaultBackend) PutFeatures(fc FeatureChunk) error {
	if err := f.check(OpPutFeatures); err != nil {
		return err
	}
	return f.base.PutFeatures(fc)
}

// GetFeatures implements Backend.
func (f *FaultBackend) GetFeatures(id Timestamp) (FeatureChunk, error) {
	if err := f.check(OpGetFeatures); err != nil {
		return FeatureChunk{}, err
	}
	return f.base.GetFeatures(id)
}

// DeleteFeatures implements Backend.
func (f *FaultBackend) DeleteFeatures(id Timestamp) error {
	if err := f.check(OpDeleteFeatures); err != nil {
		return err
	}
	return f.base.DeleteFeatures(id)
}

// DeleteRaw injects into raw deletion when the base supports it.
func (f *FaultBackend) DeleteRaw(id Timestamp) error {
	dr, ok := f.base.(rawDeleter)
	if !ok {
		return nil
	}
	if err := f.check(OpDeleteRaw); err != nil {
		return err
	}
	return dr.DeleteRaw(id)
}

// Close implements Backend (never injected: teardown should stay clean).
func (f *FaultBackend) Close() error { return f.base.Close() }
