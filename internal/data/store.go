package data

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"cdml/internal/obs"
)

// ErrOverQuota is the sentinel matched by errors.Is for quota rejections:
// an ingest that would grow the store past its operator-set ceiling. It is
// a client-visible backpressure signal, not corruption — the store and the
// deployment remain fully usable.
var ErrOverQuota = errors.New("data: store over quota")

// QuotaError is the typed rejection AppendRaw returns when a store quota
// is exceeded. It matches ErrOverQuota via errors.Is so callers can branch
// without losing the limit/usage detail.
type QuotaError struct {
	// Limit is the configured ceiling on retained raw chunks.
	Limit int
	// Have is the number of raw chunks retained when the ingest arrived.
	Have int
}

func (e *QuotaError) Error() string {
	return fmt.Sprintf("data: store over quota: %d raw chunks retained, limit %d", e.Have, e.Limit)
}

// Is reports QuotaError as an ErrOverQuota so errors.Is works across the
// wrapped chain.
func (e *QuotaError) Is(target error) bool { return target == ErrOverQuota }

// MatStats accumulates materialization-utilization accounting across
// sampling operations. The empirical μ of paper §3.2.2 / Table 4 is
// Hits / (Hits + Misses) averaged per operation.
type MatStats struct {
	// Hits counts sampled chunks that were materialized.
	Hits int64
	// Misses counts sampled chunks that required re-materialization.
	Misses int64
	// Ops counts sampling operations.
	Ops int64
	// MuSum accumulates the per-operation materialized ratio; MuSum/Ops is
	// the average materialization utilization rate μ.
	MuSum float64
	// Evictions counts feature chunks evicted by the capacity policy.
	Evictions int64
	// Rematerializations counts feature chunks rebuilt from raw chunks.
	Rematerializations int64
}

// Mu returns the average per-operation materialization utilization rate, or
// 1 when no sampling operation has happened (nothing needed
// re-materialization).
func (s *MatStats) Mu() float64 {
	if s.Ops == 0 {
		return 1
	}
	return s.MuSum / float64(s.Ops)
}

// Store is the data manager's chunk store: raw chunks are always retained,
// while at most Capacity feature chunks stay materialized. When the cap is
// exceeded the oldest feature chunks are evicted — only the identifier and
// the reference to the raw chunk survive — and a later sample hitting an
// evicted chunk triggers dynamic re-materialization by the caller
// (paper §3.2).
type Store struct {
	mu      sync.Mutex
	backend Backend
	// capacity is the maximum number of materialized feature chunks (m in
	// the paper's analysis). Negative means unlimited.
	capacity int
	// rawCapacity bounds the number of retained raw chunks (N in the
	// paper's analysis: "the size of the storage unit dedicated for raw
	// data chunks"). When exceeded the oldest raw chunks are dropped and
	// the platform simply ignores them during sampling (§3.2). Negative
	// means unlimited.
	rawCapacity int
	// restoreOnRematerialize controls whether a re-materialized chunk is
	// stored again (evicting others) or used once and discarded. The
	// default, false, keeps the materialized set equal to the newest m
	// chunks, matching the μ analysis of §3.2.2.
	restoreOnRematerialize bool
	// quota is the operator-set hard ceiling on retained raw chunks: unlike
	// rawCapacity, which silently evicts the oldest chunks (the paper's N),
	// reaching the quota rejects further ingest with a QuotaError — the
	// per-deployment resource boundary a multi-tenant registry enforces.
	// 0 or negative disables it.
	quota int //cdml:guardedby mu

	rawIDs       []Timestamp        //cdml:guardedby mu — all raw chunk ids, increasing
	materialized []Timestamp        //cdml:guardedby mu — ids of materialized feature chunks, increasing
	isMat        map[Timestamp]bool //cdml:guardedby mu — membership index for materialized
	next         Timestamp          //cdml:guardedby mu — next id to assign
	stats        MatStats           //cdml:guardedby mu
}

// StoreOption configures a Store.
type StoreOption func(*Store)

// WithCapacity bounds the number of materialized feature chunks to m.
// Negative means unlimited (the default).
func WithCapacity(m int) StoreOption {
	return func(s *Store) { s.capacity = m }
}

// WithRestoreOnRematerialize re-stores chunks after dynamic
// re-materialization instead of using them once and discarding them.
func WithRestoreOnRematerialize() StoreOption {
	return func(s *Store) { s.restoreOnRematerialize = true }
}

// WithRawCapacity bounds the number of retained raw chunks to n (the
// paper's N). Older raw chunks are dropped together with their feature
// chunks; sampling never sees them again. Negative means unlimited (the
// default).
func WithRawCapacity(n int) StoreOption {
	return func(s *Store) { s.rawCapacity = n }
}

// WithQuota sets a hard ceiling on retained raw chunks: an AppendRaw that
// would exceed it is rejected with a QuotaError (errors.Is ErrOverQuota)
// instead of evicting. 0 or negative disables the quota (the default).
func WithQuota(n int) StoreOption {
	return func(s *Store) { s.quota = n } //lint:allow guardedby: options run inside NewStore before the store is published to any other goroutine
}

// NewStore returns a store over the given backend.
func NewStore(b Backend, opts ...StoreOption) *Store {
	s := &Store{backend: b, capacity: -1, rawCapacity: -1, isMat: make(map[Timestamp]bool)}
	for _, o := range opts {
		o(s)
	}
	return s
}

// Capacity returns the materialized-chunk capacity (m); negative is
// unlimited.
func (s *Store) Capacity() int { return s.capacity }

// SetCapacity changes the cap and immediately evicts down to it.
func (s *Store) SetCapacity(m int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.capacity = m
	return s.evictLocked(-1)
}

// SetQuota changes the raw-chunk quota; 0 or negative disables it. Already
// retained chunks are never dropped by a quota — only further ingest is
// rejected.
func (s *Store) SetQuota(n int) {
	s.mu.Lock()
	s.quota = n
	s.mu.Unlock()
}

// AppendRaw discretizes one batch of records into a new raw chunk, assigns
// the next timestamp, persists it, and returns its id. When the raw
// capacity N is exceeded the oldest raw chunks (and their feature chunks)
// are dropped; when the operator quota would be exceeded the chunk is
// rejected with a QuotaError before any state changes.
func (s *Store) AppendRaw(records [][]byte) (Timestamp, error) {
	s.mu.Lock()
	if s.quota > 0 && len(s.rawIDs) >= s.quota {
		qErr := &QuotaError{Limit: s.quota, Have: len(s.rawIDs)}
		s.mu.Unlock()
		return 0, qErr
	}
	id := s.next
	s.next++
	s.rawIDs = append(s.rawIDs, id)
	var drop []Timestamp
	if s.rawCapacity >= 0 {
		for len(s.rawIDs) > s.rawCapacity {
			victim := s.rawIDs[0]
			s.rawIDs = s.rawIDs[1:]
			drop = append(drop, victim)
			if s.isMat[victim] {
				delete(s.isMat, victim)
				for k, m := range s.materialized {
					if m == victim {
						s.materialized = append(s.materialized[:k], s.materialized[k+1:]...)
						break
					}
				}
			}
		}
	}
	s.mu.Unlock()
	if err := s.backend.PutRaw(RawChunk{ID: id, Records: records}); err != nil {
		return 0, fmt.Errorf("data: appending raw chunk: %w", err)
	}
	for _, victim := range drop {
		if err := s.backend.DeleteFeatures(victim); err != nil {
			return 0, fmt.Errorf("data: dropping feature chunk %d with its raw chunk: %w", victim, err)
		}
		if dr, ok := s.backend.(rawDeleter); ok {
			if err := dr.DeleteRaw(victim); err != nil {
				return 0, fmt.Errorf("data: dropping raw chunk %d: %w", victim, err)
			}
		}
	}
	return id, nil
}

// rawDeleter is the optional backend capability of physically deleting raw
// chunks; backends without it simply orphan the bytes (the store never
// hands out a dropped id again).
type rawDeleter interface {
	DeleteRaw(id Timestamp) error
}

// PutFeatures stores the preprocessed features of raw chunk rawID and
// applies the eviction policy.
func (s *Store) PutFeatures(rawID Timestamp, instances []Instance) error {
	fc := FeatureChunk{ID: rawID, RawID: rawID, Instances: instances}
	if err := s.backend.PutFeatures(fc); err != nil {
		return fmt.Errorf("data: storing feature chunk: %w", err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.isMat[rawID] {
		s.isMat[rawID] = true
		s.insertMaterializedLocked(rawID)
	}
	return s.evictLocked(rawID)
}

func (s *Store) insertMaterializedLocked(id Timestamp) {
	n := len(s.materialized)
	if n == 0 || s.materialized[n-1] < id {
		s.materialized = append(s.materialized, id)
		return
	}
	k := sort.Search(n, func(i int) bool { return s.materialized[i] >= id })
	s.materialized = append(s.materialized, 0)
	copy(s.materialized[k+1:], s.materialized[k:])
	s.materialized[k] = id
}

// evictLocked removes the oldest materialized chunks until within capacity.
// The chunk identified by protect (the one just inserted) is skipped so a
// re-stored old chunk is not immediately re-evicted; pass a negative value
// to protect nothing.
func (s *Store) evictLocked(protect Timestamp) error {
	if s.capacity < 0 {
		return nil
	}
	for len(s.materialized) > s.capacity {
		victim := s.materialized[0]
		k := 0
		if victim == protect && len(s.materialized) > 1 {
			victim = s.materialized[1]
			k = 1
		}
		s.materialized = append(s.materialized[:k], s.materialized[k+1:]...)
		delete(s.isMat, victim)
		s.stats.Evictions++
		if err := s.backend.DeleteFeatures(victim); err != nil {
			return fmt.Errorf("data: evicting feature chunk %d: %w", victim, err)
		}
	}
	return nil
}

// RawIDs returns the ids of all raw chunks in increasing order (a copy).
func (s *Store) RawIDs() []Timestamp {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Timestamp(nil), s.rawIDs...)
}

// NumRaw returns the number of raw chunks (n in the μ analysis).
func (s *Store) NumRaw() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.rawIDs)
}

// NumMaterialized returns the number of materialized feature chunks.
func (s *Store) NumMaterialized() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.materialized)
}

// IsMaterialized reports whether the feature chunk for id is materialized.
func (s *Store) IsMaterialized(id Timestamp) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.isMat[id]
}

// Raw fetches a raw chunk.
func (s *Store) Raw(id Timestamp) (RawChunk, error) {
	return s.backend.GetRaw(id)
}

// Features fetches a materialized feature chunk. The boolean is false when
// the chunk has been evicted (or never materialized); the caller must then
// re-materialize from the raw chunk and report it via NoteRematerialized.
func (s *Store) Features(id Timestamp) ([]Instance, bool, error) {
	s.mu.Lock()
	mat := s.isMat[id]
	s.mu.Unlock()
	if !mat {
		return nil, false, nil
	}
	fc, err := s.backend.GetFeatures(id)
	if err != nil {
		return nil, false, fmt.Errorf("data: fetching feature chunk %d: %w", id, err)
	}
	return fc.Instances, true, nil
}

// NoteRematerialized records that the caller rebuilt the feature chunk for
// id from its raw chunk; when the store is configured with
// WithRestoreOnRematerialize the rebuilt chunk is stored again.
func (s *Store) NoteRematerialized(id Timestamp, instances []Instance) error {
	s.mu.Lock()
	s.stats.Rematerializations++
	restore := s.restoreOnRematerialize
	s.mu.Unlock()
	if restore {
		return s.PutFeatures(id, instances)
	}
	return nil
}

// NoteSample records the hit/miss outcome of one sampling operation for μ
// accounting: hits sampled chunks were materialized, misses were not.
func (s *Store) NoteSample(hits, misses int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stats.Hits += int64(hits)
	s.stats.Misses += int64(misses)
	s.stats.Ops++
	if hits+misses > 0 {
		s.stats.MuSum += float64(hits) / float64(hits+misses)
	} else {
		s.stats.MuSum++
	}
}

// Instrument registers the store's materialization accounting with reg:
// sampling hits/misses, evictions, re-materializations, the utilization
// rate μ, and the raw/materialized chunk counts. All values are read at
// scrape time under the store lock, so instrumentation adds nothing to the
// ingest path. Safe to call more than once with the same registry. The
// optional labels are stamped on every series so per-deployment stores can
// share one registry without colliding (the registry keeps the first
// registration for a given name+labels pair).
func (s *Store) Instrument(reg *obs.Registry, labels ...obs.Label) {
	reg.CounterFunc("cdml_store_sample_hits_total",
		"Sampled chunks served from materialized features.",
		func() float64 { return float64(s.Stats().Hits) }, labels...)
	reg.CounterFunc("cdml_store_sample_misses_total",
		"Sampled chunks that required dynamic re-materialization.",
		func() float64 { return float64(s.Stats().Misses) }, labels...)
	reg.CounterFunc("cdml_store_evictions_total",
		"Feature chunks evicted by the materialization capacity policy.",
		func() float64 { return float64(s.Stats().Evictions) }, labels...)
	reg.CounterFunc("cdml_store_rematerializations_total",
		"Feature chunks rebuilt from raw chunks.",
		func() float64 { return float64(s.Stats().Rematerializations) }, labels...)
	reg.GaugeFunc("cdml_store_mu",
		"Average per-operation materialization utilization rate (paper §3.2.2).",
		func() float64 { st := s.Stats(); return st.Mu() }, labels...)
	reg.GaugeFunc("cdml_store_raw_chunks",
		"Raw chunks currently retained.",
		func() float64 { return float64(s.NumRaw()) }, labels...)
	reg.GaugeFunc("cdml_store_materialized_chunks",
		"Feature chunks currently materialized.",
		func() float64 { return float64(s.NumMaterialized()) }, labels...)
}

// Stats returns a copy of the materialization accounting.
func (s *Store) Stats() MatStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Close releases the underlying backend.
func (s *Store) Close() error { return s.backend.Close() }
