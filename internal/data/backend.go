package data

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
)

// ErrNotFound is returned by backends when a requested chunk is absent.
var ErrNotFound = fmt.Errorf("data: chunk not found")

// Backend is the physical storage layer for chunks. The Store layers
// eviction policy and materialization accounting on top of it.
//
// Implementations must be safe for concurrent use.
type Backend interface {
	// PutRaw persists a raw chunk.
	PutRaw(rc RawChunk) error
	// GetRaw fetches a raw chunk; ErrNotFound if absent.
	GetRaw(id Timestamp) (RawChunk, error)
	// PutFeatures persists a feature chunk.
	PutFeatures(fc FeatureChunk) error
	// GetFeatures fetches a feature chunk; ErrNotFound if absent.
	GetFeatures(id Timestamp) (FeatureChunk, error)
	// DeleteFeatures removes a feature chunk's content. Deleting an absent
	// chunk is not an error.
	DeleteFeatures(id Timestamp) error
	// Close releases backend resources.
	Close() error
}

// MemoryBackend stores chunks in process memory. It is the fast tier: a
// materialization rate of 1.0 with a memory backend reproduces the paper's
// fully-cached configuration.
type MemoryBackend struct {
	mu       sync.RWMutex
	raw      map[Timestamp]RawChunk     //cdml:guardedby mu
	features map[Timestamp]FeatureChunk //cdml:guardedby mu
}

// NewMemoryBackend returns an empty in-memory backend.
func NewMemoryBackend() *MemoryBackend {
	return &MemoryBackend{
		raw:      make(map[Timestamp]RawChunk),
		features: make(map[Timestamp]FeatureChunk),
	}
}

// PutRaw implements Backend.
func (m *MemoryBackend) PutRaw(rc RawChunk) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.raw[rc.ID] = rc
	return nil
}

// GetRaw implements Backend.
func (m *MemoryBackend) GetRaw(id Timestamp) (RawChunk, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	rc, ok := m.raw[id]
	if !ok {
		return RawChunk{}, fmt.Errorf("raw %d: %w", id, ErrNotFound)
	}
	return rc, nil
}

// PutFeatures implements Backend.
func (m *MemoryBackend) PutFeatures(fc FeatureChunk) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.features[fc.ID] = fc
	return nil
}

// GetFeatures implements Backend.
func (m *MemoryBackend) GetFeatures(id Timestamp) (FeatureChunk, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	fc, ok := m.features[id]
	if !ok {
		return FeatureChunk{}, fmt.Errorf("features %d: %w", id, ErrNotFound)
	}
	return fc, nil
}

// DeleteFeatures implements Backend.
func (m *MemoryBackend) DeleteFeatures(id Timestamp) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.features, id)
	return nil
}

// DeleteRaw removes a raw chunk (used when the raw-capacity bound drops
// old history). Deleting an absent chunk is not an error.
func (m *MemoryBackend) DeleteRaw(id Timestamp) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.raw, id)
	return nil
}

// Close implements Backend.
func (m *MemoryBackend) Close() error { return nil }

// DiskBackend stores gob-encoded chunks as files under a directory, one
// file per chunk. It is the HDFS substitute: fetching from it pays real
// serialization and file IO, giving dynamic materialization a measurable
// price (paper §5.4 observes the larger IO overhead on the cluster).
type DiskBackend struct {
	dir string
	mu  sync.Mutex // serializes file creation; reads are lock-free
}

// NewDiskBackend creates (if needed) and uses dir for chunk files.
func NewDiskBackend(dir string) (*DiskBackend, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("data: creating disk backend dir: %w", err)
	}
	return &DiskBackend{dir: dir}, nil
}

func (d *DiskBackend) rawPath(id Timestamp) string {
	return filepath.Join(d.dir, fmt.Sprintf("raw-%012d.gob", id))
}

func (d *DiskBackend) featPath(id Timestamp) string {
	return filepath.Join(d.dir, fmt.Sprintf("feat-%012d.gob", id))
}

// PutRaw implements Backend.
func (d *DiskBackend) PutRaw(rc RawChunk) error {
	b, err := EncodeRawChunk(rc)
	if err != nil {
		return err
	}
	return atomicWrite(d.rawPath(rc.ID), b)
}

// GetRaw implements Backend.
func (d *DiskBackend) GetRaw(id Timestamp) (RawChunk, error) {
	b, err := os.ReadFile(d.rawPath(id))
	if os.IsNotExist(err) {
		return RawChunk{}, fmt.Errorf("raw %d: %w", id, ErrNotFound)
	}
	if err != nil {
		return RawChunk{}, fmt.Errorf("data: reading raw chunk %d: %w", id, err)
	}
	return DecodeRawChunk(b)
}

// PutFeatures implements Backend.
func (d *DiskBackend) PutFeatures(fc FeatureChunk) error {
	b, err := EncodeFeatureChunk(fc)
	if err != nil {
		return err
	}
	return atomicWrite(d.featPath(fc.ID), b)
}

// GetFeatures implements Backend.
func (d *DiskBackend) GetFeatures(id Timestamp) (FeatureChunk, error) {
	b, err := os.ReadFile(d.featPath(id))
	if os.IsNotExist(err) {
		return FeatureChunk{}, fmt.Errorf("features %d: %w", id, ErrNotFound)
	}
	if err != nil {
		return FeatureChunk{}, fmt.Errorf("data: reading feature chunk %d: %w", id, err)
	}
	return DecodeFeatureChunk(b)
}

// DeleteFeatures implements Backend.
func (d *DiskBackend) DeleteFeatures(id Timestamp) error {
	err := os.Remove(d.featPath(id))
	if err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("data: deleting feature chunk %d: %w", id, err)
	}
	return nil
}

// DeleteRaw removes a raw chunk file. Deleting an absent chunk is not an
// error.
func (d *DiskBackend) DeleteRaw(id Timestamp) error {
	err := os.Remove(d.rawPath(id))
	if err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("data: deleting raw chunk %d: %w", id, err)
	}
	return nil
}

// Close implements Backend. Chunk files are left on disk; callers own the
// directory lifecycle.
func (d *DiskBackend) Close() error { return nil }

// atomicWrite writes b to path via a temp file + rename so readers never see
// a partial chunk.
func atomicWrite(path string, b []byte) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, b, 0o644); err != nil {
		return fmt.Errorf("data: writing %s: %w", tmp, err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("data: renaming %s: %w", tmp, err)
	}
	return nil
}
