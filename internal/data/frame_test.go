package data

import (
	"math"
	"testing"

	"cdml/internal/linalg"
)

func TestFrameBasics(t *testing.T) {
	f := NewFrame(2)
	f.SetFloat("x", []float64{1, 2})
	f.SetString("cat", []string{"a", "b"})
	f.SetVec("v", []linalg.Vector{linalg.Dense{1}, linalg.Dense{2}})
	if f.Rows() != 2 {
		t.Fatalf("Rows = %d", f.Rows())
	}
	if !f.Has("x") || f.Has("nope") {
		t.Fatal("Has wrong")
	}
	if got := f.Columns(); len(got) != 3 || got[0] != "x" || got[2] != "v" {
		t.Fatalf("Columns = %v", got)
	}
	if f.KindOf("x") != KindFloat || f.KindOf("cat") != KindString || f.KindOf("v") != KindVec {
		t.Fatal("KindOf wrong")
	}
	if f.Float("x")[1] != 2 || f.String("cat")[0] != "a" || f.Vec("v")[1].At(0) != 2 {
		t.Fatal("accessors wrong")
	}
}

func TestFrameKindStrings(t *testing.T) {
	if KindFloat.String() != "float" || KindString.String() != "string" || KindVec.String() != "vec" {
		t.Fatal("Kind.String wrong")
	}
	if Kind(42).String() == "" {
		t.Fatal("unknown kind should render")
	}
}

func TestFrameNegativeRowsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewFrame(-1)
}

func TestFrameWrongLengthPanics(t *testing.T) {
	f := NewFrame(3)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	f.SetFloat("x", []float64{1})
}

func TestFrameMissingColumnPanics(t *testing.T) {
	f := NewFrame(1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	f.Float("ghost")
}

func TestFrameWrongKindPanics(t *testing.T) {
	f := NewFrame(1)
	f.SetFloat("x", []float64{1})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	f.String("x")
}

func TestFrameReplaceKeepsOrder(t *testing.T) {
	f := NewFrame(1)
	f.SetFloat("a", []float64{1})
	f.SetFloat("b", []float64{2})
	f.SetFloat("a", []float64{9})
	cols := f.Columns()
	if len(cols) != 2 || cols[0] != "a" || cols[1] != "b" {
		t.Fatalf("order after replace = %v", cols)
	}
	if f.Float("a")[0] != 9 {
		t.Fatal("replace did not take")
	}
}

func TestFrameShallowCopyIsolatesColumnSet(t *testing.T) {
	f := NewFrame(1)
	f.SetFloat("a", []float64{1})
	g := f.ShallowCopy()
	g.SetFloat("b", []float64{2})
	if f.Has("b") {
		t.Fatal("ShallowCopy leaked column set")
	}
	// Storage is shared by design.
	if &f.Float("a")[0] != &g.Float("a")[0] {
		t.Fatal("ShallowCopy should share storage")
	}
}

func TestFrameDrop(t *testing.T) {
	f := NewFrame(1)
	f.SetFloat("a", []float64{1})
	f.SetFloat("b", []float64{2})
	g := f.Drop("a", "ghost")
	if g.Has("a") || !g.Has("b") {
		t.Fatalf("Drop wrong: %v", g.Columns())
	}
	if !f.Has("a") {
		t.Fatal("Drop mutated input")
	}
}

func TestFrameSelect(t *testing.T) {
	f := NewFrame(3)
	f.SetFloat("x", []float64{1, 2, 3})
	f.SetString("s", []string{"a", "b", "c"})
	f.SetVec("v", []linalg.Vector{linalg.Dense{1}, linalg.Dense{2}, linalg.Dense{3}})
	g := f.Select([]bool{true, false, true})
	if g.Rows() != 2 {
		t.Fatalf("Rows = %d", g.Rows())
	}
	if g.Float("x")[1] != 3 || g.String("s")[1] != "c" || g.Vec("v")[1].At(0) != 3 {
		t.Fatal("Select picked wrong rows")
	}
}

func TestFrameSelectBadMaskPanics(t *testing.T) {
	f := NewFrame(2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	f.Select([]bool{true})
}

func TestMissingSentinel(t *testing.T) {
	if !IsMissingFloat(Missing) {
		t.Fatal("Missing should be missing")
	}
	if IsMissingFloat(0) || IsMissingFloat(math.Inf(1)) {
		t.Fatal("finite/inf values are not missing")
	}
}
