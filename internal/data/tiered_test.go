package data

import (
	"errors"
	"sync"
	"testing"
)

func tieredFixture(t *testing.T, capacity int) (*TieredBackend, *DiskBackend) {
	t.Helper()
	disk, err := NewDiskBackend(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return NewTieredBackend(disk, capacity), disk
}

func fc(id Timestamp) FeatureChunk {
	return FeatureChunk{ID: id, RawID: id, Instances: mkInstances(2)}
}

func TestTieredHitAfterPut(t *testing.T) {
	tb, _ := tieredFixture(t, 2)
	if err := tb.PutFeatures(fc(1)); err != nil {
		t.Fatal(err)
	}
	got, err := tb.GetFeatures(1)
	if err != nil || got.ID != 1 {
		t.Fatalf("get: %v", err)
	}
	hits, misses := tb.CacheStats()
	if hits != 1 || misses != 0 {
		t.Fatalf("hits=%d misses=%d", hits, misses)
	}
}

func TestTieredColdFetchWarmsCache(t *testing.T) {
	tb, disk := tieredFixture(t, 2)
	// Write directly to the base so the cache is cold.
	if err := disk.PutFeatures(fc(7)); err != nil {
		t.Fatal(err)
	}
	if _, err := tb.GetFeatures(7); err != nil {
		t.Fatal(err)
	}
	if _, err := tb.GetFeatures(7); err != nil {
		t.Fatal(err)
	}
	hits, misses := tb.CacheStats()
	if misses != 1 || hits != 1 {
		t.Fatalf("hits=%d misses=%d, want 1/1", hits, misses)
	}
}

func TestTieredLRUEviction(t *testing.T) {
	tb, _ := tieredFixture(t, 2)
	for id := Timestamp(1); id <= 3; id++ {
		if err := tb.PutFeatures(fc(id)); err != nil {
			t.Fatal(err)
		}
	}
	// 1 was evicted from the cache (capacity 2) but lives in the base.
	if _, err := tb.GetFeatures(1); err != nil {
		t.Fatal(err)
	}
	_, misses := tb.CacheStats()
	if misses != 1 {
		t.Fatalf("misses=%d, want 1 (chunk 1 evicted from hot tier)", misses)
	}
}

func TestTieredLRUTouchKeepsHot(t *testing.T) {
	tb, _ := tieredFixture(t, 2)
	_ = tb.PutFeatures(fc(1))
	_ = tb.PutFeatures(fc(2))
	if _, err := tb.GetFeatures(1); err != nil { // touch 1 → 2 is now LRU
		t.Fatal(err)
	}
	_ = tb.PutFeatures(fc(3)) // evicts 2
	if _, err := tb.GetFeatures(1); err != nil {
		t.Fatal(err)
	}
	hits, misses := tb.CacheStats()
	if hits != 2 || misses != 0 {
		t.Fatalf("hits=%d misses=%d after touch-based retention", hits, misses)
	}
}

func TestTieredDeleteEvictsBothTiers(t *testing.T) {
	tb, _ := tieredFixture(t, 4)
	_ = tb.PutFeatures(fc(5))
	if err := tb.DeleteFeatures(5); err != nil {
		t.Fatal(err)
	}
	if _, err := tb.GetFeatures(5); !errors.Is(err, ErrNotFound) {
		t.Fatalf("deleted chunk still reachable: %v", err)
	}
}

func TestTieredRawPassThrough(t *testing.T) {
	tb, _ := tieredFixture(t, 2)
	if err := tb.PutRaw(RawChunk{ID: 9, Records: [][]byte{[]byte("r")}}); err != nil {
		t.Fatal(err)
	}
	rc, err := tb.GetRaw(9)
	if err != nil || string(rc.Records[0]) != "r" {
		t.Fatalf("raw pass-through: %v", err)
	}
	if err := tb.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestTieredBadCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewTieredBackend(NewMemoryBackend(), 0)
}

func TestTieredConcurrent(t *testing.T) {
	tb := NewTieredBackend(NewMemoryBackend(), 8)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				id := Timestamp(i % 16)
				if g%2 == 0 {
					_ = tb.PutFeatures(fc(id))
				} else {
					_, _ = tb.GetFeatures(id)
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestStoreOverTieredBackend(t *testing.T) {
	// The full stack: Store (logical m-bounded materialization) over a
	// tiered backend (hot cache over disk).
	disk, err := NewDiskBackend(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	tb := NewTieredBackend(disk, 4)
	s := NewStore(tb, WithCapacity(8))
	for i := 0; i < 12; i++ {
		id, _ := s.AppendRaw([][]byte{[]byte("rec")})
		if err := s.PutFeatures(id, mkInstances(3)); err != nil {
			t.Fatal(err)
		}
	}
	if s.NumMaterialized() != 8 {
		t.Fatalf("materialized = %d", s.NumMaterialized())
	}
	// Fetch newest-first: the newest four hit the hot tier, the older
	// materialized ones come from disk.
	ids := s.RawIDs()[4:]
	for k := len(ids) - 1; k >= 0; k-- {
		ins, ok, err := s.Features(ids[k])
		if err != nil || !ok || len(ins) != 3 {
			t.Fatalf("chunk %d: ok=%v err=%v", ids[k], ok, err)
		}
	}
	hits, misses := tb.CacheStats()
	if hits == 0 || misses == 0 {
		t.Fatalf("expected mixed cache outcomes, hits=%d misses=%d", hits, misses)
	}
}
