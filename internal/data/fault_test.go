package data

import (
	"errors"
	"testing"
	"time"
)

func TestFaultFailNCountsDown(t *testing.T) {
	fb := NewFaultBackend(NewMemoryBackend())
	fb.FailN(OpPutRaw, 2, errFlaky)

	for i := 0; i < 2; i++ {
		if err := fb.PutRaw(RawChunk{ID: Timestamp(i)}); !errors.Is(err, errFlaky) {
			t.Fatalf("call %d: want injected error, got %v", i, err)
		}
	}
	if err := fb.PutRaw(RawChunk{ID: 2}); err != nil {
		t.Fatalf("failpoint still armed after budget: %v", err)
	}
	if got := fb.Injected(); got != 2 {
		t.Fatalf("injected = %d, want 2", got)
	}
}

func TestFaultOpScoping(t *testing.T) {
	fb := NewFaultBackend(NewMemoryBackend())
	fb.FailN(OpGetFeatures, 1, errFlaky)

	// Other ops are untouched.
	if err := fb.PutRaw(RawChunk{ID: 1}); err != nil {
		t.Fatal(err)
	}
	if err := fb.PutFeatures(FeatureChunk{ID: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := fb.GetFeatures(1); !errors.Is(err, errFlaky) {
		t.Fatalf("scoped op not injected: %v", err)
	}
	if _, err := fb.GetFeatures(1); err != nil {
		t.Fatalf("injection did not expire: %v", err)
	}
}

func TestFaultOpAllMatchesEverything(t *testing.T) {
	fb := NewFaultBackend(NewMemoryBackend())
	fb.FailN(OpAll, 2, errFlaky)
	if err := fb.PutRaw(RawChunk{ID: 1}); !errors.Is(err, errFlaky) {
		t.Fatalf("put: %v", err)
	}
	if _, err := fb.GetRaw(1); !errors.Is(err, errFlaky) {
		t.Fatalf("get: %v", err)
	}
	if err := fb.PutRaw(RawChunk{ID: 1}); err != nil {
		t.Fatalf("budget shared across ops should be spent: %v", err)
	}
}

func TestFaultRateIsSeededDeterministic(t *testing.T) {
	outcomes := func() []bool {
		fb := NewFaultBackend(NewMemoryBackend())
		fb.FailRate(OpPutRaw, 0.5, errFlaky, 7)
		var got []bool
		for i := 0; i < 64; i++ {
			got = append(got, fb.PutRaw(RawChunk{ID: Timestamp(i)}) != nil)
		}
		return got
	}
	a, b := outcomes(), outcomes()
	failed := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("seeded fail-rate not deterministic at call %d", i)
		}
		if a[i] {
			failed++
		}
	}
	if failed == 0 || failed == len(a) {
		t.Fatalf("fail-rate 0.5 produced %d/%d failures", failed, len(a))
	}
}

func TestFaultDelayInjectsLatency(t *testing.T) {
	fb := NewFaultBackend(NewMemoryBackend())
	fb.Delay(OpGetRaw, 20*time.Millisecond)
	if err := fb.PutRaw(RawChunk{ID: 1}); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if _, err := fb.GetRaw(1); err != nil {
		t.Fatal(err)
	}
	if el := time.Since(start); el < 20*time.Millisecond {
		t.Fatalf("latency injection too short: %v", el)
	}
}

func TestFaultResetDisarms(t *testing.T) {
	fb := NewFaultBackend(NewMemoryBackend())
	fb.FailN(OpAll, 100, errFlaky)
	fb.Reset()
	if err := fb.PutRaw(RawChunk{ID: 1}); err != nil {
		t.Fatalf("Reset left failpoints armed: %v", err)
	}
}
