package data

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"cdml/internal/linalg"
)

func mkInstances(n int) []Instance {
	out := make([]Instance, n)
	for i := range out {
		out[i] = Instance{X: linalg.Dense{float64(i), 1}, Y: float64(i % 2)}
	}
	return out
}

func testBackends(t *testing.T) map[string]Backend {
	t.Helper()
	disk, err := NewDiskBackend(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return map[string]Backend{"memory": NewMemoryBackend(), "disk": disk}
}

func TestBackendRoundTrip(t *testing.T) {
	for name, b := range testBackends(t) {
		t.Run(name, func(t *testing.T) {
			rc := RawChunk{ID: 7, Records: [][]byte{[]byte("hello"), []byte("world")}}
			if err := b.PutRaw(rc); err != nil {
				t.Fatal(err)
			}
			got, err := b.GetRaw(7)
			if err != nil {
				t.Fatal(err)
			}
			if string(got.Records[1]) != "world" {
				t.Fatalf("raw round trip: %q", got.Records)
			}

			fc := FeatureChunk{ID: 7, RawID: 7, Instances: []Instance{
				{X: linalg.Dense{1, 2}, Y: 1},
				{X: linalg.NewSparse(4, []int32{3}, []float64{5}), Y: 0},
			}}
			if err := b.PutFeatures(fc); err != nil {
				t.Fatal(err)
			}
			gf, err := b.GetFeatures(7)
			if err != nil {
				t.Fatal(err)
			}
			if gf.Instances[0].X.At(1) != 2 || gf.Instances[1].X.At(3) != 5 || gf.Instances[1].Y != 0 {
				t.Fatalf("feature round trip wrong: %+v", gf)
			}

			if _, err := b.GetRaw(99); !errors.Is(err, ErrNotFound) {
				t.Fatalf("missing raw: err = %v", err)
			}
			if _, err := b.GetFeatures(99); !errors.Is(err, ErrNotFound) {
				t.Fatalf("missing features: err = %v", err)
			}
			if err := b.DeleteFeatures(7); err != nil {
				t.Fatal(err)
			}
			if _, err := b.GetFeatures(7); !errors.Is(err, ErrNotFound) {
				t.Fatal("delete did not remove features")
			}
			if err := b.DeleteFeatures(7); err != nil {
				t.Fatal("double delete should be a no-op")
			}
			if err := b.Close(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestStoreAppendAssignsMonotonicIDs(t *testing.T) {
	s := NewStore(NewMemoryBackend())
	for i := 0; i < 5; i++ {
		id, err := s.AppendRaw([][]byte{[]byte("r")})
		if err != nil {
			t.Fatal(err)
		}
		if id != Timestamp(i) {
			t.Fatalf("id = %d, want %d", id, i)
		}
	}
	ids := s.RawIDs()
	if len(ids) != 5 || ids[4] != 4 {
		t.Fatalf("RawIDs = %v", ids)
	}
	if s.NumRaw() != 5 {
		t.Fatalf("NumRaw = %d", s.NumRaw())
	}
}

func TestStoreEvictionOldestFirst(t *testing.T) {
	s := NewStore(NewMemoryBackend(), WithCapacity(2))
	for i := 0; i < 4; i++ {
		id, _ := s.AppendRaw([][]byte{[]byte("r")})
		if err := s.PutFeatures(id, mkInstances(3)); err != nil {
			t.Fatal(err)
		}
	}
	if s.NumMaterialized() != 2 {
		t.Fatalf("materialized = %d, want 2", s.NumMaterialized())
	}
	// Newest two (2, 3) survive.
	if s.IsMaterialized(0) || s.IsMaterialized(1) {
		t.Fatal("old chunks not evicted")
	}
	if !s.IsMaterialized(2) || !s.IsMaterialized(3) {
		t.Fatal("new chunks wrongly evicted")
	}
	if got := s.Stats().Evictions; got != 2 {
		t.Fatalf("evictions = %d, want 2", got)
	}
	// Evicted chunk: Features reports unmaterialized, raw still present.
	if _, ok, err := s.Features(0); err != nil || ok {
		t.Fatalf("evicted chunk should be unmaterialized (ok=%v err=%v)", ok, err)
	}
	if _, err := s.Raw(0); err != nil {
		t.Fatalf("raw chunk must survive eviction: %v", err)
	}
}

func TestStoreFeaturesRoundTrip(t *testing.T) {
	s := NewStore(NewMemoryBackend())
	id, _ := s.AppendRaw([][]byte{[]byte("r")})
	want := mkInstances(2)
	if err := s.PutFeatures(id, want); err != nil {
		t.Fatal(err)
	}
	got, ok, err := s.Features(id)
	if err != nil || !ok {
		t.Fatalf("Features: ok=%v err=%v", ok, err)
	}
	if len(got) != 2 || got[1].X.At(0) != 1 {
		t.Fatalf("instances wrong: %+v", got)
	}
}

func TestStoreSetCapacityEvictsImmediately(t *testing.T) {
	s := NewStore(NewMemoryBackend())
	for i := 0; i < 5; i++ {
		id, _ := s.AppendRaw(nil)
		if err := s.PutFeatures(id, mkInstances(1)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.SetCapacity(2); err != nil {
		t.Fatal(err)
	}
	if s.NumMaterialized() != 2 || s.Capacity() != 2 {
		t.Fatalf("after SetCapacity: mat=%d", s.NumMaterialized())
	}
}

func TestStoreNoteRematerializedDefaultDiscards(t *testing.T) {
	s := NewStore(NewMemoryBackend(), WithCapacity(1))
	a, _ := s.AppendRaw(nil)
	b, _ := s.AppendRaw(nil)
	_ = s.PutFeatures(a, mkInstances(1))
	_ = s.PutFeatures(b, mkInstances(1)) // evicts a
	if err := s.NoteRematerialized(a, mkInstances(1)); err != nil {
		t.Fatal(err)
	}
	if s.IsMaterialized(a) {
		t.Fatal("default policy must not restore rematerialized chunks")
	}
	if s.Stats().Rematerializations != 1 {
		t.Fatal("rematerialization not counted")
	}
}

func TestStoreNoteRematerializedRestores(t *testing.T) {
	s := NewStore(NewMemoryBackend(), WithCapacity(1), WithRestoreOnRematerialize())
	a, _ := s.AppendRaw(nil)
	b, _ := s.AppendRaw(nil)
	_ = s.PutFeatures(a, mkInstances(1))
	_ = s.PutFeatures(b, mkInstances(1)) // evicts a
	if err := s.NoteRematerialized(a, mkInstances(1)); err != nil {
		t.Fatal(err)
	}
	if !s.IsMaterialized(a) {
		t.Fatal("restore policy should re-store the chunk")
	}
	if s.IsMaterialized(b) {
		t.Fatal("restoring a must evict b (capacity 1, b newer but a re-inserted)")
	}
}

func TestStoreNoteSampleMu(t *testing.T) {
	s := NewStore(NewMemoryBackend())
	s.NoteSample(3, 1) // 0.75
	s.NoteSample(1, 1) // 0.5
	s.NoteSample(0, 0) // counts as 1.0 (nothing sampled → nothing missed)
	st := s.Stats()
	if st.Hits != 4 || st.Misses != 2 || st.Ops != 3 {
		t.Fatalf("stats = %+v", st)
	}
	want := (0.75 + 0.5 + 1.0) / 3
	if got := st.Mu(); got != want {
		t.Fatalf("Mu = %v, want %v", got, want)
	}
	var empty MatStats
	if empty.Mu() != 1 {
		t.Fatal("empty Mu should be 1")
	}
}

func TestStoreUnlimitedCapacity(t *testing.T) {
	s := NewStore(NewMemoryBackend())
	for i := 0; i < 50; i++ {
		id, _ := s.AppendRaw(nil)
		_ = s.PutFeatures(id, mkInstances(1))
	}
	if s.NumMaterialized() != 50 {
		t.Fatalf("unlimited store evicted: %d", s.NumMaterialized())
	}
}

// Property: with capacity m, after k PutFeatures in id order exactly
// min(k, m) newest chunks remain materialized.
func TestQuickStoreEvictionInvariant(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := r.Intn(10)
		k := 1 + r.Intn(30)
		s := NewStore(NewMemoryBackend(), WithCapacity(m))
		var ids []Timestamp
		for i := 0; i < k; i++ {
			id, err := s.AppendRaw(nil)
			if err != nil {
				return false
			}
			if err := s.PutFeatures(id, mkInstances(1)); err != nil {
				return false
			}
			ids = append(ids, id)
		}
		want := m
		if k < m {
			want = k
		}
		if s.NumMaterialized() != want {
			return false
		}
		for i, id := range ids {
			mat := s.IsMaterialized(id)
			shouldBe := i >= k-want
			if mat != shouldBe {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestStoreWithDiskBackend(t *testing.T) {
	disk, err := NewDiskBackend(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	s := NewStore(disk, WithCapacity(2))
	for i := 0; i < 3; i++ {
		id, _ := s.AppendRaw([][]byte{[]byte("rec")})
		if err := s.PutFeatures(id, mkInstances(4)); err != nil {
			t.Fatal(err)
		}
	}
	got, ok, err := s.Features(2)
	if err != nil || !ok || len(got) != 4 {
		t.Fatalf("disk store features: ok=%v err=%v", ok, err)
	}
	if _, ok, _ := s.Features(0); ok {
		t.Fatal("evicted chunk should be gone from disk")
	}
	rc, err := s.Raw(0)
	if err != nil || string(rc.Records[0]) != "rec" {
		t.Fatalf("raw from disk: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestFeatureBytes(t *testing.T) {
	dense := []Instance{{X: linalg.Dense{1, 2, 3}, Y: 1}}
	if got := FeatureBytes(dense); got != 3*8+8 {
		t.Fatalf("dense bytes = %d", got)
	}
	sparse := []Instance{{X: linalg.NewSparse(1000, []int32{1, 2}, []float64{1, 1}), Y: 0}}
	if got := FeatureBytes(sparse); got != 2*8+2*4+8 {
		t.Fatalf("sparse bytes = %d", got)
	}
}

func TestEncodeDecodeChunkErrors(t *testing.T) {
	if _, err := DecodeFeatureChunk([]byte("garbage")); err == nil {
		t.Fatal("expected decode error")
	}
	if _, err := DecodeRawChunk([]byte("garbage")); err == nil {
		t.Fatal("expected decode error")
	}
}

func TestStoreRawCapacityDropsOldest(t *testing.T) {
	s := NewStore(NewMemoryBackend(), WithRawCapacity(3), WithCapacity(3))
	for i := 0; i < 5; i++ {
		id, err := s.AppendRaw([][]byte{[]byte("r")})
		if err != nil {
			t.Fatal(err)
		}
		if err := s.PutFeatures(id, mkInstances(1)); err != nil {
			t.Fatal(err)
		}
	}
	ids := s.RawIDs()
	if len(ids) != 3 || ids[0] != 2 {
		t.Fatalf("RawIDs = %v, want newest 3", ids)
	}
	// Dropped raw chunks are physically gone.
	if _, err := s.Raw(0); !errors.Is(err, ErrNotFound) {
		t.Fatalf("dropped raw chunk still readable: %v", err)
	}
	// Their feature chunks are gone too.
	if s.IsMaterialized(0) || s.IsMaterialized(1) {
		t.Fatal("dropped chunks still materialized")
	}
	// Surviving chunks work.
	if _, ok, err := s.Features(4); err != nil || !ok {
		t.Fatalf("newest chunk lost: ok=%v err=%v", ok, err)
	}
}

func TestStoreRawCapacityWithDisk(t *testing.T) {
	disk, err := NewDiskBackend(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	s := NewStore(disk, WithRawCapacity(2))
	for i := 0; i < 4; i++ {
		if _, err := s.AppendRaw([][]byte{[]byte("r")}); err != nil {
			t.Fatal(err)
		}
	}
	if len(s.RawIDs()) != 2 {
		t.Fatalf("RawIDs = %v", s.RawIDs())
	}
	if _, err := s.Raw(0); !errors.Is(err, ErrNotFound) {
		t.Fatal("dropped raw chunk file survived")
	}
	if _, err := s.Raw(3); err != nil {
		t.Fatal(err)
	}
}

func TestStoreUnlimitedRawCapacity(t *testing.T) {
	s := NewStore(NewMemoryBackend())
	for i := 0; i < 30; i++ {
		if _, err := s.AppendRaw(nil); err != nil {
			t.Fatal(err)
		}
	}
	if s.NumRaw() != 30 {
		t.Fatalf("NumRaw = %d", s.NumRaw())
	}
}
