package data

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

// cachedIDs returns the tiered cache's contents from most- to
// least-recently used (test-only; walks the internal LRU list).
func (t *TieredBackend) cachedIDs() []Timestamp {
	t.mu.Lock()
	defer t.mu.Unlock()
	var ids []Timestamp
	for el := t.lru.Front(); el != nil; el = el.Next() {
		ids = append(ids, el.Value.(tieredEntry).id)
	}
	return ids
}

// refLRU is the map/slice reference model the property test compares the
// real cache against: order[0] is the most recently used id.
type refLRU struct {
	cap   int
	order []Timestamp
}

func (r *refLRU) touch(id Timestamp) {
	for i, v := range r.order {
		if v == id {
			copy(r.order[1:i+1], r.order[:i])
			r.order[0] = id
			return
		}
	}
	r.order = append([]Timestamp{id}, r.order...)
	if len(r.order) > r.cap {
		r.order = r.order[:r.cap]
	}
}

func (r *refLRU) delete(id Timestamp) {
	for i, v := range r.order {
		if v == id {
			r.order = append(r.order[:i], r.order[i+1:]...)
			return
		}
	}
}

func (r *refLRU) contains(id Timestamp) bool {
	for _, v := range r.order {
		if v == id {
			return true
		}
	}
	return false
}

// TestTieredLRUMatchesReferenceModel drives the cache and a trivially
// correct reference model through the same random op sequence and requires
// identical cache contents (set and recency order) after every step.
func TestTieredLRUMatchesReferenceModel(t *testing.T) {
	const (
		capacity = 8
		idSpace  = 24
		steps    = 4000
	)
	rng := rand.New(rand.NewSource(1234))
	base := NewMemoryBackend()
	tb := NewTieredBackend(base, capacity)
	ref := &refLRU{cap: capacity}
	// inBase tracks which feature chunks exist in the base backend, so the
	// model knows whether a Get is a warm-the-cache hit or an error.
	inBase := map[Timestamp]bool{}

	for step := 0; step < steps; step++ {
		id := Timestamp(rng.Intn(idSpace))
		switch op := rng.Intn(3); op {
		case 0: // PutFeatures: write-through + install at MRU
			if err := tb.PutFeatures(FeatureChunk{ID: id, RawID: id}); err != nil {
				t.Fatalf("step %d put %d: %v", step, id, err)
			}
			inBase[id] = true
			ref.touch(id)
		case 1: // GetFeatures: hit refreshes recency; base hit warms cache
			_, err := tb.GetFeatures(id)
			if inBase[id] {
				if err != nil {
					t.Fatalf("step %d get %d: %v", step, id, err)
				}
				ref.touch(id)
			} else if err == nil {
				t.Fatalf("step %d get %d: want miss", step, id)
			}
		case 2: // DeleteFeatures: evict from both tiers
			if err := tb.DeleteFeatures(id); err != nil {
				t.Fatalf("step %d delete %d: %v", step, id, err)
			}
			delete(inBase, id)
			ref.delete(id)
		}

		got := tb.cachedIDs()
		if len(got) != len(ref.order) {
			t.Fatalf("step %d: cache has %d entries, model %d\n got %v\nwant %v",
				step, len(got), len(ref.order), got, ref.order)
		}
		for i := range got {
			if got[i] != ref.order[i] {
				t.Fatalf("step %d: LRU order diverged at %d\n got %v\nwant %v",
					step, i, got, ref.order)
			}
		}
	}

	// Cross-check the membership view too: every cached id must be
	// base-resident (write-through invariant).
	for _, id := range tb.cachedIDs() {
		if !ref.contains(id) {
			t.Fatalf("cache holds %d, model does not", id)
		}
		if !inBase[id] {
			t.Fatalf("cache holds %d but base does not (write-through broken)", id)
		}
	}
}

// TestTieredConcurrentReadersWriters hammers the cache from concurrent
// readers, writers, and deleters (run under -race) and then checks the
// structural invariants: size within capacity, map and list in sync,
// counters consistent.
func TestTieredConcurrentReadersWriters(t *testing.T) {
	const (
		capacity = 16
		idSpace  = 64
		workers  = 8
		opsEach  = 500
	)
	base := NewMemoryBackend()
	tb := NewTieredBackend(base, capacity)
	// Preload so readers have something to hit.
	for i := 0; i < idSpace; i++ {
		if err := tb.PutFeatures(FeatureChunk{ID: Timestamp(i), RawID: Timestamp(i)}); err != nil {
			t.Fatal(err)
		}
	}

	var wg sync.WaitGroup
	errCh := make(chan error, workers)
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < opsEach; i++ {
				id := Timestamp(rng.Intn(idSpace))
				switch rng.Intn(4) {
				case 0:
					if err := tb.PutFeatures(FeatureChunk{ID: id, RawID: id}); err != nil {
						errCh <- fmt.Errorf("put %d: %w", id, err)
						return
					}
				case 1, 2:
					// Concurrent deletes make honest misses possible; only
					// unexpected error shapes are failures.
					if _, err := tb.GetFeatures(id); err != nil && !errors.Is(err, ErrNotFound) {
						errCh <- fmt.Errorf("get %d: %w", id, err)
						return
					}
				case 3:
					if err := tb.DeleteFeatures(id); err != nil {
						errCh <- fmt.Errorf("delete %d: %w", id, err)
						return
					}
				}
				if i%64 == 0 {
					tb.CacheStats() // races the counters against the ops
				}
			}
		}()
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}

	tb.mu.Lock()
	if tb.lru.Len() > capacity {
		t.Errorf("cache over capacity: %d > %d", tb.lru.Len(), capacity)
	}
	if len(tb.entries) != tb.lru.Len() {
		t.Errorf("entries map (%d) and lru list (%d) out of sync", len(tb.entries), tb.lru.Len())
	}
	for el := tb.lru.Front(); el != nil; el = el.Next() {
		id := el.Value.(tieredEntry).id
		if tb.entries[id] != el {
			t.Errorf("entries[%d] does not point at its list element", id)
		}
	}
	tb.mu.Unlock()

	hits, misses := tb.CacheStats()
	if hits+misses == 0 {
		t.Error("no cache traffic recorded; test is vacuous")
	}
}
