// Package data implements the data-manager substrate of the platform
// (paper §4.2): the columnar record batches that flow through pipelines,
// the discretized raw/feature chunks with creation-timestamp identifiers
// (paper §3, stage 1), chunk storage backends (memory and disk), and the
// capacity-bounded feature-chunk store whose oldest-first eviction and
// re-materialization implement dynamic materialization (paper §3.2).
package data

import (
	"fmt"
	"math"

	"cdml/internal/linalg"
)

// Kind identifies the type of a Frame column.
type Kind int

// Column kinds.
const (
	KindFloat  Kind = iota // numeric values; NaN marks missing
	KindString             // categorical values; "" marks missing
	KindVec                // one feature vector per row
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindFloat:
		return "float"
	case KindString:
		return "string"
	case KindVec:
		return "vec"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// column is an internal tagged union; exactly one payload is non-nil.
type column struct {
	kind Kind
	f    []float64
	s    []string
	v    []linalg.Vector
}

func (c *column) len() int {
	switch c.kind {
	case KindFloat:
		return len(c.f)
	case KindString:
		return len(c.s)
	default:
		return len(c.v)
	}
}

// Frame is a small columnar batch of records with named, typed columns.
// Pipeline components treat frames as immutable: Transform builds a new
// frame, sharing the untouched columns of its input. A frame's columns all
// have the same length (the number of rows).
type Frame struct {
	rows  int
	cols  map[string]*column
	order []string
}

// NewFrame returns an empty frame with the given row count.
func NewFrame(rows int) *Frame {
	if rows < 0 {
		panic("data: negative row count")
	}
	return &Frame{rows: rows, cols: make(map[string]*column)}
}

// Rows returns the number of rows.
func (f *Frame) Rows() int { return f.rows }

// Columns returns the column names in insertion order. The slice is a copy.
func (f *Frame) Columns() []string { return append([]string(nil), f.order...) }

// Has reports whether a column exists.
func (f *Frame) Has(name string) bool {
	_, ok := f.cols[name]
	return ok
}

// KindOf returns the kind of the named column. It panics if the column does
// not exist.
func (f *Frame) KindOf(name string) Kind { return f.col(name).kind }

func (f *Frame) col(name string) *column {
	c, ok := f.cols[name]
	if !ok {
		panic(fmt.Sprintf("data: no column %q (have %v)", name, f.order))
	}
	return c
}

func (f *Frame) put(name string, c *column) {
	if c.len() != f.rows {
		panic(fmt.Sprintf("data: column %q has %d rows, frame has %d", name, c.len(), f.rows))
	}
	if _, exists := f.cols[name]; !exists {
		f.order = append(f.order, name)
	}
	f.cols[name] = c
}

// SetFloat installs (or replaces) a float column. The slice is stored
// without copying; callers hand over ownership.
func (f *Frame) SetFloat(name string, vals []float64) *Frame {
	f.put(name, &column{kind: KindFloat, f: vals})
	return f
}

// SetString installs (or replaces) a string column.
func (f *Frame) SetString(name string, vals []string) *Frame {
	f.put(name, &column{kind: KindString, s: vals})
	return f
}

// SetVec installs (or replaces) a vector column.
func (f *Frame) SetVec(name string, vals []linalg.Vector) *Frame {
	f.put(name, &column{kind: KindVec, v: vals})
	return f
}

// Float returns the named float column. It panics if the column is missing
// or has a different kind. The returned slice is the backing storage; treat
// it as read-only.
func (f *Frame) Float(name string) []float64 {
	c := f.col(name)
	if c.kind != KindFloat {
		panic(fmt.Sprintf("data: column %q is %v, not float", name, c.kind))
	}
	return c.f
}

// String returns the named string column (read-only).
func (f *Frame) String(name string) []string {
	c := f.col(name)
	if c.kind != KindString {
		panic(fmt.Sprintf("data: column %q is %v, not string", name, c.kind))
	}
	return c.s
}

// Vec returns the named vector column (read-only).
func (f *Frame) Vec(name string) []linalg.Vector {
	c := f.col(name)
	if c.kind != KindVec {
		panic(fmt.Sprintf("data: column %q is %v, not vec", name, c.kind))
	}
	return c.v
}

// ShallowCopy returns a new frame sharing all column storage with f.
// Components use it to replace some columns without mutating their input.
func (f *Frame) ShallowCopy() *Frame {
	g := &Frame{rows: f.rows, cols: make(map[string]*column, len(f.cols)), order: append([]string(nil), f.order...)}
	for name, c := range f.cols {
		g.cols[name] = c
	}
	return g
}

// Drop returns a shallow copy without the named columns. Missing names are
// ignored.
func (f *Frame) Drop(names ...string) *Frame {
	dropped := make(map[string]bool, len(names))
	for _, n := range names {
		dropped[n] = true
	}
	g := &Frame{rows: f.rows, cols: make(map[string]*column)}
	for _, name := range f.order {
		if !dropped[name] {
			g.order = append(g.order, name)
			g.cols[name] = f.cols[name]
		}
	}
	return g
}

// Select returns a frame keeping only the rows for which keep[i] is true.
// All columns are copied.
func (f *Frame) Select(keep []bool) *Frame {
	if len(keep) != f.rows {
		panic(fmt.Sprintf("data: Select mask has %d entries, frame has %d rows", len(keep), f.rows))
	}
	n := 0
	for _, k := range keep {
		if k {
			n++
		}
	}
	g := NewFrame(n)
	for _, name := range f.order {
		c := f.cols[name]
		switch c.kind {
		case KindFloat:
			out := make([]float64, 0, n)
			for i, k := range keep {
				if k {
					out = append(out, c.f[i])
				}
			}
			g.SetFloat(name, out)
		case KindString:
			out := make([]string, 0, n)
			for i, k := range keep {
				if k {
					out = append(out, c.s[i])
				}
			}
			g.SetString(name, out)
		case KindVec:
			out := make([]linalg.Vector, 0, n)
			for i, k := range keep {
				if k {
					out = append(out, c.v[i])
				}
			}
			g.SetVec(name, out)
		}
	}
	return g
}

// IsMissingFloat reports whether a float cell is missing (NaN).
func IsMissingFloat(v float64) bool { return math.IsNaN(v) }

// Missing is the sentinel for a missing float cell.
var Missing = math.NaN()
