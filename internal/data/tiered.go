package data

import (
	"container/list"
	"sync"
)

// TieredBackend layers a bounded in-memory LRU cache of feature chunks
// over a slower base backend (typically disk). It models the storage
// hierarchy of the paper's prototype, where hot feature chunks live in
// Spark's block cache while the historical tier sits on HDFS: fetches of
// recently used chunks are memory-speed, cold fetches pay the base
// backend's price and warm the cache. Raw chunks pass through uncached
// (they are only read in bulk during retraining and re-materialization).
type TieredBackend struct {
	base Backend

	mu      sync.Mutex
	cap     int                         //cdml:guardedby mu
	entries map[Timestamp]*list.Element //cdml:guardedby mu — value: tieredEntry
	lru     *list.List                  //cdml:guardedby mu — front = most recently used

	hits, misses int64 //cdml:guardedby mu
}

type tieredEntry struct {
	id Timestamp
	fc FeatureChunk
}

// NewTieredBackend wraps base with an LRU feature-chunk cache of the given
// capacity (chunks).
func NewTieredBackend(base Backend, capacity int) *TieredBackend {
	if capacity <= 0 {
		panic("data: tiered cache capacity must be positive")
	}
	return &TieredBackend{
		base:    base,
		cap:     capacity,
		entries: make(map[Timestamp]*list.Element),
		lru:     list.New(),
	}
}

// CacheStats returns the cache hit/miss counters.
func (t *TieredBackend) CacheStats() (hits, misses int64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.hits, t.misses
}

// PutRaw implements Backend (pass-through).
func (t *TieredBackend) PutRaw(rc RawChunk) error { return t.base.PutRaw(rc) }

// GetRaw implements Backend (pass-through).
func (t *TieredBackend) GetRaw(id Timestamp) (RawChunk, error) { return t.base.GetRaw(id) }

// PutFeatures implements Backend: writes through to the base and installs
// the chunk in the cache.
func (t *TieredBackend) PutFeatures(fc FeatureChunk) error {
	if err := t.base.PutFeatures(fc); err != nil {
		return err
	}
	t.mu.Lock()
	t.installLocked(fc)
	t.mu.Unlock()
	return nil
}

func (t *TieredBackend) installLocked(fc FeatureChunk) {
	if el, ok := t.entries[fc.ID]; ok {
		el.Value = tieredEntry{id: fc.ID, fc: fc}
		t.lru.MoveToFront(el)
		return
	}
	t.entries[fc.ID] = t.lru.PushFront(tieredEntry{id: fc.ID, fc: fc})
	for t.lru.Len() > t.cap {
		back := t.lru.Back()
		t.lru.Remove(back)
		delete(t.entries, back.Value.(tieredEntry).id)
	}
}

// GetFeatures implements Backend: served from the cache when hot, from the
// base otherwise (warming the cache).
func (t *TieredBackend) GetFeatures(id Timestamp) (FeatureChunk, error) {
	t.mu.Lock()
	if el, ok := t.entries[id]; ok {
		t.lru.MoveToFront(el)
		t.hits++
		fc := el.Value.(tieredEntry).fc
		t.mu.Unlock()
		return fc, nil
	}
	t.misses++
	t.mu.Unlock()
	fc, err := t.base.GetFeatures(id)
	if err != nil {
		return FeatureChunk{}, err
	}
	t.mu.Lock()
	t.installLocked(fc)
	t.mu.Unlock()
	return fc, nil
}

// DeleteRaw drops a raw chunk from the base backend when it supports
// deletion (the raw-capacity bound uses it).
func (t *TieredBackend) DeleteRaw(id Timestamp) error {
	if dr, ok := t.base.(rawDeleter); ok {
		return dr.DeleteRaw(id)
	}
	return nil
}

// DeleteFeatures implements Backend: evicts from both tiers.
func (t *TieredBackend) DeleteFeatures(id Timestamp) error {
	t.mu.Lock()
	if el, ok := t.entries[id]; ok {
		t.lru.Remove(el)
		delete(t.entries, id)
	}
	t.mu.Unlock()
	return t.base.DeleteFeatures(id)
}

// Close implements Backend.
func (t *TieredBackend) Close() error { return t.base.Close() }
