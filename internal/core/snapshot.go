package core

import (
	"time"

	"cdml/internal/eval"
	"cdml/internal/model"
	"cdml/internal/opt"
	"cdml/internal/pipeline"
)

// Snapshot is one immutable published deployment state: the transform-only
// pipeline clone, the cloned model weights, and the precomputed statistics
// as of publish time. The writer (Ingest, Run, RestoreCheckpoint) builds a
// fresh Snapshot at the end of every deployment tick and publishes it with
// a single atomic pointer store; readers (Predict, Stats) load the pointer
// and never synchronize with the writer — the Velox pattern (Crankshaw et
// al., CIDR 2015) of serving from immutable model snapshots while training
// continues.
//
// Nothing reachable from a Snapshot is ever mutated after publish, which is
// the entire memory-safety argument: a reader holding an old snapshot keeps
// a fully consistent (pipeline, model, stats) triple even while the writer
// retrains, restores a checkpoint, or publishes newer versions. The
// snapfreeze analyzer enforces this structurally from the marker below:
// every named struct reachable from here through pointers, slices, or maps
// is immutable outside constructors and Clone/Snapshot methods (the one
// sanctioned exception is eval.CostClock, which is //cdml:mutable).
//
//cdml:frozen
type Snapshot struct {
	pipe *pipeline.Pipeline
	mdl  model.Model
	// optm is the optimizer state cloned at publish time. It is not needed
	// for serving, but it makes a Snapshot a complete resume point: the
	// checkpoint path (auto-checkpointing and GET /v1/checkpoint) encodes
	// snapshots without ever touching the writer mutex, so a slow
	// checkpoint consumer can never stall Ingest.
	optm    opt.Optimizer
	version uint64
	builtAt time.Time
	metric  float64
	stats   Result
	// traceID is the trace id of the tick that produced this snapshot ("" for
	// non-tick publishes: the initial snapshot, Run's final publish, restores).
	// The background checkpoint writer tags its span tree with it, so an
	// end-to-end trace reaches all the way into the fsync.
	traceID string
}

// Version returns the monotonically increasing publish sequence number
// (1 is the initial snapshot built by NewDeployer).
func (s *Snapshot) Version() uint64 { return s.version }

// BuiltAt returns when the snapshot was published.
func (s *Snapshot) BuiltAt() time.Time { return s.builtAt }

// Metric returns the cumulative prequential error at publish time.
func (s *Snapshot) Metric() float64 { return s.metric }

// current returns the published snapshot. It is the entirety of the read
// path's synchronization: one atomic pointer load, no locks shared with the
// training writer.
//
//cdml:hotpath
func (d *Deployer) current() *Snapshot { return d.snap.Load() }

// Current exposes the published snapshot for status endpoints (version,
// build time, staleness).
func (d *Deployer) Current() *Snapshot { return d.snap.Load() }

// freezeSeries returns a read-only view of a writer-owned curve using a
// capped slice: the writer only ever appends, and with cap == len the
// append after a capacity grow or in-place extension writes indices ≥ len —
// memory the frozen view can never reach — so readers iterate the view
// without racing the writer.
func freezeSeries(s *eval.Series) *eval.Series {
	nx, ny := len(s.Xs), len(s.Ys)
	return &eval.Series{Name: s.Name, Xs: s.Xs[:nx:nx], Ys: s.Ys[:ny:ny]}
}

// publish builds the next snapshot from the deployed pipeline, model, and
// accumulated result and atomically swaps it in. Callers must hold the
// writer serialization (d.mu for live use; NewDeployer and Run are
// single-threaded by construction). Publishing is O(stateful components +
// model dim) — the deep copies run once per tick, never per query.
//
//cdml:locked mu — the caller provides the writer serialization documented above
func (d *Deployer) publish() {
	res := d.liveResult()
	d.publishSeq++
	snap := &Snapshot{
		pipe:    d.pipe.Snapshot(),
		mdl:     d.mdl.Clone(),
		optm:    d.optm.Clone(),
		version: d.publishSeq,
		builtAt: time.Now(),
		metric:  d.cfg.Metric.Value(),
		// Consume the stashed tick trace id (set by endTick) so only the
		// publish that follows a tick inherits it — never a restore or the
		// initial publish.
		traceID: d.lastTickTraceID,
	}
	d.lastTickTraceID = ""
	// Precompute the Stats() answer so readers return it without touching
	// writer-owned state: shallow-copy the accumulating result, freeze the
	// curves, and resolve the derived fields as of this publish.
	st := *res
	st.ErrorCurve = freezeSeries(res.ErrorCurve)
	st.CostCurve = freezeSeries(res.CostCurve)
	st.FinalError = snap.metric
	st.AvgError = st.ErrorCurve.Mean()
	st.MatStats = d.cfg.Store.Stats()
	snap.stats = st //lint:allow snapfreeze: pre-publication construction — snap is unshared until the Store below
	d.snap.Store(snap)
	d.obs.snapshotPublishes.Inc()
	// Hand the snapshot to the auto-checkpoint loop (non-blocking: a due
	// checkpoint is skipped, never waited on, when a write is in flight).
	if d.ckpt != nil {
		d.ckpt.observePublish(snap)
	}
}
