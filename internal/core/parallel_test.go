package core

import (
	"context"
	"math/rand"
	"testing"

	"cdml/internal/data"
	"cdml/internal/engine"
	"cdml/internal/linalg"
	"cdml/internal/model"
	"cdml/internal/opt"
)

// modelCase pairs a model factory with a matching batch generator, covering
// the sparse (SVM, MF) and dense (linear regression, k-means) gradient
// paths of the sharded trainer.
type modelCase struct {
	name  string
	make  func() model.Model
	batch func(r *rand.Rand, n int) []data.Instance
}

func parallelCases() []modelCase {
	const dim = 32
	sparseBatch := func(r *rand.Rand, n int) []data.Instance {
		out := make([]data.Instance, n)
		for k := range out {
			nnz := 3 + r.Intn(4)
			idx := make([]int32, 0, nnz)
			val := make([]float64, 0, nnz)
			seen := map[int32]bool{}
			for len(idx) < nnz {
				i := int32(r.Intn(dim))
				if seen[i] {
					continue
				}
				seen[i] = true
				idx = append(idx, i)
				val = append(val, r.NormFloat64())
			}
			y := 1.0
			if r.Float64() < 0.5 {
				y = -1
			}
			out[k] = data.Instance{X: linalg.NewSparse(dim, idx, val), Y: y}
		}
		return out
	}
	denseBatch := func(r *rand.Rand, n int) []data.Instance {
		out := make([]data.Instance, n)
		for k := range out {
			x := make(linalg.Dense, dim)
			for j := range x {
				x[j] = r.NormFloat64()
			}
			out[k] = data.Instance{X: x, Y: r.NormFloat64()}
		}
		return out
	}
	const users, items = 12, 17
	mfBatch := func(r *rand.Rand, n int) []data.Instance {
		out := make([]data.Instance, n)
		for k := range out {
			u, i := r.Intn(users), r.Intn(items)
			out[k] = data.Instance{
				X: model.EncodePair(users, items, u, i),
				Y: 1 + 4*r.Float64(),
			}
		}
		return out
	}
	const kmDim = 4
	kmBatch := func(r *rand.Rand, n int) []data.Instance {
		out := make([]data.Instance, n)
		for k := range out {
			x := make(linalg.Dense, kmDim)
			for j := range x {
				x[j] = r.NormFloat64() + float64(k%3)*3
			}
			out[k] = data.Instance{X: x}
		}
		return out
	}
	return []modelCase{
		{"svm-sparse", func() model.Model { return model.NewSVM(dim, 1e-3) }, sparseBatch},
		{"linreg-dense", func() model.Model { return model.NewLinearRegression(dim, 1e-3) }, denseBatch},
		{"logreg-sparse", func() model.Model { return model.NewLogisticRegression(dim, 1e-3) }, sparseBatch},
		{"mf", func() model.Model { return model.NewMF(users, items, 3, 1e-3, 5) }, mfBatch},
		{"kmeans", func() model.Model {
			m := model.NewKMeans(3, kmDim)
			r := rand.New(rand.NewSource(2))
			m.Init(kmBatch(r, 9))
			return m
		}, kmBatch},
	}
}

func wantSameWeights(t *testing.T, name string, a, b []float64) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: weight lengths %d vs %d", name, len(a), len(b))
	}
	for i := range a {
		//lint:allow floateq: bit-identity is the property under test
		if a[i] != b[i] {
			t.Fatalf("%s: weight %d differs: %v vs %v", name, i, a[i], b[i])
		}
	}
}

// TestShardedUpdateMatchesFusedSingleShard verifies the determinism
// contract's anchor: when the batch fits one shard, ShardedUpdate is
// bit-identical to the fused model.Update path — same weights, same loss —
// even on a multi-worker engine.
func TestShardedUpdateMatchesFusedSingleShard(t *testing.T) {
	eng := engine.New(4)
	for _, c := range parallelCases() {
		t.Run(c.name, func(t *testing.T) {
			r := rand.New(rand.NewSource(42))
			fused := c.make()
			sharded := fused.Clone()
			optF, optS := opt.NewAdam(0.05), opt.NewAdam(0.05)
			for iter := 0; iter < 5; iter++ {
				batch := c.batch(r, 48)
				lossF := fused.Update(batch, optF)
				lossS, st, err := ShardedUpdate(context.Background(), eng, len(batch), sharded, optS, batch)
				if err != nil {
					t.Fatal(err)
				}
				if st.Shards != 1 {
					t.Fatalf("iter %d: %d shards, want 1", iter, st.Shards)
				}
				//lint:allow floateq: bit-identity is the property under test
				if lossF != lossS {
					t.Fatalf("iter %d: loss %v (fused) vs %v (sharded)", iter, lossF, lossS)
				}
				wantSameWeights(t, c.name, fused.Weights(), sharded.Weights())
			}
		})
	}
}

// TestShardedUpdateIdenticalAcrossWorkerCounts verifies the tentpole
// guarantee: the shard partition depends only on the batch size and shard
// rows, and the reduce runs in fixed shard order, so training is
// bit-identical at any engine worker count.
func TestShardedUpdateIdenticalAcrossWorkerCounts(t *testing.T) {
	const shardRows = 16 // 100-row batches split into 7 shards
	for _, c := range parallelCases() {
		t.Run(c.name, func(t *testing.T) {
			var refWeights []float64
			var refLosses []float64
			for wi, workers := range []int{1, 4, 8} {
				eng := engine.New(workers)
				r := rand.New(rand.NewSource(99))
				mdl := c.make()
				om := opt.NewAdam(0.05)
				var losses []float64
				for iter := 0; iter < 4; iter++ {
					batch := c.batch(r, 100)
					loss, st, err := ShardedUpdate(context.Background(), eng, shardRows, mdl, om, batch)
					if err != nil {
						t.Fatal(err)
					}
					if st.Shards != 7 {
						t.Fatalf("%d shards, want 7", st.Shards)
					}
					losses = append(losses, loss)
				}
				if wi == 0 {
					refWeights = append([]float64(nil), mdl.Weights()...)
					refLosses = losses
					continue
				}
				wantSameWeights(t, c.name, refWeights, mdl.Weights())
				for i := range losses {
					//lint:allow floateq: bit-identity is the property under test
					if losses[i] != refLosses[i] {
						t.Fatalf("workers=%d: loss %d differs: %v vs %v", workers, i, losses[i], refLosses[i])
					}
				}
			}
		})
	}
}

// TestShardedUpdateSingleOptimizerStep checks that a multi-shard update
// advances the optimizer exactly once per mini-batch — the property that
// keeps adaptive optimizers (Adam moments, FTRL state) on the serial
// trajectory.
func TestShardedUpdateSingleOptimizerStep(t *testing.T) {
	c := parallelCases()[0]
	eng := engine.New(4)
	r := rand.New(rand.NewSource(3))
	mdl := c.make()
	om := opt.NewAdam(0.05)
	const iters = 6
	for i := 0; i < iters; i++ {
		if _, st, err := ShardedUpdate(context.Background(), eng, 10, mdl, om, c.batch(r, 64)); err != nil {
			t.Fatal(err)
		} else if st.Shards != 7 {
			t.Fatalf("%d shards, want 7", st.Shards)
		}
	}
	if om.Steps() != iters {
		t.Fatalf("optimizer advanced %d steps over %d mini-batches", om.Steps(), iters)
	}
}

// TestShardedUpdateEmptyBatch checks the no-op path: no step, no error.
func TestShardedUpdateEmptyBatch(t *testing.T) {
	mdl := model.NewSVM(4, 0)
	om := opt.NewSGD(0.1)
	before := append([]float64(nil), mdl.Weights()...)
	loss, st, err := ShardedUpdate(context.Background(), engine.New(2), 8, mdl, om, nil)
	if err != nil || loss != 0 || st.Shards != 0 {
		t.Fatalf("loss=%v stats=%+v err=%v", loss, st, err)
	}
	wantSameWeights(t, "empty", before, mdl.Weights())
	if om.Steps() != 0 {
		t.Fatalf("optimizer stepped %d times on an empty batch", om.Steps())
	}
}

// TestShardedUpdateCancelled checks that a cancelled context aborts without
// applying an optimizer step.
func TestShardedUpdateCancelled(t *testing.T) {
	c := parallelCases()[0]
	r := rand.New(rand.NewSource(8))
	mdl := c.make()
	om := opt.NewAdam(0.05)
	before := append([]float64(nil), mdl.Weights()...)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := ShardedUpdate(ctx, engine.New(2), 8, mdl, om, c.batch(r, 64))
	if err == nil {
		t.Fatal("expected context error")
	}
	wantSameWeights(t, "cancelled", before, mdl.Weights())
	if om.Steps() != 0 {
		t.Fatalf("optimizer stepped %d times after cancellation", om.Steps())
	}
}

func TestNumShardsAndBounds(t *testing.T) {
	cases := []struct {
		n, rows, want int
	}{
		{1, 256, 1}, {256, 256, 1}, {257, 256, 2}, {1000, 256, 4},
		{100, 16, 7}, {5, 0, 1},
	}
	for _, c := range cases {
		if got := numShards(c.n, c.rows); got != c.want {
			t.Fatalf("numShards(%d,%d) = %d, want %d", c.n, c.rows, got, c.want)
		}
	}
	// Bounds tile [0,n) exactly, in order, with near-equal sizes.
	n, shards := 100, 7
	prev := 0
	for s := 0; s < shards; s++ {
		lo, hi := shardBounds(n, shards, s)
		if lo != prev || hi <= lo {
			t.Fatalf("shard %d bounds [%d,%d) after %d", s, lo, hi, prev)
		}
		if size := hi - lo; size < n/shards || size > n/shards+1 {
			t.Fatalf("shard %d size %d unbalanced", s, size)
		}
		prev = hi
	}
	if prev != n {
		t.Fatalf("shards cover [0,%d), want [0,%d)", prev, n)
	}
}
