package core

import (
	"context"
	"fmt"
	"time"

	"cdml/internal/eval"
)

// liveResult lazily creates the accumulating result for live use.
//
//cdml:locked mu — called from ingestTick (which holds d.mu) and the mu-taking checkpoint paths
func (d *Deployer) liveResult() *Result {
	if d.live == nil {
		d.live = &Result{
			Mode:       d.cfg.Mode,
			ErrorCurve: &eval.Series{Name: d.cfg.Mode.String() + "-error"},
			CostCurve:  &eval.Series{Name: d.cfg.Mode.String() + "-cost"},
			Cost:       d.cost,
		}
	}
	return d.live
}

// Ingest feeds one chunk of labeled training data into the live
// deployment: the chunk is prequentially scored against the deployed
// model, used for online learning, stored, and — per strategy — may
// trigger proactive training or a periodical retraining. Ingest is the
// serialized writer of the snapshot architecture: ticks run one at a time
// under d.mu and end by publishing a fresh immutable Snapshot for the
// lock-free readers (see reader.go). A failed tick publishes nothing, so
// readers never observe a half-applied tick. Safe for concurrent use with
// Predict and Stats.
//
//cdml:detached compatibility entry point for context-free callers; request paths use IngestCtx
func (d *Deployer) Ingest(records [][]byte) error {
	return d.IngestCtx(context.Background(), records)
}

// IngestCtx is Ingest with trace identity: when ctx carries an obs.Span
// (see obs.ContextWithSpan), the tick's span tree inherits its trace and
// request ids, so the tick shows up under /v1/trace?id=<trace id> next to
// the HTTP request that caused it.
func (d *Deployer) IngestCtx(ctx context.Context, records [][]byte) error {
	err := d.ingestTick(ctx, records, time.Time{}, 0)
	d.shadowTee(ctx, records, err)
	return err
}

// IngestQueued is IngestCtx for chunks that waited in an async queue:
// enqueuedAt is when the chunk entered the queue, and the wait is recorded
// as a leading "queue-wait" child of the tick span — so an end-to-end trace
// explains queue time separately from training time.
func (d *Deployer) IngestQueued(ctx context.Context, records [][]byte, enqueuedAt time.Time) error {
	err := d.ingestTick(ctx, records, enqueuedAt, 0)
	d.shadowTee(ctx, records, err)
	return err
}

// shadowTee mirrors a successfully ingested chunk to the configured
// Config.ShadowTee hook. It runs after ingestTick has released d.mu, so
// the hook can ingest into another deployer (the shadow challenger) with
// no lock held on this one — the champion's trajectory and its tick
// latency as seen by its own writer are untouched by the tee target's
// training cost only in ordering, never in state. Failed ticks published
// nothing and are not teed: a shadow challenger sees exactly the chunk
// sequence that reached the champion's model.
func (d *Deployer) shadowTee(ctx context.Context, records [][]byte, tickErr error) {
	if tickErr == nil && d.cfg.ShadowTee != nil {
		d.cfg.ShadowTee(ctx, records)
	}
}

// ingestTick executes one serialized live tick (see Ingest for
// semantics). walSeq, when nonzero, is the chunk's write-ahead ingest log
// sequence number: a successful tick buffers a commit record carrying the
// publish version it is about to produce — under d.mu and before
// publish(), so the commit provably happens before the snapshot can reach
// the checkpoint writer (whose pre-write log sync makes it durable).
func (d *Deployer) ingestTick(ctx context.Context, records [][]byte, enqueuedAt time.Time, walSeq uint64) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.drainQueryLoad()
	res := d.liveResult()
	d.beginTickCtx(ctx)
	if !enqueuedAt.IsZero() {
		// Backdate the queue-wait span to the enqueue time: the wait already
		// happened by the time the tick starts, so the span is recorded
		// retroactively rather than timed live.
		qw := d.tickSpan.StartChild("queue-wait")
		qw.Start = enqueuedAt
		qw.Finish()
	}
	if err := d.serveAndScore(records, res); err != nil {
		return err
	}
	if err := d.ingest(records, res); err != nil {
		return err
	}
	d.endTick()
	res.ErrorCurve.Append(float64(d.cfg.Store.NumRaw()), d.cfg.Metric.Value())
	res.CostCurve.Append(float64(d.cfg.Store.NumRaw()), d.cost.Total().Seconds())
	if walSeq != 0 && d.wal != nil {
		// publish() below assigns publishSeq+1; committing that version here,
		// before the publish, is what makes the checkpoint writer's log sync
		// cover every consumed chunk (see internal/core/wal.go).
		if err := d.wal.MarkApplied(walSeq, d.publishSeq+1); err != nil {
			return fmt.Errorf("core: ingest log commit: %w", err)
		}
	}
	d.publish()
	return nil
}

// drainQueryLoad hands the read path's accumulated load observations to the
// dynamic scheduler. Predict cannot call Scheduler.ObserveQueries itself —
// the EWMA state is unsynchronized writer-owned state — so readers add to
// atomic pending counters and the writer folds them in at the start of each
// tick, under the same serialization as every other scheduler call.
func (d *Deployer) drainQueryLoad() {
	if d.cfg.Scheduler == nil {
		return
	}
	n := d.pendingQueries.Swap(0)
	nanos := d.pendingQueryNanos.Swap(0)
	if n > 0 {
		d.cfg.Scheduler.ObserveQueries(time.Now(), int(n), time.Duration(nanos))
	}
}
