package core

import (
	"fmt"
	"time"

	"cdml/internal/data"
	"cdml/internal/eval"
)

// liveResult lazily creates the accumulating result for live use.
func (d *Deployer) liveResult() *Result {
	if d.live == nil {
		d.live = &Result{
			Mode:       d.cfg.Mode,
			ErrorCurve: &eval.Series{Name: d.cfg.Mode.String() + "-error"},
			CostCurve:  &eval.Series{Name: d.cfg.Mode.String() + "-cost"},
			Cost:       d.cost,
		}
	}
	return d.live
}

// Ingest feeds one chunk of labeled training data into the live
// deployment: the chunk is prequentially scored against the deployed
// model, used for online learning, stored, and — per strategy — may
// trigger proactive training or a periodical retraining. Safe for
// concurrent use with Predict and Stats.
func (d *Deployer) Ingest(records [][]byte) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	res := d.liveResult()
	d.beginTick()
	if err := d.serveAndScore(records, res); err != nil {
		return err
	}
	if err := d.ingest(records, res); err != nil {
		return err
	}
	d.endTick()
	res.ErrorCurve.Append(float64(d.cfg.Store.NumRaw()), d.cfg.Metric.Value())
	res.CostCurve.Append(float64(d.cfg.Store.NumRaw()), d.cost.Total().Seconds())
	return nil
}

// Predict answers a batch of prediction queries with the deployed pipeline
// and model: the records run through the transform-only path (guaranteeing
// train/serve consistency) and the model scores each resulting instance.
// Records the pipeline drops (e.g. anomalies) are absent from the output,
// so the result may be shorter than the input. Safe for concurrent use
// with Ingest and Stats.
func (d *Deployer) Predict(records [][]byte) ([]float64, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	start := time.Now()
	var (
		ins []data.Instance
		err error
		out []float64
	)
	d.cost.Time(eval.CatPredict, func() {
		ins, err = d.pipe.ProcessServe(records)
		if err != nil {
			return
		}
		out = make([]float64, len(ins))
		for i, in := range ins {
			out[i] = d.cfg.Predict(d.mdl, in.X)
		}
	})
	if err != nil {
		return nil, fmt.Errorf("core: predicting: %w", err)
	}
	if d.cfg.Scheduler != nil && len(ins) > 0 {
		d.cfg.Scheduler.ObserveQueries(time.Now(), len(ins), time.Since(start))
	}
	d.obs.predictLatency.Observe(time.Since(start))
	d.obs.predictQueries.Add(int64(len(ins)))
	return out, nil
}

// Stats returns a snapshot of the live deployment's accumulated result.
func (d *Deployer) Stats() Result {
	d.mu.Lock()
	defer d.mu.Unlock()
	res := d.liveResult()
	snap := *res
	snap.FinalError = d.cfg.Metric.Value()
	snap.AvgError = res.ErrorCurve.Mean()
	snap.MatStats = d.cfg.Store.Stats()
	return snap
}
