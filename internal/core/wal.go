package core

import (
	"context"
	"fmt"
	"time"

	"cdml/internal/wal"
)

// This file wires the durable write-ahead ingest log (internal/wal) into
// the deployment: append on accept, commit on consume, sync before
// checkpoint, replay on recovery, prune with checkpoint retention. The
// ordering that makes replay exact:
//
//  1. The serve layer appends a chunk (fsync) before acking 202 —
//     AppendIngestLog — so an acknowledged chunk survives any crash.
//  2. The tick that consumes it buffers a commit record carrying the
//     publish version it is about to produce, under d.mu, *before*
//     publish() hands the snapshot to the checkpoint manager.
//  3. The checkpoint manager's write calls the walSync hook before the
//     checkpoint file becomes durable. A checkpoint at version V on disk
//     therefore implies every commit with version ≤ V is on disk too.
//  4. RecoverFromDir restores the newest checkpoint at V and replays
//     exactly the logged chunks with no commit or a commit > V — each
//     exactly once, in the original order — so the recovered model is
//     bit-identical to an uninterrupted run.

// openIngestLog opens the configured log and registers its cdml_wal_*
// metric series. Called from NewDeployer before the checkpoint loop
// starts.
func (d *Deployer) openIngestLog(opts wal.Options) error {
	l, err := wal.Open(opts)
	if err != nil {
		return err
	}
	d.wal = l
	labels := d.cfg.Labels
	reg := d.obs.reg
	reg.CounterFunc("cdml_wal_appends_total",
		"Chunks durably appended to the write-ahead ingest log (one per 202 ack).",
		func() float64 { return float64(l.Stats().Appends) }, labels...)
	reg.CounterFunc("cdml_wal_applied_total",
		"Ingest-log commit records written (logged chunks consumed by a tick).",
		func() float64 { return float64(l.Stats().Applied) }, labels...)
	reg.CounterFunc("cdml_wal_aborted_total",
		"Ingest-log abort records written (logged chunks rejected or failed; never replayed).",
		func() float64 { return float64(l.Stats().Aborted) }, labels...)
	reg.CounterFunc("cdml_wal_replayed_total",
		"Logged chunks replayed by the most recent recovery.",
		func() float64 { return float64(l.Stats().Replayed) }, labels...)
	reg.CounterFunc("cdml_wal_pruned_segments_total",
		"Ingest-log segments reclaimed by checkpoint-coupled retention.",
		func() float64 { return float64(l.Stats().PrunedSegments) }, labels...)
	reg.GaugeFunc("cdml_wal_segments",
		"Current ingest-log segment file count (including the active one).",
		func() float64 { return float64(l.Stats().Segments) }, labels...)
	reg.GaugeFunc("cdml_wal_bytes",
		"Current ingest-log on-disk size across all segments.",
		func() float64 { return float64(l.Stats().Bytes) }, labels...)
	reg.GaugeFunc("cdml_wal_unapplied",
		"Logged chunks not yet consumed by a tick — what a crash right now would replay.",
		func() float64 { return float64(l.Stats().Unapplied) }, labels...)
	return nil
}

// walSyncHook returns the checkpoint manager's pre-write sync hook, nil
// when no ingest log is configured.
func (d *Deployer) walSyncHook() func() error {
	if d.wal == nil {
		return nil
	}
	return d.wal.Sync
}

// walPruneHook returns the checkpoint manager's retention hook: called
// with the oldest publish version the checkpoint retention still holds,
// so the log keeps exactly the records past the oldest recoverable
// checkpoint. nil when no ingest log is configured.
func (d *Deployer) walPruneHook() func(uint64) {
	if d.wal == nil {
		return nil
	}
	return func(keepVersion uint64) {
		// Best-effort: a failed prune retries after the next checkpoint.
		_ = d.wal.Prune(keepVersion)
	}
}

// AppendIngestLog durably appends one accepted chunk to the write-ahead
// ingest log, stamped with the current published snapshot version as its
// watermark, and returns its log sequence number. The append is fsynced
// before returning — callers ack (202) only after it succeeds, so an
// acknowledged chunk survives a crash. Returns (0, nil) when the
// deployment has no ingest log; sequence 0 is the "not logged" sentinel
// throughout the ingest path.
func (d *Deployer) AppendIngestLog(records [][]byte) (uint64, error) {
	if d.wal == nil {
		return 0, nil
	}
	return d.wal.Append(records, d.snap.Load().version)
}

// AbortIngestLog marks a logged chunk as never-to-replay: its enqueue was
// rejected after the append succeeded, or its tick failed. Safe to call
// with the 0 sentinel. Best-effort: if the abort record cannot be
// written, recovery replays the chunk (at-least-once for this rare
// disk-failure case) rather than losing it.
func (d *Deployer) AbortIngestLog(seq uint64) {
	if d.wal == nil || seq == 0 {
		return
	}
	_ = d.wal.MarkAborted(seq)
}

// IngestLogged is IngestQueued for chunks recorded in the write-ahead
// ingest log: walSeq is the sequence number AppendIngestLog returned when
// the chunk was accepted (0 = not logged; behaves exactly like
// IngestQueued). A successful tick commits the sequence with the publish
// version it produced; a failed tick aborts it — failed async ticks are
// surfaced, not retried, and replaying one on recovery would diverge
// from the uninterrupted run.
func (d *Deployer) IngestLogged(ctx context.Context, records [][]byte, enqueuedAt time.Time, walSeq uint64) error {
	err := d.ingestTick(ctx, records, enqueuedAt, walSeq)
	if err != nil {
		d.AbortIngestLog(walSeq)
	}
	d.shadowTee(ctx, records, err)
	return err
}

// WALStats reports the ingest log's counters; ok is false when the
// deployment has no write-ahead ingest log configured.
func (d *Deployer) WALStats() (wal.Stats, bool) {
	if d.wal == nil {
		return wal.Stats{}, false
	}
	return d.wal.Stats(), true
}

// ReplayIngestLog replays every logged, unconsumed chunk onto the current
// state — the cold-start recovery path when no checkpoint exists: run the
// usual warmup first (reproducing the original boot), then replay, and
// the state converges to the uninterrupted run's. When a checkpoint was
// recovered, RecoverFromDir has already replayed; calling this again is a
// no-op only if every record was committed during that replay, so use one
// path or the other. Returns the number of chunks replayed.
func (d *Deployer) ReplayIngestLog() (int, error) {
	if d.wal == nil {
		return 0, nil
	}
	return d.replayIngestLog(0)
}

// replayIngestLog re-ticks every logged chunk the checkpoint at
// ckptVersion does not cover, in append order. Replay ticks run without
// abort-on-error: a transient failure during recovery fails recovery
// loudly instead of permanently dropping an acknowledged chunk.
func (d *Deployer) replayIngestLog(ckptVersion uint64) (int, error) {
	n, err := d.wal.Replay(ckptVersion, func(seq uint64, records [][]byte) error {
		return d.ingestTick(d.ctx, records, time.Time{}, seq)
	})
	if err != nil {
		return n, fmt.Errorf("core: ingest log replay: %w", err)
	}
	return n, nil
}
