package core

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"cdml/internal/data"
	"cdml/internal/drift"
	"cdml/internal/sched"
)

// abruptStream flips its decision boundary halfway through — an abrupt
// concept drift for the detector to catch.
type abruptStream struct {
	chunks, rows int
}

func (s abruptStream) Name() string   { return "abrupt" }
func (s abruptStream) NumChunks() int { return s.chunks }

func (s abruptStream) Chunk(i int) [][]byte {
	r := rand.New(rand.NewSource(int64(i) + 1))
	sign := 1.0
	if i >= s.chunks/2 {
		sign = -1 // boundary flips
	}
	recs := make([][]byte, s.rows)
	for k := range recs {
		x0, x1 := r.NormFloat64(), r.NormFloat64()
		y := "+1"
		if sign*(x0+x1) < 0 {
			y = "-1"
		}
		recs[k] = []byte(fmt.Sprintf("%s,%.4f,%.4f", y, x0, x1))
	}
	return recs
}

func TestDriftDetectorTriggersExtraTraining(t *testing.T) {
	s := abruptStream{chunks: 80, rows: 50}
	cfg := baseConfig(ModeContinuous)
	cfg.ProactiveEvery = 1000 // schedule alone would never fire
	cfg.DriftDetector = drift.NewDDM()
	res := run(t, cfg, s)
	if res.DriftEvents == 0 {
		t.Fatal("abrupt boundary flip not detected")
	}
	if res.ProactiveRuns < res.DriftEvents {
		t.Fatalf("drift events %d did not trigger trainings (%d)", res.DriftEvents, res.ProactiveRuns)
	}
}

func TestDriftAlleviationImprovesRecovery(t *testing.T) {
	s := abruptStream{chunks: 100, rows: 50}
	plain := baseConfig(ModeContinuous)
	plain.ProactiveEvery = 50
	base := run(t, plain, s)

	adaptive := baseConfig(ModeContinuous)
	adaptive.Store = data.NewStore(data.NewMemoryBackend())
	adaptive.ProactiveEvery = 50
	adaptive.DriftDetector = drift.NewDDM()
	adapted := run(t, adaptive, s)

	// With drift-triggered training the platform trains at least as often
	// and must not end up meaningfully worse.
	if adapted.FinalError > base.FinalError*1.1 {
		t.Fatalf("drift alleviation hurt: %v vs %v", adapted.FinalError, base.FinalError)
	}
	if adapted.DriftEvents == 0 {
		t.Fatal("no drift events recorded")
	}
}

func TestNoDriftEventsWithoutDetector(t *testing.T) {
	res := run(t, baseConfig(ModeContinuous), smallStream)
	if res.DriftEvents != 0 {
		t.Fatal("drift events without a detector")
	}
}

func TestDynamicSchedulerDrivesProactiveTraining(t *testing.T) {
	cfg := baseConfig(ModeContinuous)
	cfg.ProactiveEvery = 0 // scheduler replaces the chunk counter
	cfg.Scheduler = sched.NewDynamic(1.5, time.Microsecond)
	res := run(t, cfg, smallStream)
	if res.ProactiveRuns == 0 {
		t.Fatal("dynamic scheduler never fired")
	}
}

func TestStaticWallClockScheduler(t *testing.T) {
	cfg := baseConfig(ModeContinuous)
	cfg.ProactiveEvery = 0
	// A long interval should allow only the immediate first training.
	cfg.Scheduler = sched.NewStatic(time.Hour)
	res := run(t, cfg, smallStream)
	if res.ProactiveRuns != 1 {
		t.Fatalf("proactive runs = %d, want exactly 1 with an hour-long interval", res.ProactiveRuns)
	}
}

func TestContinuousModeRequiresTriggerConfig(t *testing.T) {
	cfg := baseConfig(ModeContinuous)
	cfg.ProactiveEvery = 0
	cfg.Scheduler = nil
	if _, err := NewDeployer(cfg); err == nil {
		t.Fatal("expected validation error without any trigger")
	}
}

func TestEndToEndWithDiskStore(t *testing.T) {
	disk, err := data.NewDiskBackend(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cfg := baseConfig(ModeContinuous)
	cfg.Store = data.NewStore(disk, data.WithCapacity(15))
	res := run(t, cfg, driftStream{chunks: 50, rows: 30, drift: 1, seed: 21})
	if res.FinalError >= 0.5 {
		t.Fatalf("disk-backed deployment failed to learn: %v", res.FinalError)
	}
	if res.MatStats.Rematerializations == 0 {
		t.Fatal("capacity-bounded disk store should re-materialize")
	}
	if res.Cost.Total() == 0 {
		t.Fatal("no cost recorded")
	}
	if err := cfg.Store.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestDriftLossDefaultExactMismatch(t *testing.T) {
	cfg := baseConfig(ModeOnline)
	if err := cfg.validate(); err != nil {
		t.Fatal(err)
	}
	if cfg.DriftLoss(1, 1) != 0 || cfg.DriftLoss(1, -1) != 1 {
		t.Fatal("default drift loss wrong")
	}
}

func TestThresholdModeRetrainsOnDegradation(t *testing.T) {
	s := abruptStream{chunks: 80, rows: 50}
	cfg := baseConfig(ModeThreshold)
	cfg.RetrainThreshold = 0.35
	res := run(t, cfg, s)
	if res.Retrains == 0 {
		t.Fatal("threshold mode never retrained despite a boundary flip")
	}
	if res.ProactiveRuns != 0 {
		t.Fatal("threshold mode must not proactively train")
	}
	if res.FinalError >= 0.5 {
		t.Fatalf("threshold error = %v", res.FinalError)
	}
}

func TestThresholdModeQuietOnStationaryStream(t *testing.T) {
	// A well-fit model on a stationary stream should not trip the
	// threshold.
	cfg := baseConfig(ModeThreshold)
	cfg.RetrainThreshold = 0.5
	res := run(t, cfg, driftStream{chunks: 60, rows: 40, drift: 0, seed: 61})
	if res.Retrains > 1 {
		t.Fatalf("threshold mode retrained %d times on a stationary stream", res.Retrains)
	}
}

func TestThresholdModeValidation(t *testing.T) {
	cfg := baseConfig(ModeThreshold)
	cfg.RetrainThreshold = 0
	if _, err := NewDeployer(cfg); err == nil {
		t.Fatal("zero threshold accepted")
	}
}

func TestContinuousCheaperThanThresholdOnDrift(t *testing.T) {
	// The paper's Velox critique: threshold-triggered full retraining is
	// resource intensive; continuous deployment reaches comparable quality
	// at lower cost.
	s := abruptStream{chunks: 120, rows: 50}
	th := baseConfig(ModeThreshold)
	th.RetrainThreshold = 0.3
	thRes := run(t, th, s)

	cont := baseConfig(ModeContinuous)
	cont.Store = data.NewStore(data.NewMemoryBackend())
	contRes := run(t, cont, s)

	if thRes.Retrains == 0 {
		t.Skip("threshold never tripped at this scale")
	}
	if contRes.Cost.Total() >= thRes.Cost.Total() {
		t.Fatalf("continuous cost %v not below threshold-retraining cost %v",
			contRes.Cost.Total(), thRes.Cost.Total())
	}
	if contRes.FinalError > thRes.FinalError*1.2 {
		t.Fatalf("continuous quality %v much worse than threshold %v",
			contRes.FinalError, thRes.FinalError)
	}
}

func TestRawCapacityBoundedDeployment(t *testing.T) {
	// The paper (§3.2): "If some of the raw data chunks are not available,
	// the platform ignores these chunks during the sampling operation."
	cfg := baseConfig(ModeContinuous)
	cfg.Store = data.NewStore(data.NewMemoryBackend(),
		data.WithRawCapacity(20), data.WithCapacity(10))
	res := run(t, cfg, driftStream{chunks: 80, rows: 30, drift: 1, seed: 71})
	if res.FinalError >= 0.5 {
		t.Fatalf("bounded-history deployment failed to learn: %v", res.FinalError)
	}
	if cfg.Store.NumRaw() != 20 {
		t.Fatalf("raw retention = %d, want 20", cfg.Store.NumRaw())
	}
	if res.ProactiveRuns == 0 {
		t.Fatal("sampling stopped under the raw bound")
	}
}
