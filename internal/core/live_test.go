package core

import (
	"fmt"
	"sync"
	"testing"

	"cdml/internal/data"
	"cdml/internal/engine"
)

func TestLiveIngestPredictStats(t *testing.T) {
	d, err := NewDeployer(baseConfig(ModeContinuous))
	if err != nil {
		t.Fatal(err)
	}
	s := smallStream
	for i := 0; i < 20; i++ {
		if err := d.Ingest(s.Chunk(i)); err != nil {
			t.Fatal(err)
		}
	}
	preds, err := d.Predict(s.Chunk(21))
	if err != nil {
		t.Fatal(err)
	}
	if len(preds) != s.rows {
		t.Fatalf("predictions = %d", len(preds))
	}
	for _, p := range preds {
		if p != 1 && p != -1 {
			t.Fatalf("prediction %v not a label", p)
		}
	}
	st := d.Stats()
	if st.Evaluated != int64(20*s.rows) {
		t.Fatalf("evaluated = %d", st.Evaluated)
	}
	if st.ProactiveRuns == 0 {
		t.Fatal("no proactive training via Ingest")
	}
	if st.FinalError <= 0 || st.FinalError >= 0.5 {
		t.Fatalf("live error = %v", st.FinalError)
	}
	if st.ErrorCurve.Len() != 20 {
		t.Fatalf("curve points = %d", st.ErrorCurve.Len())
	}
}

func TestLiveMatchesRun(t *testing.T) {
	// Driving the deployment chunk-by-chunk through Ingest must produce the
	// same final model error as Run over the same stream (with
	// InitialChunks=0 so both paths see identical data).
	mk := func() Config {
		cfg := baseConfig(ModeContinuous)
		cfg.InitialChunks = 0
		cfg.Store = data.NewStore(data.NewMemoryBackend())
		return cfg
	}
	s := driftStream{chunks: 40, rows: 30, drift: 1, seed: 31}

	runDep, err := NewDeployer(mk())
	if err != nil {
		t.Fatal(err)
	}
	runRes, err := runDep.Run(s)
	if err != nil {
		t.Fatal(err)
	}

	liveDep, err := NewDeployer(mk())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < s.chunks; i++ {
		if err := liveDep.Ingest(s.Chunk(i)); err != nil {
			t.Fatal(err)
		}
	}
	liveRes := liveDep.Stats()
	if runRes.FinalError != liveRes.FinalError {
		t.Fatalf("Run error %v != live error %v", runRes.FinalError, liveRes.FinalError)
	}
	if runRes.ProactiveRuns != liveRes.ProactiveRuns {
		t.Fatalf("Run trainings %d != live trainings %d", runRes.ProactiveRuns, liveRes.ProactiveRuns)
	}
}

func TestLiveConcurrentAccess(t *testing.T) {
	d, err := NewDeployer(baseConfig(ModeContinuous))
	if err != nil {
		t.Fatal(err)
	}
	s := smallStream
	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				if g%2 == 0 {
					if err := d.Ingest(s.Chunk((g*10 + i) % s.chunks)); err != nil {
						errs <- err
						return
					}
				} else {
					if _, err := d.Predict(s.Chunk(i)); err != nil {
						errs <- err
						return
					}
					_ = d.Stats()
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// failingBackend injects storage failures after a configurable number of
// operations.
type failingBackend struct {
	data.Backend
	mu        sync.Mutex
	failAfter int
	ops       int
}

func (f *failingBackend) tick() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.ops++
	if f.ops > f.failAfter {
		return fmt.Errorf("injected storage failure (op %d)", f.ops)
	}
	return nil
}

func (f *failingBackend) PutRaw(rc data.RawChunk) error {
	if err := f.tick(); err != nil {
		return err
	}
	return f.Backend.PutRaw(rc)
}

func (f *failingBackend) PutFeatures(fc data.FeatureChunk) error {
	if err := f.tick(); err != nil {
		return err
	}
	return f.Backend.PutFeatures(fc)
}

func (f *failingBackend) GetRaw(id data.Timestamp) (data.RawChunk, error) {
	if err := f.tick(); err != nil {
		return data.RawChunk{}, err
	}
	return f.Backend.GetRaw(id)
}

func (f *failingBackend) GetFeatures(id data.Timestamp) (data.FeatureChunk, error) {
	if err := f.tick(); err != nil {
		return data.FeatureChunk{}, err
	}
	return f.Backend.GetFeatures(id)
}

func TestStorageFailuresSurface(t *testing.T) {
	for _, failAfter := range []int{0, 5, 25} {
		cfg := baseConfig(ModeContinuous)
		cfg.Store = data.NewStore(&failingBackend{
			Backend:   data.NewMemoryBackend(),
			failAfter: failAfter,
		})
		d, err := NewDeployer(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := d.Run(smallStream); err == nil {
			t.Fatalf("failAfter=%d: storage failure swallowed", failAfter)
		}
	}
}

func TestRetrainStorageFailureSurfaces(t *testing.T) {
	cfg := baseConfig(ModePeriodical)
	cfg.RetrainEvery = 10
	// Enough budget for ingestion of ~25 chunks, then fail during the
	// retraining's bulk fetch.
	cfg.Store = data.NewStore(&failingBackend{
		Backend:   data.NewMemoryBackend(),
		failAfter: 60,
	})
	d, err := NewDeployer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Run(smallStream); err == nil {
		t.Fatal("retraining storage failure swallowed")
	}
}

func TestParallelEngineIsDeterministic(t *testing.T) {
	// The engine parallelizes the retraining transform pass; results must
	// not depend on worker count.
	mk := func(workers int) *Result {
		cfg := baseConfig(ModePeriodical)
		cfg.Store = data.NewStore(data.NewMemoryBackend())
		cfg.RetrainEvery = 15
		cfg.Engine = engine.New(workers)
		return run(t, cfg, driftStream{chunks: 45, rows: 30, drift: 1, seed: 41})
	}
	a := mk(1)
	b := mk(8)
	if a.FinalError != b.FinalError {
		t.Fatalf("worker count changed results: %v vs %v", a.FinalError, b.FinalError)
	}
}
