package core

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"cdml/internal/model"
	"cdml/internal/opt"
)

// liveConfig returns a config for Ingest-driven (live) deployments; the
// chaos and checkpoint tests drive ticks one chunk at a time.
func liveConfig(mode Mode) Config {
	cfg := baseConfig(mode)
	cfg.InitialChunks = 0
	return cfg
}

func ingestChunks(t *testing.T, d *Deployer, s Stream, from, to int) {
	t.Helper()
	for i := from; i < to; i++ {
		if err := d.Ingest(s.Chunk(i)); err != nil {
			t.Fatalf("ingest chunk %d: %v", i, err)
		}
	}
}

// modelBytes serializes the published model and optimizer state for
// bit-identity comparisons. It deliberately excludes the pipeline section:
// gob iterates the statistics maps in random order, so pipeline bytes vary
// between encodes of identical state, while the weight and optimizer
// slices are byte-deterministic.
func modelBytes(t *testing.T, d *Deployer) []byte {
	t.Helper()
	s := d.Current()
	var buf bytes.Buffer
	if err := model.Save(&buf, s.mdl); err != nil {
		t.Fatal(err)
	}
	if err := opt.Save(&buf, s.optm); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestCheckpointFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	cfg := liveConfig(ModeOnline)
	d, err := NewDeployer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Shutdown()
	ingestChunks(t, d, driftStream{chunks: 10, rows: 20, drift: 2, seed: 5}, 0, 3)

	snap := d.Current()
	info, err := WriteCheckpointFile(dir, snap)
	if err != nil {
		t.Fatal(err)
	}
	if info.Version != snap.Version() {
		t.Fatalf("info version %d, want %d", info.Version, snap.Version())
	}
	payload, version, err := ReadCheckpointFile(info.Path)
	if err != nil {
		t.Fatal(err)
	}
	if version != snap.Version() {
		t.Fatalf("read version %d, want %d", version, snap.Version())
	}
	// The payload must restore into an identically-configured deployment
	// and reproduce the source's model and optimizer state exactly.
	d2, err := NewDeployer(liveConfig(ModeOnline))
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Shutdown()
	if err := d2.RestoreCheckpoint(bytes.NewReader(payload)); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(modelBytes(t, d), modelBytes(t, d2)) {
		t.Fatal("restored model/optimizer state differs from source")
	}
}

func TestReadCheckpointFileDetectsCorruption(t *testing.T) {
	dir := t.TempDir()
	d, err := NewDeployer(liveConfig(ModeOnline))
	if err != nil {
		t.Fatal(err)
	}
	defer d.Shutdown()
	ingestChunks(t, d, driftStream{chunks: 4, rows: 20, drift: 2, seed: 5}, 0, 2)
	info, err := WriteCheckpointFile(dir, d.Current())
	if err != nil {
		t.Fatal(err)
	}
	whole, err := os.ReadFile(info.Path)
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name string
		data []byte
		want string
	}{
		{"torn", whole[:len(whole)/2], "torn"},
		{"bad-magic", append([]byte("NOTACKPT"), whole[8:]...), "not a checkpoint"},
		{"bit-flip", func() []byte {
			b := append([]byte(nil), whole...)
			b[len(b)/2] ^= 0x40 // inside the payload
			return b
		}(), "CRC"},
		{"empty", nil, "not a checkpoint"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := filepath.Join(dir, "corrupt-"+tc.name+ckptSuffix)
			if err := os.WriteFile(p, tc.data, 0o644); err != nil {
				t.Fatal(err)
			}
			if _, _, err := ReadCheckpointFile(p); err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err = %v, want mention of %q", err, tc.want)
			}
		})
	}
}

func TestRecoverFromDirColdStart(t *testing.T) {
	d, err := NewDeployer(liveConfig(ModeOnline))
	if err != nil {
		t.Fatal(err)
	}
	defer d.Shutdown()
	if _, err := d.RecoverFromDir(t.TempDir()); !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("empty dir: err = %v, want ErrNoCheckpoint", err)
	}
	if _, err := d.RecoverFromDir(filepath.Join(t.TempDir(), "missing")); !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("missing dir: err = %v, want ErrNoCheckpoint", err)
	}
}

func TestAutoCheckpointWritesAndPrunes(t *testing.T) {
	dir := t.TempDir()
	cfg := liveConfig(ModeOnline)
	cfg.AutoCheckpoint = &CheckpointPolicy{Dir: dir, EveryTicks: 1, Keep: 2}
	d, err := NewDeployer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Drop a stray temp file: a crash artifact the next listing must clear.
	stray := filepath.Join(dir, ckptPrefix+"0000000000000099"+ckptSuffix+".tmp")
	if err := os.WriteFile(stray, []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}

	stream := driftStream{chunks: 12, rows: 20, drift: 2, seed: 5}
	ingestChunks(t, d, stream, 0, 8)
	d.Shutdown() // waits for the in-flight write; queued-but-unstarted may drop

	files, err := listCheckpoints(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 || len(files) > 2 {
		t.Fatalf("retention kept %d files, want 1..2", len(files))
	}
	for i := 1; i < len(files); i++ {
		if files[i-1].Version <= files[i].Version {
			t.Fatalf("listing not newest-first: %v", files)
		}
	}
	if _, err := os.Stat(stray); !os.IsNotExist(err) {
		t.Fatalf("stray tmp file not cleaned up: %v", err)
	}
	info, ok := d.LastCheckpoint()
	if !ok {
		t.Fatal("no LastCheckpoint after auto-checkpointed ingests")
	}
	if info.Version != files[0].Version {
		t.Fatalf("LastCheckpoint version %d, newest file %d", info.Version, files[0].Version)
	}
	// Every retained file must be independently valid.
	for _, f := range files {
		if _, _, err := ReadCheckpointFile(f.Path); err != nil {
			t.Fatalf("retained checkpoint %s invalid: %v", f.Path, err)
		}
	}
}

func TestCheckpointNowIsSynchronous(t *testing.T) {
	dir := t.TempDir()
	cfg := liveConfig(ModeOnline)
	// Triggers that never fire on their own: only CheckpointNow writes.
	cfg.AutoCheckpoint = &CheckpointPolicy{Dir: dir, EveryTicks: 1 << 30, Keep: 3}
	d, err := NewDeployer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Shutdown()
	ingestChunks(t, d, driftStream{chunks: 4, rows: 20, drift: 2, seed: 5}, 0, 2)

	info, err := d.CheckpointNow()
	if err != nil {
		t.Fatal(err)
	}
	if info.Version != d.Current().Version() {
		t.Fatalf("checkpointed version %d, published %d", info.Version, d.Current().Version())
	}
	if _, err := os.Stat(info.Path); err != nil {
		t.Fatalf("checkpoint file missing right after CheckpointNow: %v", err)
	}
	// A second call with no new publish writes nothing and reports the
	// checkpoint that already covers the snapshot — never a zero
	// CheckpointInfo a caller could mistake for a fresh write.
	again, err := d.CheckpointNow()
	if err != nil {
		t.Fatal(err)
	}
	if again.Version != info.Version || again.Path != info.Path {
		t.Fatalf("duplicate CheckpointNow = %+v, want the existing checkpoint %+v", again, info)
	}
	files, err := listCheckpoints(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 1 {
		t.Fatalf("duplicate CheckpointNow left %d files, want 1", len(files))
	}
}

// TestCheckpointShutdownHandoffGuarantee covers the publish/shutdown race:
// a snapshot accepted into the hand-off channel must be durable once
// Shutdown returns (written by the loop or by its final drain), and a
// publish that races past Shutdown must be dropped cleanly — never
// stranded in the channel as an "accepted" hand-off nobody will write.
func TestCheckpointShutdownHandoffGuarantee(t *testing.T) {
	dir := t.TempDir()
	cfg := liveConfig(ModeOnline)
	cfg.AutoCheckpoint = &CheckpointPolicy{Dir: dir, EveryTicks: 1, Keep: 100}
	d, err := NewDeployer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// One tick: the publish hands version 2 to the idle manager (the
	// capacity-1 channel is empty, so the hand-off is always accepted).
	ingestChunks(t, d, driftStream{chunks: 4, rows: 20, drift: 2, seed: 5}, 0, 1)
	d.Shutdown()
	files, err := listCheckpoints(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 || files[0].Version != 2 {
		t.Fatalf("accepted hand-off not durable after Shutdown: files = %v", files)
	}

	// A late hand-off (publish racing Shutdown) observes the stopped flag
	// and backs off: no hang, no new file, even for a due, newer snapshot.
	late := *d.Current()
	late.version++
	d.ckpt.observePublish(&late)
	after, err := listCheckpoints(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(after) != len(files) {
		t.Fatalf("post-shutdown hand-off wrote a checkpoint: %v", after)
	}
}

// gatedWriter blocks inside its first Write until released, emulating an
// arbitrarily slow checkpoint consumer (stalled HTTP client, saturated
// disk).
type gatedWriter struct {
	entered chan struct{}
	release chan struct{}
	once    bool
	buf     bytes.Buffer
}

func (g *gatedWriter) Write(p []byte) (int, error) {
	if !g.once {
		g.once = true
		close(g.entered)
		<-g.release
	}
	return g.buf.Write(p)
}

// TestCheckpointDoesNotBlockIngest is the regression test for the
// writer-lock bug: Checkpoint used to gob-encode into the caller's writer
// while holding the writer mutex, so one slow checkpoint consumer froze
// all training. Checkpoint must stream from the immutable published
// snapshot and let Ingest proceed concurrently.
func TestCheckpointDoesNotBlockIngest(t *testing.T) {
	d, err := NewDeployer(liveConfig(ModeOnline))
	if err != nil {
		t.Fatal(err)
	}
	defer d.Shutdown()
	stream := driftStream{chunks: 6, rows: 20, drift: 2, seed: 5}
	ingestChunks(t, d, stream, 0, 2)

	gw := &gatedWriter{entered: make(chan struct{}), release: make(chan struct{})}
	ckptDone := make(chan error, 1)
	go func() { ckptDone <- d.Checkpoint(gw) }()
	<-gw.entered // checkpoint is now stalled mid-stream

	ingested := make(chan error, 1)
	go func() { ingested <- d.Ingest(stream.Chunk(2)) }()
	select {
	case err := <-ingested:
		if err != nil {
			t.Fatalf("ingest during stalled checkpoint: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Ingest blocked behind a stalled checkpoint consumer")
	}

	close(gw.release)
	if err := <-ckptDone; err != nil {
		t.Fatalf("checkpoint after release: %v", err)
	}
	// The stalled checkpoint captured the pre-ingest snapshot; it must
	// still be a valid, restorable stream.
	d2, err := NewDeployer(liveConfig(ModeOnline))
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Shutdown()
	if err := d2.RestoreCheckpoint(bytes.NewReader(gw.buf.Bytes())); err != nil {
		t.Fatalf("restoring the slow-consumer checkpoint: %v", err)
	}
}
