package core

import (
	"bytes"
	"context"
	"sync"

	"cdml/internal/snapstream"
)

// This file adapts a Deployer to the snapstream transport layer. The
// published snapshot is the system's one unit of state movement, and these
// two adapters are the only bridge between it and the wire: a Source that
// frames the current snapshot for checkpoint files, HTTP GET, and replica
// polls; a Sink that swaps an incoming frame in atomically via the same
// restore path used by checkpoint recovery. Every transport — disk, HTTP
// restore, replication — composes these instead of re-encoding by hand.

// Frame encodes the snapshot into one versioned snapstream frame.
// Snapshots are immutable, so encoding needs no synchronization and may
// run concurrently with the training writer.
func (s *Snapshot) Frame() (snapstream.Frame, error) {
	var payload bytes.Buffer
	if err := s.encodeTo(&payload); err != nil {
		return snapstream.Frame{}, err
	}
	return snapstream.Frame{Version: s.version, Payload: payload.Bytes()}, nil
}

// snapshotSource yields the deployer's published snapshot as a frame. The
// encoded form is cached per snapshot version, so N replicas polling one
// primary cost one encode per published version, not one per poll.
type snapshotSource struct {
	d *Deployer

	mu     sync.Mutex
	cached snapstream.Frame //cdml:guardedby mu — encoded form of the newest framed snapshot
}

var _ snapstream.Source = (*snapshotSource)(nil)

// Latest frames the published snapshot when it is newer than since;
// ok=false otherwise (the poll idle case).
func (s *snapshotSource) Latest(_ context.Context, since uint64) (snapstream.Frame, bool, error) {
	snap := s.d.snap.Load()
	if snap.version <= since {
		return snapstream.Frame{}, false, nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.cached.Version == snap.version {
		return s.cached, true, nil
	}
	f, err := snap.Frame()
	if err != nil {
		return snapstream.Frame{}, false, err
	}
	s.cached = f
	return f, true, nil
}

// SnapshotSource returns the deployer's frame source: the published
// snapshot, versioned and encoded on demand. The checkpoint GET handler
// and the replication endpoint both read from it.
func (d *Deployer) SnapshotSource() snapstream.Source {
	d.snapSrcOnce.Do(func() { d.snapSrc = &snapshotSource{d: d} })
	return d.snapSrc
}

// snapshotSink swaps incoming frames into the deployer.
type snapshotSink struct{ d *Deployer }

var _ snapstream.Sink = snapshotSink{}

// Apply restores the frame's payload and republishes it under the frame's
// version (version 0 keeps the deployer's own sequence — the HTTP restore
// path, whose raw payload carries no header). The swap is atomic: a
// concurrent Predict serves either the full prior state or the full
// restored state, and a rejected frame leaves the prior snapshot serving.
func (k snapshotSink) Apply(f snapstream.Frame) error {
	return k.d.restoreCheckpointAt(bytes.NewReader(f.Payload), f.Version)
}

// SnapshotSink returns the deployer's frame sink: checkpoint recovery,
// HTTP restore, and replica swaps all apply frames through it.
func (d *Deployer) SnapshotSink() snapstream.Sink {
	return snapshotSink{d: d}
}
