package core

import (
	"fmt"
	"math/rand"
	"strconv"
	"testing"

	"cdml/internal/data"
	"cdml/internal/eval"
	"cdml/internal/linalg"
	"cdml/internal/model"
	"cdml/internal/opt"
	"cdml/internal/pipeline"
	"cdml/internal/sample"
)

// driftStream is a tiny synthetic classification stream whose decision
// boundary rotates over time. Records: "label,x0,x1".
type driftStream struct {
	chunks int
	rows   int
	drift  float64
	seed   int64
}

func (s driftStream) Name() string   { return "drift" }
func (s driftStream) NumChunks() int { return s.chunks }

func (s driftStream) Chunk(i int) [][]byte {
	r := rand.New(rand.NewSource(s.seed ^ int64(i+1)*2654435761))
	// boundary normal rotates with time
	theta := s.drift * float64(i) / float64(s.chunks)
	w0, w1 := 1.0, theta
	recs := make([][]byte, s.rows)
	for k := range recs {
		x0, x1 := r.NormFloat64(), r.NormFloat64()
		y := "+1"
		if w0*x0+w1*x1+0.2*r.NormFloat64() < 0 {
			y = "-1"
		}
		recs[k] = []byte(fmt.Sprintf("%s,%.4f,%.4f", y, x0, x1))
	}
	return recs
}

// driftParser parses driftStream records.
type driftParser struct{}

func (driftParser) Name() string { return "drift-parser" }

func (driftParser) Parse(records [][]byte) (*data.Frame, error) {
	var ys, x0s, x1s []float64
	for _, rec := range records {
		var y, x0, x1 float64
		parts := splitComma(string(rec))
		if len(parts) != 3 {
			continue
		}
		y, e1 := strconv.ParseFloat(parts[0], 64)
		x0, e2 := strconv.ParseFloat(parts[1], 64)
		x1, e3 := strconv.ParseFloat(parts[2], 64)
		if e1 != nil || e2 != nil || e3 != nil {
			continue
		}
		ys = append(ys, y)
		x0s = append(x0s, x0)
		x1s = append(x1s, x1)
	}
	f := data.NewFrame(len(ys))
	f.SetFloat("label", ys)
	f.SetFloat("x0", x0s)
	f.SetFloat("x1", x1s)
	return f, nil
}

func splitComma(s string) []string {
	var out []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == ',' {
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	return append(out, s[start:])
}

func newDriftPipeline() *pipeline.Pipeline {
	return pipeline.New(driftParser{},
		pipeline.NewStandardScaler([]string{"x0", "x1"}),
		pipeline.NewAssembler([]string{"x0", "x1"}, nil, "features"),
	)
}

func baseConfig(mode Mode) Config {
	return Config{
		Mode:        mode,
		NewPipeline: newDriftPipeline,
		NewModel:    func() model.Model { return model.NewSVM(2, 1e-4) },
		NewOptimizer: func() opt.Optimizer {
			return opt.NewAdam(0.05)
		},
		Store:          data.NewStore(data.NewMemoryBackend()),
		Sampler:        sample.NewTime(1),
		SampleChunks:   5,
		ProactiveEvery: 4,
		RetrainEvery:   20,
		RetrainEpochs:  2,
		WarmStart:      true,

		InitialChunks: 5,
		Metric:        &eval.Misclassification{},
		Predict:       ClassifyPredictor,
		Seed:          1,
	}
}

func run(t *testing.T, cfg Config, s Stream) *Result {
	t.Helper()
	d, err := NewDeployer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := d.Run(s)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

var smallStream = driftStream{chunks: 60, rows: 40, drift: 2.5, seed: 3}

func TestOnlineDeploymentRuns(t *testing.T) {
	res := run(t, baseConfig(ModeOnline), smallStream)
	if res.Evaluated == 0 {
		t.Fatal("nothing evaluated")
	}
	if res.FinalError <= 0 || res.FinalError >= 0.5 {
		t.Fatalf("online error = %v, want learnable (0, 0.5)", res.FinalError)
	}
	if res.ProactiveRuns != 0 || res.Retrains != 0 {
		t.Fatal("online mode must not proactively train or retrain")
	}
	if res.ErrorCurve.Len() == 0 || res.CostCurve.Len() == 0 {
		t.Fatal("curves not recorded")
	}
}

func TestContinuousDeploymentRuns(t *testing.T) {
	res := run(t, baseConfig(ModeContinuous), smallStream)
	if res.ProactiveRuns == 0 {
		t.Fatal("no proactive training executed")
	}
	if res.Retrains != 0 {
		t.Fatal("continuous mode must not retrain")
	}
	if res.FinalError >= 0.5 {
		t.Fatalf("continuous error = %v", res.FinalError)
	}
	if res.AvgProactive() <= 0 {
		t.Fatal("proactive timing not recorded")
	}
	if res.MatStats.Ops == 0 {
		t.Fatal("sampling accounting missing")
	}
}

func TestPeriodicalDeploymentRuns(t *testing.T) {
	res := run(t, baseConfig(ModePeriodical), smallStream)
	if res.Retrains == 0 {
		t.Fatal("no retraining executed")
	}
	if res.ProactiveRuns != 0 {
		t.Fatal("periodical mode must not proactively train")
	}
	if res.FinalError >= 0.5 {
		t.Fatalf("periodical error = %v", res.FinalError)
	}
}

func TestPeriodicalCostExceedsContinuous(t *testing.T) {
	// The headline claim (Figure 4b/4d): periodical retraining costs a
	// multiple of continuous deployment.
	big := driftStream{chunks: 100, rows: 60, drift: 2, seed: 5}
	cont := run(t, baseConfig(ModeContinuous), big)

	cfg := baseConfig(ModePeriodical)
	cfg.Store = data.NewStore(data.NewMemoryBackend())
	cfg.RetrainEvery = 10
	cfg.RetrainEpochs = 3
	per := run(t, cfg, big)

	if per.Cost.Total() <= cont.Cost.Total() {
		t.Fatalf("periodical cost %v should exceed continuous %v",
			per.Cost.Total(), cont.Cost.Total())
	}
}

func TestContinuousBeatsOnlineOnDrift(t *testing.T) {
	// On a drifting stream, training on sampled history + online data
	// should not be worse than pure online learning (paper Figure 4a/4c:
	// continuous ≤ online error).
	big := driftStream{chunks: 150, rows: 50, drift: 3, seed: 7}
	on := run(t, baseConfig(ModeOnline), big)
	cfg := baseConfig(ModeContinuous)
	cfg.Store = data.NewStore(data.NewMemoryBackend())
	cont := run(t, cfg, big)
	if cont.AvgError > on.AvgError*1.15 {
		t.Fatalf("continuous avg error %v much worse than online %v", cont.AvgError, on.AvgError)
	}
}

func TestNoOptimizationCostsMorePreprocessing(t *testing.T) {
	big := driftStream{chunks: 80, rows: 50, drift: 2, seed: 11}
	withOpt := run(t, baseConfig(ModeContinuous), big)

	cfg := baseConfig(ModeContinuous)
	cfg.Store = data.NewStore(data.NewMemoryBackend())
	cfg.NoOptimization = true
	noOpt := run(t, cfg, big)

	if noOpt.Cost.Get(eval.CatPreprocess) <= withOpt.Cost.Get(eval.CatPreprocess) {
		t.Fatalf("NoOptimization preprocess %v should exceed optimized %v",
			noOpt.Cost.Get(eval.CatPreprocess), withOpt.Cost.Get(eval.CatPreprocess))
	}
	// Without materialization every sampled chunk is a miss.
	if noOpt.MatStats.Hits != 0 {
		t.Fatalf("NoOptimization should have no materialization hits, got %d", noOpt.MatStats.Hits)
	}
}

func TestDynamicMaterializationAccounting(t *testing.T) {
	cfg := baseConfig(ModeContinuous)
	cfg.Store = data.NewStore(data.NewMemoryBackend(), data.WithCapacity(10))
	cfg.Sampler = sample.NewUniform(3)
	res := run(t, cfg, driftStream{chunks: 80, rows: 30, drift: 1, seed: 13})
	st := res.MatStats
	if st.Misses == 0 {
		t.Fatal("capacity-bounded store should force re-materializations")
	}
	if st.Rematerializations != st.Misses {
		t.Fatalf("rematerializations %d != misses %d", st.Rematerializations, st.Misses)
	}
	if mu := st.Mu(); mu <= 0 || mu >= 1 {
		t.Fatalf("μ = %v, want in (0,1)", mu)
	}
}

func TestWarmStartRetainsQualityAdvantage(t *testing.T) {
	big := driftStream{chunks: 80, rows: 40, drift: 1.5, seed: 17}
	warm := baseConfig(ModePeriodical)
	warm.RetrainEvery = 15
	wres := run(t, warm, big)

	cold := baseConfig(ModePeriodical)
	cold.Store = data.NewStore(data.NewMemoryBackend())
	cold.RetrainEvery = 15
	cold.WarmStart = false
	cres := run(t, cold, big)

	// Cold start recomputes statistics → strictly more preprocessing.
	if cres.Cost.Get(eval.CatPreprocess) <= wres.Cost.Get(eval.CatPreprocess) {
		t.Fatalf("cold-start preprocess %v should exceed warm-start %v",
			cres.Cost.Get(eval.CatPreprocess), wres.Cost.Get(eval.CatPreprocess))
	}
	// Both should still learn.
	if wres.FinalError >= 0.5 || cres.FinalError >= 0.5 {
		t.Fatalf("errors too high: warm %v cold %v", wres.FinalError, cres.FinalError)
	}
}

func TestConfigValidation(t *testing.T) {
	cases := []func(*Config){
		func(c *Config) { c.NewPipeline = nil },
		func(c *Config) { c.NewModel = nil },
		func(c *Config) { c.NewOptimizer = nil },
		func(c *Config) { c.Metric = nil },
		func(c *Config) { c.Predict = nil },
		func(c *Config) { c.Store = nil },
		func(c *Config) { c.Mode = Mode(99) },
		func(c *Config) { c.Mode = ModeContinuous; c.Sampler = nil },
		func(c *Config) { c.Mode = ModeContinuous; c.SampleChunks = 0 },
		func(c *Config) { c.Mode = ModeContinuous; c.ProactiveEvery = 0 },
		func(c *Config) { c.Mode = ModePeriodical; c.RetrainEvery = 0 },
	}
	for i, mutate := range cases {
		cfg := baseConfig(ModeContinuous)
		mutate(&cfg)
		if _, err := NewDeployer(cfg); err == nil {
			t.Fatalf("case %d: expected validation error", i)
		}
	}
}

func TestInitialChunksTooLarge(t *testing.T) {
	cfg := baseConfig(ModeOnline)
	cfg.InitialChunks = 1000
	d, err := NewDeployer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Run(smallStream); err == nil {
		t.Fatal("expected error when InitialChunks exceeds stream")
	}
}

func TestCheckpointEveryThinsCurves(t *testing.T) {
	cfg := baseConfig(ModeOnline)
	cfg.CheckpointEvery = 10
	res := run(t, cfg, smallStream)
	dense := run(t, baseConfig(ModeOnline), smallStream)
	if res.ErrorCurve.Len() >= dense.ErrorCurve.Len() {
		t.Fatalf("checkpointing did not thin: %d vs %d", res.ErrorCurve.Len(), dense.ErrorCurve.Len())
	}
}

func TestModeString(t *testing.T) {
	if ModeOnline.String() != "online" || ModePeriodical.String() != "periodical" || ModeContinuous.String() != "continuous" {
		t.Fatal("mode strings wrong")
	}
	if Mode(42).String() == "" {
		t.Fatal("unknown mode should render")
	}
}

func TestPredictors(t *testing.T) {
	svm := model.NewSVM(1, 0)
	svm.SetWeights([]float64{1, 0})
	if ClassifyPredictor(svm, linalg.Dense{5}) != 1 || ClassifyPredictor(svm, linalg.Dense{-5}) != -1 {
		t.Fatal("ClassifyPredictor wrong")
	}
	lr := model.NewLinearRegression(1, 0)
	lr.SetWeights([]float64{2, 1})
	if RegressionPredictor(lr, linalg.Dense{3}) != 7 {
		t.Fatal("RegressionPredictor wrong")
	}
}

func TestDeployerAccessors(t *testing.T) {
	d, err := NewDeployer(baseConfig(ModeOnline))
	if err != nil {
		t.Fatal(err)
	}
	if d.Model() == nil || d.Pipeline() == nil {
		t.Fatal("accessors returned nil")
	}
}

func TestDeterministicRuns(t *testing.T) {
	a := run(t, baseConfig(ModeContinuous), smallStream)
	cfg := baseConfig(ModeContinuous)
	cfg.Store = data.NewStore(data.NewMemoryBackend())
	b := run(t, cfg, smallStream)
	if a.FinalError != b.FinalError {
		t.Fatalf("non-deterministic deployment: %v vs %v", a.FinalError, b.FinalError)
	}
}

func TestEvaluationSkipsInitialChunks(t *testing.T) {
	cfg := baseConfig(ModeOnline)
	cfg.InitialChunks = 10
	res := run(t, cfg, smallStream)
	wantEval := int64((smallStream.chunks - 10) * smallStream.rows)
	if res.Evaluated != wantEval {
		t.Fatalf("evaluated %d records, want %d", res.Evaluated, wantEval)
	}
}
