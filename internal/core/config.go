// Package core assembles the substrates into the paper's continuous
// deployment platform (§4): the pipeline manager that owns the deployed
// pipeline and model, the data manager that stores and samples chunks, the
// proactive trainer that runs SGD iterations on sampled history (§3.3), and
// the three deployment strategies the evaluation compares (§5.2):
//
//   - Online: online gradient descent on each incoming chunk only.
//   - Periodical: online learning plus a full retraining every K chunks,
//     optionally warm-started (TFX-style).
//   - Continuous: online learning plus proactive training on samples of the
//     history every k chunks — the paper's contribution.
//
// Deployment time is discretized in chunks: one chunk arrives per tick,
// is first used to evaluate the deployed model (prequential evaluation) and
// then to train it.
package core

import (
	"context"
	"fmt"
	"time"

	"cdml/internal/data"
	"cdml/internal/drift"
	"cdml/internal/engine"
	"cdml/internal/eval"
	"cdml/internal/linalg"
	"cdml/internal/model"
	"cdml/internal/obs"
	"cdml/internal/opt"
	"cdml/internal/pipeline"
	"cdml/internal/sample"
	"cdml/internal/sched"
	"cdml/internal/wal"
)

// Stream supplies raw data chunks in deployment order. Both dataset
// generators satisfy it.
type Stream interface {
	// Name identifies the stream.
	Name() string
	// Chunk returns the raw records of chunk i.
	Chunk(i int) [][]byte
	// NumChunks returns the total number of chunks.
	NumChunks() int
}

// Mode selects the deployment strategy.
type Mode int

// Deployment strategies.
const (
	ModeOnline Mode = iota
	ModePeriodical
	ModeContinuous
	// ModeThreshold is the Velox-style baseline the paper's related work
	// describes (§6): online learning plus a full retraining whenever the
	// recent (fading) error exceeds a threshold. It shares the periodical
	// strategy's drawbacks — retraining is expensive and the trigger reacts
	// only after quality has already degraded.
	ModeThreshold
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case ModeOnline:
		return "online"
	case ModePeriodical:
		return "periodical"
	case ModeContinuous:
		return "continuous"
	case ModeThreshold:
		return "threshold"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Predictor maps a deployed model's output into the metric's label space
// (e.g. SVM margin → class label, regression score → value).
type Predictor func(m model.Model, x linalg.Vector) float64

// ClassifyPredictor returns the ±1 class label of an SVM-style model.
func ClassifyPredictor(m model.Model, x linalg.Vector) float64 {
	if m.Predict(x) >= 0 {
		return 1
	}
	return -1
}

// RegressionPredictor returns the raw regression score.
func RegressionPredictor(m model.Model, x linalg.Vector) float64 {
	return m.Predict(x)
}

// Config assembles one deployment run.
type Config struct {
	// Mode selects the deployment strategy.
	Mode Mode
	// NewPipeline constructs a fresh deployed pipeline. The factory is also
	// used by the NoOptimization path and by cold-start retraining, which
	// must recompute statistics from scratch.
	NewPipeline func() *pipeline.Pipeline
	// NewModel constructs a fresh model of the deployed type.
	NewModel func() model.Model
	// NewOptimizer constructs a fresh optimizer.
	NewOptimizer func() opt.Optimizer
	// Store is the data manager's chunk store; its capacity is the
	// materialization budget m.
	Store *data.Store
	// Sampler selects historical chunks for proactive training.
	Sampler sample.Strategy
	// SampleChunks is the number of chunks per proactive-training sample.
	SampleChunks int
	// ProactiveEvery triggers proactive training every k incoming chunks
	// (static scheduling in chunk time; continuous mode only).
	ProactiveEvery int
	// Scheduler, when set (continuous mode), replaces the chunk-count
	// trigger with wall-clock scheduling: the platform reports serving
	// load and training durations to it and trains whenever it is due.
	// Use sched.NewDynamic for the paper's Formula (6) policy (§4.1).
	Scheduler sched.Scheduler
	// RetrainEvery triggers a full retraining every K incoming chunks
	// (periodical mode only).
	RetrainEvery int
	// RetrainThreshold triggers a full retraining when the recent (fading)
	// per-record loss exceeds this value (threshold mode only). The loss
	// signal is DriftLoss.
	RetrainThreshold float64
	// ThresholdAlpha is the fading factor of the recent-error monitor
	// (default 0.995, an effective window of ~200 records).
	ThresholdAlpha float64
	// RetrainCooldown is the minimum number of chunks between
	// threshold-triggered retrainings (default 10), preventing retrain
	// storms while the monitor recovers.
	RetrainCooldown int
	// RetrainEpochs is the number of mini-batch SGD epochs per retraining.
	RetrainEpochs int
	// InitialEpochs is the number of epochs for the initial batch training
	// (the paper trains the initial model to convergence with a sampling
	// ratio of 1.0; defaults to 20).
	InitialEpochs int
	// RetrainBatchRows is the mini-batch size (rows) during retraining and
	// initial training.
	RetrainBatchRows int
	// WarmStart reuses pipeline statistics, model weights, and optimizer
	// state across retrainings (TFX-style; periodical mode only).
	WarmStart bool
	// NoOptimization disables the online statistics computation + dynamic
	// materialization optimizations (§3.1–3.2), running the NoOptimization
	// baseline of Figure 7: nothing is materialized and every proactive
	// sample re-reads raw chunks and recomputes component statistics from
	// scratch. The zero value is the fully optimized platform.
	NoOptimization bool
	// InitialChunks are consumed for initial batch training before
	// deployment begins (the paper's "day 0" / "Jan15" training set); they
	// are not evaluated.
	InitialChunks int
	// DriftDetector, when set (continuous mode), watches the per-record
	// prequential loss and triggers an immediate extra proactive training
	// whenever a drift is detected — the paper's future-work extension of
	// native drift alleviation (§7).
	DriftDetector drift.Detector
	// DriftLoss maps a (prediction, actual) pair to the loss signal the
	// detector consumes; it defaults to 0/1 exact mismatch, which suits
	// classification. Regression deployments should supply a bounded loss
	// (e.g. clipped absolute error).
	DriftLoss func(pred, actual float64) float64
	// DriftBoost is the number of SGD iterations a drift-triggered
	// training performs over the recent chunks (default 3) — one step
	// cannot outpace the drift, several re-anchor the model on the new
	// concept.
	DriftBoost int
	// Metric accumulates the prequential error.
	Metric eval.Metric
	// Predict maps model output to the metric's label space.
	Predict Predictor
	// Engine runs parallel chunk work — gather, transform, and gradient
	// shards; nil defaults to a single worker. Seeded runs are bit-identical
	// at any worker count (fixed shard partitions, ordered reduces), so the
	// parallelism knob is purely a throughput choice.
	Engine *engine.Engine
	// GradShardRows is the number of rows per partial-gradient shard for
	// data-parallel mini-batch updates (default DefaultGradShardRows). The
	// shard partition is a pure function of the batch size and this value —
	// never of the engine's worker count — which is what keeps seeded runs
	// reproducible across hardware. It must therefore be held fixed when
	// comparing runs.
	GradShardRows int
	// Metrics receives the deployment's counters, gauges, and latency
	// histograms (plus bridged store/engine/scheduler/cost-clock stats).
	// nil creates a private registry, so instrumentation is always on;
	// supply one to expose the metrics (e.g. through serve's /metrics).
	Metrics *obs.Registry
	// Labels are stamped on every metric series this deployment registers
	// (and on its store bridge), so several deployments can share one
	// Metrics registry without their series colliding — the deployment
	// registry labels each deployer with deployment=<name> plus a
	// generation. Empty keeps the unlabeled single-deployment series.
	// Deployments sharing a registry must also share their Engine: engine
	// series are registered unlabeled, and the registry keeps the first
	// registration.
	Labels []obs.Label
	// Tracer records each deployment tick as a tree of timed stages into a
	// bounded ring buffer. nil creates a private 64-tick tracer; supply one
	// to expose recent ticks (e.g. through serve's /trace).
	Tracer *obs.Tracer
	// AutoCheckpoint, when set, persists published snapshots to disk
	// automatically (every EveryTicks ticks or Interval of wall clock,
	// whichever fires first) so a crashed process can resume from the last
	// completed tick via RecoverFromDir. The writes happen on a background
	// goroutine off the tick path; see CheckpointPolicy.
	AutoCheckpoint *CheckpointPolicy
	// IngestLog, when set, opens a durable write-ahead ingest log (see
	// internal/wal): chunks appended via AppendIngestLog are fsynced before
	// the async ingest path acknowledges them, the drainer's IngestLogged
	// ticks mark consumption, and RecoverFromDir replays every logged chunk
	// the recovered checkpoint does not cover — making crash recovery exact
	// rather than checkpoint-granular. Retention is coupled to checkpoint
	// pruning: segments fully covered by the oldest retained checkpoint are
	// reclaimed after each checkpoint prune.
	IngestLog *wal.Options
	// ShadowTee, when set, receives every successfully ingested live chunk
	// after its tick has completed and published (Ingest, IngestCtx, and
	// IngestQueued paths; Run does not tee). The deployment registry uses it
	// to mirror live ingest traffic into a shadow challenger: the hook runs
	// after the writer mutex is released, so the champion's own training
	// trajectory is bit-identical with and without a tee attached, and the
	// hook may ingest into another deployer without any lock nesting. The
	// hook runs synchronously on the ingest caller's goroutine and must not
	// call back into this deployer's writer paths.
	ShadowTee func(ctx context.Context, records [][]byte)
	// Seed drives the retraining shuffles.
	Seed int64
	// CheckpointEvery controls error/cost curve resolution in chunks
	// (default 1).
	CheckpointEvery int
}

func (c *Config) validate() error {
	if c.NewPipeline == nil || c.NewModel == nil || c.NewOptimizer == nil {
		return fmt.Errorf("core: NewPipeline, NewModel, and NewOptimizer are required")
	}
	if c.Metric == nil || c.Predict == nil {
		return fmt.Errorf("core: Metric and Predict are required")
	}
	if c.Store == nil {
		return fmt.Errorf("core: Store is required")
	}
	switch c.Mode {
	case ModeOnline:
	case ModeContinuous:
		if c.Sampler == nil {
			return fmt.Errorf("core: continuous mode requires a Sampler")
		}
		if c.SampleChunks <= 0 {
			return fmt.Errorf("core: continuous mode requires positive SampleChunks, got %d", c.SampleChunks)
		}
		if c.ProactiveEvery <= 0 && c.Scheduler == nil {
			return fmt.Errorf("core: continuous mode requires positive ProactiveEvery or a Scheduler")
		}
	case ModePeriodical:
		if c.RetrainEvery <= 0 {
			return fmt.Errorf("core: periodical mode requires positive RetrainEvery, got %d", c.RetrainEvery)
		}
	case ModeThreshold:
		if c.RetrainThreshold <= 0 {
			return fmt.Errorf("core: threshold mode requires positive RetrainThreshold, got %v", c.RetrainThreshold)
		}
		if c.ThresholdAlpha <= 0 || c.ThresholdAlpha >= 1 {
			c.ThresholdAlpha = 0.995
		}
		if c.RetrainCooldown <= 0 {
			c.RetrainCooldown = 10
		}
	default:
		return fmt.Errorf("core: unknown mode %v", c.Mode)
	}
	if c.RetrainEpochs <= 0 {
		c.RetrainEpochs = 3
	}
	if c.InitialEpochs <= 0 {
		c.InitialEpochs = 20
	}
	if c.RetrainBatchRows <= 0 {
		c.RetrainBatchRows = 512
	}
	if c.CheckpointEvery <= 0 {
		c.CheckpointEvery = 1
	}
	if c.Engine == nil {
		c.Engine = engine.New(1)
	}
	if c.GradShardRows <= 0 {
		c.GradShardRows = DefaultGradShardRows
	}
	if c.DriftBoost <= 0 {
		c.DriftBoost = 3
	}
	if c.AutoCheckpoint != nil && c.AutoCheckpoint.Dir == "" {
		return fmt.Errorf("core: AutoCheckpoint requires a Dir")
	}
	if c.IngestLog != nil && c.IngestLog.Dir == "" {
		return fmt.Errorf("core: IngestLog requires a Dir")
	}
	if c.DriftLoss == nil {
		c.DriftLoss = func(pred, actual float64) float64 {
			//lint:allow floateq: 0/1 loss compares exact class labels
			if pred != actual {
				return 1
			}
			return 0
		}
	}
	return nil
}

// Result summarizes one deployment run.
type Result struct {
	// Mode echoes the strategy.
	Mode Mode
	// ErrorCurve is the cumulative prequential error over chunk time.
	ErrorCurve *eval.Series
	// CostCurve is the cumulative deployment cost (seconds) over chunk
	// time.
	CostCurve *eval.Series
	// FinalError is the cumulative error at the end of the deployment.
	FinalError float64
	// AvgError is the mean of the error curve — the paper's "average error
	// rate over the deployment".
	AvgError float64
	// Cost is the per-category cost breakdown.
	Cost *eval.CostClock
	// MatStats is the materialization accounting (continuous mode).
	MatStats data.MatStats
	// ProactiveRuns counts proactive trainings executed.
	ProactiveRuns int
	// DriftEvents counts drifts detected (and the extra proactive
	// trainings they triggered).
	DriftEvents int
	// Retrains counts full retrainings executed.
	Retrains int
	// ProactiveTotal is the wall-clock total of all proactive trainings.
	ProactiveTotal time.Duration
	// RetrainTotal is the wall-clock total of all full retrainings — the
	// §5.5 staleness discussion compares its per-event average against the
	// proactive average.
	RetrainTotal time.Duration
	// Evaluated counts prequentially evaluated records.
	Evaluated int64
}

// AvgProactive returns the mean proactive-training duration.
func (r *Result) AvgProactive() time.Duration {
	if r.ProactiveRuns == 0 {
		return 0
	}
	return r.ProactiveTotal / time.Duration(r.ProactiveRuns)
}

// AvgRetrain returns the mean full-retraining duration.
func (r *Result) AvgRetrain() time.Duration {
	if r.Retrains == 0 {
		return 0
	}
	return r.RetrainTotal / time.Duration(r.Retrains)
}
