package core

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"cdml/internal/data"
	"cdml/internal/drift"
	"cdml/internal/engine"
	"cdml/internal/eval"
	"cdml/internal/model"
	"cdml/internal/obs"
	"cdml/internal/opt"
	"cdml/internal/pipeline"
	"cdml/internal/wal"
)

// Deployer executes one deployment scenario. It can be driven two ways:
// Run plays a whole recorded stream (the experiment harness), while
// Ingest/Predict drive a live deployment one chunk or query batch at a
// time (the serving path). The two entry points share the same training
// machinery; use one or the other, not both.
type Deployer struct {
	cfg  Config
	pipe *pipeline.Pipeline
	mdl  model.Model
	optm opt.Optimizer
	cost *eval.CostClock
	rng  *rand.Rand
	// driftPending is set when the drift detector fires mid-chunk and is
	// consumed by the next training decision.
	//cdml:guardedby mu
	driftPending bool
	// countdowns for the chunk-count triggers, shared by Run and Ingest.
	//cdml:guardedby mu
	proactiveCountdown int
	//cdml:guardedby mu
	retrainCountdown int
	// threshold-mode state: the recent-error monitor and the retrain
	// cooldown counter.
	//cdml:guardedby mu
	thresholdMonitor *eval.Fading
	//cdml:guardedby mu
	thresholdCooldown int
	// obs holds the deployment's instruments (always non-nil); tickSpan is
	// the span tree of the tick in flight, nil between ticks. Both are
	// guarded by the same serialization as the rest of the deployment
	// state (d.mu for live use; Run is single-threaded).
	obs *deployObs
	//cdml:guardedby mu
	tickSpan *obs.Span
	// lastTickTraceID is the trace id of the most recently completed tick,
	// stashed by endTick and consumed by the next publish (see snapshot.go).
	//cdml:guardedby mu
	lastTickTraceID string
	// ckpt is the auto-checkpoint manager (nil without an AutoCheckpoint
	// policy). The writer only hands it published snapshots; all file IO
	// runs on the manager's goroutine.
	ckpt *ckptManager
	// wal is the durable write-ahead ingest log (nil without an IngestLog
	// config). Appends are fsynced before the async ack; ticks buffer
	// commit records under d.mu before publishing, and the checkpoint
	// writer syncs the log before any checkpoint becomes durable — see
	// internal/wal for the replay-correctness invariant.
	wal *wal.Log
	// ctx gates all engine work dispatched by this deployment; Shutdown
	// cancels it so a draining server stops scheduling new parallel tasks.
	ctx          context.Context
	cancel       context.CancelFunc
	shutdownOnce sync.Once

	// mu serializes the writers (Ingest, Checkpoint, RestoreCheckpoint).
	// Run does not take it; a Run is single-threaded by construction, and
	// its helpers carry //cdml:locked mu to document that the serialization
	// is provided externally. Predict and Stats never take it — they read
	// the published snapshot.
	mu sync.Mutex
	//cdml:guardedby mu
	live *Result // accumulating result for live use, lazily created

	// snap is the published deployment snapshot the lock-free read path
	// serves from; publishSeq is the writer-owned version counter behind
	// Snapshot.Version.
	snap atomic.Pointer[Snapshot]
	//cdml:guardedby mu
	publishSeq uint64

	// pendingQueries/pendingQueryNanos accumulate the read path's load
	// observations for the dynamic scheduler until the writer drains them
	// (drainQueryLoad) at the next tick.
	pendingQueries    atomic.Int64
	pendingQueryNanos atomic.Int64

	// snapSrc is the lazily built snapstream source over the published
	// snapshot (see stream.go); one per deployer so its per-version encode
	// cache is shared by every consumer.
	snapSrcOnce sync.Once
	snapSrc     *snapshotSource
}

// NewDeployer validates the config and builds the deployment.
//
//cdml:detached the deployment owns its own lifetime root; Shutdown cancels it when the process drains
func NewDeployer(cfg Config) (*Deployer, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	d := &Deployer{
		cfg:                cfg,
		pipe:               cfg.NewPipeline(),
		mdl:                cfg.NewModel(),
		optm:               cfg.NewOptimizer(),
		cost:               eval.NewCostClock(),
		rng:                rand.New(rand.NewSource(cfg.Seed)),
		proactiveCountdown: cfg.ProactiveEvery,
		retrainCountdown:   cfg.RetrainEvery,
	}
	if cfg.Mode == ModeThreshold {
		d.thresholdMonitor = eval.NewFading(cfg.ThresholdAlpha)
	}
	d.ctx, d.cancel = context.WithCancel(context.Background())
	d.obs = newDeployObs(d)
	// Open the ingest log before the checkpoint loop starts: the loop's
	// walSync hook must observe the final d.wal value.
	if cfg.IngestLog != nil {
		if err := d.openIngestLog(*cfg.IngestLog); err != nil {
			d.cancel()
			return nil, err
		}
	}
	// Publish the initial snapshot (version 1) so Predict and Stats answer
	// from the freshly built pipeline and model before the first tick.
	d.publish()
	// Start the checkpoint loop after the initial publish so only real
	// ticks advance its trigger counter.
	if cfg.AutoCheckpoint != nil {
		pol := *cfg.AutoCheckpoint
		if pol.Labels == nil {
			// Checkpoint metrics inherit the deployment's label set unless
			// the policy pins its own.
			pol.Labels = cfg.Labels
		}
		ckpt, err := newCkptManager(pol, d.obs.reg, d.obs.tracer, d.walSyncHook(), d.walPruneHook())
		if err != nil {
			d.cancel()
			if d.wal != nil {
				_ = d.wal.Close()
			}
			return nil, err
		}
		d.ckpt = ckpt
	}
	return d, nil
}

// Shutdown stops dispatching new engine tasks (parallel gather and gradient
// shards): in-flight tasks finish, and subsequent training work fails fast
// with the context error. Prediction answering does not use the engine and
// keeps working, which is exactly the drain behavior a serving deployment
// wants — answer queries, stop starting expensive training. Shutdown also
// stops the auto-checkpoint loop, waiting for an in-flight checkpoint
// write to complete so no *.tmp file is abandoned on a clean exit.
// Idempotent and safe to call concurrently, before or after Run.
func (d *Deployer) Shutdown() {
	d.shutdownOnce.Do(func() {
		d.cancel()
		if d.ckpt != nil {
			d.ckpt.shutdown()
		}
		// Close the ingest log only after the checkpoint loop has drained:
		// its final write may still call the walSync hook.
		if d.wal != nil {
			_ = d.wal.Close()
		}
	})
}

// Model exposes the deployed model (for inspection after Run).
func (d *Deployer) Model() model.Model { return d.mdl }

// Pipeline exposes the deployed pipeline.
func (d *Deployer) Pipeline() *pipeline.Pipeline { return d.pipe }

// Run plays the whole stream through the deployment: the first
// InitialChunks train the initial model in batch mode; every later chunk is
// prequentially evaluated, used for online learning, stored, and — per
// strategy — triggers proactive training or periodical retraining.
//
//cdml:locked mu — a Run is single-threaded by construction (see the Deployer doc): it owns the writer state without taking the lock
func (d *Deployer) Run(s Stream) (*Result, error) {
	res := &Result{
		Mode:       d.cfg.Mode,
		ErrorCurve: &eval.Series{Name: d.cfg.Mode.String() + "-error"},
		CostCurve:  &eval.Series{Name: d.cfg.Mode.String() + "-cost"},
		Cost:       d.cost,
	}
	n := s.NumChunks()
	if d.cfg.InitialChunks >= n {
		return nil, fmt.Errorf("core: InitialChunks %d exceeds stream length %d", d.cfg.InitialChunks, n)
	}
	if err := d.initialTrain(s); err != nil {
		return nil, err
	}
	d.proactiveCountdown = d.cfg.ProactiveEvery
	d.retrainCountdown = d.cfg.RetrainEvery
	for i := d.cfg.InitialChunks; i < n; i++ {
		records := s.Chunk(i)
		d.beginTick()

		// 1. Prequential evaluation: answer the chunk as prediction
		// queries with the currently deployed model.
		if err := d.serveAndScore(records, res); err != nil {
			return nil, err
		}

		// 2. Online learning plus strategy-specific training.
		if err := d.ingest(records, res); err != nil {
			return nil, err
		}
		d.endTick()

		if (i-d.cfg.InitialChunks)%d.cfg.CheckpointEvery == 0 || i == n-1 {
			x := float64(i)
			res.ErrorCurve.Append(x, d.cfg.Metric.Value())
			res.CostCurve.Append(x, d.cost.Total().Seconds())
		}
	}
	res.FinalError = d.cfg.Metric.Value()
	res.AvgError = res.ErrorCurve.Mean()
	res.MatStats = d.cfg.Store.Stats()
	// Publish once at the end so Predict calls after a Run serve the fully
	// trained state. Run does not publish per tick: it is the
	// single-threaded experiment harness with no concurrent readers, and
	// per-tick deep copies would only distort the cost measurements.
	d.publish()
	return res, nil
}

// ingest runs the training half of one deployment tick: online learning on
// the chunk, storage, and the strategy-specific training trigger.
//
//cdml:locked mu — tick helper; ingestTick holds d.mu and Run is single-threaded
func (d *Deployer) ingest(records [][]byte, res *Result) error {
	// Online learning: update pipeline statistics, transform, store, and
	// apply one online gradient step on the fresh chunk.
	if err := d.onlineUpdate(records); err != nil {
		return err
	}
	switch d.cfg.Mode {
	case ModeContinuous:
		d.proactiveCountdown--
		due := false
		recent := false
		switch {
		case d.driftPending:
			// Drift alleviation: adapt immediately with an extra proactive
			// training over the newest chunks instead of waiting for the
			// schedule.
			d.driftPending = false
			res.DriftEvents++
			d.obs.driftFires.Inc()
			due = true
			recent = true
		case d.cfg.Scheduler != nil:
			due = d.cfg.Scheduler.Due(time.Now())
		default:
			due = d.proactiveCountdown <= 0
		}
		if due {
			d.proactiveCountdown = d.cfg.ProactiveEvery
			start := time.Now()
			sp := d.stage("proactive-train")
			if err := d.proactiveTrain(res, recent); err != nil {
				return err
			}
			sp.Finish()
			if d.cfg.Scheduler != nil {
				d.cfg.Scheduler.TrainingDone(time.Now(), time.Since(start))
			}
		}
	case ModePeriodical:
		d.retrainCountdown--
		if d.retrainCountdown <= 0 {
			d.retrainCountdown = d.cfg.RetrainEvery
			sp := d.stage("retrain")
			if err := d.retrain(res); err != nil {
				return err
			}
			sp.Finish()
		}
	case ModeThreshold:
		d.thresholdCooldown--
		if d.thresholdCooldown <= 0 && d.thresholdMonitor.Count() > 0 &&
			d.thresholdMonitor.Value() > d.cfg.RetrainThreshold {
			d.thresholdCooldown = d.cfg.RetrainCooldown
			d.thresholdMonitor.Reset()
			sp := d.stage("retrain")
			if err := d.retrain(res); err != nil {
				return err
			}
			sp.Finish()
		}
	}
	return nil
}

// initialTrain consumes the first InitialChunks for batch training: all
// chunks are preprocessed with the online path (building the initial
// pipeline statistics), stored, and the model is trained with
// RetrainEpochs of mini-batch SGD.
func (d *Deployer) initialTrain(s Stream) error {
	if d.cfg.InitialChunks == 0 {
		return nil
	}
	var all []data.Instance
	for i := 0; i < d.cfg.InitialChunks; i++ {
		records := s.Chunk(i)
		var (
			ins []data.Instance
			err error
		)
		d.cost.Time(eval.CatPreprocess, func() {
			ins, err = d.pipe.ProcessOnline(records)
		})
		if err != nil {
			return fmt.Errorf("core: initial training chunk %d: %w", i, err)
		}
		if err := d.store(records, ins); err != nil {
			return err
		}
		all = append(all, ins...)
	}
	return d.cost.TimeErr(eval.CatTrain, func() error {
		return d.sgdEpochs(d.mdl, d.optm, all, d.cfg.InitialEpochs)
	})
}

// serveAndScore preprocesses the chunk on the transform-only path and
// prequentially scores the deployed model on every resulting instance.
//
//cdml:locked mu — tick helper; ingestTick holds d.mu and Run is single-threaded
func (d *Deployer) serveAndScore(records [][]byte, res *Result) error {
	var (
		ins   []data.Instance
		err   error
		start = time.Now()
		sp    = d.stage("serve")
	)
	defer func() {
		sp.Finish()
		// Exemplar: a slow serve observation carries the tick's trace id, so
		// the /metrics top bucket links to the exact tick in /v1/trace.
		d.obs.predictLatency.ObserveExemplar(time.Since(start), d.tickTraceID())
		d.obs.recordsEvaluated.Add(int64(len(ins)))
	}()
	d.cost.Time(eval.CatPredict, func() {
		ins, err = d.pipe.ProcessServe(records)
		if err != nil {
			return
		}
		for _, in := range ins {
			pred := d.cfg.Predict(d.mdl, in.X)
			d.cfg.Metric.Observe(pred, in.Y)
			if d.cfg.DriftDetector != nil {
				if d.cfg.DriftDetector.Observe(d.cfg.DriftLoss(pred, in.Y)) == drift.StateDrift {
					d.driftPending = true
				}
			}
			if d.thresholdMonitor != nil {
				d.thresholdMonitor.ObserveLoss(d.cfg.DriftLoss(pred, in.Y))
			}
		}
	})
	if err != nil {
		return fmt.Errorf("core: serving chunk: %w", err)
	}
	if d.cfg.Scheduler != nil && len(ins) > 0 {
		d.cfg.Scheduler.ObserveQueries(time.Now(), len(ins), time.Since(start))
	}
	res.Evaluated += int64(len(ins))
	return nil
}

// onlineUpdate runs the online path: Update+Transform through the pipeline
// (computing the online statistics), stores raw and feature chunks, and
// applies one online gradient step.
func (d *Deployer) onlineUpdate(records [][]byte) error {
	var (
		ins []data.Instance
		err error
	)
	d.timeStage("preprocess", func() {
		d.cost.Time(eval.CatPreprocess, func() {
			ins, err = d.pipe.ProcessOnline(records)
		})
	})
	if err != nil {
		return fmt.Errorf("core: online update: %w", err)
	}
	sp := d.stage("materialize")
	if err := d.store(records, ins); err != nil {
		return err
	}
	sp.Finish()
	d.obs.chunksIngested.Inc()
	if len(ins) > 0 {
		var uerr error
		d.timeStage("online-update", func() {
			uerr = d.cost.TimeErr(eval.CatTrain, func() error {
				return d.parallelUpdate(d.mdl, d.optm, ins)
			})
		})
		if uerr != nil {
			return fmt.Errorf("core: online update: %w", uerr)
		}
	}
	return nil
}

// store persists the raw chunk always, and the feature chunk when the
// optimizations are enabled (dynamic materialization needs stored features;
// the NoOptimization baseline stores none).
func (d *Deployer) store(records [][]byte, ins []data.Instance) error {
	return d.cost.TimeErr(eval.CatIO, func() error {
		id, err := d.cfg.Store.AppendRaw(records)
		if err != nil {
			return err
		}
		if !d.cfg.NoOptimization {
			if err := d.cfg.Store.PutFeatures(id, ins); err != nil {
				return err
			}
		}
		return nil
	})
}

// proactiveTrain executes one proactive training (§3.3): sample chunks,
// dynamically materialize the missing ones, and run a single mini-batch SGD
// iteration on their union. A drift-triggered training (recent=true)
// samples the newest chunks instead, so the model adapts to the post-drift
// concept rather than re-learning stale history.
func (d *Deployer) proactiveTrain(res *Result, recent bool) error {
	start := time.Now()
	defer func() {
		res.ProactiveRuns++
		res.ProactiveTotal += time.Since(start)
		d.obs.proactiveRuns.Inc()
		d.obs.proactiveDuration.Observe(time.Since(start))
	}()
	var ids []data.Timestamp
	if recent {
		all := d.cfg.Store.RawIDs()
		if len(all) > d.cfg.SampleChunks {
			all = all[len(all)-d.cfg.SampleChunks:]
		}
		ids = all
	} else {
		ids = d.cfg.Sampler.Sample(d.cfg.Store.RawIDs(), d.cfg.SampleChunks)
	}
	if len(ids) == 0 {
		return nil
	}
	var batch []data.Instance
	var err error
	if !d.cfg.NoOptimization {
		batch, err = d.gatherOptimized(ids)
	} else {
		batch, err = d.gatherNoOptimization(ids)
	}
	if err != nil {
		return err
	}
	if len(batch) == 0 {
		return nil
	}
	iterations := 1
	if recent {
		iterations = d.cfg.DriftBoost
	}
	return d.cost.TimeErr(eval.CatTrain, func() error {
		for it := 0; it < iterations; it++ {
			// iterations of data-parallel mini-batch SGD
			if err := d.parallelUpdate(d.mdl, d.optm, batch); err != nil {
				return err
			}
		}
		return nil
	})
}

// gatherOptimized fetches sampled chunks, reusing materialized features and
// re-materializing evicted ones through the deployed pipeline's
// transform-only path (online statistics are already up to date). Chunks
// are gathered as parallel engine tasks — the feature fetch, the raw
// fallback, and the re-materialization of a miss are all per-chunk
// independent — with the union preserving sample order, so the assembled
// batch is identical at any worker count. Hit/miss accounting is atomic
// and the CostClock serializes its own category charges, keeping per-chunk
// cost attribution safe under concurrency.
func (d *Deployer) gatherOptimized(ids []data.Timestamp) ([]data.Instance, error) {
	var hits, misses atomic.Int64
	d.obs.gatherParallelism.Set(float64(min(d.cfg.Engine.Workers(), len(ids))))
	batch, err := engine.UnionCtx(d.ctx, d.cfg.Engine, len(ids), func(k int) ([]data.Instance, error) {
		id := ids[k]
		var (
			ins []data.Instance
			ok  bool
			err error
		)
		if err = d.cost.TimeErr(eval.CatIO, func() error {
			var e error
			ins, ok, e = d.cfg.Store.Features(id)
			return e
		}); err != nil {
			return nil, fmt.Errorf("core: fetching features %d: %w", id, err)
		}
		if ok {
			hits.Add(1)
			return ins, nil
		}
		misses.Add(1)
		var raw data.RawChunk
		if err = d.cost.TimeErr(eval.CatIO, func() error {
			var e error
			raw, e = d.cfg.Store.Raw(id)
			return e
		}); err != nil {
			return nil, fmt.Errorf("core: fetching raw %d: %w", id, err)
		}
		d.cost.Time(eval.CatPreprocess, func() {
			ins, err = d.pipe.ProcessServe(raw.Records)
		})
		if err != nil {
			return nil, fmt.Errorf("core: re-materializing chunk %d: %w", id, err)
		}
		if err := d.cfg.Store.NoteRematerialized(id, ins); err != nil {
			return nil, err
		}
		return ins, nil
	})
	if err != nil {
		return nil, err
	}
	d.obs.gatherChunks.Add(int64(len(ids)))
	d.cfg.Store.NoteSample(int(hits.Load()), int(misses.Load()))
	return batch, nil
}

// gatherNoOptimization is the Figure 7 baseline: every sampled chunk is
// read raw from storage and preprocessed by a fresh pipeline whose
// component statistics are recomputed by scanning the sample (one full
// Update pass, then Transform).
func (d *Deployer) gatherNoOptimization(ids []data.Timestamp) ([]data.Instance, error) {
	raws, err := d.fetchRaw(ids)
	if err != nil {
		return nil, err
	}
	d.cfg.Store.NoteSample(0, len(ids))
	fresh := d.cfg.NewPipeline()
	var batch []data.Instance
	d.cost.Time(eval.CatPreprocess, func() {
		// First pass: recompute every stateful component's statistics over
		// the sample; second pass: transform.
		for _, rc := range raws {
			var ins []data.Instance
			ins, err = fresh.ProcessOnline(rc.Records)
			if err != nil {
				return
			}
			_ = ins // statistics pass only
		}
		if err != nil {
			return
		}
		batch, err = engine.UnionCtx(d.ctx, d.cfg.Engine, len(raws), func(k int) ([]data.Instance, error) {
			return fresh.ProcessServe(raws[k].Records)
		})
	})
	if err != nil {
		return nil, fmt.Errorf("core: NoOptimization preprocessing: %w", err)
	}
	return batch, nil
}

// fetchRaw reads the raw chunks of ids in parallel on the engine,
// preserving id order and charging the IO cost per task.
func (d *Deployer) fetchRaw(ids []data.Timestamp) ([]data.RawChunk, error) {
	return engine.MapCtx(d.ctx, d.cfg.Engine, len(ids), func(k int) (data.RawChunk, error) {
		var rc data.RawChunk
		if err := d.cost.TimeErr(eval.CatIO, func() error {
			var e error
			rc, e = d.cfg.Store.Raw(ids[k])
			return e
		}); err != nil {
			return data.RawChunk{}, fmt.Errorf("core: fetching raw %d: %w", ids[k], err)
		}
		return rc, nil
	})
}

// retrain executes a full periodical retraining over the entire stored
// history. With warm starting the deployed pipeline statistics, model
// weights, and optimizer state are reused; otherwise everything restarts
// from scratch, including a statistics-recomputation pass over the history.
func (d *Deployer) retrain(res *Result) error {
	start := time.Now()
	defer func() {
		res.Retrains++
		res.RetrainTotal += time.Since(start)
		d.obs.retrains.Inc()
		d.obs.retrainDuration.Observe(time.Since(start))
	}()
	ids := d.cfg.Store.RawIDs()
	if len(ids) == 0 {
		return nil
	}
	pipe := d.pipe
	mdl := d.mdl
	om := d.optm
	if !d.cfg.WarmStart {
		pipe = d.cfg.NewPipeline()
		mdl = d.cfg.NewModel()
		om = d.cfg.NewOptimizer()
	}
	raws, err := d.fetchRaw(ids)
	if err != nil {
		return fmt.Errorf("core: retraining fetch: %w", err)
	}
	var all []data.Instance
	d.cost.Time(eval.CatPreprocess, func() {
		if !d.cfg.WarmStart {
			// Cold start: recompute component statistics over the history.
			// The statistics pass mutates component state and must run
			// sequentially.
			for _, rc := range raws {
				if _, err = pipe.ProcessOnline(rc.Records); err != nil {
					return
				}
			}
		}
		// The transform pass only reads component statistics; the execution
		// engine parallelizes it across chunks (the Spark analogue of the
		// prototype's retraining job).
		all, err = engine.UnionCtx(d.ctx, d.cfg.Engine, len(raws), func(k int) ([]data.Instance, error) {
			return pipe.ProcessServe(raws[k].Records)
		})
	})
	if err != nil {
		return fmt.Errorf("core: retraining preprocessing: %w", err)
	}
	if err := d.cost.TimeErr(eval.CatTrain, func() error {
		return d.sgdEpochs(mdl, om, all, d.cfg.RetrainEpochs)
	}); err != nil {
		return err
	}
	// Deploy the retrained artifacts.
	d.pipe = pipe
	d.mdl = mdl
	d.optm = om
	return nil
}

// sgdEpochs runs epochs of shuffled mini-batch SGD over the instances;
// each mini-batch updates data-parallel through the engine.
func (d *Deployer) sgdEpochs(mdl model.Model, om opt.Optimizer, all []data.Instance, epochs int) error {
	if len(all) == 0 {
		return nil
	}
	batchRows := d.cfg.RetrainBatchRows
	idx := make([]int, len(all))
	for i := range idx {
		idx[i] = i
	}
	batch := make([]data.Instance, 0, batchRows)
	for e := 0; e < epochs; e++ {
		d.rng.Shuffle(len(idx), func(a, b int) { idx[a], idx[b] = idx[b], idx[a] })
		for start := 0; start < len(idx); start += batchRows {
			end := start + batchRows
			if end > len(idx) {
				end = len(idx)
			}
			batch = batch[:0]
			for _, k := range idx[start:end] {
				batch = append(batch, all[k])
			}
			if err := d.parallelUpdate(mdl, om, batch); err != nil {
				return err
			}
		}
	}
	return nil
}
