package core

import (
	"bufio"
	"fmt"
	"io"

	"cdml/internal/model"
	"cdml/internal/opt"
	"cdml/internal/pipeline"
)

// Checkpoint serializes the deployed state — model weights, optimizer
// state, and every stateful pipeline component's statistics — so a
// deployment can resume in a new process exactly where it stopped. The
// conditional independence of SGD iterations (§3.3) makes this sound: the
// next proactive training needs only the model and optimizer state, and
// the pipeline statistics are carried the same way warm starting carries
// them within a process.
//
// Checkpoint encodes the published snapshot — the state as of the last
// completed tick — and holds no lock shared with the writer: it streams
// from immutable state, so an arbitrarily slow consumer (a stalled HTTP
// checkpoint client, a saturated disk) can never block Ingest. Mid-tick
// progress is by design not captured; ticks are the recovery grain.
//
// The chunk store is not part of the checkpoint; it is durable storage
// with its own lifecycle (point the restored deployment at the same store
// or a fresh one).
func (d *Deployer) Checkpoint(w io.Writer) error {
	return d.snap.Load().encodeTo(w)
}

// encodeTo writes the snapshot's resume state (model, optimizer, pipeline
// statistics) as the checkpoint wire format: a sequence of independent gob
// streams. Snapshots are immutable, so encoding needs no synchronization
// and may run concurrently with the training writer.
func (s *Snapshot) encodeTo(w io.Writer) error {
	if err := model.Save(w, s.mdl); err != nil {
		return fmt.Errorf("core: checkpointing model: %w", err)
	}
	if err := opt.Save(w, s.optm); err != nil {
		return fmt.Errorf("core: checkpointing optimizer: %w", err)
	}
	if err := s.pipe.SaveState(w); err != nil {
		return fmt.Errorf("core: checkpointing pipeline: %w", err)
	}
	return nil
}

// RestoreCheckpoint loads state written by Checkpoint into this deployer.
// The deployer must have been built from the same Config (same model
// shape, optimizer kind, and pipeline layout); mismatches are reported as
// errors.
func (d *Deployer) RestoreCheckpoint(r io.Reader) error {
	return d.restoreCheckpointAt(r, 0)
}

// restoreCheckpointAt is RestoreCheckpoint with an optional snapshot
// version to resume the publish sequence at. The checkpoint wire format
// carries no version — checkpoint *files* do, in their frame header — so
// RecoverFromDir passes the header version here and the restored state is
// republished as exactly that version. That keeps two invariants across a
// process restart: snapshot version v still means v-1 completed ticks
// (callers derive the resume position from it), and the auto-checkpoint
// manager — whose duplicate suppression tracks the newest durable version
// — sees the very next tick as newer than the recovered checkpoint instead
// of silently skipping writes until the count catches up. version 0 keeps
// the deployer's own sequence (the HTTP restore path, which has no header).
func (d *Deployer) restoreCheckpointAt(r io.Reader, version uint64) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	// The checkpoint is a sequence of independent gob streams. Each
	// gob.Decoder buffers its reads unless the source is an io.ByteReader,
	// which would swallow the following section's bytes — so wrap once and
	// hand every section the same byte reader.
	br := bufio.NewReader(r)
	mdl, err := model.Load(br)
	if err != nil {
		return fmt.Errorf("core: restoring model: %w", err)
	}
	if mdl.Name() != d.mdl.Name() || mdl.Dim() != d.mdl.Dim() {
		return fmt.Errorf("core: checkpoint model %s/%d does not match deployment %s/%d",
			mdl.Name(), mdl.Dim(), d.mdl.Name(), d.mdl.Dim())
	}
	om, err := opt.Load(br)
	if err != nil {
		return fmt.Errorf("core: restoring optimizer: %w", err)
	}
	if om.Name() != d.optm.Name() {
		return fmt.Errorf("core: checkpoint optimizer %s does not match deployment %s", om.Name(), d.optm.Name())
	}
	pipe := d.cfg.NewPipeline()
	if err := pipe.LoadState(br); err != nil {
		return fmt.Errorf("core: restoring pipeline: %w", err)
	}
	d.mdl = mdl
	d.optm = om
	d.pipe = pipe
	if version > 0 {
		// Rewind the sequence so the publish below reproduces the header
		// version: the restored state holds version-1 completed ticks.
		d.publishSeq = version - 1
	}
	// Publish the restored state as one atomic snapshot swap: a concurrent
	// Predict serves either the full pre-restore state or the full restored
	// state, never a half-restored pipeline/model pair.
	d.publish()
	return nil
}

// The interface assertion documents which bundled components participate
// in checkpoints.
var (
	_ pipeline.Persistent = (*pipeline.Imputer)(nil)
	_ pipeline.Persistent = (*pipeline.StandardScaler)(nil)
	_ pipeline.Persistent = (*pipeline.MinMaxScaler)(nil)
	_ pipeline.Persistent = (*pipeline.OneHotEncoder)(nil)
	_ pipeline.Persistent = (*pipeline.StdClipper)(nil)
)
