package core

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"cdml/internal/data"
	"cdml/internal/wal"
)

// The chaos tests exercise the durability layer under injected failure:
// process kill + recovery, torn checkpoint files, and flaky storage
// backends. They are skipped under -short (CI's default test run) and run
// by `make chaos` with -race.

func skipInShort(t *testing.T) {
	t.Helper()
	if testing.Short() {
		t.Skip("chaos test; run via `make chaos`")
	}
}

var errChaosStore = errors.New("chaos: injected store failure")

// TestChaosKillRecoverBitIdentical is the central durability property: a
// deployment killed mid-stream and recovered from its newest checkpoint,
// then fed the remaining chunks, ends bit-identical (model weights and
// optimizer state) to an uninterrupted run over the same stream. ModeOnline
// weights are a pure function of (model, optimizer, pipeline statistics,
// chunk sequence) — exactly the checkpointed state — which is what makes
// the property exact rather than approximate.
func TestChaosKillRecoverBitIdentical(t *testing.T) {
	skipInShort(t)
	stream := driftStream{chunks: 30, rows: 25, drift: 2, seed: 9}
	const killAt = 17 // chunks ingested before the simulated crash

	// Reference: one uninterrupted run.
	ref, err := NewDeployer(liveConfig(ModeOnline))
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Shutdown()
	ingestChunks(t, ref, stream, 0, stream.chunks)
	want := modelBytes(t, ref)

	// Victim: auto-checkpointing run, killed after killAt chunks. Shutdown
	// here stands in for the kill — the crash-safety of the files
	// themselves (torn writes) is covered separately; this test is about
	// resuming from a checkpoint that lags the kill point.
	dir := t.TempDir()
	cfg := liveConfig(ModeOnline)
	cfg.AutoCheckpoint = &CheckpointPolicy{Dir: dir, EveryTicks: 3, Keep: 3}
	victim, err := NewDeployer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ingestChunks(t, victim, stream, 0, killAt)
	victim.Shutdown()

	// Recover in a "new process": a fresh deployer from the same config.
	cfg2 := liveConfig(ModeOnline)
	cfg2.AutoCheckpoint = &CheckpointPolicy{Dir: dir, EveryTicks: 3, Keep: 3}
	revived, err := NewDeployer(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	defer revived.Shutdown()
	info, err := revived.RecoverFromDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if info.Version < 2 || info.Version > killAt+1 {
		t.Fatalf("recovered version %d, want in [2, %d]", info.Version, killAt+1)
	}
	if got, ok := revived.LastCheckpoint(); !ok || got.Version != info.Version {
		t.Fatalf("LastCheckpoint after recovery = %+v, want version %d", got, info.Version)
	}

	// Header version v means v-1 chunks were ingested; resume at chunk v-1.
	resume := int(info.Version) - 1
	if resume > killAt {
		t.Fatalf("checkpoint ahead of the kill point: resume %d > %d", resume, killAt)
	}
	ingestChunks(t, revived, stream, resume, stream.chunks)

	if got := modelBytes(t, revived); !bytes.Equal(got, want) {
		t.Fatalf("recovered run is not bit-identical to the uninterrupted run (resumed at chunk %d)", resume)
	}
}

// TestChaosKillRecoverKillRecover crashes, recovers, ticks, crashes, and
// recovers again. It pins down the regression where the recovered header
// version was not restored into the publish sequence: the new process's
// versions restarted at 2 while the manager's duplicate suppression
// remembered the recovered version N, so every checkpoint until the count
// re-passed N was silently skipped — and once versions did pass N the
// header's version↔ticks contract was off by the recovered progress, so a
// second recovery re-ingested chunks the state already contained. The
// second incarnation must therefore (a) republish at exactly the header
// version, (b) write new checkpoints beyond the recovered one within a few
// ticks, and (c) leave a third incarnation resuming from post-recovery
// progress, ending bit-identical to an uninterrupted run.
func TestChaosKillRecoverKillRecover(t *testing.T) {
	skipInShort(t)
	stream := driftStream{chunks: 24, rows: 25, drift: 2, seed: 21}
	dir := t.TempDir()
	newDep := func() *Deployer {
		t.Helper()
		cfg := liveConfig(ModeOnline)
		cfg.AutoCheckpoint = &CheckpointPolicy{Dir: dir, EveryTicks: 2, Keep: 3}
		d, err := NewDeployer(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return d
	}

	// First incarnation: ingest, then crash.
	d1 := newDep()
	ingestChunks(t, d1, stream, 0, 9)
	d1.Shutdown()

	// Second incarnation: recover, tick a few chunks, crash again.
	d2 := newDep()
	info1, err := d2.RecoverFromDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got := d2.Current().Version(); got != info1.Version {
		t.Fatalf("restored snapshot version %d, want the header version %d", got, info1.Version)
	}
	resume1 := int(info1.Version) - 1
	ingestChunks(t, d2, stream, resume1, resume1+5)
	d2.Shutdown()
	if last, ok := d2.LastCheckpoint(); !ok || last.Version <= info1.Version {
		t.Fatalf("auto-checkpointing did not resume after recovery: last = %+v, recovered version %d",
			last, info1.Version)
	}

	// Third incarnation: recovery must resume from the second
	// incarnation's progress, not from the pre-crash checkpoint.
	d3 := newDep()
	defer d3.Shutdown()
	info2, err := d3.RecoverFromDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if info2.Version <= info1.Version {
		t.Fatalf("second recovery found version %d, want beyond the first recovery's %d", info2.Version, info1.Version)
	}
	resume2 := int(info2.Version) - 1
	if resume2 <= resume1 || resume2 > resume1+5 {
		t.Fatalf("second resume position %d, want in (%d, %d]", resume2, resume1, resume1+5)
	}
	ingestChunks(t, d3, stream, resume2, stream.chunks)

	// Reference: one uninterrupted run over the same stream.
	ref, err := NewDeployer(liveConfig(ModeOnline))
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Shutdown()
	ingestChunks(t, ref, stream, 0, stream.chunks)
	if !bytes.Equal(modelBytes(t, d3), modelBytes(t, ref)) {
		t.Fatalf("doubly-recovered run is not bit-identical to the uninterrupted run (resumed at %d, then %d)",
			resume1, resume2)
	}
}

// TestChaosTornCheckpointFallsBack truncates the newest checkpoint file —
// the on-disk image of a crash mid-write — and requires recovery to skip it
// and restore the next-older valid checkpoint.
func TestChaosTornCheckpointFallsBack(t *testing.T) {
	skipInShort(t)
	dir := t.TempDir()
	stream := driftStream{chunks: 10, rows: 20, drift: 2, seed: 11}
	cfg := liveConfig(ModeOnline)
	cfg.AutoCheckpoint = &CheckpointPolicy{Dir: dir, EveryTicks: 1 << 30, Keep: 10}
	d, err := NewDeployer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Shutdown()
	// Three synchronous checkpoints at versions 2, 3, 4.
	for i := 0; i < 3; i++ {
		ingestChunks(t, d, stream, i, i+1)
		if _, err := d.CheckpointNow(); err != nil {
			t.Fatal(err)
		}
	}
	files, err := listCheckpoints(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 3 {
		t.Fatalf("have %d checkpoints, want 3", len(files))
	}

	// Tear the newest: keep the header intact but cut the payload short.
	newest := files[0]
	fi, err := os.Stat(newest.Path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(newest.Path, fi.Size()-fi.Size()/3); err != nil {
		t.Fatal(err)
	}

	revived, err := NewDeployer(liveConfig(ModeOnline))
	if err != nil {
		t.Fatal(err)
	}
	defer revived.Shutdown()
	info, err := revived.RecoverFromDir(dir)
	if err != nil {
		t.Fatalf("recovery with one torn file: %v", err)
	}
	if info.Version != files[1].Version {
		t.Fatalf("recovered version %d, want fallback to %d", info.Version, files[1].Version)
	}

	// Tear every file: recovery must fail loudly, naming the rejects, and
	// must not be ErrNoCheckpoint (files exist, they are just unusable).
	for _, f := range files[1:] {
		if err := os.Truncate(f.Path, 10); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := revived.RecoverFromDir(dir); err == nil || errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("all-torn recovery: err = %v, want a hard error", err)
	}
}

// ingestLogged pushes one chunk through the logged ingest path exactly as
// the serve layer does: durable append first (the 202 ack point), then the
// consuming tick.
func ingestLogged(t *testing.T, d *Deployer, s Stream, from, to int) {
	t.Helper()
	for i := from; i < to; i++ {
		chunk := s.Chunk(i)
		seq, err := d.AppendIngestLog(chunk)
		if err != nil {
			t.Fatalf("append chunk %d: %v", i, err)
		}
		if err := d.IngestLogged(context.Background(), chunk, time.Time{}, seq); err != nil {
			t.Fatalf("logged ingest chunk %d: %v", i, err)
		}
	}
}

// openSegmentPath returns the WAL's single active segment file.
func openSegmentPath(t *testing.T, dir string) string {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if strings.HasSuffix(e.Name(), ".seg.open") {
			return filepath.Join(dir, e.Name())
		}
	}
	t.Fatalf("no active .seg.open segment in %s", dir)
	return ""
}

// TestChaosKillWithQueuedIngest is the tentpole durability property of the
// write-ahead ingest log: a deployment killed with chunks accepted (202,
// durably appended) but not yet consumed by a tick loses nothing. Recovery
// restores the newest checkpoint and replays every logged chunk the
// checkpoint does not cover — the consumed-but-past-checkpoint ones and
// the still-queued ones — in order, exactly once, ending bit-identical to
// a run that was never interrupted. Run under -race by `make chaos`.
func TestChaosKillWithQueuedIngest(t *testing.T) {
	skipInShort(t)
	stream := driftStream{chunks: 30, rows: 25, drift: 2, seed: 33}
	const (
		consumed = 14 // chunks whose tick finished before the kill
		accepted = 19 // chunks durably acked before the kill (last 5 queued)
	)
	dir := t.TempDir()
	newCfg := func() Config {
		cfg := liveConfig(ModeOnline)
		cfg.AutoCheckpoint = &CheckpointPolicy{Dir: filepath.Join(dir, "ckpt"), EveryTicks: 3, Keep: 3}
		cfg.IngestLog = &wal.Options{Dir: filepath.Join(dir, "wal")}
		return cfg
	}

	// Reference: one uninterrupted run over the full stream.
	ref, err := NewDeployer(liveConfig(ModeOnline))
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Shutdown()
	ingestChunks(t, ref, stream, 0, stream.chunks)
	want := modelBytes(t, ref)

	// Victim: consume `consumed` chunks through the logged path, then
	// accept `accepted-consumed` more without ticking them — the on-disk
	// image of a crash with a non-empty ingest queue.
	victim, err := NewDeployer(newCfg())
	if err != nil {
		t.Fatal(err)
	}
	ingestLogged(t, victim, stream, 0, consumed)
	for i := consumed; i < accepted; i++ {
		if _, err := victim.AppendIngestLog(stream.Chunk(i)); err != nil {
			t.Fatalf("append queued chunk %d: %v", i, err)
		}
	}
	victim.Shutdown()

	// New process: recovery must reach exactly chunk `accepted` — zero
	// accepted ticks lost, none applied twice.
	revived, err := NewDeployer(newCfg())
	if err != nil {
		t.Fatal(err)
	}
	defer revived.Shutdown()
	info, err := revived.RecoverFromDir(filepath.Join(dir, "ckpt"))
	if err != nil {
		t.Fatal(err)
	}
	st, ok := revived.WALStats()
	if !ok {
		t.Fatal("revived deployer has no ingest log")
	}
	// Header version v covers v-1 chunks; everything after replays.
	if wantReplay := uint64(accepted) - info.Version + 1; st.Replayed != wantReplay {
		t.Fatalf("replayed %d chunks after recovering version %d, want %d", st.Replayed, info.Version, wantReplay)
	}
	if got := revived.Current().Version(); got != uint64(accepted)+1 {
		t.Fatalf("post-replay snapshot version %d, want %d (all accepted chunks applied)", got, accepted+1)
	}

	// The rest of the stream arrives; the end state must be bit-identical.
	ingestLogged(t, revived, stream, accepted, stream.chunks)
	if got := modelBytes(t, revived); !bytes.Equal(got, want) {
		t.Fatal("killed-with-queued-ingest run is not bit-identical to the uninterrupted run")
	}
}

// TestChaosWALTornTailReplaysIntactPrefix kills the process mid-append: the
// active segment ends in half a record. Opening the log must cut the torn
// tail (that chunk was never acked, so the client retries it) and replay
// every intact record, converging to the uninterrupted run. No checkpoint
// is involved — this exercises the cold-start replay path.
func TestChaosWALTornTailReplaysIntactPrefix(t *testing.T) {
	skipInShort(t)
	stream := driftStream{chunks: 12, rows: 20, drift: 2, seed: 35}
	const (
		consumed = 4 // ticked before the kill
		appended = 7 // durably appended; the 7th record is torn mid-write
	)
	dir := t.TempDir()
	newCfg := func() Config {
		cfg := liveConfig(ModeOnline)
		cfg.IngestLog = &wal.Options{Dir: dir}
		return cfg
	}
	victim, err := NewDeployer(newCfg())
	if err != nil {
		t.Fatal(err)
	}
	ingestLogged(t, victim, stream, 0, consumed)
	for i := consumed; i < appended; i++ {
		if _, err := victim.AppendIngestLog(stream.Chunk(i)); err != nil {
			t.Fatalf("append queued chunk %d: %v", i, err)
		}
	}
	victim.Shutdown()

	// Tear the tail: cut into the last record's frame.
	seg := openSegmentPath(t, dir)
	fi, err := os.Stat(seg)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(seg, fi.Size()-7); err != nil {
		t.Fatal(err)
	}

	revived, err := NewDeployer(newCfg())
	if err != nil {
		t.Fatal(err)
	}
	defer revived.Shutdown()
	st, _ := revived.WALStats()
	if st.Truncations != 1 {
		t.Fatalf("torn-tail truncations = %d, want 1", st.Truncations)
	}
	// Cold start: no checkpoint, so replay rebuilds from every intact
	// logged record — all but the torn final one.
	n, err := revived.ReplayIngestLog()
	if err != nil {
		t.Fatal(err)
	}
	if n != appended-1 {
		t.Fatalf("replayed %d records, want %d (torn tail dropped)", n, appended-1)
	}

	// The torn chunk was never acked; the client re-sends it and the
	// stream continues. End state must match the uninterrupted run.
	ingestLogged(t, revived, stream, appended-1, stream.chunks)
	ref, err := NewDeployer(liveConfig(ModeOnline))
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Shutdown()
	ingestChunks(t, ref, stream, 0, stream.chunks)
	if !bytes.Equal(modelBytes(t, revived), modelBytes(t, ref)) {
		t.Fatal("torn-tail recovery is not bit-identical to the uninterrupted run")
	}
}

// chaosStore builds a Store whose backend is Retry over Fault over Memory —
// the production resilience stack with a programmable failure layer
// underneath.
func chaosStore() (*data.Store, *data.FaultBackend, *data.RetryBackend) {
	fault := data.NewFaultBackend(data.NewMemoryBackend())
	retry := data.NewRetryBackend(fault, data.RetryPolicy{
		MaxAttempts: 4,
		BaseDelay:   200 * time.Microsecond,
		MaxDelay:    time.Millisecond,
	})
	return data.NewStore(retry), fault, retry
}

// TestChaosTransientStoreErrorsHeal injects two consecutive PutRaw failures
// and requires the tick to succeed anyway: the retry layer absorbs
// transient storage faults without surfacing a failed tick.
func TestChaosTransientStoreErrorsHeal(t *testing.T) {
	skipInShort(t)
	store, fault, retry := chaosStore()
	cfg := liveConfig(ModeOnline)
	cfg.Store = store
	d, err := NewDeployer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Shutdown()
	stream := driftStream{chunks: 4, rows: 20, drift: 2, seed: 13}
	ingestChunks(t, d, stream, 0, 1)
	before := d.Current().Version()

	fault.FailN(data.OpPutRaw, 2, errChaosStore)
	if err := d.Ingest(stream.Chunk(1)); err != nil {
		t.Fatalf("tick with transient store faults: %v", err)
	}
	if got := d.Current().Version(); got != before+1 {
		t.Fatalf("snapshot version %d after healed tick, want %d", got, before+1)
	}
	if got := retry.Retries(data.OpPutRaw); got != 2 {
		t.Fatalf("put_raw retries = %d, want 2", got)
	}
	if got := retry.Giveups(data.OpPutRaw); got != 0 {
		t.Fatalf("put_raw giveups = %d, want 0", got)
	}
}

// TestChaosExhaustedRetriesFailTickCleanly arms more failures than the
// retry budget: the tick must fail with the injected error surfaced, no
// snapshot may be published, and the deployment must keep working once the
// fault clears.
func TestChaosExhaustedRetriesFailTickCleanly(t *testing.T) {
	skipInShort(t)
	store, fault, retry := chaosStore()
	cfg := liveConfig(ModeOnline)
	cfg.Store = store
	d, err := NewDeployer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Shutdown()
	stream := driftStream{chunks: 4, rows: 20, drift: 2, seed: 13}
	ingestChunks(t, d, stream, 0, 1)
	before := d.Current().Version()

	fault.FailN(data.OpPutRaw, 100, errChaosStore)
	err = d.Ingest(stream.Chunk(1))
	if !errors.Is(err, errChaosStore) {
		t.Fatalf("exhausted-retry tick: err = %v, want wrapped injected error", err)
	}
	if got := d.Current().Version(); got != before {
		t.Fatalf("failed tick published: version %d, want unchanged %d", got, before)
	}
	if got := retry.Giveups(data.OpPutRaw); got != 1 {
		t.Fatalf("put_raw giveups = %d, want 1", got)
	}

	// Clear the fault; the deployment is not wedged.
	fault.Reset()
	if err := d.Ingest(stream.Chunk(1)); err != nil {
		t.Fatalf("tick after fault cleared: %v", err)
	}
	if got := d.Current().Version(); got != before+1 {
		t.Fatalf("post-recovery version %d, want %d", got, before+1)
	}
}

// TestChaosAutoCheckpointConcurrentWithIngest runs auto-checkpointing at
// maximum frequency while ticks stream in (run under -race): the background
// writer and the training writer must never interfere, and the newest
// retained checkpoint must stay restorable throughout.
func TestChaosAutoCheckpointConcurrentWithIngest(t *testing.T) {
	skipInShort(t)
	dir := t.TempDir()
	cfg := liveConfig(ModeOnline)
	cfg.AutoCheckpoint = &CheckpointPolicy{Dir: dir, EveryTicks: 1, Keep: 2}
	d, err := NewDeployer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	stream := driftStream{chunks: 40, rows: 20, drift: 2, seed: 17}
	ingestChunks(t, d, stream, 0, stream.chunks)
	d.Shutdown()

	files, err := listCheckpoints(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("no checkpoints written")
	}
	revived, err := NewDeployer(liveConfig(ModeOnline))
	if err != nil {
		t.Fatal(err)
	}
	defer revived.Shutdown()
	if _, err := revived.RecoverFromDir(dir); err != nil {
		t.Fatalf("recovering the newest checkpoint: %v", err)
	}
}
