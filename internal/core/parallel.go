package core

import (
	"context"
	"time"

	"cdml/internal/data"
	"cdml/internal/engine"
	"cdml/internal/linalg"
	"cdml/internal/model"
	"cdml/internal/opt"
)

// DefaultGradShardRows is the default number of rows per gradient shard.
// It is large enough that a typical online chunk stays single-shard (no
// parallelism overhead on the latency-sensitive path) while proactive and
// retraining mini-batches split across the worker pool.
const DefaultGradShardRows = 256

// numShards returns the shard count for an n-row mini-batch: a pure
// function of the batch size and the configured shard rows, never of the
// engine parallelism — the root of the sharded path's determinism
// guarantee.
//
//cdml:hotpath
func numShards(n, shardRows int) int {
	if shardRows <= 0 {
		shardRows = DefaultGradShardRows
	}
	s := (n + shardRows - 1) / shardRows
	if s < 1 {
		s = 1
	}
	return s
}

// shardBounds returns the half-open row range [lo, hi) of shard s out of
// shards, splitting n rows into contiguous, maximally balanced runs.
//
//cdml:hotpath
func shardBounds(n, shards, s int) (int, int) {
	return s * n / shards, (s + 1) * n / shards
}

// ShardStats reports how one sharded update executed.
type ShardStats struct {
	// Shards is the number of partial-gradient shards the batch split into.
	Shards int
	// Reduce is the wall-clock time of the ordered reduce plus the
	// optimizer step.
	Reduce time.Duration
}

// ShardedUpdate runs one data-parallel mini-batch SGD iteration: the batch
// splits into contiguous shards, each shard's partial gradient is computed
// concurrently on the engine (model.GradientSum only reads the weights),
// the partials are reduced in fixed shard order into the mean gradient,
// and a single optimizer step is applied. It returns the mean loss before
// the step.
//
// Determinism: the shard partition depends only on len(batch) and
// shardRows, and the reduce order is the shard order, so the updated
// weights are bit-identical across engine worker counts — and, when the
// batch fits one shard, bit-identical to the fused model.Update path.
//
// Cancelling ctx stops dispatching shards and returns the context error
// without applying a step.
//cdml:deterministic
func ShardedUpdate(ctx context.Context, eng *engine.Engine, shardRows int, mdl model.Model, om opt.Optimizer, batch []data.Instance) (float64, ShardStats, error) {
	n := len(batch)
	if n == 0 {
		return 0, ShardStats{}, nil
	}
	shards := numShards(n, shardRows)
	type partial struct {
		g    linalg.Vector
		loss float64
	}
	parts, err := engine.MapCtx(ctx, eng, shards, func(s int) (partial, error) {
		lo, hi := shardBounds(n, shards, s)
		g, loss := mdl.GradientSum(batch[lo:hi])
		return partial{g: g, loss: loss}, nil
	})
	if err != nil {
		return 0, ShardStats{Shards: shards}, err
	}
	start := time.Now() //lint:allow determinism: reduce timing feeds ShardStats instrumentation, never the weights
	gs := make([]linalg.Vector, shards)
	losses := make([]float64, shards)
	for s, p := range parts {
		gs[s], losses[s] = p.g, p.loss
	}
	g, meanLoss := mdl.Reduce(gs, losses, n)
	mdl.Apply(g, om)
	return meanLoss, ShardStats{Shards: shards, Reduce: time.Since(start)}, nil //lint:allow determinism: reduce timing feeds ShardStats instrumentation, never the weights
}

// parallelUpdate is the deployment's training step: ShardedUpdate on the
// configured engine plus the shard/reduce instrumentation.
func (d *Deployer) parallelUpdate(mdl model.Model, om opt.Optimizer, batch []data.Instance) error {
	_, st, err := ShardedUpdate(d.ctx, d.cfg.Engine, d.cfg.GradShardRows, mdl, om, batch)
	if st.Shards > 0 {
		d.obs.gradShards.Add(int64(st.Shards))
		d.obs.gradUpdates.Inc()
		d.obs.reduceLatency.Observe(st.Reduce)
	}
	return err
}
