package core

// This file is the lock-free read path of a live deployment. Predict and
// Stats answer from the immutable published Snapshot (see snapshot.go) and
// acquire no mutex shared with Ingest: the platform keeps "continuously
// answering prediction queries" (paper §3, Figure 1) at full speed while a
// proactive training or a multi-second full retraining runs on the writer
// side.

import (
	"fmt"
	"time"

	"cdml/internal/eval"
)

// Predict answers a batch of prediction queries with the published pipeline
// and model snapshot: the records run through the transform-only path
// (guaranteeing train/serve consistency) and the snapshot's model scores
// each resulting instance. Records the pipeline drops (e.g. anomalies) are
// absent from the output, so the result may be shorter than the input.
//
// Predict is lock-free with respect to Ingest: it loads the current
// snapshot with one atomic pointer read and works entirely on immutable
// state, so a prediction never stalls behind a training tick. Safe for
// concurrent use with Ingest, Stats, and other Predicts.
//
//cdml:hotpath
func (d *Deployer) Predict(records [][]byte) ([]float64, error) {
	snap := d.current()
	start := time.Now() //lint:allow hotpath: the serve-latency measurement is the deliverable — one timestamp per batch, not per record
	ins, err := snap.pipe.ProcessServe(records)
	if err != nil {
		return nil, fmt.Errorf("core: predicting: %w", err) //lint:allow hotpath: cold failure branch; the happy path never reaches it
	}
	out := make([]float64, len(ins))
	for i, in := range ins {
		out[i] = d.cfg.Predict(snap.mdl, in.X)
	}
	d.cost.Add(eval.CatPredict, time.Since(start))
	if d.cfg.Scheduler != nil && len(ins) > 0 {
		// The dynamic scheduler's EWMA state is writer-owned; readers hand
		// their load observations over through atomic pending counters the
		// writer drains at the next tick (see drainQueryLoad).
		d.pendingQueries.Add(int64(len(ins)))
		d.pendingQueryNanos.Add(int64(time.Since(start)))
	}
	d.obs.predictLatency.Observe(time.Since(start))
	d.obs.predictQueries.Add(int64(len(ins)))
	return out, nil
}

// Stats returns the live deployment's accumulated result as of the most
// recently published snapshot. Like Predict it is a lock-free read: the
// answer was precomputed by the writer at publish time.
//
//cdml:hotpath
func (d *Deployer) Stats() Result {
	return d.current().stats
}
