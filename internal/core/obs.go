package core

import (
	"context"
	"time"

	"cdml/internal/eval"
	"cdml/internal/obs"
	"cdml/internal/sched"
)

// deployObs bundles the deployment's instruments. Every Deployer has one —
// when the config supplies no registry/tracer a private pair is created —
// so the instrumentation call sites never branch on "is observability on".
// The write path is atomic increments plus one span tree per tick (a chunk,
// never a record), keeping the hot serving loop allocation-free.
type deployObs struct {
	reg    *obs.Registry
	tracer *obs.Tracer

	ticks            *obs.Counter
	chunksIngested   *obs.Counter
	recordsEvaluated *obs.Counter
	predictQueries   *obs.Counter
	driftFires       *obs.Counter
	proactiveRuns    *obs.Counter
	retrains         *obs.Counter

	predictLatency    *obs.Histogram
	proactiveDuration *obs.Histogram
	retrainDuration   *obs.Histogram
	reduceLatency     *obs.Histogram

	gradShards        *obs.Counter
	gradUpdates       *obs.Counter
	gatherChunks      *obs.Counter
	snapshotPublishes *obs.Counter

	prequentialError  *obs.Gauge
	gatherParallelism *obs.Gauge
}

// withLabels copies base and appends extra, so repeated calls building
// per-series label sets from one shared base never alias each other.
func withLabels(base []obs.Label, extra ...obs.Label) []obs.Label {
	out := make([]obs.Label, 0, len(base)+len(extra))
	out = append(out, base...)
	return append(out, extra...)
}

// newDeployObs creates the deployment's instruments on the configured
// registry (or a private one) and bridges the surrounding components in:
// CostClock categories, store materialization accounting, engine task
// stats, and — when the scheduler exposes them — the Formula (6) load
// inputs. Every series carries Config.Labels, so deployments sharing a
// registry (the multi-deployment registry's arrangement) stay separable.
func newDeployObs(d *Deployer) *deployObs {
	reg := d.cfg.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	tracer := d.cfg.Tracer
	if tracer == nil {
		tracer = obs.NewTracer(obs.DefaultTraceCapacity)
	}
	ls := d.cfg.Labels
	o := &deployObs{
		reg:    reg,
		tracer: tracer,
		ticks: reg.Counter("cdml_ticks_total",
			"Deployment ticks executed (one per ingested chunk).", ls...),
		chunksIngested: reg.Counter("cdml_chunks_ingested_total",
			"Raw chunks ingested into the platform.", ls...),
		recordsEvaluated: reg.Counter("cdml_records_evaluated_total",
			"Records prequentially evaluated by the deployed model.", ls...),
		predictQueries: reg.Counter("cdml_predict_queries_total",
			"Prediction queries answered (serving path).", ls...),
		driftFires: reg.Counter("cdml_drift_fires_total",
			"Drift-detector fires that triggered an immediate proactive training.", ls...),
		proactiveRuns: reg.Counter("cdml_proactive_runs_total",
			"Proactive trainings executed (paper §3.3).", ls...),
		retrains: reg.Counter("cdml_retrains_total",
			"Full retrainings executed (periodical/threshold strategies).", ls...),
		predictLatency: reg.Histogram("cdml_predict_latency_seconds",
			"Latency of answering one prediction batch (chunk or query batch).", ls...),
		proactiveDuration: reg.Histogram("cdml_proactive_train_seconds",
			"Duration of proactive trainings.", ls...),
		retrainDuration: reg.Histogram("cdml_retrain_seconds",
			"Duration of full retrainings.", ls...),
		reduceLatency: reg.Histogram("cdml_grad_reduce_seconds",
			"Duration of the ordered partial-gradient reduce plus optimizer step.", ls...),
		gradShards: reg.Counter("cdml_grad_shards_total",
			"Partial-gradient shards computed by data-parallel mini-batch updates.", ls...),
		gradUpdates: reg.Counter("cdml_grad_updates_total",
			"Data-parallel mini-batch updates executed (one optimizer step each).", ls...),
		gatherChunks: reg.Counter("cdml_gather_chunks_total",
			"Chunks gathered in parallel for proactive training samples.", ls...),
		snapshotPublishes: reg.Counter("cdml_snapshot_publishes_total",
			"Immutable deployment snapshots published for the lock-free read path.", ls...),
		prequentialError: reg.Gauge("cdml_prequential_error",
			"Cumulative prequential error of the deployed model.", ls...),
		gatherParallelism: reg.Gauge("cdml_gather_parallelism",
			"Effective parallelism of the most recent sample gather (min of engine workers and sampled chunks).", ls...),
	}
	// Bridge the CostClock's per-category accounting into gauges; the clock
	// keeps its own mutex, paid only at scrape time.
	for _, cat := range []eval.Category{eval.CatPreprocess, eval.CatTrain, eval.CatPredict, eval.CatIO} {
		c := cat
		reg.GaugeFunc("cdml_cost_seconds",
			"Cumulative deployment cost by category (paper §5.2).",
			func() float64 { return d.cost.Get(c).Seconds() },
			withLabels(ls, obs.L("category", string(c)))...)
	}
	// Snapshot staleness and version, read from the atomic publish pointer
	// at scrape time (nil until NewDeployer's initial publish).
	reg.GaugeFunc("cdml_snapshot_age_seconds",
		"Age of the published deployment snapshot (time since last publish).",
		func() float64 {
			s := d.snap.Load()
			if s == nil {
				return 0
			}
			return time.Since(s.builtAt).Seconds()
		}, ls...)
	reg.GaugeFunc("cdml_snapshot_version",
		"Version of the published deployment snapshot (publish sequence number).",
		func() float64 {
			s := d.snap.Load()
			if s == nil {
				return 0
			}
			return float64(s.version)
		}, ls...)
	d.cfg.Store.Instrument(reg, ls...)
	d.cfg.Engine.Instrument(reg)
	if ls, ok := d.cfg.Scheduler.(sched.LoadStats); ok {
		reg.GaugeFunc("cdml_sched_query_rate",
			"Scheduler-observed prediction query rate pr (queries/second; Formula 6 input).",
			ls.QueryRate, d.cfg.Labels...)
		reg.GaugeFunc("cdml_sched_query_latency_seconds",
			"Scheduler-observed prediction latency pl (seconds/query; Formula 6 input).",
			ls.QueryLatency, d.cfg.Labels...)
	}
	return o
}

// Metrics returns the deployment's metric registry (shared with the config's
// registry when one was supplied).
func (d *Deployer) Metrics() *obs.Registry { return d.obs.reg }

// Tracer returns the deployment's tick tracer.
func (d *Deployer) Tracer() *obs.Tracer { return d.obs.tracer }

// beginTick opens the span tree for one deployment tick. The caller must
// already hold the deployment serialization (d.mu for live use; Run is
// single-threaded).
//
//cdml:hotpath
//cdml:locked mu — the caller provides the tick serialization documented above
func (d *Deployer) beginTick() {
	d.tickSpan = obs.StartSpan("tick")
	d.obs.ticks.Inc()
}

// beginTickCtx opens the tick span tree and, when ctx carries an obs.Span,
// copies its trace and request ids onto the tick root — the receiving half
// of cross-boundary trace propagation (the sending half is the HTTP
// middleware or the async-ingest drainer putting a carrier span in ctx).
//
//cdml:locked mu — the caller provides the tick serialization (see beginTick)
func (d *Deployer) beginTickCtx(ctx context.Context) {
	d.beginTick()
	if carrier := obs.FromContext(ctx); carrier != nil {
		d.tickSpan.TraceID = carrier.TraceID
		d.tickSpan.RequestID = carrier.RequestID
	}
}

// endTick finishes and records the tick span and refreshes the error gauge.
// The tick's trace id is stashed so the next publish can stamp it onto the
// snapshot — downstream consumers (the background checkpoint writer) tag
// their span trees with it, extending the trace past the publish boundary.
//
//cdml:hotpath
//cdml:locked mu — the caller provides the tick serialization (see beginTick)
func (d *Deployer) endTick() {
	d.tickSpan.Finish()
	d.obs.tracer.Record(d.tickSpan)
	d.lastTickTraceID = d.tickSpan.TraceID
	d.tickSpan = nil
	d.obs.prequentialError.Set(d.cfg.Metric.Value())
}

// tickTraceID returns the trace id of the tick in flight ("" outside one),
// used to attach slow-observation exemplars to histogram scrapes. Only
// called from tick helpers, so it inherits their serialization.
//
//cdml:hotpath
//cdml:locked mu — the caller provides the tick serialization (see beginTick)
func (d *Deployer) tickTraceID() string {
	if d.tickSpan == nil {
		return ""
	}
	return d.tickSpan.TraceID
}

// stage opens a child span of the current tick (nil-safe outside a tick,
// e.g. during initial training).
//
//cdml:hotpath
//cdml:locked mu — the caller provides the tick serialization (see beginTick)
func (d *Deployer) stage(name string) *obs.Span {
	return d.tickSpan.StartChild(name)
}

// timeStage runs f under a named stage span.
func (d *Deployer) timeStage(name string, f func()) {
	sp := d.stage(name)
	f()
	sp.Finish()
}
